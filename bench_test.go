package delaystage

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design decisions called out in DESIGN.md.
// Run them all with:
//
//	go test -bench=. -benchmem
//
// Each figure/table bench executes the same code path as the
// cmd/experiments runner (at a reduced scale so the full suite stays in
// laptop territory) and reports the experiment's headline number as a
// custom metric, so `go test -bench` output doubles as a compact
// reproduction table.

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/experiments"
	"delaystage/internal/scheduler"
	"delaystage/internal/service"
	"delaystage/internal/shardsim"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
	"delaystage/internal/workload"
)

// benchCfg is the reduced-scale configuration shared by the figure benches.
// Benches run the experiment grid on all cores; results are bit-identical
// to Parallelism: 1 (see internal/experiments determinism tests).
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.2, Nodes: 15, TraceJobs: 150, Reps: 2, Seed: 1,
		Parallelism: runtime.GOMAXPROCS(0)}
}

// benchTimings accumulates per-benchmark wall-clock for BENCH_sim.json.
var benchTimings = map[string]float64{}

// timed wraps a figure bench body, recording its wall-clock seconds under
// the benchmark's name.
func timed(b *testing.B, body func()) {
	t0 := time.Now()
	body()
	benchTimings[b.Name()] += time.Since(t0).Seconds()
}

// TestMain writes BENCH_sim.json after a bench run: per-benchmark
// wall-clock seconds plus the worker count used, so CI's bench smoke job
// and the acceptance measurements leave a machine-readable record. The
// file is only written when at least one bench ran (plain `go test`
// leaves it untouched).
func TestMain(m *testing.M) {
	code := m.Run()
	if len(benchTimings) > 0 {
		type entry struct {
			Name    string  `json:"name"`
			Seconds float64 `json:"seconds"`
		}
		names := make([]string, 0, len(benchTimings))
		for n := range benchTimings {
			names = append(names, n)
		}
		sort.Strings(names)
		entries := make([]entry, 0, len(names))
		total := 0.0
		for _, n := range names {
			entries = append(entries, entry{Name: n, Seconds: benchTimings[n]})
			total += benchTimings[n]
		}
		out := struct {
			Parallelism  int     `json:"parallelism"`
			TotalSeconds float64 `json:"total_seconds"`
			Benches      []entry `json:"benches"`
		}{Parallelism: runtime.GOMAXPROCS(0), TotalSeconds: total, Benches: entries}
		if buf, err := json.MarshalIndent(out, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_sim.json", append(buf, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

func BenchmarkFig2TraceStats(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig2(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Summary.ParallelStageShare*100, "%parallel-stages")
		}
	})
}

func BenchmarkFig3MakespanFraction(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig3(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MeanFrac, "%mean-parallel-frac")
		}
	})
}

func BenchmarkFig4Utilization(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig4(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig5MotivationALS(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig5(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.JCT, "JCT-s")
		}
	})
}

func BenchmarkFig6DelayedALS(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig6(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*(r.StockJCT-r.DelayedJCT)/r.StockJCT, "%JCT-gain")
		}
	})
}

func BenchmarkFig10JCTComparison(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig10(cfg)
			if err != nil {
				b.Fatal(err)
			}
			min, max := r.Rows[0].DelayGainP, r.Rows[0].DelayGainP
			for _, row := range r.Rows {
				if row.DelayGainP < min {
					min = row.DelayGainP
				}
				if row.DelayGainP > max {
					max = row.DelayGainP
				}
			}
			b.ReportMetric(min, "%gain-min")
			b.ReportMetric(max, "%gain-max")
		}
	})
}

func BenchmarkFig11Breakdowns(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig11(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig12UtilSeries(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig12(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig13Occupancy(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig13(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig14TraceReplay(b *testing.B) {
	cfg := benchCfg()
	cfg.TraceJobs = 60
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig14(cfg)
			if err != nil {
				b.Fatal(err)
			}
			fuxi, def := r.Rows[0].MeanJCT, r.Rows[2].MeanJCT
			b.ReportMetric(100*(fuxi-def)/fuxi, "%mean-JCT-gain-vs-Fuxi")
		}
	})
}

// BenchmarkFig14ShardedReplay contrasts the two architectures for a
// full-trace replay on one thread:
//
//   - single-engine: every trace job co-resident in ONE fluid engine on a
//     shared coarse cluster (FairByJob), the run-to-completion shape the
//     replay had before sharding. Each event pays O(all live items) in the
//     rate pass and the dt scan, so cost grows quadratically with the
//     number of concurrently live jobs.
//   - shards-8: the same jobs as disjoint per-slice worlds (the paper's
//     "resources are evenly partitioned" assumption) on 8 engine shards
//     advanced by merging clocks, Workers=1 — a purely architectural
//     speedup: each engine scans only its own world's items.
//
// trace-slice-512 additionally measures sharded replay throughput with
// lazily built worlds and a bounded live window — the full-scale
// (tracegen -scale full) configuration in miniature.
func BenchmarkFig14ShardedReplay(b *testing.B) {
	const jobs = 96
	const stagger = 5.0 // arrival spacing (s): keeps most jobs concurrently live
	tr := trace.Generate(trace.GenConfig{Jobs: jobs, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	shared := sim.Coarsen(cluster.NewTraceCluster(2*jobs, 4, rng))
	sharedRuns := make([]sim.JobRun, jobs)
	for i := range sharedRuns {
		wl, err := tr.Jobs[i].Workload(shared, trace.DefaultSplit, nil)
		if err != nil {
			b.Fatal(err)
		}
		sharedRuns[i] = sim.JobRun{Job: wl, Arrival: float64(i) * stagger}
	}
	sliceRng := rand.New(rand.NewSource(1))
	worlds := make([]shardsim.World, jobs)
	for i := range worlds {
		slice := sim.Coarsen(cluster.NewTraceCluster(2, 4, sliceRng))
		wl, err := tr.Jobs[i].Workload(slice, trace.DefaultSplit, nil)
		if err != nil {
			b.Fatal(err)
		}
		worlds[i] = shardsim.World{
			Opt:  sim.Options{Cluster: slice, TrackNode: -1},
			Runs: []sim.JobRun{{Job: wl, Arrival: float64(i) * stagger}},
		}
	}
	b.Run("single-engine", func(b *testing.B) {
		timed(b, func() {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Options{Cluster: shared, TrackNode: -1, FairByJob: true}, sharedRuns)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Events), "events")
			}
		})
	})
	b.Run("shards-8", func(b *testing.B) {
		timed(b, func() {
			for i := 0; i < b.N; i++ {
				events := 0
				err := shardsim.Run(shardsim.Config{Shards: 8, Workers: 1}, len(worlds),
					func(w int) (shardsim.World, error) { return worlds[w], nil },
					func(_ int, res *sim.Result) error { events += res.Events; return nil })
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(events), "events")
			}
		})
	})
	b.Run("trace-slice-512", func(b *testing.B) {
		const sliceJobs = 512
		str := trace.Generate(trace.GenConfig{Jobs: sliceJobs, Seed: 2})
		wr := rand.New(rand.NewSource(2))
		slices := make([]*cluster.Cluster, sliceJobs)
		for i := range slices {
			slices[i] = sim.Coarsen(cluster.NewTraceCluster(2, 4, wr))
		}
		timed(b, func() {
			for i := 0; i < b.N; i++ {
				// Worlds are built lazily inside build, as cmd/replay does:
				// workload materialization is part of the replay's work and
				// only the MaxLive window holds engine state.
				err := shardsim.Run(shardsim.Config{Shards: 8, Workers: 1, MaxLive: 64}, sliceJobs,
					func(w int) (shardsim.World, error) {
						wl, err := str.Jobs[w].Workload(slices[w], trace.DefaultSplit, nil)
						if err != nil {
							return shardsim.World{}, err
						}
						return shardsim.World{
							Opt:  sim.Options{Cluster: slices[w], TrackNode: -1},
							Runs: []sim.JobRun{{Job: wl}},
						}, nil
					},
					func(int, *sim.Result) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

func BenchmarkFig15Alg1Scaling(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig15(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Points[len(r.Points)-1].ModelMs, "ms-at-186-stages")
		}
	})
}

func BenchmarkFig16Breakdowns(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Fig16(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Triangle.LongestPathGainP, "%tri-region-gain")
		}
	})
}

func BenchmarkFig17UtilSeries(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig17(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable3WorkerUsage(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Table3(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTable4ReplayUtilization(b *testing.B) {
	cfg := benchCfg()
	cfg.TraceJobs = 60
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.Table4(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Rows[2].AvgCPUUtil*100, "%default-CPU-util")
		}
	})
}

func BenchmarkAppendixA2ModelAccuracy(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			r, err := experiments.AppendixA2(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MaxE*100, "%max-error")
		}
	})
}

func BenchmarkOverheadAlg1AndProfiling(b *testing.B) {
	cfg := benchCfg()
	timed(b, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Overhead(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benches (DESIGN.md "Key design decisions") ---

// BenchmarkAlg1Evaluators contrasts the what-if fluid-simulation evaluator
// with the closed-form model evaluator (design decision 4) on the same job.
func BenchmarkAlg1Evaluators(b *testing.B) {
	c := cluster.NewM4LargeCluster(15)
	job := workload.TriangleCount(c, 0.2)
	b.Run("sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Compute(core.Options{Cluster: c}, job); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Compute(core.Options{Cluster: c, UseModelEvaluator: true}, job); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlg1Orders contrasts the three execution-path orders (Sec. 5.3).
func BenchmarkAlg1Orders(b *testing.B) {
	c := cluster.NewM4LargeCluster(15)
	job := workload.TriangleCount(c, 0.2)
	for _, order := range []core.Order{core.Descending, core.Ascending, core.Random} {
		b.Run(order.String(), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				s, err := core.Compute(core.Options{Cluster: c, Order: order, Seed: 1}, job)
				if err != nil {
					b.Fatal(err)
				}
				gain = 100 * (s.StockMakespan - s.Makespan) / s.StockMakespan
			}
			b.ReportMetric(gain, "%makespan-gain")
		})
	}
}

// BenchmarkRefinePasses ablates the refinement extension (design decision
// in core.Options.RefinePasses): 0 passes is the paper-verbatim sweep.
func BenchmarkRefinePasses(b *testing.B) {
	c := cluster.NewM4LargeCluster(15)
	job := workload.CosineSimilarity(c, 0.2)
	for _, passes := range []int{-1, 1, 2} {
		name := map[int]string{-1: "verbatim", 1: "refine1", 2: "refine2"}[passes]
		b.Run(name, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				s, err := core.Compute(core.Options{Cluster: c, RefinePasses: passes}, job)
				if err != nil {
					b.Fatal(err)
				}
				gain = 100 * (s.StockMakespan - s.Makespan) / s.StockMakespan
			}
			b.ReportMetric(gain, "%makespan-gain")
		})
	}
}

// BenchmarkContentionOverhead sweeps the simulator's sharing-efficiency
// loss α (design decision 1 substitute parameter): at α=0 the fluid model
// is work-conserving and DelayStage's gain shrinks; the default 0.22
// reproduces the paper's gain band.
func BenchmarkContentionOverhead(b *testing.B) {
	c := cluster.NewM4LargeCluster(15)
	job := workload.LDA(c, 0.2)
	sched, err := core.Compute(core.Options{Cluster: c}, job)
	if err != nil {
		b.Fatal(err)
	}
	for _, alpha := range []float64{-1, 0.12, 0.22, 0.35} {
		name := map[float64]string{-1: "alpha0", 0.12: "alpha0.12", 0.22: "alpha0.22", 0.35: "alpha0.35"}[alpha]
		b.Run(name, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				opts := sim.Options{Cluster: c, TrackNode: -1, ContentionOverhead: alpha}
				stock, err := sim.Run(opts, []sim.JobRun{{Job: job}})
				if err != nil {
					b.Fatal(err)
				}
				delayed, err := sim.Run(opts, []sim.JobRun{{Job: job, Delays: sched.Delays}})
				if err != nil {
					b.Fatal(err)
				}
				gain = 100 * (stock.JCT(0) - delayed.JCT(0)) / stock.JCT(0)
			}
			b.ReportMetric(gain, "%JCT-gain")
		})
	}
}

// BenchmarkSimulatorEngine measures the raw fluid-engine throughput on the
// four paper workloads (events/op via the reported metric).
func BenchmarkSimulatorEngine(b *testing.B) {
	c := cluster.NewM4LargeCluster(30)
	for _, name := range []string{"ConnectedComponents", "CosineSimilarity", "LDA", "TriangleCount"} {
		job := workload.PaperWorkloads(c, 1.0)[name]
		b.Run(name, func(b *testing.B) {
			var events int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}})
				if err != nil {
					b.Fatal(err)
				}
				events = res.Events
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// BenchmarkStrategies measures planning+simulation for each scheduling
// strategy on CosineSimilarity.
func BenchmarkStrategies(b *testing.B) {
	c := cluster.NewM4LargeCluster(15)
	job := workload.CosineSimilarity(c, 0.2)
	for _, s := range []scheduler.Strategy{scheduler.Spark{}, scheduler.AggShuffle{}, scheduler.Fuxi{}, scheduler.DelayStage{}} {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scheduler.RunJob(c, job, s, sim.Options{TrackNode: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceGenerate measures synthetic-trace generation throughput.
func BenchmarkTraceGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := trace.Generate(trace.GenConfig{Jobs: 500, Seed: int64(i)})
		if len(tr.Jobs) != 500 {
			b.Fatal("short trace")
		}
	}
}

// BenchmarkCoarseVsPerNode contrasts the two simulator granularities
// (design decision: trace replays run coarse).
func BenchmarkCoarseVsPerNode(b *testing.B) {
	c := cluster.NewM4LargeCluster(30)
	job := workload.LDA(c, 0.5)
	b.Run("per-node-30", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	coarse := sim.Coarsen(c)
	b.Run("coarse-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(sim.Options{Cluster: coarse, TrackNode: -1}, []sim.JobRun{{Job: job}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRandomOrderSeeds verifies random-order stability cost across
// seeds (used by the Fig. 14 replay).
func BenchmarkRandomOrderSeeds(b *testing.B) {
	c := cluster.NewM4LargeCluster(10)
	rng := rand.New(rand.NewSource(1))
	job := workload.RandomJob("bench", c, 20, rng)
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(core.Options{Cluster: c, Order: core.Random, Seed: int64(i), MaxCandidates: 10}, job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeoExtension measures the Sec. 6 geo-distributed extension
// (topology sweep + Alg. 1 against the geo simulator).
func BenchmarkGeoExtension(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		r, err := experiments.GeoExtension(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].GainP, "%gain-widest-WAN")
	}
}

// BenchmarkOnlineExtension measures the Sec. 6 multi-job online planner.
func BenchmarkOnlineExtension(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		r, err := experiments.OnlineExtension(cfg)
		if err != nil {
			b.Fatal(err)
		}
		naive, online := r.Rows[0].MeanJCT, r.Rows[2].MeanJCT
		b.ReportMetric(100*(naive-online)/naive, "%mean-JCT-gain")
	}
}

// BenchmarkPlanOnlineLatency measures the end-to-end online planning hot
// path the scheduling service runs per submission (OnlinePlanner.Add, the
// incremental core of PlanOnline, behind the plan-template cache):
//
//   - cache-cold: a fresh service plans every job with the two-tier
//     candidate scan — each submission pays the full Alg. 1 sweep.
//   - cache-warm: the same job set resubmitted against a pre-warmed
//     template cache — each submission pays only the fingerprint lookup
//     and the drift-check simulation.
//
// benchgate gates both, so planner latency (not just sim throughput) is
// guarded against regression.
func BenchmarkPlanOnlineLatency(b *testing.B) {
	c := cluster.NewM4LargeCluster(30)
	pool := workload.Gallery(c, 1)
	for name, job := range workload.PaperWorkloads(c, 1) {
		pool[name] = job
	}
	pool["ALS"] = workload.ALS(c, 1)
	names := make([]string, 0, len(pool))
	for name := range pool {
		names = append(names, name)
	}
	sort.Strings(names)
	jobs := make([]*workload.Job, 0, len(names))
	for _, name := range names {
		jobs = append(jobs, pool[name])
	}
	submitAll := func(b *testing.B, svc *service.Service, base float64) {
		for j, job := range jobs {
			at := base + float64(j)*1500
			if _, err := svc.Submit(service.SubmitRequest{Tenant: "bench", Job: job, Arrival: &at}); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Round counts keep each sub-bench's wall-clock above benchgate's
	// -min-seconds gating floor despite the fast per-submission path.
	const coldRounds, warmRounds = 8, 128
	b.Run("cache-cold", func(b *testing.B) {
		timed(b, func() {
			for i := 0; i < b.N; i++ {
				svc, err := service.New(service.Options{Cluster: c, FairByJob: true, CacheCapacity: -1})
				if err != nil {
					b.Fatal(err)
				}
				for r := 0; r < coldRounds; r++ {
					submitAll(b, svc, float64(r)*1e5)
				}
			}
		})
	})
	b.Run("cache-warm", func(b *testing.B) {
		// A fresh service per iteration keeps simulated time inside the
		// engine's MaxTime horizon at any b.N; the single warming round is
		// untimed but still lands in BENCH_sim.json's wall-clock (it is the
		// same deterministic overhead in the baseline and in every rerun).
		timed(b, func() {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				svc, err := service.New(service.Options{Cluster: c, FairByJob: true})
				if err != nil {
					b.Fatal(err)
				}
				submitAll(b, svc, 0) // warm the template cache
				b.StartTimer()
				for r := 1; r <= warmRounds; r++ {
					submitAll(b, svc, float64(r)*1.5e4)
				}
				if err := svc.Drain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkSensitivity runs the parameter sweeps.
func BenchmarkSensitivity(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Sensitivity(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
