package delaystage

// Cross-module integration tests: each walks a full user-visible pipeline
// through several packages, the way the CLI tools chain them.

import (
	"bytes"
	"math/rand"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/eventlog"
	"delaystage/internal/geo"
	"delaystage/internal/jobspec"
	"delaystage/internal/profiler"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
	"delaystage/internal/workload"
)

// tracegen | traceanalyze | replay: generate a trace, round-trip it
// through CSV, rebuild workloads, and verify DelayStage beats naive
// scheduling per job on its slice.
func TestIntegrationTracePipeline(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{Jobs: 40, Seed: 11})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back.Jobs), len(tr.Jobs))
	}
	stats := trace.Summarize(trace.Analyze(back))
	if stats.JobsWithParallelShare < 0.4 {
		t.Fatalf("implausible parallel share %.2f after round trip", stats.JobsWithParallelShare)
	}

	rng := rand.New(rand.NewSource(3))
	improved, total := 0, 0
	for i := range back.Jobs {
		slice := sim.Coarsen(cluster.NewTraceCluster(2, 4, rng))
		wl, err := back.Jobs[i].Workload(slice, trace.DefaultSplit, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := core.Compute(core.Options{Cluster: slice, MaxCandidates: 8}, wl)
		if err != nil {
			t.Fatal(err)
		}
		if len(sched.K) == 0 {
			continue
		}
		total++
		stock, err := sim.Run(sim.Options{Cluster: slice, TrackNode: -1}, []sim.JobRun{{Job: wl}})
		if err != nil {
			t.Fatal(err)
		}
		delayed, err := sim.Run(sim.Options{Cluster: slice, TrackNode: -1},
			[]sim.JobRun{{Job: wl, Delays: sched.Delays}})
		if err != nil {
			t.Fatal(err)
		}
		if delayed.JCT(0) > stock.JCT(0)*1.001 {
			t.Errorf("job %s regressed: %.1f vs %.1f", wl.Name, delayed.JCT(0), stock.JCT(0))
		}
		if delayed.JCT(0) < stock.JCT(0)*0.999 {
			improved++
		}
	}
	if total == 0 || improved == 0 {
		t.Fatalf("no parallel jobs improved (%d of %d)", improved, total)
	}
	t.Logf("DelayStage improved %d of %d parallel trace jobs", improved, total)
}

// sparklog → jobspec → delaystage: synthesize an event log, convert to a
// job spec, reload it, plan, render DOT.
func TestIntegrationEventlogSpecPipeline(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	truth := workload.SQLJoin(c, 0.2)
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: truth}})
	if err != nil {
		t.Fatal(err)
	}
	l := eventlog.Synthesize(truth, res, 8, rand.New(rand.NewSource(5)))
	var logBuf bytes.Buffer
	if err := eventlog.Write(&logBuf, l); err != nil {
		t.Fatal(err)
	}
	parsed, err := eventlog.Parse(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromLog, err := parsed.Job(c)
	if err != nil {
		t.Fatal(err)
	}

	var specBuf bytes.Buffer
	if err := jobspec.FromJob(fromLog).Write(&specBuf); err != nil {
		t.Fatal(err)
	}
	spec, err := jobspec.Parse(&specBuf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := spec.Job(c)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Compute(core.Options{Cluster: c}, reloaded)
	if err != nil {
		t.Fatal(err)
	}
	dot, err := jobspec.DOT(reloaded, sched.Delays)
	if err != nil {
		t.Fatal(err)
	}
	if len(dot) == 0 {
		t.Fatal("empty DOT output")
	}
	delayed, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: truth, Delays: sched.Delays}})
	if err != nil {
		t.Fatal(err)
	}
	if delayed.JCT(0) > res.JCT(0)*1.01 {
		t.Fatalf("pipeline schedule regressed: %.1f vs %.1f", delayed.JCT(0), res.JCT(0))
	}
}

// profiler → core → sim with every strategy, on a gallery workload.
func TestIntegrationProfiledStrategies(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	truth := workload.PageRank(c, 0.2)
	prof, err := profiler.ProfileJob(truth, profiler.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var jcts []float64
	for _, s := range []scheduler.Strategy{scheduler.Spark{}, scheduler.AggShuffle{}, scheduler.DelayStage{}} {
		plan, err := s.Plan(c, prof.Estimated)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, AggShuffle: plan.AggShuffle},
			[]sim.JobRun{{Job: truth, Delays: plan.Delays}})
		if err != nil {
			t.Fatal(err)
		}
		jcts = append(jcts, res.JCT(0))
	}
	if jcts[2] > jcts[0]*1.01 {
		t.Fatalf("profiled DelayStage (%.1f) lost to Spark (%.1f)", jcts[2], jcts[0])
	}
}

// geo: placement + delays against the topology, end to end with DOT export
// of the placed workload.
func TestIntegrationGeoPipeline(t *testing.T) {
	dc := cluster.Node{ID: 0, Executors: 32, NetBW: cluster.MBps(10000), DiskBW: cluster.MBps(2000)}
	topo := geo.UniformWAN(3, dc, cluster.MBps(500))
	ref := &cluster.Cluster{Nodes: []cluster.Node{dc}}
	wl := workload.ETL(ref, 0.3)
	place, err := geo.BuildPlacement("greedy-WAN", topo, wl)
	if err != nil {
		t.Fatal(err)
	}
	job := &geo.Job{Workload: wl, Placement: place}
	sched, err := geo.ComputeDelays(geo.DelayOptions{Topology: topo, MaxCandidates: 12}, job)
	if err != nil {
		t.Fatal(err)
	}
	stock, err := geo.Run(geo.Options{Topology: topo}, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := geo.Run(geo.Options{Topology: topo}, job, sched.Delays)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.JCT > stock.JCT*1.001 {
		t.Fatalf("geo schedule regressed: %.1f vs %.1f", delayed.JCT, stock.JCT)
	}
	// Every stage landed in a real DC and the timelines are causal.
	for _, id := range wl.Graph.Stages() {
		tl, ok := delayed.Timelines[id]
		if !ok {
			t.Fatalf("stage %d missing timeline", id)
		}
		if tl.End < tl.Start || tl.ReadEnd < tl.Start {
			t.Fatalf("stage %d acausal timeline %+v", id, tl)
		}
		for _, p := range wl.Graph.Parents(id) {
			if tl.Start < delayed.Timelines[p].End-1e-6 {
				t.Fatalf("stage %d started before parent %d finished", id, p)
			}
		}
	}
	_ = dag.StageID(0)
}
