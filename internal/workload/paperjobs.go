package workload

import (
	"math/rand"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
)

// The five paper workloads. DAG shapes follow the paper's figures:
//
//   ALS (Fig. 1/6, 6 stages): S1 ∥ S2 ∥ S3; S4←{S1,S2}; S5←{S3,S4}; S6←S5.
//     Parallel set K = {1,2,3,4}; S3 runs in parallel with 1, 2 and 4.
//   ConnectedComponents (5): S1 ∥ {S2→S3}; S4←{S1,S3}; S5←S4.
//     Sequential stages 4+5 dominate (~55% of JCT), which is why the paper
//     sees the smallest gain (17.5%) here.
//   CosineSimilarity (5): {S1→S2} ∥ {S3→S4}; S5←{S2,S4}.
//     The long path is {S3,S4}; DelayStage delays S1.
//   LDA (5): paths {S1}, {S2→S3}, {S4}; S5←{S1,S3,S4}. Nearly homogeneous
//     tasks (tiny skew), which starves AggShuffle of benefit.
//   TriangleCount (11): five parallel chains — {S1→S4→S9}, {S2→S5→S9},
//     {S3→S6}, {S7}, {S8}; S10←{S6,S7,S8,S9}; S11←S10.
//
// Phase durations are the *uncontended* per-stage times on the reference
// cluster; contention in the simulator stretches them, reproducing the
// paper's stock-Spark timelines.

// mustJob assembles and validates a Job from stage definitions.
func mustJob(name string, ref *cluster.Cluster, stages []Stage) *Job {
	g := dag.New()
	profs := make(map[dag.StageID]StageProfile, len(stages))
	for _, s := range stages {
		g.MustAdd(dag.Stage{ID: s.ID, Name: s.Name, Parents: s.Parents})
		profs[s.ID] = FromPhases(ref, s.Phases)
	}
	j := &Job{Name: name, Graph: g, Profiles: profs}
	if err := j.Validate(); err != nil {
		panic(err)
	}
	return j
}

// Stage couples a DAG node with its phase spec for workload builders.
type Stage struct {
	ID      dag.StageID
	Name    string
	Parents []dag.StageID
	Phases  PhaseSpec
}

// ALS builds the paper's motivation workload (Fig. 1/5/6): Alternating
// Least Squares from Spark MLlib, 6 stages, 3 GB input. The reference
// cluster is the paper's 3-node setup; scale multiplies all durations.
func ALS(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.3}
	}
	return mustJob("ALS", ref, []Stage{
		{ID: 1, Name: "itemFactors", Phases: s(12, 20, 2)},
		{ID: 2, Name: "userFactors", Phases: s(8, 12, 2)},
		{ID: 3, Name: "ratingsBlocks", Phases: s(14, 26, 2)},
		{ID: 4, Name: "userOut", Parents: []dag.StageID{1, 2}, Phases: s(10, 16, 2)},
		{ID: 5, Name: "itemOut", Parents: []dag.StageID{3, 4}, Phases: s(8, 15, 2)},
		{ID: 6, Name: "predict", Parents: []dag.StageID{5}, Phases: s(5, 10, 1)},
	})
}

// ConnectedComponents builds the 5-stage GraphX workload (10 GB synthetic).
func ConnectedComponents(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.5}
	}
	return mustJob("ConnectedComponents", ref, []Stage{
		{ID: 1, Name: "edgeList", Phases: s(95, 88, 10)},
		{ID: 2, Name: "vertexInit", Phases: s(105, 95, 10)},
		{ID: 3, Name: "msgAggregate", Parents: []dag.StageID{2}, Phases: s(115, 105, 10)},
		{ID: 4, Name: "ccIterate", Parents: []dag.StageID{1, 3}, Phases: s(160, 250, 25)},
		{ID: 5, Name: "collect", Parents: []dag.StageID{4}, Phases: s(70, 150, 12)},
	})
}

// CosineSimilarity builds the 5-stage MLlib workload (30 GB synthetic).
func CosineSimilarity(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.4}
	}
	return mustJob("CosineSimilarity", ref, []Stage{
		{ID: 1, Name: "rowLoad", Phases: s(110, 90, 15)},
		{ID: 2, Name: "normalize", Parents: []dag.StageID{1}, Phases: s(60, 80, 10)},
		{ID: 3, Name: "colLoad", Phases: s(150, 180, 20)},
		{ID: 4, Name: "gramian", Parents: []dag.StageID{3}, Phases: s(100, 160, 20)},
		{ID: 5, Name: "similarities", Parents: []dag.StageID{2, 4}, Phases: s(60, 120, 10)},
	})
}

// LDA builds the 5-stage MLlib workload (140M Wikipedia documents, 10
// iterations). LDA's stages have nearly homogeneous tasks, so Skew is tiny
// — this is what makes AggShuffle's benefit "trivial" on LDA (Sec. 5.2).
func LDA(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.05}
	}
	return mustJob("LDA", ref, []Stage{
		{ID: 1, Name: "tokenize", Phases: s(60, 80, 10)},
		{ID: 2, Name: "countVectorize", Phases: s(50, 60, 10)},
		{ID: 3, Name: "termFreq", Parents: []dag.StageID{2}, Phases: s(40, 60, 8)},
		{ID: 4, Name: "emIterations", Phases: s(70, 110, 10)},
		{ID: 5, Name: "describeTopics", Parents: []dag.StageID{1, 3, 4}, Phases: s(30, 60, 5)},
	})
}

// TriangleCount builds the 11-stage GraphX workload (10M users, 100M
// connections). Graph data is heavily skewed, so Skew is large.
func TriangleCount(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.6}
	}
	return mustJob("TriangleCount", ref, []Stage{
		{ID: 1, Name: "edgePart1", Phases: s(40, 50, 8)},
		{ID: 2, Name: "edgePart2", Phases: s(50, 60, 10)},
		{ID: 3, Name: "edgePart3", Phases: s(45, 55, 8)},
		{ID: 4, Name: "canonical1", Parents: []dag.StageID{1}, Phases: s(35, 50, 8)},
		{ID: 5, Name: "canonical2", Parents: []dag.StageID{2}, Phases: s(40, 55, 8)},
		{ID: 6, Name: "canonical3", Parents: []dag.StageID{3}, Phases: s(35, 45, 6)},
		{ID: 7, Name: "degreeCount", Phases: s(60, 70, 10)},
		{ID: 8, Name: "adjacency", Phases: s(55, 65, 10)},
		{ID: 9, Name: "joinEdges", Parents: []dag.StageID{4, 5}, Phases: s(50, 80, 10)},
		{ID: 10, Name: "intersect", Parents: []dag.StageID{6, 7, 8, 9}, Phases: s(60, 100, 12)},
		{ID: 11, Name: "countReduce", Parents: []dag.StageID{10}, Phases: s(30, 60, 6)},
	})
}

// PaperWorkloads returns the four Sec. 5 benchmark workloads on the given
// reference cluster at the given scale, keyed by the names used in the
// paper's tables.
func PaperWorkloads(ref *cluster.Cluster, scale float64) map[string]*Job {
	return map[string]*Job{
		"ConnectedComponents": ConnectedComponents(ref, scale),
		"CosineSimilarity":    CosineSimilarity(ref, scale),
		"LDA":                 LDA(ref, scale),
		"TriangleCount":       TriangleCount(ref, scale),
	}
}

// RandomJob generates a synthetic production job for the trace-driven
// experiments: a random DAG with the given stage count whose uncontended
// stage runtimes fall inside the paper's observed 10–3,000 s span.
// Dependencies only point to lower-numbered stages, so the result is
// acyclic by construction. Roughly 30% of stages are chained sequentially,
// matching the ~79% parallel-stage share observed in the trace.
func RandomJob(name string, ref *cluster.Cluster, nStages int, rng *rand.Rand) *Job {
	if nStages < 1 {
		nStages = 1
	}
	stages := make([]Stage, 0, nStages)
	for i := 1; i <= nStages; i++ {
		var parents []dag.StageID
		if i > 1 {
			// Geometric parent count, biased toward 0/1 parents: wide DAGs.
			nPar := 0
			for rng.Float64() < 0.45 && nPar < 3 && nPar < i-1 {
				nPar++
			}
			seen := map[dag.StageID]bool{}
			for len(parents) < nPar {
				p := dag.StageID(1 + rng.Intn(i-1))
				if !seen[p] {
					seen[p] = true
					parents = append(parents, p)
				}
			}
		}
		// Solo runtime 10–3,000 s, log-uniform-ish, split across phases.
		total := 10 * pow(1.0+rng.Float64(), 8) // ~10 … ~2,560 s, log-skewed
		read := total * (0.2 + rng.Float64()*0.3)
		write := total * (0.02 + rng.Float64()*0.08)
		compute := total - read - write
		stages = append(stages, Stage{
			ID:      dag.StageID(i),
			Parents: parents,
			Phases:  PhaseSpec{ReadSec: read, ComputeSec: compute, WriteSec: write, Skew: rng.Float64() * 0.6},
		})
	}
	return mustJob(name, ref, stages)
}

func pow(b float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= b
	}
	return r
}
