package workload

import (
	"testing"

	"delaystage/internal/dag"
)

func TestGalleryValidates(t *testing.T) {
	ref := ref30()
	for name, j := range Gallery(ref, 1.0) {
		if err := j.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGalleryShapes(t *testing.T) {
	ref := ref30()
	cases := []struct {
		job       *Job
		stages    int
		minK      int
		seqLeaves int
	}{
		{PageRank(ref, 1), 8, 4, 1},
		{SQLJoin(ref, 1), 8, 5, 1},
		{ETL(ref, 1), 7, 4, 2},
	}
	for _, c := range cases {
		if got := c.job.Graph.Len(); got != c.stages {
			t.Errorf("%s: %d stages, want %d", c.job.Name, got, c.stages)
		}
		r, err := dag.NewReachability(c.job.Graph)
		if err != nil {
			t.Fatal(err)
		}
		k := dag.ParallelStages(c.job.Graph, r)
		if len(k) < c.minK {
			t.Errorf("%s: |K| = %d, want ≥ %d", c.job.Name, len(k), c.minK)
		}
		if got := len(c.job.Graph.Leaves()); got != c.seqLeaves {
			t.Errorf("%s: %d leaves, want %d", c.job.Name, got, c.seqLeaves)
		}
	}
}

func TestGalleryIterationStructure(t *testing.T) {
	// PageRank's second iteration must depend on the first.
	j := PageRank(ref30(), 1)
	r, _ := dag.NewReachability(j.Graph)
	if !r.Reaches(5, 6) || !r.Reaches(6, 7) {
		t.Error("iteration 2 must depend on iteration 1's ranks")
	}
	// Degrees (3) feeds both rank updates.
	if !r.Reaches(3, 5) || !r.Reaches(3, 7) {
		t.Error("degrees must feed both rank updates")
	}
}
