// Package workload defines DAG-style analytics jobs: the stage dependency
// graph plus, for every stage, the resource profile that drives the
// simulator and the DelayStage performance model — shuffle-input bytes
// (network), per-executor processing rate R_k (CPU), shuffle-output bytes
// (disk), and task-duration skew.
//
// It provides the five workloads the paper evaluates — ALS (the motivation
// example, Fig. 1/6), ConnectedComponents, CosineSimilarity, LDA and
// TriangleCount (Table 2) — and a random-job generator for the
// trace-driven experiments.
package workload

import (
	"fmt"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
)

// StageProfile captures a stage's resource demands, aggregated over the
// whole cluster. The simulator splits each quantity evenly across worker
// nodes (the paper's model does the same; Sec. 3.1).
type StageProfile struct {
	// ShuffleIn is the total bytes the stage shuffle-reads over the
	// network (s_k summed over sources and workers). For root stages this
	// is the job-input read, which in Spark also travels the network for
	// non-local HDFS blocks.
	ShuffleIn int64
	// ShuffleOut is the total bytes shuffle-written to local disks (d_k).
	ShuffleOut int64
	// ProcRate is the per-executor data processing rate R_k in bytes/s.
	ProcRate float64
	// Skew ∈ [0,1] is task-duration heterogeneity: the fraction of the
	// compute phase over which tasks finish (0 = all tasks end together,
	// 1 = completions spread over the whole phase). It controls how early
	// shuffle output becomes available to AggShuffle-style pipelining.
	Skew float64
	// Tasks is the stage's task count (used for executor-occupation
	// accounting, Fig. 13). Zero means "one wave": tasks = total executors.
	Tasks int
}

// Validate rejects profiles the simulator cannot run.
func (p StageProfile) Validate() error {
	if p.ShuffleIn < 0 || p.ShuffleOut < 0 {
		return fmt.Errorf("workload: negative shuffle size")
	}
	if p.ProcRate <= 0 {
		return fmt.Errorf("workload: non-positive processing rate")
	}
	if p.Skew < 0 || p.Skew > 1 {
		return fmt.Errorf("workload: skew %v outside [0,1]", p.Skew)
	}
	if p.Tasks < 0 {
		return fmt.Errorf("workload: negative task count")
	}
	return nil
}

// Job is a complete DAG job: graph + per-stage profiles.
type Job struct {
	Name     string
	Graph    *dag.Graph
	Profiles map[dag.StageID]StageProfile
}

// Validate checks graph/profile consistency.
func (j *Job) Validate() error {
	if j.Graph == nil {
		return fmt.Errorf("workload %s: nil graph", j.Name)
	}
	if err := j.Graph.Validate(); err != nil {
		return fmt.Errorf("workload %s: %w", j.Name, err)
	}
	for _, id := range j.Graph.Stages() {
		p, ok := j.Profiles[id]
		if !ok {
			return fmt.Errorf("workload %s: stage %d has no profile", j.Name, id)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workload %s stage %d: %w", j.Name, id, err)
		}
	}
	for id := range j.Profiles {
		if j.Graph.Stage(id) == nil {
			return fmt.Errorf("workload %s: profile for unknown stage %d", j.Name, id)
		}
	}
	return nil
}

// Clone returns a deep copy (useful when a scheduler mutates profiles).
func (j *Job) Clone() *Job {
	nj := &Job{Name: j.Name, Graph: j.Graph.Clone(), Profiles: make(map[dag.StageID]StageProfile, len(j.Profiles))}
	for id, p := range j.Profiles {
		nj.Profiles[id] = p
	}
	return nj
}

// PhaseSpec describes one stage by its intended *uncontended* phase
// durations on a reference cluster: how long the shuffle read, the compute
// and the shuffle write each take when the stage runs alone. Workload
// builders use it so the simulated timelines match the paper's figures by
// construction; FromPhases converts to byte sizes and rates.
type PhaseSpec struct {
	ReadSec    float64
	ComputeSec float64
	WriteSec   float64
	Skew       float64
	Tasks      int
}

// FromPhases derives a StageProfile whose solo execution on ref has the
// given phase durations: the read saturates every NIC for ReadSec, the
// compute keeps every executor busy for ComputeSec, the write saturates
// every disk for WriteSec.
func FromPhases(ref *cluster.Cluster, ps PhaseSpec) StageProfile {
	n := float64(len(ref.Nodes))
	perNodeNet := ref.TotalNetBW() / n
	perNodeDisk := ref.TotalDiskBW() / n
	execPerNode := float64(ref.TotalExecutors()) / n

	in := int64(ps.ReadSec * perNodeNet * n)
	out := int64(ps.WriteSec * perNodeDisk * n)
	// Solo compute time per node = (in/n) / (execPerNode · R) = ComputeSec.
	rate := 1.0
	if ps.ComputeSec > 0 {
		rate = (float64(in) / n) / (execPerNode * ps.ComputeSec)
	} else {
		// Negligible compute: rate high enough to finish in well under a slot.
		rate = float64(in)/n + 1
	}
	if in == 0 {
		// Pure-compute stage: synthesize a nominal input so compute volume
		// is non-zero, but rate tuned to hit ComputeSec.
		in = int64(n) * cluster.MB
		if ps.ComputeSec > 0 {
			rate = (float64(in) / n) / (execPerNode * ps.ComputeSec)
		}
	}
	return StageProfile{ShuffleIn: in, ShuffleOut: out, ProcRate: rate, Skew: ps.Skew, Tasks: ps.Tasks}
}
