package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
)

func ref30() *cluster.Cluster { return cluster.NewM4LargeCluster(30) }

func TestPaperWorkloadsValidate(t *testing.T) {
	for name, j := range PaperWorkloads(ref30(), 1.0) {
		if err := j.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestWorkloadStageCountsMatchPaper(t *testing.T) {
	ref := ref30()
	cases := []struct {
		job  *Job
		want int
	}{
		{ALS(ref, 1), 6},
		{ConnectedComponents(ref, 1), 5},
		{CosineSimilarity(ref, 1), 5},
		{LDA(ref, 1), 5},
		{TriangleCount(ref, 1), 11},
	}
	for _, c := range cases {
		if got := c.job.Graph.Len(); got != c.want {
			t.Errorf("%s: %d stages, want %d (Table 2)", c.job.Name, got, c.want)
		}
	}
}

func TestALSParallelSetMatchesFig1(t *testing.T) {
	j := ALS(cluster.NewM4LargeCluster(3), 1)
	r, err := dag.NewReachability(j.Graph)
	if err != nil {
		t.Fatal(err)
	}
	k := dag.ParallelStages(j.Graph, r)
	want := map[dag.StageID]bool{1: true, 2: true, 3: true, 4: true}
	if len(k) != len(want) {
		t.Fatalf("ALS K = %v, want {1,2,3,4}", k)
	}
	for _, id := range k {
		if !want[id] {
			t.Errorf("unexpected %d in ALS K", id)
		}
	}
	// Fig. 1: Stage 3 is parallel with 1, 2 and 4.
	for _, other := range []dag.StageID{1, 2, 4} {
		if !r.Concurrent(3, other) {
			t.Errorf("stage 3 must be concurrent with %d", other)
		}
	}
}

func TestCosinePathStructure(t *testing.T) {
	j := CosineSimilarity(ref30(), 1)
	r, _ := dag.NewReachability(j.Graph)
	paths := dag.ExecutionPaths(j.Graph, r, nil)
	if len(paths) != 2 {
		t.Fatalf("Cosine paths = %v, want 2 chains", paths)
	}
}

func TestLDAPathStructureMatchesFig11(t *testing.T) {
	j := LDA(ref30(), 1)
	r, _ := dag.NewReachability(j.Graph)
	paths := dag.ExecutionPaths(j.Graph, r, nil)
	// Fig. 11: paths {1}, {2,3}, {4}; stage 5 sequential.
	if len(paths) != 3 {
		t.Fatalf("LDA paths = %v, want 3", paths)
	}
	lens := map[int]int{}
	for _, p := range paths {
		lens[len(p.Stages)]++
		for _, s := range p.Stages {
			if s == 5 {
				t.Error("stage 5 is sequential; must not be in any path")
			}
		}
	}
	if lens[1] != 2 || lens[2] != 1 {
		t.Fatalf("LDA path lengths = %v, want two singletons and one pair", lens)
	}
}

func TestConnectedComponentsSequentialTail(t *testing.T) {
	j := ConnectedComponents(ref30(), 1)
	r, _ := dag.NewReachability(j.Graph)
	// Stages 4 and 5 are sequential (the paper: "no stages running in
	// parallel with Stage 4").
	for _, id := range []dag.StageID{4, 5} {
		if d := r.ConcurrencyDegree(id); d != 0 {
			t.Errorf("stage %d concurrency degree = %d, want 0", id, d)
		}
	}
}

func TestLDAHomogeneous(t *testing.T) {
	j := LDA(ref30(), 1)
	for id, p := range j.Profiles {
		if p.Skew > 0.1 {
			t.Errorf("LDA stage %d skew %v; LDA must be near-homogeneous", id, p.Skew)
		}
	}
	tri := TriangleCount(ref30(), 1)
	for id, p := range tri.Profiles {
		if p.Skew < 0.3 {
			t.Errorf("TriangleCount stage %d skew %v; graph data should be skewed", id, p.Skew)
		}
	}
}

func TestFromPhasesRoundTrip(t *testing.T) {
	ref := ref30()
	ps := PhaseSpec{ReadSec: 100, ComputeSec: 150, WriteSec: 20, Skew: 0.3}
	p := FromPhases(ref, ps)
	n := float64(len(ref.Nodes))
	perNodeNet := ref.TotalNetBW() / n
	perNodeDisk := ref.TotalDiskBW() / n
	execPerNode := float64(ref.TotalExecutors()) / n

	gotRead := (float64(p.ShuffleIn) / n) / perNodeNet
	if math.Abs(gotRead-100) > 0.5 {
		t.Errorf("solo read = %v, want 100", gotRead)
	}
	gotCompute := (float64(p.ShuffleIn) / n) / (execPerNode * p.ProcRate)
	if math.Abs(gotCompute-150) > 0.5 {
		t.Errorf("solo compute = %v, want 150", gotCompute)
	}
	gotWrite := (float64(p.ShuffleOut) / n) / perNodeDisk
	if math.Abs(gotWrite-20) > 0.5 {
		t.Errorf("solo write = %v, want 20", gotWrite)
	}
}

func TestFromPhasesZeroCompute(t *testing.T) {
	p := FromPhases(ref30(), PhaseSpec{ReadSec: 10, ComputeSec: 0, WriteSec: 1})
	if err := p.Validate(); err != nil {
		t.Fatalf("zero-compute profile invalid: %v", err)
	}
}

func TestFromPhasesPureCompute(t *testing.T) {
	ref := ref30()
	p := FromPhases(ref, PhaseSpec{ReadSec: 0, ComputeSec: 60, WriteSec: 0})
	if err := p.Validate(); err != nil {
		t.Fatalf("pure-compute profile invalid: %v", err)
	}
	if p.ShuffleIn == 0 {
		t.Fatal("pure-compute stage needs nominal input volume")
	}
	n := float64(len(ref.Nodes))
	execPerNode := float64(ref.TotalExecutors()) / n
	gotCompute := (float64(p.ShuffleIn) / n) / (execPerNode * p.ProcRate)
	if math.Abs(gotCompute-60) > 0.5 {
		t.Errorf("solo compute = %v, want 60", gotCompute)
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []StageProfile{
		{ShuffleIn: -1, ProcRate: 1},
		{ShuffleOut: -1, ProcRate: 1},
		{ProcRate: 0},
		{ProcRate: 1, Skew: 1.5},
		{ProcRate: 1, Tasks: -3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile passed validation: %+v", i, p)
		}
	}
	good := StageProfile{ShuffleIn: 1, ShuffleOut: 1, ProcRate: 1, Skew: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestJobValidateMissingProfile(t *testing.T) {
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	j := &Job{Name: "x", Graph: g, Profiles: map[dag.StageID]StageProfile{}}
	if err := j.Validate(); err == nil {
		t.Fatal("missing profile must fail validation")
	}
}

func TestJobValidateOrphanProfile(t *testing.T) {
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	j := &Job{Name: "x", Graph: g, Profiles: map[dag.StageID]StageProfile{
		1: {ProcRate: 1}, 99: {ProcRate: 1},
	}}
	if err := j.Validate(); err == nil {
		t.Fatal("profile for unknown stage must fail validation")
	}
}

func TestJobCloneIndependent(t *testing.T) {
	j := LDA(ref30(), 1)
	c := j.Clone()
	p := c.Profiles[1]
	p.ShuffleIn *= 2
	c.Profiles[1] = p
	if j.Profiles[1].ShuffleIn == c.Profiles[1].ShuffleIn {
		t.Fatal("clone shares profile storage")
	}
}

func TestRandomJobProperties(t *testing.T) {
	ref := ref30()
	f := func(seed int64, sz uint8) bool {
		n := int(sz%60) + 1
		rng := rand.New(rand.NewSource(seed))
		j := RandomJob("rand", ref, n, rng)
		if err := j.Validate(); err != nil {
			return false
		}
		return j.Graph.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomJobDeterministic(t *testing.T) {
	ref := ref30()
	a := RandomJob("a", ref, 20, rand.New(rand.NewSource(7)))
	b := RandomJob("b", ref, 20, rand.New(rand.NewSource(7)))
	for _, id := range a.Graph.Stages() {
		if a.Profiles[id] != b.Profiles[id] {
			t.Fatal("same seed must give identical profiles")
		}
	}
}

func TestRandomJobRuntimeRange(t *testing.T) {
	// Solo stage runtimes must span the paper's observed 10 s – 3,000 s.
	ref := ref30()
	rng := rand.New(rand.NewSource(3))
	minT, maxT := math.Inf(1), 0.0
	for i := 0; i < 50; i++ {
		j := RandomJob("r", ref, 10, rng)
		n := float64(len(ref.Nodes))
		perNodeNet := ref.TotalNetBW() / n
		perNodeDisk := ref.TotalDiskBW() / n
		execPerNode := float64(ref.TotalExecutors()) / n
		for _, p := range j.Profiles {
			t0 := (float64(p.ShuffleIn)/n)/perNodeNet +
				(float64(p.ShuffleIn)/n)/(execPerNode*p.ProcRate) +
				(float64(p.ShuffleOut)/n)/perNodeDisk
			minT = math.Min(minT, t0)
			maxT = math.Max(maxT, t0)
		}
	}
	if minT < 5 || maxT > 6000 {
		t.Fatalf("solo stage runtimes [%v, %v] outside plausible range", minT, maxT)
	}
	if maxT < 500 {
		t.Fatalf("max solo runtime %v too small; want long-tail stages", maxT)
	}
}
