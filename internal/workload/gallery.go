package workload

import (
	"delaystage/internal/cluster"
	"delaystage/internal/dag"
)

// Gallery workloads: DAG shapes beyond the paper's four benchmarks, drawn
// from the frameworks its introduction motivates (GraphX iterative
// algorithms, SQL multi-way joins, ETL pipelines). They exercise DAG
// patterns the paper workloads do not — iteration unrolling, bushy join
// trees, and mixed wide/deep pipelines — and serve as additional fixtures
// for examples and tests.

// PageRank builds an unrolled two-iteration GraphX PageRank (8 stages):
// edge and vertex loads run in parallel, then each iteration is a
// message-generation stage in parallel with a degree/rank bookkeeping
// stage, joined by the rank update.
func PageRank(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.5}
	}
	return mustJob("PageRank", ref, []Stage{
		{ID: 1, Name: "edges", Phases: s(90, 70, 12)},
		{ID: 2, Name: "vertices", Phases: s(60, 40, 8)},
		{ID: 3, Name: "degrees", Parents: []dag.StageID{1}, Phases: s(40, 60, 8)},
		{ID: 4, Name: "messages1", Parents: []dag.StageID{1, 2}, Phases: s(70, 90, 12)},
		{ID: 5, Name: "rankUpdate1", Parents: []dag.StageID{3, 4}, Phases: s(50, 70, 10)},
		{ID: 6, Name: "messages2", Parents: []dag.StageID{1, 5}, Phases: s(70, 90, 12)},
		{ID: 7, Name: "rankUpdate2", Parents: []dag.StageID{3, 6}, Phases: s(50, 70, 10)},
		{ID: 8, Name: "collectRanks", Parents: []dag.StageID{7}, Phases: s(25, 40, 6)},
	})
}

// SQLJoin builds a bushy three-way join query (8 stages): three table
// scans in parallel, two hash-join builds on separate paths, the probe
// join, an aggregation and a final sort — the classic SQL-on-Spark shape.
func SQLJoin(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.35}
	}
	return mustJob("SQLJoin", ref, []Stage{
		{ID: 1, Name: "scanFact", Phases: s(130, 80, 15)},
		{ID: 2, Name: "scanDimA", Phases: s(60, 40, 8)},
		{ID: 3, Name: "scanDimB", Phases: s(70, 45, 8)},
		{ID: 4, Name: "buildA", Parents: []dag.StageID{2}, Phases: s(30, 55, 8)},
		{ID: 5, Name: "buildB", Parents: []dag.StageID{3}, Phases: s(35, 60, 8)},
		{ID: 6, Name: "probeJoin", Parents: []dag.StageID{1, 4, 5}, Phases: s(80, 120, 18)},
		{ID: 7, Name: "aggregate", Parents: []dag.StageID{6}, Phases: s(45, 70, 10)},
		{ID: 8, Name: "sortLimit", Parents: []dag.StageID{7}, Phases: s(25, 35, 5)},
	})
}

// ETL builds a log-sessionization pipeline (7 stages): raw-log and user-
// profile scans in parallel, sessionization and enrichment on separate
// paths, a join, then parallel quality-metrics and export stages.
func ETL(ref *cluster.Cluster, scale float64) *Job {
	s := func(r, c, w float64) PhaseSpec {
		return PhaseSpec{ReadSec: r * scale, ComputeSec: c * scale, WriteSec: w * scale, Skew: 0.45}
	}
	return mustJob("ETL", ref, []Stage{
		{ID: 1, Name: "scanLogs", Phases: s(110, 70, 14)},
		{ID: 2, Name: "scanUsers", Phases: s(50, 35, 7)},
		{ID: 3, Name: "sessionize", Parents: []dag.StageID{1}, Phases: s(55, 90, 12)},
		{ID: 4, Name: "enrichUsers", Parents: []dag.StageID{2}, Phases: s(40, 55, 8)},
		{ID: 5, Name: "joinSessions", Parents: []dag.StageID{3, 4}, Phases: s(65, 95, 14)},
		{ID: 6, Name: "qualityMetrics", Parents: []dag.StageID{5}, Phases: s(30, 45, 6)},
		{ID: 7, Name: "export", Parents: []dag.StageID{5}, Phases: s(35, 30, 20)},
	})
}

// Gallery returns the extra workloads keyed by name.
func Gallery(ref *cluster.Cluster, scale float64) map[string]*Job {
	return map[string]*Job{
		"PageRank": PageRank(ref, scale),
		"SQLJoin":  SQLJoin(ref, scale),
		"ETL":      ETL(ref, scale),
	}
}
