package geo

import (
	"fmt"
	"math"

	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// Placement strategies. The paper positions DelayStage ("when to execute")
// as orthogonal to the placement line of work ("where to execute" —
// Iridium, Tetrium, Clarinet) and commits to combining them; these
// baselines make that combination concrete so the geo experiment can
// evaluate placement × delay jointly.

// GreedyWANPlacement places stages in topological order, each into the
// datacenter that minimizes its WAN input bytes given where its parents
// already sit (ties: lowest DC index) — the Iridium-style data-locality
// heuristic at stage granularity.
func GreedyWANPlacement(t *Topology, j *workload.Job) (Placement, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	topo, err := j.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	p := make(Placement, len(topo))
	nextRoot := 0
	for _, id := range topo {
		parents := j.Graph.Parents(id)
		if len(parents) == 0 {
			// Spread roots round-robin: their input is DC-local storage.
			p[id] = nextRoot % len(t.DCs)
			nextRoot++
			continue
		}
		weights := InputWeights(j, id)
		in := float64(j.Profiles[id].ShuffleIn)
		bestDC, bestCost := 0, math.Inf(1)
		for dc := 0; dc < len(t.DCs); dc++ {
			cost := 0.0
			for pid, frac := range weights {
				if p[pid] != dc {
					cost += frac * in
				}
			}
			if cost < bestCost {
				bestCost, bestDC = cost, dc
			}
		}
		p[id] = bestDC
	}
	return p, nil
}

// BottleneckAwarePlacement refines a placement by considering transfer
// *time* rather than bytes: each stage goes to the DC minimizing its
// worst-link transfer time (Eq. 1's max over links), which differs from
// byte-minimal placement on heterogeneous WANs. Parents are taken from
// the base placement; stages are revisited in topological order.
func BottleneckAwarePlacement(t *Topology, j *workload.Job, base Placement) (Placement, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	topo, err := j.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	p := make(Placement, len(topo))
	for id, dc := range base {
		p[id] = dc
	}
	for _, id := range topo {
		if len(j.Graph.Parents(id)) == 0 {
			continue // keep root placement: input is local storage
		}
		weights := InputWeights(j, id)
		in := float64(j.Profiles[id].ShuffleIn)
		bestDC, bestTime := p[id], math.Inf(1)
		for dc := 0; dc < len(t.DCs); dc++ {
			worst := 0.0
			for pid, frac := range weights {
				src := p[pid]
				bw := t.DCs[dc].NetBW
				if src != dc {
					bw = t.WAN[src][dc]
				}
				if tt := frac * in / bw; tt > worst {
					worst = tt
				}
			}
			if worst < bestTime {
				bestTime, bestDC = worst, dc
			}
		}
		p[id] = bestDC
	}
	return p, nil
}

// LoadBalance counts stages per DC — a quick skew check for tests and
// reporting.
func LoadBalance(t *Topology, p Placement) []int {
	counts := make([]int, len(t.DCs))
	for _, dc := range p {
		if dc >= 0 && dc < len(counts) {
			counts[dc]++
		}
	}
	return counts
}

// PlacementNames labels the built-in strategies for experiment tables.
func PlacementNames() []string { return []string{"spread", "greedy-WAN", "bottleneck-aware"} }

// BuildPlacement constructs one of the named placements.
func BuildPlacement(name string, t *Topology, j *workload.Job) (Placement, error) {
	switch name {
	case "spread":
		return SpreadPlacement(j, len(t.DCs))
	case "greedy-WAN":
		return GreedyWANPlacement(t, j)
	case "bottleneck-aware":
		base, err := GreedyWANPlacement(t, j)
		if err != nil {
			return nil, err
		}
		return BottleneckAwarePlacement(t, j, base)
	}
	return nil, fmt.Errorf("geo: unknown placement %q", name)
}

var _ = dag.StageID(0)
