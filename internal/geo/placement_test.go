package geo

import (
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/workload"
)

func TestGreedyWANPlacementReducesTraffic(t *testing.T) {
	tp := topo3(400)
	ref := refCluster()
	wl := workload.TriangleCount(ref, 0.3)
	spread, err := SpreadPlacement(wl, 3)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyWANPlacement(tp, wl)
	if err != nil {
		t.Fatal(err)
	}
	sj := &Job{Workload: wl, Placement: spread}
	gj := &Job{Workload: wl, Placement: greedy}
	if WANBytes(tp, gj) > WANBytes(tp, sj) {
		t.Fatalf("greedy placement moved more WAN bytes (%d) than spread (%d)",
			WANBytes(tp, gj), WANBytes(tp, sj))
	}
}

func TestGreedyPlacementSpeedsJob(t *testing.T) {
	tp := topo3(300)
	ref := refCluster()
	wl := workload.CosineSimilarity(ref, 0.3)
	spread, _ := SpreadPlacement(wl, 3)
	greedy, err := GreedyWANPlacement(tp, wl)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(Options{Topology: tp}, &Job{Workload: wl, Placement: spread}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := Run(Options{Topology: tp}, &Job{Workload: wl, Placement: greedy}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gres.JCT > sres.JCT {
		t.Fatalf("WAN-aware placement slower: %.1f vs %.1f", gres.JCT, sres.JCT)
	}
}

func TestBottleneckAwareOnHeterogeneousWAN(t *testing.T) {
	// DC2's inbound links are crippled; the bottleneck-aware pass must
	// route join stages away from it even when byte counts tie.
	tp := topo3(800)
	tp.WAN[0][2] = cluster.MBps(50)
	tp.WAN[1][2] = cluster.MBps(50)
	ref := refCluster()
	wl := workload.SQLJoin(ref, 0.3)
	base, err := GreedyWANPlacement(tp, wl)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := BottleneckAwarePlacement(tp, wl, base)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := Run(Options{Topology: tp}, &Job{Workload: wl, Placement: base}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ires, err := Run(Options{Topology: tp}, &Job{Workload: wl, Placement: improved}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ires.JCT > bres.JCT*1.001 {
		t.Fatalf("bottleneck-aware placement regressed: %.1f vs %.1f", ires.JCT, bres.JCT)
	}
}

func TestBuildPlacementNames(t *testing.T) {
	tp := topo3(300)
	wl := workload.LDA(refCluster(), 0.2)
	for _, name := range PlacementNames() {
		p, err := BuildPlacement(name, tp, wl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		j := &Job{Workload: wl, Placement: p}
		if err := j.Validate(tp); err != nil {
			t.Fatalf("%s placement invalid: %v", name, err)
		}
	}
	if _, err := BuildPlacement("bogus", tp, wl); err == nil {
		t.Fatal("unknown placement must error")
	}
}

// Placement and delay scheduling compose: for each placement, DelayStage
// must not regress, and the combination (good placement + delays) must be
// the fastest overall — the joint effectiveness the paper's Sec. 6
// speculates about.
func TestPlacementDelayComposition(t *testing.T) {
	tp := topo3(400)
	ref := refCluster()
	wl := workload.TriangleCount(ref, 0.25)
	type outcome struct {
		name  string
		plain float64
		delay float64
	}
	var results []outcome
	for _, name := range PlacementNames() {
		p, err := BuildPlacement(name, tp, wl)
		if err != nil {
			t.Fatal(err)
		}
		j := &Job{Workload: wl, Placement: p}
		plain, err := Run(Options{Topology: tp}, j, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := ComputeDelays(DelayOptions{Topology: tp, MaxCandidates: 12}, j)
		if err != nil {
			t.Fatal(err)
		}
		delayed, err := Run(Options{Topology: tp}, j, sched.Delays)
		if err != nil {
			t.Fatal(err)
		}
		if delayed.JCT > plain.JCT*1.001 {
			t.Errorf("%s: delays regressed (%.1f vs %.1f)", name, delayed.JCT, plain.JCT)
		}
		results = append(results, outcome{name, plain.JCT, delayed.JCT})
		t.Logf("%-18s plain %8.1f  +delays %8.1f", name, plain.JCT, delayed.JCT)
	}
	// The best combined result must beat spread-without-delays.
	best := results[0].delay
	for _, r := range results {
		if r.delay < best {
			best = r.delay
		}
	}
	if best >= results[0].plain {
		t.Errorf("placement+delays (%.1f) should beat spread-no-delays (%.1f)", best, results[0].plain)
	}
}
