package geo

import (
	"fmt"
	"time"

	"delaystage/internal/dag"
)

// DelayOptions configures the geo-distributed DelayStage search.
type DelayOptions struct {
	Topology *Topology
	// SlotSeconds / MaxCandidates mirror core.Options (0 = 1 s / 32).
	SlotSeconds   float64
	MaxCandidates int
	// RefinePasses re-scans stages after the first sweep (0 = 2; -1 = off).
	RefinePasses int
}

// DelaySchedule is the geo search's output.
type DelaySchedule struct {
	Delays        map[dag.StageID]float64
	Makespan      float64 // predicted JCT under X
	StockMakespan float64 // predicted JCT with no delays
	K             []dag.StageID
	ComputeTime   time.Duration
	Evaluations   int
}

// ComputeDelays runs the DelayStage greedy (Alg. 1 semantics: longest
// execution path first, slotted candidate scan, greedy makespan
// minimization) against the geo simulator, producing submission delays
// that interleave WAN transfers with remote computation.
func ComputeDelays(opt DelayOptions, job *Job) (*DelaySchedule, error) {
	start := time.Now()
	if opt.Topology == nil {
		return nil, fmt.Errorf("geo: nil topology")
	}
	if err := opt.Topology.Validate(); err != nil {
		return nil, err
	}
	if err := job.Validate(opt.Topology); err != nil {
		return nil, err
	}
	if opt.SlotSeconds <= 0 {
		opt.SlotSeconds = 1
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 32
	}
	if opt.RefinePasses == 0 {
		opt.RefinePasses = 2
	} else if opt.RefinePasses < 0 {
		opt.RefinePasses = 0
	}

	wl := job.Workload
	reach, err := dag.NewReachability(wl.Graph)
	if err != nil {
		return nil, err
	}
	sched := &DelaySchedule{Delays: map[dag.StageID]float64{}}
	sched.K = dag.ParallelStages(wl.Graph, reach)

	eval := func(delays map[dag.StageID]float64) (float64, error) {
		res, err := Run(Options{Topology: opt.Topology}, job, delays)
		if err != nil {
			return 0, err
		}
		sched.Evaluations++
		return res.JCT, nil
	}

	stock, err := eval(nil)
	if err != nil {
		return nil, err
	}
	sched.StockMakespan = stock
	if len(sched.K) == 0 {
		sched.Makespan = stock
		sched.ComputeTime = time.Since(start)
		return sched, nil
	}

	// Solo times for path weighting: each stage alone in the topology.
	solo := make(map[dag.StageID]float64, wl.Graph.Len())
	for _, id := range sortedStages(wl) {
		p := wl.Profiles[id]
		dc := job.Placement[id]
		read := 0.0
		in := float64(p.ShuffleIn)
		for pid, frac := range InputWeights(wl, id) {
			src := job.Placement[pid]
			bw := opt.Topology.DCs[dc].NetBW
			if src != dc {
				bw = opt.Topology.WAN[src][dc]
			}
			if t := frac * in / bw; t > read {
				read = t // Eq. (1): slowest input link gates the read
			}
		}
		if len(wl.Graph.Parents(id)) == 0 && in > 0 {
			read = in / opt.Topology.DCs[dc].NetBW
		}
		compute := in / (float64(opt.Topology.DCs[dc].Executors) * p.ProcRate)
		write := float64(p.ShuffleOut) / opt.Topology.DCs[dc].DiskBW
		solo[id] = read + compute + write
	}
	weight := func(id dag.StageID) float64 { return solo[id] }
	paths := dag.ExecutionPaths(wl.Graph, reach, weight)
	dag.SortPathsDescending(paths, weight)

	best := stock
	scan := func(kid dag.StageID) error {
		upper := stock - solo[kid]
		if upper < 0 {
			upper = 0
		}
		n := int(upper/opt.SlotSeconds) + 1
		if n > opt.MaxCandidates {
			n = opt.MaxCandidates
		}
		step := upper
		if n > 1 {
			step = upper / float64(n-1)
		}
		incumbent := sched.Delays[kid]
		bestDelay := incumbent
		try := func(x float64) error {
			if x < 0 {
				return nil
			}
			sched.Delays[kid] = x
			mk, err := eval(sched.Delays)
			if err != nil {
				return err
			}
			if mk < best-1e-9 {
				best = mk
				bestDelay = x
			}
			return nil
		}
		for i := 0; i < n; i++ {
			if err := try(float64(i) * step); err != nil {
				return err
			}
		}
		// Local refinement around the coarse winner: the WAN-bound
		// landscape is rugged and the coarse grid alone is sensitive to
		// its resolution.
		if step > opt.SlotSeconds {
			for _, dx := range []float64{-step / 2, -step / 4, step / 4, step / 2} {
				if err := try(bestDelay + dx); err != nil {
					return err
				}
			}
		}
		if bestDelay == 0 {
			delete(sched.Delays, kid)
		} else {
			sched.Delays[kid] = bestDelay
		}
		return nil
	}

	for pass := 0; pass <= opt.RefinePasses; pass++ {
		seen := map[dag.StageID]bool{}
		for _, p := range paths {
			for _, kid := range p.Stages {
				if seen[kid] {
					continue
				}
				seen[kid] = true
				if err := scan(kid); err != nil {
					return nil, err
				}
			}
		}
	}
	if best > stock {
		sched.Delays = map[dag.StageID]float64{}
		best = stock
	}
	sched.Makespan = best
	sched.ComputeTime = time.Since(start)
	return sched, nil
}
