package geo

import (
	"fmt"
	"math"
	"sort"

	"delaystage/internal/dag"
)

// Options configures a geo simulation run.
type Options struct {
	Topology *Topology
	// ContentionOverhead is the saturating sharing-efficiency loss, as in
	// internal/sim (default 0.22; negative means 0).
	ContentionOverhead float64
	// MaxTime aborts pathological runs (default 30 days).
	MaxTime float64
}

// Timeline records one stage's lifecycle in the geo simulation.
type Timeline struct {
	Ready      float64
	Start      float64
	ReadEnd    float64
	ComputeEnd float64
	End        float64
}

// Result is a geo simulation outcome.
type Result struct {
	Timelines map[dag.StageID]Timeline
	JCT       float64
	Events    int
	// WANBytes is the total cross-DC traffic moved; AvgWANUtil the mean
	// utilization of WAN capacity over the job's lifetime.
	WANBytes   int64
	AvgWANUtil float64
}

type gPhase uint8

const (
	gRead gPhase = iota
	gCompute
	gWrite
)

// gflow is one fluid consumer: a read flow (local or WAN), a compute item,
// or a write item.
type gflow struct {
	stage     dag.StageID
	ph        gPhase
	remaining float64
	rate      float64
	// resource routing
	srcDC, dstDC int  // for reads; srcDC == dstDC means local NIC
	wan          bool // true when the flow crosses DCs
}

type gstage struct {
	id          dag.StageID
	dc          int
	parentsLeft int
	children    []dag.StageID
	flowsLeft   int // outstanding read flows
	submitted   bool
	complete    bool
	tl          Timeline
}

// Run simulates the placed job under the given delays (x_k seconds after
// a stage becomes ready, exactly as in internal/sim).
func Run(opt Options, job *Job, delays map[dag.StageID]float64) (*Result, error) {
	if opt.Topology == nil {
		return nil, fmt.Errorf("geo: nil topology")
	}
	if err := opt.Topology.Validate(); err != nil {
		return nil, err
	}
	if err := job.Validate(opt.Topology); err != nil {
		return nil, err
	}
	for id, d := range delays {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("geo: stage %d has invalid delay %v", id, d)
		}
	}
	alpha := opt.ContentionOverhead
	if alpha == 0 {
		alpha = 0.22
	} else if alpha < 0 {
		alpha = 0
	}
	if opt.MaxTime <= 0 {
		opt.MaxTime = 30 * 24 * 3600
	}
	t := opt.Topology
	wl := job.Workload

	stages := make(map[dag.StageID]*gstage, wl.Graph.Len())
	for _, id := range sortedStages(wl) {
		st := &gstage{id: id, dc: job.Placement[id], parentsLeft: len(wl.Graph.Parents(id))}
		st.children = wl.Graph.Children(id)
		stages[id] = st
	}

	var flows []*gflow
	// timers: delayed submissions, as (time, stage) pairs kept sorted.
	type timer struct {
		at    float64
		stage dag.StageID
	}
	var timers []timer
	pushTimer := func(at float64, id dag.StageID) {
		timers = append(timers, timer{at, id})
		sort.Slice(timers, func(i, j int) bool {
			if timers[i].at != timers[j].at {
				return timers[i].at < timers[j].at
			}
			return timers[i].stage < timers[j].stage
		})
	}

	now := 0.0
	res := &Result{Timelines: map[dag.StageID]Timeline{}}

	contended := func(capacity float64, n int) float64 {
		if n <= 1 {
			return capacity
		}
		extra := float64(n - 1)
		if extra > 4 {
			extra = 4
		}
		return capacity / (1 + alpha*extra)
	}

	var finishWrite func(st *gstage)

	submit := func(st *gstage) {
		if st.submitted {
			return
		}
		st.submitted = true
		st.tl.Start = now
		in := float64(wl.Profiles[st.id].ShuffleIn)
		weights := InputWeights(wl, st.id)
		if len(weights) == 0 {
			// Root stage: one local storage read.
			flows = append(flows, &gflow{stage: st.id, ph: gRead, remaining: in, srcDC: st.dc, dstDC: st.dc})
			st.flowsLeft = 1
			return
		}
		for p, frac := range weights {
			vol := frac * in
			if almostZero(vol) {
				continue
			}
			src := job.Placement[p]
			flows = append(flows, &gflow{
				stage: st.id, ph: gRead, remaining: vol,
				srcDC: src, dstDC: st.dc, wan: src != st.dc,
			})
			st.flowsLeft++
			if src != st.dc {
				res.WANBytes += int64(vol)
			}
		}
		if st.flowsLeft == 0 { // zero-input stage
			st.tl.ReadEnd = now
			vol := in
			if vol <= 0 {
				vol = 1
			}
			flows = append(flows, &gflow{stage: st.id, ph: gCompute, remaining: vol})
		}
	}

	markReady := func(st *gstage) {
		st.tl.Ready = now
		d := 0.0
		if delays != nil {
			d = delays[st.id]
		}
		if d == 0 {
			submit(st)
		} else {
			pushTimer(now+d, st.id)
		}
	}

	finishWrite = func(st *gstage) {
		st.complete = true
		st.tl.End = now
		res.Timelines[st.id] = st.tl
		if now > res.JCT {
			res.JCT = now
		}
		for _, c := range st.children {
			cst := stages[c]
			cst.parentsLeft--
			if cst.parentsLeft == 0 {
				markReady(cst)
			}
		}
	}

	// Roots ready at t=0.
	for _, id := range wl.Graph.Roots() {
		markReady(stages[id])
	}

	var wanBusyInt float64
	totalWAN := 0.0
	for i := range t.WAN {
		for j := range t.WAN[i] {
			if i != j {
				totalWAN += t.WAN[i][j]
			}
		}
	}

	for len(flows) > 0 || len(timers) > 0 {
		// Fire due timers.
		for len(timers) > 0 && timers[0].at <= now+1e-9 {
			submit(stages[timers[0].stage])
			timers = timers[1:]
		}
		if len(flows) == 0 {
			if len(timers) == 0 {
				break
			}
			now = timers[0].at
			continue
		}
		// Rate assignment: group consumers per resource.
		type key struct {
			kind int // 0 NIC, 1 exec, 2 disk, 3 WAN
			a, b int
		}
		groups := map[key][]*gflow{}
		for _, f := range flows {
			var k key
			switch f.ph {
			case gRead:
				if f.wan {
					k = key{3, f.srcDC, f.dstDC}
				} else {
					k = key{0, f.dstDC, 0}
				}
			case gCompute:
				k = key{1, stages[f.stage].dc, 0}
			case gWrite:
				k = key{2, stages[f.stage].dc, 0}
			}
			groups[k] = append(groups[k], f)
		}
		for k, fs := range groups {
			var capacity float64
			switch k.kind {
			case 0:
				capacity = t.DCs[k.a].NetBW
			case 1:
				capacity = float64(t.DCs[k.a].Executors)
			case 2:
				capacity = t.DCs[k.a].DiskBW
			case 3:
				capacity = t.WAN[k.a][k.b]
			}
			share := contended(capacity, len(fs)) / float64(len(fs))
			for _, f := range fs {
				if f.ph == gCompute {
					f.rate = share * wl.Profiles[f.stage].ProcRate
				} else {
					f.rate = share
				}
			}
		}
		// Next event.
		dt := math.Inf(1)
		for _, f := range flows {
			if f.rate > 1e-12 {
				if d := f.remaining / f.rate; d < dt {
					dt = d
				}
			}
		}
		if len(timers) > 0 {
			if d := timers[0].at - now; d < dt {
				dt = d
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("geo: deadlock at t=%.3f", now)
		}
		if dt < 1e-9 {
			dt = 1e-9
		}
		// Advance.
		for _, f := range flows {
			f.remaining -= f.rate * dt
			if f.ph == gRead && f.wan {
				wanBusyInt += f.rate * dt
			}
		}
		now += dt
		res.Events++
		if now > opt.MaxTime {
			return nil, fmt.Errorf("geo: exceeded MaxTime %.0fs", opt.MaxTime)
		}
		if res.Events > 5_000_000 {
			return nil, fmt.Errorf("geo: event limit exceeded")
		}
		// Completions.
		kept := flows[:0]
		var done []*gflow
		for _, f := range flows {
			if f.remaining <= 1e-6 {
				done = append(done, f)
			} else {
				kept = append(kept, f)
			}
		}
		flows = kept
		sort.Slice(done, func(i, j int) bool {
			if done[i].stage != done[j].stage {
				return done[i].stage < done[j].stage
			}
			return done[i].ph < done[j].ph
		})
		for _, f := range done {
			st := stages[f.stage]
			switch f.ph {
			case gRead:
				st.flowsLeft--
				if st.flowsLeft == 0 {
					st.tl.ReadEnd = now
					vol := float64(wl.Profiles[st.id].ShuffleIn)
					if vol <= 0 {
						vol = 1
					}
					flows = append(flows, &gflow{stage: st.id, ph: gCompute, remaining: vol})
				}
			case gCompute:
				st.tl.ComputeEnd = now
				out := float64(wl.Profiles[st.id].ShuffleOut)
				if out > 0 {
					flows = append(flows, &gflow{stage: st.id, ph: gWrite, remaining: out})
				} else {
					finishWrite(st)
				}
			case gWrite:
				finishWrite(st)
			}
		}
	}
	if res.JCT > 0 && totalWAN > 0 {
		res.AvgWANUtil = wanBusyInt / (totalWAN * res.JCT)
	}
	return res, nil
}
