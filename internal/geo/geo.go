// Package geo extends DelayStage to geo-distributed analytics — the
// future-work direction the paper commits to in Sec. 6 ("we plan to extend
// DelayStage to the geo-distributed setting and examine its effectiveness").
//
// The model follows the geo-analytics literature the paper cites (Iridium,
// Tetrium, Clarinet): a job's stages are *placed* in datacenters; a stage
// shuffle-reads from every parent's datacenter over WAN links that are far
// scarcer than intra-DC bandwidth, computes on its own DC's executors, and
// writes to its DC's storage. Eq. (1)'s "max over input links" — which the
// single-cluster simulator collapses into one NIC — is explicit here: a
// stage's read finishes when its slowest WAN flow does.
//
// The fluid semantics (max-min sharing, saturating contention overhead,
// delayed submission) match internal/sim, so schedules and comparisons
// carry over.
package geo

import (
	"fmt"
	"math"
	"sort"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// Topology is a set of datacenters connected by WAN links.
type Topology struct {
	// DCs holds each datacenter's aggregate capacity (a coarsened
	// cluster: total executors, intra-DC NIC and disk bandwidth).
	DCs []cluster.Node
	// WAN[i][j] is the bandwidth of the link from DC i to DC j in
	// bytes/s (i ≠ j). WAN[i][i] is ignored — local reads use the DC NIC.
	WAN [][]float64
}

// Validate checks the topology's shape and capacities.
func (t *Topology) Validate() error {
	n := len(t.DCs)
	if n == 0 {
		return fmt.Errorf("geo: no datacenters")
	}
	for i, dc := range t.DCs {
		if dc.Executors <= 0 || dc.NetBW <= 0 || dc.DiskBW <= 0 {
			return fmt.Errorf("geo: DC %d has non-positive capacity", i)
		}
	}
	if len(t.WAN) != n {
		return fmt.Errorf("geo: WAN matrix is %d×?, want %d×%d", len(t.WAN), n, n)
	}
	for i := range t.WAN {
		if len(t.WAN[i]) != n {
			return fmt.Errorf("geo: WAN row %d has %d entries, want %d", i, len(t.WAN[i]), n)
		}
		for j := range t.WAN[i] {
			if i != j && t.WAN[i][j] <= 0 {
				return fmt.Errorf("geo: WAN[%d][%d] must be positive", i, j)
			}
		}
	}
	return nil
}

// Placement assigns every stage to a datacenter index.
type Placement map[dag.StageID]int

// Job is a DAG job placed across datacenters.
type Job struct {
	Workload  *workload.Job
	Placement Placement
}

// Validate checks that every stage is placed in a valid DC.
func (j *Job) Validate(t *Topology) error {
	if j.Workload == nil {
		return fmt.Errorf("geo: nil workload")
	}
	if err := j.Workload.Validate(); err != nil {
		return err
	}
	for _, id := range j.Workload.Graph.Stages() {
		dc, ok := j.Placement[id]
		if !ok {
			return fmt.Errorf("geo: stage %d has no placement", id)
		}
		if dc < 0 || dc >= len(t.DCs) {
			return fmt.Errorf("geo: stage %d placed in unknown DC %d", id, dc)
		}
	}
	return nil
}

// UniformWAN builds an n-DC topology with identical DCs and a uniform WAN
// bandwidth, the standard testbed shape in the geo-analytics literature.
func UniformWAN(nDC int, dc cluster.Node, wanBW float64) *Topology {
	t := &Topology{DCs: make([]cluster.Node, nDC), WAN: make([][]float64, nDC)}
	for i := 0; i < nDC; i++ {
		d := dc
		d.ID = i
		t.DCs[i] = d
		t.WAN[i] = make([]float64, nDC)
		for j := 0; j < nDC; j++ {
			if i != j {
				t.WAN[i][j] = wanBW
			}
		}
	}
	return t
}

// SpreadPlacement places stages round-robin over the DCs in topological
// order — a simple locality-oblivious placement baseline.
func SpreadPlacement(j *workload.Job, nDC int) (Placement, error) {
	topo, err := j.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	p := make(Placement, len(topo))
	for i, id := range topo {
		p[id] = i % nDC
	}
	return p, nil
}

// InputWeights returns, for a stage, the fraction of its shuffle input
// produced by each parent (proportional to parent shuffle-output size;
// equal when all outputs are zero). Root stages read everything locally.
func InputWeights(j *workload.Job, id dag.StageID) map[dag.StageID]float64 {
	parents := j.Graph.Parents(id)
	out := make(map[dag.StageID]float64, len(parents))
	if len(parents) == 0 {
		return out
	}
	total := 0.0
	for _, p := range parents {
		total += float64(j.Profiles[p].ShuffleOut)
	}
	for _, p := range parents {
		if total > 0 {
			out[p] = float64(j.Profiles[p].ShuffleOut) / total
		} else {
			out[p] = 1 / float64(len(parents))
		}
	}
	return out
}

// WANBytes returns the total bytes the job moves across WAN links under
// the placement — the metric Iridium/Clarinet minimize. Useful to sanity-
// check placements in tests and examples.
func WANBytes(t *Topology, j *Job) int64 {
	var total int64
	for _, id := range j.Workload.Graph.Stages() {
		dst := j.Placement[id]
		w := InputWeights(j.Workload, id)
		in := j.Workload.Profiles[id].ShuffleIn
		for p, frac := range w {
			if j.Placement[p] != dst {
				total += int64(frac * float64(in))
			}
		}
	}
	return total
}

// sortedStages returns the job's stages sorted by ID (deterministic
// iteration helper).
func sortedStages(j *workload.Job) []dag.StageID {
	ids := j.Graph.Stages()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// almostZero reports |v| below the fluid tolerance.
func almostZero(v float64) bool { return math.Abs(v) < 1e-9 }
