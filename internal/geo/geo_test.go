package geo

import (
	"math"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// dcNode builds a standard datacenter: 32 executors, 10 GB/s intra-DC
// aggregate, 2 GB/s disk.
func dcNode(id int) cluster.Node {
	return cluster.Node{ID: id, Executors: 32, NetBW: cluster.MBps(10000), DiskBW: cluster.MBps(2000)}
}

// topo3 is three identical DCs joined by narrow WAN links.
func topo3(wanMBps float64) *Topology {
	return UniformWAN(3, dcNode(0), cluster.MBps(wanMBps))
}

// refCluster mirrors one DC as a single-node cluster for FromPhases sizing.
func refCluster() *cluster.Cluster {
	n := dcNode(0)
	return &cluster.Cluster{Nodes: []cluster.Node{n}}
}

// chainJob builds parent(dc0) → child(dc1), sized via phase specs on the
// reference DC.
func chainJob(t *testing.T) *Job {
	t.Helper()
	ref := refCluster()
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
	p := workload.FromPhases(ref, workload.PhaseSpec{ReadSec: 10, ComputeSec: 30, WriteSec: 5})
	wl := &workload.Job{Name: "geo-chain", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	return &Job{Workload: wl, Placement: Placement{1: 0, 2: 1}}
}

func TestTopologyValidate(t *testing.T) {
	if err := topo3(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Topology{}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty topology must fail")
	}
	tp := topo3(100)
	tp.WAN[0][1] = 0
	if err := tp.Validate(); err == nil {
		t.Fatal("zero WAN link must fail")
	}
	tp = topo3(100)
	tp.WAN = tp.WAN[:2]
	if err := tp.Validate(); err == nil {
		t.Fatal("ragged WAN matrix must fail")
	}
}

func TestJobValidate(t *testing.T) {
	tp := topo3(100)
	j := chainJob(t)
	if err := j.Validate(tp); err != nil {
		t.Fatal(err)
	}
	delete(j.Placement, 2)
	if err := j.Validate(tp); err == nil {
		t.Fatal("missing placement must fail")
	}
	j = chainJob(t)
	j.Placement[1] = 99
	if err := j.Validate(tp); err == nil {
		t.Fatal("out-of-range DC must fail")
	}
}

// The WAN link gates a cross-DC read: halving WAN bandwidth roughly
// doubles the child's read time.
func TestWANGatesCrossDCRead(t *testing.T) {
	j := chainJob(t)
	fast, err := Run(Options{Topology: topo3(1000)}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Options{Topology: topo3(500)}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr := fast.Timelines[2].ReadEnd - fast.Timelines[2].Start
	sr := slow.Timelines[2].ReadEnd - slow.Timelines[2].Start
	if math.Abs(sr/fr-2) > 0.1 {
		t.Fatalf("halving WAN should double the read: %.2f vs %.2f", fr, sr)
	}
	if slow.WANBytes != int64(j.Workload.Profiles[2].ShuffleIn) {
		t.Fatalf("WAN bytes %d, want the child's full input", slow.WANBytes)
	}
}

// Co-located placement avoids WAN entirely and is faster.
func TestColocationAvoidsWAN(t *testing.T) {
	j := chainJob(t)
	remote, err := Run(Options{Topology: topo3(200)}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Placement[2] = 0
	local, err := Run(Options{Topology: topo3(200)}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	if local.WANBytes != 0 {
		t.Fatalf("co-located job moved %d WAN bytes", local.WANBytes)
	}
	if local.JCT >= remote.JCT {
		t.Fatalf("co-location must be faster: %.1f vs %.1f", local.JCT, remote.JCT)
	}
}

// Eq. (1): a stage reading from two parents finishes its read when the
// slowest link does.
func TestMaxOverLinks(t *testing.T) {
	ref := refCluster()
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2})
	g.MustAdd(dag.Stage{ID: 3, Parents: []dag.StageID{1, 2}})
	p := workload.FromPhases(ref, workload.PhaseSpec{ReadSec: 5, ComputeSec: 10, WriteSec: 2})
	wl := &workload.Job{Name: "fanin", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p, 3: p}}
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Parents in DC 0 and DC 1; child in DC 2. Link 1→2 is 4× slower.
	tp := topo3(800)
	tp.WAN[1][2] = cluster.MBps(200)
	j := &Job{Workload: wl, Placement: Placement{1: 0, 2: 1, 3: 2}}
	res, err := Run(Options{Topology: tp}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timelines[3]
	// Half the input crosses each link; the slow link needs
	// 0.5·In / 200MBps seconds and must gate the read.
	in := float64(wl.Profiles[3].ShuffleIn)
	wantSlow := 0.5 * in / cluster.MBps(200)
	got := tl.ReadEnd - tl.Start
	if math.Abs(got-wantSlow) > wantSlow*0.05 {
		t.Fatalf("read %.2fs, want ≈%.2fs (slowest link)", got, wantSlow)
	}
}

func TestSpreadPlacement(t *testing.T) {
	ref := refCluster()
	wl := workload.LDA(ref, 0.1)
	p, err := SpreadPlacement(wl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != wl.Graph.Len() {
		t.Fatalf("placement covers %d of %d stages", len(p), wl.Graph.Len())
	}
	for id, dc := range p {
		if dc < 0 || dc > 2 {
			t.Fatalf("stage %d in DC %d", id, dc)
		}
	}
}

func TestDelaysHonoredGeo(t *testing.T) {
	j := chainJob(t)
	res, err := Run(Options{Topology: topo3(500)}, j, map[dag.StageID]float64{1: 25})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timelines[1]
	if math.Abs(tl.Start-tl.Ready-25) > 1e-6 {
		t.Fatalf("delay not honored: start %.2f ready %.2f", tl.Start, tl.Ready)
	}
}

func TestRunValidation(t *testing.T) {
	j := chainJob(t)
	if _, err := Run(Options{}, j, nil); err == nil {
		t.Fatal("nil topology must error")
	}
	if _, err := Run(Options{Topology: topo3(100)}, j, map[dag.StageID]float64{1: -1}); err == nil {
		t.Fatal("negative delay must error")
	}
}

// The headline of the geo extension: on a parallel job spread across DCs,
// DelayStage's computed delays interleave WAN transfers with computation
// and shorten the JCT versus submit-when-ready.
func TestGeoDelayStageImproves(t *testing.T) {
	ref := refCluster()
	wl := workload.TriangleCount(ref, 0.3)
	place, err := SpreadPlacement(wl, 3)
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{Workload: wl, Placement: place}
	tp := topo3(400) // WAN 25× scarcer than intra-DC
	sched, err := ComputeDelays(DelayOptions{Topology: tp, MaxCandidates: 16}, j)
	if err != nil {
		t.Fatal(err)
	}
	stock, err := Run(Options{Topology: tp}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Run(Options{Topology: tp}, j, sched.Delays)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.JCT > stock.JCT*1.001 {
		t.Fatalf("geo DelayStage regressed: %.1f vs %.1f", delayed.JCT, stock.JCT)
	}
	gain := 100 * (stock.JCT - delayed.JCT) / stock.JCT
	t.Logf("geo: stock %.1f → delayed %.1f (−%.1f%%), X=%v, WAN util %.1f%%→%.1f%%",
		stock.JCT, delayed.JCT, gain, sched.Delays, stock.AvgWANUtil*100, delayed.AvgWANUtil*100)
	if gain < 3 {
		t.Fatalf("expected a real improvement, got %.1f%%", gain)
	}
}

func TestComputeDelaysSequentialJob(t *testing.T) {
	j := chainJob(t) // pure chain: no parallel stages
	sched, err := ComputeDelays(DelayOptions{Topology: topo3(300)}, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Delays) != 0 || len(sched.K) != 0 {
		t.Fatalf("chain must get no delays: %+v", sched)
	}
}

func TestWANBytesAccounting(t *testing.T) {
	j := chainJob(t)
	tp := topo3(300)
	viaFn := WANBytes(tp, j)
	res, err := Run(Options{Topology: tp}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaFn != res.WANBytes {
		t.Fatalf("static WANBytes %d != simulated %d", viaFn, res.WANBytes)
	}
}

func TestGeoDeterminism(t *testing.T) {
	j := chainJob(t)
	a, err := Run(Options{Topology: topo3(300)}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Topology: topo3(300)}, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.JCT != b.JCT || a.Events != b.Events {
		t.Fatal("geo sim must be deterministic")
	}
}
