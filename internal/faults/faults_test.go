package faults

import (
	"math"
	"math/rand"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/workload"
)

func TestValidate(t *testing.T) {
	bad := []FaultPlan{
		{TaskFailureProb: -0.1},
		{TaskFailureProb: 1.5},
		{StragglerFrac: 2},
		{StragglerFrac: 0.5, StragglerFactor: 0.5},
		{MispredictNoise: 1},
		{Crashes: []NodeCrash{{Node: -1, At: 5}}},
		{Crashes: []NodeCrash{{Node: 0, At: math.Inf(1)}}},
		{SlowNodeFrac: 1.5},
		{SlowNodeFrac: 0.2, SlowNodeFactor: 0.5},
		{NodeMTTF: -1},
		{NodeMTTF: 100}, // horizon missing
		{NodeMTTF: 100, MTTFHorizon: math.Inf(1)},
		{RackCrashes: []RackCrash{{Rack: 0, At: 5}}}, // rack size missing
		{RackSize: 4, RackCrashes: []RackCrash{{Rack: -1, At: 5}}},
		{RackSize: 4, RackCrashes: []RackCrash{{Rack: 0, At: math.NaN()}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) should not validate", i, p)
		}
	}
	good := FaultPlan{TaskFailureProb: 0.1, StragglerFrac: 0.2, StragglerFactor: 3,
		MispredictNoise: 0.3, Crashes: []NodeCrash{{Node: 2, At: 10}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	if good.Zero() {
		t.Fatal("non-empty plan reported Zero")
	}
	if !(FaultPlan{Seed: 42}).Zero() {
		t.Fatal("empty plan (seed only) must be Zero")
	}
}

// Draws must be a pure function of (seed, identifiers): two injectors with
// the same plan agree everywhere; changing the seed changes the outcome.
func TestDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 7, TaskFailureProb: 0.3, StragglerFrac: 0.25, StragglerFactor: 2.5}
	a, err := NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewInjector(plan)
	plan.Seed = 8
	c, _ := NewInjector(plan)
	same, diff := 0, 0
	for job := 0; job < 3; job++ {
		for stage := 0; stage < 10; stage++ {
			for node := 0; node < 5; node++ {
				for att := 1; att <= 3; att++ {
					fa, oka := a.TaskFailure(job, stage, node, att)
					fb, okb := b.TaskFailure(job, stage, node, att)
					if fa != fb || oka != okb {
						t.Fatalf("same-plan injectors disagree at %d/%d/%d/%d", job, stage, node, att)
					}
					fc, okc := c.TaskFailure(job, stage, node, att)
					if oka == okc && fa == fc {
						same++
					} else {
						diff++
					}
					if oka && (fa <= 0 || fa > 0.95) {
						t.Fatalf("fail fraction %v outside (0, 0.95]", fa)
					}
				}
				if a.Straggler(job, stage, node) != b.Straggler(job, stage, node) {
					t.Fatal("straggler draw not deterministic")
				}
			}
		}
	}
	if diff == 0 {
		t.Fatal("changing the seed changed nothing")
	}
	_ = same
}

// The empirical failure rate must track the configured probability, and
// attempts must be independent draws (a retried task can fail again).
func TestFailureRate(t *testing.T) {
	in, err := NewInjector(FaultPlan{Seed: 3, TaskFailureProb: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	n, fails := 0, 0
	for stage := 0; stage < 100; stage++ {
		for node := 0; node < 30; node++ {
			n++
			if _, ok := in.TaskFailure(0, stage, node, 1); ok {
				fails++
			}
		}
	}
	rate := float64(fails) / float64(n)
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("empirical failure rate %.3f far from configured 0.2", rate)
	}
	// nil / zero injectors never fire.
	var nilInj *Injector
	if _, ok := nilInj.TaskFailure(0, 0, 0, 1); ok {
		t.Fatal("nil injector fired")
	}
	if nilInj.Straggler(0, 0, 0) != 1 {
		t.Fatal("nil injector straggles")
	}
}

func TestStragglerFraction(t *testing.T) {
	in, _ := NewInjector(FaultPlan{Seed: 5, StragglerFrac: 0.25, StragglerFactor: 3})
	n, slow := 0, 0
	for stage := 0; stage < 100; stage++ {
		for node := 0; node < 30; node++ {
			n++
			f := in.Straggler(0, stage, node)
			if f != 1 && f != 3 {
				t.Fatalf("straggler factor %v is neither 1 nor 3", f)
			}
			if f > 1 {
				slow++
			}
		}
	}
	frac := float64(slow) / float64(n)
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("empirical straggler fraction %.3f far from configured 0.25", frac)
	}
}

func TestNodeSlowdown(t *testing.T) {
	in, _ := NewInjector(FaultPlan{Seed: 11, SlowNodeFrac: 0.3, SlowNodeFactor: 2})
	slow := 0
	const n = 2000
	for w := 0; w < n; w++ {
		f := in.NodeSlowdown(w)
		if f != 1 && f != 2 {
			t.Fatalf("node slowdown %v is neither 1 nor 2", f)
		}
		if f != in.NodeSlowdown(w) {
			t.Fatal("node slowdown not deterministic")
		}
		if f > 1 {
			slow++
		}
	}
	frac := float64(slow) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("empirical slow-node fraction %.3f far from configured 0.3", frac)
	}
	var nilInj *Injector
	if nilInj.NodeSlowdown(0) != 1 {
		t.Fatal("nil injector slows nodes")
	}
	zero, _ := NewInjector(FaultPlan{Seed: 11})
	if zero.NodeSlowdown(0) != 1 {
		t.Fatal("zero plan slows nodes")
	}
}

func TestCrashEvents(t *testing.T) {
	// Explicit crashes + a rack outage clamped at the cluster edge.
	in, _ := NewInjector(FaultPlan{
		Crashes:     []NodeCrash{{Node: 1, At: 50}},
		RackSize:    4,
		RackCrashes: []RackCrash{{Rack: 1, At: 20}},
	})
	got := in.CrashEvents(6) // rack 1 = nodes 4..7, clamped to 4,5
	want := []NodeCrash{{Node: 4, At: 20}, {Node: 5, At: 20}, {Node: 1, At: 50}}
	if len(got) != len(want) {
		t.Fatalf("got %d crash events %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// MTTF draws: deterministic, within the horizon, and roughly one
	// crash per MTTF of horizon per node.
	plan := FaultPlan{Seed: 3, NodeMTTF: 100, MTTFHorizon: 1000}
	a, _ := NewInjector(plan)
	b, _ := NewInjector(plan)
	ea, eb := a.CrashEvents(50), b.CrashEvents(50)
	if len(ea) == 0 {
		t.Fatal("MTTF plan drew no crashes")
	}
	if len(ea) != len(eb) {
		t.Fatalf("same plan drew %d vs %d crashes", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("MTTF crash draws not deterministic")
		}
		if ea[i].At < 0 || ea[i].At > 1000 {
			t.Fatalf("crash at %v outside horizon", ea[i].At)
		}
		if i > 0 && ea[i].At < ea[i-1].At {
			t.Fatal("crash events not time-sorted")
		}
	}
	// 50 nodes × horizon/MTTF = 10 expected crashes each → ~500 total.
	if n := len(ea); n < 300 || n > 700 {
		t.Fatalf("got %d MTTF crashes, expected around 500", n)
	}

	// A zero plan expands to nothing.
	z, _ := NewInjector(FaultPlan{Seed: 3})
	if ev := z.CrashEvents(10); len(ev) != 0 {
		t.Fatalf("zero plan expanded to %d crash events", len(ev))
	}
}

func TestPerturbJob(t *testing.T) {
	c := cluster.NewM4LargeCluster(4)
	job := workload.PaperWorkloads(c, 0.2)["LDA"]
	in, _ := NewInjector(FaultPlan{Seed: 1, MispredictNoise: 0.3})
	rng := rand.New(rand.NewSource(9))
	noisy := in.PerturbJob(rng, job)
	if err := noisy.Validate(); err != nil {
		t.Fatalf("perturbed job invalid: %v", err)
	}
	changed := false
	for _, id := range job.Graph.Stages() {
		tp, np := job.Profiles[id], noisy.Profiles[id]
		if tp.ProcRate != np.ProcRate || tp.ShuffleIn != np.ShuffleIn {
			changed = true
		}
		if r := np.ProcRate / tp.ProcRate; r < 0.69 || r > 1.31 {
			t.Fatalf("stage %d rate perturbed by %.2f, want within ±30%%", id, r)
		}
	}
	if !changed {
		t.Fatal("±30%% noise changed nothing")
	}
	// Zero-noise perturbation is the identity.
	zin, _ := NewInjector(FaultPlan{Seed: 1})
	same := zin.PerturbJob(rng, job)
	for _, id := range job.Graph.Stages() {
		if job.Profiles[id] != same.Profiles[id] {
			t.Fatal("zero-noise PerturbJob altered a profile")
		}
	}
}
