// Package faults is the deterministic fault-injection layer of the
// reproduction. The simulator and Alg. 1 assume a perfect world — every
// stage runs exactly as profiled and a delay schedule computed up front
// stays valid to the end — but the paper's pitch is deciding *when* to
// submit work on a real cluster, where tasks fail, nodes crash and
// profiled R_k/s_k/d_k are wrong (cf. Graphene's uncertainty budgeting and
// Beránek et al.'s finding that scheduler rankings flip once simulations
// include failures; see PAPERS.md).
//
// An Injector is built from a FaultPlan and hands the simulator
// reproducible fault events. All per-task draws are *hash-based* — a
// deterministic function of (seed, job, stage, node, attempt) — rather
// than consumed from a stream, so the same plan yields the same faults
// regardless of the event order a particular schedule produces. That is
// what makes spark / delaystage / guarded-delaystage comparisons under
// faults apples-to-apples: every strategy sees the identical failure set.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"delaystage/internal/workload"
)

// NodeCrash schedules the loss of one node's executors and local state
// (in-flight tasks plus the shuffle outputs stored on its disks) at an
// absolute simulation time. The node itself returns immediately — Spark
// on EC2 replaces the executor within seconds — but everything it held
// must be re-run or recomputed.
type NodeCrash struct {
	Node int
	At   float64
}

// FaultPlan describes the perturbations of one run. The zero value is the
// perfect world: a simulator driven by a zero plan behaves bit-identically
// to one with no injector at all (pay-for-what-you-use).
type FaultPlan struct {
	// Seed drives every hash-based draw.
	Seed int64
	// TaskFailureProb is the probability that one compute-task attempt
	// (one stage-partition on one node) dies partway through its work.
	TaskFailureProb float64
	// StragglerFrac is the fraction of stage-partitions that straggle;
	// StragglerFactor (≥1) divides a straggler's processing rate.
	StragglerFrac   float64
	StragglerFactor float64
	// MispredictNoise is the maximum relative error PerturbJob applies to
	// each profiled parameter (R_k, s_k, d_k), uniform in [−n, +n].
	MispredictNoise float64
	// Crashes lists scheduled node losses.
	Crashes []NodeCrash
}

// Validate rejects plans the simulator cannot honour.
func (p FaultPlan) Validate() error {
	if p.TaskFailureProb < 0 || p.TaskFailureProb > 1 || math.IsNaN(p.TaskFailureProb) {
		return fmt.Errorf("faults: task failure prob %v outside [0,1]", p.TaskFailureProb)
	}
	if p.StragglerFrac < 0 || p.StragglerFrac > 1 || math.IsNaN(p.StragglerFrac) {
		return fmt.Errorf("faults: straggler fraction %v outside [0,1]", p.StragglerFrac)
	}
	if p.StragglerFrac > 0 && (p.StragglerFactor < 1 || math.IsNaN(p.StragglerFactor)) {
		return fmt.Errorf("faults: straggler factor %v must be ≥1", p.StragglerFactor)
	}
	if p.MispredictNoise < 0 || p.MispredictNoise >= 1 {
		return fmt.Errorf("faults: misprediction noise %v outside [0,1)", p.MispredictNoise)
	}
	for _, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faults: crash of negative node %d", c.Node)
		}
		if c.At < 0 || math.IsNaN(c.At) || math.IsInf(c.At, 0) {
			return fmt.Errorf("faults: crash at invalid time %v", c.At)
		}
	}
	return nil
}

// Zero reports whether the plan injects nothing.
func (p FaultPlan) Zero() bool {
	return p.TaskFailureProb == 0 && p.StragglerFrac == 0 &&
		p.MispredictNoise == 0 && len(p.Crashes) == 0
}

// Injector emits reproducible fault events for one run.
type Injector struct {
	plan FaultPlan
}

// NewInjector validates the plan and builds an injector.
func NewInjector(plan FaultPlan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() FaultPlan { return in.plan }

// Crashes returns the scheduled node crashes in time order.
func (in *Injector) Crashes() []NodeCrash {
	out := append([]NodeCrash(nil), in.plan.Crashes...)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Draw kinds — mixed into the hash so the failure, fail-point and
// straggler draws of the same task are independent.
const (
	kindTaskFail = iota + 1
	kindFailPoint
	kindStraggle
)

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps (seed, kind, job, stage, node, attempt) to a uniform in [0,1).
func (in *Injector) u01(kind, job, stage, node, attempt int) float64 {
	h := splitmix64(uint64(in.plan.Seed))
	for _, v := range [...]int{kind, job, stage, node, attempt} {
		h = splitmix64(h ^ uint64(int64(v)))
	}
	return float64(h>>11) / (1 << 53)
}

// TaskFailure decides whether the given compute-task attempt fails and, if
// so, after what fraction of its work (in (0, 0.95]): tasks rarely die at
// the very start, and never exactly at completion.
func (in *Injector) TaskFailure(job, stage, node, attempt int) (failFrac float64, fails bool) {
	if in == nil || in.plan.TaskFailureProb == 0 {
		return 0, false
	}
	if in.u01(kindTaskFail, job, stage, node, attempt) >= in.plan.TaskFailureProb {
		return 0, false
	}
	return 0.05 + 0.90*in.u01(kindFailPoint, job, stage, node, attempt), true
}

// Straggler returns the processing-rate slowdown of a stage-partition
// (1 = healthy). The draw is per-partition, not per-attempt: a slow node
// stays slow across retries, as machine-level stragglers do.
func (in *Injector) Straggler(job, stage, node int) float64 {
	if in == nil || in.plan.StragglerFrac == 0 {
		return 1
	}
	if in.u01(kindStraggle, job, stage, node, 0) >= in.plan.StragglerFrac {
		return 1
	}
	return in.plan.StragglerFactor
}

// PerturbJob returns a clone of j whose profiled parameters carry the
// plan's misprediction noise: R_k, s_k and d_k each off by a uniform
// relative error in [−MispredictNoise, +MispredictNoise]. The rng is
// passed in (rather than owned) so one seeded *rand.Rand can drive
// profiler noise, trace generation and fault injection in a single
// experiment — reproducible from one -seed flag.
func (in *Injector) PerturbJob(rng *rand.Rand, j *workload.Job) *workload.Job {
	n := in.plan.MispredictNoise
	out := j.Clone()
	if n == 0 {
		return out
	}
	perturb := func(v float64) float64 { return v * (1 + (rng.Float64()*2-1)*n) }
	for _, id := range out.Graph.Stages() {
		p := out.Profiles[id]
		p.ShuffleIn = int64(perturb(float64(p.ShuffleIn)))
		p.ShuffleOut = int64(perturb(float64(p.ShuffleOut)))
		p.ProcRate = perturb(p.ProcRate)
		if p.ShuffleIn < 1 {
			p.ShuffleIn = 1
		}
		if p.ShuffleOut < 0 {
			p.ShuffleOut = 0
		}
		if p.ProcRate <= 0 {
			p.ProcRate = 1
		}
		out.Profiles[id] = p
	}
	return out
}
