// Package faults is the deterministic fault-injection layer of the
// reproduction. The simulator and Alg. 1 assume a perfect world — every
// stage runs exactly as profiled and a delay schedule computed up front
// stays valid to the end — but the paper's pitch is deciding *when* to
// submit work on a real cluster, where tasks fail, nodes crash and
// profiled R_k/s_k/d_k are wrong (cf. Graphene's uncertainty budgeting and
// Beránek et al.'s finding that scheduler rankings flip once simulations
// include failures; see PAPERS.md).
//
// An Injector is built from a FaultPlan and hands the simulator
// reproducible fault events. All per-task draws are *hash-based* — a
// deterministic function of (seed, job, stage, node, attempt) — rather
// than consumed from a stream, so the same plan yields the same faults
// regardless of the event order a particular schedule produces. That is
// what makes spark / delaystage / guarded-delaystage comparisons under
// faults apples-to-apples: every strategy sees the identical failure set.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"delaystage/internal/workload"
)

// NodeCrash schedules the loss of one node's executors and local state
// (in-flight tasks plus the shuffle outputs stored on its disks) at an
// absolute simulation time. The node itself returns immediately — Spark
// on EC2 replaces the executor within seconds — but everything it held
// must be re-run or recomputed.
type NodeCrash struct {
	Node int
	At   float64
}

// RackCrash schedules a correlated outage: every node of one rack is
// lost at the same instant (a top-of-rack switch or PDU failure). Racks
// partition the cluster into consecutive index ranges of RackSize nodes:
// rack r covers nodes [r·RackSize, (r+1)·RackSize).
type RackCrash struct {
	Rack int
	At   float64
}

// FaultPlan describes the perturbations of one run. The zero value is the
// perfect world: a simulator driven by a zero plan behaves bit-identically
// to one with no injector at all (pay-for-what-you-use).
type FaultPlan struct {
	// Seed drives every hash-based draw.
	Seed int64
	// TaskFailureProb is the probability that one compute-task attempt
	// (one stage-partition on one node) dies partway through its work.
	TaskFailureProb float64
	// StragglerFrac is the fraction of stage-partitions that straggle;
	// StragglerFactor (≥1) divides a straggler's processing rate.
	StragglerFrac   float64
	StragglerFactor float64
	// MispredictNoise is the maximum relative error PerturbJob applies to
	// each profiled parameter (R_k, s_k, d_k), uniform in [−n, +n].
	MispredictNoise float64
	// Crashes lists scheduled node losses.
	Crashes []NodeCrash

	// Machine-level failure domains.
	//
	// SlowNodeFrac is the fraction of machines that are persistently
	// degraded (bad disk, thermal throttling, noisy neighbour): every
	// phase on a slow node — network read, compute, disk write — runs
	// SlowNodeFactor (≥1) times slower, across all jobs and stages.
	// Unlike StragglerFrac (drawn per stage-partition), this is drawn
	// once per machine.
	SlowNodeFrac   float64
	SlowNodeFactor float64
	// NodeMTTF, when positive, draws random node crashes: each node's
	// inter-crash gaps are exponential with mean NodeMTTF seconds,
	// hash-derived from the seed (the same plan always crashes the same
	// nodes at the same times). Draws cover [0, MTTFHorizon], which must
	// be positive when NodeMTTF is set — the injector cannot know the
	// run's length.
	NodeMTTF    float64
	MTTFHorizon float64
	// RackCrashes lists correlated rack outages; RackSize (required > 0
	// when any are present) is the number of consecutive node indices
	// per rack.
	RackSize    int
	RackCrashes []RackCrash
}

// Validate rejects plans the simulator cannot honour.
func (p FaultPlan) Validate() error {
	if p.TaskFailureProb < 0 || p.TaskFailureProb > 1 || math.IsNaN(p.TaskFailureProb) {
		return fmt.Errorf("faults: task failure prob %v outside [0,1]", p.TaskFailureProb)
	}
	if p.StragglerFrac < 0 || p.StragglerFrac > 1 || math.IsNaN(p.StragglerFrac) {
		return fmt.Errorf("faults: straggler fraction %v outside [0,1]", p.StragglerFrac)
	}
	if p.StragglerFrac > 0 && (p.StragglerFactor < 1 || math.IsNaN(p.StragglerFactor)) {
		return fmt.Errorf("faults: straggler factor %v must be ≥1", p.StragglerFactor)
	}
	if p.MispredictNoise < 0 || p.MispredictNoise >= 1 {
		return fmt.Errorf("faults: misprediction noise %v outside [0,1)", p.MispredictNoise)
	}
	for _, c := range p.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("faults: crash of negative node %d", c.Node)
		}
		if c.At < 0 || math.IsNaN(c.At) || math.IsInf(c.At, 0) {
			return fmt.Errorf("faults: crash at invalid time %v", c.At)
		}
	}
	if p.SlowNodeFrac < 0 || p.SlowNodeFrac > 1 || math.IsNaN(p.SlowNodeFrac) {
		return fmt.Errorf("faults: slow-node fraction %v outside [0,1]", p.SlowNodeFrac)
	}
	if p.SlowNodeFrac > 0 && (p.SlowNodeFactor < 1 || math.IsNaN(p.SlowNodeFactor)) {
		return fmt.Errorf("faults: slow-node factor %v must be ≥1", p.SlowNodeFactor)
	}
	if p.NodeMTTF < 0 || math.IsNaN(p.NodeMTTF) || math.IsInf(p.NodeMTTF, 0) {
		return fmt.Errorf("faults: node MTTF %v must be ≥0", p.NodeMTTF)
	}
	if p.NodeMTTF > 0 && (p.MTTFHorizon <= 0 || math.IsNaN(p.MTTFHorizon) || math.IsInf(p.MTTFHorizon, 0)) {
		return fmt.Errorf("faults: node MTTF set but horizon %v is not positive", p.MTTFHorizon)
	}
	if len(p.RackCrashes) > 0 && p.RackSize <= 0 {
		return fmt.Errorf("faults: rack crashes scheduled but rack size %d is not positive", p.RackSize)
	}
	for _, rc := range p.RackCrashes {
		if rc.Rack < 0 {
			return fmt.Errorf("faults: crash of negative rack %d", rc.Rack)
		}
		if rc.At < 0 || math.IsNaN(rc.At) || math.IsInf(rc.At, 0) {
			return fmt.Errorf("faults: rack crash at invalid time %v", rc.At)
		}
	}
	return nil
}

// Zero reports whether the plan injects nothing.
func (p FaultPlan) Zero() bool {
	return p.TaskFailureProb == 0 && p.StragglerFrac == 0 &&
		p.MispredictNoise == 0 && len(p.Crashes) == 0 &&
		p.SlowNodeFrac == 0 && p.NodeMTTF == 0 && len(p.RackCrashes) == 0
}

// Injector emits reproducible fault events for one run.
type Injector struct {
	plan FaultPlan
}

// NewInjector validates the plan and builds an injector.
func NewInjector(plan FaultPlan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() FaultPlan { return in.plan }

// Crashes returns the explicitly scheduled node crashes in time order.
// It excludes the machine-level domains (rack crashes, MTTF draws),
// whose expansion needs the cluster size — see CrashEvents.
func (in *Injector) Crashes() []NodeCrash {
	out := append([]NodeCrash(nil), in.plan.Crashes...)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// mttfDrawCap bounds the crash draws per node: a pathologically small
// MTTF against a long horizon must not expand into millions of timers.
const mttfDrawCap = 64

// CrashEvents expands every failure domain of the plan into concrete
// per-node crash events for a cluster of the given size, sorted by
// (time, node): the explicit Crashes list, each RackCrash unrolled over
// its RackSize consecutive nodes (clamped to the cluster), and — when
// NodeMTTF is set — per-node crash times with exponential inter-crash
// gaps of mean NodeMTTF over [0, MTTFHorizon]. All MTTF draws are
// hash-based on (seed, draw index, node), so the failure set is a pure
// function of the plan, independent of schedule and cluster activity.
func (in *Injector) CrashEvents(nodes int) []NodeCrash {
	p := in.plan
	out := append([]NodeCrash(nil), p.Crashes...)
	for _, rc := range p.RackCrashes {
		lo := rc.Rack * p.RackSize
		hi := lo + p.RackSize
		if hi > nodes {
			hi = nodes
		}
		for w := lo; w < hi; w++ {
			out = append(out, NodeCrash{Node: w, At: rc.At})
		}
	}
	if p.NodeMTTF > 0 {
		for w := 0; w < nodes; w++ {
			t := 0.0
			for k := 0; k < mttfDrawCap; k++ {
				u := in.u01(kindNodeCrash, 0, k, w, 0)
				t += -p.NodeMTTF * math.Log1p(-u)
				if t > p.MTTFHorizon {
					break
				}
				out = append(out, NodeCrash{Node: w, At: t})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// NodeSlowdown returns the persistent rate degradation of one machine
// (1 = healthy): SlowNodeFactor with probability SlowNodeFrac, drawn
// once per node index. Every phase on a slow node — read, compute,
// write — runs this factor slower.
func (in *Injector) NodeSlowdown(node int) float64 {
	if in == nil || in.plan.SlowNodeFrac == 0 {
		return 1
	}
	if in.u01(kindSlowNode, 0, 0, node, 0) >= in.plan.SlowNodeFrac {
		return 1
	}
	return in.plan.SlowNodeFactor
}

// Draw kinds — mixed into the hash so the failure, fail-point and
// straggler draws of the same task are independent.
const (
	kindTaskFail = iota + 1
	kindFailPoint
	kindStraggle
	kindSlowNode
	kindNodeCrash
)

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps (seed, kind, job, stage, node, attempt) to a uniform in [0,1).
func (in *Injector) u01(kind, job, stage, node, attempt int) float64 {
	h := splitmix64(uint64(in.plan.Seed))
	for _, v := range [...]int{kind, job, stage, node, attempt} {
		h = splitmix64(h ^ uint64(int64(v)))
	}
	return float64(h>>11) / (1 << 53)
}

// TaskFailure decides whether the given compute-task attempt fails and, if
// so, after what fraction of its work (in (0, 0.95]): tasks rarely die at
// the very start, and never exactly at completion.
func (in *Injector) TaskFailure(job, stage, node, attempt int) (failFrac float64, fails bool) {
	if in == nil || in.plan.TaskFailureProb == 0 {
		return 0, false
	}
	if in.u01(kindTaskFail, job, stage, node, attempt) >= in.plan.TaskFailureProb {
		return 0, false
	}
	return 0.05 + 0.90*in.u01(kindFailPoint, job, stage, node, attempt), true
}

// Straggler returns the processing-rate slowdown of a stage-partition
// (1 = healthy). The draw is per-partition, not per-attempt: a slow node
// stays slow across retries, as machine-level stragglers do.
func (in *Injector) Straggler(job, stage, node int) float64 {
	if in == nil || in.plan.StragglerFrac == 0 {
		return 1
	}
	if in.u01(kindStraggle, job, stage, node, 0) >= in.plan.StragglerFrac {
		return 1
	}
	return in.plan.StragglerFactor
}

// PerturbJob returns a clone of j whose profiled parameters carry the
// plan's misprediction noise: R_k, s_k and d_k each off by a uniform
// relative error in [−MispredictNoise, +MispredictNoise]. The rng is
// passed in (rather than owned) so one seeded *rand.Rand can drive
// profiler noise, trace generation and fault injection in a single
// experiment — reproducible from one -seed flag.
func (in *Injector) PerturbJob(rng *rand.Rand, j *workload.Job) *workload.Job {
	n := in.plan.MispredictNoise
	out := j.Clone()
	if n == 0 {
		return out
	}
	perturb := func(v float64) float64 { return v * (1 + (rng.Float64()*2-1)*n) }
	for _, id := range out.Graph.Stages() {
		p := out.Profiles[id]
		p.ShuffleIn = int64(perturb(float64(p.ShuffleIn)))
		p.ShuffleOut = int64(perturb(float64(p.ShuffleOut)))
		p.ProcRate = perturb(p.ProcRate)
		if p.ShuffleIn < 1 {
			p.ShuffleIn = 1
		}
		if p.ShuffleOut < 0 {
			p.ShuffleOut = 0
		}
		if p.ProcRate <= 0 {
			p.ProcRate = 1
		}
		out.Profiles[id] = p
	}
	return out
}
