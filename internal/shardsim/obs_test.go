package shardsim

import (
	"bytes"
	"testing"

	"delaystage/internal/obs"
	"delaystage/internal/sim"
)

// exportWorlds runs n fresh testWorlds through the given shard config
// with an obs.ShardMux fanning into a JSONL exporter and a Chrome tracer,
// and returns both artifacts. shards == 0 means the sequential reference
// path (plain sim.Run per world, run labels stamped in index order) —
// exactly what cmd/replay's unsharded loop does.
func exportWorlds(t *testing.T, n, shards int) (events, chrome []byte) {
	t.Helper()
	worlds := testWorlds(t, n)
	var evBuf, chBuf bytes.Buffer
	jsonl := obs.NewJSONL(&evBuf)
	tracer := obs.NewChromeTracer()

	if shards == 0 {
		for i := range worlds {
			jsonl.SetRun(i)
			tracer.SetRun(i)
			worlds[i].Opt.Observer = obs.Multi(jsonl, tracer)
			if _, err := sim.Run(worlds[i].Opt, worlds[i].Runs); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		mux := obs.NewShardMux(n, jsonl, tracer)
		err := Run(Config{Shards: shards, Workers: 4, MaxLive: 2}, n,
			func(i int) (World, error) {
				w := worlds[i]
				w.Opt.Observer = mux.Observer(i)
				return w, nil
			},
			func(i int, res *sim.Result) error {
				mux.Flush(i)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Write(&chBuf); err != nil {
		t.Fatal(err)
	}
	return evBuf.Bytes(), chBuf.Bytes()
}

// TestShardedEventExportByteIdentical is the lifted PR 8 restriction: a
// sharded run with the merging per-shard observer emits JSONL event logs
// and Chrome traces byte-identical to the sequential single-engine path,
// at any shard count, chaos regime included. Run under -race in CI this
// also exercises the mux's cross-goroutine handoff.
func TestShardedEventExportByteIdentical(t *testing.T) {
	const n = 9
	refEv, refCh := exportWorlds(t, n, 0)
	if len(refEv) == 0 || bytes.Count(refEv, []byte{'\n'}) < n {
		t.Fatalf("reference export suspiciously small: %d bytes", len(refEv))
	}
	for _, shards := range []int{1, 3, 8} {
		ev, ch := exportWorlds(t, n, shards)
		if !bytes.Equal(refEv, ev) {
			t.Errorf("shards=%d: JSONL events differ from sequential reference", shards)
		}
		if !bytes.Equal(refCh, ch) {
			t.Errorf("shards=%d: Chrome trace differs from sequential reference", shards)
		}
	}
}

// TestShardMuxNilSinks: with no live sinks (including typed nils) the mux
// hands the engines nil observers, keeping the no-observation fast path.
func TestShardMuxNilSinks(t *testing.T) {
	var jsonl *obs.JSONL
	var tracer *obs.ChromeTracer
	mux := obs.NewShardMux(3, jsonl, tracer, nil)
	if mux.Active() {
		t.Error("mux with only nil sinks reports Active")
	}
	if o := mux.Observer(0); o != nil {
		t.Errorf("Observer with no sinks = %v, want nil", o)
	}
	mux.Flush(0) // must not panic
}

// TestShardMuxOutOfOrderFlush: worlds finishing out of index order are
// held and drained only when the frontier reaches them.
func TestShardMuxOutOfOrderFlush(t *testing.T) {
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	mux := obs.NewShardMux(3, jsonl)
	obs0, obs1, obs2 := mux.Observer(0), mux.Observer(1), mux.Observer(2)
	ev := func(t float64, job int) sim.Event {
		return sim.Event{T: t, Kind: sim.EvJobDone, Job: job, Stage: -1, Node: -1}
	}
	obs2.OnEvent(ev(30, 2))
	obs0.OnEvent(ev(10, 0))
	obs1.OnEvent(ev(20, 1))
	mux.Flush(2) // frontier still at 0: nothing drains
	mux.Flush(1)
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("premature drain before world 0 finished:\n%s", buf.Bytes())
	}
	mux.Flush(0) // unblocks all three, in index order
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":10,"kind":"job_done","run":0,"job":0}` + "\n" +
		`{"t":20,"kind":"job_done","run":1,"job":1}` + "\n" +
		`{"t":30,"kind":"job_done","run":2,"job":2}` + "\n"
	if buf.String() != want {
		t.Errorf("drained log:\n%s\nwant:\n%s", buf.String(), want)
	}
}
