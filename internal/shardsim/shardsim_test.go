package shardsim

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/faults"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// testWorlds prepares n deterministic, disjoint worlds: every stochastic
// draw happens here, sequentially, so build(i) is a pure function of i.
// Half the worlds run fault-free on a coarse slice (the replay shape);
// the other half run the chaos regime on a 4-machine slice (crashes,
// stragglers, slow nodes, speculation, blacklisting).
func testWorlds(t testing.TB, n int) []World {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	worlds := make([]World, n)
	for i := range worlds {
		if i%2 == 0 {
			slice := sim.Coarsen(cluster.NewTraceCluster(2, 4, rng))
			job := workload.RandomJob(fmt.Sprintf("w%d", i), slice, 4+i%5, rng)
			worlds[i] = World{
				Opt:  sim.Options{Cluster: slice, TrackNode: -1},
				Runs: []sim.JobRun{{Job: job, Arrival: float64(i) * 10}},
			}
			continue
		}
		slice := cluster.NewTraceCluster(4, 4, rng)
		job := workload.RandomJob(fmt.Sprintf("w%d", i), slice, 4+i%5, rng)
		inj, err := faults.NewInjector(faults.FaultPlan{
			Seed: int64(i), TaskFailureProb: 0.05, StragglerFrac: 0.25, StragglerFactor: 3,
			SlowNodeFrac: 0.25, SlowNodeFactor: 2.5, NodeMTTF: 5000, MTTFHorizon: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = World{
			Opt: sim.Options{Cluster: slice, TrackNode: -1, Faults: inj,
				MaxAttempts: 8, Speculation: true, BlacklistAfter: 3},
			Runs: []sim.JobRun{{Job: job, Arrival: float64(i) * 10}},
		}
	}
	return worlds
}

// outcome is the reduced per-world record the invariance tests compare.
type outcome struct {
	JCT    float64
	Events int
	CPU    float64
	Failed bool
}

func runWorlds(t testing.TB, cfg Config, worlds []World) []byte {
	t.Helper()
	slots := make([]outcome, len(worlds))
	err := Run(cfg, len(worlds),
		func(i int) (World, error) { return worlds[i], nil },
		func(i int, res *sim.Result) error {
			slots[i] = outcome{JCT: res.JCT(0), Events: res.Events,
				CPU: res.AvgCPUUtil, Failed: res.Failed(0) != nil}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(slots)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestShardCountInvariance is the tentpole acceptance property: the same
// worlds reduced through 1, 4 and 8 shards — sequentially, on a worker
// pool, with a tiny live window, and through the single-stepped Runner —
// produce byte-identical JSON. Run under -race in CI, this doubles as the
// race check on the worker pool.
func TestShardCountInvariance(t *testing.T) {
	worlds := testWorlds(t, 30)
	ref := runWorlds(t, Config{Shards: 1}, worlds)
	configs := []Config{
		{Shards: 4},
		{Shards: 8},
		{Shards: 4, Workers: 4},
		{Shards: 8, Workers: 3, MaxLive: 2},
		{Shards: 3, MaxLive: 1},
	}
	for _, cfg := range configs {
		if got := runWorlds(t, cfg, worlds); string(got) != string(ref) {
			t.Errorf("shards=%d workers=%d maxlive=%d: output differs from shards=1",
				cfg.Shards, cfg.Workers, cfg.MaxLive)
		}
	}

	// The stepped Runner — global timestamp order across shards — must
	// reduce to the same bytes too. With the window wide enough to hold
	// every world (MaxLive ≥ worlds per shard) the merged event stream is
	// globally ordered; a tighter window only bands the order (a freshly
	// activated world enters at its own arrival time), so the monotonicity
	// assertion below needs the full window.
	slots := make([]outcome, len(worlds))
	r := NewRunner(Config{Shards: 4, MaxLive: len(worlds)}, len(worlds),
		func(i int) (World, error) { return worlds[i], nil },
		func(i int, res *sim.Result) error {
			slots[i] = outcome{JCT: res.JCT(0), Events: res.Events,
				CPU: res.AvgCPUUtil, Failed: res.Failed(0) != nil}
			return nil
		})
	last := 0.0
	for r.HasPendingEvents() {
		p := r.PeekNextEventTime()
		if p < last {
			t.Fatalf("merging clock ran backwards: %v after %v", p, last)
		}
		last = p
		if err := r.StepNextEvent(); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := json.Marshal(slots)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(ref) {
		t.Error("stepped Runner output differs from shards=1")
	}
}

// TestShardMatchesDirectRun anchors the whole construction: every world's
// reduced result must be DeepEqual to simulating that world alone.
func TestShardMatchesDirectRun(t *testing.T) {
	worlds := testWorlds(t, 12)
	got := make([]*sim.Result, len(worlds))
	err := Run(Config{Shards: 4, MaxLive: 2}, len(worlds),
		func(i int) (World, error) { return worlds[i], nil },
		func(i int, res *sim.Result) error { got[i] = res; return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range worlds {
		ref, err := sim.Run(w.Opt, w.Runs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got[i]) {
			t.Errorf("world %d: sharded result differs from direct sim.Run", i)
		}
	}
}

// TestShardErrorDeterministic: the reported failure is the lowest failing
// world index at every shard/worker setting.
func TestShardErrorDeterministic(t *testing.T) {
	worlds := testWorlds(t, 10)
	build := func(i int) (World, error) {
		if i == 7 || i == 3 {
			return World{}, fmt.Errorf("boom %d", i)
		}
		return worlds[i], nil
	}
	for _, cfg := range []Config{{Shards: 1}, {Shards: 4}, {Shards: 8, Workers: 4}} {
		err := Run(cfg, len(worlds), build, func(int, *sim.Result) error { return nil })
		if err == nil || err.Error() != "boom 3" {
			t.Errorf("shards=%d: got error %v, want boom 3", cfg.Shards, err)
		}
	}
}

// TestShardAllocBudget guards the runner's per-world overhead: reducing W
// worlds through the merging clock must not allocate appreciably more than
// running the same worlds through plain sim.Run back to back. The window
// bookkeeping (heap entries, stepper wrappers) is O(1) per world; peeks
// and steps reuse the engine's scratch buffers and allocate nothing.
func TestShardAllocBudget(t *testing.T) {
	worlds := testWorlds(t, 8)
	plain := testing.AllocsPerRun(3, func() {
		for _, w := range worlds {
			if _, err := sim.Run(w.Opt, w.Runs); err != nil {
				t.Fatal(err)
			}
		}
	})
	sharded := testing.AllocsPerRun(3, func() {
		err := Run(Config{Shards: 4, MaxLive: 2, Workers: 1}, len(worlds),
			func(i int) (World, error) { return worlds[i], nil },
			func(int, *sim.Result) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	})
	budget := plain*1.25 + 200
	if sharded > budget {
		t.Errorf("sharded run allocates %.0f per pass, budget %.0f (plain: %.0f)", sharded, budget, plain)
	}
}

// TestShardCancellation: cancelling the context mid-run returns promptly
// with ctx.Err() and leaks no worker goroutines.
func TestShardCancellation(t *testing.T) {
	worlds := testWorlds(t, 40)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var reduced atomic.Int64
	err := Run(Config{Shards: 8, Workers: 4, MaxLive: 2, Ctx: ctx}, len(worlds),
		func(i int) (World, error) { return worlds[i], nil },
		func(i int, res *sim.Result) error {
			if reduced.Add(1) == 3 {
				cancel()
			}
			return nil
		})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := reduced.Load(); n >= int64(len(worlds)) {
		t.Fatalf("cancellation did not stop the run (%d/%d worlds reduced)", n, len(worlds))
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardDegenerateInputs: zero worlds is a no-op; more shards than
// worlds clamps.
func TestShardDegenerateInputs(t *testing.T) {
	if err := Run(Config{Shards: 4}, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	worlds := testWorlds(t, 2)
	var calls atomic.Int64
	err := Run(Config{Shards: 16, Workers: 8}, len(worlds),
		func(i int) (World, error) { return worlds[i], nil },
		func(int, *sim.Result) error { calls.Add(1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("reduced %d worlds, want 2", calls.Load())
	}
}
