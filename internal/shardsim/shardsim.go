// Package shardsim runs many independent simulation worlds as N engine
// shards advanced by merging clocks — the shared-clock decomposition that
// takes the trace replay to full Alibaba scale (2.7M jobs) with bounded
// memory.
//
// A world is one self-contained simulation: its own cluster (a disjoint
// machine partition — per-job slices in the replay, a cluster partition in
// the co-scheduled mode) and its own job subset. Worlds never share
// resources, so no stepping interleaving can change any world's
// trajectory; per-world results are bit-identical to running each world
// through sim.Run alone, at any shard count and any worker count. The
// merging clocks are therefore not a correctness device but a *resource*
// device: inside a shard, a k-way heap over sim.Stepper.PeekNextEventTime
// advances the live window of worlds in global timestamp order, which (a)
// bounds live engine state to MaxLive worlds per shard regardless of how
// many worlds the shard owns, and (b) keeps the live worlds' clocks packed
// together, so a progress observer sees the replay move through trace time
// monotonically instead of world-by-world.
//
// Determinism contract (same discipline as experiments.Config.Parallelism):
// world i always lands on shard i%Shards, shards own disjoint index sets,
// build(i) must be a pure function of i, and reduce(i, res) is called
// exactly once per world with results that do not depend on scheduling.
// Callers reduce into indexed slots and fold them in index order, so the
// final output is byte-identical for any Shards/Workers/MaxLive setting.
package shardsim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"delaystage/internal/sim"
)

// World is one self-contained simulation: options (cluster = the world's
// machine partition) plus its job runs.
type World struct {
	Opt  sim.Options
	Runs []sim.JobRun
}

// Config shapes a sharded run.
type Config struct {
	// Shards is the number of engine shards. World i belongs to shard
	// i%Shards. Zero or negative means 1.
	Shards int
	// Workers is the number of goroutines driving shards (each shard is
	// driven by exactly one worker at a time, so Workers beyond Shards is
	// clamped). Zero or negative means min(Shards, GOMAXPROCS).
	Workers int
	// MaxLive caps the live (activated, not yet drained) worlds per shard
	// — the memory bound: engine state exists only for live worlds. Zero
	// or negative means 64. Within the window the merging clock advances
	// worlds in global timestamp order; a drained world's slot is refilled
	// with the next world index of the shard.
	MaxLive int
	// Ctx, when non-nil, cancels the run early: workers observe the
	// cancellation between events and return promptly (no goroutine
	// outlives Run). Run then reports ctx.Err() unless a world already
	// failed (the lowest-index world error wins, deterministically).
	Ctx context.Context
}

func (c *Config) defaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxLive <= 0 {
		c.MaxLive = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
}

// liveWorld is one activated world in a shard's merging-clock heap.
type liveWorld struct {
	peek float64
	idx  int // world index (global)
	st   *sim.Stepper
}

// worldHeap orders live worlds by (peek time, world index) — the index
// tie-break keeps the stepping order deterministic when clocks collide.
type worldHeap []liveWorld

func (h worldHeap) Len() int { return len(h) }
func (h worldHeap) Less(i, j int) bool {
	if h[i].peek != h[j].peek {
		return h[i].peek < h[j].peek
	}
	return h[i].idx < h[j].idx
}
func (h worldHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *worldHeap) Push(x interface{}) { *h = append(*h, x.(liveWorld)) }
func (h *worldHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// shard owns the worlds {i : i%Shards == s} and advances a MaxLive-bounded
// window of them in global timestamp order.
type shard struct {
	n, shards, id int // world count, shard count, this shard's id
	maxLive       int
	next          int // next unactivated world: id + next*shards
	activated     int
	live          worldHeap
	build         func(int) (World, error)
	reduce        func(int, *sim.Result) error
	err           error
	errIdx        int
}

func newShard(cfg Config, id, n int, build func(int) (World, error), reduce func(int, *sim.Result) error) *shard {
	return &shard{n: n, shards: cfg.Shards, id: id, maxLive: cfg.MaxLive,
		build: build, reduce: reduce, errIdx: n}
}

// fail records the shard's terminal error under the world index it
// belongs to (the lowest index wins when Run folds shards together).
func (s *shard) fail(idx int, err error) {
	s.err, s.errIdx = err, idx
}

// fill activates worlds until the window is full or the shard's index
// space is exhausted.
func (s *shard) fill() {
	for s.err == nil && len(s.live) < s.maxLive {
		idx := s.id + s.next*s.shards
		if idx >= s.n {
			return
		}
		s.next++
		w, err := s.build(idx)
		if err != nil {
			s.fail(idx, err)
			return
		}
		st, err := sim.NewStepper(w.Opt, w.Runs)
		if err != nil {
			s.fail(idx, fmt.Errorf("world %d: %w", idx, err))
			return
		}
		s.activated++
		heap.Push(&s.live, liveWorld{peek: st.PeekNextEventTime(), idx: idx, st: st})
	}
}

// hasPendingEvents reports whether the shard still has work.
func (s *shard) hasPendingEvents() bool {
	if s.err != nil {
		return false
	}
	return len(s.live) > 0 || s.id+s.next*s.shards < s.n
}

// peekNextEventTime returns the earliest next-event time across the
// shard's live window (+Inf when drained). It fills the window first, so
// freshly activated worlds compete immediately.
func (s *shard) peekNextEventTime() float64 {
	s.fill()
	if s.err != nil || len(s.live) == 0 {
		return math.Inf(1)
	}
	return s.live[0].peek
}

// stepNextEvent advances the globally-earliest live world by one event,
// reducing and releasing it if that drained it.
func (s *shard) stepNextEvent() error {
	s.fill()
	if s.err != nil {
		return s.err
	}
	if len(s.live) == 0 {
		return fmt.Errorf("shardsim: step on a drained shard %d", s.id)
	}
	w := &s.live[0]
	if err := w.st.StepNextEvent(); err != nil {
		s.fail(w.idx, fmt.Errorf("world %d: %w", w.idx, err))
		return s.err
	}
	if !w.st.HasPendingEvents() {
		res, err := w.st.Result()
		if err != nil {
			s.fail(w.idx, fmt.Errorf("world %d: %w", w.idx, err))
			return s.err
		}
		idx := w.idx
		heap.Pop(&s.live) // release the engine before reducing
		if err := s.reduce(idx, res); err != nil {
			s.fail(idx, err)
			return s.err
		}
		return nil
	}
	w.peek = w.st.PeekNextEventTime()
	heap.Fix(&s.live, 0)
	return nil
}

// drain runs the shard to completion (or first error), checking ctx
// between events.
func (s *shard) drain(ctx context.Context) error {
	done := ctx.Done()
	for s.hasPendingEvents() {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		if err := s.stepNextEvent(); err != nil {
			return err
		}
	}
	return s.err
}

// Run simulates n worlds across cfg.Shards shards on cfg.Workers worker
// goroutines. build(i) materializes world i when its shard activates it
// (lazily — at most Shards×MaxLive worlds hold engine state at once);
// reduce(i, res) receives world i's finished result exactly once. build
// and reduce run on worker goroutines: build must be a pure function of i,
// reduce must be safe for concurrent calls on distinct indices (write to
// indexed slots; fold in index order afterwards).
//
// The first error — by world index, not by wall-clock — aborts the run
// deterministically. A cancelled cfg.Ctx aborts with ctx.Err(); Run never
// returns before every worker has exited, so cancellation leaks nothing.
func Run(cfg Config, n int, build func(int) (World, error), reduce func(int, *sim.Result) error) error {
	cfg.defaults()
	if n <= 0 {
		return nil
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Shards > n {
		cfg.Shards = n
	}
	if cfg.Workers > cfg.Shards {
		cfg.Workers = cfg.Shards
	}
	shards := make([]*shard, cfg.Shards)
	for s := range shards {
		shards[s] = newShard(cfg, s, n, build, reduce)
	}
	if cfg.Workers <= 1 {
		for _, s := range shards {
			if err := s.drain(ctx); err != nil {
				break
			}
		}
	} else {
		var nextShard atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(nextShard.Add(1)) - 1
					if s >= len(shards) {
						return
					}
					if shards[s].drain(ctx) != nil {
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	// Deterministic error: the lowest world index that failed, regardless
	// of which shard hit it first in wall-clock terms.
	var err error
	errIdx := n
	for _, s := range shards {
		if s.err != nil && s.errIdx < errIdx {
			err, errIdx = s.err, s.errIdx
		}
	}
	if err != nil {
		return err
	}
	return ctx.Err()
}

// Runner drives a sharded run single-steppedly: a top-level merging clock
// (a k-way heap collapsed to a linear scan over at most Shards entries)
// picks the shard whose next event is globally earliest, and StepNextEvent
// advances exactly that shard by one event. It exposes the same three
// primitives as sim.Stepper, one level up — useful when a caller wants the
// whole multi-shard replay to progress through trace time as one ordered
// event stream (live observation, the single-threaded architecture bench).
type Runner struct {
	shards []*shard
	n      int
}

// NewRunner builds the sharded run without starting it. Workers is
// ignored: a Runner is driven by its caller, one event at a time.
func NewRunner(cfg Config, n int, build func(int) (World, error), reduce func(int, *sim.Result) error) *Runner {
	cfg.defaults()
	if cfg.Shards > n && n > 0 {
		cfg.Shards = n
	}
	r := &Runner{n: n}
	for s := 0; s < cfg.Shards; s++ {
		r.shards = append(r.shards, newShard(cfg, s, n, build, reduce))
	}
	return r
}

// HasPendingEvents reports whether any shard still has work.
func (r *Runner) HasPendingEvents() bool {
	for _, s := range r.shards {
		if s.hasPendingEvents() {
			return true
		}
	}
	return false
}

// PeekNextEventTime returns the globally earliest next-event time across
// all shards (+Inf when everything is drained).
func (r *Runner) PeekNextEventTime() float64 {
	min := math.Inf(1)
	for _, s := range r.shards {
		if !s.hasPendingEvents() {
			continue
		}
		if p := s.peekNextEventTime(); p < min {
			min = p
		}
	}
	return min
}

// StepNextEvent advances the shard owning the globally earliest event by
// exactly one event. Shard index breaks timestamp ties, deterministically.
func (r *Runner) StepNextEvent() error {
	best, bestPeek := -1, math.Inf(1)
	for i, s := range r.shards {
		if !s.hasPendingEvents() {
			if s.err != nil {
				return s.err
			}
			continue
		}
		if p := s.peekNextEventTime(); p < bestPeek {
			best, bestPeek = i, p
		}
	}
	if best < 0 {
		return fmt.Errorf("shardsim: step on a drained runner")
	}
	return r.shards[best].stepNextEvent()
}

// Run drains the runner. Like the parallel Run, the reported error is the
// failure with the lowest world index.
func (r *Runner) Run() error {
	for r.HasPendingEvents() {
		if err := r.StepNextEvent(); err != nil {
			break
		}
	}
	var err error
	errIdx := r.n
	for _, s := range r.shards {
		if s.err != nil && s.errIdx < errIdx {
			err, errIdx = s.err, s.errIdx
		}
	}
	return err
}
