package sim

import (
	"math"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

func TestContendedScaling(t *testing.T) {
	e := &engine{opt: Options{ContentionOverhead: 0.2}}
	if got := e.contended(100, 1); got != 100 {
		t.Errorf("single consumer: %v, want 100", got)
	}
	if got := e.contended(100, 2); math.Abs(got-100/1.2) > 1e-9 {
		t.Errorf("two consumers: %v, want %v", got, 100/1.2)
	}
	// Saturation: 6 and 60 consumers pay the same overhead.
	if e.contended(100, 6) != e.contended(100, 60) {
		t.Error("overhead must saturate")
	}
	if got := e.contended(100, 100); math.Abs(got-100/1.8) > 1e-9 {
		t.Errorf("saturated overhead: %v, want %v", got, 100/1.8)
	}
}

func TestAppendStepDeduplicates(t *testing.T) {
	var s Series
	s = appendStep(s, 0, 1)
	s = appendStep(s, 1, 1) // same value: dropped
	s = appendStep(s, 2, 3)
	if len(s) != 2 {
		t.Fatalf("series %v, want 2 points", s)
	}
	if s[1].T != 2 || s[1].V != 3 {
		t.Fatalf("series %v", s)
	}
}

func TestTimerHeapOrdering(t *testing.T) {
	var h timerHeap
	h.push(timer{at: 5, seq: 1})
	h.push(timer{at: 1, seq: 2})
	h.push(timer{at: 5, seq: 0})
	first := h.pop()
	if first.at != 1 {
		t.Fatalf("heap order broken: %v", first)
	}
	second := h.pop()
	if second.at != 5 || second.seq != 0 {
		t.Fatalf("equal-time timers must pop in sequence order: %+v", second)
	}
}

func TestTimerHeapManyTimers(t *testing.T) {
	// Exercise siftDown paths with a scrambled insertion order.
	var h timerHeap
	order := []float64{9, 3, 7, 1, 8, 2, 6, 0, 5, 4}
	for i, at := range order {
		h.push(timer{at: at, seq: i})
	}
	for want := 0.0; want < 10; want++ {
		got := h.pop()
		if got.at != want {
			t.Fatalf("pop %v, want %v", got.at, want)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

// A three-stage chain with AggShuffle: the middle stage prefetches from a
// skewed parent and must start reading before the parent completes.
func TestPrefetchStartsBeforeParentEnd(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 50, ComputeSec: 100, WriteSec: 20, Skew: 0.9})
	j := &workload.Job{Name: "pf", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Cluster: c, TrackNode: -1, AggShuffle: true}, []JobRun{{Job: j}})
	if err != nil {
		t.Fatal(err)
	}
	parent, child := res.Timeline(0, 1), res.Timeline(0, 2)
	if child.Start >= parent.End {
		t.Fatalf("child read started at %.1f, after parent end %.1f — no prefetch", child.Start, parent.End)
	}
	// Compute still gated on the parent's completion.
	if child.ReadEnd < parent.End && child.ComputeEnd-child.ReadEnd <= 0 {
		t.Fatal("child compute must not run before data is complete")
	}
}

// Without AggShuffle the same job must not prefetch.
func TestNoPrefetchWithoutAggShuffle(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 50, ComputeSec: 100, WriteSec: 20, Skew: 0.9})
	j := &workload.Job{Name: "np", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	if err != nil {
		t.Fatal(err)
	}
	parent, child := res.Timeline(0, 1), res.Timeline(0, 2)
	if child.Start < parent.End-eps {
		t.Fatalf("child started at %.1f before parent end %.1f without AggShuffle", child.Start, parent.End)
	}
}

// AggShuffle's compute overhead: a prefetched stage processes slightly
// more volume, so with zero-skew parents its JCT is a bit worse.
func TestAggShuffleOverheadApplied(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 50, ComputeSec: 100, WriteSec: 0, Skew: 0})
	j := &workload.Job{Name: "ov", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	plain := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	agg := mustRun(t, Options{Cluster: c, TrackNode: -1, AggShuffle: true, AggShuffleOverhead: 0.10}, []JobRun{{Job: j}})
	if agg.JCT(0) <= plain.JCT(0) {
		t.Fatalf("zero-skew prefetch must cost: plain %.1f, agg %.1f", plain.JCT(0), agg.JCT(0))
	}
}

// Cluster-wide tracking produces series bounded by capacity.
func TestTrackClusterSeries(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	j := twoParallelJob(c, 30, 40, 5)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1, TrackCluster: true}, []JobRun{{Job: j}})
	if len(res.Cluster.CPUBusy) == 0 || len(res.Cluster.NetRate) == 0 {
		t.Fatal("cluster series missing")
	}
	for _, s := range res.Cluster.CPUBusy {
		if s.V < 0 || s.V > 1+1e-9 {
			t.Fatalf("cluster CPU fraction %v out of range", s.V)
		}
	}
	total := c.TotalNetBW()
	for _, s := range res.Cluster.NetRate {
		if s.V < 0 || s.V > total+1e-6 {
			t.Fatalf("cluster net rate %v exceeds capacity %v", s.V, total)
		}
	}
}

// Heterogeneous nodes: the slowest NIC gates the stage (Eq. 2 behaviour in
// the simulator).
func TestHeterogeneousNodesSlowestGates(t *testing.T) {
	fast := cluster.Node{ID: 0, Executors: 2, NetBW: cluster.MBps(100), DiskBW: cluster.MBps(80)}
	slow := cluster.Node{ID: 1, Executors: 2, NetBW: cluster.MBps(10), DiskBW: cluster.MBps(80)}
	c := &cluster.Cluster{Nodes: []cluster.Node{fast, slow}}
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	j := &workload.Job{Name: "het", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{
		1: {ShuffleIn: 2 * 100 * cluster.MB, ProcRate: cluster.MBps(1000)},
	}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	tl := res.Timeline(0, 1)
	// Per-node input 100 MB; the slow node needs 10 s.
	if tl.ReadEnd-tl.Start < 9.9 {
		t.Fatalf("read finished in %.2f s; slow node must gate at 10 s", tl.ReadEnd-tl.Start)
	}
}

// Events counter sanity: symmetric jobs need few events, and the count is
// reported.
func TestEventCountReported(t *testing.T) {
	c := cluster.NewM4LargeCluster(3)
	j := singleStageJob(c, 5, 5, 1)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	if res.Events <= 0 {
		t.Fatal("event count missing")
	}
}
