package sim

import "delaystage/internal/dag"

// Observability: the engine emits a typed event at each of its existing
// lifecycle transition points, delivered synchronously (in event-loop
// order, which is deterministic) to an Observer. A nil Observer is the
// default and keeps the engine bit-identical to a build without this
// layer: every emission site is guarded by a nil check, events are stack
// structs passed by value, and nothing is recorded — the zero-alloc
// steady state of TestEngineAllocBudget is unchanged.
//
// Observers must not mutate engine state; they see times and identities,
// not internals. Exporters (JSONL event logs, Chrome trace files, JSON
// run summaries) live in internal/obs on top of this interface.

// EventKind discriminates the engine's lifecycle events.
type EventKind uint8

const (
	// EvStageReady fires when all of a stage's parents have completed
	// (or at job arrival, for roots). Delay timers start here.
	EvStageReady EventKind = iota
	// EvStageSubmitted fires when the stage's shuffle-read items are
	// created on every node — after any configured/revised delay, or
	// early as an AggShuffle prefetch (Prefetch reports which).
	EvStageSubmitted
	// EvReadDone fires per node when that node's shuffle-read partition
	// finishes; the last node's event coincides with Timeline.ReadEnd.
	EvReadDone
	// EvComputeDone fires per node when that node's compute partition
	// finishes; the last node's event coincides with Timeline.ComputeEnd.
	EvComputeDone
	// EvWriteDone fires per node when that node's shuffle-write partition
	// finishes; the last node's event coincides with Timeline.End.
	EvWriteDone
	// EvStageCompleted fires when the shuffle write has finished on every
	// node (Timeline.End).
	EvStageCompleted
	// EvTaskRetry fires when a failed partition attempt is re-queued;
	// Attempt is the 1-based attempt that just died, Delay the backoff
	// before the next one starts.
	EvTaskRetry
	// EvNodeCrash fires when a fault-plan node crash is executed.
	EvNodeCrash
	// EvDelayRevised fires when a watchdog revises a not-yet-submitted
	// stage's delay; Delay is the new delay-after-ready in seconds.
	EvDelayRevised
	// EvJobDone fires when a job's last stage completes.
	EvJobDone
	// EvJobFailed fires when a job aborts after a partition exhausted its
	// retry budget; Detail carries the structured error's text.
	EvJobFailed
	// EvSpecLaunched fires when speculation clones a lagging compute
	// partition; Node is the clone's machine, Attempt the attempt being
	// raced.
	EvSpecLaunched
	// EvSpecWin fires when one twin of a speculation race finishes and
	// the other is cancelled; Node is the winner's machine.
	EvSpecWin
	// EvNodeBlacklisted fires when a node exceeds its fault budget and
	// stops receiving new work.
	EvNodeBlacklisted
)

// String returns the stable, machine-readable name of the kind. These
// names are the JSONL schema's "kind" values — do not repurpose them.
func (k EventKind) String() string {
	switch k {
	case EvStageReady:
		return "stage_ready"
	case EvStageSubmitted:
		return "stage_submitted"
	case EvReadDone:
		return "read_done"
	case EvComputeDone:
		return "compute_done"
	case EvWriteDone:
		return "write_done"
	case EvStageCompleted:
		return "stage_completed"
	case EvTaskRetry:
		return "task_retry"
	case EvNodeCrash:
		return "node_crash"
	case EvDelayRevised:
		return "delay_revised"
	case EvJobDone:
		return "job_done"
	case EvJobFailed:
		return "job_failed"
	case EvSpecLaunched:
		return "spec_launched"
	case EvSpecWin:
		return "spec_win"
	case EvNodeBlacklisted:
		return "node_blacklisted"
	}
	return "unknown"
}

// Event is one engine lifecycle transition. Fields that do not apply to a
// kind hold their zero value, except Node and Stage which are -1 when not
// applicable (stage-level and job-level events have no node; node crashes
// have no stage).
type Event struct {
	// T is the absolute simulation time in seconds.
	T float64
	// Kind discriminates which fields are meaningful.
	Kind EventKind
	// Job is the run index (JobRun order); -1 for cluster-level events
	// (node crashes).
	Job int
	// Stage is the stage ID, or -1 for job- and cluster-level events.
	Stage dag.StageID
	// Node is the node index for per-node events (EvReadDone,
	// EvComputeDone, EvWriteDone, EvTaskRetry, EvNodeCrash), -1 otherwise.
	Node int
	// Attempt is the 1-based attempt that failed (EvTaskRetry only).
	Attempt int
	// Delay is the retry backoff (EvTaskRetry) or the revised
	// delay-after-ready (EvDelayRevised), in seconds.
	Delay float64
	// Prefetch marks an AggShuffle prefetch submission (EvStageSubmitted).
	Prefetch bool
	// Detail is a human-readable annotation (EvJobFailed's error text).
	Detail string
}

// Observer receives engine events synchronously from the event loop, in
// deterministic order. Implementations must be fast and must not call
// back into the simulation.
type Observer interface {
	OnEvent(Event)
}

// Resource identifies one of the three contended cluster resources a work
// item can occupy: the NIC during shuffle read, the executors during
// compute, the local disk during shuffle write.
type Resource uint8

const (
	ResNet Resource = iota
	ResCPU
	ResDisk
)

// String returns the stable name used in reports and metric labels.
func (r Resource) String() string {
	switch r {
	case ResNet:
		return "net"
	case ResCPU:
		return "cpu"
	case ResDisk:
		return "disk"
	}
	return "unknown"
}

// ShareSample is one work item's resource share during a constant-rate
// interval: the rate the fluid sharing actually allocated, and the rate
// the item would sustain if it ran alone on the resource (capacity for
// read/write, capped executor share times processing rate for compute —
// straggler slowdowns are intrinsic to the item and stay in IsoRate).
type ShareSample struct {
	Job     int
	Stage   dag.StageID
	Node    int
	Res     Resource
	Rate    float64 // allocated bytes/s over this interval
	IsoRate float64 // bytes/s the item would get alone on the resource
}

// ShareObserver is an optional extension of Observer: when the value in
// Options.Observer also implements it, the engine calls OnShares once per
// simulation interval (rates are constant within one) before advancing
// time. t is the interval start, dt its length; samples is a scratch
// slice valid only for the duration of the call and must not be retained.
// Like Observer, implementations must not call back into the simulation;
// a nil or non-ShareObserver observer costs the engine nothing.
type ShareObserver interface {
	OnShares(t, dt float64, samples []ShareSample)
}
