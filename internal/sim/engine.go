package sim

import (
	"fmt"
	"math"
	"sort"

	"delaystage/internal/dag"
)

// The engine advances a set of fluid work items through time. Between two
// events every item's rate is constant; an event is the earliest of: an
// item completing, a timer firing (job arrival / delayed stage
// submission), or an availability-capped prefetch catching up with its
// cap. After each event rates are recomputed — but only on nodes whose
// item set or availability cap changed since the last event (dirty
// tracking): a node whose consumer set is unchanged keeps its previous
// rates, which are a pure function of that set and therefore already
// bit-identical to what a recomputation would produce.

type phase uint8

const (
	phRead phase = iota
	phCompute
	phWrite
)

const (
	eps = 1e-6 // bytes / seconds tolerance
	// availEps is the availability-backlog granularity in bytes: finer
	// backlogs are treated as caught-up (prevents micro-event storms).
	availEps = 1.0
	// minDT floors the event step; progress below it is advanced anyway
	// so pathological rate oscillations cannot stall simulated time.
	minDT = 1e-6
)

type skey struct {
	job   int
	stage dag.StageID
}

// item is one fluid work unit: a phase of one stage's partition on one node.
type item struct {
	key skey
	st  *stageState // owning stage, avoiding a states-map lookup per touch
	// home is the logical partition index (which of the stage's N
	// partitions this is); node is the machine executing it. They are
	// equal unless blacklisting rerouted the work. Lifecycle bookkeeping
	// (readsLeft etc.) counts homes; machine-level faults hit nodes.
	home int
	node int // index into engine.nodes
	ph   phase

	remaining float64 // bytes left
	rate      float64 // current bytes/s, recomputed every event

	// Availability capping (AggShuffle prefetch): done may not exceed
	// capVolume·A(t) where A is the stage's input availability.
	capped  bool
	done    float64 // bytes completed (only maintained for capped items)
	volume  float64 // total bytes of this item (for cap computation)
	capRate float64 // current availability production rate, bytes/s

	// execUsed is the executors this compute item currently occupies
	// (share capped by task count); drives CPU-utilization accounting.
	execUsed float64

	// Fault injection. attempt is 1-based; failAt > 0 marks a doomed
	// attempt that dies once volume−remaining reaches it; slow > 1 divides
	// the compute rate (straggler); recompute marks lineage-recomputation
	// items whose completion routes to the recovery chain, not the stage.
	attempt   int
	failAt    float64
	slow      float64
	recompute bool

	// Speculation: spec marks a clone; rival links the two racing twins
	// (original ↔ clone); cancelled marks the loser of a decided race —
	// it is unlinked immediately, the flag only shields the already-
	// collected done/dead batch entry from firing transitions. startAt
	// is the item's creation time (progress projection baseline).
	spec      bool
	rival     *item
	cancelled bool
	startAt   float64
}

// stageState tracks one (job, stage) through its lifecycle.
type stageState struct {
	key     skey
	profile profileView

	parentsLeft int
	children    []skey

	readsLeft   int
	computeLeft int
	writesLeft  int

	// pendingCompute holds node indices whose read finished before all
	// parents completed (possible only with AggShuffle prefetch).
	pendingCompute []int

	submitted   bool // read items created
	prefetched  bool // read items were created as an AggShuffle prefetch
	computeDone float64
	computeTot  float64

	// availability weighting of this stage's input over its parents
	availParents []skey
	availWeights []float64

	tl StageTimeline
	// readyValid marks tl.Ready as set.
	readyValid bool
	complete   bool

	// retries counts failed partition attempts (faults only).
	retries int
	// compDurs records finished compute-partition durations and specDone
	// the partitions already cloned — both only maintained under
	// Options.Speculation (nil otherwise).
	compDurs []float64
	specDone map[int]bool
	// recomputeHolds > 0 blocks compute starts while a crashed parent's
	// shuffle output is being recomputed (lineage recovery).
	recomputeHolds int
	// submitAt is the authoritative submission time once ready; a
	// watchdog may move it (tSubmitStage re-schedules itself until now ≥
	// submitAt).
	submitAt float64
	// delayOverride, when set, replaces the run's configured delay
	// (watchdog revision that arrived before the stage became ready).
	delayOverride *float64
}

type profileView struct {
	perNodeIn  float64
	perNodeOut float64
	procRate   float64
	skew       float64
	// tasksPerNode caps the executors a stage can use on one node: a
	// stage with fewer tasks than its executor share leaves the surplus
	// idle (one task occupies at most one executor). Zero means "one
	// full wave" (no cap).
	tasksPerNode float64
}

// timer is a scheduled engine event.
type timer struct {
	at   float64
	seq  int
	kind timerKind
	key  skey
	job  int
	// retry payload (tRetry only); home is the logical partition, node
	// the machine the dead attempt ran on.
	node    int
	home    int
	ph      phase
	attempt int
	recomp  bool
}

type timerKind uint8

const (
	tJobArrival timerKind = iota
	tSubmitStage
	tRecompute // no-op: forces a rate recomputation (availability catch-up)
	tRetry     // re-create a failed partition-phase attempt after backoff
	tNodeCrash // lose a node's in-flight tasks and stored shuffle outputs
)

// timerHeap is a binary min-heap of timers ordered by (at, seq). It is
// typed end to end — no container/heap interface{} boxing, which churned
// one allocation per push in long trace replays.
type timerHeap []timer

func (t timer) before(o timer) bool {
	if t.at != o.at {
		return t.at < o.at
	}
	return t.seq < o.seq
}

// push inserts a timer, sifting it up to its heap position.
func (h *timerHeap) push(t timer) {
	*h = append(*h, t)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the earliest timer.
func (h *timerHeap) pop() timer {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s[l].before(s[least]) {
			least = l
		}
		if r < n && s[r].before(s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

type engine struct {
	opt  Options
	runs []JobRun

	nNodes                         int
	netBW                          []float64
	diskBW                         []float64
	execs                          []float64
	totalExec, totalNet, totalDisk float64

	states map[skey]*stageState
	// stateList holds the stage states in (job, stage) order: map
	// iteration order is randomized per process, and iterating e.states
	// directly in maybePrefetch would submit prefetches — and thus append
	// items — in a run-to-run random order, perturbing the floating-point
	// accumulation downstream.
	stateList []*stageState
	items     []*item
	timers    timerHeap
	seq       int
	now       float64

	// Per-node, per-phase item buckets, maintained incrementally as items
	// are added and removed so the rates pass does not rebuild them every
	// event. Bucket order is the e.items subsequence order, preserving
	// the exact accumulation order of the pre-dirty-tracking engine.
	computeBk [][]*item
	readBk    [][]*item
	writeBk   [][]*item
	// dirty[w] marks that node w's consumer set for the phase changed
	// since its rates were last computed.
	dirtyC []bool
	dirtyR []bool
	dirtyW []bool

	res *Result

	// usage integration
	lastTrack    float64
	cpuBusyInt   float64 // executor-seconds busy, cluster-wide
	netBytesInt  float64
	diskBytesInt float64

	occOpen map[skey]*OccupancySegment

	// fault / recovery state
	stagesLeft []int  // incomplete stages per job
	jobsLeft   int    // jobs neither complete nor failed
	failed     []bool // per-job abort flag
	recomps    map[recompKey]*recompState

	// Machine health. nodeSlow[w] > 1 divides every phase rate on node w
	// (persistent slow machine); nil when every node is healthy, so the
	// fault-free fast path stays untouched. faultCount / blacklisted /
	// nBlacklisted exist only when BlacklistAfter > 0. medScratch is the
	// speculation median scratch.
	nodeSlow     []float64
	faultCount   []int
	blacklisted  []bool
	nBlacklisted int
	medScratch   []float64

	// shareObs is Options.Observer when it also implements ShareObserver
	// (resolved once at construction); nil otherwise. shareScr is the
	// reused sample scratch handed to OnShares.
	shareObs ShareObserver
	shareScr []ShareSample

	// Checkpointing (SnapshotAt): with haltSet, the event loop stops at an
	// event boundary before simulated time reaches haltAt — before firing
	// any timer whose effective time is ≥ haltAt and before any advance
	// that would land at or past it. A halted engine holds exactly the
	// state a from-scratch run has at that boundary, so resuming replays
	// the identical floating-point trajectory.
	haltSet bool
	haltAt  float64
	halted  bool

	// Scratch buffers reused across events (the engine is single-threaded;
	// each is live only within one helper call).
	itemPool         []*item
	shareScratch     []float64
	demandScratch    []float64
	weightScratch    []float64
	wfAlloc          []float64
	wfActive         []int
	busyScratch      []float64
	doneScratch      []*item
	deadScratch      []*item
	perJobScratch    map[int]int
	stageRateScratch map[skey]float64
}

// recompKey identifies one lineage recomputation: the producing stage's
// partition on the crashed node.
type recompKey struct {
	key  skey
	node int
}

// recompState tracks an in-flight recomputation and the child stages it
// holds back from computing.
type recompState struct {
	held []skey
}

func newEngine(opt Options, runs []JobRun) *engine {
	totalStages := 0
	for _, r := range runs {
		totalStages += r.Job.Graph.Len()
	}
	e := &engine{
		opt:     opt,
		runs:    runs,
		states:  make(map[skey]*stageState, totalStages),
		res:     &Result{JobEnd: make([]float64, len(runs)), JobStart: make([]float64, len(runs)), JobErrors: make([]error, len(runs))},
		occOpen: make(map[skey]*OccupancySegment),
		failed:  make([]bool, len(runs)),
		recomps: make(map[recompKey]*recompState),
	}
	for _, n := range opt.Cluster.Nodes {
		e.netBW = append(e.netBW, n.NetBW)
		e.diskBW = append(e.diskBW, n.DiskBW)
		e.execs = append(e.execs, float64(n.Executors))
	}
	e.nNodes = len(e.netBW)
	e.totalExec = float64(opt.Cluster.TotalExecutors())
	e.totalNet = opt.Cluster.TotalNetBW()
	e.totalDisk = opt.Cluster.TotalDiskBW()
	e.computeBk = make([][]*item, e.nNodes)
	e.readBk = make([][]*item, e.nNodes)
	e.writeBk = make([][]*item, e.nNodes)
	e.dirtyC = make([]bool, e.nNodes)
	e.dirtyR = make([]bool, e.nNodes)
	e.dirtyW = make([]bool, e.nNodes)
	e.busyScratch = make([]float64, e.nNodes)
	e.perJobScratch = make(map[int]int)
	e.stageRateScratch = make(map[skey]float64)
	e.stateList = make([]*stageState, 0, totalStages)
	e.items = make([]*item, 0, totalStages*e.nNodes)
	if so, ok := opt.Observer.(ShareObserver); ok {
		e.shareObs = so
	}
	return e
}

// newItem returns a zeroed item, recycled from the pool when possible.
func (e *engine) newItem() *item {
	if n := len(e.itemPool); n > 0 {
		it := e.itemPool[n-1]
		e.itemPool = e.itemPool[:n-1]
		*it = item{}
		return it
	}
	return &item{}
}

// freeItem returns a no-longer-referenced item to the pool.
func (e *engine) freeItem(it *item) {
	e.itemPool = append(e.itemPool, it)
}

// addItem registers a new work item with the master list and its node's
// phase bucket, marking the node dirty for that resource. It also stamps
// the item's creation time (speculation's projection baseline).
func (e *engine) addItem(it *item) {
	it.startAt = e.now
	e.items = append(e.items, it)
	switch it.ph {
	case phCompute:
		e.computeBk[it.node] = append(e.computeBk[it.node], it)
		e.dirtyC[it.node] = true
	case phRead:
		e.readBk[it.node] = append(e.readBk[it.node], it)
		e.dirtyR[it.node] = true
	case phWrite:
		e.writeBk[it.node] = append(e.writeBk[it.node], it)
		e.dirtyW[it.node] = true
	}
}

// bucketRemove drops an item from its node's phase bucket (preserving
// order) and marks the node dirty. The caller removes it from e.items.
func (e *engine) bucketRemove(it *item) {
	var bk []*item
	switch it.ph {
	case phCompute:
		bk = e.computeBk[it.node]
		e.dirtyC[it.node] = true
	case phRead:
		bk = e.readBk[it.node]
		e.dirtyR[it.node] = true
	case phWrite:
		bk = e.writeBk[it.node]
		e.dirtyW[it.node] = true
	}
	for i, b := range bk {
		if b == it {
			bk = append(bk[:i], bk[i+1:]...)
			break
		}
	}
	switch it.ph {
	case phCompute:
		e.computeBk[it.node] = bk
	case phRead:
		e.readBk[it.node] = bk
	case phWrite:
		e.writeBk[it.node] = bk
	}
}

func (e *engine) pushTimer(at float64, kind timerKind, key skey, job int) {
	e.seq++
	e.timers.push(timer{at: at, seq: e.seq, kind: kind, key: key, job: job})
}

func (e *engine) setup() {
	n := float64(e.nNodes)
	for ji, run := range e.runs {
		e.res.JobStart[ji] = run.Arrival
		g := run.Job.Graph
		for _, sid := range g.StagesView() {
			p := run.Job.Profiles[sid]
			st := &stageState{
				key: skey{ji, sid},
				profile: profileView{
					perNodeIn:    float64(p.ShuffleIn) / n,
					perNodeOut:   float64(p.ShuffleOut) / n,
					procRate:     p.ProcRate,
					skew:         p.Skew,
					tasksPerNode: float64(p.Tasks) / n,
				},
				parentsLeft: len(g.Stage(sid).Parents),
				tl:          StageTimeline{JobIndex: ji, Stage: sid},
			}
			st.computeTot = st.profile.perNodeIn * n
			for _, c := range g.ChildrenView(sid) {
				st.children = append(st.children, skey{ji, c})
			}
			// Availability weights over parents, proportional to parent
			// shuffle-output size (fallback: equal).
			parents := g.Stage(sid).Parents
			if len(parents) > 0 {
				tot := 0.0
				outs := make([]float64, len(parents))
				for i, pid := range parents {
					outs[i] = float64(run.Job.Profiles[pid].ShuffleOut)
					tot += outs[i]
				}
				for i, pid := range parents {
					st.availParents = append(st.availParents, skey{ji, pid})
					if tot > 0 {
						st.availWeights = append(st.availWeights, outs[i]/tot)
					} else {
						st.availWeights = append(st.availWeights, 1/float64(len(parents)))
					}
				}
			}
			e.states[st.key] = st
			e.stateList = append(e.stateList, st)
		}
		e.stagesLeft = append(e.stagesLeft, g.Len())
		e.pushTimer(run.Arrival, tJobArrival, skey{}, ji)
	}
	e.jobsLeft = len(e.runs)
	if e.opt.Faults != nil {
		for _, cr := range e.opt.Faults.CrashEvents(e.nNodes) {
			e.seq++
			e.timers.push(timer{at: cr.At, seq: e.seq, kind: tNodeCrash, node: cr.Node, job: -1})
		}
		for w := 0; w < e.nNodes; w++ {
			if s := e.opt.Faults.NodeSlowdown(w); s > 1 {
				if e.nodeSlow == nil {
					e.nodeSlow = make([]float64, e.nNodes)
					for i := range e.nodeSlow {
						e.nodeSlow[i] = 1
					}
				}
				e.nodeSlow[w] = s
			}
		}
	}
	if e.opt.BlacklistAfter > 0 {
		e.faultCount = make([]int, e.nNodes)
		e.blacklisted = make([]bool, e.nNodes)
	}
}

// placeNode maps a partition's home node to the machine that will run
// it: the home itself, or — when that machine is blacklisted — the next
// healthy node by index. With every node blacklisted the home is used
// anyway (a degraded machine beats no machine).
func (e *engine) placeNode(w int) int {
	if e.nBlacklisted == 0 || !e.blacklisted[w] {
		return w
	}
	for i := 1; i < e.nNodes; i++ {
		c := (w + i) % e.nNodes
		if !e.blacklisted[c] {
			return c
		}
	}
	return w
}

// noteFault records one machine-level fault (a task death or a crash)
// against a node and blacklists it at the configured budget.
func (e *engine) noteFault(w int) {
	if e.faultCount == nil || w < 0 || w >= e.nNodes {
		return
	}
	e.faultCount[w]++
	if e.faultCount[w] == e.opt.BlacklistAfter && !e.blacklisted[w] {
		e.blacklisted[w] = true
		e.nBlacklisted++
		e.res.Blacklisted++
		if o := e.opt.Observer; o != nil {
			o.OnEvent(Event{T: e.now, Kind: EvNodeBlacklisted, Job: -1, Stage: -1, Node: w})
		}
	}
}

// delayOf returns the configured submission delay of a stage.
func (e *engine) delayOf(k skey) float64 {
	d := e.runs[k.job].Delays
	if d == nil {
		return 0
	}
	return d[k.stage]
}

// markReady records stage readiness and schedules its (possibly delayed)
// submission.
func (e *engine) markReady(st *stageState) {
	if st.readyValid {
		return
	}
	st.readyValid = true
	st.tl.Ready = e.now
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvStageReady, Job: st.key.job, Stage: st.key.stage, Node: -1})
	}
	if st.submitted {
		// AggShuffle prefetch already created the read items; readiness
		// only unblocks compute (handled by parent-completion bookkeeping).
		return
	}
	d := e.delayOf(st.key)
	if st.delayOverride != nil {
		d = *st.delayOverride
	}
	st.submitAt = e.now + d
	e.pushTimer(st.submitAt, tSubmitStage, st.key, st.key.job)
}

// submit creates the stage's read items on every node.
func (e *engine) submit(st *stageState, prefetch bool) {
	if st.submitted {
		return
	}
	st.submitted = true
	st.prefetched = prefetch
	if prefetch {
		st.computeTot = st.profile.perNodeIn * float64(e.nNodes) * (1 + e.opt.AggShuffleOverhead)
	}
	st.tl.Start = e.now
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvStageSubmitted, Job: st.key.job, Stage: st.key.stage, Node: -1, Prefetch: prefetch})
	}
	st.readsLeft = e.nNodes
	st.computeLeft = e.nNodes
	st.writesLeft = e.nNodes
	for w := 0; w < e.nNodes; w++ {
		vol := st.profile.perNodeIn
		if vol <= eps {
			// No network input: read completes immediately.
			e.finishRead(st, w)
			continue
		}
		it := e.newItem()
		*it = item{key: st.key, st: st, home: w, node: e.placeNode(w), ph: phRead, remaining: vol, volume: vol, capped: prefetch}
		e.addItem(it)
	}
	if st.readsLeft == 0 {
		// all zero-volume
		st.tl.ReadEnd = e.now
	}
}

func (e *engine) finishRead(st *stageState, node int) {
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvReadDone, Job: st.key.job, Stage: st.key.stage, Node: node})
	}
	st.readsLeft--
	if st.readsLeft == 0 {
		st.tl.ReadEnd = e.now
		if e.opt.Watchdog != nil {
			e.applyDelayUpdates(e.opt.Watchdog.StageReadCompleted(WatchEvent{
				Job: st.key.job, Stage: st.key.stage, Timeline: st.tl,
				Retries: st.retries, JobStart: e.runs[st.key.job].Arrival, Now: e.now,
			}))
		}
	}
	if st.parentsLeft == 0 && st.recomputeHolds == 0 {
		e.startCompute(st, node)
	} else {
		st.pendingCompute = append(st.pendingCompute, node)
	}
}

// computeVol is the compute-phase volume of one partition of the stage.
func (e *engine) computeVol(st *stageState) float64 {
	vol := st.profile.perNodeIn
	if st.prefetched {
		// Proactive aggregation re-processes pushed partial outputs.
		vol *= 1 + e.opt.AggShuffleOverhead
	}
	return vol
}

func (e *engine) startCompute(st *stageState, node int) {
	vol := e.computeVol(st)
	if vol <= eps {
		e.finishCompute(st, node)
		return
	}
	it := e.newItem()
	*it = item{key: st.key, st: st, home: node, node: e.placeNode(node), ph: phCompute, remaining: vol, volume: vol, attempt: 1}
	e.armCompute(it)
	e.addItem(it)
}

func (e *engine) finishCompute(st *stageState, node int) {
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvComputeDone, Job: st.key.job, Stage: st.key.stage, Node: node})
	}
	st.computeLeft--
	if st.computeLeft == 0 {
		st.tl.ComputeEnd = e.now
	}
	vol := st.profile.perNodeOut
	if vol <= eps {
		e.finishWrite(st, node)
		return
	}
	it := e.newItem()
	*it = item{key: st.key, st: st, home: node, node: e.placeNode(node), ph: phWrite, remaining: vol, volume: vol}
	e.addItem(it)
}

func (e *engine) finishWrite(st *stageState, node int) {
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvWriteDone, Job: st.key.job, Stage: st.key.stage, Node: node})
	}
	st.writesLeft--
	if st.writesLeft > 0 {
		return
	}
	// Stage complete.
	st.complete = true
	st.computeDone = st.computeTot
	st.tl.End = e.now
	st.tl.Retries = st.retries
	e.res.Timelines = append(e.res.Timelines, st.tl)
	if e.now > e.res.JobEnd[st.key.job] {
		e.res.JobEnd[st.key.job] = e.now
	}
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvStageCompleted, Job: st.key.job, Stage: st.key.stage, Node: -1})
	}
	e.stagesLeft[st.key.job]--
	if e.stagesLeft[st.key.job] == 0 {
		e.jobsLeft--
		if o := e.opt.Observer; o != nil {
			o.OnEvent(Event{T: e.now, Kind: EvJobDone, Job: st.key.job, Stage: -1, Node: -1})
		}
	}
	if e.opt.Watchdog != nil {
		e.applyDelayUpdates(e.opt.Watchdog.StageCompleted(WatchEvent{
			Job: st.key.job, Stage: st.key.stage, Timeline: st.tl,
			Retries: st.retries, JobStart: e.runs[st.key.job].Arrival, Now: e.now,
		}))
	}
	for _, ck := range st.children {
		cst := e.states[ck]
		cst.parentsLeft--
		if cst.parentsLeft == 0 {
			if cst.recomputeHolds == 0 {
				// Unblock any partitions that prefetched their input already.
				for _, w := range cst.pendingCompute {
					e.startCompute(cst, w)
				}
				cst.pendingCompute = nil
			}
			e.markReady(cst)
		}
	}
}

func (e *engine) fireTimer(t timer) {
	switch t.kind {
	case tJobArrival:
		g := e.runs[t.job].Job.Graph
		for _, sid := range g.Roots() {
			e.markReady(e.states[skey{t.job, sid}])
		}
	case tSubmitStage:
		st := e.states[t.key]
		if e.failed[t.job] || st.submitted {
			return
		}
		if st.submitAt > e.now+eps {
			// A watchdog pushed the submission later; chase it.
			e.pushTimer(st.submitAt, tSubmitStage, t.key, t.job)
			return
		}
		e.submit(st, false)
	case tRecompute:
		// no-op; loop recomputes rates
	case tRetry:
		e.retryTask(t)
	case tNodeCrash:
		e.crashNode(t.node)
	}
}

// maybePrefetch creates AggShuffle prefetch read items for stages whose
// parents have all started computing. Iterates stateList, not the states
// map, so submissions happen in a deterministic (job, stage) order.
func (e *engine) maybePrefetch() {
	if !e.opt.AggShuffle {
		return
	}
	for _, st := range e.stateList {
		if st.submitted || len(st.availParents) == 0 {
			continue
		}
		ok := true
		for _, pk := range st.availParents {
			pst := e.states[pk]
			if !pst.submitted && !pst.complete {
				ok = false
				break
			}
		}
		if ok {
			e.submit(st, true)
		}
	}
}

// availability returns A(t) ∈ [0,1] and dA/dt for a prefetched stage given
// current parent compute progress/rates.
func (e *engine) availability(st *stageState, computeRates map[skey]float64) (a, da float64) {
	for i, pk := range st.availParents {
		w := st.availWeights[i]
		pst := e.states[pk]
		if pst.complete {
			a += w
			continue
		}
		if pst.computeTot <= eps {
			continue
		}
		prog := pst.computeDone / pst.computeTot
		s := pst.profile.skew
		if s < 1e-3 {
			// Homogeneous tasks: output lands only at completion.
			continue
		}
		ramp := (prog - (1 - s)) / s
		if ramp <= 0 {
			continue
		}
		if ramp >= 1 {
			a += w
			continue
		}
		a += w * ramp
		da += w * computeRates[pk] / (pst.computeTot * s)
	}
	if a > 1 {
		a = 1
	}
	return a, da
}

// computeRatesPass refreshes item rates on every dirty node. A node is
// dirty when its item set changed (add/remove) or — for the read phase —
// when it holds an availability-capped prefetch item, whose demand cap
// moves with its parents' compute progress every event. Clean nodes keep
// their previous rates: those are a pure function of the node's unchanged
// consumer set, so skipping the recomputation is exact, not approximate.
func (e *engine) computeRatesPass() {
	// 1. Compute-phase rates: executors on a node are split equally among
	//    the stages computing there (per job first if FairByJob).
	for w := 0; w < e.nNodes; w++ {
		if e.dirtyC[w] {
			e.computeNodeRates(w)
			e.dirtyC[w] = false
		}
	}
	// 2. Read-phase rates: max-min (water-filling) over each node's NIC,
	//    demands limited by prefetch availability. Per-stage total compute
	//    rates (for availability derivatives) are only assembled when a
	//    capped item actually needs them — i.e. never in non-AggShuffle
	//    runs.
	var stageRates map[skey]float64
	for w := 0; w < e.nNodes; w++ {
		if !e.dirtyR[w] {
			for _, it := range e.readBk[w] {
				if it.capped {
					e.dirtyR[w] = true
					break
				}
			}
		}
		if e.dirtyR[w] && stageRates == nil {
			for _, it := range e.readBk[w] {
				if it.capped && it.st.parentsLeft > 0 {
					stageRates = e.stageComputeRates()
					break
				}
			}
		}
	}
	for w := 0; w < e.nNodes; w++ {
		if e.dirtyR[w] {
			e.readNodeRates(w, stageRates)
			e.dirtyR[w] = false
		}
	}
	// 3. Write-phase rates: equal split of the node's disk bandwidth.
	for w := 0; w < e.nNodes; w++ {
		if e.dirtyW[w] {
			its := e.writeBk[w]
			if len(its) > 0 {
				capBW := e.diskBW[w]
				if s := e.nodeSlowdown(w); s > 1 {
					capBW /= s
				}
				shares := e.fairShares(its, capBW)
				for i, it := range its {
					it.rate = shares[i]
				}
			}
			e.dirtyW[w] = false
		}
	}
}

// computeNodeRates refreshes the executor shares of one node's compute
// items.
func (e *engine) computeNodeRates(w int) {
	its := e.computeBk[w]
	if len(its) == 0 {
		return
	}
	// Nominal executor shares (no contention loss), then the cap: a
	// stage cannot occupy more executors than it has tasks. The
	// contention factor degrades throughput, not occupancy.
	shares := e.fairSharesNominal(its, e.execs[w])
	cf := e.contended(1, len(its))
	nodeCF := e.nodeSlowdown(w)
	for i, it := range its {
		st := it.st
		share := shares[i]
		if tpn := st.profile.tasksPerNode; tpn > 0 && share > tpn {
			share = tpn
		}
		it.execUsed = share
		it.rate = share * st.profile.procRate * cf
		if it.slow > 1 {
			it.rate /= it.slow
		}
		if nodeCF > 1 {
			it.rate /= nodeCF
		}
	}
}

// nodeSlowdown is node w's persistent rate degradation (1 = healthy).
// Guarding divisions with > 1 keeps the healthy path bit-identical to
// the pre-fault-domain engine.
func (e *engine) nodeSlowdown(w int) float64 {
	if e.nodeSlow == nil {
		return 1
	}
	return e.nodeSlow[w]
}

// stageComputeRates sums every stage's total compute rate across nodes,
// in node-then-bucket order — the same accumulation order the pre-dirty
// engine used, so availability derivatives stay bit-identical.
func (e *engine) stageComputeRates() map[skey]float64 {
	m := e.stageRateScratch
	clear(m)
	for w := 0; w < e.nNodes; w++ {
		for _, it := range e.computeBk[w] {
			m[it.key] += it.rate
		}
	}
	return m
}

// readNodeRates water-fills one node's NIC among its read items.
func (e *engine) readNodeRates(w int, stageRates map[skey]float64) {
	its := e.readBk[w]
	if len(its) == 0 {
		return
	}
	demands := resizeF64(&e.demandScratch, len(its))
	for i, it := range its {
		demands[i] = math.Inf(1)
		it.capRate = 0
		if it.capped {
			st := it.st
			if st.parentsLeft > 0 {
				a, da := e.availability(st, stageRates)
				capVol := it.volume * a
				it.capRate = it.volume * da
				if it.done >= capVol-availEps {
					// No backlog: limited to the production rate.
					demands[i] = it.capRate
				}
			} else {
				it.capped = false // parents finished; cap lifted
			}
		}
	}
	var weights []float64
	if e.opt.FairByJob {
		weights = e.jobWeights(its)
	}
	// Only items that can actually flow count toward the contention
	// penalty: an availability-starved prefetch (demand ≈ 0) holds no
	// connections worth a sharing overhead.
	nEff := 0
	for _, d := range demands {
		if d > 1 {
			nEff++
		}
	}
	capBW := e.netBW[w]
	if s := e.nodeSlowdown(w); s > 1 {
		capBW /= s
	}
	alloc := resizeF64(&e.wfAlloc, len(its))
	e.wfActive = waterFillInto(alloc, e.wfActive[:0], e.contended(capBW, nEff), demands, weights)
	for i, it := range its {
		it.rate = alloc[i]
	}
}

// resizeF64 grows (or shrinks) a scratch slice to n elements, zeroed.
func resizeF64(s *[]float64, n int) []float64 {
	v := *s
	if cap(v) < n {
		v = make([]float64, n)
	} else {
		v = v[:n]
		for i := range v {
			v[i] = 0
		}
	}
	*s = v
	return v
}

// contended scales a resource's capacity by the sharing-efficiency loss:
// f concurrent consumers see C/(1+α·min(f−1, 4)). The penalty saturates —
// interference (incast, seeks, stragglers) is mostly pairwise, and an
// unbounded linear loss would make aggregate throughput collapse under
// high multi-job concurrency, destabilizing trace replays.
func (e *engine) contended(capacity float64, n int) float64 {
	if n <= 1 {
		return capacity
	}
	extra := float64(n - 1)
	if extra > contentionSaturation {
		extra = contentionSaturation
	}
	return capacity / (1 + e.opt.ContentionOverhead*extra)
}

// contentionSaturation caps the effective number of interfering extra
// consumers in the sharing-overhead model.
const contentionSaturation = 4

// fairShares splits capacity among items with the contention loss applied:
// equally, or per-job first when FairByJob is set.
func (e *engine) fairShares(its []*item, capacity float64) []float64 {
	return e.fairSharesNominal(its, e.contended(capacity, len(its)))
}

// fairSharesNominal splits capacity without the contention loss. The
// returned slice is the engine's share scratch — valid until the next
// fairShares/fairSharesNominal call.
func (e *engine) fairSharesNominal(its []*item, capacity float64) []float64 {
	out := resizeF64(&e.shareScratch, len(its))
	if !e.opt.FairByJob {
		s := capacity / float64(len(its))
		for i := range out {
			out[i] = s
		}
		return out
	}
	perJob := e.perJobScratch
	clear(perJob)
	for _, it := range its {
		perJob[it.key.job]++
	}
	jobShare := capacity / float64(len(perJob))
	for i, it := range its {
		out[i] = jobShare / float64(perJob[it.key.job])
	}
	return out
}

// jobWeights returns water-filling weights implementing job-first fairness.
// The returned slice is the engine's weight scratch.
func (e *engine) jobWeights(its []*item) []float64 {
	perJob := e.perJobScratch
	clear(perJob)
	for _, it := range its {
		perJob[it.key.job]++
	}
	nJobs := float64(len(perJob))
	w := resizeF64(&e.weightScratch, len(its))
	for i, it := range its {
		w[i] = 1 / (nJobs * float64(perJob[it.key.job]))
	}
	return w
}

// nextDT returns the time to the next item event (completion or
// availability catch-up), or +Inf.
func (e *engine) nextDT() float64 {
	dt := math.Inf(1)
	for _, it := range e.items {
		if it.rate > eps {
			if d := it.remaining / it.rate; d < dt {
				dt = d
			}
			if it.failAt > 0 {
				// Time until this doomed attempt dies.
				if d := (it.failAt - (it.volume - it.remaining)) / it.rate; d < dt {
					dt = d
				}
			}
		}
		if it.capped && it.ph == phRead {
			st := it.st
			if st.parentsLeft > 0 {
				a, _ := e.availability(st, nil) // da not needed here
				capVol := it.volume * a
				backlog := capVol - it.done
				// Catch-up events below a byte of backlog are noise: with
				// many heterogeneous nodes they degenerate into an event
				// storm of ever-smaller dt.
				if backlog > availEps && it.rate > it.capRate+eps {
					if d := backlog / (it.rate - it.capRate); d < dt {
						dt = d
					}
				}
			}
		}
	}
	return dt
}

// emitShares publishes one ShareSample per live item for the interval
// [e.now, e.now+dt) on which rates are constant. Only called when the
// observer implements ShareObserver; the scratch slice is reused across
// intervals so the steady state stays allocation-free.
func (e *engine) emitShares(dt float64) {
	s := e.shareScr[:0]
	for _, it := range e.items {
		var res Resource
		var iso float64
		switch it.ph {
		case phRead:
			res, iso = ResNet, e.netBW[it.node]
		case phCompute:
			res = ResCPU
			ex := e.execs[it.node]
			if tpn := it.st.profile.tasksPerNode; tpn > 0 && ex > tpn {
				ex = tpn
			}
			iso = ex * it.st.profile.procRate
			if it.slow > 1 {
				iso /= it.slow
			}
		case phWrite:
			res, iso = ResDisk, e.diskBW[it.node]
		}
		if s := e.nodeSlowdown(it.node); s > 1 {
			iso /= s
		}
		s = append(s, ShareSample{Job: it.key.job, Stage: it.key.stage,
			Node: it.node, Res: res, Rate: it.rate, IsoRate: iso})
	}
	e.shareScr = s
	e.shareObs.OnShares(e.now, dt, s)
}

// advance progresses every item by dt and accumulates usage integrals.
func (e *engine) advance(dt float64) {
	if dt <= 0 {
		return
	}
	if e.shareObs != nil {
		e.emitShares(dt)
	}
	e.recordUsage(dt)
	for _, it := range e.items {
		p := it.rate * dt
		it.remaining -= p
		if it.capped {
			it.done += p
		}
		if it.ph == phCompute && !it.recompute {
			it.st.computeDone += p
		}
	}
	e.now += dt
}

// recordUsage integrates resource usage over the next dt seconds (rates
// are constant until then) and extends the tracked series.
func (e *engine) recordUsage(dt float64) {
	var trackNet, trackDisk, trackCPUBusy float64
	var totNet, totDisk, totBusyExec float64
	busyExecs := e.busyScratch
	for i := range busyExecs {
		busyExecs[i] = 0
	}
	for _, it := range e.items {
		switch it.ph {
		case phRead:
			e.netBytesInt += it.rate * dt
			totNet += it.rate
			if it.node == e.opt.TrackNode {
				trackNet += it.rate
			}
		case phWrite:
			e.diskBytesInt += it.rate * dt
			totDisk += it.rate
			if it.node == e.opt.TrackNode {
				trackDisk += it.rate
			}
		case phCompute:
			busyExecs[it.node] += it.execUsed
		}
	}
	for w, busy := range busyExecs {
		if busy > e.execs[w] {
			busy = e.execs[w]
		}
		if busy > 0 {
			e.cpuBusyInt += busy * dt
			totBusyExec += busy
			if w == e.opt.TrackNode {
				trackCPUBusy = busy / e.execs[w]
			}
		}
	}
	if e.opt.TrackNode >= 0 && e.opt.TrackNode < e.nNodes {
		e.res.Node.CPUBusy = appendStep(e.res.Node.CPUBusy, e.now, trackCPUBusy)
		e.res.Node.NetRate = appendStep(e.res.Node.NetRate, e.now, trackNet)
		e.res.Node.DiskRate = appendStep(e.res.Node.DiskRate, e.now, trackDisk)
	}
	if e.opt.TrackCluster {
		e.res.Cluster.CPUBusy = appendStep(e.res.Cluster.CPUBusy, e.now, totBusyExec/e.totalExec)
		e.res.Cluster.NetRate = appendStep(e.res.Cluster.NetRate, e.now, totNet)
		e.res.Cluster.DiskRate = appendStep(e.res.Cluster.DiskRate, e.now, totDisk)
	}
	if e.opt.TrackOccupancy {
		e.recordOccupancy(dt)
	}
}

// appendStep appends (t,v) unless the last sample already has value v.
func appendStep(s Series, t, v float64) Series {
	if n := len(s); n > 0 && math.Abs(s[n-1].V-v) < 1e-12 {
		return s
	}
	return append(s, Sample{T: t, V: v})
}

// recordOccupancy tracks executors held per stage (read + compute phases
// hold slots, as Spark tasks do while shuffle-reading).
func (e *engine) recordOccupancy(dt float64) {
	holders := make(map[skey]map[int]bool) // stage → nodes holding slots
	perNode := make([]int, e.nNodes)       // stages holding slots per node
	for _, it := range e.items {
		if it.ph == phWrite {
			continue
		}
		m := holders[it.key]
		if m == nil {
			m = make(map[int]bool)
			holders[it.key] = m
		}
		if !m[it.node] {
			m[it.node] = true
			perNode[it.node]++
		}
	}
	occ := make(map[skey]float64, len(holders))
	for k, nodes := range holders {
		for w := range nodes {
			occ[k] += e.execs[w] / float64(perNode[w])
		}
	}
	// Close segments that changed, open new ones.
	for k, seg := range e.occOpen {
		if nv, ok := occ[k]; !ok || math.Abs(nv-seg.Executors) > 1e-9 {
			seg.To = e.now
			if seg.To > seg.From {
				e.res.Occupancy = append(e.res.Occupancy, *seg)
			}
			delete(e.occOpen, k)
		}
	}
	for k, v := range occ {
		if _, open := e.occOpen[k]; !open {
			e.occOpen[k] = &OccupancySegment{JobIndex: k.job, Stage: k.stage, From: e.now, Executors: v}
		}
	}
}

// itemOrder is the deterministic transition order: by key then phase/node.
// sortItems orders an item slice by itemOrder with a typed insertion
// sort. The per-event done/dead sets are tiny, so sort.Slice's reflection
// setup dominated the actual comparisons; insertion sort is stable, which
// can only preserve MORE of the e.items order than the unstable sort did
// (itemOrder is a total order on live items, so ties do not occur).
func sortItems(its []*item) {
	for i := 1; i < len(its); i++ {
		it := its[i]
		j := i - 1
		for j >= 0 && itemOrder(it, its[j]) {
			its[j+1] = its[j]
			j--
		}
		its[j+1] = it
	}
}

func itemOrder(a, b *item) bool {
	if a.key.job != b.key.job {
		return a.key.job < b.key.job
	}
	if a.key.stage != b.key.stage {
		return a.key.stage < b.key.stage
	}
	if a.ph != b.ph {
		return a.ph < b.ph
	}
	if a.node != b.node {
		return a.node < b.node
	}
	if a.home != b.home {
		// Blacklist rerouting can place two partitions on one machine;
		// the logical partition index breaks the tie.
		return a.home < b.home
	}
	// A speculative clone shares (key, ph, home) with its rival but runs
	// on a different node, so reaching here means a == b in order terms;
	// originals sort before clones for definiteness.
	return !a.spec && b.spec
}

// removeDone drops completed and freshly-failed items and fires their
// transitions.
func (e *engine) removeDone() {
	kept := e.items[:0]
	done, dead := e.doneScratch[:0], e.deadScratch[:0]
	for _, it := range e.items {
		switch {
		case it.remaining <= eps:
			done = append(done, it)
			e.bucketRemove(it)
		case it.failAt > 0 && it.volume-it.remaining >= it.failAt-eps:
			dead = append(dead, it)
			e.bucketRemove(it)
		default:
			kept = append(kept, it)
		}
	}
	e.items = kept
	e.doneScratch, e.deadScratch = done, dead
	sortItems(done)
	for _, it := range done {
		if it.cancelled || e.failed[it.key.job] {
			continue
		}
		if r := it.rival; r != nil {
			// First finisher wins the speculation race; the loser is
			// cancelled on the spot (deterministic: done items fire in
			// itemOrder, and a same-event twin is skipped as cancelled).
			it.rival, r.rival = nil, nil
			r.cancelled = true
			e.unlink(r)
			e.res.SpecWins++
			if o := e.opt.Observer; o != nil {
				o.OnEvent(Event{T: e.now, Kind: EvSpecWin, Job: it.key.job, Stage: it.key.stage,
					Node: it.node, Attempt: it.attempt})
			}
		}
		if e.opt.Speculation && it.ph == phCompute && !it.recompute {
			it.st.compDurs = append(it.st.compDurs, e.now-it.startAt)
		}
		if it.recompute {
			e.finishRecompute(it)
			continue
		}
		st := it.st
		switch it.ph {
		case phRead:
			e.finishRead(st, it.home)
		case phCompute:
			e.finishCompute(st, it.home)
		case phWrite:
			e.finishWrite(st, it.home)
		}
	}
	sortItems(dead)
	for _, it := range dead {
		if it.cancelled {
			continue
		}
		e.noteFault(it.node)
		if r := it.rival; r != nil {
			// The twin is still running: fold this death into the race
			// instead of re-queuing (speculation absorbed the fault).
			it.rival, r.rival = nil, nil
			continue
		}
		e.taskFailed(it)
	}
	// All transitions fired; the removed items hold no live references.
	for _, it := range done {
		e.freeItem(it)
	}
	for _, it := range dead {
		e.freeItem(it)
	}
	e.doneScratch = e.doneScratch[:0]
	e.deadScratch = e.deadScratch[:0]
	if e.opt.Speculation {
		e.maybeSpeculate()
	}
}

// unlink removes a cancelled speculation loser from the live set. When
// the loser completed or died in the same event batch it is no longer in
// e.items — its scratch entry then carries the cancelled flag and is
// skipped (and freed) by the batch loops instead.
func (e *engine) unlink(r *item) {
	for i, it := range e.items {
		if it == r {
			e.items = append(e.items[:i], e.items[i+1:]...)
			e.bucketRemove(r)
			e.freeItem(r)
			return
		}
	}
}

// maybeSpeculate scans running compute partitions after each event batch:
// once at least half of a stage's partitions have finished computing, a
// partition whose projected total duration exceeds the threshold multiple
// of the finished median gets one clone on the best healthy node.
func (e *engine) maybeSpeculate() {
	for _, it := range e.items {
		if it.ph != phCompute || it.recompute || it.spec || it.rival != nil || it.cancelled {
			continue
		}
		st := it.st
		if st.specDone[it.home] || len(st.compDurs)*2 < e.nNodes {
			continue
		}
		if it.rate <= eps || e.now <= it.startAt {
			continue
		}
		med := e.medianDur(st.compDurs)
		proj := (e.now - it.startAt) + it.remaining/it.rate
		if med <= 0 || proj <= e.opt.SpeculationThreshold*med {
			continue
		}
		e.launchSpec(it)
	}
}

// medianDur is the lower median of the recorded durations (scratch-based,
// deterministic).
func (e *engine) medianDur(ds []float64) float64 {
	s := resizeF64(&e.medScratch, len(ds))
	copy(s, ds)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// launchSpec clones a lagging compute partition onto the target node.
// The clone restarts the partition's full volume (Spark speculation does
// not migrate partial state); original and clone race, first finisher
// wins. The partition is marked so it is never cloned twice.
func (e *engine) launchSpec(it *item) {
	st := it.st
	if st.specDone == nil {
		st.specDone = make(map[int]bool)
	}
	st.specDone[it.home] = true
	tgt := e.specTarget(it)
	if tgt < 0 {
		return
	}
	cl := e.newItem()
	*cl = item{key: it.key, st: st, home: it.home, node: tgt, ph: phCompute,
		remaining: it.volume, volume: it.volume, attempt: it.attempt, spec: true}
	e.armCompute(cl)
	cl.rival = it
	it.rival = cl
	e.addItem(cl)
	e.res.SpecLaunched++
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvSpecLaunched, Job: it.key.job, Stage: it.key.stage,
			Node: tgt, Attempt: it.attempt})
	}
}

// specTarget picks the clone's machine: never the laggard's own node or a
// blacklisted one, preferring healthy (non-slow) nodes, then the smallest
// compute load, then the lowest index (the deterministic tie-break).
func (e *engine) specTarget(it *item) int {
	best, bestLoad, bestSlow := -1, 0, false
	for w := 0; w < e.nNodes; w++ {
		if w == it.node || (e.blacklisted != nil && e.blacklisted[w]) {
			continue
		}
		slow := e.nodeSlowdown(w) > 1
		load := len(e.computeBk[w])
		if best < 0 || (bestSlow && !slow) || (slow == bestSlow && load < bestLoad) {
			best, bestLoad, bestSlow = w, load, slow
		}
	}
	return best
}

func (e *engine) run() (*Result, error) {
	e.setup()
	if err := e.loop(); err != nil {
		return nil, err
	}
	e.finalize()
	return e.res, nil
}

// loop is the event loop proper (post-setup, pre-finalize). With haltSet it
// returns early — halted=true — at the event boundary just before simulated
// time reaches haltAt; re-entering loop on (a clone of) the halted engine
// continues the run as if it had never stopped: the loop-top timer scan,
// maybePrefetch and the rates pass are all idempotent at a boundary, so the
// resumed trajectory is bit-identical to an uninterrupted one.
func (e *engine) loop() error {
	for {
		done, err := e.step()
		if err != nil || done {
			return err
		}
	}
}

// step runs exactly one event-loop iteration: fire every timer due now,
// then make one rates-pass-and-advance (or halt, or detect completion).
// It is the loop body of loop(), extracted verbatim so external drivers —
// the Stepper primitives and the shard runner built on them — interleave
// engines at event granularity with zero behavior change: a run stepped to
// completion is bit-identical to Run.
//
// step returns done=true when the run finished (or halted at the haltSet
// boundary); calling it again on a finished engine is a harmless no-op
// that reports done again. Any error is terminal.
func (e *engine) step() (done bool, err error) {
	// Fire all timers due now.
	for len(e.timers) > 0 && e.timers[0].at <= e.now+eps {
		if e.haltSet {
			// The timer would fire at max(now, at) — the same clock
			// value fireTimer runs under. Stop before popping it if
			// that lands at or past the halt time.
			eff := e.timers[0].at
			if eff < e.now {
				eff = e.now
			}
			if eff >= e.haltAt {
				e.halted = true
				return true, nil
			}
		}
		t := e.timers.pop()
		if t.at > e.now {
			e.now = t.at
		}
		e.fireTimer(t)
	}
	e.maybePrefetch()
	// Stop when nothing remains — or when every job has completed or
	// failed (leftover crash/retry timers no longer matter).
	if len(e.items) == 0 && len(e.timers) == 0 {
		return true, nil
	}
	if e.jobsLeft == 0 {
		return true, nil
	}
	e.computeRatesPass()
	dt := e.nextDT()
	if len(e.timers) > 0 {
		if d := e.timers[0].at - e.now; d < dt {
			dt = d
		}
	}
	if math.IsInf(dt, 1) {
		return false, fmt.Errorf("sim: deadlock at t=%.3f with %d items", e.now, len(e.items))
	}
	if dt < minDT {
		dt = minDT
	}
	if e.haltSet && e.now+dt >= e.haltAt {
		// The same floating-point expression advance would store into
		// e.now: halting here leaves the engine exactly one advance
		// short of the halt time, at a clean pre-advance boundary.
		e.halted = true
		return true, nil
	}
	e.advance(dt)
	e.removeDone()
	e.res.Events++
	if e.now > e.opt.MaxTime {
		return false, fmt.Errorf("sim: exceeded MaxTime %.0fs", e.opt.MaxTime)
	}
	if e.res.Events > 5_000_000 {
		return false, fmt.Errorf("sim: event limit exceeded at t=%.3f with %d items", e.now, len(e.items))
	}
	return false, nil
}

// peekNextEventTime prices the next event without committing to it: the
// simulated time step would advance the clock to if called now, +Inf when
// the engine is drained. It only performs mutations that are idempotent at
// an event boundary — the same maybePrefetch/computeRatesPass pair the
// snapshot machinery relies on when re-entering loop — so peek-then-step
// is bit-identical to step alone, and peeking adds no persistent engine
// state (nothing for the clone or the persist codec to carry).
//
// A due timer is priced at max(now, timer) without being fired; a state
// step() would report as deadlocked is priced at now, so a merging clock
// drains the engine promptly and step() surfaces the error.
func (e *engine) peekNextEventTime() float64 {
	if e.jobsLeft == 0 || (len(e.items) == 0 && len(e.timers) == 0) {
		// step() completes immediately from here (leftover crash/retry
		// timers in the future are never waited for): price it at now.
		return e.now
	}
	if len(e.timers) > 0 && e.timers[0].at <= e.now+eps {
		if t := e.timers[0].at; t > e.now {
			return t
		}
		return e.now
	}
	e.maybePrefetch()
	e.computeRatesPass()
	dt := e.nextDT()
	if len(e.timers) > 0 {
		if d := e.timers[0].at - e.now; d < dt {
			dt = d
		}
	}
	if math.IsInf(dt, 1) {
		// Deadlock: report "ready now" so the caller steps this engine
		// next and the step returns the descriptive error.
		return e.now
	}
	if dt < minDT {
		dt = minDT
	}
	return e.now + dt
}

func (e *engine) finalize() {
	// Close open occupancy segments.
	for _, seg := range e.occOpen {
		seg.To = e.now
		if seg.To > seg.From {
			e.res.Occupancy = append(e.res.Occupancy, *seg)
		}
	}
	e.occOpen = map[skey]*OccupancySegment{}
	sort.Slice(e.res.Occupancy, func(i, j int) bool {
		a, b := e.res.Occupancy[i], e.res.Occupancy[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Stage < b.Stage
	})
	start := math.Inf(1)
	for _, r := range e.runs {
		if r.Arrival < start {
			start = r.Arrival
		}
	}
	end := 0.0
	for _, t := range e.res.JobEnd {
		if t > end {
			end = t
		}
	}
	e.res.Makespan = end - start
	if e.res.Makespan > 0 {
		e.res.AvgCPUUtil = e.cpuBusyInt / (e.totalExec * e.res.Makespan)
		e.res.AvgNetUtil = e.netBytesInt / (e.totalNet * e.res.Makespan)
		e.res.AvgDiskUtil = e.diskBytesInt / (e.totalDisk * e.res.Makespan)
		e.res.AvgNetRate = e.netBytesInt / e.res.Makespan
	}
	// Terminate tracked series with a final zero sample at makespan end.
	if e.opt.TrackNode >= 0 && e.opt.TrackNode < e.nNodes {
		e.res.Node.CPUBusy = appendStep(e.res.Node.CPUBusy, e.now, 0)
		e.res.Node.NetRate = appendStep(e.res.Node.NetRate, e.now, 0)
		e.res.Node.DiskRate = appendStep(e.res.Node.DiskRate, e.now, 0)
	}
	sort.Slice(e.res.Timelines, func(i, j int) bool {
		a, b := e.res.Timelines[i], e.res.Timelines[j]
		if a.JobIndex != b.JobIndex {
			return a.JobIndex < b.JobIndex
		}
		return a.Stage < b.Stage
	})
}
