package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWaterFillElastic(t *testing.T) {
	inf := math.Inf(1)
	a := waterFill(10, []float64{inf, inf}, nil)
	if math.Abs(a[0]-5) > 1e-9 || math.Abs(a[1]-5) > 1e-9 {
		t.Fatalf("two elastic consumers: %v, want [5 5]", a)
	}
}

func TestWaterFillCappedRedistribution(t *testing.T) {
	inf := math.Inf(1)
	a := waterFill(10, []float64{2, inf}, nil)
	if math.Abs(a[0]-2) > 1e-9 || math.Abs(a[1]-8) > 1e-9 {
		t.Fatalf("capped + elastic: %v, want [2 8]", a)
	}
}

func TestWaterFillAllSatisfied(t *testing.T) {
	a := waterFill(10, []float64{1, 2, 3}, nil)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-9 {
			t.Fatalf("under-subscribed: %v, want %v", a, want)
		}
	}
}

func TestWaterFillCascade(t *testing.T) {
	// Demands 1, 4, inf over capacity 9: 1 satisfied; remaining 8 over
	// {4, inf} → equal shares 4 each; 4 is exactly satisfied.
	inf := math.Inf(1)
	a := waterFill(9, []float64{1, 4, inf}, nil)
	if math.Abs(a[0]-1) > 1e-9 || math.Abs(a[1]-4) > 1e-9 || math.Abs(a[2]-4) > 1e-9 {
		t.Fatalf("cascade: %v, want [1 4 4]", a)
	}
}

func TestWaterFillZeroCapacity(t *testing.T) {
	a := waterFill(0, []float64{1, 2}, nil)
	if a[0] != 0 || a[1] != 0 {
		t.Fatalf("zero capacity: %v", a)
	}
	if out := waterFill(5, nil, nil); len(out) != 0 {
		t.Fatalf("no consumers: %v", out)
	}
}

func TestWaterFillZeroDemand(t *testing.T) {
	inf := math.Inf(1)
	a := waterFill(10, []float64{0, inf}, nil)
	if a[0] != 0 || math.Abs(a[1]-10) > 1e-9 {
		t.Fatalf("zero-demand consumer: %v, want [0 10]", a)
	}
}

func TestWaterFillWeights(t *testing.T) {
	inf := math.Inf(1)
	// Weight 2:1 split of capacity 9.
	a := waterFill(9, []float64{inf, inf}, []float64{2, 1})
	if math.Abs(a[0]-6) > 1e-9 || math.Abs(a[1]-3) > 1e-9 {
		t.Fatalf("weighted: %v, want [6 3]", a)
	}
}

// Properties: feasibility (Σ ≤ C, a_i ≤ d_i), and work conservation when
// demand is sufficient.
func TestWaterFillProperties(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%10) + 1
		capacity := rng.Float64() * 100
		demands := make([]float64, n)
		totalDemand := 0.0
		hasElastic := false
		for i := range demands {
			if rng.Float64() < 0.3 {
				demands[i] = math.Inf(1)
				hasElastic = true
			} else {
				demands[i] = rng.Float64() * 40
				totalDemand += demands[i]
			}
		}
		a := waterFill(capacity, demands, nil)
		sum := 0.0
		for i := range a {
			if a[i] < -1e-9 || a[i] > demands[i]+1e-9 {
				return false
			}
			sum += a[i]
		}
		if sum > capacity+1e-6 {
			return false
		}
		// Work conservation: if demand ≥ capacity (or any elastic), the
		// allocation must use (almost) all capacity.
		if hasElastic || totalDemand >= capacity {
			if sum < capacity-1e-6 {
				return false
			}
		} else if math.Abs(sum-totalDemand) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Max-min fairness: no consumer with a smaller allocation could gain
// without a larger-allocation consumer losing — equivalently, every
// unsatisfied consumer gets at least the share of any other consumer.
func TestWaterFillMaxMin(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		capacity := 10 + rng.Float64()*50
		demands := make([]float64, n)
		for i := range demands {
			if rng.Float64() < 0.4 {
				demands[i] = math.Inf(1)
			} else {
				demands[i] = rng.Float64() * 30
			}
		}
		a := waterFill(capacity, demands, nil)
		for i := range a {
			satisfied := a[i] >= demands[i]-1e-9
			if satisfied {
				continue
			}
			// i is unsatisfied: nobody may hold more than a[i] + ε unless
			// capped below it.
			for j := range a {
				if a[j] > a[i]+1e-6 && a[j] > demands[j]-1e-9 == false {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
