package sim

import (
	"math"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

func ref(n int) *cluster.Cluster { return cluster.NewM4LargeCluster(n) }

// singleStageJob builds a one-stage job with the given solo phase times.
func singleStageJob(c *cluster.Cluster, read, compute, write float64) *workload.Job {
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1, Name: "only"})
	j := &workload.Job{
		Name:  "single",
		Graph: g,
		Profiles: map[dag.StageID]workload.StageProfile{
			1: workload.FromPhases(c, workload.PhaseSpec{ReadSec: read, ComputeSec: compute, WriteSec: write}),
		},
	}
	if err := j.Validate(); err != nil {
		panic(err)
	}
	return j
}

// twoParallelJob builds two independent root stages with identical phases
// plus no children.
func twoParallelJob(c *cluster.Cluster, read, compute, write float64) *workload.Job {
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: read, ComputeSec: compute, WriteSec: write})
	j := &workload.Job{Name: "par2", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	if err := j.Validate(); err != nil {
		panic(err)
	}
	return j
}

// chainJob builds parent → child with given phases each.
func chainJob(c *cluster.Cluster, read, compute, write float64, skew float64) *workload.Job {
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: read, ComputeSec: compute, WriteSec: write, Skew: skew})
	j := &workload.Job{Name: "chain", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
	if err := j.Validate(); err != nil {
		panic(err)
	}
	return j
}

func mustRun(t *testing.T, opt Options, runs []JobRun) *Result {
	t.Helper()
	r, err := Run(opt, runs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.3f ± %.2f", name, got, want, tol)
	}
}

func TestSoloStagePhaseTimes(t *testing.T) {
	c := ref(30)
	j := singleStageJob(c, 100, 150, 20)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	tl := res.Timeline(0, 1)
	if tl == nil {
		t.Fatal("missing timeline")
	}
	approx(t, "read", tl.ReadEnd-tl.Start, 100, 0.5)
	approx(t, "compute", tl.ComputeEnd-tl.ReadEnd, 150, 0.5)
	approx(t, "write", tl.End-tl.ComputeEnd, 20, 0.5)
	approx(t, "JCT", res.JCT(0), 270, 1)
}

func TestTwoParallelStagesContend(t *testing.T) {
	c := ref(10)
	j := twoParallelJob(c, 100, 100, 10)
	// ContentionOverhead −1 = pure fluid sharing, so the arithmetic is exact.
	res := mustRun(t, Options{Cluster: c, TrackNode: -1, ContentionOverhead: -1}, []JobRun{{Job: j}})
	// Both stages read simultaneously at half bandwidth: reads take ~200 s.
	for _, sid := range []dag.StageID{1, 2} {
		tl := res.Timeline(0, sid)
		approx(t, "shared read", tl.ReadEnd-tl.Start, 200, 1)
		// Then both compute at half the executors: ~200 s.
		approx(t, "shared compute", tl.ComputeEnd-tl.ReadEnd, 200, 1)
	}
}

// With the default contention overhead α, two synchronized stages take
// strictly longer than the pure-fluid 2× — the efficiency loss DelayStage
// exploits.
func TestContentionOverheadSlowsSharing(t *testing.T) {
	c := ref(10)
	j := twoParallelJob(c, 100, 100, 10)
	pure := mustRun(t, Options{Cluster: c, TrackNode: -1, ContentionOverhead: -1}, []JobRun{{Job: j}})
	lossy := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	if lossy.JCT(0) <= pure.JCT(0)+1 {
		t.Fatalf("contention overhead must slow sharing: pure %.1f, lossy %.1f",
			pure.JCT(0), lossy.JCT(0))
	}
	// Solo execution is unaffected by α.
	solo := singleStageJob(c, 100, 100, 10)
	a := mustRun(t, Options{Cluster: c, TrackNode: -1, ContentionOverhead: -1}, []JobRun{{Job: solo}})
	b := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: solo}})
	approx(t, "solo JCT", b.JCT(0), a.JCT(0), 0.5)
}

func TestDelayInterleavesResources(t *testing.T) {
	c := ref(10)
	j := twoParallelJob(c, 100, 100, 5)
	stock := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	// Delay stage 2 by the read time of stage 1: stage 2 reads while stage
	// 1 computes — classic DelayStage interleaving.
	delayed := mustRun(t, Options{Cluster: c, TrackNode: -1},
		[]JobRun{{Job: j, Delays: map[dag.StageID]float64{2: 100}}})
	if delayed.JCT(0) >= stock.JCT(0)-1 {
		t.Fatalf("delaying should shorten JCT: stock %.1f, delayed %.1f",
			stock.JCT(0), delayed.JCT(0))
	}
	// Interleaving also lifts average utilization.
	if delayed.AvgCPUUtil <= stock.AvgCPUUtil {
		t.Errorf("CPU util should rise: stock %.3f delayed %.3f", stock.AvgCPUUtil, delayed.AvgCPUUtil)
	}
}

func TestDelayHonored(t *testing.T) {
	c := ref(5)
	j := singleStageJob(c, 10, 10, 1)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1},
		[]JobRun{{Job: j, Delays: map[dag.StageID]float64{1: 42}}})
	tl := res.Timeline(0, 1)
	approx(t, "delay", tl.Start-tl.Ready, 42, 1e-3)
}

func TestChainDependency(t *testing.T) {
	c := ref(5)
	j := chainJob(c, 50, 60, 5, 0)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	p, ch := res.Timeline(0, 1), res.Timeline(0, 2)
	if ch.Start < p.End-eps {
		t.Fatalf("child started at %.2f before parent ended at %.2f", ch.Start, p.End)
	}
	approx(t, "child ready", ch.Ready, p.End, 1e-3)
	approx(t, "JCT", res.JCT(0), 2*(50+60+5), 1)
}

func TestJobArrivalOffset(t *testing.T) {
	c := ref(5)
	j := singleStageJob(c, 10, 10, 1)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j, Arrival: 100}})
	tl := res.Timeline(0, 1)
	approx(t, "arrival start", tl.Start, 100, 1e-3)
	approx(t, "JCT", res.JCT(0), 21, 0.5)
}

func TestMultiJobSharing(t *testing.T) {
	c := ref(10)
	j := singleStageJob(c, 100, 100, 10)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1, ContentionOverhead: -1},
		[]JobRun{{Job: j}, {Job: j}})
	// Two identical jobs sharing everything: each phase takes 2× solo
	// under pure fluid sharing.
	for i := 0; i < 2; i++ {
		approx(t, "shared JCT", res.JCT(i), 2*(100+100+10), 2)
	}
}

func TestFairByJobMatchesEqualForSymmetricJobs(t *testing.T) {
	c := ref(10)
	j := singleStageJob(c, 50, 50, 5)
	a := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}, {Job: j}})
	b := mustRun(t, Options{Cluster: c, TrackNode: -1, FairByJob: true}, []JobRun{{Job: j}, {Job: j}})
	approx(t, "JCT equal-share vs job-fair", a.JCT(0), b.JCT(0), 1)
}

func TestFairByJobProtectsSmallJob(t *testing.T) {
	c := ref(10)
	small := singleStageJob(c, 100, 10, 1)
	big := twoParallelJob(c, 100, 10, 1)
	// Job-fair: small job gets 1/2 the NIC; equal-share per item: 1/3.
	byItem := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: small}, {Job: big}})
	byJob := mustRun(t, Options{Cluster: c, TrackNode: -1, FairByJob: true}, []JobRun{{Job: small}, {Job: big}})
	if byJob.JCT(0) >= byItem.JCT(0)-1 {
		t.Fatalf("job fairness should speed up the small job: %.1f vs %.1f",
			byJob.JCT(0), byItem.JCT(0))
	}
}

func TestCoarsenEquivalentForSymmetricLoad(t *testing.T) {
	c := ref(30)
	j := singleStageJob(c, 80, 120, 10)
	fine := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	coarse := mustRun(t, Options{Cluster: Coarsen(c), TrackNode: -1}, []JobRun{{Job: j}})
	approx(t, "coarse JCT", coarse.JCT(0), fine.JCT(0), 1)
}

func TestCoarsenTotals(t *testing.T) {
	c := ref(30)
	cc := Coarsen(c)
	if cc.TotalExecutors() != c.TotalExecutors() {
		t.Error("executors not preserved")
	}
	approx(t, "net", cc.TotalNetBW(), c.TotalNetBW(), 1)
	approx(t, "disk", cc.TotalDiskBW(), c.TotalDiskBW(), 1)
	if len(cc.Nodes) != 1 {
		t.Error("coarse cluster must have a single node")
	}
}

func TestAggShuffleHelpsSkewedHurtsNotHomogeneous(t *testing.T) {
	c := ref(10)
	skewed := chainJob(c, 80, 100, 30, 0.8)
	plain := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: skewed}})
	agg := mustRun(t, Options{Cluster: c, TrackNode: -1, AggShuffle: true}, []JobRun{{Job: skewed}})
	if agg.JCT(0) >= plain.JCT(0)-1 {
		t.Errorf("AggShuffle should help skewed chain: plain %.1f agg %.1f", plain.JCT(0), agg.JCT(0))
	}
	homog := chainJob(c, 80, 100, 30, 0.0)
	plainH := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: homog}})
	aggH := mustRun(t, Options{Cluster: c, TrackNode: -1, AggShuffle: true}, []JobRun{{Job: homog}})
	// Homogeneous tasks release output only at completion: no benefit.
	approx(t, "homogeneous AggShuffle JCT", aggH.JCT(0), plainH.JCT(0), 2)
}

func TestUtilizationBounds(t *testing.T) {
	c := ref(10)
	j := twoParallelJob(c, 50, 80, 10)
	res := mustRun(t, Options{Cluster: c, TrackNode: 0}, []JobRun{{Job: j}})
	for _, v := range []float64{res.AvgCPUUtil, res.AvgNetUtil, res.AvgDiskUtil} {
		if v < 0 || v > 1+1e-9 {
			t.Fatalf("utilization %v outside [0,1]", v)
		}
	}
	if res.AvgCPUUtil == 0 || res.AvgNetUtil == 0 {
		t.Fatal("expected non-zero utilizations")
	}
}

func TestTrackedSeriesMonotonic(t *testing.T) {
	c := ref(5)
	j := twoParallelJob(c, 30, 40, 5)
	res := mustRun(t, Options{Cluster: c, TrackNode: 0}, []JobRun{{Job: j}})
	for _, s := range []Series{res.Node.CPUBusy, res.Node.NetRate, res.Node.DiskRate} {
		if len(s) == 0 {
			t.Fatal("tracked series empty")
		}
		for i := 1; i < len(s); i++ {
			if s[i].T < s[i-1].T {
				t.Fatalf("series time went backwards: %v then %v", s[i-1], s[i])
			}
		}
	}
}

func TestOccupancySegments(t *testing.T) {
	c := ref(5)
	j := twoParallelJob(c, 30, 40, 5)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1, TrackOccupancy: true}, []JobRun{{Job: j}})
	if len(res.Occupancy) == 0 {
		t.Fatal("no occupancy segments recorded")
	}
	totalExec := float64(c.TotalExecutors())
	for _, seg := range res.Occupancy {
		if seg.To <= seg.From {
			t.Fatalf("empty segment %+v", seg)
		}
		if seg.Executors <= 0 || seg.Executors > totalExec+1e-9 {
			t.Fatalf("occupancy %v outside (0, %v]", seg.Executors, totalExec)
		}
	}
}

func TestDeterminism(t *testing.T) {
	c := ref(10)
	j := twoParallelJob(c, 60, 70, 8)
	a := mustRun(t, Options{Cluster: c, TrackNode: 0, TrackOccupancy: true}, []JobRun{{Job: j}})
	b := mustRun(t, Options{Cluster: c, TrackNode: 0, TrackOccupancy: true}, []JobRun{{Job: j}})
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Fatalf("non-deterministic: %v/%v events %d/%d", a.Makespan, b.Makespan, a.Events, b.Events)
	}
	for i := range a.Timelines {
		if a.Timelines[i] != b.Timelines[i] {
			t.Fatalf("timeline %d differs", i)
		}
	}
}

func TestZeroWriteStage(t *testing.T) {
	c := ref(5)
	j := singleStageJob(c, 20, 30, 0)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: j}})
	tl := res.Timeline(0, 1)
	approx(t, "end==computeEnd", tl.End, tl.ComputeEnd, 1e-6)
}

func TestRunValidation(t *testing.T) {
	c := ref(3)
	j := singleStageJob(c, 1, 1, 1)
	cases := []struct {
		name string
		opt  Options
		runs []JobRun
	}{
		{"nil cluster", Options{}, []JobRun{{Job: j}}},
		{"no jobs", Options{Cluster: c}, nil},
		{"nil job", Options{Cluster: c}, []JobRun{{}}},
		{"negative arrival", Options{Cluster: c}, []JobRun{{Job: j, Arrival: -1}}},
		{"negative delay", Options{Cluster: c}, []JobRun{{Job: j, Delays: map[dag.StageID]float64{1: -5}}}},
		{"nan delay", Options{Cluster: c}, []JobRun{{Job: j, Delays: map[dag.StageID]float64{1: math.NaN()}}}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.opt, tc.runs); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMaxTimeAbort(t *testing.T) {
	c := ref(3)
	j := singleStageJob(c, 1000, 1000, 10)
	if _, err := Run(Options{Cluster: c, TrackNode: -1, MaxTime: 10}, []JobRun{{Job: j}}); err == nil {
		t.Fatal("expected MaxTime abort")
	}
}

func TestMakespanCoversAllJobs(t *testing.T) {
	c := ref(5)
	j := singleStageJob(c, 10, 10, 1)
	res := mustRun(t, Options{Cluster: c, TrackNode: -1},
		[]JobRun{{Job: j, Arrival: 0}, {Job: j, Arrival: 500}})
	if res.Makespan < 500 {
		t.Fatalf("makespan %.1f must include the late job", res.Makespan)
	}
	if res.JCT(1) > res.JCT(0)+1 {
		t.Fatalf("non-overlapping jobs should have equal JCTs: %.1f vs %.1f", res.JCT(0), res.JCT(1))
	}
}
