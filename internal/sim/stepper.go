package sim

import (
	"fmt"
	"math"
)

// Stepper drives one simulation at event granularity. It exposes the three
// step primitives of the shared-clock decomposition — HasPendingEvents,
// PeekNextEventTime, StepNextEvent — so an external runner (the shard
// merging clock in internal/shardsim, a test harness, a live debugger) can
// interleave many engines in global timestamp order while each engine's
// trajectory stays bit-identical to an uninterrupted Run: StepNextEvent is
// exactly one iteration of the same event loop Run executes, and
// PeekNextEventTime only performs the mutations that are idempotent at an
// event boundary (the invariant SnapshotAt/Resume already rely on).
//
// A Stepper is single-goroutine: nothing inside is locked. Concurrency
// lives above it — disjoint steppers on disjoint worlds can be driven from
// different goroutines because they share no state.
type Stepper struct {
	e         *engine
	done      bool
	err       error
	finalized bool
}

// NewStepper validates the configuration exactly as Run does and returns a
// stepper positioned before the first event. Driving it until
// HasPendingEvents is false and then calling Result produces the same
// *Result (bit for bit) as Run(opt, runs).
func NewStepper(opt Options, runs []JobRun) (*Stepper, error) {
	opt, err := prepare(opt, runs)
	if err != nil {
		return nil, err
	}
	e := newEngine(opt, runs)
	e.setup()
	return &Stepper{e: e}, nil
}

// Stepper forks the snapshot into a stepper that continues the frozen run
// at event granularity. Like Resume, it deep-copies the engine, so the
// snapshot stays reusable; unlike Resume, the caller controls the pace.
func (s *Snapshot) Stepper() *Stepper {
	e := s.eng.clone()
	e.haltSet, e.haltAt, e.halted = false, 0, false
	return &Stepper{e: e}
}

// HasPendingEvents reports whether StepNextEvent still has work to do.
// It turns false after the step that completes (or fatally errors) the run.
func (s *Stepper) HasPendingEvents() bool { return !s.done }

// Clock returns the current simulated time.
func (s *Stepper) Clock() float64 { return s.e.now }

// Events returns the number of events processed so far.
func (s *Stepper) Events() int { return s.e.res.Events }

// PeekNextEventTime returns the simulated time the next StepNextEvent
// would advance the clock to: the earliest due timer, or the next item
// completion/availability boundary. A drained stepper peeks +Inf, so a
// k-way merge over peek times naturally sinks finished worlds; a stepper
// whose next step would surface an error peeks its current clock, so the
// merge drains it promptly and the error is reported by StepNextEvent.
func (s *Stepper) PeekNextEventTime() float64 {
	if s.done {
		return math.Inf(1)
	}
	return s.e.peekNextEventTime()
}

// StepNextEvent processes exactly one event. Calling it on a drained
// stepper returns an error; any simulation error is sticky and also
// terminates the stepping.
func (s *Stepper) StepNextEvent() error {
	if s.done {
		if s.err != nil {
			return s.err
		}
		return fmt.Errorf("sim: step on a finished run")
	}
	done, err := s.e.step()
	if err != nil {
		s.done, s.err = true, err
		return err
	}
	s.done = done
	return nil
}

// Result finalizes and returns the run's result. It is only valid once
// HasPendingEvents is false; a run that ended in an error returns it here
// too. Result may be called repeatedly (the finalize pass runs once).
func (s *Stepper) Result() (*Result, error) {
	if !s.done {
		return nil, fmt.Errorf("sim: result requested with events still pending")
	}
	if s.err != nil {
		return nil, s.err
	}
	if !s.finalized {
		s.e.finalize()
		s.finalized = true
	}
	return s.e.res, nil
}
