package sim

import (
	"reflect"
	"testing"

	"delaystage/internal/faults"
	"delaystage/internal/workload"
)

// recorder captures the event stream for inspection.
type recorder struct{ events []Event }

func (r *recorder) OnEvent(ev Event) { r.events = append(r.events, ev) }

// TestObserverDoesNotPerturbRun: attaching an observer must leave every
// simulated quantity bit-identical to the unobserved run.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	c := ref(10)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	inj, err := faults.NewInjector(faults.FaultPlan{
		Seed: 7, TaskFailureProb: 0.05,
		Crashes: []faults.NodeCrash{{Node: 1, At: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj2, _ := faults.NewInjector(faults.FaultPlan{
		Seed: 7, TaskFailureProb: 0.05,
		Crashes: []faults.NodeCrash{{Node: 1, At: 40}},
	})

	base := mustRun(t, Options{Cluster: c, TrackNode: 0, TrackCluster: true,
		Faults: inj, MaxAttempts: 8}, []JobRun{{Job: job}})
	rec := &recorder{}
	observed := mustRun(t, Options{Cluster: c, TrackNode: 0, TrackCluster: true,
		Faults: inj2, MaxAttempts: 8, Observer: rec}, []JobRun{{Job: job}})

	if base.Makespan != observed.Makespan {
		t.Errorf("makespan changed under observation: %v vs %v", base.Makespan, observed.Makespan)
	}
	if base.Retries != observed.Retries {
		t.Errorf("retries changed under observation: %d vs %d", base.Retries, observed.Retries)
	}
	if !reflect.DeepEqual(base.Timelines, observed.Timelines) {
		t.Error("stage timelines changed under observation")
	}
	if len(rec.events) == 0 {
		t.Fatal("observer saw no events")
	}
}

// TestObserverEventStream checks the stream is well-formed: monotonic
// timestamps, per-stage lifecycle order, correct terminal events.
func TestObserverEventStream(t *testing.T) {
	c := ref(5)
	job := chainJob(c, 20, 30, 10, 0)
	rec := &recorder{}
	res := mustRun(t, Options{Cluster: c, TrackNode: -1, Observer: rec},
		[]JobRun{{Job: job, Delays: nil}})

	last := -1.0
	phase := map[skey]int{} // stage → lifecycle rank reached
	var jobDone bool
	for i, ev := range rec.events {
		if ev.T < last {
			t.Fatalf("event %d: time went backwards (%v after %v)", i, ev.T, last)
		}
		last = ev.T
		if ev.Kind.String() == "unknown" {
			t.Fatalf("event %d has unknown kind %d", i, ev.Kind)
		}
		switch ev.Kind {
		case EvStageReady, EvStageSubmitted, EvStageCompleted:
			k := skey{ev.Job, ev.Stage}
			rank := map[EventKind]int{EvStageReady: 1, EvStageSubmitted: 2, EvStageCompleted: 3}[ev.Kind]
			if rank <= phase[k] {
				t.Fatalf("event %d: stage %v lifecycle out of order (%v at rank %d)", i, k, ev.Kind, phase[k])
			}
			phase[k] = rank
		case EvReadDone, EvComputeDone, EvWriteDone:
			if ev.Node < 0 {
				t.Fatalf("event %d: %v without a node", i, ev.Kind)
			}
		case EvJobDone:
			jobDone = true
			if ev.T != res.JobEnd[ev.Job] {
				t.Errorf("job_done at %v, JobEnd says %v", ev.T, res.JobEnd[ev.Job])
			}
		}
	}
	if !jobDone {
		t.Error("no job_done event")
	}
	for _, id := range job.Graph.Stages() {
		if phase[skey{0, id}] != 3 {
			t.Errorf("stage %d never completed in the stream (rank %d)", id, phase[skey{0, id}])
		}
	}
}

// TestObserverFaultEvents: retries, crashes and job failures surface as
// typed events.
func TestObserverFaultEvents(t *testing.T) {
	c := ref(5)
	job := twoParallelJob(c, 10, 30, 10)
	inj, err := faults.NewInjector(faults.FaultPlan{
		Seed: 3, Crashes: []faults.NodeCrash{{Node: 2, At: 15}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	mustRun(t, Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 8,
		Observer: rec}, []JobRun{{Job: job}})

	var crash, retry bool
	for _, ev := range rec.events {
		switch ev.Kind {
		case EvNodeCrash:
			crash = true
			if ev.Node != 2 {
				t.Errorf("crash on node %d, want 2", ev.Node)
			}
		case EvTaskRetry:
			retry = true
			if ev.Delay <= 0 {
				t.Errorf("retry with non-positive backoff %v", ev.Delay)
			}
		}
	}
	if !crash {
		t.Error("no node_crash event")
	}
	if !retry {
		t.Error("no task_retry event after the crash killed in-flight tasks")
	}
}

// shareRecorder captures resource-share snapshots; it also implements
// Observer so it can be attached directly as Options.Observer.
type shareRecorder struct {
	recorder
	intervals int
	totalDT   float64
	samples   []ShareSample
}

func (s *shareRecorder) OnShares(t, dt float64, samples []ShareSample) {
	s.intervals++
	s.totalDT += dt
	s.samples = append(s.samples, samples...)
}

// TestShareObserverSnapshots: an observer implementing ShareObserver sees
// one snapshot per simulation interval, samples carry sane rates
// (0 ≤ rate, iso > 0), and attaching it perturbs nothing.
func TestShareObserverSnapshots(t *testing.T) {
	c := ref(5)
	job := twoParallelJob(c, 10, 30, 10)
	base := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	rec := &shareRecorder{}
	res := mustRun(t, Options{Cluster: c, TrackNode: -1, Observer: rec}, []JobRun{{Job: job}})

	if base.Makespan != res.Makespan {
		t.Errorf("makespan changed under share observation: %v vs %v", base.Makespan, res.Makespan)
	}
	if rec.intervals == 0 || len(rec.samples) == 0 {
		t.Fatal("share observer saw no snapshots")
	}
	if rec.totalDT <= 0 || rec.totalDT > res.Makespan+1e-6 {
		t.Errorf("snapshot intervals cover %v s of a %v s run", rec.totalDT, res.Makespan)
	}
	seen := map[Resource]bool{}
	for _, s := range rec.samples {
		if s.Rate < 0 {
			t.Fatalf("negative rate in sample %+v", s)
		}
		if s.IsoRate <= 0 {
			t.Fatalf("non-positive isolated rate in sample %+v", s)
		}
		if s.Node < 0 || s.Node >= 5 {
			t.Fatalf("sample on unknown node: %+v", s)
		}
		if s.Res.String() == "unknown" {
			t.Fatalf("sample with unknown resource: %+v", s)
		}
		seen[s.Res] = true
	}
	for _, r := range []Resource{ResNet, ResCPU, ResDisk} {
		if !seen[r] {
			t.Errorf("no %v samples in a read/compute/write workload", r)
		}
	}
}

// TestEventKindStrings pins the wire names — the JSONL schema depends on
// them being stable.
func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		EvStageReady:     "stage_ready",
		EvStageSubmitted: "stage_submitted",
		EvReadDone:       "read_done",
		EvComputeDone:    "compute_done",
		EvWriteDone:      "write_done",
		EvStageCompleted: "stage_completed",
		EvTaskRetry:      "task_retry",
		EvNodeCrash:      "node_crash",
		EvDelayRevised:   "delay_revised",
		EvJobDone:         "job_done",
		EvJobFailed:       "job_failed",
		EvSpecLaunched:    "spec_launched",
		EvSpecWin:         "spec_win",
		EvNodeBlacklisted: "node_blacklisted",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
