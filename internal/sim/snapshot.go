package sim

import (
	"fmt"
	"math"

	"delaystage/internal/dag"
)

// Snapshot is a checkpoint of a simulation, frozen at an event boundary
// strictly before the requested time. The engine is deterministic and
// RNG-free (fault draws are hash-based, not stream-based), so a snapshot
// can be forked any number of times: each Resume deep-copies the frozen
// engine and continues it, and a resumed run is bit-identical to a
// from-scratch Run of the same configuration — including every
// floating-point accumulation — because the halt only ever happens where
// the event loop would re-enter idempotently (before a timer pop, or
// before an advance).
//
// The intended use is what-if evaluation (internal/core's sim evaluator):
// all delay candidates of one stage share the simulation prefix up to that
// stage's ready time, so a scan of C candidates costs one prefix plus C
// suffixes instead of C full runs.
type Snapshot struct {
	eng *engine
	// At is the stop-before time the snapshot was requested at. The
	// engine's clock (Clock) is at the last event boundary before it.
	At float64
}

// Clock returns the simulated time the snapshot is frozen at — the last
// event boundary strictly before the requested stop time (or the run's end
// when it finished earlier).
func (s *Snapshot) Clock() float64 { return s.eng.now }

// Completed reports whether the simulation already ran to completion
// before the requested stop time (Resume then just finalizes the result).
func (s *Snapshot) Completed() bool { return !s.eng.halted }

// SnapshotAt validates the configuration exactly as Run does, simulates
// until just before simulated time reaches stopBefore, and freezes the
// engine there. Each run's Delays map is deep-copied, so the caller may
// keep mutating it between forks.
//
// Options carrying an Observer or Watchdog are rejected: both receive
// events synchronously and accumulate external state the fork cannot
// duplicate. Faults are allowed — the injector's draws are pure functions
// of (seed, task attempt), shared read-only across forks.
func SnapshotAt(opt Options, runs []JobRun, stopBefore float64) (*Snapshot, error) {
	if opt.Observer != nil {
		return nil, fmt.Errorf("sim: snapshot with an Observer is not supported (observer state cannot be forked)")
	}
	if opt.Watchdog != nil {
		return nil, fmt.Errorf("sim: snapshot with a Watchdog is not supported (watchdog state cannot be forked)")
	}
	if stopBefore < 0 || math.IsNaN(stopBefore) || math.IsInf(stopBefore, 0) {
		return nil, fmt.Errorf("sim: invalid snapshot time %v", stopBefore)
	}
	opt, err := prepare(opt, runs)
	if err != nil {
		return nil, err
	}
	frozen := make([]JobRun, len(runs))
	copy(frozen, runs)
	for i := range frozen {
		if frozen[i].Delays != nil {
			d := make(map[dag.StageID]float64, len(frozen[i].Delays))
			for id, v := range frozen[i].Delays {
				d[id] = v
			}
			frozen[i].Delays = d
		}
	}
	e := newEngine(opt, frozen)
	e.haltSet = true
	e.haltAt = stopBefore
	e.setup()
	if err := e.loop(); err != nil {
		return nil, err
	}
	return &Snapshot{eng: e, At: stopBefore}, nil
}

// Resume forks the snapshot and runs the copy to completion, optionally
// revising the submission delays of stages first. The snapshot itself is
// never mutated — Resume may be called repeatedly, and concurrently from
// multiple goroutines.
//
// Updates may only name stages that were not yet submitted at the
// checkpoint (submitted work cannot be un-submitted; such updates return
// an error). A revised stage that was not yet *ready* at the checkpoint
// simply reads the new delay when it becomes ready, which keeps the run
// bit-identical to a from-scratch Run with that delay in the run's Delays
// map — the delay value is only ever read at readiness, after the halt
// point. A stage that was already ready (but still waiting out its old
// delay) is moved like a watchdog revision: exact in semantics, but the
// superseded submission timer makes the event sequence differ from a
// from-scratch run's, so bit-identity is not guaranteed in that case.
func (s *Snapshot) Resume(updates []DelayUpdate) (*Result, error) {
	e := s.eng.clone()
	e.haltSet, e.haltAt, e.halted = false, 0, false
	for _, u := range updates {
		st := e.states[skey{u.Job, u.Stage}]
		if st == nil {
			return nil, fmt.Errorf("sim: resume: job %d has no stage %d", u.Job, u.Stage)
		}
		if st.submitted {
			return nil, fmt.Errorf("sim: resume: job %d stage %d was already submitted at the checkpoint (t=%.6g)", u.Job, u.Stage, s.eng.now)
		}
		if u.Delay < 0 || math.IsNaN(u.Delay) || math.IsInf(u.Delay, 0) {
			return nil, fmt.Errorf("sim: resume: job %d stage %d has invalid delay %v", u.Job, u.Stage, u.Delay)
		}
		dd := u.Delay
		st.delayOverride = &dd
		if st.readyValid {
			at := st.tl.Ready + dd
			if at < e.now {
				at = e.now
			}
			st.submitAt = at
			e.pushTimer(at, tSubmitStage, st.key, u.Job)
		}
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	e.finalize()
	return e.res, nil
}

// Resume is the package-level form of (*Snapshot).Resume: continue a
// snapshot under extra delay revisions.
func Resume(s *Snapshot, updates []DelayUpdate) (*Result, error) {
	return s.Resume(updates)
}

// clone deep-copies the engine's mutable state. Immutable inputs — the
// cluster capacities, job graphs, per-stage children/availability wiring,
// the fault injector — are shared; everything the event loop writes is
// copied, so the original can be resumed again later. Scratch buffers are
// not copied (they carry no state across events).
func (e *engine) clone() *engine {
	c := newEngine(e.opt, e.runs)
	c.seq = e.seq
	c.now = e.now
	c.haltSet, c.haltAt, c.halted = e.haltSet, e.haltAt, e.halted
	c.lastTrack = e.lastTrack
	c.cpuBusyInt = e.cpuBusyInt
	c.netBytesInt = e.netBytesInt
	c.diskBytesInt = e.diskBytesInt
	c.jobsLeft = e.jobsLeft
	c.stagesLeft = append([]int(nil), e.stagesLeft...)
	copy(c.failed, e.failed)

	// Stage states, in deterministic stateList order; the old→new pointer
	// map rewires item back-references below.
	sm := make(map[*stageState]*stageState, len(e.stateList))
	for _, st := range e.stateList {
		ns := new(stageState)
		*ns = *st
		if len(st.pendingCompute) > 0 {
			ns.pendingCompute = append([]int(nil), st.pendingCompute...)
		}
		if st.delayOverride != nil {
			d := *st.delayOverride
			ns.delayOverride = &d
		}
		if st.compDurs != nil {
			ns.compDurs = append([]float64(nil), st.compDurs...)
		}
		if st.specDone != nil {
			ns.specDone = make(map[int]bool, len(st.specDone))
			for k, v := range st.specDone {
				ns.specDone[k] = v
			}
		}
		sm[st] = ns
		c.states[ns.key] = ns
		c.stateList = append(c.stateList, ns)
	}

	// Live items, preserving e.items order; buckets are rebuilt from the
	// old buckets through the old→new item map so their subsequence order
	// — which fixes the floating-point accumulation order of the rates
	// passes — carries over exactly.
	im := make(map[*item]*item, len(e.items))
	for _, it := range e.items {
		ni := new(item)
		*ni = *it
		ni.st = sm[it.st]
		im[it] = ni
		c.items = append(c.items, ni)
	}
	// Second pass: rewire speculation rival links through the old→new map
	// (both ends of a live race are always in e.items).
	for _, it := range e.items {
		if it.rival != nil {
			im[it].rival = im[it.rival]
		}
	}
	for w := 0; w < e.nNodes; w++ {
		for _, it := range e.computeBk[w] {
			c.computeBk[w] = append(c.computeBk[w], im[it])
		}
		for _, it := range e.readBk[w] {
			c.readBk[w] = append(c.readBk[w], im[it])
		}
		for _, it := range e.writeBk[w] {
			c.writeBk[w] = append(c.writeBk[w], im[it])
		}
	}
	copy(c.dirtyC, e.dirtyC)
	copy(c.dirtyR, e.dirtyR)
	copy(c.dirtyW, e.dirtyW)

	c.timers = append(timerHeap(nil), e.timers...)
	c.res = e.res.clone()
	for k, seg := range e.occOpen {
		s := *seg
		c.occOpen[k] = &s
	}
	for k, rs := range e.recomps {
		c.recomps[k] = &recompState{held: append([]skey(nil), rs.held...)}
	}
	// Machine health: nodeSlow is immutable after setup (shared);
	// fault counters are mutable (copied). newEngine does not run setup,
	// so the clone must take them explicitly.
	c.nodeSlow = e.nodeSlow
	if e.faultCount != nil {
		c.faultCount = append([]int(nil), e.faultCount...)
		c.blacklisted = append([]bool(nil), e.blacklisted...)
	}
	c.nBlacklisted = e.nBlacklisted
	return c
}

// clone deep-copies a result in progress (every slice gets fresh backing).
func (r *Result) clone() *Result {
	c := *r
	c.Timelines = append([]StageTimeline(nil), r.Timelines...)
	c.JobEnd = append([]float64(nil), r.JobEnd...)
	c.JobStart = append([]float64(nil), r.JobStart...)
	c.JobErrors = append([]error(nil), r.JobErrors...)
	c.Node = r.Node.clone()
	c.Cluster = r.Cluster.clone()
	c.Occupancy = append([]OccupancySegment(nil), r.Occupancy...)
	return &c
}

func (u NodeUsage) clone() NodeUsage {
	return NodeUsage{
		CPUBusy:  append(Series(nil), u.CPUBusy...),
		NetRate:  append(Series(nil), u.NetRate...),
		DiskRate: append(Series(nil), u.DiskRate...),
	}
}
