package sim

import (
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/workload"
)

// The engine's event loop is allocation-free in steady state: the rate
// passes reuse scratch slices, the timer heap is a typed slice, and items
// recycle through the pool. What a run still allocates is one-time: the
// engine and per-stage states, each item's first pool miss (stages ×
// nodes for a per-node run), and result assembly. LDA on 30 nodes (150
// items) measures ≈510 allocations per run; the budget below is that
// one-time cost with ~40% headroom. A regression that allocates per event
// or per rate pass — boxing timers through interface{}, rebuilding
// waterFill scratch, per-pass maps — scales with events × nodes and blows
// through the cap immediately.
func TestEngineAllocBudget(t *testing.T) {
	c := cluster.NewM4LargeCluster(30)
	job := workload.LDA(c, 1.0)
	// Warm up once so lazily-built workload/graph caches don't bill the
	// measured runs.
	if _, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}}); err != nil {
		t.Fatal(err)
	}
	items := job.Graph.Len() * len(c.Nodes) // first-use pool misses
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}}); err != nil {
			t.Fatal(err)
		}
	})
	budget := float64(2*items) + 400
	t.Logf("%.0f allocs/run (%d items, budget %.0f)", allocs, items, budget)
	if allocs > budget {
		t.Errorf("engine allocates %.0f allocs/run (budget %.0f): hot path regressed", allocs, budget)
	}
}
