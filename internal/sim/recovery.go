package sim

import (
	"math"
	"sort"
)

// Failure handling and recovery: capped retries with exponential backoff
// for lost partitions, lineage-style recomputation of a crashed node's
// shuffle outputs (Spark semantics: the producing partitions are re-run),
// and the runtime watchdog hook that lets a guarded scheduler revise
// not-yet-submitted delays when the plan goes stale. Every entry point is
// a no-op without an Injector/Watchdog, keeping the fault-free engine
// bit-identical to the pre-fault build.

// armCompute attaches the injector's verdicts to a fresh compute attempt:
// a doomed attempt gets its fail point, a straggling partition its
// slowdown.
func (e *engine) armCompute(it *item) {
	inj := e.opt.Faults
	if inj == nil {
		return
	}
	if f, ok := inj.TaskFailure(it.key.job, int(it.key.stage), it.node, it.attempt); ok {
		it.failAt = it.volume * f
	}
	it.slow = inj.Straggler(it.key.job, int(it.key.stage), it.node)
}

// taskFailed handles one lost partition attempt (mid-compute death or a
// node-crash kill): re-queue with exponential backoff, or — once the
// attempt budget is spent — fail the job with a structured error instead
// of fabricating a timeline.
func (e *engine) taskFailed(it *item) {
	if e.failed[it.key.job] {
		return
	}
	st := it.st
	st.retries++
	e.res.Retries++
	if it.attempt >= e.opt.MaxAttempts {
		e.failJob(it.key.job, &StageFailureError{
			Job: it.key.job, Stage: it.key.stage, Node: it.node, Attempts: it.attempt,
		})
		return
	}
	backoff := e.opt.RetryBackoff * math.Pow(2, float64(it.attempt-1))
	e.seq++
	e.timers.push(timer{at: e.now + backoff, seq: e.seq, kind: tRetry, key: it.key,
		job: it.key.job, node: it.node, home: it.home, ph: it.ph, attempt: it.attempt + 1, recomp: it.recompute})
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvTaskRetry, Job: it.key.job, Stage: it.key.stage,
			Node: it.node, Attempt: it.attempt, Delay: backoff})
	}
	if e.opt.Watchdog != nil {
		e.applyDelayUpdates(e.opt.Watchdog.TaskRetried(it.key.job, it.key.stage, it.node, it.attempt, e.now))
	}
}

// retryTask re-creates a failed partition-phase attempt. The work starts
// over from zero — partial progress died with the executor.
func (e *engine) retryTask(t timer) {
	if e.failed[t.job] {
		return
	}
	st := e.states[t.key]
	var vol float64
	switch t.ph {
	case phRead, phCompute:
		vol = st.profile.perNodeIn
		if t.ph == phCompute {
			vol = e.computeVol(st)
		}
	case phWrite:
		vol = st.profile.perNodeOut
	}
	if vol <= eps {
		vol = eps * 2 // degenerate volume: completes on the next event
	}
	it := e.newItem()
	// Re-place from the partition's home: if the machine that killed the
	// previous attempts got blacklisted meanwhile, the retry lands on a
	// healthy node instead of dying in the same place again.
	*it = item{key: t.key, st: st, home: t.home, node: e.placeNode(t.home), ph: t.ph,
		remaining: vol, volume: vol, attempt: t.attempt, recompute: t.recomp}
	if t.ph == phRead && st.prefetched && st.parentsLeft > 0 && !t.recomp {
		it.capped = true
	}
	if t.ph == phCompute {
		e.armCompute(it)
	}
	e.addItem(it)
}

// crashNode loses one node: every in-flight task on it dies (re-queued via
// the retry path), and the shuffle outputs it stored for completed stages
// that still have incomplete consumers are recomputed lineage-style.
func (e *engine) crashNode(w int) {
	if w < 0 || w >= e.nNodes {
		return
	}
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvNodeCrash, Job: -1, Stage: -1, Node: w})
	}
	kept := e.items[:0]
	var killed []*item
	for _, it := range e.items {
		if it.node == w && !e.failed[it.key.job] {
			killed = append(killed, it)
		} else {
			kept = append(kept, it)
		}
	}
	e.items = kept
	for _, it := range killed {
		e.bucketRemove(it)
	}
	e.noteFault(w)
	sort.Slice(killed, func(i, j int) bool { return itemOrder(killed[i], killed[j]) })
	for _, it := range killed {
		if r := it.rival; r != nil {
			// The speculation twin survived the crash on another machine
			// and keeps running; nothing to re-queue. (Twins never share
			// a node, so both dying in one crash is impossible.)
			it.rival, r.rival = nil, nil
			continue
		}
		e.taskFailed(it)
	}
	for _, it := range killed {
		e.freeItem(it)
	}
	// Lineage recomputation: completed stages whose output is still needed.
	var lost []*stageState
	for _, st := range e.states {
		if !st.complete || e.failed[st.key.job] || e.stagesLeft[st.key.job] == 0 {
			continue
		}
		for _, ck := range st.children {
			if !e.states[ck].complete {
				lost = append(lost, st)
				break
			}
		}
	}
	sort.Slice(lost, func(i, j int) bool {
		a, b := lost[i].key, lost[j].key
		if a.job != b.job {
			return a.job < b.job
		}
		return a.stage < b.stage
	})
	for _, st := range lost {
		e.scheduleRecompute(st, w)
	}
	if cw, ok := e.opt.Watchdog.(CrashWatcher); ok {
		e.applyDelayUpdates(cw.NodeCrashed(w, e.now))
	}
}

// scheduleRecompute re-runs the producing partition of (stage, node):
// its read→compute→write chain is replayed on that node, and child stages
// that have not finished computing hold off new compute starts until the
// output is restored (the fluid analogue of Spark's FetchFailed →
// parent-resubmit path).
func (e *engine) scheduleRecompute(st *stageState, w int) {
	rk := recompKey{st.key, w}
	if _, active := e.recomps[rk]; active {
		return
	}
	rs := &recompState{}
	for _, ck := range st.children {
		cst := e.states[ck]
		if cst.complete || cst.computeLeft == 0 {
			continue // already past consuming this output
		}
		cst.recomputeHolds++
		rs.held = append(rs.held, ck)
	}
	e.recomps[rk] = rs
	e.recompPhase(st, w, phRead, 1)
}

// recompPhase creates the next item of a recomputation chain, skipping
// zero-volume phases.
func (e *engine) recompPhase(st *stageState, w int, ph phase, attempt int) {
	for {
		var vol float64
		switch ph {
		case phRead:
			vol = st.profile.perNodeIn
		case phCompute:
			vol = e.computeVol(st)
		case phWrite:
			vol = st.profile.perNodeOut
		}
		if vol > eps {
			it := e.newItem()
			*it = item{key: st.key, st: st, home: w, node: e.placeNode(w), ph: ph,
				remaining: vol, volume: vol, attempt: attempt, recompute: true}
			if ph == phCompute {
				e.armCompute(it)
			}
			e.addItem(it)
			return
		}
		if ph == phWrite {
			e.releaseRecompute(st.key, w)
			return
		}
		ph++
	}
}

// finishRecompute advances a recomputation chain when one of its items
// completes.
func (e *engine) finishRecompute(it *item) {
	st := it.st
	if it.ph == phWrite {
		e.releaseRecompute(it.key, it.home)
		return
	}
	e.recompPhase(st, it.home, it.ph+1, 1)
}

// releaseRecompute ends a recomputation: held children may compute again.
func (e *engine) releaseRecompute(k skey, w int) {
	rk := recompKey{k, w}
	rs := e.recomps[rk]
	if rs == nil {
		return
	}
	delete(e.recomps, rk)
	for _, ck := range rs.held {
		cst := e.states[ck]
		cst.recomputeHolds--
		if cst.recomputeHolds == 0 && cst.parentsLeft == 0 {
			for _, node := range cst.pendingCompute {
				e.startCompute(cst, node)
			}
			cst.pendingCompute = nil
		}
	}
}

// failJob aborts one job: its items vanish, its error is recorded, and
// its end time freezes at the abort instant. Other jobs keep running.
func (e *engine) failJob(job int, err error) {
	if e.failed[job] {
		return
	}
	e.failed[job] = true
	e.res.JobErrors[job] = err
	e.res.JobEnd[job] = e.now
	if o := e.opt.Observer; o != nil {
		o.OnEvent(Event{T: e.now, Kind: EvJobFailed, Job: job, Stage: -1, Node: -1, Detail: err.Error()})
	}
	if e.stagesLeft[job] > 0 {
		e.stagesLeft[job] = 0
		e.jobsLeft--
	}
	kept := e.items[:0]
	for _, it := range e.items {
		if it.key.job != job {
			kept = append(kept, it)
		} else {
			e.bucketRemove(it)
		}
	}
	e.items = kept
	for rk := range e.recomps {
		if rk.key.job == job {
			delete(e.recomps, rk)
		}
	}
}

// applyDelayUpdates applies a watchdog's revisions: an unsubmitted stage's
// delay-after-ready becomes the given value (already-submitted stages and
// failed jobs ignore revisions; past-due times submit immediately).
func (e *engine) applyDelayUpdates(us []DelayUpdate) {
	for _, u := range us {
		st := e.states[skey{u.Job, u.Stage}]
		if st == nil || st.submitted || e.failed[u.Job] {
			continue
		}
		d := u.Delay
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			d = 0
		}
		dd := d
		st.delayOverride = &dd
		if o := e.opt.Observer; o != nil {
			o.OnEvent(Event{T: e.now, Kind: EvDelayRevised, Job: u.Job, Stage: u.Stage, Node: -1, Delay: dd})
		}
		if st.readyValid {
			at := st.tl.Ready + dd
			if at < e.now {
				at = e.now
			}
			st.submitAt = at
			e.pushTimer(at, tSubmitStage, st.key, u.Job)
		}
	}
}
