package sim

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"delaystage/internal/ckpt"
	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/faults"
)

// chaosInjector returns a fault plan exercising every machine-level
// mechanism at once: hash-based crashes, a scheduled crash, slow nodes
// and task failures (which, with Speculation/BlacklistAfter on, drive
// the speculation and blacklisting paths too).
func chaosInjector(t *testing.T) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(faults.FaultPlan{
		Seed: 7, TaskFailureProb: 0.05, StragglerFrac: 0.25, StragglerFactor: 3,
		SlowNodeFrac: 0.2, SlowNodeFactor: 2.5,
		NodeMTTF: 4000, MTTFHorizon: 600,
		Crashes: []faults.NodeCrash{{Node: 2, At: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func chaosOptions(c *cluster.Cluster, inj *faults.Injector) Options {
	return Options{
		Cluster: c, TrackNode: -1, Faults: inj,
		MaxAttempts: 8, Speculation: true, BlacklistAfter: 3,
	}
}

// TestSnapshotFileRoundTrip is the on-disk half of the checkpoint
// property: a snapshot written to disk, read back in a fresh engine, and
// resumed must reproduce the uninterrupted run bit for bit — including
// under the full chaos regime (crashes, stragglers, speculation,
// blacklisting).
func TestSnapshotFileRoundTrip(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	rng := rand.New(rand.NewSource(17))
	dir := t.TempDir()
	variants := []struct {
		name string
		opt  Options
	}{
		{"plain", Options{Cluster: c, TrackNode: -1}},
		{"tracked", Options{Cluster: c, TrackNode: 0, TrackOccupancy: true, TrackCluster: true}},
		{"chaos", chaosOptions(c, chaosInjector(t))},
	}
	for _, job := range galleryJobs(c, 0.3) {
		for _, v := range variants {
			runs := []JobRun{{Job: job, Delays: randomDelays(job, rng)}}
			ref, err := Run(v.opt, runs)
			if err != nil {
				t.Fatalf("%s/%s: %v", job.Name, v.name, err)
			}
			end := ref.JobEnd[0]
			for _, at := range []float64{0, end * 0.3, end * 0.7, end * 0.95} {
				snap, err := SnapshotAt(v.opt, runs, at)
				if err != nil {
					t.Fatalf("%s/%s at %v: %v", job.Name, v.name, at, err)
				}
				path := filepath.Join(dir, "snap.ckpt")
				if err := snap.WriteFile(path); err != nil {
					t.Fatalf("%s/%s at %v: write: %v", job.Name, v.name, at, err)
				}
				loaded, err := ReadSnapshotFile(path, v.opt, runs)
				if err != nil {
					t.Fatalf("%s/%s at %v: read: %v", job.Name, v.name, at, err)
				}
				if loaded.At != snap.At {
					t.Fatalf("%s/%s: At %v round-tripped to %v", job.Name, v.name, snap.At, loaded.At)
				}
				got, err := loaded.Resume(nil)
				if err != nil {
					t.Fatalf("%s/%s at %v: resume: %v", job.Name, v.name, at, err)
				}
				requireIdentical(t, job.Name+"/"+v.name, ref, got)
			}
		}
	}
}

// TestSnapshotFileMultiJob covers the serialized form of a multi-job
// engine, checkpointed between arrivals.
func TestSnapshotFileMultiJob(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	jobs := galleryJobs(c, 0.2)
	opt := Options{Cluster: c, TrackNode: -1, FairByJob: true}
	runs := []JobRun{
		{Job: jobs[0], Arrival: 0},
		{Job: jobs[1], Arrival: 30},
		{Job: jobs[2], Arrival: 60, Delays: map[dag.StageID]float64{jobs[2].Graph.Stages()[1]: 12}},
	}
	ref, err := Run(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "multi.ckpt")
	for _, at := range []float64{0, 31, 59, ref.Makespan * 0.8} {
		snap, err := SnapshotAt(opt, runs, at)
		if err != nil {
			t.Fatal(err)
		}
		if err := snap.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadSnapshotFile(path, opt, runs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Resume(nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "multi-job file", ref, got)
	}
}

// TestConfigFingerprint pins what the fingerprint is sensitive to: any
// configuration change that alters the trajectory must change it, and
// recomputing it for the same configuration must not.
func TestConfigFingerprint(t *testing.T) {
	c := cluster.NewM4LargeCluster(4)
	job := galleryJobs(c, 0.3)[0]
	opt := Options{Cluster: c, TrackNode: -1}
	runs := []JobRun{{Job: job, Delays: map[dag.StageID]float64{job.Graph.Stages()[1]: 5}}}
	base, err := ConfigFingerprint(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ConfigFingerprint(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	if base != again {
		t.Fatalf("fingerprint unstable: %x vs %x", base, again)
	}

	inj := chaosInjector(t)
	mutations := []struct {
		name string
		opt  Options
		runs []JobRun
	}{
		{"delay changed", opt, []JobRun{{Job: job, Delays: map[dag.StageID]float64{job.Graph.Stages()[1]: 6}}}},
		{"delay dropped", opt, []JobRun{{Job: job}}},
		{"arrival changed", opt, []JobRun{{Job: job, Arrival: 1, Delays: runs[0].Delays}}},
		{"cluster grown", Options{Cluster: cluster.NewM4LargeCluster(5), TrackNode: -1}, runs},
		{"faults added", Options{Cluster: c, TrackNode: -1, Faults: inj}, runs},
		{"speculation on", Options{Cluster: c, TrackNode: -1, Speculation: true}, runs},
		{"blacklist on", Options{Cluster: c, TrackNode: -1, BlacklistAfter: 2}, runs},
		{"aggshuffle on", Options{Cluster: c, TrackNode: -1, AggShuffle: true}, runs},
		{"job added", opt, []JobRun{runs[0], {Job: galleryJobs(c, 0.3)[1], Arrival: 10}}},
	}
	for _, m := range mutations {
		fp, err := ConfigFingerprint(m.opt, m.runs)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if fp == base {
			t.Errorf("%s: fingerprint did not change", m.name)
		}
	}
}

// TestReadSnapshotFileRejects pins the refusal cases: a checkpoint from a
// different configuration, a corrupted file, and a missing file must all
// be distinguishable and never half-resume.
func TestReadSnapshotFileRejects(t *testing.T) {
	c := cluster.NewM4LargeCluster(4)
	job := galleryJobs(c, 0.3)[0]
	opt := Options{Cluster: c, TrackNode: -1}
	runs := []JobRun{{Job: job}}
	snap, err := SnapshotAt(opt, runs, 10)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	// Different configuration: same file, revised delays.
	other := []JobRun{{Job: job, Delays: map[dag.StageID]float64{job.Graph.Stages()[0]: 3}}}
	if _, err := ReadSnapshotFile(path, opt, other); !ckpt.IsFormat(err) {
		t.Errorf("different config: err = %v, want FormatError", err)
	}
	// Observer / Watchdog are rejected before touching the file.
	if _, err := ReadSnapshotFile(path, Options{Cluster: c, TrackNode: -1, Observer: nopObserver{}}, runs); err == nil {
		t.Error("observer accepted on resume")
	}
	// Corruption: flip one payload byte (CRC catches it).
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-12] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path, opt, runs); !ckpt.IsFormat(err) {
		t.Errorf("corrupt file: err = %v, want FormatError", err)
	}
	// Missing file: the raw os error, so callers can start fresh.
	if _, err := ReadSnapshotFile(filepath.Join(dir, "none.ckpt"), opt, runs); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want not-exist", err)
	}
}

// TestRunCheckpointedMatchesRun: periodically halting to write checkpoints
// must not perturb the trajectory — the final result equals a plain Run
// bit for bit, and the last checkpoint is left on disk.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	rng := rand.New(rand.NewSource(29))
	for _, job := range galleryJobs(c, 0.25) {
		opt := chaosOptions(c, chaosInjector(t))
		runs := []JobRun{{Job: job, Delays: randomDelays(job, rng)}}
		ref, err := Run(opt, runs)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "run.ckpt")
		got, err := RunCheckpointed(opt, runs, path, ref.Makespan/7)
		if err != nil {
			t.Fatalf("%s: %v", job.Name, err)
		}
		requireIdentical(t, job.Name+"/checkpointed", ref, got)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("%s: no checkpoint left on disk: %v", job.Name, err)
		}
	}
}

// TestResumeCheckpointedBitIdentical emulates the SIGKILL story: the
// process dies right after writing its k-th checkpoint, leaving only the
// file; a fresh process resumes from it with the same configuration and
// cadence and must finish with the exact result of the uninterrupted run.
func TestResumeCheckpointedBitIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	rng := rand.New(rand.NewSource(31))
	for _, job := range galleryJobs(c, 0.25) {
		opt := chaosOptions(c, chaosInjector(t))
		runs := []JobRun{{Job: job, Delays: randomDelays(job, rng)}}
		ref, err := Run(opt, runs)
		if err != nil {
			t.Fatal(err)
		}
		every := ref.Makespan / 5
		for k := 1; k <= 4; k++ {
			// The state RunCheckpointed leaves on disk after its k-th
			// checkpoint is exactly SnapshotAt(k·every): both halt the same
			// engine at the same boundary.
			snap, err := SnapshotAt(opt, runs, float64(k)*every)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "run.ckpt")
			if err := snap.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			got, err := ResumeCheckpointed(opt, runs, path, every)
			if err != nil {
				t.Fatalf("%s k=%d: %v", job.Name, k, err)
			}
			requireIdentical(t, job.Name+"/resumed", ref, got)
		}
	}
}

// TestRunCheckpointedKillResume drives the full cycle through the real
// checkpoint files: run with a cadence, grab an intermediate checkpoint
// the moment it lands (as a killed process would leave it), then resume
// from that copy and compare against the uninterrupted result.
func TestRunCheckpointedKillResume(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	opt := chaosOptions(c, chaosInjector(t))
	job := galleryJobs(c, 0.3)[2]
	runs := []JobRun{{Job: job}}
	ref, err := Run(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	live := filepath.Join(dir, "live.ckpt")
	every := ref.Makespan / 6
	full, err := RunCheckpointed(opt, runs, live, every)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "full checkpointed run", ref, full)
	// The surviving file is the final checkpoint; resuming it replays the
	// tail and lands on the same result again.
	got, err := ResumeCheckpointed(opt, runs, live, every)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "resume from final checkpoint", ref, got)
}

// TestCheckpointedRejects pins the API refusals.
func TestCheckpointedRejects(t *testing.T) {
	c := cluster.NewM4LargeCluster(3)
	job := galleryJobs(c, 0.2)[0]
	runs := []JobRun{{Job: job}}
	path := filepath.Join(t.TempDir(), "x.ckpt")
	if _, err := RunCheckpointed(Options{Cluster: c, TrackNode: -1, Observer: nopObserver{}}, runs, path, 10); err == nil {
		t.Error("observer accepted")
	}
	if _, err := RunCheckpointed(Options{Cluster: c, TrackNode: -1}, runs, path, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := RunCheckpointed(Options{Cluster: c, TrackNode: -1}, runs, path, -5); err == nil {
		t.Error("negative interval accepted")
	}
	if _, err := ResumeCheckpointed(Options{Cluster: c, TrackNode: -1}, runs, path, 10); !os.IsNotExist(err) {
		t.Errorf("missing checkpoint: err = %v, want not-exist", err)
	}
}

// TestRunCheckpointedCtxCancel pins the cooperative-cancellation contract:
// a cancelled run stops at a checkpoint boundary *after* flushing the
// file, reports context.Canceled, and resuming from the flushed file
// finishes bit-identical to the uninterrupted run — the signal-handling
// story of cmd/simulate.
func TestRunCheckpointedCtxCancel(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	opt := chaosOptions(c, chaosInjector(t))
	job := galleryJobs(c, 0.3)[1]
	runs := []JobRun{{Job: job}}
	ref, err := Run(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cancel.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run: the first boundary must stop it
	_, err = RunCheckpointedCtx(ctx, opt, runs, path, ref.Makespan/6)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("interrupted run left no checkpoint: %v", err)
	}
	got, err := ResumeCheckpointed(opt, runs, path, ref.Makespan/6)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "resume after cancellation", ref, got)
}
