package sim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"delaystage/internal/ckpt"
	"delaystage/internal/dag"
)

// Crash-safe persistence: a Snapshot — normally an in-memory fork point —
// can be serialized to disk and resumed in a different process, and
// RunCheckpointed drives a run that checkpoints itself on a simulated-time
// cadence so a SIGKILLed process resumes from the last checkpoint and
// finishes with a bit-identical result. Everything rides on the same
// guarantee SnapshotAt already provides (halts happen only at idempotent
// event boundaries); this file adds a byte encoding of the frozen engine.
//
// The encoding is exact: every float is stored as its IEEE-754 bit
// pattern, every slice records whether it was nil or empty, and maps are
// written in sorted key order. A resumed engine is field-for-field the
// engine that was written, so the continued trajectory — including every
// floating-point accumulation — matches the uninterrupted run.
//
// Identity is enforced in three layers by the ckpt envelope: a kind
// string ("sim-snapshot"), an encoding version, and a fingerprint of the
// full run configuration (cluster, options, fault plan, jobs, delays,
// arrivals). Resuming under any other configuration is rejected — a
// checkpoint is only valid against the exact run that produced it.

const (
	snapshotKind    = "sim-snapshot"
	snapshotVersion = 1
)

// ConfigFingerprint hashes everything that determines a run's trajectory:
// cluster capacities, simulation options (after defaulting), the fault
// plan, and each job's graph, profiles, delays and arrival. Two
// configurations with equal fingerprints produce bit-identical runs.
func ConfigFingerprint(opt Options, runs []JobRun) (uint64, error) {
	opt, err := prepare(opt, runs)
	if err != nil {
		return 0, err
	}
	return fingerprintPrepared(opt, runs), nil
}

// fingerprintPrepared hashes already-prepared options (Run, SnapshotAt and
// RunCheckpointed all normalize through prepare, so engines hash the same
// configuration the caller validated).
func fingerprintPrepared(opt Options, runs []JobRun) uint64 {
	var w wbuf
	for _, n := range opt.Cluster.Nodes {
		w.int(n.ID)
		w.int(n.Executors)
		w.f64(n.NetBW)
		w.f64(n.DiskBW)
	}
	w.bool(opt.AggShuffle)
	w.f64(opt.AggShuffleOverhead)
	w.f64(opt.ContentionOverhead)
	w.bool(opt.FairByJob)
	w.int(opt.TrackNode)
	w.bool(opt.TrackOccupancy)
	w.bool(opt.TrackCluster)
	w.f64(opt.MaxTime)
	w.int(opt.MaxAttempts)
	w.f64(opt.RetryBackoff)
	w.bool(opt.Speculation)
	w.f64(opt.SpeculationThreshold)
	w.int(opt.BlacklistAfter)
	w.bool(opt.Faults != nil)
	if opt.Faults != nil {
		p := opt.Faults.Plan()
		w.i64(p.Seed)
		w.f64(p.TaskFailureProb)
		w.f64(p.StragglerFrac)
		w.f64(p.StragglerFactor)
		w.f64(p.MispredictNoise)
		w.int(len(p.Crashes))
		for _, c := range p.Crashes {
			w.int(c.Node)
			w.f64(c.At)
		}
		w.f64(p.SlowNodeFrac)
		w.f64(p.SlowNodeFactor)
		w.f64(p.NodeMTTF)
		w.f64(p.MTTFHorizon)
		w.int(p.RackSize)
		w.int(len(p.RackCrashes))
		for _, rc := range p.RackCrashes {
			w.int(rc.Rack)
			w.f64(rc.At)
		}
	}
	w.int(len(runs))
	for _, r := range runs {
		w.f64(r.Arrival)
		w.str(r.Job.Name)
		ids := r.Job.Graph.StagesView()
		w.int(len(ids))
		for _, id := range ids {
			w.i64(int64(id))
			parents := r.Job.Graph.Stage(id).Parents
			w.int(len(parents))
			for _, p := range parents {
				w.i64(int64(p))
			}
			p := r.Job.Profiles[id]
			w.i64(p.ShuffleIn)
			w.i64(p.ShuffleOut)
			w.f64(p.ProcRate)
			w.f64(p.Skew)
			w.int(p.Tasks)
		}
		dids := make([]dag.StageID, 0, len(r.Delays))
		for id := range r.Delays {
			dids = append(dids, id)
		}
		sort.Slice(dids, func(i, j int) bool { return dids[i] < dids[j] })
		w.int(len(dids))
		for _, id := range dids {
			w.i64(int64(id))
			w.f64(r.Delays[id])
		}
	}
	h := fnv.New64a()
	h.Write(w.b)
	return h.Sum64()
}

// WriteFile serializes the snapshot to path (atomically: temp file plus
// rename), framed in a ckpt envelope carrying the configuration
// fingerprint. The snapshot stays usable afterwards.
func (s *Snapshot) WriteFile(path string) error {
	return ckpt.WriteFile(path, ckpt.Envelope{
		Kind:        snapshotKind,
		Version:     snapshotVersion,
		Fingerprint: fingerprintPrepared(s.eng.opt, s.eng.runs),
		Payload:     encodeEngine(s.eng, s.At),
	})
}

// ReadSnapshotFile loads a snapshot written by WriteFile. opt and runs
// must describe the same configuration the snapshot was taken under —
// they rebuild the immutable wiring (graphs, capacities, fault draws) the
// encoding deliberately omits — and are verified against the stored
// fingerprint; any mismatch, corruption or truncation is a *ckpt.FormatError.
func ReadSnapshotFile(path string, opt Options, runs []JobRun) (*Snapshot, error) {
	if opt.Observer != nil || opt.Watchdog != nil {
		return nil, fmt.Errorf("sim: snapshots do not support Observer or Watchdog")
	}
	opt, err := prepare(opt, runs)
	if err != nil {
		return nil, err
	}
	env, err := ckpt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := env.Expect(snapshotKind, snapshotVersion, fingerprintPrepared(opt, runs)); err != nil {
		if fe, ok := err.(*ckpt.FormatError); ok {
			fe.Path = path
		}
		return nil, err
	}
	e, at, err := decodeEngine(env.Payload, opt, runs)
	if err != nil {
		if fe, ok := err.(*ckpt.FormatError); ok {
			fe.Path = path
		}
		return nil, err
	}
	return &Snapshot{eng: e, At: at}, nil
}

// RunCheckpointed simulates runs exactly like Run, but halts every
// `every` simulated seconds and atomically rewrites path with a snapshot
// of the engine. The checkpoint cadence is part of the trajectory
// contract: ResumeCheckpointed with the same cadence continues the halts
// at the same boundaries, so an interrupted-and-resumed run finishes bit-
// identical to an uninterrupted one (and to a plain Run — halting at an
// event boundary perturbs nothing). Observer and Watchdog are rejected:
// their external state cannot be serialized.
func RunCheckpointed(opt Options, runs []JobRun, path string, every float64) (*Result, error) {
	return RunCheckpointedCtx(context.Background(), opt, runs, path, every)
}

// RunCheckpointedCtx is RunCheckpointed with cooperative cancellation: the
// context is checked at every checkpoint boundary, *after* the snapshot
// has been written, so an interrupted run always leaves a fresh checkpoint
// on disk and ResumeCheckpointed(Ctx) continues bit-identically. A
// cancelled run returns ctx.Err() (possibly wrapped); callers distinguish
// it with errors.Is(err, context.Canceled).
func RunCheckpointedCtx(ctx context.Context, opt Options, runs []JobRun, path string, every float64) (*Result, error) {
	if opt.Observer != nil || opt.Watchdog != nil {
		return nil, fmt.Errorf("sim: checkpointed runs do not support Observer or Watchdog")
	}
	if every <= 0 || math.IsNaN(every) || math.IsInf(every, 0) {
		return nil, fmt.Errorf("sim: invalid checkpoint interval %v", every)
	}
	opt, err := prepare(opt, runs)
	if err != nil {
		return nil, err
	}
	e := newEngine(opt, runs)
	e.haltSet = true
	e.haltAt = every
	e.setup()
	return checkpointLoop(ctx, e, path, every, every)
}

// ResumeCheckpointed continues a RunCheckpointed run from its checkpoint
// file, under the same configuration and cadence, checkpointing onward to
// the same path. A missing file surfaces as the os error (callers that
// want resume-or-start semantics check os.IsNotExist); a corrupt or
// mismatched file is a *ckpt.FormatError.
func ResumeCheckpointed(opt Options, runs []JobRun, path string, every float64) (*Result, error) {
	return ResumeCheckpointedCtx(context.Background(), opt, runs, path, every)
}

// ResumeCheckpointedCtx is ResumeCheckpointed with the same cooperative
// cancellation contract as RunCheckpointedCtx.
func ResumeCheckpointedCtx(ctx context.Context, opt Options, runs []JobRun, path string, every float64) (*Result, error) {
	if every <= 0 || math.IsNaN(every) || math.IsInf(every, 0) {
		return nil, fmt.Errorf("sim: invalid checkpoint interval %v", every)
	}
	snap, err := ReadSnapshotFile(path, opt, runs)
	if err != nil {
		return nil, err
	}
	e := snap.eng // decoded fresh for this call; no clone needed
	stop := snap.At + every
	e.haltSet, e.haltAt, e.halted = true, stop, false
	return checkpointLoop(ctx, e, path, every, stop)
}

// checkpointLoop alternates loop() with snapshot writes until the run
// completes. stop is the first halt time; the engine is already armed.
// Cancellation is honored only at checkpoint boundaries, after the write:
// the run on disk is always resumable from the moment it was interrupted.
func checkpointLoop(ctx context.Context, e *engine, path string, every, stop float64) (*Result, error) {
	for {
		if err := e.loop(); err != nil {
			return nil, err
		}
		if !e.halted {
			break
		}
		if err := (&Snapshot{eng: e, At: stop}).WriteFile(path); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: checkpointed run interrupted at t=%v (checkpoint flushed): %w", stop, err)
		}
		stop += every
		e.haltAt = stop
		e.halted = false
	}
	e.finalize()
	return e.res, nil
}

// ---- engine encoding ----------------------------------------------------

// encodeEngine serializes every mutable engine field. Immutable inputs —
// capacities, graphs, profiles, availability wiring, fault draws (all
// hash-based), node slowdowns — are reconstructed from the configuration
// on decode and are covered by the fingerprint instead.
func encodeEngine(e *engine, at float64) []byte {
	var w wbuf
	w.f64(at)
	w.int(e.seq)
	w.f64(e.now)
	w.bool(e.haltSet)
	w.f64(e.haltAt)
	w.bool(e.halted)
	w.f64(e.lastTrack)
	w.f64(e.cpuBusyInt)
	w.f64(e.netBytesInt)
	w.f64(e.diskBytesInt)
	w.int(e.jobsLeft)
	w.ints(e.stagesLeft)
	w.bools(e.failed)
	w.ints(e.faultCount)
	w.bools(e.blacklisted)
	w.int(e.nBlacklisted)

	// Stage states, in stateList order; keys are written for verification
	// against the freshly wired engine on decode.
	w.int(len(e.stateList))
	for _, st := range e.stateList {
		w.key(st.key)
		w.int(st.parentsLeft)
		w.int(st.readsLeft)
		w.int(st.computeLeft)
		w.int(st.writesLeft)
		w.ints(st.pendingCompute)
		w.bool(st.submitted)
		w.bool(st.prefetched)
		w.f64(st.computeDone)
		w.f64(st.computeTot)
		w.timeline(st.tl)
		w.bool(st.readyValid)
		w.bool(st.complete)
		w.int(st.retries)
		w.f64s(st.compDurs)
		w.bool(st.specDone != nil)
		if st.specDone != nil {
			homes := make([]int, 0, len(st.specDone))
			for h := range st.specDone {
				homes = append(homes, h)
			}
			sort.Ints(homes)
			w.int(len(homes))
			for _, h := range homes {
				w.int(h)
			}
		}
		w.int(st.recomputeHolds)
		w.f64(st.submitAt)
		w.bool(st.delayOverride != nil)
		if st.delayOverride != nil {
			w.f64(*st.delayOverride)
		}
	}

	// Live items in e.items order; rivals as indices (-1 = none).
	idx := make(map[*item]int, len(e.items))
	for i, it := range e.items {
		idx[it] = i
	}
	w.int(len(e.items))
	for _, it := range e.items {
		w.key(it.key)
		w.int(it.home)
		w.int(it.node)
		w.int(int(it.ph))
		w.f64(it.remaining)
		w.f64(it.rate)
		w.bool(it.capped)
		w.f64(it.done)
		w.f64(it.volume)
		w.f64(it.capRate)
		w.f64(it.execUsed)
		w.int(it.attempt)
		w.f64(it.failAt)
		w.f64(it.slow)
		w.bool(it.recompute)
		w.bool(it.spec)
		if it.rival != nil {
			w.int(idx[it.rival])
		} else {
			w.int(-1)
		}
		w.bool(it.cancelled)
		w.f64(it.startAt)
	}

	// Per-node phase buckets as e.items index lists (their subsequence
	// order fixes the floating-point accumulation order), plus dirty flags.
	for wk := 0; wk < e.nNodes; wk++ {
		for _, bk := range [][]*item{e.computeBk[wk], e.readBk[wk], e.writeBk[wk]} {
			w.int(len(bk))
			for _, it := range bk {
				w.int(idx[it])
			}
		}
	}
	w.bools(e.dirtyC)
	w.bools(e.dirtyR)
	w.bools(e.dirtyW)

	// Timer heap in array order (the heap invariant survives verbatim).
	w.int(len(e.timers))
	for _, t := range e.timers {
		w.f64(t.at)
		w.int(t.seq)
		w.int(int(t.kind))
		w.key(t.key)
		w.int(t.job)
		w.int(t.node)
		w.int(t.home)
		w.int(int(t.ph))
		w.int(t.attempt)
		w.bool(t.recomp)
	}

	// Result in progress.
	r := e.res
	w.int(len(r.Timelines))
	for _, tl := range r.Timelines {
		w.timeline(tl)
	}
	w.f64s(r.JobEnd)
	w.f64s(r.JobStart)
	w.f64(r.Makespan)
	w.series(r.Node.CPUBusy)
	w.series(r.Node.NetRate)
	w.series(r.Node.DiskRate)
	w.series(r.Cluster.CPUBusy)
	w.series(r.Cluster.NetRate)
	w.series(r.Cluster.DiskRate)
	w.int(len(r.Occupancy))
	for _, seg := range r.Occupancy {
		w.segment(seg)
	}
	w.f64(r.AvgCPUUtil)
	w.f64(r.AvgNetUtil)
	w.f64(r.AvgDiskUtil)
	w.f64(r.AvgNetRate)
	w.int(r.Events)
	w.int(r.Retries)
	w.int(r.SpecLaunched)
	w.int(r.SpecWins)
	w.int(r.Blacklisted)
	for _, err := range r.JobErrors {
		if err == nil {
			w.bool(false)
			continue
		}
		w.bool(true)
		sf, ok := err.(*StageFailureError)
		if !ok {
			// failJob only ever produces *StageFailureError; anything else
			// would be a new failure type this encoder must learn about.
			panic(fmt.Sprintf("sim: cannot serialize job error %T", err))
		}
		w.int(sf.Job)
		w.i64(int64(sf.Stage))
		w.int(sf.Node)
		w.int(sf.Attempts)
	}

	// Open occupancy segments, sorted by key.
	oks := make([]skey, 0, len(e.occOpen))
	for k := range e.occOpen {
		oks = append(oks, k)
	}
	sortSkeys(oks)
	w.int(len(oks))
	for _, k := range oks {
		w.key(k)
		w.segment(*e.occOpen[k])
	}

	// In-flight lineage recomputations, sorted by (key, node).
	rks := make([]recompKey, 0, len(e.recomps))
	for k := range e.recomps {
		rks = append(rks, k)
	}
	sort.Slice(rks, func(i, j int) bool {
		a, b := rks[i], rks[j]
		if a.key != b.key {
			return a.key.job < b.key.job || (a.key.job == b.key.job && a.key.stage < b.key.stage)
		}
		return a.node < b.node
	})
	w.int(len(rks))
	for _, k := range rks {
		w.key(k.key)
		w.int(k.node)
		held := e.recomps[k].held
		w.int(len(held))
		for _, h := range held {
			w.key(h)
		}
	}
	return w.b
}

// decodeEngine rebuilds an engine from an encoded payload: it constructs
// a fresh engine (newEngine + setup, which re-derives all immutable
// wiring), then overwrites every mutable field with the serialized state.
// opt must already be prepared.
func decodeEngine(payload []byte, opt Options, runs []JobRun) (*engine, float64, error) {
	e := newEngine(opt, runs)
	e.setup()
	// setup() armed the t=0 world (arrival and crash timers); the
	// serialized state replaces all of it.
	e.timers = e.timers[:0]

	r := &rbuf{b: payload}
	at := r.f64()
	e.seq = r.int()
	e.now = r.f64()
	e.haltSet = r.bool()
	e.haltAt = r.f64()
	e.halted = r.bool()
	e.lastTrack = r.f64()
	e.cpuBusyInt = r.f64()
	e.netBytesInt = r.f64()
	e.diskBytesInt = r.f64()
	e.jobsLeft = r.int()
	e.stagesLeft = r.ints()
	e.failed = r.bools()
	e.faultCount = r.ints()
	e.blacklisted = r.bools()
	e.nBlacklisted = r.int()
	if r.err == nil && (len(e.stagesLeft) != len(runs) || len(e.failed) != len(runs)) {
		return nil, 0, &ckpt.FormatError{Reason: "job count mismatch"}
	}

	nStates := r.int()
	if r.err == nil && nStates != len(e.stateList) {
		return nil, 0, &ckpt.FormatError{Reason: fmt.Sprintf("stage count %d, want %d", nStates, len(e.stateList))}
	}
	for i := 0; i < nStates && r.err == nil; i++ {
		st := e.stateList[i]
		if k := r.key(); k != st.key {
			return nil, 0, &ckpt.FormatError{Reason: fmt.Sprintf("stage key %v, want %v", k, st.key)}
		}
		st.parentsLeft = r.int()
		st.readsLeft = r.int()
		st.computeLeft = r.int()
		st.writesLeft = r.int()
		st.pendingCompute = r.ints()
		st.submitted = r.bool()
		st.prefetched = r.bool()
		st.computeDone = r.f64()
		st.computeTot = r.f64()
		st.tl = r.timeline()
		st.readyValid = r.bool()
		st.complete = r.bool()
		st.retries = r.int()
		st.compDurs = r.f64s()
		if r.bool() {
			n := r.int()
			st.specDone = make(map[int]bool, n)
			for j := 0; j < n && r.err == nil; j++ {
				st.specDone[r.int()] = true
			}
		}
		st.recomputeHolds = r.int()
		st.submitAt = r.f64()
		if r.bool() {
			d := r.f64()
			st.delayOverride = &d
		}
	}

	nItems := r.int()
	if r.err == nil && (nItems < 0 || nItems > maxDecodeLen) {
		return nil, 0, &ckpt.FormatError{Reason: "item count out of range"}
	}
	rivals := make([]int, 0, maxInt(nItems, 0))
	for i := 0; i < nItems && r.err == nil; i++ {
		it := &item{}
		it.key = r.key()
		it.st = e.states[it.key]
		if r.err == nil && it.st == nil {
			return nil, 0, &ckpt.FormatError{Reason: fmt.Sprintf("item for unknown stage %v", it.key)}
		}
		it.home = r.int()
		it.node = r.int()
		it.ph = phase(r.int())
		it.remaining = r.f64()
		it.rate = r.f64()
		it.capped = r.bool()
		it.done = r.f64()
		it.volume = r.f64()
		it.capRate = r.f64()
		it.execUsed = r.f64()
		it.attempt = r.int()
		it.failAt = r.f64()
		it.slow = r.f64()
		it.recompute = r.bool()
		it.spec = r.bool()
		rivals = append(rivals, r.int())
		it.cancelled = r.bool()
		it.startAt = r.f64()
		e.items = append(e.items, it)
	}
	for i, ri := range rivals {
		if ri < 0 {
			continue
		}
		if ri >= len(e.items) {
			return nil, 0, &ckpt.FormatError{Reason: "rival index out of range"}
		}
		e.items[i].rival = e.items[ri]
	}

	for wk := 0; wk < e.nNodes && r.err == nil; wk++ {
		for _, bk := range []*[][]*item{&e.computeBk, &e.readBk, &e.writeBk} {
			n := r.int()
			for j := 0; j < n && r.err == nil; j++ {
				ii := r.int()
				if ii < 0 || ii >= len(e.items) {
					return nil, 0, &ckpt.FormatError{Reason: "bucket index out of range"}
				}
				(*bk)[wk] = append((*bk)[wk], e.items[ii])
			}
		}
	}
	e.dirtyC = r.bools()
	e.dirtyR = r.bools()
	e.dirtyW = r.bools()
	if r.err == nil && (len(e.dirtyC) != e.nNodes || len(e.dirtyR) != e.nNodes || len(e.dirtyW) != e.nNodes) {
		return nil, 0, &ckpt.FormatError{Reason: "dirty flag length mismatch"}
	}

	nTimers := r.int()
	if r.err == nil && (nTimers < 0 || nTimers > maxDecodeLen) {
		return nil, 0, &ckpt.FormatError{Reason: "timer count out of range"}
	}
	for i := 0; i < nTimers && r.err == nil; i++ {
		var t timer
		t.at = r.f64()
		t.seq = r.int()
		t.kind = timerKind(r.int())
		t.key = r.key()
		t.job = r.int()
		t.node = r.int()
		t.home = r.int()
		t.ph = phase(r.int())
		t.attempt = r.int()
		t.recomp = r.bool()
		e.timers = append(e.timers, t)
	}

	res := e.res
	nTl := r.int()
	if r.err == nil && (nTl < 0 || nTl > maxDecodeLen) {
		return nil, 0, &ckpt.FormatError{Reason: "timeline count out of range"}
	}
	for i := 0; i < nTl && r.err == nil; i++ {
		res.Timelines = append(res.Timelines, r.timeline())
	}
	res.JobEnd = r.f64s()
	res.JobStart = r.f64s()
	res.Makespan = r.f64()
	res.Node.CPUBusy = r.series()
	res.Node.NetRate = r.series()
	res.Node.DiskRate = r.series()
	res.Cluster.CPUBusy = r.series()
	res.Cluster.NetRate = r.series()
	res.Cluster.DiskRate = r.series()
	nOcc := r.int()
	if r.err == nil && (nOcc < 0 || nOcc > maxDecodeLen) {
		return nil, 0, &ckpt.FormatError{Reason: "occupancy count out of range"}
	}
	for i := 0; i < nOcc && r.err == nil; i++ {
		res.Occupancy = append(res.Occupancy, r.segment())
	}
	res.AvgCPUUtil = r.f64()
	res.AvgNetUtil = r.f64()
	res.AvgDiskUtil = r.f64()
	res.AvgNetRate = r.f64()
	res.Events = r.int()
	res.Retries = r.int()
	res.SpecLaunched = r.int()
	res.SpecWins = r.int()
	res.Blacklisted = r.int()
	if r.err == nil && (len(res.JobEnd) != len(runs) || len(res.JobStart) != len(runs)) {
		return nil, 0, &ckpt.FormatError{Reason: "result job count mismatch"}
	}
	for i := 0; i < len(runs) && r.err == nil; i++ {
		if !r.bool() {
			continue
		}
		sf := &StageFailureError{}
		sf.Job = r.int()
		sf.Stage = dag.StageID(r.i64())
		sf.Node = r.int()
		sf.Attempts = r.int()
		res.JobErrors[i] = sf
	}

	nOpen := r.int()
	if r.err == nil && (nOpen < 0 || nOpen > maxDecodeLen) {
		return nil, 0, &ckpt.FormatError{Reason: "open-segment count out of range"}
	}
	for i := 0; i < nOpen && r.err == nil; i++ {
		k := r.key()
		seg := r.segment()
		e.occOpen[k] = &seg
	}
	nRec := r.int()
	if r.err == nil && (nRec < 0 || nRec > maxDecodeLen) {
		return nil, 0, &ckpt.FormatError{Reason: "recompute count out of range"}
	}
	for i := 0; i < nRec && r.err == nil; i++ {
		k := recompKey{key: r.key(), node: r.int()}
		nh := r.int()
		rs := &recompState{}
		for j := 0; j < nh && r.err == nil; j++ {
			rs.held = append(rs.held, r.key())
		}
		e.recomps[k] = rs
	}

	if r.err != nil {
		return nil, 0, r.err
	}
	if r.off != len(r.b) {
		return nil, 0, &ckpt.FormatError{Reason: "trailing payload bytes"}
	}
	return e, at, nil
}

// maxDecodeLen bounds per-collection lengths while decoding (the CRC has
// already passed, so this only guards against honest version skew).
const maxDecodeLen = 1 << 26

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortSkeys(ks []skey) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].job != ks[j].job {
			return ks[i].job < ks[j].job
		}
		return ks[i].stage < ks[j].stage
	})
}

// ---- byte-level encoding helpers ----------------------------------------

// wbuf appends little-endian fields; floats go as raw IEEE-754 bits so the
// decoded value is the identical float64 (NaN payloads included).
type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64) {
	w.b = append(w.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) int(v int)     { w.i64(int64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}
func (w *wbuf) str(s string) {
	w.int(len(s))
	w.b = append(w.b, s...)
}
func (w *wbuf) key(k skey) {
	w.int(k.job)
	w.i64(int64(k.stage))
}

// Slice writers record nil-ness explicitly: a resumed engine must
// DeepEqual the uninterrupted one, and nil vs empty is visible there.
func (w *wbuf) ints(s []int) {
	w.bool(s != nil)
	w.int(len(s))
	for _, v := range s {
		w.int(v)
	}
}
func (w *wbuf) f64s(s []float64) {
	w.bool(s != nil)
	w.int(len(s))
	for _, v := range s {
		w.f64(v)
	}
}
func (w *wbuf) bools(s []bool) {
	w.bool(s != nil)
	w.int(len(s))
	for _, v := range s {
		w.bool(v)
	}
}
func (w *wbuf) series(s Series) {
	w.bool(s != nil)
	w.int(len(s))
	for _, p := range s {
		w.f64(p.T)
		w.f64(p.V)
	}
}
func (w *wbuf) timeline(tl StageTimeline) {
	w.int(tl.JobIndex)
	w.i64(int64(tl.Stage))
	w.f64(tl.Ready)
	w.f64(tl.Start)
	w.f64(tl.ReadEnd)
	w.f64(tl.ComputeEnd)
	w.f64(tl.End)
	w.int(tl.Retries)
}
func (w *wbuf) segment(seg OccupancySegment) {
	w.int(seg.JobIndex)
	w.i64(int64(seg.Stage))
	w.f64(seg.From)
	w.f64(seg.To)
	w.f64(seg.Executors)
}

// rbuf reads wbuf-encoded fields, latching the first error; reads after
// an error return zero values so decoders can check err once at the end
// (length-guided loops must still break on err to terminate).
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = &ckpt.FormatError{Reason: "truncated payload"}
	}
}
func (r *rbuf) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := uint64(r.b[r.off]) | uint64(r.b[r.off+1])<<8 | uint64(r.b[r.off+2])<<16 |
		uint64(r.b[r.off+3])<<24 | uint64(r.b[r.off+4])<<32 | uint64(r.b[r.off+5])<<40 |
		uint64(r.b[r.off+6])<<48 | uint64(r.b[r.off+7])<<56
	r.off += 8
	return v
}
func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) int() int     { return int(r.i64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *rbuf) bool() bool {
	if r.err != nil {
		return false
	}
	if r.off+1 > len(r.b) {
		r.fail()
		return false
	}
	v := r.b[r.off]
	r.off++
	return v != 0
}
func (r *rbuf) key() skey {
	j := r.int()
	s := r.i64()
	return skey{job: j, stage: dag.StageID(s)}
}
func (r *rbuf) ints() []int {
	if !r.bool() {
		r.int()
		return nil
	}
	n := r.int()
	if r.err != nil || n < 0 || n > maxDecodeLen {
		r.fail()
		return nil
	}
	s := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		s = append(s, r.int())
	}
	return s
}
func (r *rbuf) f64s() []float64 {
	if !r.bool() {
		r.int()
		return nil
	}
	n := r.int()
	if r.err != nil || n < 0 || n > maxDecodeLen {
		r.fail()
		return nil
	}
	s := make([]float64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		s = append(s, r.f64())
	}
	return s
}
func (r *rbuf) bools() []bool {
	if !r.bool() {
		r.int()
		return nil
	}
	n := r.int()
	if r.err != nil || n < 0 || n > maxDecodeLen {
		r.fail()
		return nil
	}
	s := make([]bool, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		s = append(s, r.bool())
	}
	return s
}
func (r *rbuf) series() Series {
	if !r.bool() {
		r.int()
		return nil
	}
	n := r.int()
	if r.err != nil || n < 0 || n > maxDecodeLen {
		r.fail()
		return nil
	}
	s := make(Series, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		t := r.f64()
		v := r.f64()
		s = append(s, Sample{T: t, V: v})
	}
	return s
}
func (r *rbuf) timeline() StageTimeline {
	var tl StageTimeline
	tl.JobIndex = r.int()
	tl.Stage = dag.StageID(r.i64())
	tl.Ready = r.f64()
	tl.Start = r.f64()
	tl.ReadEnd = r.f64()
	tl.ComputeEnd = r.f64()
	tl.End = r.f64()
	tl.Retries = r.int()
	return tl
}
func (r *rbuf) segment() OccupancySegment {
	var seg OccupancySegment
	seg.JobIndex = r.int()
	seg.Stage = dag.StageID(r.i64())
	seg.From = r.f64()
	seg.To = r.f64()
	seg.Executors = r.f64()
	return seg
}
