package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/faults"
	"delaystage/internal/workload"
)

// galleryJobs returns the workload gallery (the four paper jobs plus ALS)
// on the given cluster, in deterministic name order.
func galleryJobs(c *cluster.Cluster, scale float64) []*workload.Job {
	m := workload.PaperWorkloads(c, scale)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	jobs := make([]*workload.Job, 0, len(names)+1)
	for _, n := range names {
		jobs = append(jobs, m[n])
	}
	jobs = append(jobs, workload.ALS(c, scale))
	return jobs
}

// randomDelays draws a sparse random delay vector for the job.
func randomDelays(job *workload.Job, rng *rand.Rand) map[dag.StageID]float64 {
	d := map[dag.StageID]float64{}
	for _, id := range job.Graph.Stages() {
		if rng.Float64() < 0.4 {
			d[id] = rng.Float64() * 60
		}
	}
	return d
}

// requireIdentical fails unless two results are deeply (bit-)identical.
func requireIdentical(t *testing.T, ctx string, want, got *Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: resumed result differs from from-scratch run\nwant makespan=%v events=%d\ngot  makespan=%v events=%d",
			ctx, want.Makespan, want.Events, got.Makespan, got.Events)
	}
}

// TestSnapshotResumeRoundTrip checks the core checkpoint property over the
// whole workload gallery: for any checkpoint time, SnapshotAt + Resume(nil)
// reproduces the uninterrupted Run bit for bit — timelines, usage series,
// integrals and the event count all included.
func TestSnapshotResumeRoundTrip(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	rng := rand.New(rand.NewSource(11))
	crash, err := faults.NewInjector(faults.FaultPlan{
		Seed: 3, TaskFailureProb: 0.03, StragglerFrac: 0.2, StragglerFactor: 2.5,
		Crashes: []faults.NodeCrash{{Node: 1, At: 45}},
	})
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		opt  Options
	}{
		{"plain", Options{Cluster: c, TrackNode: -1}},
		{"tracked", Options{Cluster: c, TrackNode: 0, TrackOccupancy: true, TrackCluster: true}},
		{"aggshuffle", Options{Cluster: c, TrackNode: -1, AggShuffle: true}},
		{"faults", Options{Cluster: c, TrackNode: -1, Faults: crash}},
	}
	for _, job := range galleryJobs(c, 0.3) {
		for _, v := range variants {
			runs := []JobRun{{Job: job, Delays: randomDelays(job, rng)}}
			ref, err := Run(v.opt, runs)
			if err != nil {
				t.Fatalf("%s/%s: %v", job.Name, v.name, err)
			}
			end := ref.JobEnd[0]
			checkpoints := []float64{0, end * 0.1, end * 0.5, end * 0.9, end + 100}
			for _, tl := range ref.Timelines {
				checkpoints = append(checkpoints, tl.Ready, tl.ReadEnd)
			}
			for _, at := range checkpoints {
				snap, err := SnapshotAt(v.opt, runs, at)
				if err != nil {
					t.Fatalf("%s/%s at %v: %v", job.Name, v.name, at, err)
				}
				got, err := snap.Resume(nil)
				if err != nil {
					t.Fatalf("%s/%s at %v: %v", job.Name, v.name, at, err)
				}
				requireIdentical(t, job.Name+"/"+v.name, ref, got)
			}
		}
	}
}

// TestSnapshotForkDelayBitIdentical is the fork-correctness property the
// what-if evaluator rests on: snapshot just before a stage's ready time,
// resume with a revised delay for that stage, and the result must be
// bit-identical to a from-scratch run that had the delay in its Delays map
// all along. Covers every gallery workload, every stage, and random delay
// candidates (plus 0 and the incumbent).
func TestSnapshotForkDelayBitIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(4)
	coarse := Coarsen(c)
	rng := rand.New(rand.NewSource(23))
	for _, job := range galleryJobs(c, 0.25) {
		for _, cl := range []*cluster.Cluster{c, coarse} {
			opt := Options{Cluster: cl, TrackNode: -1}
			base := randomDelays(job, rng)
			ref, err := Run(opt, []JobRun{{Job: job, Delays: base}})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range job.Graph.Stages() {
				tr := ref.Timeline(0, id).Ready
				// The snapshot bakes in every delay except the scanned
				// stage's — exactly how the evaluator forks a scan.
				pre := make(map[dag.StageID]float64, len(base))
				for k, v := range base {
					if k != id {
						pre[k] = v
					}
				}
				snap, err := SnapshotAt(opt, []JobRun{{Job: job, Delays: pre}}, tr)
				if err != nil {
					t.Fatal(err)
				}
				for _, x := range []float64{0, base[id], rng.Float64() * 40, math.Pi} {
					full := make(map[dag.StageID]float64, len(pre)+1)
					for k, v := range pre {
						full[k] = v
					}
					if x != 0 {
						full[id] = x
					}
					want, err := Run(opt, []JobRun{{Job: job, Delays: full}})
					if err != nil {
						t.Fatal(err)
					}
					got, err := snap.Resume([]DelayUpdate{{Job: 0, Stage: id, Delay: x}})
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, job.Name, want, got)
				}
			}
		}
	}
}

// TestSnapshotMultiJob covers checkpoints between job arrivals and delay
// forks on the later job.
func TestSnapshotMultiJob(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	jobs := galleryJobs(c, 0.2)
	opt := Options{Cluster: c, TrackNode: -1, FairByJob: true}
	runs := []JobRun{
		{Job: jobs[0], Arrival: 0},
		{Job: jobs[1], Arrival: 30},
		{Job: jobs[2], Arrival: 60, Delays: map[dag.StageID]float64{jobs[2].Graph.Stages()[1]: 12}},
	}
	ref, err := Run(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []float64{0, 15, 30, 45, 60, 61, ref.Makespan * 0.8} {
		snap, err := SnapshotAt(opt, runs, at)
		if err != nil {
			t.Fatal(err)
		}
		got, err := snap.Resume(nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "multi-job", ref, got)
	}
	// Fork job 2's delayed stage before its arrival.
	kid := jobs[2].Graph.Stages()[1]
	snap, err := SnapshotAt(opt, []JobRun{runs[0], runs[1], {Job: jobs[2], Arrival: 60}}, 55)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snap.Resume([]DelayUpdate{{Job: 2, Stage: kid, Delay: 12}})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "multi-job fork", ref, got)
}

// TestSnapshotResumeErrors pins the API's refusal cases.
func TestSnapshotResumeErrors(t *testing.T) {
	c := cluster.NewM4LargeCluster(3)
	job := workload.TriangleCount(c, 0.2)
	runs := []JobRun{{Job: job}}
	opt := Options{Cluster: c, TrackNode: -1}
	if _, err := SnapshotAt(opt, runs, math.Inf(1)); err == nil {
		t.Error("want error for infinite snapshot time")
	}
	if _, err := SnapshotAt(opt, runs, -1); err == nil {
		t.Error("want error for negative snapshot time")
	}
	if _, err := SnapshotAt(Options{Cluster: c, TrackNode: -1, Observer: nopObserver{}}, runs, 10); err == nil {
		t.Error("want error for snapshot with observer")
	}
	ref, err := Run(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := SnapshotAt(opt, runs, ref.Makespan*0.9)
	if err != nil {
		t.Fatal(err)
	}
	roots := job.Graph.Roots()
	if _, err := snap.Resume([]DelayUpdate{{Job: 0, Stage: roots[0], Delay: 5}}); err == nil {
		t.Error("want error revising an already-submitted stage")
	}
	if _, err := snap.Resume([]DelayUpdate{{Job: 0, Stage: 9999, Delay: 5}}); err == nil {
		t.Error("want error revising an unknown stage")
	}
	if _, err := snap.Resume([]DelayUpdate{{Job: 5, Stage: roots[0], Delay: 5}}); err == nil {
		t.Error("want error revising an unknown job")
	}
}

type nopObserver struct{}

func (nopObserver) OnEvent(Event) {}

// FuzzSnapshotResume fuzzes the round-trip property at arbitrary
// checkpoint times and delay vectors: resuming a snapshot must reproduce
// the uninterrupted run bit for bit.
func FuzzSnapshotResume(f *testing.F) {
	f.Add(uint8(0), int64(1), 0.5, false)
	f.Add(uint8(1), int64(2), 0.0, true)
	f.Add(uint8(2), int64(3), 1.5, false)
	f.Add(uint8(3), int64(4), 0.99, true)
	f.Add(uint8(4), int64(5), 0.01, false)
	c := cluster.NewM4LargeCluster(4)
	f.Fuzz(func(t *testing.T, jobIdx uint8, seed int64, frac float64, agg bool) {
		if math.IsNaN(frac) || frac < 0 || frac > 3 {
			t.Skip()
		}
		jobs := galleryJobs(c, 0.2)
		job := jobs[int(jobIdx)%len(jobs)]
		rng := rand.New(rand.NewSource(seed))
		runs := []JobRun{{Job: job, Delays: randomDelays(job, rng)}}
		opt := Options{Cluster: c, TrackNode: -1, AggShuffle: agg}
		ref, err := Run(opt, runs)
		if err != nil {
			t.Fatal(err)
		}
		at := frac * ref.Makespan
		snap, err := SnapshotAt(opt, runs, at)
		if err != nil {
			t.Fatal(err)
		}
		got, err := snap.Resume(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("resume at %v differs from uninterrupted run", at)
		}
	})
}
