package sim

import (
	"reflect"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/faults"
)

// Machine-level failure domains and their mitigations: persistent slow
// nodes, MTTF-driven and rack-correlated crashes, speculative execution
// and node blacklisting.

// Persistently slow machines drag the run out without producing a single
// retry — degradation is not failure.
func TestSlowNodesSlowButClean(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := faults.NewInjector(faults.FaultPlan{Seed: 21, SlowNodeFrac: 0.4, SlowNodeFactor: 3})
	res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("slow nodes are not failures, got %d retries", res.Retries)
	}
	if res.JCT(0) <= clean.JCT(0) {
		t.Fatalf("3× slow machines were free: %.1f <= %.1f", res.JCT(0), clean.JCT(0))
	}
}

// A rack outage is a correlated multi-node crash: the run recovers via
// retries and lineage recomputation and costs more than losing a single
// node of that rack.
func TestRackCrashRecovery(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	at := clean.JCT(0) * 0.5
	rackInj, _ := faults.NewInjector(faults.FaultPlan{
		Seed: 2, RackSize: 3, RackCrashes: []faults.RackCrash{{Rack: 0, At: at}},
	})
	rack, err := Run(Options{Cluster: c, TrackNode: -1, Faults: rackInj, MaxAttempts: 8},
		[]JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if rack.Failed(0) != nil {
		t.Fatalf("rack-crash run failed: %v", rack.Failed(0))
	}
	oneInj, _ := faults.NewInjector(faults.FaultPlan{
		Seed: 2, Crashes: []faults.NodeCrash{{Node: 0, At: at}},
	})
	one, err := Run(Options{Cluster: c, TrackNode: -1, Faults: oneInj, MaxAttempts: 8},
		[]JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	// Parallel recovery means the *wall-clock* cost of a rack loss can
	// match a single-node loss (retries and recomputes run on disjoint
	// nodes), but never beat it — and the lost work tracked via retries
	// must scale with the rack size.
	if rack.JCT(0) < one.JCT(0) {
		t.Fatalf("losing 3 nodes (%.2f) cheaper than losing 1 (%.2f)", rack.JCT(0), one.JCT(0))
	}
	if rack.JCT(0) <= clean.JCT(0) {
		t.Fatalf("rack outage was free: %.2f <= %.2f", rack.JCT(0), clean.JCT(0))
	}
	if rack.Retries <= one.Retries {
		t.Fatalf("rack crash re-queued %d attempts, single-node crash %d", rack.Retries, one.Retries)
	}
}

// MTTF-driven crashes are reproducible (hash-based draws) and actually
// hit the run.
func TestMTTFCrashesDeterministic(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.FaultPlan{Seed: 17, NodeMTTF: clean.JCT(0), MTTFHorizon: clean.JCT(0) * 4}
	var prev *Result
	for i := 0; i < 2; i++ {
		inj, err := faults.NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 10},
			[]JobRun{{Job: job}})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(prev, res) {
			t.Fatal("identical MTTF plans produced different results")
		}
		prev = res
	}
	if prev.Failed(0) == nil && prev.JCT(0) <= clean.JCT(0) {
		t.Fatalf("MTTF ≈ JCT crashed nothing: %.2f <= %.2f", prev.JCT(0), clean.JCT(0))
	}
}

// Speculative execution must claw back straggler damage: with heavy
// per-partition stragglers, enabling speculation launches clones, wins
// races, and lands between the clean and the unmitigated runtime.
func TestSpeculationMitigatesStragglers(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.FaultPlan{Seed: 6, StragglerFrac: 0.2, StragglerFactor: 8}
	inj, _ := faults.NewInjector(plan)
	slow, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	inj2, _ := faults.NewInjector(plan)
	spec, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj2, Speculation: true},
		[]JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if spec.SpecLaunched == 0 || spec.SpecWins == 0 {
		t.Fatalf("8× stragglers triggered no speculation (launched %d, wins %d)",
			spec.SpecLaunched, spec.SpecWins)
	}
	if spec.JCT(0) >= slow.JCT(0) {
		t.Fatalf("speculation did not help: %.2f >= %.2f", spec.JCT(0), slow.JCT(0))
	}
	if spec.JCT(0) < clean.JCT(0) {
		t.Fatalf("speculation beat the fault-free run: %.2f < %.2f", spec.JCT(0), clean.JCT(0))
	}
	// Speculation with no faults stays bit-identical to the clean run on a
	// homogeneous cluster: no partition ever lags the median.
	specClean, err := Run(Options{Cluster: c, TrackNode: -1, Speculation: true}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if specClean.SpecLaunched != 0 {
		t.Fatalf("clean homogeneous run launched %d clones", specClean.SpecLaunched)
	}
	if specClean.Makespan != clean.Makespan {
		t.Fatalf("idle speculation changed the makespan: %v vs %v", specClean.Makespan, clean.Makespan)
	}
}

// Repeated crashes of one machine blacklist it; rerouted retries keep the
// run alive, and the event stream records the blacklisting.
func TestBlacklistAfterRepeatedCrashes(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	jct := clean.JCT(0)
	inj, _ := faults.NewInjector(faults.FaultPlan{Seed: 2, Crashes: []faults.NodeCrash{
		{Node: 1, At: jct * 0.2}, {Node: 1, At: jct * 0.4},
	}})
	rec := &recorder{}
	res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 10,
		BlacklistAfter: 2, Observer: rec}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed(0) != nil {
		t.Fatalf("blacklisted run failed: %v", res.Failed(0))
	}
	if res.Blacklisted != 1 {
		t.Fatalf("Blacklisted = %d, want 1", res.Blacklisted)
	}
	found := false
	for _, ev := range rec.events {
		if ev.Kind == EvNodeBlacklisted {
			found = true
			if ev.Node != 1 {
				t.Fatalf("blacklisted node %d, want 1", ev.Node)
			}
		}
	}
	if !found {
		t.Fatal("no node_blacklisted event")
	}
}

// Machine faults plus both mitigations stay deterministic and snapshot-
// safe: a mid-run snapshot resumed must match the uninterrupted run bit
// for bit (this exercises cloning of rival links, fault counters and
// speculation state).
func TestMachineFaultSnapshotBitIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	mk := func() Options {
		inj, err := faults.NewInjector(faults.FaultPlan{
			Seed: 9, StragglerFrac: 0.25, StragglerFactor: 6,
			Crashes: []faults.NodeCrash{{Node: 2, At: 12}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 8,
			Speculation: true, BlacklistAfter: 3}
	}
	full, err := Run(mk(), []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		at := full.JCT(0) * frac
		snap, err := SnapshotAt(mk(), []JobRun{{Job: job}}, at)
		if err != nil {
			t.Fatalf("snapshot at %.2f: %v", at, err)
		}
		res, err := snap.Resume(nil)
		if err != nil {
			t.Fatalf("resume from %.2f: %v", at, err)
		}
		if !reflect.DeepEqual(res, full) {
			t.Fatalf("resume from %.2f diverged from the uninterrupted run", at)
		}
	}
}
