package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/faults"
	"delaystage/internal/workload"
)

func faultTestJob(t *testing.T, c *cluster.Cluster) *workload.Job {
	t.Helper()
	job := workload.PaperWorkloads(c, 0.3)["CosineSimilarity"]
	if job == nil {
		t.Fatal("missing workload")
	}
	return job
}

// A simulation driven by a zero-fault plan must be bit-identical to one
// with no injector at all: the fault layer is pay-for-what-you-use.
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	delays := map[dag.StageID]float64{2: 3.5}

	base, err := Run(Options{Cluster: c, TrackNode: 0, TrackCluster: true, TrackOccupancy: true},
		[]JobRun{{Job: job, Delays: delays}})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(faults.FaultPlan{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	withInj, err := Run(Options{Cluster: c, TrackNode: 0, TrackCluster: true, TrackOccupancy: true, Faults: inj},
		[]JobRun{{Job: job, Delays: delays}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, withInj) {
		t.Fatalf("zero-fault injector changed the result:\nbase %+v\nwith %+v", base, withInj)
	}
}

// Task failures must cost time (work is lost and re-done after backoff),
// be counted, and still let the job complete.
func TestTaskFailuresRetryAndComplete(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := faults.NewInjector(faults.FaultPlan{Seed: 4, TaskFailureProb: 0.25})
	res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed(0) != nil {
		t.Fatalf("job failed unexpectedly: %v", res.Failed(0))
	}
	if res.Retries == 0 {
		t.Fatal("25% failure rate produced zero retries")
	}
	if res.JCT(0) <= clean.JCT(0) {
		t.Fatalf("failures made the job faster: %.1f <= %.1f", res.JCT(0), clean.JCT(0))
	}
	sum := 0
	for _, tl := range res.Timelines {
		sum += tl.Retries
	}
	if sum != res.Retries {
		t.Fatalf("per-stage retries %d != total %d", sum, res.Retries)
	}
}

// With a certain-failure plan the retry budget runs out and the job must
// fail with a structured error, not a fabricated timeline; an unaffected
// co-running job keeps its result.
func TestRetryExhaustionFailsJob(t *testing.T) {
	c := cluster.NewM4LargeCluster(4)
	job := faultTestJob(t, c)
	inj, _ := faults.NewInjector(faults.FaultPlan{Seed: 1, TaskFailureProb: 1})
	res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 3},
		[]JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	ferr := res.Failed(0)
	if ferr == nil {
		t.Fatal("certain failure completed anyway")
	}
	var sfe *StageFailureError
	if !errors.As(ferr, &sfe) {
		t.Fatalf("want *StageFailureError, got %T: %v", ferr, ferr)
	}
	if sfe.Attempts != 3 {
		t.Fatalf("failed after %d attempts, want 3", sfe.Attempts)
	}
	if len(res.Timelines) != 0 {
		// CosineSimilarity's roots all compute; nothing can complete.
		t.Fatalf("failed job emitted %d timelines", len(res.Timelines))
	}
}

// A node crash mid-run kills in-flight work and forces lineage
// recomputation of completed-but-still-needed shuffle outputs; the run
// must complete, slower than the clean one.
func TestNodeCrashLineageRecovery(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	// Crash when roughly half the job is done: completed root outputs are
	// still needed by downstream consumers.
	at := clean.JCT(0) * 0.5
	inj, _ := faults.NewInjector(faults.FaultPlan{Seed: 2, Crashes: []faults.NodeCrash{{Node: 1, At: at}}})
	res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed(0) != nil {
		t.Fatalf("crash run failed: %v", res.Failed(0))
	}
	if res.JCT(0) <= clean.JCT(0)+1e-9 {
		t.Fatalf("node crash was free: %.2f <= %.2f", res.JCT(0), clean.JCT(0))
	}
	// Crashing a node after the job finished changes nothing.
	lateInj, _ := faults.NewInjector(faults.FaultPlan{Seed: 2, Crashes: []faults.NodeCrash{{Node: 1, At: clean.JCT(0) + 100}}})
	late, err := Run(Options{Cluster: c, TrackNode: -1, Faults: lateInj}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(late.JCT(0)-clean.JCT(0)) > 1e-9 {
		t.Fatalf("post-completion crash changed JCT: %.3f vs %.3f", late.JCT(0), clean.JCT(0))
	}
	if late.Retries != 0 {
		t.Fatalf("post-completion crash produced %d retries", late.Retries)
	}
}

// Stragglers slow the whole stage (its compute tail waits for the slow
// partition) without any retries.
func TestStragglersSlowButClean(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := faults.NewInjector(faults.FaultPlan{Seed: 6, StragglerFrac: 0.3, StragglerFactor: 4})
	res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 {
		t.Fatalf("stragglers are not failures, got %d retries", res.Retries)
	}
	if res.JCT(0) <= clean.JCT(0) {
		t.Fatalf("4× stragglers on 30%% of partitions were free: %.1f <= %.1f", res.JCT(0), clean.JCT(0))
	}
}

// Crash-node validation: a plan crashing a node the cluster doesn't have
// must be rejected up front.
func TestCrashNodeValidated(t *testing.T) {
	c := cluster.NewM4LargeCluster(3)
	job := faultTestJob(t, c)
	inj, _ := faults.NewInjector(faults.FaultPlan{Crashes: []faults.NodeCrash{{Node: 7, At: 1}}})
	if _, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj}, []JobRun{{Job: job}}); err == nil {
		t.Fatal("out-of-range crash node accepted")
	}
}

// cancelWatchdog zeroes every remaining delay the moment any stage
// completes — the simplest guarded policy.
type cancelWatchdog struct {
	delays map[dag.StageID]float64
	fired  bool
}

func (w *cancelWatchdog) StageReadCompleted(WatchEvent) []DelayUpdate { return nil }

func (w *cancelWatchdog) StageCompleted(ev WatchEvent) []DelayUpdate {
	if w.fired {
		return nil
	}
	w.fired = true
	var out []DelayUpdate
	for id := range w.delays {
		out = append(out, DelayUpdate{Job: ev.Job, Stage: id, Delay: 0})
	}
	return out
}

func (w *cancelWatchdog) TaskRetried(int, dag.StageID, int, int, float64) []DelayUpdate {
	return nil
}

// A watchdog that cancels all delays after the first stage completion must
// bring the run back to (near) the undelayed timeline even when the
// configured delays are absurd.
func TestWatchdogCancelsDelays(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	clean, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	absurd := map[dag.StageID]float64{}
	for _, id := range job.Graph.Stages() {
		if len(job.Graph.Parents(id)) > 0 {
			absurd[id] = 500
		}
	}
	bad, err := Run(Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: job, Delays: absurd}})
	if err != nil {
		t.Fatal(err)
	}
	if bad.JCT(0) < clean.JCT(0)+400 {
		t.Fatalf("absurd delays should hurt a lot: %.1f vs %.1f", bad.JCT(0), clean.JCT(0))
	}
	wd := &cancelWatchdog{delays: absurd}
	guarded, err := Run(Options{Cluster: c, TrackNode: -1, Watchdog: wd},
		[]JobRun{{Job: job, Delays: absurd}})
	if err != nil {
		t.Fatal(err)
	}
	if !wd.fired {
		t.Fatal("watchdog never saw a stage completion")
	}
	if guarded.JCT(0) > clean.JCT(0)*1.05 {
		t.Fatalf("guarded run %.1f not close to clean %.1f", guarded.JCT(0), clean.JCT(0))
	}
}

// Same fault plan ⇒ same result: the injector's hash-based draws make a
// faulty run as reproducible as a clean one.
func TestFaultyRunDeterministic(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	job := faultTestJob(t, c)
	plan := faults.FaultPlan{Seed: 11, TaskFailureProb: 0.2, StragglerFrac: 0.2, StragglerFactor: 2,
		Crashes: []faults.NodeCrash{{Node: 3, At: 15}}}
	var prev *Result
	for i := 0; i < 2; i++ {
		inj, err := faults.NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Cluster: c, TrackNode: -1, Faults: inj}, []JobRun{{Job: job}})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(prev, res) {
			t.Fatal("identical fault plans produced different results")
		}
		prev = res
	}
}
