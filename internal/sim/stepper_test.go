package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"delaystage/internal/cluster"
)

// stepToCompletion drives a stepper until drained, asserting the clock
// invariants on the way: PeekNextEventTime never prices below the current
// clock, repeated peeks return the identical value (peeking is idempotent
// at an event boundary), and the clock after a step never falls short of
// the peeked price.
func stepToCompletion(t *testing.T, s *Stepper) *Result {
	t.Helper()
	steps := 0
	for s.HasPendingEvents() {
		before := s.Clock()
		peek := s.PeekNextEventTime()
		if peek < before {
			t.Fatalf("step %d: peek %v below clock %v", steps, peek, before)
		}
		if again := s.PeekNextEventTime(); again != peek {
			t.Fatalf("step %d: peek not idempotent: %v then %v", steps, peek, again)
		}
		if err := s.StepNextEvent(); err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		if after := s.Clock(); after+1e-9 < peek {
			t.Fatalf("step %d: clock %v fell short of peeked %v", steps, after, peek)
		}
		steps++
		if steps > 6_000_000 {
			t.Fatal("stepper did not drain")
		}
	}
	if got := s.PeekNextEventTime(); !math.IsInf(got, 1) {
		t.Fatalf("drained stepper peeks %v, want +Inf", got)
	}
	if err := s.StepNextEvent(); err == nil {
		t.Fatal("stepping a drained run did not error")
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSteppedRunIdentical is the tentpole property: a run driven one event
// at a time through the exported step primitives is DeepEqual-identical to
// sim.Run — across the gallery jobs, with and without tracking, and under
// the full chaos regime (crashes, stragglers, slow nodes, speculation,
// blacklisting).
func TestSteppedRunIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	rng := rand.New(rand.NewSource(23))
	variants := []struct {
		name string
		opt  Options
	}{
		{"plain", Options{Cluster: c, TrackNode: -1}},
		{"tracked", Options{Cluster: c, TrackNode: 0, TrackOccupancy: true, TrackCluster: true}},
		{"chaos", chaosOptions(c, chaosInjector(t))},
	}
	for _, job := range galleryJobs(c, 0.3) {
		for _, v := range variants {
			runs := []JobRun{{Job: job, Delays: randomDelays(job, rng)}}
			ref, err := Run(v.opt, runs)
			if err != nil {
				t.Fatalf("%s/%s: %v", job.Name, v.name, err)
			}
			s, err := NewStepper(v.opt, runs)
			if err != nil {
				t.Fatalf("%s/%s: %v", job.Name, v.name, err)
			}
			got := stepToCompletion(t, s)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s/%s: stepped result differs from Run", job.Name, v.name)
			}
		}
	}
}

// TestSteppedMultiJobArrivals covers the multi-job shard shape: several
// jobs with staggered arrivals sharing one engine under FairByJob, stepped
// to completion, must match Run bit for bit.
func TestSteppedMultiJobArrivals(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	rng := rand.New(rand.NewSource(5))
	jobs := galleryJobs(c, 0.25)
	var runs []JobRun
	for i, job := range jobs {
		runs = append(runs, JobRun{Job: job, Arrival: float64(i) * 30, Delays: randomDelays(job, rng)})
	}
	for _, opt := range []Options{
		{Cluster: c, TrackNode: -1, FairByJob: true},
		chaosOptions(c, chaosInjector(t)),
	} {
		ref, err := Run(opt, runs)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStepper(opt, runs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, stepToCompletion(t, s)) {
			t.Error("stepped multi-job result differs from Run")
		}
	}
}

// TestSnapshotStepper checks composition with the checkpoint machinery: a
// run snapshotted mid-flight and continued through Snapshot.Stepper must
// reproduce the uninterrupted Run, and the snapshot stays reusable.
func TestSnapshotStepper(t *testing.T) {
	c := cluster.NewM4LargeCluster(6)
	rng := rand.New(rand.NewSource(11))
	for _, job := range galleryJobs(c, 0.3) {
		opt := chaosOptions(c, chaosInjector(t))
		runs := []JobRun{{Job: job, Delays: randomDelays(job, rng)}}
		ref, err := Run(opt, runs)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := SnapshotAt(opt, runs, ref.JobEnd[0]*0.6)
		if err != nil {
			t.Fatal(err)
		}
		for fork := 0; fork < 2; fork++ { // fork twice: the snapshot must not be consumed
			got := stepToCompletion(t, snap.Stepper())
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s fork %d: snapshot-stepped result differs from Run", job.Name, fork)
			}
		}
	}
}

// TestStepperValidation mirrors Run's validation contract.
func TestStepperValidation(t *testing.T) {
	if _, err := NewStepper(Options{}, nil); err == nil {
		t.Fatal("nil cluster accepted")
	}
	c := cluster.NewM4LargeCluster(2)
	if _, err := NewStepper(Options{Cluster: c}, nil); err == nil {
		t.Fatal("empty run list accepted")
	}
	s, err := NewStepper(Options{Cluster: c, TrackNode: -1},
		[]JobRun{{Job: galleryJobs(c, 0.2)[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(); err == nil {
		t.Fatal("result with pending events did not error")
	}
}
