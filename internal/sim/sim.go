// Package sim is a discrete-event *fluid* simulator of a DAG-analytics
// cluster — the substrate that stands in for the paper's Spark-on-EC2
// testbed. Every stage runs a partition on every worker node; a partition
// walks shuffle-read (network) → compute (executors) → shuffle-write
// (disk), and concurrent consumers of a resource share it max-min fairly,
// matching the equal-share assumption of the paper's model (Sec. 3.1).
//
// The simulator supports the mechanisms all evaluated strategies need:
//
//   - delayed stage submission (DelayStage's X — extra delay after a stage
//     becomes ready),
//   - AggShuffle-style pipelined shuffle, where a child stage prefetches
//     parent output as it is produced (availability ramps with the
//     parent's compute progress and task skew),
//   - multi-job replay with per-job arrival times,
//   - utilization tracking: per-node time series, cluster-wide averages,
//     and per-stage executor occupation (Figs. 5, 12, 13, 17; Tables 3–4).
package sim

import (
	"fmt"
	"math"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/faults"
	"delaystage/internal/workload"
)

// Options configures a simulation run.
type Options struct {
	Cluster *cluster.Cluster
	// AggShuffle enables pipelined shuffle prefetching (the baseline of
	// Liu et al., ICDCS'17).
	AggShuffle bool
	// AggShuffleOverhead inflates the compute volume of prefetched stages
	// (proactive aggregation re-processes pushed partials; the paper
	// observes LDA stages getting slower under AggShuffle). Negative
	// means 0; default 0.05 when AggShuffle is on.
	AggShuffleOverhead float64
	// ContentionOverhead is the per-extra-consumer efficiency loss when f
	// consumers share one resource: effective capacity C/(1+α(f−1)).
	// The pure fluid model (α=0) is work-conserving, which understates
	// the cost of synchronized parallel stages (incast, disk seeks,
	// stragglers); the paper's measured stock-Spark timelines include
	// those losses. Negative means 0; default 0.22. The ablation bench
	// BenchmarkContentionOverhead sweeps it.
	ContentionOverhead float64
	// FairByJob shares each resource first equally among jobs, then among
	// a job's stages — the "resources are evenly partitioned among
	// multiple jobs" rule of Sec. 5.3. Off, all consumers share equally.
	FairByJob bool
	// TrackNode selects a node whose CPU/network/disk usage is recorded as
	// a step-function time series (-1 disables tracking).
	TrackNode int
	// TrackOccupancy records per-stage executor occupation segments
	// (Fig. 13). Only meaningful for single-job runs.
	TrackOccupancy bool
	// TrackCluster records cluster-wide usage series: busy-executor
	// fraction, aggregate network and disk rates (Fig. 4a).
	TrackCluster bool
	// MaxTime aborts the run if simulated time exceeds it (safety against
	// pathological inputs). Zero means 30 days.
	MaxTime float64
	// Faults injects task failures, stragglers and node crashes (nil: the
	// perfect world — the engine behaves bit-identically to a build
	// without the fault layer).
	Faults *faults.Injector
	// MaxAttempts bounds the executions of one stage-partition phase
	// (first try + retries). A partition that fails MaxAttempts times
	// fails its job with a *StageFailureError. Zero means 4.
	MaxAttempts int
	// RetryBackoff is the base of the exponential retry backoff: attempt
	// n+1 starts RetryBackoff·2^(n−1) seconds after attempt n failed.
	// Zero means 2 s.
	RetryBackoff float64
	// Speculation enables straggler mitigation: once at least half of a
	// stage's compute partitions have finished, a partition whose
	// projected duration exceeds SpeculationThreshold times the median
	// of the finished ones gets a clone on the least-loaded healthy
	// node. First finisher wins; the loser is cancelled (its death, if
	// doomed, is absorbed without a retry). At most one clone per
	// partition.
	Speculation bool
	// SpeculationThreshold is the lag multiple that triggers a clone
	// (projected duration > threshold × median). Zero means 1.5.
	SpeculationThreshold float64
	// BlacklistAfter, when positive, stops placing new work on a node
	// after it accumulated that many faults (task deaths and crashes).
	// Work logically belonging to a blacklisted node is rerouted to the
	// next healthy node (its shuffle partition still lives there — the
	// fluid model keeps per-node volumes unchanged). Zero disables
	// blacklisting.
	BlacklistAfter int
	// Watchdog observes stage completions and task retries at runtime and
	// may revise the submission delays of not-yet-submitted stages (the
	// guarded DelayStage strategy plugs in here). Nil: no monitoring.
	Watchdog Watchdog
	// Observer receives typed lifecycle events (stage ready/submitted/
	// read-done/compute-done/completed, task retry, node crash, watchdog
	// delay revision, job done/failed) synchronously from the event loop.
	// Nil (the default) is bit-identical to a build without the
	// observability layer and adds no hot-path allocations.
	Observer Observer
}

// WatchEvent is what a Watchdog sees when a stage completes.
type WatchEvent struct {
	Job      int
	Stage    dag.StageID
	Timeline StageTimeline
	// Retries is the number of failed partition attempts the stage
	// absorbed before completing.
	Retries  int
	JobStart float64 // the job's arrival time
	Now      float64
}

// DelayUpdate revises the submission delay of one not-yet-submitted
// stage: its delay-after-ready becomes Delay (already-submitted stages
// ignore updates; a past-due revised time submits immediately).
type DelayUpdate struct {
	Job   int
	Stage dag.StageID
	Delay float64
}

// Watchdog is the runtime plan monitor. All methods may return delay
// revisions; they are called synchronously from the event loop.
// StageReadCompleted fires when a stage's shuffle read finishes on every
// node (Timeline.ReadEnd set, End still zero) — the earliest moment a
// plan's predictions can be checked against reality, typically before
// most planned delays have committed.
type Watchdog interface {
	StageReadCompleted(ev WatchEvent) []DelayUpdate
	StageCompleted(ev WatchEvent) []DelayUpdate
	TaskRetried(job int, stage dag.StageID, node, attempt int, now float64) []DelayUpdate
}

// CrashWatcher is an optional Watchdog extension (type-asserted like
// ShareObserver): NodeCrashed fires when a machine-level crash executes,
// after the lost work is re-queued, so a guarded scheduler can replan the
// remaining delays for the degraded capacity. A Watchdog that does not
// implement it costs nothing.
type CrashWatcher interface {
	NodeCrashed(node int, now float64) []DelayUpdate
}

// StageFailureError reports that a job was aborted because one stage
// partition exhausted its retry budget.
type StageFailureError struct {
	Job      int
	Stage    dag.StageID
	Node     int
	Attempts int
}

func (e *StageFailureError) Error() string {
	return fmt.Sprintf("sim: job %d stage %d: partition on node %d failed after %d attempts",
		e.Job, e.Stage, e.Node, e.Attempts)
}

// JobRun is one job instance inside a simulation.
type JobRun struct {
	Job     *workload.Job
	Arrival float64 // absolute submission time of the job
	// Delays is DelayStage's X: extra seconds to hold a stage after it
	// becomes ready (all parents complete). Missing stages get 0.
	Delays map[dag.StageID]float64
}

// StageTimeline records when one stage of one job moved through its
// lifecycle. All times are absolute simulation seconds.
type StageTimeline struct {
	JobIndex   int
	Stage      dag.StageID
	Ready      float64 // all parents complete (or job arrival for roots)
	Start      float64 // first shuffle-read activity
	ReadEnd    float64 // shuffle read finished on every node
	ComputeEnd float64 // compute finished on every node
	End        float64 // shuffle write finished on every node
	// Retries counts failed partition attempts absorbed by the stage
	// (task failures and node-crash kills; zero in a fault-free run).
	Retries int
}

// Sample is one step of a step-function time series: value V holds from
// time T until the next sample's T.
type Sample struct {
	T float64
	V float64
}

// Series is a step-function time series (per-node usage, occupancy, ...).
type Series []Sample

// NodeUsage is the tracked node's resource usage over time.
type NodeUsage struct {
	CPUBusy  Series // fraction of executors busy, 0..1
	NetRate  Series // ingress bytes/s
	DiskRate Series // write bytes/s
}

// OccupancySegment records executors held by one stage over [From, To).
type OccupancySegment struct {
	JobIndex  int
	Stage     dag.StageID
	From, To  float64
	Executors float64
}

// Result is everything a simulation run produces.
type Result struct {
	// Timelines holds one entry per (job, stage), in completion order.
	Timelines []StageTimeline
	// JobEnd[i] is the absolute completion time of runs[i]; JobStart[i]
	// its arrival. JCT = JobEnd - JobStart.
	JobEnd   []float64
	JobStart []float64
	// Makespan is max(JobEnd) − min(arrival).
	Makespan float64
	// Tracked node series (empty if TrackNode < 0).
	Node NodeUsage
	// Cluster-wide usage series (empty unless TrackCluster): CPUBusy is
	// the busy-executor fraction, NetRate/DiskRate aggregate bytes/s.
	Cluster NodeUsage
	// Occupancy segments (empty unless TrackOccupancy).
	Occupancy []OccupancySegment
	// Cluster-wide averages over the makespan: AvgCPUUtil is the mean
	// fraction of busy executors, AvgNetUtil / AvgDiskUtil the mean
	// fraction of NIC / disk bandwidth in use, AvgNetRate the mean
	// aggregate network throughput in bytes/s.
	AvgCPUUtil  float64
	AvgNetUtil  float64
	AvgDiskUtil float64
	AvgNetRate  float64
	// Events is the number of simulation events processed.
	Events int
	// Retries is the total number of failed partition attempts across all
	// jobs (zero in a fault-free run).
	Retries int
	// SpecLaunched / SpecWins count speculative clones started and clones
	// (or originals) that won their race; Blacklisted counts nodes taken
	// out of placement. All zero unless the mitigation options are on.
	SpecLaunched int
	SpecWins     int
	Blacklisted  int
	// JobErrors[i] is non-nil (a *StageFailureError) when runs[i] was
	// aborted after a partition exhausted its retry budget; its JobEnd is
	// the abort time and its timelines are partial.
	JobErrors []error
}

// Failed returns job i's structured failure, or nil if it completed.
func (r *Result) Failed(i int) error {
	if i < 0 || i >= len(r.JobErrors) {
		return nil
	}
	return r.JobErrors[i]
}

// JCT returns job i's completion time (end − arrival).
func (r *Result) JCT(i int) float64 { return r.JobEnd[i] - r.JobStart[i] }

// Timeline returns the timeline of (job, stage), or nil.
func (r *Result) Timeline(job int, stage dag.StageID) *StageTimeline {
	for i := range r.Timelines {
		tl := &r.Timelines[i]
		if tl.JobIndex == job && tl.Stage == stage {
			return tl
		}
	}
	return nil
}

// Coarsen collapses a cluster into a single aggregate node. Trace-scale
// replays use it: thousands of jobs against cluster-level capacities is
// the same fluid model at 1/N the event cost.
func Coarsen(c *cluster.Cluster) *cluster.Cluster {
	return &cluster.Cluster{Nodes: []cluster.Node{{
		ID:        0,
		Executors: c.TotalExecutors(),
		NetBW:     c.TotalNetBW(),
		DiskBW:    c.TotalDiskBW(),
	}}}
}

// Run simulates the given jobs and returns the result.
func Run(opt Options, runs []JobRun) (*Result, error) {
	opt, err := prepare(opt, runs)
	if err != nil {
		return nil, err
	}
	e := newEngine(opt, runs)
	return e.run()
}

// prepare validates a run configuration and applies the option defaults,
// returning the normalized options. Shared by Run and SnapshotAt so a
// snapshot's engine is constructed under exactly the defaults a direct Run
// would use.
func prepare(opt Options, runs []JobRun) (Options, error) {
	if opt.Cluster == nil {
		return opt, fmt.Errorf("sim: nil cluster")
	}
	if err := opt.Cluster.Validate(); err != nil {
		return opt, err
	}
	if len(runs) == 0 {
		return opt, fmt.Errorf("sim: no jobs")
	}
	for i, r := range runs {
		if r.Job == nil {
			return opt, fmt.Errorf("sim: job %d is nil", i)
		}
		if err := r.Job.Validate(); err != nil {
			return opt, fmt.Errorf("sim: job %d: %w", i, err)
		}
		if r.Arrival < 0 || math.IsNaN(r.Arrival) {
			return opt, fmt.Errorf("sim: job %d has invalid arrival %v", i, r.Arrival)
		}
		for s, d := range r.Delays {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return opt, fmt.Errorf("sim: job %d stage %d has invalid delay %v", i, s, d)
			}
		}
	}
	if opt.Faults != nil {
		n := len(opt.Cluster.Nodes)
		for _, cr := range opt.Faults.Crashes() {
			if cr.Node >= n {
				return opt, fmt.Errorf("sim: fault plan crashes node %d but cluster has %d nodes", cr.Node, n)
			}
		}
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 4
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = 2
	}
	if opt.SpeculationThreshold == 0 {
		opt.SpeculationThreshold = 1.5
	} else if opt.SpeculationThreshold < 1 || math.IsNaN(opt.SpeculationThreshold) || math.IsInf(opt.SpeculationThreshold, 0) {
		return opt, fmt.Errorf("sim: speculation threshold %v must be ≥1", opt.SpeculationThreshold)
	}
	if opt.BlacklistAfter < 0 {
		return opt, fmt.Errorf("sim: blacklist-after %d must be ≥0", opt.BlacklistAfter)
	}
	if opt.MaxTime <= 0 {
		opt.MaxTime = 30 * 24 * 3600
	}
	if opt.ContentionOverhead == 0 {
		opt.ContentionOverhead = 0.22
	} else if opt.ContentionOverhead < 0 {
		opt.ContentionOverhead = 0
	}
	if opt.AggShuffleOverhead == 0 {
		opt.AggShuffleOverhead = 0.02
	} else if opt.AggShuffleOverhead < 0 {
		opt.AggShuffleOverhead = 0
	}
	return opt, nil
}
