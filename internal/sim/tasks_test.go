package sim

import (
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// A stage with one task per node can use only one executor per node: its
// compute takes ε× longer than an uncapped stage on ε-executor nodes.
func TestTaskCapSlowsCompute(t *testing.T) {
	c := cluster.NewUniformCluster(4, 4, cluster.MBps(100), cluster.MBps(80))
	mk := func(tasks int) *workload.Job {
		g := dag.New()
		g.MustAdd(dag.Stage{ID: 1})
		p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 10, ComputeSec: 100, WriteSec: 0})
		p.Tasks = tasks
		j := &workload.Job{Name: "tc", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p}}
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		return j
	}
	full := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: mk(0)}})
	capped := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: mk(4)}}) // 1 task/node on 4-exec nodes
	fullTL, capTL := full.Timeline(0, 1), capped.Timeline(0, 1)
	fullCompute := fullTL.ComputeEnd - fullTL.ReadEnd
	capCompute := capTL.ComputeEnd - capTL.ReadEnd
	if capCompute < fullCompute*3.5 {
		t.Fatalf("1-task-per-node compute %.1f should be ~4× the uncapped %.1f", capCompute, fullCompute)
	}
}

// CPU utilization accounting must reflect the cap: a task-starved stage
// leaves executors idle even while computing.
func TestTaskCapLowersUtilization(t *testing.T) {
	c := cluster.NewUniformCluster(4, 4, cluster.MBps(100), cluster.MBps(80))
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 1, ComputeSec: 100, WriteSec: 0})
	p.Tasks = 4 // one per node, of 4 executors each
	j := &workload.Job{Name: "u", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p}}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, Options{Cluster: c, TrackNode: 0}, []JobRun{{Job: j}})
	// During compute the node runs 1 of 4 executors: average CPU util well
	// under 0.5.
	if res.AvgCPUUtil > 0.5 {
		t.Fatalf("task-starved stage should leave executors idle: util %.2f", res.AvgCPUUtil)
	}
}

// Tasks ≥ executors behaves exactly like the uncapped default.
func TestTaskCapNoEffectWhenAmple(t *testing.T) {
	c := cluster.NewUniformCluster(4, 2, cluster.MBps(100), cluster.MBps(80))
	mk := func(tasks int) *workload.Job {
		g := dag.New()
		g.MustAdd(dag.Stage{ID: 1})
		p := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 10, ComputeSec: 50, WriteSec: 5})
		p.Tasks = tasks
		j := &workload.Job{Name: "na", Graph: g, Profiles: map[dag.StageID]workload.StageProfile{1: p}}
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		return j
	}
	a := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: mk(0)}})
	b := mustRun(t, Options{Cluster: c, TrackNode: -1}, []JobRun{{Job: mk(800)}})
	approx(t, "ample tasks JCT", b.JCT(0), a.JCT(0), 0.5)
}
