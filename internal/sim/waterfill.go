package sim

import "math"

// waterFill computes a max-min fair allocation of capacity among consumers
// with demand caps. demands[i] may be +Inf (elastic consumer). weights, if
// non-nil, skew fair shares proportionally (used for job-first fairness);
// nil means equal weights. The returned allocations satisfy
// Σ alloc ≤ capacity and alloc[i] ≤ demands[i], and no consumer can gain
// without a lower-share consumer losing.
func waterFill(capacity float64, demands, weights []float64) []float64 {
	alloc := make([]float64, len(demands))
	waterFillInto(alloc, nil, capacity, demands, weights)
	return alloc
}

// waterFillInto is waterFill writing into caller-provided scratch: alloc
// must be zeroed and len(demands) long; active is an index scratch whose
// (possibly re-grown) backing array is returned for reuse. The fill order
// and arithmetic are identical to waterFill, so results are bit-equal.
func waterFillInto(alloc []float64, active []int, capacity float64, demands, weights []float64) []int {
	n := len(demands)
	if n == 0 || capacity <= 0 {
		return active
	}
	if cap(active) < n {
		active = make([]int, 0, n)
	}
	active = active[:0]
	for i := range demands {
		if demands[i] > 0 {
			active = append(active, i)
		}
	}
	remaining := capacity
	for len(active) > 0 && remaining > 1e-15 {
		wSum := 0.0
		for _, i := range active {
			wSum += weightOf(weights, i)
		}
		if wSum <= 0 {
			break
		}
		// Find consumers whose demand is below their proportional share;
		// they are satisfied exactly and removed.
		satisfiedAny := false
		next := active[:0]
		unit := remaining / wSum
		for _, i := range active {
			share := unit * weightOf(weights, i)
			if demands[i] <= share+1e-15 {
				alloc[i] = demands[i]
				remaining -= demands[i]
				satisfiedAny = true
			} else {
				next = append(next, i)
			}
		}
		active = next
		if !satisfiedAny {
			// Everyone is elastic at this water level: split and finish.
			wSum = 0
			for _, i := range active {
				wSum += weightOf(weights, i)
			}
			for _, i := range active {
				alloc[i] = remaining * weightOf(weights, i) / wSum
			}
			remaining = 0
			break
		}
	}
	// Numerical guard: clamp tiny negatives.
	for i := range alloc {
		if alloc[i] < 0 || math.IsNaN(alloc[i]) {
			alloc[i] = 0
		}
	}
	return active
}

func weightOf(weights []float64, i int) float64 {
	if weights == nil {
		return 1
	}
	return weights[i]
}
