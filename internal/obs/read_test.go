package obs

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"delaystage/internal/sim"
)

// TestReadEventsGoldenRoundTrip: decoding the golden event log and
// re-encoding it must reproduce the file byte-for-byte — the decoder is
// the exact inverse of the encoder.
func TestReadEventsGoldenRoundTrip(t *testing.T) {
	raw, err := os.ReadFile("testdata/events.golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("golden log decoded to zero events")
	}
	var out bytes.Buffer
	if err := WriteEvents(&out, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, out.Bytes()) {
		t.Fatalf("round-trip diverged from golden:\n got %d bytes\nwant %d bytes",
			out.Len(), len(raw))
	}
}

// TestReadEventsLiveRoundTrip: a freshly generated log (including faults,
// retries and a failure detail string) survives decode→encode unchanged,
// and the decoded events match what the observer saw.
func TestReadEventsLiveRoundTrip(t *testing.T) {
	var rec eventRecorder
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	fixedRun(t, Multi(&rec, l))
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(rec.events) {
		t.Fatalf("decoded %d events, observer saw %d", len(evs), len(rec.events))
	}
	for i, le := range evs {
		if le.Run != -1 {
			t.Fatalf("event %d: run label %d on an unlabelled log", i, le.Run)
		}
		if le.Event != rec.events[i] {
			t.Fatalf("event %d diverged:\n got %+v\nwant %+v", i, le.Event, rec.events[i])
		}
	}
	var out bytes.Buffer
	if err := WriteEvents(&out, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), out.Bytes()) {
		t.Fatal("live log round-trip diverged")
	}
}

// eventRecorder captures raw events for comparison against decoder output.
type eventRecorder struct{ events []sim.Event }

func (r *eventRecorder) OnEvent(ev sim.Event) { r.events = append(r.events, ev) }

// TestReadEventsRunLabels: run labels survive the round trip and
// EventsOfRun/Runs slice the log correctly.
func TestReadEventsRunLabels(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	for run := 0; run < 3; run++ {
		l.Run = run
		l.OnEvent(sim.Event{T: float64(run), Kind: sim.EvStageReady, Job: 0, Stage: 1, Node: -1})
		l.OnEvent(sim.Event{T: float64(run) + 0.5, Kind: sim.EvJobDone, Job: 0, Stage: -1, Node: -1})
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	runs := Runs(evs)
	if len(runs) != 3 || runs[0] != 0 || runs[1] != 1 || runs[2] != 2 {
		t.Fatalf("Runs = %v, want [0 1 2]", runs)
	}
	for _, run := range runs {
		sub := EventsOfRun(evs, run)
		if len(sub) != 2 {
			t.Fatalf("run %d has %d events, want 2", run, len(sub))
		}
		if sub[0].T != float64(run) {
			t.Fatalf("run %d starts at %v", run, sub[0].T)
		}
	}
	var out bytes.Buffer
	if err := WriteEvents(&out, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), out.Bytes()) {
		t.Fatal("labelled log round-trip diverged")
	}
}

// TestReadEventsDetailEscaping: detail strings with JSON-hostile content
// (quotes, backslashes, control chars, non-ASCII) survive the round trip.
func TestReadEventsDetailEscaping(t *testing.T) {
	details := []string{
		`plain`,
		`has "quotes" and \backslashes\`,
		"tab\tnewline\ncarriage\rreturn",
		"control \x01\x1f bytes",
		"non-ascii: é 図 🚀",
	}
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	for i, d := range details {
		l.OnEvent(sim.Event{T: float64(i), Kind: sim.EvJobFailed, Job: 0,
			Stage: -1, Node: -1, Detail: d})
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range details {
		if evs[i].Event.Detail != d {
			t.Errorf("detail %d: got %q, want %q", i, evs[i].Event.Detail, d)
		}
	}
	var out bytes.Buffer
	if err := WriteEvents(&out, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), out.Bytes()) {
		t.Fatal("detail-heavy log round-trip diverged")
	}
}

// TestReadEventsErrors: malformed input fails loudly with a line number
// rather than decoding garbage.
func TestReadEventsErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"bad json", "{not json}\n", "line 1"},
		{"missing kind", `{"t":1}` + "\n", "missing kind"},
		{"unknown kind", `{"t":1,"kind":"warp_drive"}` + "\n", `unknown kind "warp_drive"`},
		{"missing t", `{"kind":"job_done"}` + "\n", "timestamp"},
		{"second line", "{\"t\":1,\"kind\":\"job_done\"}\n{oops}\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEvents(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("decoded malformed input without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// Blank lines are tolerated, not errors.
	evs, err := ReadEvents(strings.NewReader("\n{\"t\":1,\"kind\":\"job_done\"}\n\n"))
	if err != nil || len(evs) != 1 {
		t.Fatalf("blank-line handling: evs=%d err=%v", len(evs), err)
	}
}
