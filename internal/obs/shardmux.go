package obs

import (
	"reflect"
	"sync"

	"delaystage/internal/sim"
)

// RunLabeled is an exporter that stamps a run index on everything it
// records. JSONL and ChromeTracer implement it; it is what a ShardMux
// fans merged multi-world event streams into.
type RunLabeled interface {
	sim.Observer
	SetRun(run int)
}

// ShardMux merges the event streams of n independently-stepped worlds
// (internal/shardsim) back into the sequential emission order, so a
// sharded replay produces event and Chrome-trace artifacts byte-identical
// to the single-engine path at any shard/worker count.
//
// Each world gets its own buffering observer from Observer(i); the worker
// draining that world appends events lock-free (a world is stepped by one
// goroutine at a time). When shardsim's deterministic index-order reduce
// reaches world i, call Flush(i): the mux marks the world complete and
// drains the in-order prefix of finished worlds into the sinks —
// SetRun(i) then every buffered event, exactly as the sequential loop
// would have. Worlds that finish out of order are held until their turn,
// so sink output never interleaves.
//
// Nil sinks (including typed nils) are dropped, mirroring Multi; with no
// live sinks Observer returns nil and the engines skip emission entirely.
type ShardMux struct {
	n     int
	sinks []RunLabeled

	mu   sync.Mutex
	bufs map[int]*muxBuf
	next int
}

// muxBuf buffers one world's events until its index-order turn.
type muxBuf struct {
	evs  []sim.Event
	done bool
}

// OnEvent implements sim.Observer. No lock: only the goroutine currently
// stepping the world appends, and the mutex acquire/release in Flush
// publishes the slice to whichever goroutine later drains it.
func (b *muxBuf) OnEvent(ev sim.Event) { b.evs = append(b.evs, ev) }

// NewShardMux returns a mux for n worlds fanning into sinks.
func NewShardMux(n int, sinks ...RunLabeled) *ShardMux {
	m := &ShardMux{n: n, bufs: map[int]*muxBuf{}}
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if v := reflect.ValueOf(s); v.Kind() == reflect.Pointer && v.IsNil() {
			continue
		}
		m.sinks = append(m.sinks, s)
	}
	return m
}

// Active reports whether any live sink is attached — callers can skip
// mux wiring entirely when not.
func (m *ShardMux) Active() bool { return len(m.sinks) > 0 }

// Observer returns world run's buffering observer (nil when no sinks are
// attached). Call it from the world builder, on the goroutine that will
// step the world.
func (m *ShardMux) Observer(run int) sim.Observer {
	if len(m.sinks) == 0 {
		return nil
	}
	b := &muxBuf{}
	m.mu.Lock()
	m.bufs[run] = b
	m.mu.Unlock()
	return b
}

// Flush marks world run complete and drains every consecutive finished
// world from the current index-order frontier into the sinks. Call it
// from the reduce step (shardsim guarantees one call per world).
func (m *ShardMux) Flush(run int) {
	if len(m.sinks) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b := m.bufs[run]; b != nil {
		b.done = true
	}
	for m.next < m.n {
		b := m.bufs[m.next]
		if b == nil || !b.done {
			break
		}
		for _, s := range m.sinks {
			s.SetRun(m.next)
		}
		for _, ev := range b.evs {
			for _, s := range m.sinks {
				s.OnEvent(ev)
			}
		}
		delete(m.bufs, m.next)
		m.next++
	}
}
