package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"delaystage/internal/dag"
	"delaystage/internal/sim"
)

// LoggedEvent is one decoded JSONL line: the engine event plus the
// optional run label cmd/replay stamps on multi-run logs (-1 when the
// line carried none).
type LoggedEvent struct {
	Run   int
	Event sim.Event
}

// kindByName maps the stable wire names back to event kinds. Built from
// EventKind.String itself, so a new kind is picked up automatically.
var kindByName = func() map[string]sim.EventKind {
	m := make(map[string]sim.EventKind)
	for k := sim.EventKind(0); ; k++ {
		name := k.String()
		if name == "unknown" {
			break
		}
		m[name] = k
	}
	return m
}()

// jsonlLine mirrors the JSONL encoder's field set. Pointer fields
// distinguish "absent" from zero for the fields the encoder omits when
// negative (-1 sentinels).
type jsonlLine struct {
	T        *float64 `json:"t"`
	Kind     string   `json:"kind"`
	Run      *int     `json:"run"`
	Job      *int     `json:"job"`
	Stage    *int     `json:"stage"`
	Node     *int     `json:"node"`
	Attempt  int      `json:"attempt"`
	Delay    float64  `json:"delay"`
	Prefetch bool     `json:"prefetch"`
	Detail   string   `json:"detail"`
}

// DecodeEvents streams the event lines of a JSONL log, invoking fn for
// every decoded line in file order. It is the inverse of the JSONL
// exporter: a log the exporter wrote decodes without loss, and
// re-encoding the decoded events with WriteEvents reproduces the log
// byte-for-byte. Job-trace lines interleaved in the same log are skipped;
// use DecodeLog to receive both streams.
func DecodeEvents(r io.Reader, fn func(LoggedEvent) error) error {
	return DecodeLog(r, fn, nil)
}

// DecodeLog streams a mixed JSONL log, dispatching plain engine-event
// lines to onEvent and job-trace lines (schema "delaystage/trace/v1") to
// onTrace, each in file order. A nil callback skips that line class.
// Blank lines are skipped; a malformed line, an unknown kind or schema,
// or a missing/non-finite timestamp aborts with an error naming the line
// number. A callback returning an error stops the stream with that error.
func DecodeLog(r io.Reader, onEvent func(LoggedEvent) error, onTrace func(Trace) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		// Cheap pre-check avoids a second parse of plain event lines (the
		// encoder never emits a "schema" field on them); a false positive
		// — e.g. the substring inside a detail string — just means the
		// probe parse runs and finds no schema.
		if bytes.Contains(raw, []byte(`"schema"`)) {
			var probe struct {
				Schema string `json:"schema"`
			}
			if err := json.Unmarshal(raw, &probe); err != nil {
				return fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			if probe.Schema != "" {
				if probe.Schema != TraceSchema {
					return fmt.Errorf("obs: line %d: unknown schema %q", lineNo, probe.Schema)
				}
				if onTrace == nil {
					continue
				}
				var tr Trace
				if err := json.Unmarshal(raw, &tr); err != nil {
					return fmt.Errorf("obs: line %d: %w", lineNo, err)
				}
				if tr.TraceID == "" {
					return fmt.Errorf("obs: line %d: trace line missing trace_id", lineNo)
				}
				if err := onTrace(tr); err != nil {
					return err
				}
				continue
			}
		}
		if onEvent == nil {
			continue
		}
		var ln jsonlLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if ln.Kind == "" {
			return fmt.Errorf("obs: line %d: missing kind", lineNo)
		}
		kind, ok := kindByName[ln.Kind]
		if !ok {
			return fmt.Errorf("obs: line %d: unknown kind %q", lineNo, ln.Kind)
		}
		if ln.T == nil || math.IsNaN(*ln.T) || math.IsInf(*ln.T, 0) {
			return fmt.Errorf("obs: line %d: missing or non-finite timestamp", lineNo)
		}
		le := LoggedEvent{Run: -1, Event: sim.Event{
			T: *ln.T, Kind: kind, Job: -1, Stage: -1, Node: -1,
			Attempt: ln.Attempt, Delay: ln.Delay, Prefetch: ln.Prefetch,
			Detail: ln.Detail,
		}}
		if ln.Run != nil {
			le.Run = *ln.Run
		}
		if ln.Job != nil {
			le.Event.Job = *ln.Job
		}
		if ln.Stage != nil {
			le.Event.Stage = dag.StageID(*ln.Stage)
		}
		if ln.Node != nil {
			le.Event.Node = *ln.Node
		}
		if err := onEvent(le); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: line %d: %w", lineNo+1, err)
	}
	return nil
}

// ReadEvents decodes a whole JSONL event log into memory. See
// DecodeEvents for the streaming form and the error contract.
func ReadEvents(r io.Reader) ([]LoggedEvent, error) {
	var out []LoggedEvent
	err := DecodeEvents(r, func(le LoggedEvent) error {
		out = append(out, le)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteEvents re-encodes decoded events with the JSONL exporter,
// honouring each event's run label. ReadEvents∘WriteEvents is the
// identity on encoder output, byte-for-byte.
func WriteEvents(w io.Writer, evs []LoggedEvent) error {
	l := NewJSONL(w)
	for _, le := range evs {
		l.Run = le.Run
		l.OnEvent(le.Event)
	}
	return l.Flush()
}

// EventsOfRun filters a decoded log to one run label (use -1 for logs
// without labels) and strips the labels, yielding the plain event stream
// an attribution pass consumes.
func EventsOfRun(evs []LoggedEvent, run int) []sim.Event {
	var out []sim.Event
	for _, le := range evs {
		if le.Run == run {
			out = append(out, le.Event)
		}
	}
	return out
}

// Runs returns the distinct run labels present in a decoded log, in
// first-appearance order.
func Runs(evs []LoggedEvent) []int {
	seen := map[int]bool{}
	var out []int
	for _, le := range evs {
		if !seen[le.Run] {
			seen[le.Run] = true
			out = append(out, le.Run)
		}
	}
	return out
}
