package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the daemons and batch commands: one JSON object
// per line (the same machine-greppable discipline as the JSONL event
// logs), leveled through a shared -log-level flag. Library code takes a
// *slog.Logger and treats nil as "discard"; the binaries build one here
// and stamp trace/span identifiers on every service log line.

// ParseLogLevel maps a -log-level flag value to a slog level. The empty
// string means info.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger returns a JSON-handler logger writing to w at the given
// level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// DiscardLogger returns a logger that drops everything — the default for
// library code when no logger is injected.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127), // above every real level: never enabled
	}))
}
