package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Live introspection: a tiny HTTP server any long-running command can
// hang off a -serve flag. Endpoints:
//
//	/metrics       Prometheus text exposition of a Registry
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard runtime profiles (CPU, heap, goroutine…)
//
// The server shares the process with the simulation but touches it only
// through Registry values, so serving never perturbs a run.

// NewIntrospectionMux builds the endpoint mux for reg. It is exported
// separately from Serve so tests can drive it with httptest.
func NewIntrospectionMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// An isolated mux gets no profiles for free; wire the standard ones.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	// Addr is the bound address, with the real port when ":0" was asked.
	Addr string
	srv  *http.Server
}

// Serve binds addr (e.g. ":9090", "localhost:0") and serves reg's
// introspection endpoints in a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: introspection listen: %w", err)
	}
	srv := &http.Server{Handler: NewIntrospectionMux(reg)}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
