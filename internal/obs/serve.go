package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Live introspection: a tiny HTTP server any long-running command can
// hang off a -serve flag. Endpoints:
//
//	/metrics       Prometheus text exposition of a Registry
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard runtime profiles (CPU, heap, goroutine…)
//
// The server shares the process with the simulation but touches it only
// through Registry values, so serving never perturbs a run.

// NewIntrospectionMux builds the endpoint mux for reg. It is exported
// separately from Serve so tests can drive it with httptest.
func NewIntrospectionMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// An isolated mux gets no profiles for free; wire the standard ones.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	// Addr is the bound address, with the real port when ":0" was asked.
	Addr string
	srv  *http.Server
	done chan error
}

// Serve binds addr (e.g. ":9090", "localhost:0") and serves reg's
// introspection endpoints in a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, NewIntrospectionMux(reg))
}

// ServeHandler is Serve for an arbitrary handler: the scheduler daemon
// layers its job API on top of the introspection mux and serves both
// through one Server. The http.Server carries a header-read timeout so a
// client that opens a connection and never finishes its headers
// (slowloris) cannot pin a goroutine forever.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: introspection listen: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	s := &Server{Addr: ln.Addr().String(), srv: srv, done: make(chan error, 1)}
	go func() {
		// Serve's error used to be dropped on the floor; surface it. A
		// Close-triggered exit is the expected shutdown, not an error.
		err := srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.done <- err
		close(s.done)
	}()
	return s, nil
}

// Done reports the background serve goroutine's exit: it yields nil after
// a clean Close, or the serve error if the listener failed. Long-running
// daemons select on it next to their signal context so a dying endpoint
// is noticed instead of silently gone.
func (s *Server) Done() <-chan error { return s.done }

// Close shuts the server down, waiting briefly for in-flight scrapes. It
// propagates shutdown errors, and any error the serve loop exited with.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if serr := <-s.done; serr != nil && err == nil {
		err = serr
	}
	return err
}
