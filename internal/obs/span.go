package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceSchema identifies the job-lifecycle trace line format. Trace lines
// share the JSONL event logs (one object per line, distinguished by this
// "schema" field), so a single -events file carries both the raw engine
// event stream and the per-job span trees. Bump only on incompatible
// changes; adding optional fields is compatible.
const TraceSchema = "delaystage/trace/v1"

// Trace is the complete lifecycle of one job through the scheduling
// service: a small span tree from submission to terminal state, frozen
// exactly once when the job reaches done/failed/rejected. The encoding is
// deterministic — a given job record renders byte-identically whether
// served live from /v1/trace/{id} or reconstructed offline by cmd/analyze
// from the exported JSONL line.
type Trace struct {
	Schema  string `json:"schema"`
	TraceID string `json:"trace_id"`
	Job     string `json:"job,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	State   string `json:"state"`
	Epoch   int    `json:"epoch"`
	Spans   []Span `json:"spans"`
}

// Span is one phase of a job's lifecycle. IDs are dense indices into
// Trace.Spans (span i has ID i); Parent is the ID of the enclosing span,
// -1 for the root. Start/End are simulation seconds. A span still running
// when the trace was built carries Open=true and a provisional End (the
// data-plane clock at build time); frozen traces have no open spans.
type Span struct {
	ID     int            `json:"id"`
	Parent int            `json:"parent"`
	Kind   string         `json:"kind"`
	Name   string         `json:"name"`
	Start  float64        `json:"start"`
	End    float64        `json:"end"`
	Open   bool           `json:"open,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	Audit  *DecisionAudit `json:"audit,omitempty"`
}

// Span kinds. One trace has exactly one "job" root; the others hang off
// it: submit → admission → plan → queue → one "stage" span per DAG stage.
const (
	SpanJob       = "job"
	SpanSubmit    = "submit"
	SpanAdmission = "admission"
	SpanPlan      = "plan"
	SpanQueue     = "queue"
	SpanStage     = "stage"
)

// DecisionAudit records how the control plane arrived at a job's delay
// plan — attached to the trace's plan span. Exactly one of the three plan
// sources applies: "planner" (a cold Alg. 1 sweep), "template-cache" (a
// fingerprint hit validated against profile drift), or "queue-revision"
// (the queue-depth dispatch revision replaced the sweep).
type DecisionAudit struct {
	Source           string `json:"source"`
	Fingerprint      string `json:"fingerprint,omitempty"`
	QueueDepth       int    `json:"queue_depth"`
	CacheHit         bool   `json:"cache_hit,omitempty"`
	CacheInvalidated bool   `json:"cache_invalidated,omitempty"`

	// Alg. 1 search-space shape for "planner" plans: how many objective
	// evaluations ran (incumbent baseline included), over how many
	// delay-eligible stages and execution paths.
	Evaluations    int `json:"evaluations,omitempty"`
	ParallelStages int `json:"parallel_stages,omitempty"`
	Paths          int `json:"paths,omitempty"`

	// Two-tier scan telemetry for "planner" plans: Bounded candidates
	// received an analytic makespan lower bound, Pruned were eliminated
	// by it before any simulation, and ExactEvals/ApproxEvals split how
	// the surviving candidates were answered (full simulation vs the
	// bound surrogate of approximate-planning mode).
	Bounded     int `json:"bounded,omitempty"`
	Pruned      int `json:"pruned,omitempty"`
	ExactEvals  int `json:"exact_evals,omitempty"`
	ApproxEvals int `json:"approx_evals,omitempty"`

	// IncumbentTotal is the submit-when-ready baseline (Σ JCT over the
	// committed jobs plus the newcomer at nil delays); ChosenTotal is the
	// committed plan's value of the same objective.
	IncumbentTotal float64 `json:"incumbent_total,omitempty"`
	ChosenTotal    float64 `json:"chosen_total,omitempty"`

	// Fallback names the guard that discarded or replaced the sweep's
	// delays: "never-worse" when the sweep never beat the incumbent, or
	// "queue-depth" when the dispatch revision zeroed the plan. Empty when
	// the chosen delays stand as computed.
	Fallback string `json:"fallback,omitempty"`

	// Delays is the committed per-stage delay vector, keyed by stage ID
	// (as a string, so the JSON object round-trips deterministically —
	// encoding/json sorts object keys). Empty = submit-when-ready.
	Delays map[string]float64 `json:"delays,omitempty"`

	// WallSeconds is the wall-clock planning latency. It is the one
	// nondeterministic field in a trace: recorded once at plan time and
	// carried verbatim through every export path thereafter.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// EncodeTraceJSON writes tr as indented JSON — the exact rendering the
// service's HTTP layer uses for GET /v1/trace/{id}, so offline
// reconstruction (cmd/analyze -trace) is byte-comparable against a live
// fetch.
func EncodeTraceJSON(w io.Writer, tr Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}

// WriteTraceLine appends tr to a JSONL log as one compact line. The
// "schema" field marks it so DecodeEvents skips it and DecodeLog/ReadTraces
// pick it up.
func WriteTraceLine(w io.Writer, tr Trace) error {
	tr.Schema = TraceSchema
	b, err := json.Marshal(tr)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTraces decodes every trace line in a mixed JSONL log, in file
// order, skipping plain event lines. See DecodeLog for the error
// contract.
func ReadTraces(r io.Reader) ([]Trace, error) {
	var out []Trace
	err := DecodeLog(r, nil, func(tr Trace) error {
		out = append(out, tr)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FindTrace returns the trace with the given ID, or false. Later lines
// win, matching "last write freezes the record" service semantics (in
// practice each job is exported exactly once).
func FindTrace(traces []Trace, id string) (Trace, bool) {
	for i := len(traces) - 1; i >= 0; i-- {
		if traces[i].TraceID == id {
			return traces[i], true
		}
	}
	return Trace{}, false
}

// WriteTraceChrome renders a job trace as a Chrome trace-event file (one
// thread track per span under a single process), loadable in
// chrome://tracing or https://ui.perfetto.dev. Closed spans become
// complete ("X") slices; instant spans and open spans become instant
// ("i") markers. Output is deterministic for a given trace.
func WriteTraceChrome(w io.Writer, tr Trace) error {
	var evs []chromeEvent
	procName := tr.TraceID
	if tr.Job != "" {
		procName += " " + tr.Job
	}
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": procName},
	})
	for _, sp := range tr.Spans {
		tid := sp.ID + 1
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": sp.Name},
		})
		args := spanArgs(sp)
		if sp.End > sp.Start && !sp.Open {
			evs = append(evs, chromeEvent{
				Name: sp.Name, Ph: "X", Ts: sp.Start * usec,
				Dur: (sp.End - sp.Start) * usec, Pid: 0, Tid: tid,
				Cat: sp.Kind, Args: args,
			})
		} else {
			evs = append(evs, chromeEvent{
				Name: sp.Name, Ph: "i", Ts: sp.Start * usec, Pid: 0,
				Tid: tid, Cat: sp.Kind, S: "t", Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// spanArgs flattens a span's attributes (and the audit's headline fields)
// into Chrome trace args. encoding/json sorts the keys, so the map is
// deterministic on the wire.
func spanArgs(sp Span) map[string]any {
	args := map[string]any{}
	for k, v := range sp.Attrs {
		args[k] = v
	}
	if a := sp.Audit; a != nil {
		args["source"] = a.Source
		if a.Fallback != "" {
			args["fallback"] = a.Fallback
		}
		if a.Evaluations > 0 {
			args["evaluations"] = a.Evaluations
		}
		if len(a.Delays) > 0 {
			keys := make([]string, 0, len(a.Delays))
			for k := range a.Delays {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			s := ""
			for i, k := range keys {
				if i > 0 {
					s += " "
				}
				s += fmt.Sprintf("S%s=%g", k, a.Delays[k])
			}
			args["delays"] = s
		}
	}
	if len(args) == 0 {
		return nil
	}
	return args
}
