package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"delaystage/internal/sim"
)

// Schema identifiers for the JSON summary artifacts. The promise: fields
// are only ever added, never renamed or removed, within a major version;
// incompatible changes bump the /vN suffix.
const (
	RunSummarySchema         = "delaystage/run-summary/v1"
	ExperimentsSummarySchema = "delaystage/experiments-summary/v1"
)

// StageSummary is one stage's timeline in a RunSummary.
type StageSummary struct {
	Job           int     `json:"job"`
	Stage         int     `json:"stage"`
	ReadySec      float64 `json:"ready_sec"`
	StartSec      float64 `json:"start_sec"`
	ReadEndSec    float64 `json:"read_end_sec"`
	ComputeEndSec float64 `json:"compute_end_sec"`
	EndSec        float64 `json:"end_sec"`
	Retries       int     `json:"retries,omitempty"`
}

// RunSummary is the stable-schema, machine-readable twin of the text
// output of cmd/simulate: JCTs, utilizations, retry counts and per-stage
// timelines of one sim.Run.
type RunSummary struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Nodes    int    `json:"nodes,omitempty"`

	JCTSeconds      []float64 `json:"jct_seconds"`
	MakespanSeconds float64   `json:"makespan_seconds"`
	AvgCPUUtil      float64   `json:"avg_cpu_util"`
	AvgNetUtil      float64   `json:"avg_net_util"`
	AvgDiskUtil     float64   `json:"avg_disk_util"`
	AvgNetRateBps   float64   `json:"avg_net_rate_bps"`
	SimEvents       int       `json:"sim_events"`
	Retries         int       `json:"retries"`
	// Mitigation counters; omitted when the run had speculation and
	// blacklisting off (the schema-stable zero).
	SpecLaunched int `json:"spec_launched,omitempty"`
	SpecWins     int `json:"spec_wins,omitempty"`
	Blacklisted  int `json:"blacklisted_nodes,omitempty"`
	// JobErrors[i] is the failure text of job i, or "" if it completed.
	JobErrors []string       `json:"job_errors,omitempty"`
	Stages    []StageSummary `json:"stages"`
}

// NewRunSummary builds a RunSummary from a finished run. Workload,
// Strategy and Nodes are left for the caller to fill.
func NewRunSummary(res *sim.Result) *RunSummary {
	s := &RunSummary{
		Schema:          RunSummarySchema,
		MakespanSeconds: res.Makespan,
		AvgCPUUtil:      res.AvgCPUUtil,
		AvgNetUtil:      res.AvgNetUtil,
		AvgDiskUtil:     res.AvgDiskUtil,
		AvgNetRateBps:   res.AvgNetRate,
		SimEvents:       res.Events,
		Retries:         res.Retries,
		SpecLaunched:    res.SpecLaunched,
		SpecWins:        res.SpecWins,
		Blacklisted:     res.Blacklisted,
	}
	for i := range res.JobEnd {
		s.JCTSeconds = append(s.JCTSeconds, res.JCT(i))
	}
	for _, err := range res.JobErrors {
		if err != nil {
			s.JobErrors = make([]string, len(res.JobErrors))
			for i, e := range res.JobErrors {
				if e != nil {
					s.JobErrors[i] = e.Error()
				}
			}
			break
		}
	}
	for _, tl := range res.Timelines {
		s.Stages = append(s.Stages, StageSummary{
			Job: tl.JobIndex, Stage: int(tl.Stage),
			ReadySec: tl.Ready, StartSec: tl.Start, ReadEndSec: tl.ReadEnd,
			ComputeEndSec: tl.ComputeEnd, EndSec: tl.End, Retries: tl.Retries,
		})
	}
	return s
}

// ExperimentsSummary wraps the typed results of an experiments run —
// the machine-readable twin of cmd/experiments' text tables. Results maps
// the registry name (fig10, table3, ...) to that experiment's typed
// result struct; JSON object keys are emitted sorted, so output is
// deterministic.
type ExperimentsSummary struct {
	Schema  string         `json:"schema"`
	Config  map[string]any `json:"config,omitempty"`
	Results map[string]any `json:"results"`
}

// NewExperimentsSummary returns an empty summary ready to collect
// results.
func NewExperimentsSummary(config map[string]any) *ExperimentsSummary {
	return &ExperimentsSummary{
		Schema:  ExperimentsSummarySchema,
		Config:  config,
		Results: map[string]any{},
	}
}

// WriteJSON writes v as indented JSON to path; "-" means stdout.
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal %s: %w", path, err)
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
