package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/faults"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedRun executes the reference run all golden files are pinned to: ALS
// at 0.2 scale on 3 nodes with hand-picked delays.
func fixedRun(t *testing.T, o sim.Observer) *sim.Result {
	t.Helper()
	c := cluster.NewM4LargeCluster(3)
	job := workload.ALS(c, 0.2)
	delays := map[dag.StageID]float64{2: 5, 3: 2.5}
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: 0, TrackCluster: true, Observer: o},
		[]sim.JobRun{{Job: job, Delays: delays}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; if intentional, re-run with -update\ngot:\n%s", name, got)
	}
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	fixedRun(t, l)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.golden.jsonl", buf.Bytes())

	// Every line must be valid JSON with monotonically non-decreasing t.
	last := -1.0
	n := 0
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var rec struct {
			T    float64 `json:"t"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if rec.Kind == "" {
			t.Fatalf("line without kind: %q", line)
		}
		if rec.T < last {
			t.Fatalf("timestamps went backwards at %q", line)
		}
		last = rec.T
		n++
	}
	if n == 0 {
		t.Fatal("empty event log")
	}
}

func TestChromeTraceGolden(t *testing.T) {
	ct := NewChromeTracer()
	res := fixedRun(t, ct)
	ct.AddCounters(res)
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	procs := map[string]bool{}
	var slices, counters int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs[ev.Args["name"].(string)] = true
			}
		case "X":
			slices++
		case "C":
			counters++
		}
	}
	for _, want := range []string{"cluster", "node 0", "node 1", "node 2"} {
		if !procs[want] {
			t.Errorf("missing process track %q (have %v)", want, procs)
		}
	}
	if slices == 0 {
		t.Error("no phase slices")
	}
	if counters == 0 {
		t.Error("no counter events")
	}
}

// TestJSONLDeterministicAcrossParallelism: the event log must be
// byte-identical whether the planner scanned candidates with 1 or 8
// goroutines.
func TestJSONLDeterministicAcrossParallelism(t *testing.T) {
	logFor := func(par int) []byte {
		c := cluster.NewM4LargeCluster(5)
		job := workload.PaperWorkloads(c, 0.3)["LDA"]
		plan, err := scheduler.DelayStage{Parallelism: par}.Plan(c, job)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		l := NewJSONL(&buf)
		if _, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, Observer: l},
			[]sim.JobRun{{Job: job, Delays: plan.Delays}}); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := logFor(1), logFor(8)
	if !bytes.Equal(a, b) {
		t.Error("event log depends on planner parallelism")
	}
	if len(a) == 0 {
		t.Fatal("empty event log")
	}
}

// TestJSONLDeterministicUnderFaults: identical fault plans must replay to
// byte-identical event logs, including retries and the crash.
func TestJSONLDeterministicUnderFaults(t *testing.T) {
	logOnce := func() []byte {
		c := cluster.NewM4LargeCluster(5)
		job := workload.PaperWorkloads(c, 0.3)["LDA"]
		inj, err := faults.NewInjector(faults.FaultPlan{
			Seed: 11, TaskFailureProb: 0.08,
			Crashes: []faults.NodeCrash{{Node: 1, At: 30}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		l := NewJSONL(&buf)
		if _, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, Faults: inj,
			MaxAttempts: 8, Observer: l}, []sim.JobRun{{Job: job}}); err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := logOnce(), logOnce()
	if !bytes.Equal(a, b) {
		t.Error("fault replay produced different event logs")
	}
	if !bytes.Contains(a, []byte(`"kind":"node_crash"`)) {
		t.Error("expected a node_crash event in the log")
	}
	if !bytes.Contains(a, []byte(`"kind":"task_retry"`)) {
		t.Error("expected task_retry events in the log")
	}
}

func TestMultiComposition(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of nothing must be nil")
	}
	// Typed nils (an exporter that was never constructed) must be dropped
	// too, not dispatched on.
	var ct *ChromeTracer
	var jl *JSONL
	if got := Multi(ct, jl); got != nil {
		t.Error("Multi kept typed-nil observers")
	}
	var a, b int
	fa := Func(func(sim.Event) { a++ })
	if got := Multi(nil, fa); got == nil {
		t.Error("Multi(nil, x) dropped x")
	} else {
		got.OnEvent(sim.Event{})
		if a != 1 {
			t.Error("single observer not invoked")
		}
	}
	m := Multi(fa, Func(func(sim.Event) { b++ }))
	m.OnEvent(sim.Event{})
	if a != 2 || b != 1 {
		t.Errorf("fan-out miscounted: a=%d b=%d", a, b)
	}
}

func TestRunSummarySchema(t *testing.T) {
	res := fixedRun(t, nil)
	sum := NewRunSummary(res)
	sum.Workload, sum.Strategy, sum.Nodes = "ALS", "manual", 3
	raw, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != RunSummarySchema {
		t.Errorf("schema = %v", m["schema"])
	}
	for _, key := range []string{"jct_seconds", "makespan_seconds", "avg_cpu_util", "sim_events", "stages"} {
		if _, ok := m[key]; !ok {
			t.Errorf("summary missing %q", key)
		}
	}
	if len(sum.Stages) == 0 {
		t.Fatal("no stage summaries")
	}
	if sum.MakespanSeconds <= 0 || sum.JCTSeconds[0] <= 0 {
		t.Error("non-positive durations in summary")
	}
}
