package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"delaystage/internal/dag"
	"delaystage/internal/sim"
)

// ChromeTracer accumulates simulator events into the Chrome trace-event
// format (the JSON object understood by chrome://tracing and Perfetto's
// https://ui.perfetto.dev).
//
// Track layout:
//
//   - pid 0 ("cluster") carries counter tracks (CPU busy fraction,
//     network and disk rates, from AddCounters) and instant markers for
//     watchdog delay revisions.
//   - pid w+1 ("node w") is one process per cluster node; each stage
//     partition that ran on the node gets a thread track with up to three
//     slices — "S<id> read", "S<id> compute" (from data-ready to compute
//     end, so prefetch wait time is included), "S<id> write" (ending at
//     that node's write completion) — plus instant markers for task
//     retries and the node's crash.
//
// Timestamps are simulation seconds converted to trace microseconds.
// Event accumulation and serialization are deterministic: a given run
// produces byte-identical trace files.
type ChromeTracer struct {
	// Run labels slices when several sim runs share one trace (cmd/replay
	// sets it between runs); -1 (default) for single-run traces.
	Run int

	events []chromeEvent
	tracks map[trackKey]*stageTrack
	tids   map[tidKey]int
	nextT  int
	pids   map[int]bool
}

type trackKey struct {
	run, job int
	stage    dag.StageID
}

type tidKey struct {
	run, job int
	stage    dag.StageID
	node     int
}

// stageTrack buffers one stage's per-node transition times until the
// stage completes and its slices can be emitted.
type stageTrack struct {
	submit      float64
	prefetch    bool
	readDone    []float64 // per node, -1 = not seen
	computeDone []float64
	writeDone   []float64
}

// chromeEvent is one trace-event JSON object. Field order is the fixed
// serialization order.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeTracer returns an empty tracer; attach it via
// sim.Options.Observer, then Write the collected trace.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{
		Run:    -1,
		tracks: map[trackKey]*stageTrack{},
		tids:   map[tidKey]int{},
		nextT:  1,
		pids:   map[int]bool{},
	}
}

// SetRun sets the run label applied to subsequent slices (RunLabeled).
func (c *ChromeTracer) SetRun(run int) { c.Run = run }

const usec = 1e6 // seconds → trace microseconds

// pidOf maps a node index to its process track, registering the
// process_name metadata on first use. Node -1 is the cluster process.
func (c *ChromeTracer) pidOf(node int) int {
	pid := node + 1
	if !c.pids[pid] {
		c.pids[pid] = true
		name := "cluster"
		if node >= 0 {
			name = fmt.Sprintf("node %d", node)
		}
		c.events = append(c.events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	return pid
}

// tidOf maps one stage partition to its thread track within the node's
// process, registering thread_name metadata on first use.
func (c *ChromeTracer) tidOf(job int, stage dag.StageID, node int) int {
	k := tidKey{c.Run, job, stage, node}
	tid, ok := c.tids[k]
	if !ok {
		tid = c.nextT
		c.nextT++
		c.tids[k] = tid
		name := fmt.Sprintf("job %d stage %d", job, stage)
		if c.Run >= 0 {
			name = fmt.Sprintf("run %d %s", c.Run, name)
		}
		c.events = append(c.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: c.pidOf(node), Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	return tid
}

func (c *ChromeTracer) track(job int, stage dag.StageID) *stageTrack {
	k := trackKey{c.Run, job, stage}
	tr := c.tracks[k]
	if tr == nil {
		tr = &stageTrack{}
		c.tracks[k] = tr
	}
	return tr
}

// setNode grows a per-node time slice as nodes appear and records t.
func setNode(s *[]float64, node int, t float64) {
	for len(*s) <= node {
		*s = append(*s, -1)
	}
	(*s)[node] = t
}

// OnEvent implements sim.Observer.
func (c *ChromeTracer) OnEvent(ev sim.Event) {
	switch ev.Kind {
	case sim.EvStageSubmitted:
		tr := c.track(ev.Job, ev.Stage)
		tr.submit = ev.T
		tr.prefetch = ev.Prefetch
	case sim.EvReadDone:
		setNode(&c.track(ev.Job, ev.Stage).readDone, ev.Node, ev.T)
	case sim.EvComputeDone:
		setNode(&c.track(ev.Job, ev.Stage).computeDone, ev.Node, ev.T)
	case sim.EvWriteDone:
		setNode(&c.track(ev.Job, ev.Stage).writeDone, ev.Node, ev.T)
	case sim.EvStageCompleted:
		c.flushStage(ev.Job, ev.Stage, ev.T)
	case sim.EvTaskRetry:
		c.events = append(c.events, chromeEvent{
			Name: fmt.Sprintf("retry S%d attempt %d", ev.Stage, ev.Attempt),
			Ph:   "i", Ts: ev.T * usec, Pid: c.pidOf(ev.Node),
			Tid: c.tidOf(ev.Job, ev.Stage, ev.Node), Cat: "fault", S: "t",
			Args: map[string]any{"backoff_s": ev.Delay, "job": ev.Job},
		})
	case sim.EvNodeCrash:
		c.events = append(c.events, chromeEvent{
			Name: "node crash", Ph: "i", Ts: ev.T * usec,
			Pid: c.pidOf(ev.Node), Cat: "fault", S: "p",
		})
	case sim.EvDelayRevised:
		c.events = append(c.events, chromeEvent{
			Name: fmt.Sprintf("delay revised S%d", ev.Stage), Ph: "i",
			Ts: ev.T * usec, Pid: c.pidOf(-1), Cat: "watchdog", S: "p",
			Args: map[string]any{"job": ev.Job, "delay_s": ev.Delay},
		})
	}
}

// flushStage emits the per-node read/compute/write slices of a completed
// stage. Nodes are iterated in index order, so output is deterministic.
func (c *ChromeTracer) flushStage(job int, stage dag.StageID, end float64) {
	k := trackKey{c.Run, job, stage}
	tr := c.tracks[k]
	if tr == nil {
		return
	}
	delete(c.tracks, k)
	args := map[string]any{"job": job}
	if tr.prefetch {
		args["prefetch"] = true
	}
	for node := 0; node < len(tr.readDone); node++ {
		rd := tr.readDone[node]
		if rd < 0 {
			continue
		}
		pid, tid := c.pidOf(node), c.tidOf(job, stage, node)
		c.events = append(c.events, chromeEvent{
			Name: fmt.Sprintf("S%d read", stage), Ph: "X",
			Ts: tr.submit * usec, Dur: (rd - tr.submit) * usec,
			Pid: pid, Tid: tid, Cat: "read", Args: args,
		})
		cd := end
		if node < len(tr.computeDone) && tr.computeDone[node] >= 0 {
			cd = tr.computeDone[node]
		}
		c.events = append(c.events, chromeEvent{
			Name: fmt.Sprintf("S%d compute", stage), Ph: "X",
			Ts: rd * usec, Dur: (cd - rd) * usec,
			Pid: pid, Tid: tid, Cat: "compute", Args: args,
		})
		wd := end
		if node < len(tr.writeDone) && tr.writeDone[node] >= 0 {
			wd = tr.writeDone[node]
		}
		c.events = append(c.events, chromeEvent{
			Name: fmt.Sprintf("S%d write", stage), Ph: "X",
			Ts: cd * usec, Dur: (wd - cd) * usec,
			Pid: pid, Tid: tid, Cat: "write", Args: args,
		})
	}
}

// AddCounters appends per-resource counter tracks from a finished run's
// tracked usage series: the cluster-wide series when TrackCluster was on,
// and the tracked node's series when TrackNode was set. Call it once,
// after sim.Run returns.
func (c *ChromeTracer) AddCounters(res *sim.Result) {
	c.addCounterSeries("cluster CPU busy", res.Cluster.CPUBusy)
	c.addCounterSeries("cluster net B/s", res.Cluster.NetRate)
	c.addCounterSeries("cluster disk B/s", res.Cluster.DiskRate)
	c.addCounterSeries("tracked-node CPU busy", res.Node.CPUBusy)
	c.addCounterSeries("tracked-node net B/s", res.Node.NetRate)
	c.addCounterSeries("tracked-node disk B/s", res.Node.DiskRate)
}

func (c *ChromeTracer) addCounterSeries(name string, s sim.Series) {
	pid := c.pidOf(-1)
	for _, p := range s {
		c.events = append(c.events, chromeEvent{
			Name: name, Ph: "C", Ts: p.T * usec, Pid: pid,
			Args: map[string]any{"value": p.V},
		})
	}
}

// Write serializes the trace as a JSON object. Incomplete stages (failed
// jobs, aborted runs) simply have no slices; everything collected so far
// is written.
func (c *ChromeTracer) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: c.events, DisplayTimeUnit: "ms"})
}
