package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleTraces builds one rich trace (every span kind, audit, mixed attr
// types) and one minimal rejected trace — the fixtures for the golden and
// round-trip tests.
func sampleTraces() []Trace {
	done := Trace{
		Schema: TraceSchema, TraceID: "job-1", Job: "als", Tenant: "ci",
		State: "done", Epoch: 2,
		Spans: []Span{
			{ID: 0, Parent: -1, Kind: SpanJob, Name: "job job-1", Start: 0, End: 131.5,
				Attrs: map[string]any{"stages": 4}},
			{ID: 1, Parent: 0, Kind: SpanSubmit, Name: "submit", Start: 0, End: 0.5,
				Attrs: map[string]any{"clamped": true, "requested": 0.0}},
			{ID: 2, Parent: 0, Kind: SpanAdmission, Name: "admission", Start: 0.5, End: 0.5,
				Attrs: map[string]any{"accepted": true, "policy": "accept-all", "queue_depth": 1}},
			{ID: 3, Parent: 0, Kind: SpanPlan, Name: "plan", Start: 0.5, End: 0.5,
				Audit: &DecisionAudit{
					Source: "planner", Fingerprint: "fp:abc", QueueDepth: 1,
					Evaluations: 13, ParallelStages: 2, Paths: 3,
					IncumbentTotal: 140.25, ChosenTotal: 131.5,
					Delays:      map[string]float64{"2": 5, "3": 2.5},
					WallSeconds: 0.0125,
				}},
			{ID: 4, Parent: 0, Kind: SpanQueue, Name: "queue", Start: 0.5, End: 0.5,
				Attrs: map[string]any{"wait_seconds": 0.0}},
			{ID: 5, Parent: 0, Kind: SpanStage, Name: "stage 0", Start: 0.5, End: 60,
				Attrs: map[string]any{"submitted": 0.5}},
			{ID: 6, Parent: 0, Kind: SpanStage, Name: "stage 2", Start: 60, End: 131.5, Open: false,
				Attrs: map[string]any{"delay": 5.0, "parents": "0", "retries": 2, "submitted": 65.0}},
		},
	}
	rejected := Trace{
		Schema: TraceSchema, TraceID: "job-2", Tenant: "bulk",
		State: "rejected", Epoch: 2,
		Spans: []Span{
			{ID: 0, Parent: -1, Kind: SpanJob, Name: "job job-2", Start: 3, End: 3},
			{ID: 1, Parent: 0, Kind: SpanSubmit, Name: "submit", Start: 3, End: 3},
			{ID: 2, Parent: 0, Kind: SpanAdmission, Name: "admission", Start: 3, End: 3,
				Attrs: map[string]any{"accepted": false, "policy": "queue-cap", "reason": "queue full"}},
		},
	}
	return []Trace{done, rejected}
}

// TestTraceGolden pins the JSONL trace-line encoding and proves the
// decode→re-encode fixed point: reading the golden log back and writing
// it again reproduces the bytes exactly (the property cmd/analyze's
// offline reconstruction relies on).
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, tr := range sampleTraces() {
		if err := WriteTraceLine(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "traces.golden.jsonl", buf.Bytes())

	traces, err := ReadTraces(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("decoded %d traces, want 2", len(traces))
	}
	var again bytes.Buffer
	for _, tr := range traces {
		if err := WriteTraceLine(&again, tr); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("ReadTraces∘WriteTraceLine is not the identity:\nfirst:\n%s\nsecond:\n%s",
			buf.Bytes(), again.Bytes())
	}
}

// TestTraceLiveOfflineParity is the core determinism contract of the
// tracing layer: rendering a trace with EncodeTraceJSON (the live
// /v1/trace encoding) must be byte-identical whether the input is the
// original in-memory value or the decoded JSONL export.
func TestTraceLiveOfflineParity(t *testing.T) {
	for _, tr := range sampleTraces() {
		var line bytes.Buffer
		if err := WriteTraceLine(&line, tr); err != nil {
			t.Fatal(err)
		}
		traces, err := ReadTraces(bytes.NewReader(line.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var live, offline bytes.Buffer
		if err := EncodeTraceJSON(&live, tr); err != nil {
			t.Fatal(err)
		}
		if err := EncodeTraceJSON(&offline, traces[0]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(live.Bytes(), offline.Bytes()) {
			t.Errorf("trace %s: live and offline renderings differ:\nlive:\n%s\noffline:\n%s",
				tr.TraceID, live.Bytes(), offline.Bytes())
		}
	}
}

// TestDecodeLogMixed interleaves event and trace lines in one log and
// checks the dispatch: DecodeEvents sees only events, ReadTraces only
// traces, DecodeLog both in file order.
func TestDecodeLogMixed(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	fixedRun(t, l)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	eventLines := bytes.Count(buf.Bytes(), []byte("\n"))
	for _, tr := range sampleTraces() {
		if err := WriteTraceLine(&buf, tr); err != nil {
			t.Fatal(err)
		}
	}

	evs, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != eventLines {
		t.Errorf("ReadEvents on mixed log: %d events, want %d", len(evs), eventLines)
	}
	traces, err := ReadTraces(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 || traces[0].TraceID != "job-1" || traces[1].TraceID != "job-2" {
		t.Errorf("ReadTraces on mixed log: got %+v", traces)
	}
	var nev, ntr int
	err = DecodeLog(bytes.NewReader(buf.Bytes()),
		func(LoggedEvent) error { nev++; return nil },
		func(Trace) error { ntr++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if nev != eventLines || ntr != 2 {
		t.Errorf("DecodeLog: %d events / %d traces, want %d / 2", nev, ntr, eventLines)
	}

	if _, ok := FindTrace(traces, "job-2"); !ok {
		t.Error("FindTrace missed job-2")
	}
	if _, ok := FindTrace(traces, "nope"); ok {
		t.Error("FindTrace invented a trace")
	}
}

// TestDecodeLogRejectsUnknownSchema: a line claiming a schema we don't
// know must abort the decode rather than be silently dropped.
func TestDecodeLogRejectsUnknownSchema(t *testing.T) {
	in := strings.NewReader(`{"schema":"delaystage/other/v9","trace_id":"x"}` + "\n")
	if _, err := ReadTraces(in); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("want unknown-schema error, got %v", err)
	}
	in = strings.NewReader(`{"schema":"delaystage/trace/v1","spans":[]}` + "\n")
	if _, err := ReadTraces(in); err == nil || !strings.Contains(err.Error(), "trace_id") {
		t.Errorf("want missing trace_id error, got %v", err)
	}
}

// TestWriteTraceChrome sanity-checks the span-tree Chrome rendering:
// valid JSON, one thread per span, closed spans as complete slices and
// instant/open spans as markers, and deterministic bytes across calls.
func TestWriteTraceChrome(t *testing.T) {
	tr := sampleTraces()[0]
	var buf bytes.Buffer
	if err := WriteTraceChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var threads, slices, instants int
	var planArgs map[string]any
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threads++
			}
		case "X":
			slices++
		case "i":
			instants++
			if ev.Name == "plan" {
				planArgs = ev.Args
			}
		}
	}
	if threads != len(tr.Spans) {
		t.Errorf("thread tracks = %d, want %d", threads, len(tr.Spans))
	}
	// Zero-width spans (admission, plan, queue) render as instants.
	if slices == 0 || instants == 0 {
		t.Errorf("slices = %d, instants = %d; want both > 0", slices, instants)
	}
	if planArgs["source"] != "planner" || planArgs["delays"] != "S2=5 S3=2.5" {
		t.Errorf("plan span args = %v", planArgs)
	}

	var again bytes.Buffer
	if err := WriteTraceChrome(&again, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteTraceChrome is not deterministic")
	}
}
