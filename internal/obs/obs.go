// Package obs is the observability layer on top of the simulator's typed
// event stream (sim.Observer): pluggable, deterministic exporters that
// turn a run into machine-readable artifacts.
//
//   - JSONL: one JSON object per engine event, schema-stable, byte-
//     deterministic for a given run (suitable for golden files and diffs).
//   - ChromeTracer: a Chrome trace-event file (load in chrome://tracing or
//     https://ui.perfetto.dev) with one process track per node, one thread
//     per stage partition, instant markers for retries/crashes/delay
//     revisions, and counter tracks for CPU/network/disk usage.
//   - RunSummary / WriteJSON: stable-schema JSON summaries of sim results
//     and experiment tables — the machine-readable twin of the text output.
//
// Exporters are plain sim.Observer values; compose them with Multi and
// attach via sim.Options.Observer. A nil observer keeps the engine
// bit-identical to a build without the layer.
package obs

import (
	"bufio"
	"io"
	"reflect"
	"strconv"
	"unicode/utf8"

	"delaystage/internal/sim"
)

// JSONLSchema identifies the JSONL event-log line format. Bump only on
// incompatible changes; adding optional fields is compatible.
const JSONLSchema = "delaystage/events/v1"

// JSONL writes one JSON object per simulator event. Field order and float
// formatting are fixed, so the output for a given run is byte-identical
// across processes, platforms and -parallelism settings.
//
// Line schema (fields omitted when not applicable):
//
//	{"t":<sec>,"kind":"<EventKind>","run":<n>,"job":<n>,"stage":<n>,
//	 "node":<n>,"attempt":<n>,"delay":<sec>,"prefetch":true,
//	 "detail":"<text>"}
type JSONL struct {
	bw *bufio.Writer
	// Run is an optional run label included on every line when ≥ 0 —
	// callers replaying many sim runs into one log (cmd/replay) set it
	// between runs. Default -1: omitted.
	Run int
	buf []byte
}

// NewJSONL returns a JSONL exporter writing to w. Call Flush when done.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{bw: bufio.NewWriter(w), Run: -1}
}

// OnEvent implements sim.Observer.
func (l *JSONL) OnEvent(ev sim.Event) {
	b := l.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.T, 'g', -1, 64)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if l.Run >= 0 {
		b = append(b, `,"run":`...)
		b = strconv.AppendInt(b, int64(l.Run), 10)
	}
	if ev.Job >= 0 {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, int64(ev.Job), 10)
	}
	if ev.Stage >= 0 {
		b = append(b, `,"stage":`...)
		b = strconv.AppendInt(b, int64(ev.Stage), 10)
	}
	if ev.Node >= 0 {
		b = append(b, `,"node":`...)
		b = strconv.AppendInt(b, int64(ev.Node), 10)
	}
	if ev.Attempt > 0 {
		b = append(b, `,"attempt":`...)
		b = strconv.AppendInt(b, int64(ev.Attempt), 10)
	}
	if ev.Kind == sim.EvTaskRetry || ev.Kind == sim.EvDelayRevised {
		b = append(b, `,"delay":`...)
		b = strconv.AppendFloat(b, ev.Delay, 'g', -1, 64)
	}
	if ev.Prefetch {
		b = append(b, `,"prefetch":true`...)
	}
	if ev.Detail != "" {
		b = append(b, `,"detail":`...)
		b = appendJSONString(b, ev.Detail)
	}
	b = append(b, '}', '\n')
	l.buf = b
	l.bw.Write(b)
}

// appendJSONString appends s as a JSON string literal. Unlike
// strconv.AppendQuote (whose \x escapes are not valid JSON), the escaping
// here is strict JSON: quote, backslash and control characters are
// escaped, valid UTF-8 passes through verbatim, and invalid bytes become
// U+FFFD — so every emitted line parses with encoding/json and
// ReadEvents→WriteEvents round-trips encoder output byte-for-byte.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r == '\n':
			b = append(b, '\\', 'n')
		case r == '\r':
			b = append(b, '\\', 'r')
		case r == '\t':
			b = append(b, '\\', 't')
		case r < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[r>>4], hex[r&0xf])
		default:
			// Ranging over a string yields U+FFFD for invalid bytes, so
			// appending the rune re-encodes them as valid UTF-8.
			b = utf8.AppendRune(b, r)
		}
	}
	return append(b, '"')
}

// SetRun sets the run label stamped on subsequent lines (RunLabeled).
func (l *JSONL) SetRun(run int) { l.Run = run }

// Flush drains the internal buffer to the underlying writer.
func (l *JSONL) Flush() error { return l.bw.Flush() }

// multi fans events out to several observers in order.
type multi []sim.Observer

func (m multi) OnEvent(ev sim.Event) {
	for _, o := range m {
		o.OnEvent(ev)
	}
}

// multiShare is a fan-out that also forwards resource-share snapshots to
// the members that want them, preserving the ShareObserver extension
// through composition (the engine type-asserts Options.Observer once).
type multiShare struct {
	multi
	shares []sim.ShareObserver
}

func (m multiShare) OnShares(t, dt float64, samples []sim.ShareSample) {
	for _, o := range m.shares {
		o.OnShares(t, dt, samples)
	}
}

// Multi composes observers: nil for none, the observer itself for one, a
// fan-out for more. Nil entries are dropped — including typed nils like a
// `var t *ChromeTracer` that was never constructed, so call sites can pass
// optional exporters unconditionally. If any composed observer implements
// sim.ShareObserver, the fan-out does too.
func Multi(os ...sim.Observer) sim.Observer {
	var live []sim.Observer
	for _, o := range os {
		if o == nil {
			continue
		}
		if v := reflect.ValueOf(o); v.Kind() == reflect.Pointer && v.IsNil() {
			continue
		}
		live = append(live, o)
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	var shares []sim.ShareObserver
	for _, o := range live {
		if so, ok := o.(sim.ShareObserver); ok {
			shares = append(shares, so)
		}
	}
	if len(shares) > 0 {
		return multiShare{multi: multi(live), shares: shares}
	}
	return multi(live)
}

// Func adapts a plain function to sim.Observer — handy for inline event
// hooks in examples and tests.
type Func func(sim.Event)

// OnEvent implements sim.Observer.
func (f Func) OnEvent(ev sim.Event) { f(ev) }
