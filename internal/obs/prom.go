package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Registry is a minimal, dependency-free metric registry rendering the
// Prometheus text exposition format (version 0.0.4). It supports exactly
// what the introspection endpoints need — counters, gauges and
// fixed-bucket histograms, each optionally carrying a pre-rendered label
// suffix — and renders deterministically: families sorted by name, series
// sorted by label string, floats in shortest round-trip form.
//
// All methods are safe for concurrent use; experiment workers update
// metrics while an HTTP scrape renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          map[string]metric // label suffix ("" for none) → metric
}

// metric is the value cell behind a handle. Handles hold the registry
// lock while mutating, so the cells themselves need no atomics.
type metric interface {
	write(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help, typ string) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]metric{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// Counter is a monotonically increasing value.
type Counter struct {
	r *Registry
	v float64
}

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatProm(c.v))
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (which must be ≥ 0 to keep the counter monotonic).
func (c *Counter) Add(d float64) {
	c.r.mu.Lock()
	c.v += d
	c.r.mu.Unlock()
}

// Counter registers (or returns the existing) counter series. labels is
// either empty or a pre-rendered Prometheus label set including braces,
// e.g. `{strategy="spark"}`.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	if m, ok := f.series[labels]; ok {
		return m.(*Counter)
	}
	c := &Counter{r: r}
	f.series[labels] = c
	return c
}

// Gauge is a value that can go up and down.
type Gauge struct {
	r *Registry
	v float64
}

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatProm(g.v))
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.r.mu.Lock()
	g.v = v
	g.r.mu.Unlock()
}

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	g.r.mu.Lock()
	g.v += d
	g.r.mu.Unlock()
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	if m, ok := f.series[labels]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{r: r}
	f.series[labels] = g
	return g
}

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	r       *Registry
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []uint64  // per bound, non-cumulative
	inf     uint64
	sum     float64
	samples uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.r.mu.Lock()
	h.sum += v
	h.samples++
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx]++
	} else {
		h.inf++
	}
	h.r.mu.Unlock()
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	// Bucket series need "le" merged into any existing label set.
	open := "{"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, open, formatProm(b), cum)
	}
	cum += h.inf
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatProm(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.samples)
}

// Histogram registers (or returns the existing) histogram series with the
// given upper bucket bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	if m, ok := f.series[labels]; ok {
		return m.(*Histogram)
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{r: r, bounds: bs, counts: make([]uint64, len(bs))}
	f.series[labels] = h
	return h
}

// ExpBuckets returns n bounds growing geometrically from start by factor —
// the usual histogram bucket ladder for durations.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// formatProm renders a float the way the Prometheus text format expects.
func formatProm(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered family in the Prometheus text
// exposition format, deterministically ordered.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, f.help, n, f.typ); err != nil {
			return err
		}
		labels := make([]string, 0, len(f.series))
		for l := range f.series {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			f.series[l].write(w, n, l)
		}
	}
	return nil
}
