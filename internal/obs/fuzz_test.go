package obs

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReadEvents checks the decoder's core contract on arbitrary input:
// it never panics, and whenever it accepts a log, re-encoding the decoded
// events yields a fixed point — encode(decode(x)) decodes again and
// encodes to the same bytes. (Raw input is not required to be byte-equal
// to its re-encoding: hand-written JSON may use different field order or
// float spelling; encoder output is, per the golden round-trip test.)
func FuzzReadEvents(f *testing.F) {
	if raw, err := os.ReadFile("testdata/events.golden.jsonl"); err == nil {
		f.Add(raw)
		// Individual golden lines exercise single-event paths.
		for _, line := range bytes.SplitAfter(raw, []byte{'\n'}) {
			if len(line) > 0 {
				f.Add(line)
			}
		}
	}
	f.Add([]byte(`{"t":1,"kind":"job_done","job":0}` + "\n"))
	f.Add([]byte(`{"t":0.25,"kind":"task_retry","job":1,"stage":3,"node":2,"attempt":2,"delay":4}` + "\n"))
	f.Add([]byte(`{"t":3,"kind":"job_failed","job":0,"detail":"boom \"quoted\" "}` + "\n"))
	f.Add([]byte(`{"t":9,"kind":"stage_submitted","run":2,"job":0,"stage":1,"prefetch":true}` + "\n"))
	f.Add([]byte("not json\n"))
	// Mixed logs: trace lines interleave with events and must be skipped.
	if raw, err := os.ReadFile("testdata/traces.golden.jsonl"); err == nil {
		f.Add(raw)
		f.Add(append([]byte(`{"t":1,"kind":"job_done","job":0}`+"\n"), raw...))
	}
	f.Add([]byte(`{"schema":"delaystage/trace/v1","trace_id":"j","state":"done","epoch":0,"spans":[]}` + "\n"))
	f.Add([]byte(`{"schema":"delaystage/bogus/v1"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var once bytes.Buffer
		if err := WriteEvents(&once, evs); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		evs2, err := ReadEvents(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("encoder output did not decode: %v\n%s", err, once.Bytes())
		}
		var twice bytes.Buffer
		if err := WriteEvents(&twice, evs2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point:\nfirst:  %s\nsecond: %s",
				once.Bytes(), twice.Bytes())
		}
	})
}

// FuzzReadTraces is the trace-line twin of FuzzReadEvents: ReadTraces
// never panics on arbitrary input, and accepted traces re-encode to a
// fixed point (first re-encoding normalizes hand-written field order and
// attr spelling; the second must reproduce it byte-for-byte).
func FuzzReadTraces(f *testing.F) {
	if raw, err := os.ReadFile("testdata/traces.golden.jsonl"); err == nil {
		f.Add(raw)
		for _, line := range bytes.SplitAfter(raw, []byte{'\n'}) {
			if len(line) > 0 {
				f.Add(line)
			}
		}
	}
	f.Add([]byte(`{"schema":"delaystage/trace/v1","trace_id":"j","state":"queued","epoch":1,` +
		`"spans":[{"id":0,"parent":-1,"kind":"job","name":"job j","start":0,"end":2,"open":true,` +
		`"attrs":{"nested":{"x":[1,2,null,"s"]}}}]}` + "\n"))
	f.Add([]byte(`{"t":1,"kind":"job_done","job":0}` + "\n"))
	f.Add([]byte("{}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		traces, err := ReadTraces(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		for _, tr := range traces {
			if err := WriteTraceLine(&once, tr); err != nil {
				t.Fatalf("re-encode of accepted trace failed: %v", err)
			}
		}
		traces2, err := ReadTraces(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("encoder output did not decode: %v\n%s", err, once.Bytes())
		}
		var twice bytes.Buffer
		for _, tr := range traces2 {
			if err := WriteTraceLine(&twice, tr); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("trace encode∘decode is not a fixed point:\nfirst:  %s\nsecond: %s",
				once.Bytes(), twice.Bytes())
		}
	})
}
