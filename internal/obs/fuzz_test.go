package obs

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReadEvents checks the decoder's core contract on arbitrary input:
// it never panics, and whenever it accepts a log, re-encoding the decoded
// events yields a fixed point — encode(decode(x)) decodes again and
// encodes to the same bytes. (Raw input is not required to be byte-equal
// to its re-encoding: hand-written JSON may use different field order or
// float spelling; encoder output is, per the golden round-trip test.)
func FuzzReadEvents(f *testing.F) {
	if raw, err := os.ReadFile("testdata/events.golden.jsonl"); err == nil {
		f.Add(raw)
		// Individual golden lines exercise single-event paths.
		for _, line := range bytes.SplitAfter(raw, []byte{'\n'}) {
			if len(line) > 0 {
				f.Add(line)
			}
		}
	}
	f.Add([]byte(`{"t":1,"kind":"job_done","job":0}` + "\n"))
	f.Add([]byte(`{"t":0.25,"kind":"task_retry","job":1,"stage":3,"node":2,"attempt":2,"delay":4}` + "\n"))
	f.Add([]byte(`{"t":3,"kind":"job_failed","job":0,"detail":"boom \"quoted\" "}` + "\n"))
	f.Add([]byte(`{"t":9,"kind":"stage_submitted","run":2,"job":0,"stage":1,"prefetch":true}` + "\n"))
	f.Add([]byte("not json\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var once bytes.Buffer
		if err := WriteEvents(&once, evs); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		evs2, err := ReadEvents(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("encoder output did not decode: %v\n%s", err, once.Bytes())
		}
		var twice bytes.Buffer
		if err := WriteEvents(&twice, evs2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point:\nfirst:  %s\nsecond: %s",
				once.Bytes(), twice.Bytes())
		}
	})
}
