package obs

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total", `{strategy="spark"}`, "runs completed").Add(3)
	reg.Counter("runs_total", `{strategy="delaystage"}`, "runs completed").Inc()
	reg.Gauge("cells_remaining", "", "experiment cells not yet run").Set(17)
	h := reg.Histogram("makespan_seconds", "", "makespan distribution", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP cells_remaining experiment cells not yet run
# TYPE cells_remaining gauge
cells_remaining 17
# HELP makespan_seconds makespan distribution
# TYPE makespan_seconds histogram
makespan_seconds_bucket{le="10"} 1
makespan_seconds_bucket{le="100"} 2
makespan_seconds_bucket{le="+Inf"} 3
makespan_seconds_sum 555
makespan_seconds_count 3
# HELP runs_total runs completed
# TYPE runs_total counter
runs_total{strategy="delaystage"} 1
runs_total{strategy="spark"} 3
`
	if got != want {
		t.Errorf("exposition drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Same registry, second render: identical (determinism).
	var sb2 strings.Builder
	reg.WriteText(&sb2)
	if sb2.String() != got {
		t.Error("second render differs from first")
	}
}

func TestRegistryHistogramLabels(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d_seconds", `{strategy="spark"}`, "d", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	var sb strings.Builder
	reg.WriteText(&sb)
	for _, line := range []string{
		`d_seconds_bucket{strategy="spark",le="1"} 1`,
		`d_seconds_bucket{strategy="spark",le="+Inf"} 2`,
		`d_seconds_sum{strategy="spark"} 2.5`,
		`d_seconds_count{strategy="spark"} 2`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, sb.String())
		}
	}
}

func TestRegistryHandleReuse(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "", "x")
	b := reg.Counter("x_total", "", "x")
	if a != b {
		t.Error("same series returned distinct handles")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a name with a different type did not panic")
		}
	}()
	reg.Gauge("x_total", "", "x")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(10, 2, 4)
	want := []float64{10, 20, 40, 80}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestIntrospectionMux(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("answer", "", "the answer").Set(42)
	ts := httptest.NewServer(NewIntrospectionMux(reg))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "answer 42\n") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (len %d)", code, len(body))
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// Done yields nil after a clean Close, and the serve goroutine must have
// exited by the time Close returns (no dropped serve errors).
func TestServeDoneCleanShutdown(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-s.Done():
		t.Fatalf("Done fired before Close: %v", err)
	default:
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After Close, Done is closed and reads nil forever.
	if err, ok := <-s.Done(); ok && err != nil {
		t.Fatalf("Done after Close: %v", err)
	}
}

// ServeHandler serves the caller's handler, with the introspection mux
// free to be layered inside it.
func TestServeHandlerCustomRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("answer", "", "the answer").Set(42)
	mux := http.NewServeMux()
	mux.Handle("/metrics", NewIntrospectionMux(reg))
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "pong")
	})
	s, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "pong" {
		t.Fatalf("/v1/ping = %d %q", resp.StatusCode, body)
	}
	resp, err = http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "answer 42\n") {
		t.Fatalf("/metrics missing gauge: %q", body)
	}
}
