package perfmodel

import (
	"math"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

func model(t *testing.T, n int) *Model {
	t.Helper()
	m, err := New(cluster.NewM4LargeCluster(n))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil cluster must error")
	}
	if _, err := New(&cluster.Cluster{}); err == nil {
		t.Fatal("empty cluster must error")
	}
}

func TestSoloStageTimeMatchesPhaseSpec(t *testing.T) {
	m := model(t, 30)
	p := workload.FromPhases(m.Cluster, workload.PhaseSpec{ReadSec: 100, ComputeSec: 150, WriteSec: 20})
	got := m.SoloStageTime(p)
	if math.Abs(got-270) > 1 {
		t.Fatalf("solo time %v, want 270", got)
	}
	r, c, w := m.PhaseBreakdown(p)
	if math.Abs(r-100) > 0.5 || math.Abs(c-150) > 0.5 || math.Abs(w-20) > 0.5 {
		t.Fatalf("breakdown %v/%v/%v, want 100/150/20", r, c, w)
	}
}

func TestEqualSharesScaling(t *testing.T) {
	m := model(t, 10)
	p := workload.FromPhases(m.Cluster, workload.PhaseSpec{ReadSec: 50, ComputeSec: 50, WriteSec: 10})
	solo := m.StageTime(p, Full)
	half := m.StageTime(p, EqualShares(2))
	if math.Abs(half-2*solo) > 1 {
		t.Fatalf("half shares %v, want 2× solo %v", half, 2*solo)
	}
	if EqualShares(0) != Full {
		t.Error("EqualShares(0) must clamp to Full")
	}
}

func TestStageTimeSlowestWorkerDominates(t *testing.T) {
	// Heterogeneous cluster: one slow-NIC node sets the stage time (Eq. 2).
	c := &cluster.Cluster{Nodes: []cluster.Node{
		{ID: 0, Executors: 2, NetBW: cluster.MBps(100), DiskBW: cluster.MBps(80)},
		{ID: 1, Executors: 2, NetBW: cluster.MBps(10), DiskBW: cluster.MBps(80)},
	}}
	m, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.StageProfile{ShuffleIn: 2 * 100 * cluster.MB, ProcRate: cluster.MBps(1000)}
	got := m.StageTime(p, Full)
	// Per-node input = 100 MB; slow node reads at 10 MB/s → 10 s dominates.
	if math.Abs(got-10-0.1) > 0.2 {
		t.Fatalf("stage time %v, want ≈10.1 (slow worker)", got)
	}
}

func TestPathTimeWithDelays(t *testing.T) {
	m := model(t, 5)
	path := dag.Path{Stages: []dag.StageID{1, 2}}
	times := map[dag.StageID]float64{1: 10, 2: 20}
	delays := map[dag.StageID]float64{2: 5}
	if got := m.PathTime(path, times, delays); got != 35 {
		t.Fatalf("path time %v, want 35", got)
	}
	if got := m.PathTime(path, times, nil); got != 30 {
		t.Fatalf("path time without delays %v, want 30", got)
	}
}

func TestMakespanIsMaxPath(t *testing.T) {
	m := model(t, 5)
	paths := []dag.Path{
		{Stages: []dag.StageID{1}},
		{Stages: []dag.StageID{2, 3}},
	}
	times := map[dag.StageID]float64{1: 50, 2: 20, 3: 40}
	if got := m.Makespan(paths, times, nil); got != 60 {
		t.Fatalf("makespan %v, want 60", got)
	}
}

func TestSoloTimesAllStages(t *testing.T) {
	m := model(t, 30)
	j := workload.LDA(m.Cluster, 1)
	times := m.SoloTimes(j)
	if len(times) != j.Graph.Len() {
		t.Fatalf("%d times for %d stages", len(times), j.Graph.Len())
	}
	for id, v := range times {
		if v <= 0 {
			t.Errorf("stage %d solo time %v", id, v)
		}
	}
}

func TestZeroIOStage(t *testing.T) {
	m := model(t, 5)
	p := workload.StageProfile{ShuffleIn: 0, ShuffleOut: 0, ProcRate: 1}
	if got := m.SoloStageTime(p); got != 0 {
		t.Fatalf("no-IO no-compute stage time %v, want 0", got)
	}
}

func TestPredictionError(t *testing.T) {
	if e := PredictionError(110, 100); math.Abs(e-0.1) > 1e-9 {
		t.Fatalf("error %v, want 0.1", e)
	}
	if e := PredictionError(90, 100); math.Abs(e-0.1) > 1e-9 {
		t.Fatalf("error %v, want 0.1", e)
	}
	if !math.IsInf(PredictionError(1, 0), 1) {
		t.Fatal("zero actual must be +Inf")
	}
}

// The closed-form model and the fluid simulator must agree for a solo
// stage — that is Appendix A.2's premise.
func TestModelMatchesSimulatorSolo(t *testing.T) {
	m := model(t, 30)
	j := workload.CosineSimilarity(m.Cluster, 1)
	for id, p := range j.Profiles {
		want := m.SoloStageTime(p)
		if want <= 0 {
			t.Fatalf("stage %d solo %v", id, want)
		}
	}
}

// profileOf builds a raw StageProfile for the link-form tests.
func profileOf(in, rate, out int64) workload.StageProfile {
	return workload.StageProfile{ShuffleIn: in, ProcRate: float64(rate), ShuffleOut: out}
}
