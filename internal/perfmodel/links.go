package perfmodel

import "fmt"

// InputLink is one shuffle-input source of a task: s^{i,w} bytes arriving
// over a link with available bandwidth B^{i,w} — the per-link quantities
// of Eq. (1) that the symmetric single-cluster model collapses into one
// NIC term. The geo-distributed extension uses this form directly.
type InputLink struct {
	Bytes int64   // s^{i,w}
	BW    float64 // B^{i,w}, bytes/s
}

// TaskTimeLinks is Eq. (1) in its full per-link form:
//
//	t_k^w = max_i (s^{i,w} / B^{i,w})            — slowest input link
//	      + Σ_i s^{i,w} / (ε_k^w · R_k)          — processing of all input
//	      + d^w / D_k^w                           — shuffle write
//
// executors is ε_k^w (the executors available to the stage on the worker),
// procRate R_k, writeBytes d^w and diskBW D_k^w.
func TaskTimeLinks(links []InputLink, executors, procRate float64, writeBytes int64, diskBW float64) (float64, error) {
	if executors <= 0 || procRate <= 0 {
		return 0, fmt.Errorf("perfmodel: non-positive compute capacity")
	}
	read := 0.0
	var totalIn int64
	for i, l := range links {
		if l.Bytes < 0 {
			return 0, fmt.Errorf("perfmodel: link %d has negative bytes", i)
		}
		if l.Bytes == 0 {
			continue
		}
		if l.BW <= 0 {
			return 0, fmt.Errorf("perfmodel: link %d has non-positive bandwidth", i)
		}
		if t := float64(l.Bytes) / l.BW; t > read {
			read = t
		}
		totalIn += l.Bytes
	}
	compute := float64(totalIn) / (executors * procRate)
	write := 0.0
	if writeBytes > 0 {
		if diskBW <= 0 {
			return 0, fmt.Errorf("perfmodel: non-positive disk bandwidth with pending writes")
		}
		write = float64(writeBytes) / diskBW
	}
	return read + compute + write, nil
}
