package perfmodel

import (
	"math"
	"testing"
)

func TestTaskTimeLinksMaxOverLinks(t *testing.T) {
	// Two links: 100 MB @ 100 MB/s (1 s) and 50 MB @ 5 MB/s (10 s): the
	// slow link gates the read at 10 s.
	links := []InputLink{
		{Bytes: 100 << 20, BW: 100 << 20},
		{Bytes: 50 << 20, BW: 5 << 20},
	}
	got, err := TaskTimeLinks(links, 2, 75<<20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// read = 10 s; compute = 150 MB / (2 × 75 MB/s) = 1 s.
	if math.Abs(got-11) > 1e-9 {
		t.Fatalf("task time %v, want 11", got)
	}
}

func TestTaskTimeLinksWrite(t *testing.T) {
	got, err := TaskTimeLinks(nil, 1, 1<<20, 80<<20, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("write-only time %v, want 10", got)
	}
}

func TestTaskTimeLinksErrors(t *testing.T) {
	if _, err := TaskTimeLinks(nil, 0, 1, 0, 1); err == nil {
		t.Error("zero executors must error")
	}
	if _, err := TaskTimeLinks([]InputLink{{Bytes: 1, BW: 0}}, 1, 1, 0, 1); err == nil {
		t.Error("zero link bandwidth must error")
	}
	if _, err := TaskTimeLinks([]InputLink{{Bytes: -1, BW: 1}}, 1, 1, 0, 1); err == nil {
		t.Error("negative bytes must error")
	}
	if _, err := TaskTimeLinks(nil, 1, 1, 5, 0); err == nil {
		t.Error("pending write with zero disk bandwidth must error")
	}
	// Zero-byte links are skipped, even with zero bandwidth.
	if _, err := TaskTimeLinks([]InputLink{{Bytes: 0, BW: 0}}, 1, 1, 0, 1); err != nil {
		t.Errorf("zero-byte link should be ignored: %v", err)
	}
}

// The collapsed single-NIC form (TaskTime) must agree with the per-link
// form when there is exactly one link.
func TestTaskTimeLinksConsistentWithCollapsedForm(t *testing.T) {
	m := model(t, 10)
	w := m.Cluster.Nodes[0]
	pIn := int64(10) * int64(len(m.Cluster.Nodes)) << 20 // 10 MiB per node
	p := profileOf(pIn, 2<<20, 1<<20)
	collapsed := m.TaskTime(p, w, Full)
	perNode := pIn / int64(len(m.Cluster.Nodes))
	linked, err := TaskTimeLinks(
		[]InputLink{{Bytes: perNode, BW: w.NetBW}},
		float64(w.Executors), p.ProcRate, perNode*int64(p.ShuffleOut)/pIn, w.DiskBW)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(collapsed-linked) > 1e-6 {
		t.Fatalf("collapsed %v != per-link %v", collapsed, linked)
	}
}
