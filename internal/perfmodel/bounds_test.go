package perfmodel

import (
	"math"
	"sort"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// oneNode builds the single-node cluster shape the planning evaluators
// run on (sim.Coarsen output), without importing sim.
func oneNode() *cluster.Cluster {
	return &cluster.Cluster{Nodes: []cluster.Node{
		{ID: 0, Executors: 64, NetBW: cluster.MBps(4000), DiskBW: cluster.MBps(3200)},
	}}
}

func boundEval(t *testing.T, c *cluster.Cluster, j *workload.Job, cfg BoundConfig) *BoundEvaluator {
	t.Helper()
	b, err := NewBoundEvaluator(c, j, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// twoParallel is the minimal interleaving fixture: two identical
// independent stages plus a sink.
func twoParallel(ref *cluster.Cluster) *workload.Job {
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1, Name: "a"})
	g.MustAdd(dag.Stage{ID: 2, Name: "b"})
	g.MustAdd(dag.Stage{ID: 3, Name: "sink", Parents: []dag.StageID{1, 2}})
	p := workload.FromPhases(ref, workload.PhaseSpec{ReadSec: 40, ComputeSec: 40, WriteSec: 20})
	tail := workload.FromPhases(ref, workload.PhaseSpec{ReadSec: 5, ComputeSec: 5, WriteSec: 1})
	return &workload.Job{Name: "twoParallel", Graph: g,
		Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p, 3: tail}}
}

func TestBoundsOrderingGallery(t *testing.T) {
	ref := oneNode()
	jobs := workload.PaperWorkloads(ref, 1)
	for name, j := range workload.Gallery(ref, 1) {
		jobs[name] = j
	}
	names := make([]string, 0, len(jobs))
	for n := range jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		j := jobs[name]
		b := boundEval(t, ref, j, BoundConfig{IncludeWorkBound: true})
		for _, delays := range []map[dag.StageID]float64{nil, {1: 25}, {2: 10, 3: 40}} {
			bd := b.Bounds(delays)
			if !(bd.Lower > 0) || math.IsInf(bd.Upper, 0) || math.IsNaN(bd.Estimate) {
				t.Fatalf("%s: degenerate bounds %+v", name, bd)
			}
			if bd.Lower > bd.Estimate || bd.Estimate > bd.Upper {
				t.Fatalf("%s: want Lower ≤ Estimate ≤ Upper, got %+v", name, bd)
			}
			if got := b.Lower(delays); got != bd.Lower {
				t.Fatalf("%s: Lower()=%v but Bounds().Lower=%v", name, got, bd.Lower)
			}
			// Clones answer identically.
			if cb := b.Clone().Bounds(delays); cb != bd {
				t.Fatalf("%s: clone bounds %+v != %+v", name, cb, bd)
			}
			// Determinism across repeated calls (scratch reuse).
			if again := b.Bounds(delays); again != bd {
				t.Fatalf("%s: bounds not deterministic: %+v then %+v", name, bd, again)
			}
		}
	}
}

// ScanLower's incremental decomposition must agree with the full lower
// bound at every candidate: max(rest, through+x) == Lower(delays ∪ {kid:x}).
func TestScanLowerMatchesFullLower(t *testing.T) {
	ref := oneNode()
	for name, j := range workload.PaperWorkloads(ref, 1) {
		b := boundEval(t, ref, j, BoundConfig{IncludeWorkBound: true})
		delays := map[dag.StageID]float64{}
		for _, kid := range j.Graph.Stages() {
			through, rest, ok := b.ScanLower(kid, delays)
			if !ok {
				t.Fatalf("%s: ScanLower(%d) not ok", name, kid)
			}
			for _, x := range []float64{0, 7.5, 123} {
				inc := math.Max(rest, through+x)
				delays[kid] = x
				full := b.Lower(delays)
				delete(delays, kid)
				if math.Abs(inc-full) > 1e-6*(1+full) {
					t.Fatalf("%s stage %d x=%v: incremental %v != full %v", name, kid, x, inc, full)
				}
			}
			// Spread some permanent delays around so later stages scan
			// against a non-trivial vector.
			delays[kid] = float64(kid) * 3
		}
	}
}

func TestScanLowerInactiveKid(t *testing.T) {
	ref := oneNode()
	j := twoParallel(ref)
	b := boundEval(t, ref, j, BoundConfig{})
	b.SetActive(map[dag.StageID]bool{1: true})
	if _, _, ok := b.ScanLower(2, nil); ok {
		t.Fatal("ScanLower on an inactive stage must report !ok")
	}
	if _, _, ok := b.ScanLower(99, nil); ok {
		t.Fatal("ScanLower on an unknown stage must report !ok")
	}
}

// The aggregate-capacity term must dominate the critical path on a wide
// fan of identical stages: N parallel stages of solo time T cannot finish
// before ~N·T_net on one NIC even though the critical path is one stage.
func TestWorkBoundDominatesWideFan(t *testing.T) {
	ref := oneNode()
	g := dag.New()
	p := workload.FromPhases(ref, workload.PhaseSpec{ReadSec: 30, ComputeSec: 1, WriteSec: 1})
	profiles := map[dag.StageID]workload.StageProfile{}
	for i := 1; i <= 8; i++ {
		g.MustAdd(dag.Stage{ID: dag.StageID(i)})
		profiles[dag.StageID(i)] = p
	}
	j := &workload.Job{Name: "fan", Graph: g, Profiles: profiles}
	with := boundEval(t, ref, j, BoundConfig{IncludeWorkBound: true}).Bounds(nil)
	without := boundEval(t, ref, j, BoundConfig{}).Bounds(nil)
	if with.Lower <= without.Lower {
		t.Fatalf("work term should raise the lower bound: with=%v without=%v", with.Lower, without.Lower)
	}
	if with.Lower < 8*30*0.9 {
		t.Fatalf("8 stages × 30 s of NIC work bound %v, want ≈ 240", with.Lower)
	}
}

// The Estimate must be delay-sensitive — separating two overlapping
// stages removes the contention stretch — or approximate mode could never
// prefer a non-zero delay.
func TestEstimateDiscriminatesDelays(t *testing.T) {
	ref := oneNode()
	j := twoParallel(ref)
	b := boundEval(t, ref, j, BoundConfig{})
	overlapped := b.Bounds(nil).Estimate
	separated := b.Bounds(map[dag.StageID]float64{2: 100}).Estimate
	if !(separated < overlapped) {
		t.Fatalf("estimate must drop when overlap is delayed away: overlapped=%v separated=%v",
			overlapped, separated)
	}
}

// Restriction semantics: inactive stages contribute nothing, and an edge
// through an inactive middle stage is severed (the restricted DAG lets
// the endpoints overlap).
func TestSetActiveRestricts(t *testing.T) {
	ref := oneNode()
	g := dag.New()
	g.MustAdd(dag.Stage{ID: 1})
	g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
	g.MustAdd(dag.Stage{ID: 3, Parents: []dag.StageID{2}})
	p := workload.FromPhases(ref, workload.PhaseSpec{ReadSec: 10, ComputeSec: 10, WriteSec: 5})
	j := &workload.Job{Name: "chain", Graph: g,
		Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p, 3: p}}
	b := boundEval(t, ref, j, BoundConfig{})
	full := b.Bounds(nil)
	b.SetActive(map[dag.StageID]bool{1: true, 3: true})
	cut := b.Bounds(nil)
	if !(cut.Lower < full.Lower) {
		t.Fatalf("dropping the middle stage must shorten the chain: full=%v cut=%v", full.Lower, cut.Lower)
	}
	// A delay on the inactive stage 2 must not leak into the bounds.
	if a, bnd := b.Bounds(map[dag.StageID]float64{2: 1000}), cut; a != bnd {
		t.Fatalf("inactive stage's delay must be ignored: %+v vs %+v", a, bnd)
	}
	b.SetActive(nil)
	if back := b.Bounds(nil); back != full {
		t.Fatalf("SetActive(nil) must restore the full job: %+v vs %+v", back, full)
	}
}
