package perfmodel

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// This file implements the analytic surrogate behind the two-tier candidate
// scan (DESIGN.md, "Two-tier candidate evaluation"): deterministic makespan
// bounds for a (DAG, profiles, cluster, delay vector) configuration that
// cost O(V+E) instead of a simulation.
//
//   Lower  = max(critical path at solo rates + delays, Σ work / capacity)
//   Upper  = layout where every stage runs at its structural worst-case
//            share: solo time × conc × (1 + α·min(conc−1, 4)), conc = the
//            number of stages that can overlap it per the (restricted) DAG
//   Estimate = layout stretched by the *time-averaged* overlap of a first
//            unstretched pass — the delay-sensitive score approximate mode
//            minimizes; clamped into [Lower, Upper]
//
// Soundness against the fluid simulator (fault-free, no aggressive
// shuffle): the waterfill never allocates beyond contended capacity
// (contended ≤ capacity), every stage's phases are sequential per node and
// start only after ready + delay, so no stage can finish earlier than the
// solo critical path predicts, and no resource can drain its aggregate
// work faster than its aggregate capacity. Upper holds because max-min
// fairness guarantees each of f concurrent consumers at least a 1/f share
// of contended capacity and at most conc stages can ever share. Against
// the closed-form model evaluator only the critical-path term is provable
// (its truncated stretch fixed point is not capacity-conserving), so that
// tier sets IncludeWorkBound = false.

// contentionSaturation mirrors the simulator's cap on the effective number
// of interfering extra consumers (internal/sim/engine.go).
const contentionSaturation = 4

// defaultAlpha mirrors sim.Options.ContentionOverhead's default.
const defaultAlpha = 0.22

// Bounds is one configuration's analytic verdict.
type Bounds struct {
	// Lower is a certified lower bound on the exact makespan.
	Lower float64
	// Upper is a pessimistic upper bound (structural worst-case sharing).
	Upper float64
	// Estimate is the bound evaluator's best guess, in [Lower, Upper] —
	// what approximate mode minimizes in place of a simulation.
	Estimate float64
}

// BoundConfig tunes a BoundEvaluator for the exact evaluator it prunes.
type BoundConfig struct {
	// IncludeWorkBound folds the aggregate work/capacity term into Lower.
	// Sound against the fluid simulator; the closed-form model evaluator's
	// truncated fixed point does not conserve capacity, so pruning that
	// tier must leave it off.
	IncludeWorkBound bool
	// Alpha is the contention-overhead factor of the pessimistic terms
	// (zero means the simulator default, 0.22).
	Alpha float64
}

// BoundEvaluator computes Bounds for one job on one cluster. Build it on
// the cluster the exact evaluator actually runs against (the coarse view
// for the sim tier, the raw cluster for the model tier) or the bounds are
// bounds on the wrong quantity.
//
// Not safe for concurrent use; Clone for parallel scans (clones share the
// immutable inputs and the concurrency cache, own all scratch).
type BoundEvaluator struct {
	cfg BoundConfig

	ids      []dag.StageID // topo order
	idx      map[dag.StageID]int
	parents  [][]int
	children [][]int
	solo     []float64 // solo read+compute+write per stage
	// Full-capacity busy seconds per stage and resource, for the
	// work/capacity lower bound.
	netW, diskW, execW []float64

	activeIdx []bool
	activeKey string
	nActive   int
	workLB    float64 // Σ active work / capacity (0 when excluded)

	shared *boundShared

	// Scratch, reused across calls.
	up, up2, down  []float64
	starts, ends   []float64
	stretchScratch []float64
	evs            []boundEvent
}

// boundShared is the state clones share: the per-active-set structural
// worst-case stretch factors (a function of the DAG only, so computing
// them once per active set is free determinism).
type boundShared struct {
	mu   sync.Mutex
	conc map[string][]float64
}

// boundEvent is one ±1 interval-coverage change of the overlap sweep.
type boundEvent struct {
	t float64
	d float64
}

// NewBoundEvaluator validates the inputs and precomputes the per-stage
// solo phase times and work terms.
func NewBoundEvaluator(c *cluster.Cluster, job *workload.Job, cfg BoundConfig) (*BoundEvaluator, error) {
	m, err := New(c)
	if err != nil {
		return nil, err
	}
	if job == nil {
		return nil, fmt.Errorf("perfmodel: nil job")
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	topo, err := job.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = defaultAlpha
	} else if cfg.Alpha < 0 {
		cfg.Alpha = 0
	}
	n := len(topo)
	b := &BoundEvaluator{
		cfg:      cfg,
		ids:      topo,
		idx:      make(map[dag.StageID]int, n),
		parents:  make([][]int, n),
		children: make([][]int, n),
		solo:     make([]float64, n),
		netW:     make([]float64, n),
		diskW:    make([]float64, n),
		execW:    make([]float64, n),
		shared:   &boundShared{conc: map[string][]float64{}},
	}
	for i, id := range topo {
		b.idx[id] = i
	}
	var netCap, diskCap, execCap float64
	for _, w := range c.Nodes {
		netCap += w.NetBW
		diskCap += w.DiskBW
		execCap += float64(w.Executors)
	}
	for i, id := range topo {
		p := job.Profiles[id]
		r, cm, wr := m.PhaseBreakdown(p)
		b.solo[i] = r + cm + wr
		if netCap > 0 {
			b.netW[i] = float64(p.ShuffleIn) / netCap
		}
		if diskCap > 0 {
			b.diskW[i] = float64(p.ShuffleOut) / diskCap
		}
		if execCap > 0 && p.ProcRate > 0 {
			b.execW[i] = float64(p.ShuffleIn) / p.ProcRate / execCap
		}
		for _, pid := range job.Graph.Parents(id) {
			pi := b.idx[pid]
			b.parents[i] = append(b.parents[i], pi)
			b.children[pi] = append(b.children[pi], i)
		}
	}
	b.activeIdx = make([]bool, n)
	b.setAll()
	return b, nil
}

// Clone returns a copy safe to use from another goroutine: immutable
// inputs and the concurrency cache are shared, the active mask is copied
// (SetActive on the parent must not retroactively move clones) and every
// scratch buffer is private.
func (b *BoundEvaluator) Clone() *BoundEvaluator {
	c := *b
	c.activeIdx = append([]bool(nil), b.activeIdx...)
	c.up, c.up2, c.down = nil, nil, nil
	c.starts, c.ends, c.stretchScratch = nil, nil, nil
	c.evs = nil
	return &c
}

func (b *BoundEvaluator) setAll() {
	for i := range b.activeIdx {
		b.activeIdx[i] = true
	}
	b.nActive = len(b.ids)
	b.activeKey = "*"
	b.recomputeWorkLB()
}

// SetActive restricts the bounds to the given stage set (nil = all),
// mirroring how Alg. 1 restricts its evaluator while paths are scheduled
// one by one: inactive stages vanish and edges to them are dropped.
func (b *BoundEvaluator) SetActive(active map[dag.StageID]bool) {
	if active == nil {
		b.setAll()
		return
	}
	key := make([]byte, (len(b.ids)+7)/8)
	b.nActive = 0
	for i, id := range b.ids {
		on := active[id]
		b.activeIdx[i] = on
		if on {
			key[i/8] |= 1 << (uint(i) % 8)
			b.nActive++
		}
	}
	b.activeKey = string(key)
	b.recomputeWorkLB()
}

func (b *BoundEvaluator) recomputeWorkLB() {
	b.workLB = 0
	if !b.cfg.IncludeWorkBound {
		return
	}
	var net, disk, exec float64
	for i := range b.ids {
		if !b.activeIdx[i] {
			continue
		}
		net += b.netW[i]
		disk += b.diskW[i]
		exec += b.execW[i]
	}
	b.workLB = math.Max(net, math.Max(disk, exec))
}

// delayOf reads a stage's delay (nil map or missing entry = 0).
func delayOf(delays map[dag.StageID]float64, id dag.StageID) float64 {
	if delays == nil {
		return 0
	}
	return delays[id]
}

// cpForward fills dst[i] with the solo-rate completion time of stage i
// (its own delay and solo time included), skipping stage `skip` (-1 =
// none) as if it were inactive and forcing stage `zeroDelay`'s delay to
// zero (-1 = none). Returns the maximum over active stages.
func (b *BoundEvaluator) cpForward(dst []float64, delays map[dag.StageID]float64, skip, zeroDelay int) float64 {
	hi := 0.0
	for i, id := range b.ids {
		if !b.activeIdx[i] || i == skip {
			dst[i] = 0
			continue
		}
		ready := 0.0
		for _, pi := range b.parents[i] {
			if !b.activeIdx[pi] || pi == skip {
				continue
			}
			if dst[pi] > ready {
				ready = dst[pi]
			}
		}
		d := delayOf(delays, id)
		if i == zeroDelay {
			d = 0
		}
		dst[i] = ready + d + b.solo[i]
		if dst[i] > hi {
			hi = dst[i]
		}
	}
	return hi
}

func (b *BoundEvaluator) grow() {
	if n := len(b.ids); len(b.up) < n {
		b.up = make([]float64, n)
		b.up2 = make([]float64, n)
		b.down = make([]float64, n)
		b.starts = make([]float64, n)
		b.ends = make([]float64, n)
		b.stretchScratch = make([]float64, n)
	}
}

// Lower returns the certified lower bound alone — the cheap end of
// Bounds, used where Upper/Estimate are not needed (committed-job
// constants in the online planner).
func (b *BoundEvaluator) Lower(delays map[dag.StageID]float64) float64 {
	b.grow()
	return math.Max(b.cpForward(b.up, delays, -1, -1), b.workLB)
}

// ScanLower prepares the O(1)-per-candidate lower bound for a candidate
// scan of stage kid, where every candidate changes only kid's delay:
//
//	lower(x) = max(rest, through + x)
//
// through is the longest solo-rate path through kid *excluding* kid's own
// delay (the caller adds the candidate x); rest covers every path that
// avoids kid, plus the work/capacity term (both x-independent). Any entry
// for kid in delays is ignored. ok is false when kid is unknown or
// inactive — no pruning then.
func (b *BoundEvaluator) ScanLower(kid dag.StageID, delays map[dag.StageID]float64) (through, rest float64, ok bool) {
	ki, found := b.idx[kid]
	if !found || !b.activeIdx[ki] {
		return 0, 0, false
	}
	b.grow()
	// Upstream: longest path into kid, kid's own delay forced to zero so
	// up[ki] = readiness + solo (the caller's x slots in between).
	b.cpForward(b.up, delays, -1, ki)
	rest = math.Max(b.cpForward(b.up2, delays, ki, -1), b.workLB)
	// Downstream: down[i] = delay_i + solo_i + longest active child tail.
	for i := len(b.ids) - 1; i >= 0; i-- {
		if !b.activeIdx[i] {
			b.down[i] = 0
			continue
		}
		tail := 0.0
		for _, ci := range b.children[i] {
			if !b.activeIdx[ci] {
				continue
			}
			if b.down[ci] > tail {
				tail = b.down[ci]
			}
		}
		b.down[i] = delayOf(delays, b.ids[i]) + b.solo[i] + tail
	}
	tail := 0.0
	for _, ci := range b.children[ki] {
		if !b.activeIdx[ci] {
			continue
		}
		if b.down[ci] > tail {
			tail = b.down[ci]
		}
	}
	return b.up[ki] + tail, rest, true
}

// concStretch returns (cached per active set) each stage's structural
// worst-case slowdown: conc × (1 + α·min(conc−1, saturation)), where conc
// counts the stages the restricted DAG allows to overlap it, itself
// included. Ancestry is computed on the restricted graph — restriction
// drops edges, so stages chained through an inactive middleman *can*
// overlap and full-graph reachability would undercount.
func (b *BoundEvaluator) concStretch() []float64 {
	sh := b.shared
	sh.mu.Lock()
	if s, ok := sh.conc[b.activeKey]; ok {
		sh.mu.Unlock()
		return s
	}
	sh.mu.Unlock()

	n := len(b.ids)
	words := (n + 63) / 64
	desc := make([]uint64, n*words)
	anc := make([]uint64, n*words)
	for i := n - 1; i >= 0; i-- {
		if !b.activeIdx[i] {
			continue
		}
		di := desc[i*words : (i+1)*words]
		for _, ci := range b.children[i] {
			if !b.activeIdx[ci] {
				continue
			}
			di[ci/64] |= 1 << (uint(ci) % 64)
			dc := desc[ci*words : (ci+1)*words]
			for w := range di {
				di[w] |= dc[w]
			}
		}
	}
	for i := 0; i < n; i++ {
		if !b.activeIdx[i] {
			continue
		}
		ai := anc[i*words : (i+1)*words]
		for _, pi := range b.parents[i] {
			if !b.activeIdx[pi] {
				continue
			}
			ai[pi/64] |= 1 << (uint(pi) % 64)
			ap := anc[pi*words : (pi+1)*words]
			for w := range ai {
				ai[w] |= ap[w]
			}
		}
	}
	st := make([]float64, n)
	for i := 0; i < n; i++ {
		if !b.activeIdx[i] {
			continue
		}
		related := 0
		for w := 0; w < words; w++ {
			related += popcount(desc[i*words+w]) + popcount(anc[i*words+w])
		}
		conc := float64(b.nActive - related) // includes i itself
		if conc < 1 {
			conc = 1
		}
		extra := conc - 1
		if extra > contentionSaturation {
			extra = contentionSaturation
		}
		st[i] = conc * (1 + b.cfg.Alpha*extra)
	}
	sh.mu.Lock()
	sh.conc[b.activeKey] = st
	sh.mu.Unlock()
	return st
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// stretchedEnd lays the active stages out with per-stage duration
// solo × stretch (stretch nil = 1) and fills starts/ends; returns the
// maximum end.
func (b *BoundEvaluator) stretchedEnd(delays map[dag.StageID]float64, stretch []float64) float64 {
	hi := 0.0
	for i, id := range b.ids {
		if !b.activeIdx[i] {
			b.starts[i], b.ends[i] = 0, 0
			continue
		}
		ready := 0.0
		for _, pi := range b.parents[i] {
			if !b.activeIdx[pi] {
				continue
			}
			if b.ends[pi] > ready {
				ready = b.ends[pi]
			}
		}
		s := ready + delayOf(delays, id)
		dur := b.solo[i]
		if stretch != nil {
			dur *= stretch[i]
		}
		b.starts[i], b.ends[i] = s, s+dur
		if s+dur > hi {
			hi = s + dur
		}
	}
	return hi
}

// overlapStretch derives the Estimate's per-stage slowdown from the
// unstretched layout currently in starts/ends: the time-averaged number
// of overlapping stages f̄ (self included) costs f̄ × (1 + α·min(f̄−1,
// saturation)) — the equal-share reading of the simulator's waterfill
// plus its contention overhead. Only structurally concurrent stages can
// overlap a DAG layout, so f̄ never exceeds the Upper bound's conc.
func (b *BoundEvaluator) overlapStretch() []float64 {
	evs := b.evs[:0]
	for i := range b.ids {
		if !b.activeIdx[i] || b.ends[i] <= b.starts[i] {
			continue
		}
		evs = append(evs, boundEvent{t: b.starts[i], d: 1}, boundEvent{t: b.ends[i], d: -1})
	}
	b.evs = evs
	slices.SortFunc(evs, func(x, y boundEvent) int {
		switch {
		case x.t < y.t:
			return -1
		case x.t > y.t:
			return 1
		}
		return 0
	})
	st := b.stretchScratch
	for i := range b.ids {
		st[i] = 1
		if !b.activeIdx[i] {
			continue
		}
		s, f := b.starts[i], b.ends[i]
		if f <= s {
			continue
		}
		// ∫ coverage over [s,f], linear walk of the sorted events. The
		// scans this feeds are O(candidates × n log n) anyway; keeping the
		// walk simple beats indexing for the job sizes in play.
		integral := 0.0
		cur := 0.0
		prev := s
		for _, e := range evs {
			if e.t <= s {
				cur += e.d
				continue
			}
			t := e.t
			if t > f {
				t = f
			}
			integral += cur * (t - prev)
			prev = t
			if e.t >= f {
				break
			}
			cur += e.d
		}
		if prev < f {
			integral += cur * (f - prev)
		}
		overlap := integral - (f - s)
		if overlap < 0 {
			overlap = 0
		}
		fbar := 1 + overlap/(f-s)
		extra := fbar - 1
		if extra > contentionSaturation {
			extra = contentionSaturation
		}
		st[i] = fbar * (1 + b.cfg.Alpha*extra)
	}
	return st
}

// Bounds evaluates one delay configuration. Stages outside the active set
// contribute nothing; their delays are ignored.
func (b *BoundEvaluator) Bounds(delays map[dag.StageID]float64) Bounds {
	b.grow()
	lower := math.Max(b.cpForward(b.up, delays, -1, -1), b.workLB)
	upper := b.stretchedEnd(delays, b.concStretch())
	if upper < lower {
		upper = lower
	}
	// Estimate: unstretched pass to measure overlap, stretched pass to
	// price it.
	b.stretchedEnd(delays, nil)
	est := b.stretchedEnd(delays, b.overlapStretch())
	if est < lower {
		est = lower
	}
	if est > upper {
		est = upper
	}
	return Bounds{Lower: lower, Upper: upper, Estimate: est}
}

// EstimateEnds returns the Estimate layout's per-stage end times — the
// analytic stand-in for simulated stage ends that approximate planning
// feeds the plan-template drift check.
func (b *BoundEvaluator) EstimateEnds(delays map[dag.StageID]float64) map[dag.StageID]float64 {
	b.grow()
	b.stretchedEnd(delays, nil)
	b.stretchedEnd(delays, b.overlapStretch())
	out := make(map[dag.StageID]float64, b.nActive)
	for i, id := range b.ids {
		if !b.activeIdx[i] {
			continue
		}
		out[id] = b.ends[i]
	}
	return out
}
