// Package perfmodel implements the paper's analytical performance model
// (Sec. 3.1, Eq. 1–3): closed-form task, stage and execution-path times
// under given resource shares. DelayStage uses it to seed Alg. 1 with the
// uncontended stage times t̂_k; the Appendix A.2 experiment compares its
// predictions against the fluid simulator.
package perfmodel

import (
	"fmt"
	"math"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// Shares expresses the fraction of each resource available to a stage
// (1 / f in the paper, where f parallel stages share the resource).
type Shares struct {
	Net  float64 // share of every NIC's bandwidth (B_k / B)
	Exec float64 // share of every node's executors (ε_k / ε)
	Disk float64 // share of every disk's bandwidth (D_k / D)
}

// Full is the uncontended share set (stage running alone).
var Full = Shares{Net: 1, Exec: 1, Disk: 1}

// EqualShares returns the share set when f stages split every resource
// equally, the paper's simplifying assumption.
func EqualShares(f int) Shares {
	if f < 1 {
		f = 1
	}
	s := 1 / float64(f)
	return Shares{Net: s, Exec: s, Disk: s}
}

// Model evaluates Eq. (1)–(3) on a concrete cluster.
type Model struct {
	Cluster *cluster.Cluster
}

// New constructs a model, validating the cluster.
func New(c *cluster.Cluster) (*Model, error) {
	if c == nil {
		return nil, fmt.Errorf("perfmodel: nil cluster")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Model{Cluster: c}, nil
}

// TaskTime is Eq. (1): the execution time of stage k's partition on worker
// w — shuffle-read transfer (bounded by the slowest input link), data
// processing on the stage's executor share, and shuffle write.
// Stage input/output is split evenly across the cluster's nodes, matching
// the simulator and the paper's symmetric-partition assumption.
func (m *Model) TaskTime(p workload.StageProfile, w cluster.Node, sh Shares) float64 {
	n := float64(len(m.Cluster.Nodes))
	in := float64(p.ShuffleIn) / n
	out := float64(p.ShuffleOut) / n

	read := 0.0
	if in > 0 {
		read = in / (w.NetBW * sh.Net)
	}
	compute := 0.0
	if in > 0 {
		compute = in / (float64(w.Executors) * sh.Exec * p.ProcRate)
	}
	write := 0.0
	if out > 0 {
		write = out / (w.DiskBW * sh.Disk)
	}
	return read + compute + write
}

// StageTime is Eq. (2): the stage finishes when its slowest worker does.
func (m *Model) StageTime(p workload.StageProfile, sh Shares) float64 {
	t := 0.0
	for _, w := range m.Cluster.Nodes {
		if tw := m.TaskTime(p, w, sh); tw > t {
			t = tw
		}
	}
	return t
}

// SoloStageTime is the uncontended stage time t̂_k (Alg. 1, line 2).
func (m *Model) SoloStageTime(p workload.StageProfile) float64 {
	return m.StageTime(p, Full)
}

// PathTime is Eq. (3): T_m = Σ_{k∈P_m} (x_k + t_k), where x_k is the
// delayed submission time of stage k and t_k its execution time. delays
// and times are keyed by stage; missing delays count as zero.
func (m *Model) PathTime(path dag.Path, times map[dag.StageID]float64, delays map[dag.StageID]float64) float64 {
	t := 0.0
	for _, k := range path.Stages {
		t += times[k]
		if delays != nil {
			t += delays[k]
		}
	}
	return t
}

// Makespan returns max_m T_m over the given paths (objective (4)).
func (m *Model) Makespan(paths []dag.Path, times, delays map[dag.StageID]float64) float64 {
	best := 0.0
	for _, p := range paths {
		if t := m.PathTime(p, times, delays); t > best {
			best = t
		}
	}
	return best
}

// SoloTimes computes t̂_k for every stage of a job.
func (m *Model) SoloTimes(j *workload.Job) map[dag.StageID]float64 {
	out := make(map[dag.StageID]float64, len(j.Profiles))
	for id, p := range j.Profiles {
		out[id] = m.SoloStageTime(p)
	}
	return out
}

// PhaseBreakdown returns the solo read/compute/write components of a stage
// on the slowest worker (useful for Gantt rendering and the A.2 table).
func (m *Model) PhaseBreakdown(p workload.StageProfile) (read, compute, write float64) {
	n := float64(len(m.Cluster.Nodes))
	in := float64(p.ShuffleIn) / n
	out := float64(p.ShuffleOut) / n
	worst := 0.0
	for _, w := range m.Cluster.Nodes {
		var r, c, wr float64
		if in > 0 {
			r = in / w.NetBW
			c = in / (float64(w.Executors) * p.ProcRate)
		}
		if out > 0 {
			wr = out / w.DiskBW
		}
		if r+c+wr > worst {
			worst, read, compute, write = r+c+wr, r, c, wr
		}
	}
	return read, compute, write
}

// PredictionError returns |model − actual| / actual, the metric of
// Appendix A.2. actual must be positive.
func PredictionError(model, actual float64) float64 {
	if actual <= 0 {
		return math.Inf(1)
	}
	return math.Abs(model-actual) / actual
}
