package cluster

import (
	"math/rand"
	"testing"
)

func TestValidateOK(t *testing.T) {
	c := NewM4LargeCluster(30)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(c.Nodes) != 30 {
		t.Fatalf("got %d nodes", len(c.Nodes))
	}
}

func TestValidateEmpty(t *testing.T) {
	c := &Cluster{}
	if err := c.Validate(); err == nil {
		t.Fatal("empty cluster must not validate")
	}
}

func TestValidateDuplicateID(t *testing.T) {
	c := &Cluster{Nodes: []Node{M4Large(1), M4Large(1)}}
	if err := c.Validate(); err == nil {
		t.Fatal("duplicate node IDs must not validate")
	}
}

func TestValidateBadCapacity(t *testing.T) {
	n := M4Large(0)
	n.Executors = 0
	if err := (&Cluster{Nodes: []Node{n}}).Validate(); err == nil {
		t.Fatal("zero executors must not validate")
	}
	n = M4Large(0)
	n.NetBW = 0
	if err := (&Cluster{Nodes: []Node{n}}).Validate(); err == nil {
		t.Fatal("zero net bandwidth must not validate")
	}
	n = M4Large(0)
	n.DiskBW = -1
	if err := (&Cluster{Nodes: []Node{n}}).Validate(); err == nil {
		t.Fatal("negative disk bandwidth must not validate")
	}
}

func TestTotals(t *testing.T) {
	c := NewUniformCluster(4, 2, MBps(10), MBps(5))
	if got := c.TotalExecutors(); got != 8 {
		t.Errorf("TotalExecutors = %d, want 8", got)
	}
	if got := c.TotalNetBW(); got != 4*MBps(10) {
		t.Errorf("TotalNetBW = %v", got)
	}
	if got := c.TotalDiskBW(); got != 4*MBps(5) {
		t.Errorf("TotalDiskBW = %v", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if Mbps(8) != 1e6 {
		t.Errorf("Mbps(8) = %v, want 1e6 bytes/s", Mbps(8))
	}
	if MBps(1) != 1<<20 {
		t.Errorf("MBps(1) = %v, want 2^20", MBps(1))
	}
}

func TestM4LargeSpec(t *testing.T) {
	n := M4Large(7)
	if n.ID != 7 || n.Executors != 2 {
		t.Fatalf("unexpected m4.large spec: %+v", n)
	}
	// Paper's measured range is 100–480 Mbit/s.
	if n.NetBW < Mbps(100) || n.NetBW > Mbps(480) {
		t.Fatalf("m4.large NetBW %v outside the paper's measured range", n.NetBW)
	}
}

func TestNewTraceClusterHeterogeneity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewTraceCluster(100, 4, rng)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	min, max := c.Nodes[0].NetBW, c.Nodes[0].NetBW
	for _, n := range c.Nodes {
		if n.NetBW < min {
			min = n.NetBW
		}
		if n.NetBW > max {
			max = n.NetBW
		}
		if n.NetBW < Mbps(100) || n.NetBW > Mbps(2000) {
			t.Fatalf("node bw %v outside paper range [100Mbps, 2Gbps]", n.NetBW)
		}
		if n.DiskBW != MBps(80) {
			t.Fatalf("disk bw %v, want static 80 MB/s", n.DiskBW)
		}
		if n.Executors != 4 {
			t.Fatalf("executors %d, want cores per machine", n.Executors)
		}
	}
	if max-min < Mbps(200) {
		t.Fatalf("expected heterogeneous bandwidths, spread only %v", max-min)
	}
}

func TestNewTraceClusterDeterministic(t *testing.T) {
	a := NewTraceCluster(10, 2, rand.New(rand.NewSource(42)))
	b := NewTraceCluster(10, 2, rand.New(rand.NewSource(42)))
	for i := range a.Nodes {
		if a.Nodes[i].NetBW != b.Nodes[i].NetBW {
			t.Fatal("same seed must give same cluster")
		}
	}
}
