// Package cluster describes the simulated compute cluster: worker nodes
// with CPU executors, NIC bandwidth and local-disk bandwidth. It mirrors
// the testbeds of the DelayStage paper: 30 Amazon EC2 m4.large instances
// for the prototype experiments and a 4,000-machine heterogeneous cluster
// for the Alibaba trace simulation.
package cluster

import (
	"fmt"
	"math/rand"
)

// Byte-size and bandwidth helpers. All sizes are bytes, all bandwidths
// bytes per second, all times seconds (float64) throughout the repo.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Mbps converts megabits/s to bytes/s.
func Mbps(v float64) float64 { return v * 1e6 / 8 }

// MBps converts megabytes/s to bytes/s.
func MBps(v float64) float64 { return v * MB }

// Node is one worker machine.
type Node struct {
	ID        int
	Executors int     // CPU execution slots (ε_w in the paper)
	NetBW     float64 // NIC bandwidth B^{·,w}, bytes/s
	DiskBW    float64 // local disk bandwidth D^w, bytes/s
}

// Cluster is a set of worker nodes.
type Cluster struct {
	Nodes []Node
}

// Validate checks every node has positive capacity and a unique ID.
func (c *Cluster) Validate() error {
	seen := make(map[int]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %d", n.ID)
		}
		seen[n.ID] = true
		if n.Executors <= 0 {
			return fmt.Errorf("cluster: node %d has %d executors", n.ID, n.Executors)
		}
		if n.NetBW <= 0 || n.DiskBW <= 0 {
			return fmt.Errorf("cluster: node %d has non-positive bandwidth", n.ID)
		}
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	return nil
}

// TotalExecutors returns the number of executors across all nodes.
func (c *Cluster) TotalExecutors() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.Executors
	}
	return t
}

// TotalNetBW returns aggregate NIC bandwidth (bytes/s).
func (c *Cluster) TotalNetBW() float64 {
	t := 0.0
	for _, n := range c.Nodes {
		t += n.NetBW
	}
	return t
}

// TotalDiskBW returns aggregate disk bandwidth (bytes/s).
func (c *Cluster) TotalDiskBW() float64 {
	t := 0.0
	for _, n := range c.Nodes {
		t += n.DiskBW
	}
	return t
}

// M4Large returns the per-node spec of the paper's prototype testbed: an
// EC2 m4.large instance with 2 vCPUs (two 1-vCPU executors), "moderate"
// network (the paper measured 100–480 Mbit/s; we take the midpoint) and a
// 32 GB gp2 SSD (~80 MB/s sustained, matching the D^w the paper uses in
// simulation).
func M4Large(id int) Node {
	return Node{ID: id, Executors: 2, NetBW: Mbps(290), DiskBW: MBps(80)}
}

// NewM4LargeCluster builds the paper's 30-instance prototype cluster (or
// any other size).
func NewM4LargeCluster(n int) *Cluster {
	c := &Cluster{Nodes: make([]Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = M4Large(i)
	}
	return c
}

// NewUniformCluster builds n identical nodes with the given capacities.
func NewUniformCluster(n, executors int, netBW, diskBW float64) *Cluster {
	c := &Cluster{Nodes: make([]Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = Node{ID: i, Executors: executors, NetBW: netBW, DiskBW: diskBW}
	}
	return c
}

// NewTraceCluster reproduces the simulation setup of Sec. 5.3: n machines,
// executor count = CPU cores per machine, network bandwidth heterogeneous
// in [100 Mbit/s, 2 Gbit/s], disk statically 80 MB/s. The rng makes the
// heterogeneity reproducible.
func NewTraceCluster(n, coresPerMachine int, rng *rand.Rand) *Cluster {
	c := &Cluster{Nodes: make([]Node, n)}
	for i := range c.Nodes {
		bw := Mbps(100 + rng.Float64()*(2000-100))
		c.Nodes[i] = Node{ID: i, Executors: coresPerMachine, NetBW: bw, DiskBW: MBps(80)}
	}
	return c
}
