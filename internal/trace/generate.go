package trace

import (
	"fmt"
	"math"
	"math/rand"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// GenConfig parameterizes the synthetic-trace generator. Defaults (zero
// values) reproduce the marginal statistics the paper reports for the
// Alibaba v2018 trace.
type GenConfig struct {
	Jobs int     // number of jobs (default 1000)
	Span float64 // arrival window in seconds (default 8 days, the trace span)
	// Seed seeds a private source. Ignored when Rng is set.
	Seed int64
	// Rng, when non-nil, drives generation, letting one seeded *rand.Rand
	// feed every stochastic component of a reproducible pipeline.
	Rng *rand.Rand
	// MaxStages caps the largest job (default 186, the paper's maximum).
	MaxStages int
	// ChainFrac is the fraction of jobs that are pure sequential chains —
	// jobs without parallel stages (default 0.314, so 68.6% have them).
	ChainFrac float64
}

func (c *GenConfig) defaults() {
	if c.Jobs <= 0 {
		c.Jobs = 1000
	}
	if c.Span <= 0 {
		c.Span = 8 * 24 * 3600
	}
	if c.MaxStages <= 0 {
		c.MaxStages = 186
	}
	if c.ChainFrac <= 0 {
		c.ChainFrac = 0.314
	}
}

// Generate produces a synthetic trace whose marginals match the paper's
// observations: ≈68.6% of jobs contain parallel stages; parallel stages
// are ≈79% of all stages; ~90% of jobs have fewer than 15 parallel
// stages with a tail up to MaxStages; stage runtimes are log-skewed in
// [10 s, ~3,000 s]; stage start/end times follow a list schedule of the
// job's DAG (stages start when their last parent ends).
func Generate(cfg GenConfig) *Trace {
	cfg.defaults()
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	tr := &Trace{Jobs: make([]Job, 0, cfg.Jobs)}
	for i := 0; i < cfg.Jobs; i++ {
		arrival := rng.Float64() * cfg.Span
		var job Job
		if rng.Float64() < cfg.ChainFrac {
			job = genChain(rng, arrival)
		} else {
			job = genDAG(rng, arrival, cfg.MaxStages)
		}
		job.Name = fmt.Sprintf("j_%d", i)
		tr.Jobs = append(tr.Jobs, job)
	}
	tr.SortByArrival()
	return tr
}

// stageDuration draws a log-skewed runtime in [10, ~2560] seconds,
// matching the 10–3,000 s span observed in the trace.
func stageDuration(rng *rand.Rand) float64 {
	return 10 * math.Pow(2, rng.Float64()*8)
}

// genChain builds a job with no parallel stages: a sequential chain of
// 1–4 stages.
func genChain(rng *rand.Rand, arrival float64) Job {
	n := 1 + rng.Intn(4)
	j := Job{Arrival: arrival}
	t := arrival
	for i := 1; i <= n; i++ {
		var parents []int
		if i > 1 {
			parents = []int{i - 1}
		}
		d := stageDuration(rng)
		j.Stages = append(j.Stages, Stage{ID: i, Parents: parents, Start: t, End: t + d})
		t += d
	}
	return j
}

// stageCount draws the stage count of a parallel job: mostly small (the
// paper: ~90% of jobs have <15 parallel stages) with a tail to max.
func stageCount(rng *rand.Rand, max int) int {
	if rng.Float64() < 0.88 {
		// Geometric-ish bulk: 4 .. ~15.
		n := 4
		for n < 15 && rng.Float64() < 0.62 {
			n++
		}
		return n
	}
	// Tail: log-uniform 15 .. max.
	lo, hi := math.Log(15), math.Log(float64(max))
	return int(math.Exp(lo + rng.Float64()*(hi-lo)))
}

// genDAG builds a job with parallel stages. Real trace DAGs are wide
// blocks of concurrent stages punctuated by synchronization barriers and
// framed by short sequential prefix/suffix chains; that structure is what
// keeps the parallel-stage share near 79% and the parallel-makespan
// fraction near 82% rather than ~100%.
func genDAG(rng *rand.Rand, arrival float64, maxStages int) Job {
	n := stageCount(rng, maxStages)
	j := Job{Arrival: arrival}
	end := make([]float64, n+1)

	addStage := func(id int, parents []int) {
		start := arrival
		for _, p := range parents {
			if end[p] > start {
				start = end[p]
			}
		}
		d := stageDuration(rng)
		end[id] = start + d
		j.Stages = append(j.Stages, Stage{ID: id, Parents: parents, Start: start, End: start + d})
	}

	// Sequential prefix chain (usually absent, occasionally 1–2 stages —
	// weights tuned so the parallel-makespan fraction averages ≈0.82 as
	// in Fig. 3).
	prefix := 0
	switch u := rng.Float64(); {
	case u < 0.25:
		prefix = 1
	case u < 0.35:
		prefix = 2
	}
	if prefix >= n-1 {
		prefix = 0
	}
	i := 1
	for ; i <= prefix; i++ {
		var parents []int
		if i > 1 {
			parents = []int{i - 1}
		}
		addStage(i, parents)
	}
	// Suffix chain (often a single collector stage).
	suffix := 0
	switch u := rng.Float64(); {
	case u < 0.45:
		suffix = 1
	case u < 0.55:
		suffix = 2
	}
	if n-prefix-suffix < 2 {
		suffix = 0
	}
	bodyEnd := n - suffix

	// Body: wide blocks separated by occasional barriers. The first two
	// body stages always share the same parent set, guaranteeing the job
	// really has parallel stages (it was drawn as a parallel job).
	bodyFirst := i
	segStart := i // first stage id of the current segment
	for ; i <= bodyEnd; i++ {
		if i == bodyFirst+1 && i <= bodyEnd {
			var parents []int
			if prefix > 0 {
				parents = []int{prefix}
			}
			addStage(i, parents)
			continue
		}
		isBarrier := i > segStart && rng.Float64() < 0.08
		var parents []int
		if isBarrier {
			// Join every sink of the current segment.
			sinks := map[int]bool{}
			for s := segStart; s < i; s++ {
				sinks[s] = true
			}
			for _, st := range j.Stages {
				if st.ID >= segStart && st.ID < i {
					for _, p := range st.Parents {
						delete(sinks, p)
					}
				}
			}
			for s := segStart; s < i; s++ {
				if sinks[s] {
					parents = append(parents, s)
				}
			}
			segStart = i + 1
		} else {
			// Wide block member: 0–2 parents from within the segment, or
			// the previous barrier/prefix if the segment just began.
			if segStart > 1 && i == segStart {
				parents = []int{segStart - 1}
			} else if i > segStart {
				nPar := 0
				for rng.Float64() < 0.30 && nPar < 2 && nPar < i-segStart {
					nPar++
				}
				seen := map[int]bool{}
				for len(parents) < nPar {
					p := segStart + rng.Intn(i-segStart)
					if !seen[p] {
						seen[p] = true
						parents = append(parents, p)
					}
				}
				if segStart > 1 && len(parents) == 0 && rng.Float64() < 0.5 {
					parents = []int{segStart - 1}
				}
			} else if segStart > 1 {
				parents = []int{segStart - 1}
			}
		}
		addStage(i, parents)
	}

	// Suffix: first suffix stage joins every remaining sink, the rest chain.
	if suffix > 0 {
		sinks := map[int]bool{}
		for s := 1; s <= bodyEnd; s++ {
			sinks[s] = true
		}
		for _, st := range j.Stages {
			for _, p := range st.Parents {
				delete(sinks, p)
			}
		}
		var parents []int
		for s := 1; s <= bodyEnd; s++ {
			if sinks[s] {
				parents = append(parents, s)
			}
		}
		addStage(i, parents)
		i++
		for ; i <= n; i++ {
			addStage(i, []int{i - 1})
		}
	}
	return j
}

// PhaseSplit controls how a traced stage's runtime is apportioned to the
// three phases when converting to a simulator workload.
type PhaseSplit struct {
	Read, Write float64 // fractions; compute gets the rest
}

// DefaultSplit mirrors the read/compute/write balance of the paper's
// prototype workloads.
var DefaultSplit = PhaseSplit{Read: 0.30, Write: 0.08}

// Workload converts a traced job into a simulator workload on the given
// reference cluster: each stage's observed runtime becomes its
// uncontended phase times under the split. skewFn, if non-nil, supplies
// per-stage task skew (default 0.3).
func (j *Job) Workload(ref *cluster.Cluster, split PhaseSplit, skewFn func(stage int) float64) (*workload.Job, error) {
	if split.Read < 0 || split.Write < 0 || split.Read+split.Write >= 1 {
		return nil, fmt.Errorf("trace: bad phase split %+v", split)
	}
	g, err := j.Graph()
	if err != nil {
		return nil, err
	}
	profiles := make(map[dag.StageID]workload.StageProfile, len(j.Stages))
	for _, s := range j.Stages {
		d := s.Duration()
		if d <= 0 {
			d = 1
		}
		skew := 0.3
		if skewFn != nil {
			skew = skewFn(s.ID)
		}
		profiles[dag.StageID(s.ID)] = workload.FromPhases(ref, workload.PhaseSpec{
			ReadSec:    d * split.Read,
			ComputeSec: d * (1 - split.Read - split.Write),
			WriteSec:   d * split.Write,
			Skew:       skew,
		})
	}
	wj := &workload.Job{Name: j.Name, Graph: g, Profiles: profiles}
	if err := wj.Validate(); err != nil {
		return nil, err
	}
	return wj, nil
}
