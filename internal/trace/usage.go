package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
)

// The Alibaba v2018 trace ships machine_usage.csv — per-machine resource
// samples — which is what the paper's Fig. 4 plots. This file provides a
// parser for that format, the Fig. 4 statistics over it, and a writer so
// simulated replays can be exported in the same shape.

// UsageSample is one machine_usage.csv row (the columns Fig. 4 needs).
type UsageSample struct {
	MachineID string
	Time      float64 // seconds since trace start
	CPUUtil   float64 // percent, 0–100
	NetIn     float64 // normalized 0–100 (the trace reports normalized units)
	NetOut    float64
}

// Usage is a parsed machine_usage table, grouped by machine.
type Usage struct {
	Machines map[string][]UsageSample // per machine, sorted by time
}

// ParseUsage reads machine_usage.csv: columns machine_id, time_stamp,
// cpu_util_percent, mem_util_percent, mem_gps, mkpi, net_in, net_out,
// disk_io_percent. Missing numeric fields (empty strings appear in the
// real trace) parse as NaN-skipped samples.
func ParseUsage(r io.Reader) (*Usage, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	u := &Usage{Machines: map[string][]UsageSample{}}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: usage: %w", err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("trace: usage record has %d fields, want ≥3", len(rec))
		}
		ts, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: usage timestamp %q", rec[1])
		}
		cpu, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			continue // empty cpu fields occur in the real trace
		}
		s := UsageSample{MachineID: rec[0], Time: ts, CPUUtil: cpu}
		if len(rec) > 6 {
			s.NetIn, _ = strconv.ParseFloat(rec[6], 64)
		}
		if len(rec) > 7 {
			s.NetOut, _ = strconv.ParseFloat(rec[7], 64)
		}
		u.Machines[s.MachineID] = append(u.Machines[s.MachineID], s)
	}
	for id := range u.Machines {
		ms := u.Machines[id]
		sort.Slice(ms, func(i, j int) bool { return ms[i].Time < ms[j].Time })
		u.Machines[id] = ms
	}
	if len(u.Machines) == 0 {
		return nil, fmt.Errorf("trace: usage: no samples")
	}
	return u, nil
}

// WriteUsage emits the table in machine_usage.csv column order.
func (u *Usage) WriteUsage(w io.Writer) error {
	cw := csv.NewWriter(w)
	ids := make([]string, 0, len(u.Machines))
	for id := range u.Machines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, s := range u.Machines[id] {
			rec := []string{
				s.MachineID,
				strconv.FormatFloat(s.Time, 'f', 0, 64),
				strconv.FormatFloat(s.CPUUtil, 'f', 2, 64),
				"", "", "",
				strconv.FormatFloat(s.NetIn, 'f', 2, 64),
				strconv.FormatFloat(s.NetOut, 'f', 2, 64),
				"",
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// UsageStats are the Fig. 4 headline numbers.
type UsageStats struct {
	Machines       int
	MeanCPU        float64 // percent, across all samples
	MeanNet        float64 // percent, (in+out)/2
	LowCPUFraction float64 // fraction of samples below 10% CPU (paper: 39.1% for m_2077)
	MinCPU, MaxCPU float64
}

// AnalyzeUsage computes the Fig. 4 statistics, optionally restricted to
// one machine ("" = all machines, the Fig. 4a view; a machine id = the
// Fig. 4b view).
func AnalyzeUsage(u *Usage, machineID string) (UsageStats, error) {
	st := UsageStats{MinCPU: 101}
	var cpuSum, netSum float64
	n := 0
	low := 0
	for id, ms := range u.Machines {
		if machineID != "" && id != machineID {
			continue
		}
		st.Machines++
		for _, s := range ms {
			cpuSum += s.CPUUtil
			netSum += (s.NetIn + s.NetOut) / 2
			n++
			if s.CPUUtil < 10 {
				low++
			}
			if s.CPUUtil < st.MinCPU {
				st.MinCPU = s.CPUUtil
			}
			if s.CPUUtil > st.MaxCPU {
				st.MaxCPU = s.CPUUtil
			}
		}
	}
	if n == 0 {
		return st, fmt.Errorf("trace: usage: no samples for machine %q", machineID)
	}
	st.MeanCPU = cpuSum / float64(n)
	st.MeanNet = netSum / float64(n)
	st.LowCPUFraction = float64(low) / float64(n)
	return st, nil
}

// newUsageRand isolates the generator's randomness source.
func newUsageRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// GenerateUsage synthesizes a machine_usage table calibrated to Fig. 4:
// each machine alternates bursty busy periods (CPU near saturation) and
// idle troughs, so per-machine utilization swings 0–98% while the fleet
// average sits in the paper's 20–50% band and machines spend ≈39% of
// samples below 10% CPU.
func GenerateUsage(machines int, span, interval float64, seed int64) *Usage {
	rng := newUsageRand(seed)
	u := &Usage{Machines: map[string][]UsageSample{}}
	for m := 0; m < machines; m++ {
		id := fmt.Sprintf("m_%d", m+1)
		busy := rng.Float64() < 0.5 // start state
		// Mean sojourn times tuned for ≈39% idle-sample share.
		busyMean, idleMean := 6*interval, 4*interval
		remaining := rng.ExpFloat64() * busyMean
		for t := 0.0; t < span; t += interval {
			for remaining <= 0 {
				busy = !busy
				if busy {
					remaining += rng.ExpFloat64() * busyMean
				} else {
					remaining += rng.ExpFloat64() * idleMean
				}
			}
			remaining -= interval
			var cpu, net float64
			if busy {
				cpu = 55 + rng.Float64()*43 // 55–98%
				net = 20 + rng.Float64()*42
			} else {
				cpu = rng.Float64() * 10 // 0–10%
				net = rng.Float64() * 8
			}
			u.Machines[id] = append(u.Machines[id], UsageSample{
				MachineID: id, Time: t, CPUUtil: cpu, NetIn: net, NetOut: net * 0.9,
			})
		}
	}
	return u
}
