package trace

import (
	"bytes"
	"strings"
	"testing"
)

const sampleUsage = `m_1,10,55.5,40,,,20,25,5
m_1,20,8.0,40,,,5,5,5
m_2,10,90.0,60,,,50,45,10
m_2,20,,60,,,50,45,10
m_1,5,30.0,40,,,10,12,5
`

func TestParseUsage(t *testing.T) {
	u, err := ParseUsage(strings.NewReader(sampleUsage))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Machines) != 2 {
		t.Fatalf("%d machines", len(u.Machines))
	}
	m1 := u.Machines["m_1"]
	if len(m1) != 3 {
		t.Fatalf("m_1 has %d samples", len(m1))
	}
	// Sorted by time.
	if m1[0].Time != 5 || m1[2].Time != 20 {
		t.Fatalf("m_1 not sorted: %+v", m1)
	}
	// The empty-cpu row of m_2 is skipped.
	if len(u.Machines["m_2"]) != 1 {
		t.Fatalf("m_2 has %d samples, want 1", len(u.Machines["m_2"]))
	}
	if m1[1].NetIn != 20 || m1[1].NetOut != 25 {
		t.Fatalf("net fields wrong: %+v", m1[1])
	}
}

func TestParseUsageErrors(t *testing.T) {
	if _, err := ParseUsage(strings.NewReader("")); err == nil {
		t.Error("empty usage must error")
	}
	if _, err := ParseUsage(strings.NewReader("m_1,xyz,50\n")); err == nil {
		t.Error("bad timestamp must error")
	}
	if _, err := ParseUsage(strings.NewReader("m_1\n")); err == nil {
		t.Error("short record must error")
	}
}

func TestAnalyzeUsage(t *testing.T) {
	u, err := ParseUsage(strings.NewReader(sampleUsage))
	if err != nil {
		t.Fatal(err)
	}
	all, err := AnalyzeUsage(u, "")
	if err != nil {
		t.Fatal(err)
	}
	if all.Machines != 2 {
		t.Fatalf("machines %d", all.Machines)
	}
	// Mean CPU over {55.5, 8, 30, 90} = 45.875.
	if all.MeanCPU < 45.8 || all.MeanCPU > 46 {
		t.Fatalf("mean CPU %v", all.MeanCPU)
	}
	// One of four samples below 10%.
	if all.LowCPUFraction != 0.25 {
		t.Fatalf("low fraction %v", all.LowCPUFraction)
	}
	one, err := AnalyzeUsage(u, "m_2")
	if err != nil {
		t.Fatal(err)
	}
	if one.Machines != 1 || one.MeanCPU != 90 {
		t.Fatalf("m_2 stats %+v", one)
	}
	if _, err := AnalyzeUsage(u, "m_404"); err == nil {
		t.Error("unknown machine must error")
	}
}

func TestUsageRoundTrip(t *testing.T) {
	u, err := ParseUsage(strings.NewReader(sampleUsage))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := u.WriteUsage(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseUsage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for id, ms := range u.Machines {
		if len(back.Machines[id]) != len(ms) {
			t.Fatalf("machine %s: %d samples, want %d", id, len(back.Machines[id]), len(ms))
		}
		for i := range ms {
			if back.Machines[id][i].CPUUtil != ms[i].CPUUtil {
				t.Fatalf("machine %s sample %d changed", id, i)
			}
		}
	}
}

func TestGenerateUsageCalibration(t *testing.T) {
	u := GenerateUsage(50, 24*3600, 300, 1)
	st, err := AnalyzeUsage(u, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.Machines != 50 {
		t.Fatalf("machines %d", st.Machines)
	}
	// Paper Fig. 4a: fleet CPU averages 20–50%.
	if st.MeanCPU < 20 || st.MeanCPU > 55 {
		t.Fatalf("fleet mean CPU %.1f%% outside the paper's band", st.MeanCPU)
	}
	// Paper Fig. 4b: ≈39% of one machine's time below 10% CPU.
	if st.LowCPUFraction < 0.25 || st.LowCPUFraction > 0.55 {
		t.Fatalf("low-CPU fraction %.2f outside plausible band around 0.39", st.LowCPUFraction)
	}
	if st.MaxCPU < 90 {
		t.Fatalf("machines should hit near-saturation, max %.1f", st.MaxCPU)
	}
	// Deterministic per seed.
	again := GenerateUsage(50, 24*3600, 300, 1)
	if again.Machines["m_1"][3] != u.Machines["m_1"][3] {
		t.Fatal("same seed must reproduce samples")
	}
}
