// Package trace provides the Alibaba cluster-trace v2018 substrate of the
// paper's Sec. 5.3: a parser for the batch_task CSV format (with its
// "M3_1_2"-style dependency-encoding task names), a deterministic
// synthetic-trace generator calibrated to every statistic the paper
// reports about the real trace, per-job DAG reconstruction, and the
// trace analyses behind Figs. 2 and 3.
//
// The real 2.7M-job trace is not redistributable, so experiments run on
// generated traces; the parser exists so real trace files drop in
// unchanged.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"delaystage/internal/dag"
)

// Stage is one stage (Alibaba "task") of a traced job. Times are seconds
// relative to the trace origin.
type Stage struct {
	ID      int
	Parents []int
	Start   float64
	End     float64
}

// Duration returns the stage runtime.
func (s Stage) Duration() float64 { return s.End - s.Start }

// Job is one traced job: its stages plus the job arrival time.
type Job struct {
	Name    string
	Arrival float64
	Stages  []Stage
}

// Trace is a set of jobs.
type Trace struct {
	Jobs []Job
}

// Graph reconstructs the job's stage DAG. Dangling parent references
// (present in the real trace) are dropped.
func (j *Job) Graph() (*dag.Graph, error) {
	g := dag.New()
	known := make(map[int]bool, len(j.Stages))
	for _, s := range j.Stages {
		known[s.ID] = true
	}
	for _, s := range j.Stages {
		var parents []dag.StageID
		for _, p := range s.Parents {
			if known[p] && p != s.ID {
				parents = append(parents, dag.StageID(p))
			}
		}
		if err := g.AddStage(dag.Stage{ID: dag.StageID(s.ID), Parents: parents}); err != nil {
			return nil, fmt.Errorf("trace job %s: %w", j.Name, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("trace job %s: %w", j.Name, err)
	}
	return g, nil
}

// ParseTaskName decodes the Alibaba task-name dependency grammar:
// a letter prefix, the stage's own number, then underscore-separated
// parent numbers — e.g. "M1" (stage 1, no parents), "R3_1_2" (stage 3
// depends on stages 1 and 2). Names without that structure ("task_...",
// "MergeTask", ...) return ok=false and are treated as independent stages.
func ParseTaskName(name string) (id int, parents []int, ok bool) {
	i := 0
	for i < len(name) && (name[i] < '0' || name[i] > '9') {
		i++
	}
	if i == 0 || i >= len(name) {
		return 0, nil, false
	}
	// Reject the "task_1234" style: prefix containing '_' is unstructured.
	if strings.Contains(name[:i], "_") {
		return 0, nil, false
	}
	parts := strings.Split(name[i:], "_")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, nil, false
	}
	for _, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil {
			return 0, nil, false
		}
		parents = append(parents, v)
	}
	return id, parents, true
}

// NameClass is ClassifyTaskName's three-way verdict on a task name.
type NameClass int

const (
	// NameStructured names decode fully under the dependency grammar:
	// "M1", "R3_1_2".
	NameStructured NameClass = iota
	// NameUnstructured names carry no dependency grammar at all:
	// "task_1234", "MergeTask", "".
	NameUnstructured
	// NameMalformed names start the grammar but break it mid-way —
	// "M3_1_x", "M1_" — so a dependency list exists but cannot be trusted.
	NameMalformed
)

// String implements fmt.Stringer.
func (c NameClass) String() string {
	switch c {
	case NameStructured:
		return "structured"
	case NameUnstructured:
		return "unstructured"
	default:
		return "malformed"
	}
}

// ClassifyTaskName reports how a task name relates to the dependency
// grammar. ParseTaskName answers ok only for NameStructured; callers that
// must distinguish a benign unstructured name from a corrupted structured
// one (dependency information silently lost) need the three-way answer.
func ClassifyTaskName(name string) NameClass {
	i := 0
	for i < len(name) && (name[i] < '0' || name[i] > '9') {
		i++
	}
	if i == 0 || i >= len(name) || strings.Contains(name[:i], "_") {
		return NameUnstructured
	}
	parts := strings.Split(name[i:], "_")
	if _, err := strconv.Atoi(parts[0]); err != nil {
		return NameUnstructured
	}
	for _, p := range parts[1:] {
		if _, err := strconv.Atoi(p); err != nil {
			return NameMalformed
		}
	}
	return NameStructured
}

// ParseStats counts everything the lenient parser had to tolerate. The
// real trace contains all of it: truncated rows, empty names, non-numeric
// timestamps, dependency tokens like "M3_1_x", stages that list themselves
// as a parent, and duplicated task rows.
type ParseStats struct {
	Rows        int // data rows read
	SkippedRows int // rows excluded from the trace (sum of the three below)

	ShortRows      int // fewer than 7 fields
	EmptyFields    int // missing task or job name
	MalformedTimes int // non-numeric start/end

	MalformedNames   int // NameMalformed rows, kept as independent stages
	SelfDependencies int // self-edges dropped from structured names
	DuplicateRows    int // repeated (job, stage) rows collapsed
	DroppedJobs      int // assembled jobs removed as cyclic/corrupt
}

// Parse reads a batch_task.csv stream (columns: task_name, instance_num,
// job_name, task_type, status, start_time, end_time, plan_cpu, plan_mem)
// and assembles jobs. Tasks with unstructured names get synthetic stage
// IDs (they continue after the max structured ID). Jobs with zero or
// negative stage durations keep them (the analyses clamp); jobs whose DAG
// turns out cyclic are dropped. Parse is strict: a truncated row or a
// non-numeric timestamp aborts with a row-numbered error. ParseWithStats
// is the lenient variant for real-world files.
func Parse(r io.Reader) (*Trace, error) {
	tr, _, err := parse(r, true)
	return tr, err
}

// ParseWithStats is Parse for files that cannot be trusted: rows with too
// few fields, empty task/job names, or unparseable timestamps are skipped
// and counted instead of aborting the whole file, and every other anomaly
// the parser absorbs is tallied in the returned stats.
func ParseWithStats(r io.Reader) (*Trace, *ParseStats, error) {
	return parse(r, false)
}

func parse(r io.Reader, strict bool) (*Trace, *ParseStats, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	stats := &ParseStats{}
	type rawStage struct {
		Stage
		structured bool
	}
	jobs := map[string][]rawStage{}
	var order []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, stats, fmt.Errorf("trace: %w", err)
		}
		stats.Rows++
		if len(rec) < 7 {
			if strict {
				return nil, stats, fmt.Errorf("trace: row %d: record has %d fields, want ≥7", stats.Rows, len(rec))
			}
			stats.ShortRows++
			stats.SkippedRows++
			continue
		}
		name, jobName := rec[0], rec[2]
		if !strict && (name == "" || jobName == "") {
			stats.EmptyFields++
			stats.SkippedRows++
			continue
		}
		start, err1 := strconv.ParseFloat(rec[5], 64)
		end, err2 := strconv.ParseFloat(rec[6], 64)
		if err1 != nil || err2 != nil {
			if strict {
				return nil, stats, fmt.Errorf("trace: row %d: bad times %q/%q in job %s", stats.Rows, rec[5], rec[6], jobName)
			}
			stats.MalformedTimes++
			stats.SkippedRows++
			continue
		}
		if _, seen := jobs[jobName]; !seen {
			order = append(order, jobName)
		}
		if ClassifyTaskName(name) == NameMalformed {
			// The dependency list is corrupt; the work is real. Keep the
			// stage, drop the untrustworthy edges.
			stats.MalformedNames++
		}
		id, parents, ok := ParseTaskName(name)
		if ok {
			kept := parents[:0]
			for _, p := range parents {
				if p == id {
					stats.SelfDependencies++
					continue
				}
				kept = append(kept, p)
			}
			parents = kept
		}
		jobs[jobName] = append(jobs[jobName], rawStage{
			Stage:      Stage{ID: id, Parents: parents, Start: start, End: end},
			structured: ok,
		})
	}
	tr := &Trace{}
	for _, jn := range order {
		raw := jobs[jn]
		maxID := 0
		for _, s := range raw {
			if s.structured && s.ID > maxID {
				maxID = s.ID
			}
		}
		job := Job{Name: jn}
		seen := map[int]bool{}
		arrival := 0.0
		first := true
		for _, s := range raw {
			st := s.Stage
			if !s.structured {
				maxID++
				st.ID = maxID
				st.Parents = nil
			}
			if seen[st.ID] {
				stats.DuplicateRows++
				continue // duplicate task rows exist in the real trace
			}
			seen[st.ID] = true
			job.Stages = append(job.Stages, st)
			if first || st.Start < arrival {
				arrival = st.Start
				first = false
			}
		}
		job.Arrival = arrival
		if _, err := job.Graph(); err != nil {
			stats.DroppedJobs++
			continue // drop cyclic/corrupt jobs, as the paper excludes incomplete ones
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	return tr, stats, nil
}

// WriteCSV emits the trace in the batch_task.csv format Parse understands,
// so generated traces round-trip.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, j := range t.Jobs {
		for _, s := range j.Stages {
			name := fmt.Sprintf("M%d", s.ID)
			if len(s.Parents) > 0 {
				parts := make([]string, 0, len(s.Parents)+1)
				parts = append(parts, fmt.Sprintf("R%d", s.ID))
				for _, p := range s.Parents {
					parts = append(parts, strconv.Itoa(p))
				}
				name = strings.Join(parts, "_")
			}
			rec := []string{
				name, "1", j.Name, "batch", "Terminated",
				strconv.FormatFloat(s.Start, 'f', 3, 64),
				strconv.FormatFloat(s.End, 'f', 3, 64),
				"100", "0.5",
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// JobStats summarizes one job for the Fig. 2 / Fig. 3 analyses.
type JobStats struct {
	Stages         int
	ParallelStages int
	// ParallelMakespanFrac is the makespan of the parallel stages divided
	// by the job execution time (0 when the job has no parallel stages).
	ParallelMakespanFrac float64
}

// Analyze computes per-job statistics across the trace. Jobs whose DAG
// fails to build are skipped.
func Analyze(t *Trace) []JobStats {
	out := make([]JobStats, 0, len(t.Jobs))
	for i := range t.Jobs {
		j := &t.Jobs[i]
		g, err := j.Graph()
		if err != nil {
			continue
		}
		r, err := dag.NewReachability(g)
		if err != nil {
			continue
		}
		k := dag.ParallelStages(g, r)
		st := JobStats{Stages: len(j.Stages), ParallelStages: len(k)}
		if len(k) > 0 {
			inK := map[int]bool{}
			for _, id := range k {
				inK[int(id)] = true
			}
			var kLo, kHi, jLo, jHi float64
			firstK, firstJ := true, true
			for _, s := range j.Stages {
				if firstJ || s.Start < jLo {
					jLo = s.Start
				}
				if firstJ || s.End > jHi {
					jHi = s.End
				}
				firstJ = false
				if inK[s.ID] {
					if firstK || s.Start < kLo {
						kLo = s.Start
					}
					if firstK || s.End > kHi {
						kHi = s.End
					}
					firstK = false
				}
			}
			if jHi > jLo {
				st.ParallelMakespanFrac = (kHi - kLo) / (jHi - jLo)
			}
		}
		out = append(out, st)
	}
	return out
}

// Summary aggregates the headline numbers the paper reports from the
// trace (Sec. 2.1).
type Summary struct {
	Jobs                  int
	JobsWithParallel      int     // paper: 68.6% of jobs
	TotalStages           int     // paper: 16,650,134
	TotalParallelStages   int     // paper: 13,173,110 (79.1%)
	ParallelStageShare    float64 // TotalParallelStages / TotalStages
	JobsWithParallelShare float64
	MeanParallelFrac      float64 // paper: 82.3%
}

// Summarize condenses Analyze output.
func Summarize(stats []JobStats) Summary {
	s := Summary{Jobs: len(stats)}
	fracs := 0.0
	nFrac := 0
	for _, js := range stats {
		s.TotalStages += js.Stages
		s.TotalParallelStages += js.ParallelStages
		if js.ParallelStages > 0 {
			s.JobsWithParallel++
			fracs += js.ParallelMakespanFrac
			nFrac++
		}
	}
	if s.TotalStages > 0 {
		s.ParallelStageShare = float64(s.TotalParallelStages) / float64(s.TotalStages)
	}
	if s.Jobs > 0 {
		s.JobsWithParallelShare = float64(s.JobsWithParallel) / float64(s.Jobs)
	}
	if nFrac > 0 {
		s.MeanParallelFrac = fracs / float64(nFrac)
	}
	return s
}

// SortByArrival orders jobs by arrival time (replays need it).
func (t *Trace) SortByArrival() {
	sort.SliceStable(t.Jobs, func(i, j int) bool { return t.Jobs[i].Arrival < t.Jobs[j].Arrival })
}
