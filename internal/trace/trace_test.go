package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"delaystage/internal/cluster"
)

func TestParseTaskName(t *testing.T) {
	cases := []struct {
		in      string
		id      int
		parents []int
		ok      bool
	}{
		{"M1", 1, nil, true},
		{"R3_1_2", 3, []int{1, 2}, true},
		{"M2_1", 2, []int{1}, true},
		{"J10_4", 10, []int{4}, true},
		{"task_1234", 0, nil, false},
		{"MergeTask", 0, nil, false},
		{"", 0, nil, false},
		{"M", 0, nil, false},
		{"M1_x", 0, nil, false},
	}
	for _, c := range cases {
		id, parents, ok := ParseTaskName(c.in)
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if id != c.id || len(parents) != len(c.parents) {
			t.Errorf("%q: id=%d parents=%v, want %d %v", c.in, id, parents, c.id, c.parents)
			continue
		}
		for i := range parents {
			if parents[i] != c.parents[i] {
				t.Errorf("%q: parents=%v, want %v", c.in, parents, c.parents)
			}
		}
	}
}

const sampleCSV = `M1,1,job_a,batch,Terminated,100,150,100,0.5
M2,1,job_a,batch,Terminated,100,140,100,0.5
R3_1_2,1,job_a,batch,Terminated,150,200,100,0.5
task_merge,1,job_a,batch,Terminated,90,95,50,0.2
M1,1,job_b,batch,Terminated,500,600,100,0.5
`

func TestParseSample(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(tr.Jobs))
	}
	a := tr.Jobs[0]
	if a.Name != "job_a" || len(a.Stages) != 4 {
		t.Fatalf("job_a = %+v", a)
	}
	if a.Arrival != 90 {
		t.Fatalf("job_a arrival %v, want 90 (earliest stage start)", a.Arrival)
	}
	g, err := a.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Parents(3); len(got) != 2 {
		t.Fatalf("stage 3 parents = %v", got)
	}
	// The unstructured task got a fresh ID (4) with no parents.
	if got := g.Parents(4); len(got) != 0 {
		t.Fatalf("synthetic stage parents = %v", got)
	}
}

func TestParseBadRecord(t *testing.T) {
	if _, err := Parse(strings.NewReader("M1,1,j\n")); err == nil {
		t.Fatal("short record must error")
	}
	if _, err := Parse(strings.NewReader("M1,1,j,b,T,abc,200,1,1\n")); err == nil {
		t.Fatal("bad start time must error")
	}
}

func TestParseDuplicateStageRows(t *testing.T) {
	csv := "M1,1,j,b,T,0,10,1,1\nM1,2,j,b,T,0,12,1,1\n"
	tr, err := Parse(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs[0].Stages) != 1 {
		t.Fatalf("duplicates must collapse: %+v", tr.Jobs[0].Stages)
	}
}

func TestParseDanglingParent(t *testing.T) {
	csv := "R2_9,1,j,b,T,0,10,1,1\n"
	tr, err := Parse(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	g, err := tr.Jobs[0].Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Parents(2); len(got) != 0 {
		t.Fatalf("dangling parent must be dropped, got %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	tr := Generate(GenConfig{Jobs: 50, Seed: 3})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip: %d jobs, want %d", len(back.Jobs), len(tr.Jobs))
	}
	for i := range tr.Jobs {
		if len(back.Jobs[i].Stages) != len(tr.Jobs[i].Stages) {
			t.Fatalf("job %d: %d stages, want %d", i, len(back.Jobs[i].Stages), len(tr.Jobs[i].Stages))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Jobs: 30, Seed: 9})
	b := Generate(GenConfig{Jobs: 30, Seed: 9})
	for i := range a.Jobs {
		if a.Jobs[i].Arrival != b.Jobs[i].Arrival || len(a.Jobs[i].Stages) != len(b.Jobs[i].Stages) {
			t.Fatal("same seed must give identical trace")
		}
	}
}

// TestGenerateMatchesPaperMarginals is the calibration test: the synthetic
// trace must reproduce the statistics the paper reports (Sec. 2.1),
// within tolerance.
func TestGenerateMatchesPaperMarginals(t *testing.T) {
	tr := Generate(GenConfig{Jobs: 4000, Seed: 1})
	stats := Analyze(tr)
	s := Summarize(stats)
	// Paper: 68.6% of jobs have parallel stages.
	if s.JobsWithParallelShare < 0.62 || s.JobsWithParallelShare > 0.75 {
		t.Errorf("jobs-with-parallel share %.3f, want ≈0.686", s.JobsWithParallelShare)
	}
	// Paper: parallel stages are 79.1% of all stages.
	if s.ParallelStageShare < 0.70 || s.ParallelStageShare > 0.90 {
		t.Errorf("parallel stage share %.3f, want ≈0.79", s.ParallelStageShare)
	}
	// Paper: parallel-stage makespan averages 82.3% of job time.
	if s.MeanParallelFrac < 0.65 || s.MeanParallelFrac > 0.95 {
		t.Errorf("mean parallel makespan fraction %.3f, want ≈0.82", s.MeanParallelFrac)
	}
	// Paper (Fig. 2): ~90% of jobs have <15 parallel stages.
	under15 := 0
	for _, js := range stats {
		if js.ParallelStages < 15 {
			under15++
		}
	}
	frac := float64(under15) / float64(len(stats))
	if frac < 0.82 || frac > 0.97 {
		t.Errorf("jobs with <15 parallel stages: %.3f, want ≈0.90", frac)
	}
	// Stage runtimes must span the paper's 10–3,000 s band.
	minD, maxD := 1e18, 0.0
	for _, j := range tr.Jobs {
		for _, st := range j.Stages {
			d := st.Duration()
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	if minD < 9.99 || maxD > 3000 {
		t.Errorf("stage durations [%.1f, %.1f] outside [10, 3000]", minD, maxD)
	}
	if maxD < 1000 {
		t.Errorf("max duration %.1f; want a long tail", maxD)
	}
	// Stage counts must reach a tail past 100 but stay ≤ MaxStages.
	maxStages := 0
	for _, js := range stats {
		if js.Stages > maxStages {
			maxStages = js.Stages
		}
	}
	if maxStages > 186 {
		t.Errorf("max stages %d > 186", maxStages)
	}
	if maxStages < 60 {
		t.Errorf("max stages %d; want a heavy tail (paper max 186)", maxStages)
	}
}

func TestGenerateScheduleConsistent(t *testing.T) {
	tr := Generate(GenConfig{Jobs: 200, Seed: 5})
	for _, j := range tr.Jobs {
		byID := map[int]Stage{}
		for _, s := range j.Stages {
			byID[s.ID] = s
		}
		for _, s := range j.Stages {
			if s.End <= s.Start {
				t.Fatalf("job %s stage %d: end ≤ start", j.Name, s.ID)
			}
			if s.Start < j.Arrival-1e-9 {
				t.Fatalf("job %s stage %d starts before arrival", j.Name, s.ID)
			}
			for _, p := range s.Parents {
				if ps, ok := byID[p]; ok && s.Start < ps.End-1e-9 {
					t.Fatalf("job %s stage %d starts before parent %d ends", j.Name, s.ID, p)
				}
			}
		}
	}
}

func TestSortByArrival(t *testing.T) {
	tr := Generate(GenConfig{Jobs: 100, Seed: 2})
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Arrival < tr.Jobs[i-1].Arrival {
			t.Fatal("jobs not sorted by arrival")
		}
	}
}

func TestWorkloadConversion(t *testing.T) {
	tr := Generate(GenConfig{Jobs: 20, Seed: 4})
	ref := cluster.NewM4LargeCluster(4)
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		wj, err := j.Workload(ref, DefaultSplit, nil)
		if err != nil {
			t.Fatalf("job %s: %v", j.Name, err)
		}
		if wj.Graph.Len() != len(j.Stages) {
			t.Fatalf("job %s: %d stages, want %d", j.Name, wj.Graph.Len(), len(j.Stages))
		}
	}
}

func TestWorkloadBadSplit(t *testing.T) {
	tr := Generate(GenConfig{Jobs: 1, Seed: 4})
	ref := cluster.NewM4LargeCluster(2)
	if _, err := tr.Jobs[0].Workload(ref, PhaseSplit{Read: 0.9, Write: 0.2}, nil); err == nil {
		t.Fatal("overfull split must error")
	}
	if _, err := tr.Jobs[0].Workload(ref, PhaseSplit{Read: -0.1}, nil); err == nil {
		t.Fatal("negative split must error")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Jobs != 0 || s.ParallelStageShare != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestAnalyzeChainJob(t *testing.T) {
	tr := &Trace{Jobs: []Job{{
		Name: "chain",
		Stages: []Stage{
			{ID: 1, Start: 0, End: 10},
			{ID: 2, Parents: []int{1}, Start: 10, End: 20},
		},
	}}}
	stats := Analyze(tr)
	if len(stats) != 1 || stats[0].ParallelStages != 0 || stats[0].ParallelMakespanFrac != 0 {
		t.Fatalf("chain stats = %+v", stats)
	}
}

func TestClassifyTaskName(t *testing.T) {
	cases := []struct {
		in   string
		want NameClass
	}{
		{"M1", NameStructured},
		{"R3_1_2", NameStructured},
		{"task_1234", NameUnstructured},
		{"MergeTask", NameUnstructured},
		{"", NameUnstructured},
		{"M3_1_x", NameMalformed},
		{"M1_", NameMalformed},
		{"R2_2_", NameMalformed},
	}
	for _, c := range cases {
		if got := ClassifyTaskName(c.in); got != c.want {
			t.Errorf("ClassifyTaskName(%q) = %v, want %v", c.in, got, c.want)
		}
		// ParseTaskName succeeds exactly on structured names.
		if _, _, ok := ParseTaskName(c.in); ok != (c.want == NameStructured) {
			t.Errorf("%q: ParseTaskName ok=%v disagrees with class %v", c.in, ok, c.want)
		}
	}
}

// The lenient parser must absorb every corruption the real trace contains,
// keep the salvageable rows, and account for the rest.
func TestParseWithStatsLenient(t *testing.T) {
	src := "M1,1,j,b,T,0,10,1,1\n" + // good
		"M2_1,1,j,b,T,10,20,1,1\n" + // good, dependent
		"M3_1_x,1,j,b,T,10,30,1,1\n" + // malformed dep token: kept, edges dropped
		"R4_4_1,1,j,b,T,30,40,1,1\n" + // self-dependency: edge dropped
		"M1,9,j,b,T,0,12,1,1\n" + // duplicate row
		"M9,1,j,b,T,abc,50,1,1\n" + // bad time: skipped
		",1,j,b,T,0,5,1,1\n" + // empty task name: skipped
		"M5,1,,b,T,0,5,1,1\n" + // empty job name: skipped
		"M1,1,short\n" // short row: skipped
	tr, stats, err := ParseWithStats(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 {
		t.Fatalf("got %d jobs, want 1", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if len(j.Stages) != 4 {
		t.Fatalf("job has %d stages, want 4: %+v", len(j.Stages), j.Stages)
	}
	g, err := j.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// Self-dep dropped at parse time: stage 4 keeps only the edge to 1.
	if got := g.Parents(4); len(got) != 1 || got[0] != 1 {
		t.Fatalf("stage 4 parents = %v, want [1]", got)
	}
	want := ParseStats{Rows: 9, SkippedRows: 4, ShortRows: 1, EmptyFields: 2,
		MalformedTimes: 1, MalformedNames: 1, SelfDependencies: 1, DuplicateRows: 1}
	if *stats != want {
		t.Fatalf("stats = %+v, want %+v", *stats, want)
	}
}

// Strict Parse must name the offending row in its errors.
func TestParseErrorsNameTheRow(t *testing.T) {
	_, err := Parse(strings.NewReader("M1,1,j,b,T,0,10,1,1\nM2,1,j,b,T,x,y,1,1\n"))
	if err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Fatalf("want row-numbered error, got %v", err)
	}
}

// A self-dependency in the strict path is dropped too (the DAG layer used
// to hide it; now the Stage itself is clean).
func TestParseSelfDependencyDropped(t *testing.T) {
	tr, err := Parse(strings.NewReader("R2_2_1,1,j,b,T,0,10,1,1\nM1,1,j,b,T,0,5,1,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Jobs[0].Stages {
		for _, p := range s.Parents {
			if p == s.ID {
				t.Fatalf("stage %d still lists itself as parent", s.ID)
			}
		}
	}
}

// An injected Rng must behave exactly like the equivalent Seed, so one
// seeded source can drive a whole pipeline reproducibly.
func TestGenerateInjectedRng(t *testing.T) {
	a := Generate(GenConfig{Jobs: 30, Seed: 9})
	b := Generate(GenConfig{Jobs: 30, Rng: rand.New(rand.NewSource(9))})
	for i := range a.Jobs {
		if a.Jobs[i].Arrival != b.Jobs[i].Arrival || len(a.Jobs[i].Stages) != len(b.Jobs[i].Stages) {
			t.Fatal("injected rng must match the equivalent seed")
		}
	}
}
