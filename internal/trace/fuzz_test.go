package trace

import (
	"strings"
	"testing"
)

// FuzzParseTaskName: the dependency-grammar decoder must never panic and
// must keep its invariants (ok ⇒ id parsed from the name; parents are
// numeric suffixes; ok agrees with ClassifyTaskName).
func FuzzParseTaskName(f *testing.F) {
	for _, seed := range []string{"M1", "R3_1_2", "task_123", "", "M", "J10_4",
		"MergeTask", "M1_x", "M999999999999999999999", "_1", "M1_", "a1_2_3_4_5",
		"M3_1_x", "R2_2", "R2_2_", "M1x2", "M__1", "M0_0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		id, parents, ok := ParseTaskName(name)
		if ok != (ClassifyTaskName(name) == NameStructured) {
			t.Fatalf("%q: ParseTaskName ok=%v disagrees with ClassifyTaskName %v",
				name, ok, ClassifyTaskName(name))
		}
		if !ok {
			if id != 0 || parents != nil {
				t.Fatalf("not-ok result must be zero: %d %v", id, parents)
			}
			return
		}
		for _, p := range parents {
			_ = p
		}
	})
}

// FuzzParse: arbitrary CSV input must either parse into a well-formed
// trace or return an error — never panic, never emit a cyclic job. The
// lenient parser must additionally keep its books straight: skipped rows
// decompose exactly into the three skip reasons and never exceed the rows
// read.
func FuzzParse(f *testing.F) {
	f.Add("M1,1,j,b,T,0,10,1,1\n")
	f.Add(sampleCSV)
	f.Add("R2_9,1,j,b,T,0,10,1,1\nM1,2,j,b,T,x,y,1,1\n")
	f.Add(",,,,,,,\n")
	f.Add("M3_1_x,1,j,b,T,0,10,1,1\n")             // malformed dependency token
	f.Add("R2_2_1,1,j,b,T,0,10,1,1\n")             // self-dependency
	f.Add("M1,1,short\nM2,1,j,b,T,5,9,1,1\n")      // truncated row
	f.Add(",1,j,b,T,0,5,1,1\nM5,1,,b,T,0,5,1,1\n") // empty names
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse(strings.NewReader(src))
		if err == nil {
			for i := range tr.Jobs {
				if _, err := tr.Jobs[i].Graph(); err != nil {
					t.Fatalf("Parse emitted an invalid job %q: %v", tr.Jobs[i].Name, err)
				}
			}
		}
		ltr, stats, err := ParseWithStats(strings.NewReader(src))
		if err != nil {
			return // only CSV-level read errors abort the lenient parser
		}
		if stats.SkippedRows != stats.ShortRows+stats.EmptyFields+stats.MalformedTimes {
			t.Fatalf("skip accounting broken: %+v", stats)
		}
		if stats.SkippedRows > stats.Rows {
			t.Fatalf("skipped %d of %d rows", stats.SkippedRows, stats.Rows)
		}
		for i := range ltr.Jobs {
			if _, err := ltr.Jobs[i].Graph(); err != nil {
				t.Fatalf("ParseWithStats emitted an invalid job %q: %v", ltr.Jobs[i].Name, err)
			}
			for _, s := range ltr.Jobs[i].Stages {
				for _, p := range s.Parents {
					if p == s.ID {
						t.Fatalf("job %q stage %d kept a self-dependency", ltr.Jobs[i].Name, s.ID)
					}
				}
			}
		}
	})
}
