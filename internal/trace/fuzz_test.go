package trace

import (
	"strings"
	"testing"
)

// FuzzParseTaskName: the dependency-grammar decoder must never panic and
// must keep its invariants (ok ⇒ id parsed from the name; parents are
// numeric suffixes).
func FuzzParseTaskName(f *testing.F) {
	for _, seed := range []string{"M1", "R3_1_2", "task_123", "", "M", "J10_4",
		"MergeTask", "M1_x", "M999999999999999999999", "_1", "M1_", "a1_2_3_4_5"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		id, parents, ok := ParseTaskName(name)
		if !ok {
			if id != 0 || parents != nil {
				t.Fatalf("not-ok result must be zero: %d %v", id, parents)
			}
			return
		}
		for _, p := range parents {
			_ = p
		}
	})
}

// FuzzParse: arbitrary CSV input must either parse into a well-formed
// trace or return an error — never panic, never emit a cyclic job.
func FuzzParse(f *testing.F) {
	f.Add("M1,1,j,b,T,0,10,1,1\n")
	f.Add(sampleCSV)
	f.Add("R2_9,1,j,b,T,0,10,1,1\nM1,2,j,b,T,x,y,1,1\n")
	f.Add(",,,,,,,\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		for i := range tr.Jobs {
			if _, err := tr.Jobs[i].Graph(); err != nil {
				t.Fatalf("Parse emitted an invalid job %q: %v", tr.Jobs[i].Name, err)
			}
		}
	})
}
