// Package profiler stands in for the paper's job-profiling step
// (Sec. 4.2): before DelayStage can compute a schedule it needs the model
// parameters — data processing rate R_k, shuffle input s_k and shuffle
// output d_k per stage — which the prototype obtains by running the job on
// a ~10% input sample on a single executor (following iSpot) and parsing
// the Spark event log.
//
// Here the "profiling run" is a simulation of the down-sampled job on a
// one-node, one-executor cluster; the extracted parameters are the true
// ones perturbed by a configurable relative measurement noise, so the rest
// of the pipeline consumes imperfect estimates exactly as the prototype
// does. The profiling wall-clock time is reported as the overhead metric
// of Sec. 5.4.
package profiler

import (
	"fmt"
	"math/rand"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Options configures the simulated profiling run.
type Options struct {
	// SampleFraction is the input sample size (default 0.1, the paper's 10%).
	SampleFraction float64
	// Noise is the maximum relative error applied to each extracted
	// parameter, uniform in [−Noise, +Noise] (default 0.05).
	Noise float64
	// Seed seeds a private noise source. Ignored when Rng is set.
	Seed int64
	// Rng, when non-nil, draws the measurement noise. Callers composing a
	// larger reproducible pipeline pass one seeded *rand.Rand through every
	// stochastic component instead of scattering seeds.
	Rng *rand.Rand
	// TargetParallelism is the executor count of the production cluster
	// the job is sized for. The profiling executor processes one
	// partition's share of the sample — running the whole 10% sample
	// through one executor would take longer than the production job
	// itself, which is not what the paper's single-executor profiling
	// does (its measured overheads are 45–143 s). Default 60 (30
	// m4.large × 2 executors).
	TargetParallelism int
}

func (o *Options) defaults() {
	if o.SampleFraction <= 0 || o.SampleFraction > 1 {
		o.SampleFraction = 0.1
	}
	if o.Noise < 0 {
		o.Noise = 0
	} else if o.Noise == 0 {
		o.Noise = 0.05
	}
	if o.TargetParallelism <= 0 {
		o.TargetParallelism = 60
	}
}

// Profile is the outcome of profiling one job.
type Profile struct {
	// Estimated is the job with measured (noisy) stage profiles, suitable
	// for core.Compute.
	Estimated *workload.Job
	// ProfilingTime is the simulated wall-clock cost of the profiling run
	// (the Sec. 5.4 overhead metric).
	ProfilingTime float64
}

// ProfileJob simulates profiling of job j (whose Profiles play the role of
// ground truth) and returns noisy parameter estimates.
func ProfileJob(j *workload.Job, opt Options) (*Profile, error) {
	opt.defaults()
	if j == nil {
		return nil, fmt.Errorf("profiler: nil job")
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	// The profiling cluster: one node, one executor, modest bandwidth —
	// a single m4.large running a lone executor.
	node := cluster.M4Large(0)
	node.Executors = 1
	profCluster := &cluster.Cluster{Nodes: []cluster.Node{node}}

	// Down-sample the job input: the lone profiling executor processes one
	// partition's share of the sample.
	frac := opt.SampleFraction / float64(opt.TargetParallelism)
	sampled := j.Clone()
	for id, p := range sampled.Profiles {
		p.ShuffleIn = int64(float64(p.ShuffleIn) * frac)
		p.ShuffleOut = int64(float64(p.ShuffleOut) * frac)
		if p.ShuffleIn < 1 {
			p.ShuffleIn = 1
		}
		sampled.Profiles[id] = p
	}
	res, err := sim.Run(sim.Options{Cluster: profCluster, TrackNode: -1}, []sim.JobRun{{Job: sampled}})
	if err != nil {
		return nil, fmt.Errorf("profiler: profiling run: %w", err)
	}

	// Extract parameters with measurement noise and scale back up.
	rng := opt.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	perturb := func(v float64) float64 {
		return v * (1 + (rng.Float64()*2-1)*opt.Noise)
	}
	est := j.Clone()
	for _, id := range est.Graph.Stages() {
		p := est.Profiles[id]
		p.ShuffleIn = int64(perturb(float64(p.ShuffleIn)))
		p.ShuffleOut = int64(perturb(float64(p.ShuffleOut)))
		p.ProcRate = perturb(p.ProcRate)
		if p.ShuffleIn < 1 {
			p.ShuffleIn = 1
		}
		if p.ProcRate <= 0 {
			p.ProcRate = 1
		}
		est.Profiles[dag.StageID(id)] = p
	}
	if err := est.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: estimated job invalid: %w", err)
	}
	return &Profile{Estimated: est, ProfilingTime: res.JCT(0)}, nil
}
