package profiler

import (
	"math"
	"math/rand"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/workload"
)

func TestProfileJobValidation(t *testing.T) {
	if _, err := ProfileJob(nil, Options{}); err == nil {
		t.Fatal("nil job must error")
	}
}

func TestProfileJobEstimatesCloseToTruth(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.LDA(c, 0.2)
	p, err := ProfileJob(j, Options{Noise: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range j.Graph.Stages() {
		truth, est := j.Profiles[id], p.Estimated.Profiles[id]
		relIn := math.Abs(float64(est.ShuffleIn)-float64(truth.ShuffleIn)) / float64(truth.ShuffleIn)
		relRate := math.Abs(est.ProcRate-truth.ProcRate) / truth.ProcRate
		if relIn > 0.05+1e-9 || relRate > 0.05+1e-9 {
			t.Errorf("stage %d: estimate error in=%.3f rate=%.3f beyond noise bound", id, relIn, relRate)
		}
		if relIn == 0 && relRate == 0 {
			t.Errorf("stage %d: estimates identical to truth; noise not applied", id)
		}
	}
}

func TestProfilingTimePositiveAndScalesWithSample(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.CosineSimilarity(c, 0.2)
	small, err := ProfileJob(j, Options{SampleFraction: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := ProfileJob(j, Options{SampleFraction: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.ProfilingTime <= 0 {
		t.Fatal("profiling time must be positive")
	}
	if big.ProfilingTime <= small.ProfilingTime {
		t.Fatalf("larger sample must take longer: %.1f vs %.1f", big.ProfilingTime, small.ProfilingTime)
	}
}

func TestProfilingDeterministicPerSeed(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	j := workload.LDA(c, 0.1)
	a, _ := ProfileJob(j, Options{Seed: 42})
	b, _ := ProfileJob(j, Options{Seed: 42})
	for _, id := range j.Graph.Stages() {
		if a.Estimated.Profiles[id] != b.Estimated.Profiles[id] {
			t.Fatal("same seed must give same estimates")
		}
	}
}

// End-to-end: schedules computed from noisy profiles must still help.
func TestScheduleFromProfiledParameters(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	truth := workload.CosineSimilarity(c, 0.2)
	prof, err := ProfileJob(truth, Options{Noise: 0.08, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Compute(core.Options{Cluster: c}, prof.Estimated)
	if err != nil {
		t.Fatal(err)
	}
	// Delays derived from estimates, applied to the true job.
	if sched.Makespan > sched.StockMakespan {
		t.Fatal("profiled schedule regressed its own prediction")
	}
}

func TestDoesNotMutateInput(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	j := workload.LDA(c, 0.1)
	before := j.Profiles[1]
	if _, err := ProfileJob(j, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if j.Profiles[1] != before {
		t.Fatal("ProfileJob mutated the input job")
	}
}

// An injected Rng must reproduce the equivalent Seed, so one seeded source
// can drive profiling plus every other stochastic component.
func TestProfileInjectedRng(t *testing.T) {
	c := cluster.NewM4LargeCluster(4)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	a, err := ProfileJob(job, Options{Noise: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileJob(job, Options{Noise: 0.2, Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range job.Graph.Stages() {
		if a.Estimated.Profiles[id] != b.Estimated.Profiles[id] {
			t.Fatalf("stage %d: injected rng diverged from seed: %+v vs %+v",
				id, a.Estimated.Profiles[id], b.Estimated.Profiles[id])
		}
	}
}
