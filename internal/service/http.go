package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"delaystage/internal/jobspec"
	"delaystage/internal/obs"
	"delaystage/internal/scheduler"
)

// HTTP/JSON API, layered on the obs introspection mux:
//
//	POST /v1/jobs       submit {"tenant","arrival","job":{jobspec}}
//	GET  /v1/jobs       all submissions
//	GET  /v1/jobs/{id}  one submission's status
//	GET  /v1/plan/{id}  the chosen delay vector
//	GET  /v1/trace/{id} the job's lifecycle span tree with decision audit
//	GET  /v1/timeline   the bounded scheduler-milestone ring
//	GET  /v1/cluster    live data-plane state
//	GET  /metrics       Prometheus text (plus /healthz, /debug/pprof/*)
//
// Submit returns 200 on acceptance, 429 on an admission bounce (body
// carries the policy's reason), 400 on malformed input — including the
// NaN/Inf arrival vetting shared with the planner.

// submitBody is the POST /v1/jobs request payload. Job is kept raw so
// jobspec.Parse applies its own validation and error messages.
type submitBody struct {
	Tenant  string          `json:"tenant"`
	Arrival *float64        `json:"arrival"`
	Job     json.RawMessage `json:"job"`
}

// errorBody is every non-2xx response payload.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API with the introspection endpoints
// layered in, ready for obs.ServeHandler or httptest.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/plan/{id}", s.handlePlan)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.Handle("/", obs.NewIntrospectionMux(s.reg))
	return s.instrument(mux)
}

// instrument wraps the mux with a per-request counter by status code.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(cw, r)
		s.reg.Counter("schedd_http_requests_total",
			fmt.Sprintf("{method=%q,code=\"%d\"}", r.Method, cw.code),
			"HTTP requests by method and status code.").Inc()
	})
}

// codeWriter records the status code written to a ResponseWriter.
type codeWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader implements http.ResponseWriter.
func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(body.Job) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing \"job\""))
		return
	}
	spec, err := jobspec.Parse(bytes.NewReader(body.Job))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := spec.Job(s.opt.Cluster)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(SubmitRequest{Tenant: body.Tenant, Job: job, Arrival: body.Arrival})
	if err != nil {
		code := http.StatusInternalServerError
		var ae *scheduler.InvalidArrivalError
		if errors.As(err, &ae) {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	if st.State == StateRejected {
		writeJSON(w, http.StatusTooManyRequests, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleJobs(w http.ResponseWriter, _ *http.Request) {
	if err := s.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if err := s.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	ps, ok := s.Plan(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no plan for job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, ps)
}

func (s *Service) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if err := s.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.ClusterState())
}
