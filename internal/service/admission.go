package service

import (
	"fmt"
	"sync"
	"time"
)

// AdmissionRequest is what a policy sees when a job asks to enter the
// system — modeled on the ClusterArrival → AdmissionDecision stage of a
// control plane: identity, the job's shape, and the live cluster state the
// data plane observed at the arrival instant.
type AdmissionRequest struct {
	// Tenant is the submitting principal ("" = anonymous, which token
	// buckets treat as one shared tenant).
	Tenant string
	// Stages is the job's stage count (a cheap size proxy).
	Stages int
	// Arrival is the effective simulated arrival time.
	Arrival float64
	// QueueDepth is the number of admitted-but-unfinished jobs after the
	// data plane advanced to Arrival — live state, not a stale snapshot.
	QueueDepth int
	// Now is the wall-clock receive time (token buckets refill on it).
	Now time.Time
}

// AdmissionDecision is a policy's verdict.
type AdmissionDecision struct {
	Accept bool
	// Reason explains a rejection ("" when accepted); it is surfaced in
	// the HTTP response and the job's terminal status.
	Reason string
}

// AdmissionPolicy decides, per arriving job, whether the control plane
// admits it into planning. Implementations must be safe for concurrent
// use (the HTTP stack calls Admit from handler goroutines).
type AdmissionPolicy interface {
	// Name labels the policy in metrics and status output.
	Name() string
	Admit(AdmissionRequest) AdmissionDecision
}

// AcceptAll admits everything — the default policy.
type AcceptAll struct{}

// Name implements AdmissionPolicy.
func (AcceptAll) Name() string { return "accept-all" }

// Admit implements AdmissionPolicy.
func (AcceptAll) Admit(AdmissionRequest) AdmissionDecision {
	return AdmissionDecision{Accept: true}
}

// QueueDepthCap rejects arrivals once the number of live (admitted,
// unfinished) jobs reaches Max — classic load shedding keyed on the state
// the data plane actually observes.
type QueueDepthCap struct {
	// Max is the live-job count at which new arrivals bounce. Zero or
	// negative admits nothing (a closed valve is explicit, not a default).
	Max int
}

// Name implements AdmissionPolicy.
func (QueueDepthCap) Name() string { return "queue-depth-cap" }

// Admit implements AdmissionPolicy.
func (q QueueDepthCap) Admit(r AdmissionRequest) AdmissionDecision {
	if r.QueueDepth >= q.Max {
		return AdmissionDecision{Reason: fmt.Sprintf("queue depth %d ≥ cap %d", r.QueueDepth, q.Max)}
	}
	return AdmissionDecision{Accept: true}
}

// TokenBucket rate-limits submissions per tenant: each tenant owns a
// bucket holding up to Burst tokens that refills at Rate tokens per
// wall-clock second; a submission spends one token or is rejected.
type TokenBucket struct {
	rate, burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	level float64
	last  time.Time
}

// NewTokenBucket builds a per-tenant token-bucket policy admitting
// sustained `rate` jobs/second with bursts up to `burst`.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, buckets: map[string]*bucket{}}
}

// Name implements AdmissionPolicy.
func (*TokenBucket) Name() string { return "token-bucket" }

// Admit implements AdmissionPolicy.
func (t *TokenBucket) Admit(r AdmissionRequest) AdmissionDecision {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buckets[r.Tenant]
	if b == nil {
		// A fresh tenant starts with a full burst allowance.
		b = &bucket{level: t.burst, last: r.Now}
		t.buckets[r.Tenant] = b
	}
	if dt := r.Now.Sub(b.last).Seconds(); dt > 0 {
		b.level += dt * t.rate
		if b.level > t.burst {
			b.level = t.burst
		}
	}
	b.last = r.Now
	if b.level < 1 {
		return AdmissionDecision{Reason: fmt.Sprintf("tenant %q over rate (%.3g jobs/s, burst %.3g)", r.Tenant, t.rate, t.burst)}
	}
	b.level--
	return AdmissionDecision{Accept: true}
}
