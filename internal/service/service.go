// Package service is the online scheduling service: the long-running
// control plane / data plane pair behind cmd/schedd.
//
// The control plane runs each arriving job through an admission stage
// (pluggable AdmissionPolicy), then a planning stage that reuses the
// online DelayStage objective (scheduler.OnlinePlanner — minimize the sum
// of completion times over every live job, Sec. 6) with a plan-template
// cache in front so recurring DAG shapes skip Alg. 1 on the hot path.
//
// The data plane is a shared simulated cluster advanced between arrivals
// with sim.Stepper — the step primitives' first policy-observes-live-state
// consumer: the queue depth a policy sees, and the queue-length delay
// revision at dispatch, read the world exactly as of the arrival instant.
//
// State is bounded by busy-period epochs: when the stepper drains (every
// admitted job finished), completed runs are constants of the objective
// and cannot perturb later planning, so the planner and world reset.
package service

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"strconv"
	"sync"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/obs"
	"delaystage/internal/perfmodel"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Options configures a Service.
type Options struct {
	// Cluster is the cluster jobs are planned for (required).
	Cluster *cluster.Cluster
	// Admission gates arriving jobs (nil = AcceptAll).
	Admission AdmissionPolicy
	// Registry receives the service metrics (nil = a private registry).
	Registry *obs.Registry
	// Order / SlotSeconds / MaxCandidates / FairByJob mirror
	// scheduler.OnlineOptions.
	Order         core.Order
	SlotSeconds   float64
	MaxCandidates int
	FairByJob     bool
	// ApproximatePlanning answers every planning decision from the
	// analytic bound surrogate instead of simulation — candidate scoring
	// (scheduler.OnlineOptions.Approximate), the template drift test, and
	// the stored drift reference all use the surrogate's layout, so the
	// control plane never simulates on the hot path. Plans are
	// approximate; the data plane still simulates reality.
	ApproximatePlanning bool
	// DriftTolerance is the template-validity threshold: a cache hit is
	// reused only when a solo simulation under the cached delays keeps
	// every stage's end within this relative deviation of the stored
	// prediction (the guarded watchdog's drift test; 0 = 0.15).
	DriftTolerance float64
	// ReviseQueueDepth enables queue-length-aware delay revision: when the
	// live-job count at an arrival is ≥ this, the job dispatches
	// submit-when-ready (nil delays) without running Alg. 1 — under deep
	// queues a delay only adds latency on top of contention the objective
	// already penalizes. 0 disables revision.
	ReviseQueueDepth int
	// CacheCapacity bounds the plan-template cache (0 = 512; negative
	// disables caching).
	CacheCapacity int
	// TimeScale is simulated seconds per wall-clock second, used to derive
	// the arrival time of submissions that do not carry one (0 = 1).
	TimeScale float64
	// Clock supplies wall time (nil = time.Now; tests inject).
	Clock func() time.Time
	// TimelineCapacity bounds the GET /v1/timeline milestone ring (0 =
	// 256). The ring keeps the newest entries; evictions are reported via
	// the response's "dropped" count.
	TimelineCapacity int
	// TraceLog, when non-nil, receives one JSONL trace line (schema
	// delaystage/trace/v1) per job the moment it reaches a terminal state
	// — the export cmd/analyze replays offline.
	TraceLog io.Writer
	// Logger receives the service's structured diagnostics (nil =
	// discard). Every job-scoped line carries the trace_id key.
	Logger *slog.Logger
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle states, in the order a job moves through them.
const (
	StateRejected JobState = "rejected" // bounced by admission
	StateQueued   JobState = "queued"   // admitted, arrival not yet reached
	StateRunning  JobState = "running"  // arrival reached, not finished
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
)

// JobStatus is a JSON-ready snapshot of one submission.
type JobStatus struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	Tenant     string   `json:"tenant,omitempty"`
	State      JobState `json:"state"`
	Reason     string   `json:"reason,omitempty"`
	Stages     int      `json:"stages"`
	Arrival    float64  `json:"arrival"`
	End        float64  `json:"end,omitempty"`
	JCT        float64  `json:"jct,omitempty"`
	PlanSource string   `json:"plan_source,omitempty"`
	CacheHit   bool     `json:"cache_hit,omitempty"`
	Revised    bool     `json:"revised,omitempty"`
	Epoch      int      `json:"epoch"`
}

// PlanStatus is the chosen delay vector of one admitted job.
type PlanStatus struct {
	ID     string `json:"id"`
	Source string `json:"source"` // "planner" | "template-cache" | "queue-revision"
	// CacheHit / Revised mirror the JobStatus flags.
	CacheHit bool `json:"cache_hit"`
	Revised  bool `json:"revised"`
	// Fingerprint is the job's template key, hex-encoded.
	Fingerprint string `json:"fingerprint"`
	// Delays maps stage ID → extra seconds held after ready. Empty means
	// submit-when-ready.
	Delays map[string]float64 `json:"delays"`
}

// ClusterState is the live data-plane snapshot behind GET /v1/cluster.
type ClusterState struct {
	SimClock     float64 `json:"sim_clock"`
	Epoch        int     `json:"epoch"`
	EpochEvents  int     `json:"epoch_events"`
	Nodes        int     `json:"nodes"`
	Executors    int     `json:"executors"`
	Policy       string  `json:"admission_policy"`
	Submitted    int     `json:"submitted"`
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	Done         int     `json:"done"`
	Failed       int     `json:"failed"`
	Live         int     `json:"live"`
	CacheEntries int     `json:"cache_entries"`
}

// SubmitRequest is one job submission.
type SubmitRequest struct {
	Tenant string
	Job    *workload.Job
	// Arrival is the simulated arrival time; nil means "now" (wall time
	// since service start, scaled by TimeScale). Arrivals are clamped
	// forward to the already-simulated clock and the planner watermark —
	// a job cannot arrive in the observed past.
	Arrival *float64
}

// jobRecord is the service's mutable per-submission state.
type jobRecord struct {
	id         string
	name       string
	tenant     string
	stages     int
	state      JobState
	reason     string
	requested  float64 // arrival the caller asked for, pre-clamp
	clamped    bool    // arrival was clamped forward to the observed present
	arrival    float64
	end        float64
	jct        float64
	planSource string
	cacheHit   bool
	revised    bool
	fp         uint64
	delays     map[dag.StageID]float64
	epoch      int

	// Tracing state. queueDepth is the live-job count admission saw;
	// firstSubmit is the first stage dispatch (−1 until seen), copied out
	// of the epoch span data at terminal time; stageParents renders the
	// DAG edges for stage-span attrs; audit is the planning decision;
	// epochIdx indexes epochSpans while the record's epoch is current;
	// trace is the span tree frozen at terminal time.
	queueDepth   int
	firstSubmit  float64
	stageParents map[dag.StageID]string
	audit        *obs.DecisionAudit
	epochIdx     int
	trace        *obs.Trace
}

// Service is the scheduler daemon's engine. All methods are safe for
// concurrent use; one mutex serializes the control and data planes.
type Service struct {
	opt       Options
	admission AdmissionPolicy
	reg       *obs.Registry
	coarse    *cluster.Cluster
	clock     func() time.Time
	start     time.Time

	logger   *slog.Logger
	traceLog io.Writer

	mu         sync.Mutex
	planner    *scheduler.OnlinePlanner
	cache      *templateCache
	jobs       map[string]*jobRecord
	history    []*jobRecord
	nextID     int
	epoch      int
	epochRecs  []*jobRecord   // parallel to planner.Committed()
	epochSpans []*jobSpanData // parallel to epochRecs; wiped on rebuild
	stepper    *sim.Stepper
	simClock   float64
	counts     struct{ submitted, admitted, rejected, done, failed int }

	timeline []TimelineEvent // bounded milestone ring (GET /v1/timeline)
	tlSeq    int             // next sequence number; also total ever added
	tlCap    int

	mSubmitted, mAdmitted, mRejected     *obs.Counter
	mCacheHit, mCacheMiss, mCacheInvalid *obs.Counter
	mRevised, mEpochs                    *obs.Counter
	mPruned, mExactEvals                 *obs.Counter
	mPlanSec, mJCT                       *obs.Histogram
	mE2E, mQueueWait                     *obs.Histogram
	gLive, gSimClock, gCacheSize         *obs.Gauge
}

// New validates the configuration and returns an idle service.
func New(opt Options) (*Service, error) {
	if opt.Cluster == nil {
		return nil, fmt.Errorf("service: nil cluster")
	}
	planner, err := scheduler.NewOnlinePlanner(scheduler.OnlineOptions{
		Cluster:       opt.Cluster,
		Order:         opt.Order,
		SlotSeconds:   opt.SlotSeconds,
		MaxCandidates: opt.MaxCandidates,
		FairByJob:     opt.FairByJob,
		Approximate:   opt.ApproximatePlanning,
	})
	if err != nil {
		return nil, err
	}
	if opt.Admission == nil {
		opt.Admission = AcceptAll{}
	}
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	if opt.DriftTolerance <= 0 {
		opt.DriftTolerance = 0.15
	}
	if opt.TimeScale <= 0 {
		opt.TimeScale = 1
	}
	if opt.Clock == nil {
		opt.Clock = time.Now
	}
	if opt.TimelineCapacity <= 0 {
		opt.TimelineCapacity = 256
	}
	if opt.Logger == nil {
		opt.Logger = obs.DiscardLogger()
	}
	s := &Service{
		opt:       opt,
		admission: opt.Admission,
		reg:       opt.Registry,
		coarse:    sim.Coarsen(opt.Cluster),
		clock:     opt.Clock,
		logger:    opt.Logger,
		traceLog:  opt.TraceLog,
		planner:   planner,
		jobs:      map[string]*jobRecord{},
		tlCap:     opt.TimelineCapacity,
	}
	s.start = s.clock()
	switch {
	case opt.CacheCapacity == 0:
		s.cache = newTemplateCache(512)
	case opt.CacheCapacity > 0:
		s.cache = newTemplateCache(opt.CacheCapacity)
	}
	reg := s.reg
	policy := fmt.Sprintf("{policy=%q}", s.admission.Name())
	s.mSubmitted = reg.Counter("schedd_jobs_submitted_total", "", "Jobs submitted (any outcome).")
	s.mAdmitted = reg.Counter("schedd_jobs_admitted_total", policy, "Jobs passed by the admission policy.")
	s.mRejected = reg.Counter("schedd_jobs_rejected_total", policy, "Jobs bounced by the admission policy.")
	s.mCacheHit = reg.Counter("schedd_plan_cache_hits_total", "", "Plan-template cache hits (drift-valid reuse).")
	s.mCacheMiss = reg.Counter("schedd_plan_cache_misses_total", "", "Plan-template cache misses (cold Alg. 1 sweep).")
	s.mCacheInvalid = reg.Counter("schedd_plan_cache_invalid_total", "", "Cache hits discarded by the drift test.")
	s.mRevised = reg.Counter("schedd_plan_revised_total", "", "Plans revised to submit-when-ready by queue depth.")
	s.mPruned = reg.Counter("schedd_plan_pruned_total", "",
		"Delay candidates the analytic bound tier eliminated before any simulation.")
	s.mExactEvals = reg.Counter("schedd_plan_exact_evals_total", "",
		"Delay candidates answered by an exact multi-job simulation.")
	s.mEpochs = reg.Counter("schedd_epochs_total", "", "Busy-period epochs completed (world drained).")
	s.mPlanSec = reg.Histogram("schedd_planning_seconds", "",
		"Wall-clock latency of one Alg. 1 planning sweep.", obs.ExpBuckets(1e-4, 2, 16))
	s.mJCT = reg.Histogram("schedd_job_jct_seconds", "",
		"Simulated job completion times.", obs.ExpBuckets(1, 2, 20))
	s.mE2E = reg.Histogram("schedd_e2e_seconds", "",
		"Simulated end-to-end latency: requested submit instant to job completion.",
		obs.ExpBuckets(1, 2, 20))
	s.mQueueWait = reg.Histogram("schedd_queue_wait_seconds", "",
		"Simulated wait from arrival to first stage dispatch.",
		obs.ExpBuckets(0.5, 2, 16))
	s.gLive = reg.Gauge("schedd_jobs_live", "", "Admitted jobs not yet finished.")
	s.gSimClock = reg.Gauge("schedd_sim_clock_seconds", "", "Simulated clock high-water mark.")
	s.gCacheSize = reg.Gauge("schedd_plan_cache_entries", "", "Plan templates currently cached.")
	return s, nil
}

// Registry returns the registry the service's metrics live in.
func (s *Service) Registry() *obs.Registry { return s.reg }

// epochObserver folds the data plane's event stream into per-job span
// data and marks job records terminal as completion events step past. It
// runs synchronously inside StepNextEvent, under the service mutex, so it
// touches service state directly.
type epochObserver struct{ s *Service }

// OnEvent implements sim.Observer.
func (o *epochObserver) OnEvent(ev sim.Event) {
	if ev.Job < 0 || ev.Job >= len(o.s.epochRecs) {
		return
	}
	switch ev.Kind {
	case sim.EvJobDone, sim.EvJobFailed:
		// The engine emits every stage event of a job before its terminal
		// event, so the span data is complete when the freeze fires.
		o.s.markTerminal(o.s.epochRecs[ev.Job], ev.T, ev.Kind == sim.EvJobFailed, ev.Detail)
	default:
		if ev.Job < len(o.s.epochSpans) {
			o.s.epochSpans[ev.Job].observeStage(ev)
		}
	}
}

// markTerminal transitions a record to done/failed exactly once. Stepper
// rebuilds replay the epoch prefix deterministically, so the same
// completion event fires again; the state check makes that idempotent.
func (s *Service) markTerminal(rec *jobRecord, t float64, failed bool, detail string) {
	if rec.state == StateDone || rec.state == StateFailed {
		return
	}
	rec.end = t
	rec.jct = t - rec.arrival
	if sd := s.spanData(rec); sd != nil {
		rec.firstSubmit = sd.firstSubmit
	}
	if rec.firstSubmit >= 0 {
		s.mQueueWait.Observe(rec.firstSubmit - rec.arrival)
	}
	if failed {
		rec.state = StateFailed
		rec.reason = detail
		s.counts.failed++
		s.timelineAdd(t, "failed", rec.id, detail)
		s.logger.Info("job failed", "trace_id", rec.id, "t", t, "reason", detail)
	} else {
		rec.state = StateDone
		s.counts.done++
		s.mJCT.Observe(rec.jct)
		s.mE2E.Observe(t - rec.requested)
		s.timelineAdd(t, "done", rec.id, fmt.Sprintf("jct=%.3fs", rec.jct))
		s.logger.Info("job done", "trace_id", rec.id, "t", t, "jct", rec.jct)
	}
	s.freezeTrace(rec)
}

// liveCount is the number of admitted jobs not yet terminal.
func (s *Service) liveCount() int {
	return s.counts.admitted - s.counts.done - s.counts.failed
}

// rebuild replaces the stepper with a fresh one over the epoch's committed
// runs. The replayed prefix is deterministic, so records already marked
// terminal stay consistent; only events past the advance point change when
// a new run joins the world.
func (s *Service) rebuild() error {
	runs := s.planner.Committed()
	// The fresh stepper replays the epoch prefix from scratch, so the
	// per-job span observations are wiped and repopulated by the replay —
	// they always describe exactly the events the current stepper stepped.
	// Terminal records are unaffected: their trees froze at terminal time.
	for i := range s.epochSpans {
		s.epochSpans[i] = newJobSpanData()
	}
	if len(runs) == 0 {
		s.stepper = nil
		return nil
	}
	st, err := sim.NewStepper(sim.Options{
		Cluster:   s.coarse,
		TrackNode: -1,
		FairByJob: s.opt.FairByJob,
		Observer:  &epochObserver{s},
	}, runs)
	if err != nil {
		return fmt.Errorf("service: data plane rebuild: %w", err)
	}
	s.stepper = st
	return nil
}

// advanceTo steps the data plane through every event at or before t and
// rolls the epoch over when the world drains. t = +Inf drains fully.
func (s *Service) advanceTo(t float64) error {
	if s.stepper != nil {
		for s.stepper.HasPendingEvents() && s.stepper.PeekNextEventTime() <= t {
			if err := s.stepper.StepNextEvent(); err != nil {
				return fmt.Errorf("service: data plane step: %w", err)
			}
		}
		if c := s.stepper.Clock(); c > s.simClock {
			s.simClock = c
		}
		if !s.stepper.HasPendingEvents() {
			// Busy period drained: every admitted job finished. Completed
			// runs are constants of the objective — reset the epoch so
			// planning cost tracks the busy period, not daemon uptime.
			s.stepper = nil
			s.epochRecs = s.epochRecs[:0]
			s.epochSpans = s.epochSpans[:0]
			s.planner.Reset()
			s.timelineAdd(s.simClock, "epoch", "", fmt.Sprintf("epoch %d drained", s.epoch))
			s.logger.Debug("epoch drained", "epoch", s.epoch, "sim_clock", s.simClock)
			s.epoch++
			s.mEpochs.Inc()
		}
	}
	if !math.IsInf(t, 1) && t > s.simClock {
		s.simClock = t
	}
	s.gSimClock.Set(s.simClock)
	s.gLive.Set(float64(s.liveCount()))
	return nil
}

// virtualNow derives the current simulated instant: wall time since start
// scaled by TimeScale, never behind what has already been simulated or
// committed.
func (s *Service) virtualNow(now time.Time) float64 {
	vn := now.Sub(s.start).Seconds() * s.opt.TimeScale
	return math.Max(vn, math.Max(s.simClock, s.planner.LastArrival()))
}

// Submit runs one job through admission and planning and installs it in
// the data plane. Validation failures (nil/invalid job, NaN/Inf arrival)
// return an error; an admission bounce is not an error — it returns a
// JobStatus in StateRejected with the policy's reason.
func (s *Service) Submit(req SubmitRequest) (JobStatus, error) {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mSubmitted.Inc()
	s.counts.submitted++
	if req.Job == nil {
		return JobStatus{}, fmt.Errorf("service: nil job")
	}
	if err := req.Job.Validate(); err != nil {
		return JobStatus{}, err
	}
	requested := s.virtualNow(now)
	if req.Arrival != nil {
		// Same NaN/Inf vetting as the planner, surfaced before admission.
		if err := scheduler.CheckArrival(*req.Arrival); err != nil {
			return JobStatus{}, err
		}
		requested = *req.Arrival
	}
	arrival := math.Max(requested, math.Max(s.simClock, s.planner.LastArrival()))
	if err := s.advanceTo(arrival); err != nil {
		return JobStatus{}, err
	}
	depth := s.liveCount()

	rec := &jobRecord{
		id:          fmt.Sprintf("j-%d", s.nextID),
		name:        req.Job.Name,
		tenant:      req.Tenant,
		stages:      req.Job.Graph.Len(),
		state:       StateQueued,
		requested:   requested,
		clamped:     arrival > requested,
		arrival:     arrival,
		epoch:       s.epoch,
		queueDepth:  depth,
		firstSubmit: -1,
		epochIdx:    -1,
	}
	s.nextID++
	s.jobs[rec.id] = rec
	s.history = append(s.history, rec)
	s.timelineAdd(arrival, "submitted", rec.id, rec.name)

	dec := s.admission.Admit(AdmissionRequest{
		Tenant:     req.Tenant,
		Stages:     rec.stages,
		Arrival:    arrival,
		QueueDepth: depth,
		Now:        now,
	})
	if !dec.Accept {
		rec.state = StateRejected
		rec.reason = dec.Reason
		rec.end = arrival
		s.mRejected.Inc()
		s.counts.rejected++
		s.timelineAdd(arrival, "rejected", rec.id, dec.Reason)
		s.logger.Info("job rejected", "trace_id", rec.id, "tenant", rec.tenant,
			"policy", s.admission.Name(), "reason", dec.Reason)
		s.freezeTrace(rec)
		return s.snapshot(rec), nil
	}
	s.mAdmitted.Inc()
	s.counts.admitted++
	rec.stageParents = stageParents(req.Job.Graph)

	run, err := s.plan(rec, req.Job, arrival, depth)
	if err != nil {
		rec.state = StateFailed
		rec.reason = err.Error()
		rec.end = arrival
		rec.audit = nil // render the failure, not a half-built decision
		s.counts.failed++
		s.timelineAdd(arrival, "failed", rec.id, err.Error())
		s.logger.Error("planning failed", "trace_id", rec.id, "err", err.Error())
		s.freezeTrace(rec)
		return JobStatus{}, err
	}
	rec.delays = run.Delays
	rec.epochIdx = len(s.epochRecs)
	s.epochRecs = append(s.epochRecs, rec)
	s.epochSpans = append(s.epochSpans, newJobSpanData())
	planDetail := rec.planSource
	if rec.audit != nil && rec.audit.Source == "planner" {
		// Surface the two-tier scan's outcome in the milestone feed so an
		// operator can see pruning effectiveness without pulling traces.
		planDetail = fmt.Sprintf("%s pruned=%d exact=%d", rec.planSource,
			rec.audit.Pruned, rec.audit.ExactEvals)
		if rec.audit.ApproxEvals > 0 {
			planDetail += fmt.Sprintf(" approx=%d", rec.audit.ApproxEvals)
		}
	}
	s.timelineAdd(arrival, "planned", rec.id, planDetail)
	s.logger.Info("job planned", "trace_id", rec.id, "tenant", rec.tenant,
		"arrival", arrival, "source", rec.planSource, "delays", len(run.Delays),
		"queue_depth", depth)
	if err := s.rebuild(); err != nil {
		return JobStatus{}, err
	}
	if err := s.advanceTo(arrival); err != nil {
		return JobStatus{}, err
	}
	return s.snapshot(rec), nil
}

// plan chooses the job's delay vector — queue revision, template cache, or
// a cold Alg. 1 sweep — commits it to the planner and records the decision
// audit the job's plan span exposes.
func (s *Service) plan(rec *jobRecord, job *workload.Job, arrival float64, depth int) (sim.JobRun, error) {
	t0 := time.Now()
	audit := &obs.DecisionAudit{QueueDepth: depth}
	rec.audit = audit
	defer func() {
		// Wall time is the one nondeterministic trace field; it is recorded
		// here once and carried verbatim through every later export.
		audit.WallSeconds = time.Since(t0).Seconds()
	}()
	if s.opt.ReviseQueueDepth > 0 && depth >= s.opt.ReviseQueueDepth {
		// Policy observes live state: under a deep queue, dispatch
		// submit-when-ready instead of stacking delay on contention.
		rec.planSource = "queue-revision"
		rec.revised = true
		audit.Source = "queue-revision"
		audit.Fallback = "queue-depth"
		s.mRevised.Inc()
		return s.planner.Commit(job, arrival, nil)
	}
	rec.fp = Fingerprint(job)
	audit.Fingerprint = fmt.Sprintf("%016x", rec.fp)
	if s.cache != nil {
		if t := s.cache.get(rec.fp); t != nil {
			delays := t.instantiate(job)
			if s.driftValid(job, t, delays) {
				rec.planSource = "template-cache"
				rec.cacheHit = true
				t.hits++
				audit.Source = "template-cache"
				audit.CacheHit = true
				audit.Delays = auditDelays(delays)
				s.mCacheHit.Inc()
				return s.planner.Commit(job, arrival, delays)
			}
			audit.CacheInvalidated = true
			s.mCacheInvalid.Inc()
			s.cache.drop(rec.fp)
			s.gCacheSize.Set(float64(s.cache.len()))
		}
		s.mCacheMiss.Inc()
	}
	solo := len(s.planner.Committed()) == 0
	tPlan := time.Now()
	run, err := s.planner.Add(job, arrival)
	s.mPlanSec.Observe(time.Since(tPlan).Seconds())
	if err != nil {
		return sim.JobRun{}, err
	}
	rec.planSource = "planner"
	audit.Source = "planner"
	pa := s.planner.LastAudit()
	audit.Evaluations = pa.Evaluations
	audit.ParallelStages = pa.ParallelStages
	audit.Paths = pa.Paths
	audit.Bounded = pa.Prune.Bounded
	audit.Pruned = pa.Prune.Pruned
	audit.ExactEvals = pa.Prune.Exact
	audit.ApproxEvals = pa.Prune.Approx
	s.mPruned.Add(float64(pa.Prune.Pruned))
	s.mExactEvals.Add(float64(pa.Prune.Exact))
	audit.IncumbentTotal = pa.IncumbentTotal
	audit.ChosenTotal = pa.ChosenTotal
	if pa.FallbackNoWin {
		audit.Fallback = "never-worse"
	}
	audit.Delays = auditDelays(run.Delays)
	if s.cache != nil && solo {
		// Only solo-context plans are cacheable: they come from the same
		// code path as a cold PlanOnline run, so a later hit reuses a
		// byte-identical delay vector. Plans shaped by committed traffic
		// are situational and would mislead a quiet-hour arrival.
		s.storeTemplate(rec.fp, job, run)
	}
	return run, nil
}

// auditDelays renders a delay vector with string stage keys for the
// decision audit (JSON object keys must be strings; nil when empty so the
// field is omitted for submit-when-ready plans).
func auditDelays(delays map[dag.StageID]float64) map[string]float64 {
	if len(delays) == 0 {
		return nil
	}
	out := make(map[string]float64, len(delays))
	for id, d := range delays {
		out[strconv.Itoa(int(id))] = d
	}
	return out
}

// planEnds predicts every stage's solo completion time under the delays
// on the coarse planning cluster: a fault-free simulation normally, or
// the analytic surrogate's stretched layout under ApproximatePlanning
// (the drift test must not reintroduce simulations when planning is
// bound-only). Both sides of a drift comparison always come from the same
// predictor, so the mode switch cannot invalidate stored templates.
func (s *Service) planEnds(job *workload.Job, delays map[dag.StageID]float64) (map[dag.StageID]float64, error) {
	if s.opt.ApproximatePlanning {
		b, err := perfmodel.NewBoundEvaluator(s.coarse, job, perfmodel.BoundConfig{IncludeWorkBound: true})
		if err != nil {
			return nil, err
		}
		return b.EstimateEnds(delays), nil
	}
	res, err := sim.Run(sim.Options{Cluster: s.coarse, TrackNode: -1},
		[]sim.JobRun{{Job: job, Delays: delays}})
	if err != nil {
		return nil, err
	}
	ends := make(map[dag.StageID]float64, len(res.Timelines))
	for _, tl := range res.Timelines {
		ends[tl.Stage] = tl.End
	}
	return ends, nil
}

// driftValid replays the guarded watchdog's drift test for a cache hit:
// each stage's predicted end under the instantiated delays compared
// against the template's stored prediction.
func (s *Service) driftValid(job *workload.Job, t *template, delays map[dag.StageID]float64) bool {
	ends, err := s.planEnds(job, delays)
	if err != nil || len(ends) != len(t.predEnd) {
		return false
	}
	ids := rankedIDs(job)
	rank := make(map[dag.StageID]int, len(ids))
	for i, id := range ids {
		rank[id] = i
	}
	for id, end := range ends {
		pred, ok := t.predEnd[rank[id]]
		if !ok {
			return false
		}
		if math.Abs(end-pred)/math.Max(pred, 1e-9) > s.opt.DriftTolerance {
			return false
		}
	}
	return true
}

// storeTemplate records a solo-context plan and its drift reference (the
// predicted per-stage end times of a fault-free solo run at arrival 0).
func (s *Service) storeTemplate(fp uint64, job *workload.Job, run sim.JobRun) {
	ends, err := s.planEnds(job, run.Delays)
	if err != nil {
		return
	}
	ids := rankedIDs(job)
	rank := make(map[dag.StageID]int, len(ids))
	for i, id := range ids {
		rank[id] = i
	}
	pred := make(map[int]float64, len(ends))
	for id, end := range ends {
		pred[rank[id]] = end
	}
	delays := make(map[int]float64, len(run.Delays))
	for id, d := range run.Delays {
		delays[rank[id]] = d
	}
	s.cache.put(&template{fp: fp, delays: delays, predEnd: pred})
	s.gCacheSize.Set(float64(s.cache.len()))
}

// snapshot renders a record's JSON-ready status; "running" is derived from
// the clock so queued→running needs no event of its own.
func (s *Service) snapshot(rec *jobRecord) JobStatus {
	st := rec.state
	if st == StateQueued && s.simClock >= rec.arrival {
		st = StateRunning
	}
	return JobStatus{
		ID:         rec.id,
		Name:       rec.name,
		Tenant:     rec.tenant,
		State:      st,
		Reason:     rec.reason,
		Stages:     rec.stages,
		Arrival:    rec.arrival,
		End:        rec.end,
		JCT:        rec.jct,
		PlanSource: rec.planSource,
		CacheHit:   rec.cacheHit,
		Revised:    rec.revised,
		Epoch:      rec.epoch,
	}
}

// Sync advances the data plane to the current wall-derived instant, so
// read-only queries observe a moving world.
func (s *Service) Sync() error {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advanceTo(s.virtualNow(now))
}

// Drain runs the data plane until every admitted job has finished — the
// load drivers call it after the last submission to collect final JCTs.
func (s *Service) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advanceTo(math.Inf(1))
}

// Job returns one submission's status.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.snapshot(rec), true
}

// Jobs returns every submission in arrival order.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.history))
	for _, rec := range s.history {
		out = append(out, s.snapshot(rec))
	}
	return out
}

// Plan returns the delay vector chosen for an admitted job; ok is false
// for unknown IDs and for submissions that never reached planning.
func (s *Service) Plan(id string) (PlanStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok || rec.planSource == "" {
		return PlanStatus{}, false
	}
	delays := make(map[string]float64, len(rec.delays))
	for sid, d := range rec.delays {
		delays[strconv.Itoa(int(sid))] = d
	}
	return PlanStatus{
		ID:          rec.id,
		Source:      rec.planSource,
		CacheHit:    rec.cacheHit,
		Revised:     rec.revised,
		Fingerprint: fmt.Sprintf("%016x", rec.fp),
		Delays:      delays,
	}, true
}

// ClusterState snapshots the data plane for GET /v1/cluster.
func (s *Service) ClusterState() ClusterState {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := ClusterState{
		SimClock:  s.simClock,
		Epoch:     s.epoch,
		Nodes:     len(s.opt.Cluster.Nodes),
		Executors: s.opt.Cluster.TotalExecutors(),
		Policy:    s.admission.Name(),
		Submitted: s.counts.submitted,
		Admitted:  s.counts.admitted,
		Rejected:  s.counts.rejected,
		Done:      s.counts.done,
		Failed:    s.counts.failed,
		Live:      s.liveCount(),
	}
	if s.stepper != nil {
		cs.EpochEvents = s.stepper.Events()
	}
	if s.cache != nil {
		cs.CacheEntries = s.cache.len()
	}
	return cs
}
