package service

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"delaystage/internal/dag"
	"delaystage/internal/obs"
	"delaystage/internal/sim"
)

// Job-lifecycle tracing: every submission is followed from the requested
// instant through admission, planning, queue wait and per-stage execution
// to its terminal state, and rendered as an obs.Trace span tree.
//
// Collection rides the data plane's determinism. The stepper is rebuilt
// on every admission and replays the whole epoch prefix, so per-stage
// observations (epochSpans) are wiped on rebuild and repopulated by the
// replay — always consistent with the events the current stepper has
// actually stepped. A job's trace is frozen exactly once, inside
// markTerminal, while its span data is complete and present; from then on
// the frozen tree is what /v1/trace serves and what the trace log
// exported (live and offline renderings are byte-identical).
//
// Memory bounds: span data lives only for the current epoch (wiped when
// the busy period drains); the timeline is a fixed-capacity ring; frozen
// traces are O(stages) per job and follow the job map's lifetime.

// TimelineSchema identifies the GET /v1/timeline response format.
const TimelineSchema = "delaystage/timeline/v1"

// TimelineEvent is one entry of the service's bounded event ring: the
// scheduler-level milestones (not the raw engine stream), newest last.
// Seq increases monotonically across the daemon's lifetime, so a client
// polling the ring can detect both gaps and overlap.
type TimelineEvent struct {
	Seq    int     `json:"seq"`
	T      float64 `json:"t"` // simulated seconds
	Kind   string  `json:"kind"`
	Job    string  `json:"job,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// TimelineStatus is the GET /v1/timeline response.
type TimelineStatus struct {
	Schema   string          `json:"schema"`
	Epoch    int             `json:"epoch"`
	SimClock float64         `json:"sim_clock"`
	Dropped  int             `json:"dropped"` // events evicted by the ring bound
	Events   []TimelineEvent `json:"events"`
}

// jobSpanData is the per-job execution observation of the current epoch,
// rebuilt deterministically by every stepper replay.
type jobSpanData struct {
	firstSubmit float64 // first stage dispatch (queue-wait end); -1 unseen
	stages      map[dag.StageID]*stageSpanData
}

// stageSpanData tracks one stage's phase transitions. Per-node phases
// (read/compute) keep the last event's time — events arrive in simulated
// order, so that is the phase's completion across nodes. -1 = unseen.
type stageSpanData struct {
	ready, submitted    float64
	readEnd, computeEnd float64
	end                 float64
	prefetch            bool
	retries             int
}

func newJobSpanData() *jobSpanData {
	return &jobSpanData{firstSubmit: -1, stages: map[dag.StageID]*stageSpanData{}}
}

func (d *jobSpanData) stage(id dag.StageID) *stageSpanData {
	st := d.stages[id]
	if st == nil {
		st = &stageSpanData{ready: -1, submitted: -1, readEnd: -1, computeEnd: -1, end: -1}
		d.stages[id] = st
	}
	return st
}

// observeStage folds one engine event into the job's span data. Called
// from the epoch observer, under the service mutex.
func (d *jobSpanData) observeStage(ev sim.Event) {
	switch ev.Kind {
	case sim.EvStageReady:
		d.stage(ev.Stage).ready = ev.T
	case sim.EvStageSubmitted:
		st := d.stage(ev.Stage)
		st.submitted = ev.T
		st.prefetch = ev.Prefetch
		if d.firstSubmit < 0 {
			d.firstSubmit = ev.T
		}
	case sim.EvReadDone:
		d.stage(ev.Stage).readEnd = ev.T
	case sim.EvComputeDone:
		d.stage(ev.Stage).computeEnd = ev.T
	case sim.EvStageCompleted:
		d.stage(ev.Stage).end = ev.T
	case sim.EvTaskRetry:
		d.stage(ev.Stage).retries++
	}
}

// spanData returns rec's live observation, nil when none exists (other
// epoch, never installed, or epoch already drained — terminal records are
// frozen before that can happen).
func (s *Service) spanData(rec *jobRecord) *jobSpanData {
	if rec.epoch != s.epoch || rec.epochIdx < 0 || rec.epochIdx >= len(s.epochSpans) {
		return nil
	}
	return s.epochSpans[rec.epochIdx]
}

// stageParents renders a job's DAG edges as compact per-stage parent
// lists ("0,1"), stored on the record at submit so traces don't retain
// the workload.
func stageParents(g *dag.Graph) map[dag.StageID]string {
	out := make(map[dag.StageID]string, g.Len())
	for _, id := range g.StagesView() {
		ps := g.Parents(id)
		if len(ps) == 0 {
			continue
		}
		var b strings.Builder
		for i, p := range ps {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(p)))
		}
		out[id] = b.String()
	}
	return out
}

// buildTrace assembles rec's span tree from the record and its epoch span
// data. Called under the service mutex: at freeze time for terminal
// records (span data complete), or on demand for live ones (open spans
// carry End = the data-plane clock and Open = true).
func (s *Service) buildTrace(rec *jobRecord) *obs.Trace {
	terminal := rec.state == StateDone || rec.state == StateFailed || rec.state == StateRejected
	st := rec.state
	if st == StateQueued && s.simClock >= rec.arrival {
		st = StateRunning
	}
	now := math.Max(s.simClock, rec.arrival)
	jobEnd, open := rec.end, false
	if !terminal {
		jobEnd, open = now, true
	}

	tr := &obs.Trace{
		Schema:  obs.TraceSchema,
		TraceID: rec.id,
		Job:     rec.name,
		Tenant:  rec.tenant,
		State:   string(st),
		Epoch:   rec.epoch,
	}
	add := func(parent int, kind, name string, start, end float64, isOpen bool, attrs map[string]any, audit *obs.DecisionAudit) int {
		id := len(tr.Spans)
		tr.Spans = append(tr.Spans, obs.Span{
			ID: id, Parent: parent, Kind: kind, Name: name,
			Start: start, End: end, Open: isOpen, Attrs: attrs, Audit: audit,
		})
		return id
	}

	root := add(-1, obs.SpanJob, "job "+rec.id, rec.requested, jobEnd, open,
		map[string]any{"stages": rec.stages}, nil)

	subAttrs := map[string]any{"requested": rec.requested}
	if rec.clamped {
		subAttrs["clamped"] = true
	}
	add(root, obs.SpanSubmit, "submit", rec.requested, rec.arrival, false, subAttrs, nil)

	admAttrs := map[string]any{
		"policy":      s.admission.Name(),
		"accepted":    rec.state != StateRejected,
		"queue_depth": rec.queueDepth,
	}
	if rec.state == StateRejected {
		admAttrs["reason"] = rec.reason
	}
	add(root, obs.SpanAdmission, "admission", rec.arrival, rec.arrival, false, admAttrs, nil)

	if rec.state == StateRejected {
		return tr
	}
	if rec.audit == nil {
		// Admitted but planning errored out: the failure is the plan span.
		add(root, obs.SpanPlan, "plan", rec.arrival, rec.arrival, false,
			map[string]any{"error": rec.reason}, nil)
		return tr
	}
	add(root, obs.SpanPlan, "plan", rec.arrival, rec.arrival, false, nil, rec.audit)

	sd := s.spanData(rec)
	fs := -1.0
	if terminal {
		fs = rec.firstSubmit
	} else if sd != nil {
		fs = sd.firstSubmit
	}
	switch {
	case fs >= 0:
		add(root, obs.SpanQueue, "queue", rec.arrival, fs, false,
			map[string]any{"wait_seconds": fs - rec.arrival}, nil)
	case terminal:
		// Finished without dispatching a stage (failed before any submit).
		add(root, obs.SpanQueue, "queue", rec.arrival, rec.end, false, nil, nil)
	default:
		add(root, obs.SpanQueue, "queue", rec.arrival, now, true, nil, nil)
	}

	if sd != nil {
		ids := make([]dag.StageID, 0, len(sd.stages))
		for id := range sd.stages {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			stg := sd.stages[id]
			start := stg.ready
			if start < 0 {
				start = stg.submitted
			}
			end, stOpen := stg.end, false
			if end < 0 {
				end, stOpen = now, !terminal
				if terminal {
					end = rec.end
				}
			}
			attrs := map[string]any{}
			if stg.submitted >= 0 {
				attrs["submitted"] = stg.submitted
			}
			if stg.readEnd >= 0 {
				attrs["read_end"] = stg.readEnd
			}
			if stg.computeEnd >= 0 {
				attrs["compute_end"] = stg.computeEnd
			}
			if d := rec.delays[id]; d > 0 {
				attrs["delay"] = d
			}
			if stg.prefetch {
				attrs["prefetch"] = true
			}
			if stg.retries > 0 {
				attrs["retries"] = stg.retries
			}
			if p := rec.stageParents[id]; p != "" {
				attrs["parents"] = p
			}
			if len(attrs) == 0 {
				attrs = nil
			}
			add(root, obs.SpanStage, fmt.Sprintf("stage %d", id),
				start, end, stOpen, attrs, nil)
		}
	}
	return tr
}

// freezeTrace pins rec's final span tree and exports it to the trace
// log. Must run while the record's span data is still present
// (markTerminal, or Submit for jobs that never reach the data plane).
func (s *Service) freezeTrace(rec *jobRecord) {
	if rec.trace != nil {
		return
	}
	rec.trace = s.buildTrace(rec)
	if s.traceLog != nil {
		if err := obs.WriteTraceLine(s.traceLog, *rec.trace); err != nil {
			s.logger.Error("trace export failed", "trace_id", rec.id, "err", err.Error())
		}
	}
}

// timelineAdd appends one milestone to the bounded ring.
func (s *Service) timelineAdd(t float64, kind, job, detail string) {
	ev := TimelineEvent{Seq: s.tlSeq, T: t, Kind: kind, Job: job, Detail: detail}
	s.tlSeq++
	if len(s.timeline) >= s.tlCap {
		n := copy(s.timeline, s.timeline[len(s.timeline)-s.tlCap+1:])
		s.timeline = s.timeline[:n]
	}
	s.timeline = append(s.timeline, ev)
}

// Trace returns a job's lifecycle span tree: the frozen tree for terminal
// jobs, a live partial tree (open spans) otherwise.
func (s *Service) Trace(id string) (obs.Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return obs.Trace{}, false
	}
	if rec.trace != nil {
		return *rec.trace, true
	}
	return *s.buildTrace(rec), true
}

// Timeline snapshots the service's bounded milestone ring.
func (s *Service) Timeline() TimelineStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := TimelineStatus{
		Schema:   TimelineSchema,
		Epoch:    s.epoch,
		SimClock: s.simClock,
		Events:   append([]TimelineEvent(nil), s.timeline...),
	}
	if len(s.timeline) > 0 {
		out.Dropped = s.timeline[0].Seq
	} else {
		out.Dropped = s.tlSeq
	}
	return out
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if err := s.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	tr, ok := s.Trace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Service) handleTimeline(w http.ResponseWriter, _ *http.Request) {
	if err := s.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Timeline())
}
