package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/obs"
	"delaystage/internal/workload"
)

// getBody fetches a URL and returns the raw response body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// spansByKind indexes a trace's spans by kind.
func spansByKind(tr obs.Trace) map[string][]obs.Span {
	out := map[string][]obs.Span{}
	for _, sp := range tr.Spans {
		out[sp.Kind] = append(out[sp.Kind], sp)
	}
	return out
}

// The headline acceptance test: a job submitted over HTTP yields a
// complete span tree from GET /v1/trace/{id}, and the trace-log export
// reconstructs that response byte-identically offline — the same
// decode-and-re-encode path cmd/analyze -trace uses.
func TestTraceEndToEndHTTP(t *testing.T) {
	var traceBuf, logBuf bytes.Buffer
	c := cluster.NewM4LargeCluster(10)
	level, err := obs.ParseLogLevel("debug")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Options{
		Cluster:  c,
		TraceLog: &traceBuf,
		Logger:   obs.NewLogger(&logBuf, level),
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	job := workload.CosineSimilarity(c, 0.15)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		bytes.NewReader(submitBodyFor(t, job, "acme", 0)))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Job(st.ID)
	if !ok || st.State != StateDone {
		t.Fatalf("after drain: %+v", st)
	}

	code, live := getBody(t, srv.URL+"/v1/trace/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("trace: %d (%s)", code, live)
	}
	var tr obs.Trace
	if err := json.Unmarshal(live, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != obs.TraceSchema || tr.TraceID != st.ID || tr.State != string(StateDone) {
		t.Fatalf("trace header: %+v", tr)
	}

	// Span-tree completeness: one closed root plus submit, admission,
	// plan (audited), queue, and one span per stage, all parented.
	byKind := spansByKind(tr)
	for _, kind := range []string{obs.SpanJob, obs.SpanSubmit, obs.SpanAdmission, obs.SpanPlan, obs.SpanQueue} {
		if len(byKind[kind]) != 1 {
			t.Fatalf("%d %q spans, want 1:\n%s", len(byKind[kind]), kind, live)
		}
	}
	if got := len(byKind[obs.SpanStage]); got != st.Stages {
		t.Fatalf("%d stage spans, want %d", got, st.Stages)
	}
	root := byKind[obs.SpanJob][0]
	if root.ID != 0 || root.Parent != -1 || root.Open || root.End != st.End {
		t.Fatalf("root span: %+v", root)
	}
	for _, sp := range tr.Spans[1:] {
		if sp.Parent != root.ID {
			t.Fatalf("span %d detached from root: %+v", sp.ID, sp)
		}
		if sp.Open || sp.Start < 0 || sp.End < sp.Start || sp.End > root.End {
			t.Fatalf("span %d out of bounds: %+v", sp.ID, sp)
		}
	}
	plan := byKind[obs.SpanPlan][0]
	if plan.Audit == nil || plan.Audit.Source != "planner" {
		t.Fatalf("plan span audit: %+v", plan.Audit)
	}
	if plan.Audit.Evaluations < 2 || plan.Audit.IncumbentTotal <= 0 {
		t.Fatalf("cold-plan audit not populated: %+v", plan.Audit)
	}
	if plan.Audit.Fallback == "" && len(plan.Audit.Delays) == 0 {
		t.Fatal("audit carries neither delays nor a fallback reason")
	}

	// Offline reconstruction: decode the trace log, re-encode the job's
	// trace, and require the exact bytes the live endpoint served.
	traces, err := obs.ReadTraces(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	off, ok := obs.FindTrace(traces, st.ID)
	if !ok {
		t.Fatalf("trace %s missing from export (%d traces)", st.ID, len(traces))
	}
	var offBuf bytes.Buffer
	if err := obs.EncodeTraceJSON(&offBuf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offBuf.Bytes(), live) {
		t.Fatalf("offline reconstruction differs from live response:\n--- offline ---\n%s\n--- live ---\n%s",
			offBuf.Bytes(), live)
	}

	// The timeline ring saw the job's milestones in order.
	code, rawTL := getBody(t, srv.URL+"/v1/timeline")
	if code != http.StatusOK {
		t.Fatalf("timeline: %d", code)
	}
	var tl TimelineStatus
	if err := json.Unmarshal(rawTL, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Schema != TimelineSchema || tl.Dropped != 0 {
		t.Fatalf("timeline header: %+v", tl)
	}
	var kinds []string
	for _, ev := range tl.Events {
		if ev.Job == st.ID || ev.Kind == "epoch" {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []string{"submitted", "planned", "done", "epoch"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("timeline kinds %v, want %v", kinds, want)
	}

	// Histograms exported; service logs carry the trace ID.
	code, metrics := getBody(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, name := range []string{"schedd_e2e_seconds_count 1", "schedd_queue_wait_seconds_count 1"} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metrics missing %q", name)
		}
	}
	if !strings.Contains(logBuf.String(), `"trace_id":"`+st.ID+`"`) {
		t.Errorf("service log has no trace_id-keyed line for %s:\n%s", st.ID, logBuf.String())
	}
}

// Decision-audit variants: a template-cache hit, a queue-depth revision
// and an admission rejection each leave their distinct mark on the trace.
func TestTraceAuditVariants(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	job := workload.CosineSimilarity(c, 0.15)

	t.Run("cache-hit", func(t *testing.T) {
		s := newTestService(t, Options{Cluster: c})
		first, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)})
		if err != nil {
			t.Fatal(err)
		}
		second, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(5.0)})
		if err != nil {
			t.Fatal(err)
		}
		tr, ok := s.Trace(second.ID)
		if !ok {
			t.Fatal("no trace for cache hit")
		}
		plan := spansByKind(tr)[obs.SpanPlan][0]
		if plan.Audit == nil || plan.Audit.Source != "template-cache" || !plan.Audit.CacheHit {
			t.Fatalf("cache-hit audit: %+v", plan.Audit)
		}
		coldTr, _ := s.Trace(first.ID)
		cold := spansByKind(coldTr)[obs.SpanPlan][0]
		if cold.Audit.Fingerprint == "" || cold.Audit.Fingerprint != plan.Audit.Fingerprint {
			t.Fatalf("fingerprint mismatch: %q vs %q", cold.Audit.Fingerprint, plan.Audit.Fingerprint)
		}
	})

	t.Run("queue-revision", func(t *testing.T) {
		s := newTestService(t, Options{Cluster: c, ReviseQueueDepth: 2, CacheCapacity: -1})
		for i := 0; i < 2; i++ {
			if _, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(float64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		st, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(2.0)})
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := s.Trace(st.ID)
		plan := spansByKind(tr)[obs.SpanPlan][0]
		if plan.Audit == nil || plan.Audit.Source != "queue-revision" || plan.Audit.Fallback != "queue-depth" {
			t.Fatalf("revision audit: %+v", plan.Audit)
		}
		if plan.Audit.QueueDepth < 2 || len(plan.Audit.Delays) != 0 {
			t.Fatalf("revision audit payload: %+v", plan.Audit)
		}
	})

	t.Run("rejected", func(t *testing.T) {
		var traceBuf bytes.Buffer
		s := newTestService(t, Options{Cluster: c, Admission: QueueDepthCap{Max: 1}, TraceLog: &traceBuf})
		if _, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)}); err != nil {
			t.Fatal(err)
		}
		st, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(1.0)})
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRejected {
			t.Fatalf("not rejected: %+v", st)
		}
		tr, ok := s.Trace(st.ID)
		if !ok || tr.State != string(StateRejected) {
			t.Fatalf("rejected trace: %+v", tr)
		}
		byKind := spansByKind(tr)
		if len(byKind[obs.SpanPlan]) != 0 || len(byKind[obs.SpanStage]) != 0 {
			t.Fatalf("rejected job grew plan/stage spans: %+v", tr.Spans)
		}
		adm := byKind[obs.SpanAdmission][0]
		if adm.Attrs["accepted"] != false || adm.Attrs["reason"] == nil {
			t.Fatalf("admission span attrs: %+v", adm.Attrs)
		}
		// Rejection freezes and exports immediately, before any drain.
		traces, err := obs.ReadTraces(bytes.NewReader(traceBuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := obs.FindTrace(traces, st.ID); !ok {
			t.Fatal("rejected trace not exported")
		}
	})
}

// A live (undrained) job serves a partial tree: the root is open and no
// span pretends the job already finished.
func TestTraceLiveOpenSpans(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c})
	job := workload.CosineSimilarity(c, 0.15)
	st, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := s.Trace(st.ID)
	if !ok {
		t.Fatal("no live trace")
	}
	if tr.State != string(StateRunning) {
		t.Fatalf("live state %q", tr.State)
	}
	if root := tr.Spans[0]; !root.Open {
		t.Fatalf("live root not open: %+v", root)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	tr, _ = s.Trace(st.ID)
	for _, sp := range tr.Spans {
		if sp.Open {
			t.Fatalf("span still open after drain: %+v", sp)
		}
	}
}

// The timeline ring is bounded: it keeps the newest entries, reports the
// eviction count, and sequence numbers stay strictly increasing.
func TestTimelineRingBound(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c, TimelineCapacity: 5})
	job := workload.LDA(c, 0.1)
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(float64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	tl := s.Timeline()
	if len(tl.Events) > 5 {
		t.Fatalf("ring overgrew: %d events", len(tl.Events))
	}
	if tl.Dropped == 0 {
		t.Fatal("evictions not reported")
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Seq != tl.Events[i-1].Seq+1 {
			t.Fatalf("sequence gap: %+v", tl.Events)
		}
	}
	if last := tl.Events[len(tl.Events)-1]; last.Seq+1 != tl.Dropped+len(tl.Events) {
		t.Fatalf("seq accounting: last=%d dropped=%d len=%d", last.Seq, tl.Dropped, len(tl.Events))
	}
}
