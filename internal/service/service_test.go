package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/jobspec"
	"delaystage/internal/scheduler"
	"delaystage/internal/workload"
)

// fixedClock freezes wall time so virtualNow is fully driven by arrivals.
func fixedClock() func() time.Time {
	t0 := time.Unix(1700000000, 0)
	return func() time.Time { return t0 }
}

func newTestService(t *testing.T, opt Options) *Service {
	t.Helper()
	if opt.Cluster == nil {
		opt.Cluster = cluster.NewM4LargeCluster(10)
	}
	if opt.Clock == nil {
		opt.Clock = fixedClock()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func submitBodyFor(t *testing.T, job *workload.Job, tenant string, arrival float64) []byte {
	t.Helper()
	spec := jobspec.FromJob(job)
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"tenant":  tenant,
		"arrival": arrival,
		"job":     json.RawMessage(raw),
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// The headline round-trip: submit over HTTP, read the plan, poll status,
// scrape metrics — every endpoint of the daemon API in one flow.
func TestServiceHTTPRoundTrip(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	job := workload.CosineSimilarity(c, 0.15)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		bytes.NewReader(submitBodyFor(t, job, "acme", 0)))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d (%+v)", resp.StatusCode, st)
	}
	if st.ID == "" || st.State == StateRejected {
		t.Fatalf("submit status %+v", st)
	}

	resp, err = http.Get(srv.URL + "/v1/plan/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var plan PlanStatus
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d", resp.StatusCode)
	}
	if plan.Source != "planner" || plan.CacheHit {
		t.Fatalf("first submission should be a cold plan, got %+v", plan)
	}

	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateDone || st.JCT <= 0 {
		t.Fatalf("after drain: %+v", st)
	}

	resp, err = http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs ClusterState
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cs.Done != 1 || cs.Live != 0 || cs.Epoch != 1 {
		t.Fatalf("cluster state after drain: %+v", cs)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"schedd_jobs_submitted_total 1",
		"schedd_plan_cache_misses_total 1",
		"schedd_plan_cache_hits_total 0",
		"schedd_job_jct_seconds_count 1",
		"schedd_http_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Unknown IDs are 404, not 500.
	resp, err = http.Get(srv.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

// Admission bounces surface as 429 with the policy's reason, and the job
// is queryable in its rejected state.
func TestServiceAdmissionRejection(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c, Admission: QueueDepthCap{Max: 1}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	job := workload.CosineSimilarity(c, 0.15)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		bytes.NewReader(submitBodyFor(t, job, "acme", 0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	// Second arrival lands while the first is live: over the cap.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		bytes.NewReader(submitBodyFor(t, job, "acme", 1)))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: %d", resp.StatusCode)
	}
	if st.State != StateRejected || st.Reason == "" {
		t.Fatalf("rejected status %+v", st)
	}
	// The rejected job never reached planning: no plan to serve.
	resp, err = http.Get(srv.URL + "/v1/plan/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("plan of rejected job: %d", resp.StatusCode)
	}
}

// Malformed submissions — bad JSON, and the planner's NaN arrival vetting
// reached through the service path — are 400s.
func TestServiceSubmitValidation(t *testing.T) {
	s := newTestService(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"job": {"name":"x","stages":[]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty stages: %d", resp.StatusCode)
	}

	// NaN cannot travel JSON, but in-process drivers can pass it; the
	// service must reject it with the planner's typed error.
	c := s.opt.Cluster
	bad := math.NaN()
	if _, err := s.Submit(SubmitRequest{Job: workload.LDA(c, 0.1), Arrival: &bad}); err == nil {
		t.Fatal("NaN arrival accepted by Submit")
	} else if _, ok := err.(*scheduler.InvalidArrivalError); !ok {
		t.Fatalf("got %T (%v), want *scheduler.InvalidArrivalError", err, err)
	}
}

// A cache hit must hand back exactly the delay vector a cold PlanOnline
// run would choose — the acceptance criterion for template reuse.
func TestTemplateCacheByteIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c})
	job := workload.CosineSimilarity(c, 0.15)

	first, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first submission hit an empty cache")
	}
	// Same spec again while the first is still live: fingerprints match,
	// the drift test passes, Alg. 1 is skipped.
	second, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(5.0)})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.PlanSource != "template-cache" {
		t.Fatalf("second submission should hit the cache: %+v", second)
	}

	cold, err := scheduler.PlanOnline(scheduler.OnlineOptions{Cluster: c},
		[]*workload.Job{job}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for id, d := range cold[0].Delays {
		want[strconv.Itoa(int(id))] = d
	}
	plan, ok := s.Plan(second.ID)
	if !ok {
		t.Fatal("no plan for cache-hit job")
	}
	if !reflect.DeepEqual(plan.Delays, want) {
		t.Fatalf("cache hit diverged from cold plan:\n%v\nvs\n%v", plan.Delays, want)
	}
	if len(want) == 0 {
		t.Fatal("test is vacuous: cold plan chose no delays")
	}
}

// A poisoned template (prediction far from reality) must fail the drift
// test, fall back to cold planning, and be evicted.
func TestTemplateDriftInvalidation(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c})
	job := workload.CosineSimilarity(c, 0.15)
	fp := Fingerprint(job)
	// A template predicting every stage ends at t=1 is hopeless for a
	// multi-hundred-second job.
	bogus := &template{fp: fp, predEnd: map[int]float64{}}
	for i := range rankedIDs(job) {
		bogus.predEnd[i] = 1
	}
	s.cache.put(bogus)

	st, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit || st.PlanSource != "planner" {
		t.Fatalf("poisoned template was reused: %+v", st)
	}
	if got := s.cache.get(fp); got == bogus {
		t.Fatal("poisoned template survived invalidation")
	}
	if got := s.cache.get(fp); got == nil {
		t.Fatal("replacement template not stored after cold plan")
	}
}

// Queue-length-aware revision: past the configured depth, jobs dispatch
// submit-when-ready without a planning sweep.
func TestServiceQueueRevision(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c, ReviseQueueDepth: 2, CacheCapacity: -1})
	job := workload.CosineSimilarity(c, 0.15)
	for i := 0; i < 2; i++ {
		st, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(float64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if st.Revised {
			t.Fatalf("submission %d revised below the depth threshold", i)
		}
	}
	st, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(2.0)})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Revised || st.PlanSource != "queue-revision" {
		t.Fatalf("deep-queue submission not revised: %+v", st)
	}
	plan, ok := s.Plan(st.ID)
	if !ok || len(plan.Delays) != 0 {
		t.Fatalf("revised plan should be submit-when-ready: %+v", plan)
	}
}

// Draining rolls the busy-period epoch: planner state resets, later jobs
// start a fresh world, and the arrival watermark still cannot rewind.
func TestServiceEpochRollover(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	s := newTestService(t, Options{Cluster: c})
	job := workload.LDA(c, 0.1)
	first, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	cs := s.ClusterState()
	if cs.Epoch != 1 || cs.Live != 0 || cs.Done != 1 {
		t.Fatalf("after drain: %+v", cs)
	}
	// An arrival "before" the drained world is clamped forward, not an
	// error: time cannot rewind across epochs.
	second, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	if second.Arrival < first.Arrival {
		t.Fatalf("arrival rewound across epochs: %v after %v", second.Arrival, first.Arrival)
	}
	if second.Epoch != 1 {
		t.Fatalf("second job in epoch %d, want 1", second.Epoch)
	}
}

// Fingerprints must be invariant to stage-ID renaming (templates transfer
// across recurring submissions with different ID assignments) and
// sensitive to profile changes beyond the quantization grid.
func TestFingerprintInvariance(t *testing.T) {
	build := func(base int, rate float64) *workload.Job {
		g := dag.New()
		g.MustAdd(dag.Stage{ID: dag.StageID(base)})
		g.MustAdd(dag.Stage{ID: dag.StageID(base + 1), Parents: []dag.StageID{dag.StageID(base)}})
		prof := workload.StageProfile{ShuffleIn: 1 << 30, ShuffleOut: 1 << 28, ProcRate: rate}
		return &workload.Job{
			Name:  fmt.Sprintf("fp-%d", base),
			Graph: g,
			Profiles: map[dag.StageID]workload.StageProfile{
				dag.StageID(base):     prof,
				dag.StageID(base + 1): prof,
			},
		}
	}
	a, b := build(0, 1e8), build(100, 1e8)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint not invariant to stage-ID renaming")
	}
	if Fingerprint(a) == Fingerprint(build(0, 3e8)) {
		t.Fatal("fingerprint blind to a 3× processing-rate change")
	}
}

func ptr(v float64) *float64 { return &v }

// TestPlanAuditPruneFields: a cold planner decision must carry the
// two-tier scan counters in its trace audit, bump the prune/exact-eval
// counters, and surface the outcome in the planned timeline milestone.
func TestPlanAuditPruneFields(t *testing.T) {
	s := newTestService(t, Options{})
	c := cluster.NewM4LargeCluster(10)
	st, err := s.Submit(SubmitRequest{Job: workload.ALS(c, 0.3), Arrival: ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := s.Trace(st.ID)
	if !ok {
		t.Fatal("trace missing")
	}
	var found bool
	for _, sp := range tr.Spans {
		if sp.Audit == nil {
			continue
		}
		found = true
		a := sp.Audit
		if a.Source != "planner" {
			t.Fatalf("source = %q", a.Source)
		}
		if a.ExactEvals != a.Evaluations || a.ExactEvals == 0 {
			t.Fatalf("exact_evals %d must equal evaluations %d", a.ExactEvals, a.Evaluations)
		}
		if a.Bounded == 0 || a.Pruned == 0 {
			t.Fatalf("bound tier idle on a cold sweep: %+v", a)
		}
		if a.ApproxEvals != 0 {
			t.Fatalf("approx_evals %d in exact mode", a.ApproxEvals)
		}
	}
	if !found {
		t.Fatal("no plan audit in trace")
	}
	var buf bytes.Buffer
	if err := s.Registry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"schedd_plan_pruned_total", "schedd_plan_exact_evals_total"} {
		val := ""
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, name+" ") {
				val = strings.TrimPrefix(line, name+" ")
			}
		}
		if val == "" || val == "0" {
			t.Fatalf("counter %s not bumped (got %q)\n%s", name, val, buf.String())
		}
	}
	var planned bool
	for _, ev := range s.Timeline().Events {
		if ev.Kind == "planned" {
			planned = true
			if !strings.Contains(ev.Detail, "pruned=") || !strings.Contains(ev.Detail, "exact=") {
				t.Fatalf("planned milestone lacks prune counts: %q", ev.Detail)
			}
		}
	}
	if !planned {
		t.Fatal("no planned milestone")
	}
}

// TestApproximatePlanningService: with ApproximatePlanning on, planning
// decisions are answered entirely by the bound surrogate (no exact
// evaluations anywhere, audit says so) and the template cache still
// round-trips byte-identical plans.
func TestApproximatePlanningService(t *testing.T) {
	s := newTestService(t, Options{ApproximatePlanning: true})
	c := cluster.NewM4LargeCluster(10)
	job := workload.ALS(c, 0.3)
	st, err := s.Submit(SubmitRequest{Job: job, Arrival: ptr(0.0)})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := s.Trace(st.ID)
	if !ok {
		t.Fatal("trace missing")
	}
	for _, sp := range tr.Spans {
		if sp.Audit == nil {
			continue
		}
		if sp.Audit.ExactEvals != 0 {
			t.Fatalf("approximate mode ran %d exact evaluations", sp.Audit.ExactEvals)
		}
		if sp.Audit.ApproxEvals == 0 {
			t.Fatal("approximate mode scored no candidates")
		}
	}
	// A same-fingerprint resubmission must hit the surrogate-backed drift
	// test and reuse the cached plan.
	st2, err := s.Submit(SubmitRequest{Job: workload.ALS(c, 0.3), Arrival: ptr(5000.0)})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := s.Plan(st.ID)
	p2, ok := s.Plan(st2.ID)
	if !ok || !p2.CacheHit {
		t.Fatalf("expected a template-cache hit, got %+v", p2)
	}
	if !reflect.DeepEqual(p1.Delays, p2.Delays) {
		t.Fatalf("cached plan drifted: %v vs %v", p1.Delays, p2.Delays)
	}
}
