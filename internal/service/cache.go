package service

import (
	"hash/fnv"
	"math"
	"sort"

	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// Plan-template cache, after Execution Templates (PAPERS.md): recurring
// jobs — the common case in production analytics, where the same report or
// pipeline runs on every new data batch — share a control-plane decision.
// A template stores the delay vector Alg. 1 chose for a job planned in a
// solo context (no committed runs), keyed by a fingerprint of the job's
// DAG shape and quantized per-stage profile. A later job with the same
// fingerprint reuses the stored delays verbatim and skips the sweep.
//
// Two properties keep reuse sound:
//
//   - Templates transfer across stage-ID renamings: delays and the drift
//     reference are keyed by each stage's *rank* in sorted-ID order, not
//     by the raw IDs, and are re-instantiated onto the hit job's IDs. Two
//     jobs with the same shape but shifted IDs hit the same template.
//
//   - Every hit is validity-checked with the guarded watchdog's drift
//     test before reuse: one fault-free solo simulation of the hit job
//     under the instantiated delays, per-stage end times compared against
//     the template's stored prediction. Profiles that quantize equal but
//     behave differently (or a fingerprint collision) fail the check and
//     fall back to a cold plan.
//
// Because a template stores the delays exactly as OnlinePlanner.Add chose
// them for the first (miss) job — the same code path a cold PlanOnline
// run takes — a cache hit for an identical job spec returns a delay
// vector byte-identical to what cold planning would produce.

// template is one cached control-plane decision.
type template struct {
	fp uint64
	// delays maps stage rank (index in sorted-ID order) → chosen delay.
	delays map[int]float64
	// predEnd maps stage rank → absolute end time of a fault-free solo
	// run at arrival 0 under delays: the drift reference.
	predEnd map[int]float64
	hits    int
}

// templateCache is a bounded fingerprint → template map with FIFO
// eviction. Not locked: the Service serializes access under its own mutex.
type templateCache struct {
	capacity int
	entries  map[uint64]*template
	order    []uint64 // insertion order, oldest first
}

func newTemplateCache(capacity int) *templateCache {
	return &templateCache{capacity: capacity, entries: make(map[uint64]*template)}
}

func (c *templateCache) get(fp uint64) *template { return c.entries[fp] }

func (c *templateCache) put(t *template) {
	if _, ok := c.entries[t.fp]; !ok {
		for len(c.order) >= c.capacity && len(c.order) > 0 {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.order = append(c.order, t.fp)
	}
	c.entries[t.fp] = t
}

// drop removes an invalidated template so the replacement plan can be
// stored in its place.
func (c *templateCache) drop(fp uint64) {
	if _, ok := c.entries[fp]; !ok {
		return
	}
	delete(c.entries, fp)
	for i, f := range c.order {
		if f == fp {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

func (c *templateCache) len() int { return len(c.entries) }

// rankedIDs returns the job's stage IDs in sorted order; index in the
// returned slice is the stage's rank.
func rankedIDs(j *workload.Job) []dag.StageID {
	ids := j.Graph.Stages()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// qlog quantizes a positive magnitude onto a log₂ grid with 8 buckets per
// octave (~9% per bucket): profiles measured on slightly different data
// batches land in the same bucket, genuinely different stages do not.
func qlog(x float64) int64 {
	if x <= 0 {
		return -1
	}
	return int64(math.Round(8 * math.Log2(x)))
}

// Fingerprint hashes a job's plan-template equivalence class: the DAG
// shape (stage count and parent edges over stage ranks) plus each stage's
// quantized profile. Names and raw stage IDs are excluded so recurring
// jobs fingerprint equal across submissions.
func Fingerprint(j *workload.Job) uint64 {
	ids := rankedIDs(j)
	rank := make(map[dag.StageID]int, len(ids))
	for i, id := range ids {
		rank[id] = i
	}
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	putInt := func(v int64) {
		buf = buf[:0]
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(uint64(v)>>(8*i)))
		}
		h.Write(buf)
	}
	putInt(int64(len(ids)))
	for i, id := range ids {
		putInt(int64(i))
		parents := j.Graph.Parents(id)
		pr := make([]int, 0, len(parents))
		for _, p := range parents {
			pr = append(pr, rank[p])
		}
		sort.Ints(pr)
		putInt(int64(len(pr)))
		for _, p := range pr {
			putInt(int64(p))
		}
		prof := j.Profiles[id]
		putInt(qlog(float64(prof.ShuffleIn)))
		putInt(qlog(float64(prof.ShuffleOut)))
		putInt(qlog(prof.ProcRate))
		putInt(int64(math.Round(prof.Skew * 20)))
		putInt(int64(prof.Tasks))
	}
	return h.Sum64()
}

// instantiate maps the template's rank-keyed delays onto the job's actual
// stage IDs. A nil return means the template holds no delays (the stored
// plan was submit-when-ready).
func (t *template) instantiate(j *workload.Job) map[dag.StageID]float64 {
	if len(t.delays) == 0 {
		return nil
	}
	ids := rankedIDs(j)
	out := make(map[dag.StageID]float64, len(t.delays))
	for r, d := range t.delays {
		if r < len(ids) {
			out[ids[r]] = d
		}
	}
	return out
}
