// Package ckpt is the on-disk checkpoint envelope shared by every
// crash-safe artifact in this repo (simulator snapshots, replay progress).
// It frames an opaque payload with enough metadata to reject the three
// ways a resume can go wrong: resuming the wrong thing (a typed kind
// string), resuming across an incompatible encoding change (an explicit
// version), and resuming against a different configuration than the one
// that produced the checkpoint (a caller-supplied fingerprint). A CRC-64
// trailer rejects torn or corrupted files — a process SIGKILLed mid-write
// must never be able to half-resume.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "DSCKPT01"
//	8       1     kind length n (1..255)
//	9       n     kind (UTF-8, no NULs)
//	9+n     4     version
//	13+n    8     fingerprint
//	21+n    8     payload length m
//	29+n    m     payload
//	29+n+m  8     CRC-64/ECMA of bytes [0, 29+n+m)
//
// Writes go through a temp file plus rename, so a checkpoint file is
// either the complete previous checkpoint or the complete new one.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"
)

// Magic identifies a checkpoint file; bump the trailing digits on any
// incompatible envelope (not payload) change.
const Magic = "DSCKPT01"

// maxPayload caps the decoded payload size (1 GiB): a corrupted length
// field must not become a giant allocation.
const maxPayload = 1 << 30

// Envelope is one framed checkpoint.
type Envelope struct {
	// Kind names the payload type (e.g. "sim-snapshot"); 1–255 bytes.
	Kind string
	// Version is the payload encoding version; readers reject versions
	// they do not understand.
	Version uint32
	// Fingerprint binds the checkpoint to the configuration that produced
	// it; resuming verifies it against the fingerprint recomputed from the
	// live configuration.
	Fingerprint uint64
	// Payload is the opaque checkpoint body.
	Payload []byte
}

// FormatError reports a checkpoint that failed to decode or verify —
// corrupted, truncated, or produced by an incompatible writer. Resumers
// should treat it as "no checkpoint" (start fresh), not as a fatal error.
type FormatError struct {
	Path   string // empty for in-memory decodes
	Reason string
}

func (e *FormatError) Error() string {
	if e.Path == "" {
		return "ckpt: " + e.Reason
	}
	return fmt.Sprintf("ckpt: %s: %s", e.Path, e.Reason)
}

// IsFormat reports whether err is a checkpoint format/verification error.
func IsFormat(err error) bool {
	_, ok := err.(*FormatError)
	return ok
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Encode frames the envelope.
func Encode(e Envelope) ([]byte, error) {
	if len(e.Kind) == 0 || len(e.Kind) > 255 {
		return nil, fmt.Errorf("ckpt: kind length %d out of range [1,255]", len(e.Kind))
	}
	if strings.IndexByte(e.Kind, 0) >= 0 {
		return nil, fmt.Errorf("ckpt: kind contains NUL")
	}
	if len(e.Payload) > maxPayload {
		return nil, fmt.Errorf("ckpt: payload %d bytes exceeds cap %d", len(e.Payload), maxPayload)
	}
	n := len(Magic) + 1 + len(e.Kind) + 4 + 8 + 8 + len(e.Payload) + 8
	b := make([]byte, 0, n)
	b = append(b, Magic...)
	b = append(b, byte(len(e.Kind)))
	b = append(b, e.Kind...)
	b = binary.LittleEndian.AppendUint32(b, e.Version)
	b = binary.LittleEndian.AppendUint64(b, e.Fingerprint)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(e.Payload)))
	b = append(b, e.Payload...)
	b = binary.LittleEndian.AppendUint64(b, crc64.Checksum(b, crcTable))
	return b, nil
}

// Decode parses and verifies a framed envelope. Any deviation — wrong
// magic, truncation, trailing garbage, CRC mismatch — is a *FormatError.
func Decode(b []byte) (Envelope, error) {
	fail := func(reason string) (Envelope, error) {
		return Envelope{}, &FormatError{Reason: reason}
	}
	if len(b) < len(Magic)+1 {
		return fail("truncated header")
	}
	if string(b[:len(Magic)]) != Magic {
		return fail("bad magic")
	}
	kl := int(b[len(Magic)])
	if kl == 0 {
		return fail("empty kind")
	}
	off := len(Magic) + 1
	if len(b) < off+kl+4+8+8 {
		return fail("truncated header")
	}
	e := Envelope{Kind: string(b[off : off+kl])}
	off += kl
	e.Version = binary.LittleEndian.Uint32(b[off:])
	off += 4
	e.Fingerprint = binary.LittleEndian.Uint64(b[off:])
	off += 8
	plen := binary.LittleEndian.Uint64(b[off:])
	off += 8
	if plen > maxPayload {
		return fail(fmt.Sprintf("payload length %d exceeds cap", plen))
	}
	if uint64(len(b)-off) < plen+8 {
		return fail("truncated payload")
	}
	if uint64(len(b)-off) > plen+8 {
		return fail("trailing garbage")
	}
	e.Payload = append([]byte(nil), b[off:off+int(plen)]...)
	body := b[:off+int(plen)]
	want := binary.LittleEndian.Uint64(b[off+int(plen):])
	if crc64.Checksum(body, crcTable) != want {
		return fail("CRC mismatch")
	}
	return e, nil
}

// Expect verifies the envelope's identity against what the resumer needs.
// A mismatch is a *FormatError: the file is a valid checkpoint, just not
// one this configuration can resume from.
func (e Envelope) Expect(kind string, version uint32, fingerprint uint64) error {
	if e.Kind != kind {
		return &FormatError{Reason: fmt.Sprintf("kind %q, want %q", e.Kind, kind)}
	}
	if e.Version != version {
		return &FormatError{Reason: fmt.Sprintf("version %d, want %d", e.Version, version)}
	}
	if e.Fingerprint != fingerprint {
		return &FormatError{Reason: fmt.Sprintf("fingerprint %x, want %x (checkpoint is from a different configuration)", e.Fingerprint, fingerprint)}
	}
	return nil
}

// WriteFile atomically writes the envelope to path: encode, write to a
// temp file in the same directory, fsync, rename. A crash at any point
// leaves either the old complete file or the new complete file.
func WriteFile(path string, e Envelope) error {
	b, err := Encode(e)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp) // no-op after a successful rename
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile reads and verifies a checkpoint file. Decode failures carry
// the path in the *FormatError; a missing file returns the os error
// unwrapped (check with os.IsNotExist / errors.Is(err, fs.ErrNotExist)).
func ReadFile(path string) (Envelope, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Envelope{}, err
	}
	e, err := Decode(b)
	if err != nil {
		if fe, ok := err.(*FormatError); ok {
			fe.Path = path
		}
		return Envelope{}, err
	}
	return e, nil
}
