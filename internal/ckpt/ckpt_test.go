package ckpt

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Kind: "sim-snapshot", Version: 1, Fingerprint: 0xdeadbeefcafe, Payload: []byte("hello")},
		{Kind: "replay-progress", Version: 7, Fingerprint: 0, Payload: nil},
		{Kind: "x", Version: 0, Fingerprint: ^uint64(0), Payload: bytes.Repeat([]byte{0}, 4096)},
	}
	for _, e := range cases {
		b, err := Encode(e)
		if err != nil {
			t.Fatalf("%q: %v", e.Kind, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%q: decode: %v", e.Kind, err)
		}
		if got.Kind != e.Kind || got.Version != e.Version ||
			got.Fingerprint != e.Fingerprint || !bytes.Equal(got.Payload, e.Payload) {
			t.Fatalf("%q: round-trip mismatch:\n got %+v\nwant %+v", e.Kind, got, e)
		}
	}
}

// TestGoldenEncoding pins the byte layout: a checkpoint written by this
// build must stay readable by future builds (and vice versa within one
// version), so the frame bytes are part of the contract.
func TestGoldenEncoding(t *testing.T) {
	e := Envelope{Kind: "t", Version: 2, Fingerprint: 0x0102030405060708, Payload: []byte{0xAA, 0xBB}}
	b, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	want := "4453434b50543031" + // "DSCKPT01"
		"01" + "74" + // kind len 1, "t"
		"02000000" + // version 2 LE
		"0807060504030201" + // fingerprint LE
		"0200000000000000" + // payload len 2 LE
		"aabb" // payload
	got := hex.EncodeToString(b)
	if len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("frame bytes changed:\n got %s\nwant %s + crc", got, want)
	}
	if len(b) != len(want)/2+8 {
		t.Fatalf("frame length %d, want %d", len(b), len(want)/2+8)
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := Encode(Envelope{Kind: ""}); err == nil {
		t.Error("empty kind accepted")
	}
	if _, err := Encode(Envelope{Kind: string(make([]byte, 256))}); err == nil {
		t.Error("256-byte kind accepted")
	}
	if _, err := Encode(Envelope{Kind: "a\x00b"}); err == nil {
		t.Error("NUL in kind accepted")
	}
}

// Every truncation prefix and every single-byte corruption of a valid
// frame must be rejected — a SIGKILL mid-write or a flipped bit must
// never half-resume.
func TestDecodeRejectsCorruption(t *testing.T) {
	e := Envelope{Kind: "sim-snapshot", Version: 3, Fingerprint: 42, Payload: []byte("payload bytes here")}
	b, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(b))
		} else if !IsFormat(err) {
			t.Fatalf("truncation to %d bytes: not a FormatError: %v", n, err)
		}
	}
	for i := 0; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d accepted", i)
		}
	}
	if _, err := Decode(append(append([]byte(nil), b...), 0x00)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestExpect(t *testing.T) {
	e := Envelope{Kind: "k", Version: 1, Fingerprint: 9}
	if err := e.Expect("k", 1, 9); err != nil {
		t.Errorf("matching expect failed: %v", err)
	}
	for _, tc := range []struct {
		k  string
		v  uint32
		fp uint64
	}{
		{"other", 1, 9}, {"k", 2, 9}, {"k", 1, 10},
	} {
		err := e.Expect(tc.k, tc.v, tc.fp)
		if err == nil {
			t.Errorf("Expect(%q,%d,%d) accepted a mismatch", tc.k, tc.v, tc.fp)
		} else if !IsFormat(err) {
			t.Errorf("Expect mismatch is not a FormatError: %v", err)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	e := Envelope{Kind: "sim-snapshot", Version: 1, Fingerprint: 77, Payload: []byte("state")}
	if err := WriteFile(path, e); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("file round-trip mismatch: %+v vs %+v", got, e)
	}
	// Overwrite is atomic-by-rename: after a second write the file decodes
	// as exactly the second envelope, and no temp litter remains.
	e2 := Envelope{Kind: "sim-snapshot", Version: 1, Fingerprint: 77, Payload: []byte("newer state")}
	if err := WriteFile(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, e2.Payload) {
		t.Fatalf("overwrite left stale payload %q", got.Payload)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files leaked: %v", ents)
	}
	// A truncated file on disk reads back as a FormatError carrying the path.
	if err := os.WriteFile(path, []byte("DSCKPT01garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !IsFormat(err) {
		t.Fatalf("corrupt file: err = %v, want FormatError", err)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want not-exist", err)
	}
}

// FuzzDecode: arbitrary bytes must never panic, and every frame that
// decodes must re-encode to the identical bytes (the format has exactly
// one encoding per envelope).
func FuzzDecode(f *testing.F) {
	seed := Envelope{Kind: "sim-snapshot", Version: 1, Fingerprint: 42, Payload: []byte("seed")}
	if b, err := Encode(seed); err == nil {
		f.Add(b)
		f.Add(b[:len(b)-3])
		mut := append([]byte(nil), b...)
		mut[9] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := Decode(b)
		if err != nil {
			return
		}
		re, err := Encode(e)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", b, re)
		}
	})
}
