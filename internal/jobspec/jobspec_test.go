package jobspec

import (
	"bytes"
	"strings"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

const sampleJSON = `{
  "name": "sample",
  "stages": [
    {"id": 1, "name": "loadA", "phases": {"read_sec": 60, "compute_sec": 50, "write_sec": 5}},
    {"id": 2, "parents": [1], "phases": {"read_sec": 40, "compute_sec": 60, "write_sec": 5, "skew": 0.4}},
    {"id": 3, "resources": {"shuffle_in_bytes": 1048576, "shuffle_out_bytes": 1024, "proc_rate_bps": 1048576}},
    {"id": 4, "parents": [2, 3], "phases": {"read_sec": 30, "compute_sec": 40, "write_sec": 5}}
  ]
}`

func TestParseAndMaterialize(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "sample" || len(s.Stages) != 4 {
		t.Fatalf("spec = %+v", s)
	}
	c := cluster.NewM4LargeCluster(10)
	j, err := s.Job(c)
	if err != nil {
		t.Fatal(err)
	}
	if j.Graph.Len() != 4 {
		t.Fatalf("job has %d stages", j.Graph.Len())
	}
	if got := j.Profiles[3].ShuffleIn; got != 1048576 {
		t.Fatalf("resource stage shuffle-in %d", got)
	}
	// The phase-specified stage must match workload.FromPhases.
	want := workload.FromPhases(c, workload.PhaseSpec{ReadSec: 60, ComputeSec: 50, WriteSec: 5})
	if j.Profiles[1] != want {
		t.Fatalf("phase stage profile %+v, want %+v", j.Profiles[1], want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`{}`,                      // no stages
		`{"stages": [{"id": 1}]}`, // neither view
		`{"stages": [{"id": 1, "phases": {}, "resources": {}}]}`,             // both views
		`{"stages": [{"id": 1, "phases": {}}, {"id": 1, "phases": {}}]}`,     // dup id
		`{"stages": [{"id": 1, "parents": [9], "phases": {"read_sec": 1}}]}`, // bad parent
		`{"stages": [{"id": 1, "phases": {"read_sec": 1}, "bogus": true}]}`,  // unknown field
		`not json`,
	}
	for i, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error for %s", i, src)
		}
	}
}

func TestRoundTripFromJob(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	orig := workload.LDA(c, 0.5)
	spec := FromJob(orig)
	var buf bytes.Buffer
	if err := spec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	j, err := back.Job(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range orig.Graph.Stages() {
		if orig.Profiles[id] != j.Profiles[id] {
			t.Fatalf("stage %d profile changed: %+v vs %+v", id, orig.Profiles[id], j.Profiles[id])
		}
		op, np := orig.Graph.Parents(id), j.Graph.Parents(id)
		if len(op) != len(np) {
			t.Fatalf("stage %d parents changed", id)
		}
	}
}

func TestJobSpecCyclic(t *testing.T) {
	src := `{"stages": [
      {"id": 1, "parents": [2], "phases": {"read_sec": 1, "compute_sec": 1}},
      {"id": 2, "parents": [1], "phases": {"read_sec": 1, "compute_sec": 1}}]}`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err) // referential integrity is fine; cycle caught at Job()
	}
	if _, err := s.Job(cluster.NewM4LargeCluster(3)); err == nil {
		t.Fatal("cyclic spec must fail materialization")
	}
}

func TestDOT(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.CosineSimilarity(c, 0.5)
	sched, err := core.Compute(core.Options{Cluster: c}, j)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DOT(j, sched.Delays)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "s1 ->", "lightblue", "rankdir=LR"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Delayed stages must be visually annotated.
	if len(sched.Delays) > 0 && !strings.Contains(out, "peripheries=2") {
		t.Error("delayed stages not annotated")
	}
	// Undelayed rendering works too.
	if _, err := DOT(j, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path.json"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestDOTDeterministic(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	j := workload.LDA(c, 0.2)
	a, _ := DOT(j, nil)
	b, _ := DOT(j, nil)
	if a != b {
		t.Fatal("DOT output must be deterministic")
	}
	_ = dag.StageID(0)
}
