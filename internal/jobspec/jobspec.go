// Package jobspec loads and saves DAG-job descriptions as JSON and exports
// them (and their delay schedules) as Graphviz DOT. It is the interchange
// layer that lets cmd/delaystage and cmd/simulate operate on arbitrary
// user-provided jobs instead of only the built-in paper workloads.
//
// A spec describes each stage either by explicit resource quantities
// (shuffle bytes, processing rate) or by intended uncontended phase
// durations on a reference cluster — the same two views the workload
// package supports.
package jobspec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// Spec is the on-disk JSON form of a job.
type Spec struct {
	Name   string      `json:"name"`
	Stages []StageSpec `json:"stages"`
}

// StageSpec describes one stage. Exactly one of (Phases) or (Resources)
// must be set.
type StageSpec struct {
	ID      int    `json:"id"`
	Name    string `json:"name,omitempty"`
	Parents []int  `json:"parents,omitempty"`

	// Phases gives uncontended phase durations on the reference cluster.
	Phases *PhaseSpec `json:"phases,omitempty"`
	// Resources gives explicit quantities.
	Resources *ResourceSpec `json:"resources,omitempty"`
}

// PhaseSpec mirrors workload.PhaseSpec in JSON form.
type PhaseSpec struct {
	ReadSec    float64 `json:"read_sec"`
	ComputeSec float64 `json:"compute_sec"`
	WriteSec   float64 `json:"write_sec"`
	Skew       float64 `json:"skew,omitempty"`
	Tasks      int     `json:"tasks,omitempty"`
}

// ResourceSpec mirrors workload.StageProfile in JSON form.
type ResourceSpec struct {
	ShuffleInBytes  int64   `json:"shuffle_in_bytes"`
	ShuffleOutBytes int64   `json:"shuffle_out_bytes"`
	ProcRateBps     float64 `json:"proc_rate_bps"`
	Skew            float64 `json:"skew,omitempty"`
	Tasks           int     `json:"tasks,omitempty"`
}

// Parse reads a Spec from JSON.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a Spec from a file.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

func (s *Spec) validate() error {
	if len(s.Stages) == 0 {
		return fmt.Errorf("jobspec: no stages")
	}
	seen := map[int]bool{}
	for _, st := range s.Stages {
		if seen[st.ID] {
			return fmt.Errorf("jobspec: duplicate stage id %d", st.ID)
		}
		seen[st.ID] = true
		if (st.Phases == nil) == (st.Resources == nil) {
			return fmt.Errorf("jobspec: stage %d must set exactly one of phases/resources", st.ID)
		}
	}
	for _, st := range s.Stages {
		for _, p := range st.Parents {
			if !seen[p] {
				return fmt.Errorf("jobspec: stage %d references unknown parent %d", st.ID, p)
			}
		}
	}
	return nil
}

// Job materializes the spec into a workload.Job against the reference
// cluster (used to convert phase durations into byte quantities).
func (s *Spec) Job(ref *cluster.Cluster) (*workload.Job, error) {
	g := dag.New()
	profiles := make(map[dag.StageID]workload.StageProfile, len(s.Stages))
	for _, st := range s.Stages {
		var parents []dag.StageID
		for _, p := range st.Parents {
			parents = append(parents, dag.StageID(p))
		}
		if err := g.AddStage(dag.Stage{ID: dag.StageID(st.ID), Name: st.Name, Parents: parents}); err != nil {
			return nil, fmt.Errorf("jobspec: %w", err)
		}
		switch {
		case st.Phases != nil:
			profiles[dag.StageID(st.ID)] = workload.FromPhases(ref, workload.PhaseSpec{
				ReadSec:    st.Phases.ReadSec,
				ComputeSec: st.Phases.ComputeSec,
				WriteSec:   st.Phases.WriteSec,
				Skew:       st.Phases.Skew,
				Tasks:      st.Phases.Tasks,
			})
		case st.Resources != nil:
			profiles[dag.StageID(st.ID)] = workload.StageProfile{
				ShuffleIn:  st.Resources.ShuffleInBytes,
				ShuffleOut: st.Resources.ShuffleOutBytes,
				ProcRate:   st.Resources.ProcRateBps,
				Skew:       st.Resources.Skew,
				Tasks:      st.Resources.Tasks,
			}
		}
	}
	j := &workload.Job{Name: s.Name, Graph: g, Profiles: profiles}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("jobspec: %w", err)
	}
	return j, nil
}

// FromJob converts a workload.Job back into a resource-quantity Spec
// (round-trippable; phase view is lossy so it is not reconstructed).
func FromJob(j *workload.Job) *Spec {
	s := &Spec{Name: j.Name}
	for _, id := range j.Graph.Stages() {
		st := j.Graph.Stage(id)
		p := j.Profiles[id]
		var parents []int
		for _, pid := range st.Parents {
			parents = append(parents, int(pid))
		}
		s.Stages = append(s.Stages, StageSpec{
			ID:      int(id),
			Name:    st.Name,
			Parents: parents,
			Resources: &ResourceSpec{
				ShuffleInBytes:  p.ShuffleIn,
				ShuffleOutBytes: p.ShuffleOut,
				ProcRateBps:     p.ProcRate,
				Skew:            p.Skew,
				Tasks:           p.Tasks,
			},
		})
	}
	return s
}

// Write emits the spec as indented JSON.
func (s *Spec) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DOT renders the job's DAG in Graphviz format. delays, if non-nil,
// annotates delayed stages (label suffix and doubled outline); parallel
// stages get a distinct fill so the schedule is readable at a glance.
func DOT(j *workload.Job, delays map[dag.StageID]float64) (string, error) {
	reach, err := dag.NewReachability(j.Graph)
	if err != nil {
		return "", err
	}
	inK := map[dag.StageID]bool{}
	for _, id := range dag.ParallelStages(j.Graph, reach) {
		inK[id] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, style=filled, fillcolor=white];\n", j.Name)
	ids := j.Graph.Stages()
	sort.Slice(ids, func(a, c int) bool { return ids[a] < ids[c] })
	for _, id := range ids {
		st := j.Graph.Stage(id)
		label := fmt.Sprintf("S%d", id)
		if st.Name != "" {
			// \n is a Graphviz line break; escape quotes only.
			label = fmt.Sprintf("S%d\\n%s", id, strings.ReplaceAll(st.Name, `"`, `\"`))
		}
		attrs := []string{fmt.Sprintf("label=\"%s\"", label)}
		if inK[id] {
			attrs = append(attrs, "fillcolor=lightblue")
		}
		if d, ok := delays[id]; ok && d > 0 {
			attrs = append(attrs, "peripheries=2", fmt.Sprintf("xlabel=\"+%.0fs\"", d))
		}
		fmt.Fprintf(&b, "  s%d [%s];\n", id, strings.Join(attrs, ", "))
	}
	for _, id := range ids {
		for _, p := range j.Graph.Parents(id) {
			fmt.Fprintf(&b, "  s%d -> s%d;\n", p, id)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}
