package jobspec

import (
	"strings"
	"testing"

	"delaystage/internal/cluster"
)

// FuzzParse: arbitrary JSON must either error or produce a spec that
// materializes into a valid workload (or is rejected at that step).
func FuzzParse(f *testing.F) {
	f.Add(sampleJSON)
	f.Add(`{"stages":[{"id":1,"phases":{"read_sec":1,"compute_sec":1}}]}`)
	f.Add(`{"stages":[{"id":1,"parents":[1],"phases":{}}]}`)
	f.Add(`{"name":"x"}`)
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if _, err := s.Job(cluster.NewM4LargeCluster(2)); err != nil {
			return // cycles / bad profiles rejected, not panicked
		}
	})
}
