package attr

import (
	"fmt"

	"delaystage/internal/obs"
	"delaystage/internal/sim"
)

// Live streams attribution gauges into an obs.Registry while a simulation
// runs, for scraping via the -serve introspection endpoint. It consumes
// the engine's per-interval resource-share snapshots (sim.ShareObserver),
// so its numbers are exact integrals, not samples — but unlike the
// report, they exist only while the process runs; offline analysis uses
// Build over the event log instead.
//
// Exported series (all with an optional extra label, e.g. the strategy):
//
//	attr_sim_seconds                  current simulation time
//	attr_stages_completed_total       stages that finished
//	attr_retries_total                failed partition attempts
//	attr_contention_wait_seconds{res} Σ dt·(1 − rate/iso) over items
//	attr_active_items{res}            items sharing the resource now
type Live struct {
	simTime *obs.Gauge
	stages  *obs.Counter
	retries *obs.Counter
	wait    [3]*obs.Counter
	active  [3]*obs.Gauge
}

// NewLive registers the attribution series in reg. label is an optional
// Prometheus label pair like `strategy="spark"` (no braces) merged into
// every series; pass "" for none.
func NewLive(reg *obs.Registry, label string) *Live {
	plain, withRes := "", ""
	if label != "" {
		plain = "{" + label + "}"
		withRes = "," + label
	}
	l := &Live{
		simTime: reg.Gauge("attr_sim_seconds", plain, "current simulation time in seconds"),
		stages:  reg.Counter("attr_stages_completed_total", plain, "stages completed"),
		retries: reg.Counter("attr_retries_total", plain, "failed partition attempts"),
	}
	for _, res := range []sim.Resource{sim.ResNet, sim.ResCPU, sim.ResDisk} {
		lab := fmt.Sprintf("{res=%q%s}", res.String(), withRes)
		l.wait[res] = reg.Counter("attr_contention_wait_seconds", lab,
			"seconds lost to resource sharing, integrated over work items")
		l.active[res] = reg.Gauge("attr_active_items", lab,
			"work items currently sharing the resource")
	}
	return l
}

// OnEvent implements sim.Observer.
func (l *Live) OnEvent(ev sim.Event) {
	l.simTime.Set(ev.T)
	switch ev.Kind {
	case sim.EvStageCompleted:
		l.stages.Inc()
	case sim.EvTaskRetry:
		l.retries.Inc()
	}
}

// OnShares implements sim.ShareObserver.
func (l *Live) OnShares(t, dt float64, samples []sim.ShareSample) {
	var counts [3]float64
	for _, s := range samples {
		counts[s.Res]++
		if s.IsoRate <= 0 {
			continue
		}
		loss := 1 - s.Rate/s.IsoRate
		if loss > 0 {
			l.wait[s.Res].Add(dt * loss)
		}
	}
	l.simTime.Set(t + dt)
	for res, n := range counts {
		l.active[res].Set(n)
	}
}
