package attr

import (
	"fmt"
	"strings"

	"delaystage/internal/sim"
)

// maxPairLines bounds the contention-pair section; the tail is disclosed
// as an aggregate so truncation is never silent.
const maxPairLines = 15

// Render produces the human-readable bottleneck report. The output is a
// pure function of the Report value — fixed column formats, sorted
// iteration, no timestamps — so live (cmd/simulate -report) and offline
// (cmd/analyze) renderings of the same run are byte-identical.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== attribution report (alpha %.2f) ==\n", r.Alpha)
	fmt.Fprintf(&b, "makespan %.2f s   total contention %.2f s   interleaving efficiency %.3f\n",
		r.Makespan, r.TotalContention, r.Efficiency)
	for ji, msg := range r.JobErrors {
		if msg != "" {
			fmt.Fprintf(&b, "job %d FAILED: %s\n", ji, msg)
		}
	}

	if f := r.Faults; f != nil {
		b.WriteString("\n-- failures & mitigation --\n")
		fmt.Fprintf(&b, "retries %d (%.2f s of backoff)", f.Retries, f.BackoffSeconds)
		if len(f.NodeCrashes) > 0 {
			fmt.Fprintf(&b, "   node crashes %d %v", len(f.NodeCrashes), f.NodeCrashes)
		}
		b.WriteString("\n")
		if f.SpecLaunched > 0 || len(f.Blacklisted) > 0 {
			fmt.Fprintf(&b, "speculative clones %d launched, %d races decided", f.SpecLaunched, f.SpecWins)
			if len(f.Blacklisted) > 0 {
				fmt.Fprintf(&b, "   nodes blacklisted %v", f.Blacklisted)
			}
			b.WriteString("\n")
		}
	}

	b.WriteString("\n-- stage decomposition (seconds; waits are node-summed) --\n")
	b.WriteString("stage      ready   submit      end    delay    ideal   actual  net-wait  cpu-wait disk-wait    slack  flags\n")
	for i := range r.Stages {
		s := &r.Stages[i]
		flags := ""
		if s.Critical {
			flags += "crit"
		}
		if s.Prefetch {
			if flags != "" {
				flags += ","
			}
			flags += "prefetch"
		}
		if s.Retries > 0 {
			if flags != "" {
				flags += ","
			}
			flags += fmt.Sprintf("retries=%d", s.Retries)
		}
		fmt.Fprintf(&b, "%-8s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %9.2f %9.2f %9.2f %8.2f  %s\n",
			s.Ref, s.Ready, s.Submit, s.End, s.DelayWait, s.Ideal, s.Actual,
			s.Wait[sim.ResNet], s.Wait[sim.ResCPU], s.Wait[sim.ResDisk], s.Slack, flags)
	}

	b.WriteString("\n-- contention pairs (loss-weighted overlap seconds) --\n")
	if len(r.Pairs) == 0 {
		b.WriteString("none: no resource was ever shared between stages\n")
	}
	shown := r.Pairs
	if len(shown) > maxPairLines {
		shown = shown[:maxPairLines]
	}
	for _, p := range shown {
		fmt.Fprintf(&b, "%-8s x %-8s %-4s %8.2f\n", p.A, p.B, p.Res, p.Seconds)
	}
	if extra := len(r.Pairs) - len(shown); extra > 0 {
		rest := 0.0
		for _, p := range r.Pairs[len(shown):] {
			rest += p.Seconds
		}
		fmt.Fprintf(&b, "... %d more pairs (%.2f s)\n", extra, rest)
	}

	for _, path := range r.Paths {
		fmt.Fprintf(&b, "\n-- critical path job %d (%d stages, %.2f s response on a %.2f s job) --\n",
			path.Job, len(path.Stages), path.Length, path.End)
		for _, id := range path.Stages {
			s := r.Stage(StageRef{path.Job, id})
			fmt.Fprintf(&b, "S%-3d ready %8.2f  end %8.2f  resp %8.2f  wait %8.2f\n",
				id, s.Ready, s.End, s.End-s.Ready, s.TotalWait())
		}
	}

	b.WriteString("\n-- bottlenecks --\n")
	b.WriteString(r.bottlenecks())
	return b.String()
}

// bottlenecks summarizes the largest losses in prose: the worst-waiting
// critical stage, its dominant resource and co-runner, and the delay
// headroom of the slackest stages.
func (r *Report) bottlenecks() string {
	var b strings.Builder
	// Worst contention wait on the critical path — falling back to any
	// stage when no path was extracted or the path itself is clean.
	var worst *StageAttr
	for i := range r.Stages {
		s := &r.Stages[i]
		if !s.Critical {
			continue
		}
		if worst == nil || s.TotalWait() > worst.TotalWait() {
			worst = s
		}
	}
	if worst == nil || worst.TotalWait() == 0 {
		for i := range r.Stages {
			s := &r.Stages[i]
			if worst == nil || s.TotalWait() > worst.TotalWait() {
				worst = s
			}
		}
	}
	if worst == nil {
		b.WriteString("no completed stages\n")
		return b.String()
	}
	if worst.TotalWait() == 0 {
		b.WriteString("no contention anywhere: every stage ran at isolated speed\n")
		return b.String()
	}
	res := sim.ResNet
	for _, cand := range []sim.Resource{sim.ResCPU, sim.ResDisk} {
		if worst.Wait[cand] > worst.Wait[res] {
			res = cand
		}
	}
	fmt.Fprintf(&b, "%s loses %.2f s to contention (%.2f s on %s)",
		worst.Ref, worst.TotalWait(), worst.Wait[res], res)
	// Its biggest co-runner on that resource.
	for _, p := range r.Pairs {
		if p.Res != res || (p.A != worst.Ref && p.B != worst.Ref) {
			continue
		}
		other := p.A
		if other == worst.Ref {
			other = p.B
		}
		fmt.Fprintf(&b, ", mostly against %s (%.2f s)", other, p.Seconds)
		break
	}
	if worst.Critical {
		b.WriteString("; it is on the critical path, so this loss moves the makespan\n")
	} else {
		fmt.Fprintf(&b, "; it has %.2f s of slack, so the loss may be absorbed\n", worst.Slack)
	}
	// Delay headroom: the stages that tolerate the most extra delay.
	type headroom struct {
		ref   StageRef
		slack float64
	}
	var hs []headroom
	for i := range r.Stages {
		s := &r.Stages[i]
		if s.Slack > 0 {
			hs = append(hs, headroom{s.Ref, s.Slack})
		}
	}
	if len(hs) == 0 {
		b.WriteString("no stage has slack: every submission delay is load-bearing\n")
		return b.String()
	}
	// Stable order: slack descending, then ref.
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && (hs[j].slack > hs[j-1].slack ||
			(hs[j].slack == hs[j-1].slack && hs[j].ref.less(hs[j-1].ref))); j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
	if len(hs) > 3 {
		hs = hs[:3]
	}
	b.WriteString("delay headroom:")
	for _, h := range hs {
		fmt.Fprintf(&b, " %s=%.2fs", h.ref, h.slack)
	}
	b.WriteString(" (extra delay these stages absorb without moving their job's end)\n")
	return b.String()
}
