package attr

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/faults"
	"delaystage/internal/obs"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runWithStrategy simulates TriangleCount under strat and returns the
// attribution context, the collected events and the sim result.
func runWithStrategy(t *testing.T, strat scheduler.Strategy, parallelism int) (Context, []sim.Event, *sim.Result) {
	t.Helper()
	c := cluster.NewM4LargeCluster(10)
	job := workload.PaperWorkloads(c, 0.3)["TriangleCount"]
	if job == nil {
		t.Fatal("no TriangleCount workload")
	}
	p, err := strat.Plan(c, job)
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{}
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, AggShuffle: p.AggShuffle,
		Watchdog: p.Watchdog, Observer: col}, []sim.JobRun{{Job: job, Delays: p.Delays}})
	if err != nil {
		t.Fatal(err)
	}
	return Context{Cluster: c, Jobs: []*workload.Job{job}}, col.Events, res
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; if intentional, re-run with -update\ngot:\n%s", name, got)
	}
}

// TestReportGoldens pins the full bottleneck report for TriangleCount
// under each strategy. These files are the human-facing contract of the
// report format; they also document how the contention profile shifts
// between strategies.
func TestReportGoldens(t *testing.T) {
	for _, tc := range []struct {
		file  string
		strat scheduler.Strategy
	}{
		{"report_spark.golden.txt", scheduler.Spark{}},
		{"report_aggshuffle.golden.txt", scheduler.AggShuffle{}},
		{"report_fuxi.golden.txt", scheduler.Fuxi{}},
		{"report_delaystage.golden.txt", scheduler.DelayStage{}},
	} {
		t.Run(tc.file, func(t *testing.T) {
			ctx, events, _ := runWithStrategy(t, tc.strat, 1)
			rep, err := Build(ctx, events)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.file, []byte(rep.Render()))
		})
	}
}

// TestDelayStageMovesContention is the paper's thesis in one assertion:
// on TriangleCount, DelayStage's interleaved schedule must show strictly
// less total contention and a strictly higher interleaving-efficiency
// score than stock Spark — the delays move stages out of each other's
// way rather than merely reshuffling the waiting.
func TestDelayStageMovesContention(t *testing.T) {
	ctxS, evS, resS := runWithStrategy(t, scheduler.Spark{}, 1)
	repS, err := Build(ctxS, evS)
	if err != nil {
		t.Fatal(err)
	}
	ctxD, evD, resD := runWithStrategy(t, scheduler.DelayStage{}, 1)
	repD, err := Build(ctxD, evD)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spark:      makespan %.2f  contention %.2f  efficiency %.4f",
		resS.Makespan, repS.TotalContention, repS.Efficiency)
	t.Logf("delaystage: makespan %.2f  contention %.2f  efficiency %.4f",
		resD.Makespan, repD.TotalContention, repD.Efficiency)
	if repS.TotalContention <= 0 {
		t.Fatal("spark run shows no contention at all — the attribution found nothing to move")
	}
	if repD.TotalContention >= repS.TotalContention {
		t.Errorf("delaystage contention %.2f s not below spark's %.2f s",
			repD.TotalContention, repS.TotalContention)
	}
	if repD.Efficiency <= repS.Efficiency {
		t.Errorf("delaystage efficiency %.4f not above spark's %.4f",
			repD.Efficiency, repS.Efficiency)
	}
}

// TestReportDeterministicAcrossParallelism: the candidate-scan worker
// count must not leak into the report — identical bytes at 1, 4, 8.
func TestReportDeterministicAcrossParallelism(t *testing.T) {
	var base string
	for _, par := range []int{1, 4, 8} {
		ctx, events, _ := runWithStrategy(t, scheduler.DelayStage{Parallelism: par}, par)
		rep, err := Build(ctx, events)
		if err != nil {
			t.Fatal(err)
		}
		out := rep.Render()
		if par == 1 {
			base = out
			continue
		}
		if out != base {
			t.Errorf("report at parallelism %d differs from parallelism 1", par)
		}
	}
}

// TestReportDeterministicUnderFaults: with an identical fault plan, two
// runs must attribute identically — and the report must surface retries.
func TestReportDeterministicUnderFaults(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	build := func() string {
		inj, err := faults.NewInjector(faults.FaultPlan{
			Seed: 7, TaskFailureProb: 0.05,
			Crashes: []faults.NodeCrash{{Node: 1, At: 40}},
		})
		if err != nil {
			t.Fatal(err)
		}
		col := &Collector{}
		if _, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, Faults: inj,
			MaxAttempts: 8, Observer: col}, []sim.JobRun{{Job: job}}); err != nil {
			t.Fatal(err)
		}
		rep, err := Build(Context{Cluster: c, Jobs: []*workload.Job{job}}, col.Events)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	a, b := build(), build()
	if a != b {
		t.Error("fault-injected report not deterministic across identical runs")
	}
	// The injected failures must be visible in the decomposition.
	if !bytes.Contains([]byte(a), []byte("retries=")) {
		t.Error("report of a faulty run mentions no retries")
	}
}

// TestCriticalPathStructure: the extracted path is a root-to-final-stage
// chain of parent→child edges, its last stage ends the job, and every
// member is flagged Critical with the final stage at zero slack.
func TestCriticalPathStructure(t *testing.T) {
	ctx, events, res := runWithStrategy(t, scheduler.Spark{}, 1)
	rep, err := Build(ctx, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != 1 {
		t.Fatalf("got %d critical paths, want 1", len(rep.Paths))
	}
	path := rep.Paths[0]
	if len(path.Stages) == 0 {
		t.Fatal("empty critical path")
	}
	g := ctx.Jobs[0].Graph
	if len(g.Stage(path.Stages[0]).Parents) != 0 {
		t.Errorf("path starts at non-root stage %d", path.Stages[0])
	}
	for i := 1; i < len(path.Stages); i++ {
		isParent := false
		for _, p := range g.Stage(path.Stages[i]).Parents {
			if p == path.Stages[i-1] {
				isParent = true
			}
		}
		if !isParent {
			t.Errorf("path edge %d->%d is not a DAG edge", path.Stages[i-1], path.Stages[i])
		}
	}
	final := rep.Stage(StageRef{0, path.Stages[len(path.Stages)-1]})
	if final.End != res.JobEnd[0] {
		t.Errorf("path ends at %.4f, job ends at %.4f", final.End, res.JobEnd[0])
	}
	if final.Slack != 0 {
		t.Errorf("final stage has slack %.4f, want 0", final.Slack)
	}
	for _, id := range path.Stages {
		if !rep.Stage(StageRef{0, id}).Critical {
			t.Errorf("path stage %d not flagged critical", id)
		}
	}
	// Off-path stages with positive slack must exist in a DAG with
	// parallel branches; their slack bounds extra tolerable delay.
	offPath := 0
	for i := range rep.Stages {
		s := &rep.Stages[i]
		if !s.Critical && s.Slack > 0 {
			offPath++
		}
	}
	if offPath == 0 {
		t.Error("no off-path stage has positive slack in a parallel DAG")
	}
}

// TestDecompositionSanity: for every stage, ideal ≤ actual + ε (sharing
// only slows stages down) and timeline fields agree with sim.Result.
func TestDecompositionSanity(t *testing.T) {
	ctx, events, res := runWithStrategy(t, scheduler.Spark{}, 1)
	rep, err := Build(ctx, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != len(res.Timelines) {
		t.Fatalf("%d attribution rows, %d timelines", len(rep.Stages), len(res.Timelines))
	}
	for i := range rep.Stages {
		s := &rep.Stages[i]
		tl := res.Timeline(s.Ref.Job, s.Ref.Stage)
		if tl == nil {
			t.Fatalf("no timeline for %v", s.Ref)
		}
		if s.Ready != tl.Ready || s.End != tl.End {
			t.Errorf("%v: events say ready/end %.4f/%.4f, result says %.4f/%.4f",
				s.Ref, s.Ready, s.End, tl.Ready, tl.End)
		}
		if s.Ideal <= 0 {
			t.Errorf("%v: non-positive ideal %.4f", s.Ref, s.Ideal)
		}
		if s.Ideal > s.Actual+1e-6 {
			t.Errorf("%v: ideal %.4f exceeds actual %.4f — isolation can't be slower",
				s.Ref, s.Ideal, s.Actual)
		}
	}
}

// TestOfflineMatchesLive: building from a decoded JSONL log must render
// byte-identically to building from the live collector — the core
// guarantee behind cmd/analyze.
func TestOfflineMatchesLive(t *testing.T) {
	ctx, events, _ := runWithStrategy(t, scheduler.DelayStage{}, 1)
	live, err := Build(ctx, events)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logged := make([]obs.LoggedEvent, len(events))
	for i, ev := range events {
		logged[i] = obs.LoggedEvent{Run: -1, Event: ev}
	}
	if err := obs.WriteEvents(&buf, logged); err != nil {
		t.Fatal(err)
	}
	decoded, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Build(ctx, obs.EventsOfRun(decoded, -1))
	if err != nil {
		t.Fatal(err)
	}
	if live.Render() != offline.Render() {
		t.Error("offline report differs from live report")
	}
}

// TestLiveGauges: the Live observer integrates contention waits from
// share snapshots and tracks completions without perturbing the run.
func TestLiveGauges(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	job := workload.PaperWorkloads(c, 0.3)["TriangleCount"]
	reg := obs.NewRegistry()
	live := NewLive(reg, `strategy="spark"`)
	base, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, Observer: live},
		[]sim.JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != res.Makespan {
		t.Errorf("live gauges perturbed the run: %.4f vs %.4f", base.Makespan, res.Makespan)
	}
	var sb bytes.Buffer
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`attr_sim_seconds{strategy="spark"} `,
		`attr_stages_completed_total{strategy="spark"} `,
		`attr_contention_wait_seconds{res="net",strategy="spark"} `,
		`attr_active_items{res="cpu",strategy="spark"} `,
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("missing series %q in exposition:\n%s", want, out)
		}
	}
}

// TestFaultSummary: a chaos run (machine crashes, stragglers, speculation,
// blacklisting) must produce a failure section whose counters match the
// engine's own, and a fault-free run must produce none — the report only
// talks about failures when there were some.
func TestFaultSummary(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	inj, err := faults.NewInjector(faults.FaultPlan{
		Seed: 5, TaskFailureProb: 0.1, StragglerFrac: 0.3, StragglerFactor: 3,
		NodeMTTF: 500, MTTFHorizon: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{}
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, Faults: inj,
		MaxAttempts: 10, Speculation: true, BlacklistAfter: 2, Observer: col},
		[]sim.JobRun{{Job: job}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Build(Context{Cluster: c, Jobs: []*workload.Job{job}}, col.Events)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Faults
	if f == nil {
		t.Fatal("chaos run produced no fault summary")
	}
	if f.Retries != res.Retries {
		t.Errorf("retries %d, engine counted %d", f.Retries, res.Retries)
	}
	if f.SpecLaunched != res.SpecLaunched || f.SpecWins != res.SpecWins {
		t.Errorf("speculation %d/%d, engine counted %d/%d",
			f.SpecLaunched, f.SpecWins, res.SpecLaunched, res.SpecWins)
	}
	if len(f.Blacklisted) != res.Blacklisted {
		t.Errorf("blacklisted %v, engine counted %d", f.Blacklisted, res.Blacklisted)
	}
	if f.Retries > 0 && f.BackoffSeconds <= 0 {
		t.Error("retries happened but no backoff was accumulated")
	}
	if !bytes.Contains([]byte(rep.Render()), []byte("failures & mitigation")) {
		t.Error("rendered report is missing the failure section")
	}

	// Fault-free control: same workload, no injector.
	col2 := &Collector{}
	if _, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, Observer: col2},
		[]sim.JobRun{{Job: job}}); err != nil {
		t.Fatal(err)
	}
	rep2, err := Build(Context{Cluster: c, Jobs: []*workload.Job{job}}, col2.Events)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Faults != nil {
		t.Errorf("fault-free run produced a fault summary: %+v", rep2.Faults)
	}
	if bytes.Contains([]byte(rep2.Render()), []byte("failures & mitigation")) {
		t.Error("fault-free report renders a failure section")
	}
}
