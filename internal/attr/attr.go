// Package attr turns a simulation's event stream into an explanation of
// where the time went: per-stage decomposition against ideal isolated
// phase durations, a stage-pair × resource contention matrix with an
// interleaving-efficiency score, and the DAG critical path with per-stage
// slack (delay sensitivity).
//
// Everything here is computed from the typed event stream plus static
// inputs (cluster, jobs, the engine's contention coefficient) — never
// from live engine internals — so an offline pass over a JSONL event log
// (cmd/analyze) reproduces the live report of cmd/simulate byte for
// byte. The contention model mirrors the engine's sharing rule: k
// consumers of one resource each get capacity/(k·cf) with
// cf = 1+α·min(k−1,4); the fraction 1−1/(k·cf) of each overlapped second
// is counted as contention wait and attributed evenly to the co-runners.
package attr

import (
	"fmt"
	"math"
	"sort"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// contentionSaturation mirrors the engine: the per-extra-consumer penalty
// stops growing past this many extra consumers.
const contentionSaturation = 4

// Context is the static side of attribution: what the events alone cannot
// carry. It must describe the run that produced the events.
type Context struct {
	Cluster *cluster.Cluster
	// Jobs[i] is the workload of job run index i (JobRun order).
	Jobs []*workload.Job
	// Alpha is the engine's ContentionOverhead with the same sentinel
	// convention as sim.Options: 0 means the 0.22 default, negative means
	// the pure fluid model (no overhead).
	Alpha float64
}

func (c Context) alpha() float64 {
	switch {
	case c.Alpha == 0:
		return 0.22
	case c.Alpha < 0:
		return 0
	}
	return c.Alpha
}

// Collector buffers the event stream for a later Build. Attach it via
// sim.Options.Observer (compose with obs.Multi alongside exporters).
type Collector struct {
	Events []sim.Event
}

// OnEvent implements sim.Observer.
func (c *Collector) OnEvent(ev sim.Event) { c.Events = append(c.Events, ev) }

// StageRef identifies one stage of one job run.
type StageRef struct {
	Job   int
	Stage dag.StageID
}

func (r StageRef) less(o StageRef) bool {
	if r.Job != o.Job {
		return r.Job < o.Job
	}
	return r.Stage < o.Stage
}

// String renders the compact form used in reports, e.g. "j0s3".
func (r StageRef) String() string { return fmt.Sprintf("j%ds%d", r.Job, r.Stage) }

// StageAttr is the per-stage time decomposition.
type StageAttr struct {
	Ref StageRef
	// Lifecycle times (absolute seconds) reconstructed from events.
	Ready, Submit, End float64
	// DelayWait is scheduler-imposed holding: Submit − Ready.
	DelayWait float64
	// Actual is the stage's wall time once submitted: End − Submit.
	Actual float64
	// Ideal is the stage's isolated duration — the slowest node's
	// read+compute+write with nothing else on the cluster.
	Ideal float64
	// Wait[res] is the stage's contention wait on that resource: seconds
	// lost to sharing, summed over nodes (so it can exceed the stage's
	// wall time on wide clusters; divide by node count for a per-node
	// view).
	Wait [3]float64
	// Slack is how much later the stage could finish without moving its
	// job's completion time (0 on the critical path) — equivalently, how
	// much extra submission delay the stage tolerates.
	Slack float64
	// Critical marks membership in the job's critical path.
	Critical bool
	// Retries is the number of failed partition attempts absorbed.
	Retries int
	// Prefetch marks an AggShuffle prefetch submission.
	Prefetch bool
}

// TotalWait sums the per-resource contention waits.
func (s *StageAttr) TotalWait() float64 { return s.Wait[0] + s.Wait[1] + s.Wait[2] }

// PairContention is one cell of the stage-pair × resource matrix: the
// loss-weighted seconds the two stages spent contending for Res. A and B
// are ordered (A.less(B)).
type PairContention struct {
	A, B    StageRef
	Res     sim.Resource
	Seconds float64
}

// FaultSummary aggregates the run's fault and mitigation events:
// machine crashes, the retry churn they caused, and what speculation and
// blacklisting did about it. It separates failure-induced time (retry
// backoff, recomputation) from the contention waits the rest of the
// report attributes — a run can be slow because stages fought for a NIC
// or because a machine died under it, and the two call for different
// fixes.
type FaultSummary struct {
	// Retries counts failed partition attempts re-queued; BackoffSeconds
	// sums the retry backoff imposed before each re-attempt.
	Retries        int
	BackoffSeconds float64
	// NodeCrashes lists crashed node indices in event order (a node can
	// appear once only; crashes are permanent).
	NodeCrashes []int
	// SpecLaunched / SpecWins count speculation clones started and races
	// decided; Blacklisted lists nodes removed from placement.
	SpecLaunched int
	SpecWins     int
	Blacklisted  []int
}

// JobPath is one job's critical path through its DAG.
type JobPath struct {
	Job    int
	Stages []dag.StageID // root → final stage
	// End is the job's completion time; Length the path's total response
	// time (ready-to-end of every stage on it).
	End, Length float64
}

// Report is the full attribution of one run.
type Report struct {
	Alpha    float64
	Makespan float64
	// Stages sorted by (job, stage).
	Stages []StageAttr
	// Pairs sorted by descending Seconds, then (A, B, Res).
	Pairs []PairContention
	// TotalContention is Σ stage wait seconds across all resources.
	TotalContention float64
	// Efficiency is the interleaving-efficiency score 1 − wait/active in
	// [0,1]: 1 means every overlapped second was free (perfect
	// interleaving of unlike phases), lower means co-scheduled stages
	// fought for the same resource.
	Efficiency float64
	// Paths holds one critical path per completed job, job order.
	Paths []JobPath
	// JobErrors carries job_failed detail strings, job order ("" = ok).
	JobErrors []string
	// Faults is non-nil only when the event stream contains fault or
	// mitigation events; fault-free runs render no failure section.
	Faults *FaultSummary
}

// Stage returns the attribution row for ref, or nil.
func (r *Report) Stage(ref StageRef) *StageAttr {
	for i := range r.Stages {
		if r.Stages[i].Ref == ref {
			return &r.Stages[i]
		}
	}
	return nil
}

// stageTimes is the per-stage event reconstruction scratch.
type stageTimes struct {
	ready, submit, end    float64
	haveReady, haveSubmit bool
	haveEnd               bool
	prefetch              bool
	retries               int
	readDone, computeDone map[int]float64
	writeDone             map[int]float64
}

// interval is one stage's occupation of (node, res).
type interval struct {
	ref        StageRef
	node       int
	res        sim.Resource
	start, end float64
}

// Build computes the attribution report for one run's event stream.
// Events must be in emission order (as delivered to an observer or
// decoded from a JSONL log). The result depends only on (ctx, events),
// never on wall-clock state, so it is deterministic and reproducible
// offline.
func Build(ctx Context, events []sim.Event) (*Report, error) {
	if ctx.Cluster == nil {
		return nil, fmt.Errorf("attr: nil cluster")
	}
	if len(ctx.Jobs) == 0 {
		return nil, fmt.Errorf("attr: no jobs")
	}

	st := map[StageRef]*stageTimes{}
	get := func(ref StageRef) *stageTimes {
		s := st[ref]
		if s == nil {
			s = &stageTimes{
				readDone:    map[int]float64{},
				computeDone: map[int]float64{},
				writeDone:   map[int]float64{},
			}
			st[ref] = s
		}
		return s
	}
	jobErr := make([]string, len(ctx.Jobs))
	makespan := 0.0
	var fs FaultSummary
	haveFaults := false
	for _, ev := range events {
		if ev.T > makespan {
			makespan = ev.T
		}
		// Fault and mitigation events aggregate before the per-job guard:
		// crashes and blacklistings are cluster-level (Job = -1).
		switch ev.Kind {
		case sim.EvTaskRetry:
			fs.Retries++
			fs.BackoffSeconds += ev.Delay
			haveFaults = true
		case sim.EvNodeCrash:
			fs.NodeCrashes = append(fs.NodeCrashes, ev.Node)
			haveFaults = true
		case sim.EvSpecLaunched:
			fs.SpecLaunched++
			haveFaults = true
		case sim.EvSpecWin:
			fs.SpecWins++
			haveFaults = true
		case sim.EvNodeBlacklisted:
			fs.Blacklisted = append(fs.Blacklisted, ev.Node)
			haveFaults = true
		}
		if ev.Job < 0 || ev.Job >= len(ctx.Jobs) {
			continue
		}
		ref := StageRef{ev.Job, ev.Stage}
		switch ev.Kind {
		case sim.EvStageReady:
			s := get(ref)
			if !s.haveReady {
				s.ready, s.haveReady = ev.T, true
			}
		case sim.EvStageSubmitted:
			s := get(ref)
			if !s.haveSubmit {
				s.submit, s.haveSubmit = ev.T, true
				s.prefetch = ev.Prefetch
			}
		case sim.EvReadDone:
			get(ref).readDone[ev.Node] = ev.T
		case sim.EvComputeDone:
			get(ref).computeDone[ev.Node] = ev.T
		case sim.EvWriteDone:
			get(ref).writeDone[ev.Node] = ev.T
		case sim.EvStageCompleted:
			s := get(ref)
			s.end, s.haveEnd = ev.T, true
		case sim.EvTaskRetry:
			get(ref).retries++
		case sim.EvJobFailed:
			jobErr[ev.Job] = ev.Detail
			if jobErr[ev.Job] == "" {
				jobErr[ev.Job] = "failed"
			}
		}
	}

	// Per-stage rows, (job, stage) order.
	refs := make([]StageRef, 0, len(st))
	for ref := range st {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].less(refs[j]) })

	rep := &Report{Alpha: ctx.alpha(), Makespan: makespan, JobErrors: jobErr}
	if haveFaults {
		rep.Faults = &fs
	}
	rows := map[StageRef]*StageAttr{}
	var intervals []interval
	for _, ref := range refs {
		s := st[ref]
		if !s.haveSubmit || !s.haveEnd {
			continue // incomplete stage (failed/aborted job): no row
		}
		a := StageAttr{
			Ref: ref, Ready: s.ready, Submit: s.submit, End: s.end,
			DelayWait: s.submit - s.ready, Actual: s.end - s.submit,
			Ideal: idealDuration(ctx, ref), Retries: s.retries,
			Prefetch: s.prefetch,
		}
		rep.Stages = append(rep.Stages, a)
		for node, rd := range s.readDone {
			if rd > s.submit {
				intervals = append(intervals, interval{ref, node, sim.ResNet, s.submit, rd})
			}
			if cd, ok := s.computeDone[node]; ok && cd > rd {
				intervals = append(intervals, interval{ref, node, sim.ResCPU, rd, cd})
				if wd, ok := s.writeDone[node]; ok && wd > cd {
					intervals = append(intervals, interval{ref, node, sim.ResDisk, cd, wd})
				}
			}
		}
	}
	for i := range rep.Stages {
		rows[rep.Stages[i].Ref] = &rep.Stages[i]
	}

	sweepContention(rep, rows, intervals, ctx.alpha())
	criticalPaths(ctx, rep, rows)

	sort.Slice(rep.Pairs, func(i, j int) bool {
		a, b := rep.Pairs[i], rep.Pairs[j]
		if a.Seconds != b.Seconds {
			return a.Seconds > b.Seconds
		}
		if a.A != b.A {
			return a.A.less(b.A)
		}
		if a.B != b.B {
			return a.B.less(b.B)
		}
		return a.Res < b.Res
	})
	return rep, nil
}

// idealDuration is the stage's isolated wall time: on each node the
// partition reads ShuffleIn/n at the full NIC, computes it at the node's
// (task-capped) executor throughput, writes ShuffleOut/n at the full
// disk; the stage ends when the slowest node does.
func idealDuration(ctx Context, ref StageRef) float64 {
	job := ctx.Jobs[ref.Job]
	p, ok := job.Profiles[ref.Stage]
	if !ok {
		return 0
	}
	n := float64(len(ctx.Cluster.Nodes))
	perIn := float64(p.ShuffleIn) / n
	perOut := float64(p.ShuffleOut) / n
	tpn := float64(p.Tasks) / n
	worst := 0.0
	for _, node := range ctx.Cluster.Nodes {
		ex := float64(node.Executors)
		if tpn > 0 && ex > tpn {
			ex = tpn
		}
		d := perIn/node.NetBW + perIn/(ex*p.ProcRate) + perOut/node.DiskBW
		if d > worst {
			worst = d
		}
	}
	return worst
}

// sweepContention runs a sweep line over each (node, resource) and
// distributes sharing losses to stages and stage pairs.
func sweepContention(rep *Report, rows map[StageRef]*StageAttr, intervals []interval, alpha float64) {
	type lane struct {
		node int
		res  sim.Resource
	}
	byLane := map[lane][]interval{}
	totalActive := 0.0
	for _, iv := range intervals {
		byLane[lane{iv.node, iv.res}] = append(byLane[lane{iv.node, iv.res}], iv)
		totalActive += iv.end - iv.start
	}
	lanes := make([]lane, 0, len(byLane))
	for l := range byLane {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].node != lanes[j].node {
			return lanes[i].node < lanes[j].node
		}
		return lanes[i].res < lanes[j].res
	})

	type pairKey struct {
		a, b StageRef
		res  sim.Resource
	}
	pairs := map[pairKey]float64{}
	totalWait := 0.0
	for _, l := range lanes {
		ivs := byLane[l]
		// Elementary segments between sorted boundaries.
		bounds := make([]float64, 0, 2*len(ivs))
		for _, iv := range ivs {
			bounds = append(bounds, iv.start, iv.end)
		}
		sort.Float64s(bounds)
		active := make([]StageRef, 0, 8)
		for i := 0; i+1 < len(bounds); i++ {
			lo, hi := bounds[i], bounds[i+1]
			if hi <= lo {
				continue
			}
			active = active[:0]
			for _, iv := range ivs {
				if iv.start <= lo && iv.end >= hi {
					active = append(active, iv.ref)
				}
			}
			k := len(active)
			if k < 2 {
				continue
			}
			sort.Slice(active, func(x, y int) bool { return active[x].less(active[y]) })
			extra := float64(k - 1)
			if extra > contentionSaturation {
				extra = contentionSaturation
			}
			cf := 1 + alpha*extra
			loss := (hi - lo) * (1 - 1/(float64(k)*cf))
			share := loss / float64(k-1)
			for _, ref := range active {
				if row := rows[ref]; row != nil {
					row.Wait[l.res] += loss
				}
				totalWait += loss
			}
			for x := 0; x < k; x++ {
				for y := x + 1; y < k; y++ {
					// Each member loses `loss`, spread over its k−1
					// co-runners; the pair cell gets both directions.
					pairs[pairKey{active[x], active[y], l.res}] += 2 * share
				}
			}
		}
	}
	rep.TotalContention = totalWait
	if totalActive > 0 {
		rep.Efficiency = 1 - totalWait/totalActive
		if rep.Efficiency < 0 {
			rep.Efficiency = 0
		} else if rep.Efficiency > 1 {
			rep.Efficiency = 1
		}
	} else {
		rep.Efficiency = 1
	}
	for k, v := range pairs {
		rep.Pairs = append(rep.Pairs, PairContention{A: k.a, B: k.b, Res: k.res, Seconds: v})
	}
}

// criticalPaths computes per-job slack (latest finish keeping the job end
// fixed, minus actual finish) and extracts the path of zero-slack stages
// from a root to the job's final stage.
func criticalPaths(ctx Context, rep *Report, rows map[StageRef]*StageAttr) {
	for ji, job := range ctx.Jobs {
		if rep.JobErrors[ji] != "" {
			continue
		}
		g := job.Graph
		order, err := g.TopoSort()
		if err != nil {
			continue
		}
		// Job end = latest stage end.
		jobEnd := math.Inf(-1)
		complete := true
		for _, id := range g.StagesView() {
			row := rows[StageRef{ji, id}]
			if row == nil {
				complete = false
				break
			}
			if row.End > jobEnd {
				jobEnd = row.End
			}
		}
		if !complete {
			continue
		}
		// Backward pass: latest finish of s so that no child slips.
		lateFinish := map[dag.StageID]float64{}
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			lf := jobEnd
			for _, c := range g.ChildrenView(id) {
				crow := rows[StageRef{ji, c}]
				resp := crow.End - crow.Ready
				if v := lateFinish[c] - resp; v < lf {
					lf = v
				}
			}
			lateFinish[id] = lf
			row := rows[StageRef{ji, id}]
			row.Slack = lf - row.End
			if row.Slack < 1e-9 && row.Slack > -1e-9 {
				row.Slack = 0
			}
		}
		// Walk the path backwards from the stage that ends the job.
		cur, curEnd := dag.StageID(-1), math.Inf(-1)
		for _, id := range g.StagesView() {
			row := rows[StageRef{ji, id}]
			if row.End > curEnd || (row.End == curEnd && (cur < 0 || id < cur)) {
				cur, curEnd = id, row.End
			}
		}
		var path []dag.StageID
		for cur >= 0 {
			path = append(path, cur)
			rows[StageRef{ji, cur}].Critical = true
			parents := g.Stage(cur).Parents
			next, nextEnd := dag.StageID(-1), math.Inf(-1)
			for _, p := range parents {
				row := rows[StageRef{ji, p}]
				if row.End > nextEnd || (row.End == nextEnd && (next < 0 || p < next)) {
					next, nextEnd = p, row.End
				}
			}
			cur = next
		}
		// Reverse to root→final order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		length := 0.0
		for _, id := range path {
			row := rows[StageRef{ji, id}]
			length += row.End - row.Ready
		}
		rep.Paths = append(rep.Paths, JobPath{Job: ji, Stages: path, End: jobEnd, Length: length})
	}
}
