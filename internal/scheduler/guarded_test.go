package scheduler

import (
	"testing"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/faults"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func TestGuardedNames(t *testing.T) {
	if got := (GuardedDelayStage{}).Name(); got != "GuardedDelayStage" {
		t.Errorf("Name = %q", got)
	}
	if got := (GuardedDelayStage{Mode: GuardReplan}).Name(); got != "GuardedDelayStage-replan" {
		t.Errorf("replan Name = %q", got)
	}
}

// On a fault-free cluster the guard never trips: guarded DelayStage and
// plain DelayStage produce the exact same run.
func TestGuardedFaultFreeMatchesDelayStage(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	for _, mode := range []GuardMode{GuardCancel, GuardReplan} {
		for name, job := range workload.PaperWorkloads(c, 0.3) {
			plain, err := RunJob(c, job, DelayStage{}, sim.Options{TrackNode: -1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			guarded, err := RunJob(c, job, GuardedDelayStage{Mode: mode}, sim.Options{TrackNode: -1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if plain.JCT(0) != guarded.JCT(0) {
				t.Errorf("%s mode %d: guarded JCT %.4f != plain %.4f",
					name, mode, guarded.JCT(0), plain.JCT(0))
			}
		}
	}
}

// Under task failures the guard must degrade toward submit-when-ready:
// the guarded run completes and stays close to stock Spark, which is the
// always-feasible floor the paper's never-worse argument rests on.
func TestGuardedDegradesUnderFailures(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	plan := faults.FaultPlan{Seed: 13, TaskFailureProb: 0.2, StragglerFrac: 0.25, StragglerFactor: 3}
	mk := func() *faults.Injector {
		in, err := faults.NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	spark, err := RunJob(c, job, Spark{}, sim.Options{TrackNode: -1, Faults: mk()})
	if err != nil {
		t.Fatal(err)
	}
	if spark.Failed(0) != nil {
		t.Fatalf("spark run failed: %v", spark.Failed(0))
	}
	for _, mode := range []GuardMode{GuardCancel, GuardReplan} {
		g, err := RunJob(c, job, GuardedDelayStage{Mode: mode}, sim.Options{TrackNode: -1, Faults: mk()})
		if err != nil {
			t.Fatal(err)
		}
		if g.Failed(0) != nil {
			t.Fatalf("guarded mode %d failed: %v", mode, g.Failed(0))
		}
		if g.JCT(0) > spark.JCT(0)*1.05 {
			t.Errorf("guarded mode %d JCT %.1f much worse than spark %.1f",
				mode, g.JCT(0), spark.JCT(0))
		}
	}
}

// The mux watchdog must route multi-job events to the right per-job
// guard: with non-overlapping arrivals there is no cross-job contention,
// no prediction drift, and the guarded replay matches plain DelayStage
// exactly. (Overlapping jobs legitimately trip the guard — the solo-run
// prediction is stale under contention.)
func TestGuardedRunJobs(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	w := workload.PaperWorkloads(c, 0.3)
	jobs := []*workload.Job{w["LDA"], w["CosineSimilarity"]}
	arr := []float64{0, 2000}
	plain, err := RunJobs(c, jobs, arr, DelayStage{}, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := RunJobs(c, jobs, arr, GuardedDelayStage{}, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if plain.JCT(i) != guarded.JCT(i) {
			t.Errorf("job %d: guarded JCT %.4f != plain %.4f", i, guarded.JCT(i), plain.JCT(i))
		}
	}
}

// A replan with an exhausted budget must fall back to cancel — never
// hang or emit garbage.
func TestGuardReplanBudgetFallsBack(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	job := workload.PaperWorkloads(c, 0.3)["TriangleCount"]
	in, _ := faults.NewInjector(faults.FaultPlan{Seed: 21, StragglerFrac: 0.4, StragglerFactor: 5})
	g, err := RunJob(c, job, GuardedDelayStage{Mode: GuardReplan, ReplanBudget: time.Nanosecond},
		sim.Options{TrackNode: -1, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if g.Failed(0) != nil {
		t.Fatalf("run failed: %v", g.Failed(0))
	}
	spark, err := RunJob(c, job, Spark{}, sim.Options{TrackNode: -1, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if g.JCT(0) > spark.JCT(0)*1.05 {
		t.Errorf("budget-exhausted replan JCT %.1f much worse than spark %.1f", g.JCT(0), spark.JCT(0))
	}
}
