package scheduler

import (
	"fmt"
	"testing"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/faults"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func TestGuardedNames(t *testing.T) {
	if got := (GuardedDelayStage{}).Name(); got != "GuardedDelayStage" {
		t.Errorf("Name = %q", got)
	}
	if got := (GuardedDelayStage{Mode: GuardReplan}).Name(); got != "GuardedDelayStage-replan" {
		t.Errorf("replan Name = %q", got)
	}
}

// On a fault-free cluster the guard never trips: guarded DelayStage and
// plain DelayStage produce the exact same run.
func TestGuardedFaultFreeMatchesDelayStage(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	for _, mode := range []GuardMode{GuardCancel, GuardReplan} {
		for name, job := range workload.PaperWorkloads(c, 0.3) {
			plain, err := RunJob(c, job, DelayStage{}, sim.Options{TrackNode: -1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			guarded, err := RunJob(c, job, GuardedDelayStage{Mode: mode}, sim.Options{TrackNode: -1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if plain.JCT(0) != guarded.JCT(0) {
				t.Errorf("%s mode %d: guarded JCT %.4f != plain %.4f",
					name, mode, guarded.JCT(0), plain.JCT(0))
			}
		}
	}
}

// Under task failures the guard must degrade toward submit-when-ready:
// the guarded run completes and stays close to stock Spark, which is the
// always-feasible floor the paper's never-worse argument rests on.
func TestGuardedDegradesUnderFailures(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	plan := faults.FaultPlan{Seed: 13, TaskFailureProb: 0.2, StragglerFrac: 0.25, StragglerFactor: 3}
	mk := func() *faults.Injector {
		in, err := faults.NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	spark, err := RunJob(c, job, Spark{}, sim.Options{TrackNode: -1, Faults: mk()})
	if err != nil {
		t.Fatal(err)
	}
	if spark.Failed(0) != nil {
		t.Fatalf("spark run failed: %v", spark.Failed(0))
	}
	for _, mode := range []GuardMode{GuardCancel, GuardReplan} {
		g, err := RunJob(c, job, GuardedDelayStage{Mode: mode}, sim.Options{TrackNode: -1, Faults: mk()})
		if err != nil {
			t.Fatal(err)
		}
		if g.Failed(0) != nil {
			t.Fatalf("guarded mode %d failed: %v", mode, g.Failed(0))
		}
		if g.JCT(0) > spark.JCT(0)*1.05 {
			t.Errorf("guarded mode %d JCT %.1f much worse than spark %.1f",
				mode, g.JCT(0), spark.JCT(0))
		}
	}
}

// The mux watchdog must route multi-job events to the right per-job
// guard: with non-overlapping arrivals there is no cross-job contention,
// no prediction drift, and the guarded replay matches plain DelayStage
// exactly. (Overlapping jobs legitimately trip the guard — the solo-run
// prediction is stale under contention.)
func TestGuardedRunJobs(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	w := workload.PaperWorkloads(c, 0.3)
	jobs := []*workload.Job{w["LDA"], w["CosineSimilarity"]}
	arr := []float64{0, 2000}
	plain, err := RunJobs(c, jobs, arr, DelayStage{}, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := RunJobs(c, jobs, arr, GuardedDelayStage{}, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if plain.JCT(i) != guarded.JCT(i) {
			t.Errorf("job %d: guarded JCT %.4f != plain %.4f", i, guarded.JCT(i), plain.JCT(i))
		}
	}
}

// Never-worse under machine faults: with speculation and blacklisting on,
// guarded DelayStage completes every machine-failure regime — MTTF-driven
// crashes, persistent slow nodes, a rack outage, crash-plus-straggler mix —
// and stays within 5% of stock Spark under the identical fault plan and
// mitigations, the always-feasible floor of the paper's never-worse
// argument. Regime cells of one mode share a single GuardPrimer and run in
// parallel, so `go test -race` additionally checks the replan caches the
// guards share.
func TestGuardedNeverWorseUnderMachineFaults(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	clean, err := RunJob(c, job, Spark{}, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	jct := clean.JCT(0)
	// Crash regimes strike early, while the plan's delayed suffix is still
	// unsubmitted — that is where the guard has leverage and the property
	// is about strategy, not luck. A crash landing after every delayed
	// stage has been submitted leaves nothing to revise; whether the lost
	// in-flight work then costs more under the delayed schedule than under
	// submit-when-ready is down to which instants the crashes hit, and a
	// late-crash cell would assert on that coin flip. The MTTF horizon is
	// capped well below the clean JCT for the same reason: an open-ended
	// horizon lets any slowdown compound (longer run → more crash draws
	// land → blacklisting shrinks the cluster → longer run).
	regimes := []faults.FaultPlan{
		{Seed: 3, NodeMTTF: jct, MTTFHorizon: jct * 0.2},
		{Seed: 5, SlowNodeFrac: 0.25, SlowNodeFactor: 4},
		{Seed: 8, RackSize: 2, RackCrashes: []faults.RackCrash{{Rack: 1, At: jct * 0.05}}},
		{Seed: 11, SlowNodeFrac: 0.2, SlowNodeFactor: 6,
			Crashes: []faults.NodeCrash{{Node: 1, At: jct * 0.05}}},
	}
	for _, mode := range []GuardMode{GuardCancel, GuardReplan} {
		plan, err := (DelayStage{}).Plan(c, job)
		if err != nil {
			t.Fatal(err)
		}
		primer, err := GuardedDelayStage{Mode: mode}.Primer(c, job, plan)
		if err != nil {
			t.Fatal(err)
		}
		if primer == nil {
			t.Fatal("plan delays nothing to guard")
		}
		for i, fp := range regimes {
			fp, plan, primer := fp, plan, primer
			t.Run(fmt.Sprintf("mode%d_regime%d", mode, i), func(t *testing.T) {
				t.Parallel()
				mk := func() *faults.Injector {
					in, err := faults.NewInjector(fp)
					if err != nil {
						t.Fatal(err)
					}
					return in
				}
				base := sim.Options{Cluster: c, TrackNode: -1, MaxAttempts: 10,
					Speculation: true, BlacklistAfter: 2}
				sparkOpt := base
				sparkOpt.Faults = mk()
				spark, err := sim.Run(sparkOpt, []sim.JobRun{{Job: job}})
				if err != nil {
					t.Fatal(err)
				}
				if spark.Failed(0) != nil {
					t.Fatalf("spark run failed: %v", spark.Failed(0))
				}
				guardOpt := base
				guardOpt.Faults = mk()
				guardOpt.Watchdog = primer.Watchdog()
				guarded, err := sim.Run(guardOpt, []sim.JobRun{{Job: job, Delays: plan.Delays}})
				if err != nil {
					t.Fatal(err)
				}
				if guarded.Failed(0) != nil {
					t.Fatalf("guarded run failed: %v", guarded.Failed(0))
				}
				if guarded.JCT(0) > spark.JCT(0)*1.05 {
					t.Errorf("guarded JCT %.1f worse than spark %.1f",
						guarded.JCT(0), spark.JCT(0))
				}
			})
		}
	}
}

// A replan with an exhausted budget must fall back to cancel — never
// hang or emit garbage.
func TestGuardReplanBudgetFallsBack(t *testing.T) {
	c := cluster.NewM4LargeCluster(8)
	job := workload.PaperWorkloads(c, 0.3)["TriangleCount"]
	in, _ := faults.NewInjector(faults.FaultPlan{Seed: 21, StragglerFrac: 0.4, StragglerFactor: 5})
	g, err := RunJob(c, job, GuardedDelayStage{Mode: GuardReplan, ReplanBudget: time.Nanosecond},
		sim.Options{TrackNode: -1, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if g.Failed(0) != nil {
		t.Fatalf("run failed: %v", g.Failed(0))
	}
	spark, err := RunJob(c, job, Spark{}, sim.Options{TrackNode: -1, Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if g.JCT(0) > spark.JCT(0)*1.05 {
		t.Errorf("budget-exhausted replan JCT %.1f much worse than spark %.1f", g.JCT(0), spark.JCT(0))
	}
}
