package scheduler

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// GuardMode selects what a tripped guard does with the rest of the plan.
type GuardMode int

const (
	// GuardCancel zeroes every not-yet-submitted delay: the job degrades
	// to stock Spark submit-when-ready, DelayStage's always-feasible
	// fallback.
	GuardCancel GuardMode = iota
	// GuardReplan re-runs Alg. 1 on profiles rescaled by the observed /
	// predicted runtime ratio, under a wall-clock budget; if the budget is
	// spent (or nothing was observed yet) it degrades to GuardCancel.
	GuardReplan
)

// GuardedDelayStage is DelayStage with a runtime watchdog. Alg. 1's delay
// schedule is computed from profiled R_k/s_k/d_k and assumes the predicted
// per-stage completion times t̂_k hold; on a faulty cluster they do not.
// The guard compares each observed stage completion against the plan's
// prediction: on drift beyond DriftTolerance — or on any task failure —
// it stops trusting the remaining delays and either cancels them or
// replans the unsubmitted suffix (Mode). A fault-free run never trips the
// guard and is byte-identical to plain DelayStage.
type GuardedDelayStage struct {
	DelayStage
	// Mode picks the reaction to a stale plan (default GuardCancel).
	Mode GuardMode
	// DriftTolerance is the relative deviation of an observed stage
	// completion from its prediction that trips the guard. Zero means
	// 0.15.
	DriftTolerance float64
	// ReplanBudget bounds the wall-clock time a GuardReplan recomputation
	// may take (it runs inside the scheduler's event loop). Zero means
	// 100 ms.
	ReplanBudget time.Duration
}

// Name implements Strategy.
func (g GuardedDelayStage) Name() string {
	n := "Guarded" + g.DelayStage.Name()
	if g.Mode == GuardReplan {
		n += "-replan"
	}
	return n
}

// Plan implements Strategy: the inner DelayStage plan plus a watchdog
// primed with the plan's predicted per-stage timelines.
func (g GuardedDelayStage) Plan(c *cluster.Cluster, job *workload.Job) (Plan, error) {
	plan, err := g.DelayStage.Plan(c, job)
	if err != nil {
		return Plan{}, err
	}
	wd, err := g.WatchdogFor(c, job, plan)
	if err != nil {
		return Plan{}, err
	}
	plan.Watchdog = wd
	return plan, nil
}

// WatchdogFor builds a fresh guard for an existing DelayStage plan of job
// (profiles as the planner believed them). Guards are stateful — one per
// simulation run; callers replaying the same plan under many fault plans
// should build a Primer once and take a watchdog per run, which shares the
// plan's predicted timelines and the replan cache instead of recomputing
// them. Returns nil when the plan delays nothing: submit-when-ready needs
// no guarding.
func (g GuardedDelayStage) WatchdogFor(c *cluster.Cluster, job *workload.Job, plan Plan) (sim.Watchdog, error) {
	p, err := g.Primer(c, job, plan)
	if err != nil || p == nil {
		return nil, err
	}
	return p.Watchdog(), nil
}

// GuardPrimer holds everything the watchdogs of one (cluster, job, plan)
// triple can share: the plan's predicted per-stage timelines (one
// fault-free what-if simulation, previously re-run per watchdog) and a
// cache of replan results keyed by the observed slowdown — grid sweeps
// replaying one plan under many fault plans trip their guards at identical
// drift ratios, so replans repeat verbatim across cells.
type GuardPrimer struct {
	g       GuardedDelayStage
	cluster *cluster.Cluster
	job     *workload.Job
	delays  map[dag.StageID]float64
	pred    map[dag.StageID]sim.StageTimeline

	mu sync.Mutex
	// replans caches Alg. 1's recomputed delay schedule per exact
	// slowdown scale (float bits). Budget-exceeded and failed replans are
	// never cached: they depend on wall-clock, not on the scale.
	replans map[uint64]map[dag.StageID]float64
	// crashReplans caches degraded-capacity replans, keyed by the exact
	// (slowdown scale, surviving-node set) pair.
	crashReplans map[string]map[dag.StageID]float64
}

// Primer precomputes the shared watchdog state for an existing plan.
// Returns (nil, nil) when the plan delays nothing.
func (g GuardedDelayStage) Primer(c *cluster.Cluster, job *workload.Job, plan Plan) (*GuardPrimer, error) {
	if len(plan.Delays) == 0 {
		return nil, nil
	}
	if g.DriftTolerance <= 0 {
		g.DriftTolerance = 0.15
	}
	if g.ReplanBudget <= 0 {
		g.ReplanBudget = 100 * time.Millisecond
	}
	// Predict the per-stage timelines the plan promises: a fault-free
	// what-if run of this job alone under the planned delays.
	pred, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: job, Delays: plan.Delays}})
	if err != nil {
		return nil, err
	}
	p := &GuardPrimer{
		g:            g,
		cluster:      c,
		job:          job,
		delays:       make(map[dag.StageID]float64, len(plan.Delays)),
		pred:         make(map[dag.StageID]sim.StageTimeline, len(pred.Timelines)),
		replans:      map[uint64]map[dag.StageID]float64{},
		crashReplans: map[string]map[dag.StageID]float64{},
	}
	for id, d := range plan.Delays {
		p.delays[id] = d
	}
	for _, tl := range pred.Timelines {
		p.pred[tl.Stage] = tl
	}
	return p, nil
}

// Watchdog returns a fresh stateful guard backed by the primer. Safe to
// call from concurrent sweep cells: the guards share only the immutable
// predictions and the mutex-protected replan cache. The guard assumes it
// watches job index 0 (the single-job case); multi-job runners rebind it
// via bindJob.
func (p *GuardPrimer) Watchdog() sim.Watchdog {
	return &guard{
		mode:   p.g.Mode,
		tol:    p.g.DriftTolerance,
		budget: p.g.ReplanBudget,
		primer: p,
		delays: p.delays,
		pred:   p.pred,
	}
}

// cachedReplan returns the memoized replan schedule for a slowdown scale.
func (p *GuardPrimer) cachedReplan(bits uint64) (map[dag.StageID]float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.replans[bits]
	return d, ok
}

func (p *GuardPrimer) storeReplan(bits uint64, d map[dag.StageID]float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.replans[bits] = d
}

// cachedCrashReplan / storeCrashReplan memoize degraded-capacity replans
// by (scale, surviving-node set).
func (p *GuardPrimer) cachedCrashReplan(key string) (map[dag.StageID]float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.crashReplans[key]
	return d, ok
}

func (p *GuardPrimer) storeCrashReplan(key string, d map[dag.StageID]float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashReplans[key] = d
}

// guard is the runtime watchdog of one job's plan. The simulator calls it
// synchronously from the event loop, so the per-run state needs no
// locking; delays and pred are the primer's shared maps, read-only here.
type guard struct {
	mode   GuardMode
	tol    float64
	budget time.Duration
	primer *GuardPrimer
	delays map[dag.StageID]float64
	pred   map[dag.StageID]sim.StageTimeline

	// job is the run index this guard watches — needed for cluster-level
	// events (node crashes) that carry no job of their own. Zero for
	// single-job runs; RunJobs rebinds it per job via bindJob.
	job int

	done      bool
	completed map[dag.StageID]bool
	obsDur    float64 // Σ observed stage execution times (End − Start)
	predDur   float64 // Σ predicted, over the same stages
	lost      map[int]bool
}

// bindJob tells the guard which run index it watches (see jobBinder).
func (g *guard) bindJob(job int) { g.job = job }

// StageReadCompleted implements sim.Watchdog: the shuffle read is the
// first phase whose end can be checked against the plan — catching a
// stale plan here lets the guard revoke delays that would have committed
// before the first full stage completion.
func (g *guard) StageReadCompleted(ev sim.WatchEvent) []sim.DelayUpdate {
	if g.done {
		return nil
	}
	p, ok := g.pred[ev.Stage]
	if !ok {
		return nil
	}
	g.obsDur += ev.Timeline.ReadEnd - ev.Timeline.Start
	g.predDur += p.ReadEnd - p.Start
	return g.check(ev.Job, ev.Timeline.ReadEnd-ev.JobStart, p.ReadEnd, ev.Retries)
}

// StageCompleted implements sim.Watchdog: observed completion vs t̂_k.
func (g *guard) StageCompleted(ev sim.WatchEvent) []sim.DelayUpdate {
	if g.done {
		return nil
	}
	if g.completed == nil {
		g.completed = map[dag.StageID]bool{}
	}
	g.completed[ev.Stage] = true
	p, ok := g.pred[ev.Stage]
	if !ok {
		return nil
	}
	g.obsDur += ev.Timeline.End - ev.Timeline.Start
	g.predDur += p.End - p.Start
	return g.check(ev.Job, ev.Timeline.End-ev.JobStart, p.End, ev.Retries)
}

// check compares one observed milestone against its prediction and, past
// the tolerance (or on any absorbed retry), trips the guard.
func (g *guard) check(job int, obs, pred float64, retries int) []sim.DelayUpdate {
	drift := math.Abs(obs-pred) / math.Max(pred, 1e-9)
	if retries == 0 && drift <= g.tol {
		return nil
	}
	g.done = true
	if retries > 0 || g.mode == GuardCancel {
		// Failures make timing unpredictable: replanning against a plan
		// that can lose arbitrary work is guesswork, so both modes take
		// the safe exit and degrade to submit-when-ready.
		return g.cancel(job)
	}
	return g.replan(job)
}

// TaskRetried implements sim.Watchdog: any lost partition voids the plan's
// timing premises — degrade to submit-when-ready immediately rather than
// holding stages for a schedule computed for a cluster that no longer
// exists.
func (g *guard) TaskRetried(job int, _ dag.StageID, _, _ int, _ float64) []sim.DelayUpdate {
	if g.done {
		return nil
	}
	g.done = true
	return g.cancel(job)
}

// NodeCrashed implements sim.CrashWatcher: losing a machine voids the
// plan's capacity premises. GuardCancel degrades to submit-when-ready;
// GuardReplan re-runs Alg. 1 against the surviving nodes only, so the
// remaining delays fit the cluster that actually exists. Unlike the
// timing checks this is not one-shot: every further crash shrinks the
// cluster again and re-triggers the replan.
func (g *guard) NodeCrashed(node int, _ float64) []sim.DelayUpdate {
	if g.lost == nil {
		g.lost = map[int]bool{}
	}
	g.lost[node] = true
	if g.mode == GuardCancel {
		if g.done {
			return nil
		}
		g.done = true
		return g.cancel(g.job)
	}
	g.done = true
	return g.replanDegraded(g.job)
}

// replanDegraded reruns Alg. 1 on the surviving nodes (profiles rescaled
// by any observed slowdown), memoized by the exact (scale, survivors)
// pair. Losing everything — or failing to replan in budget — degrades to
// cancel.
func (g *guard) replanDegraded(job int) []sim.DelayUpdate {
	scale := 1.0
	if g.predDur > 1e-9 && g.obsDur > 1e-9 {
		scale = g.obsDur / g.predDur
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return g.cancel(job)
	}
	full := g.primer.cluster
	degraded := &cluster.Cluster{}
	var key strings.Builder
	fmt.Fprintf(&key, "%x:", math.Float64bits(scale))
	for i, n := range full.Nodes {
		if g.lost[i] {
			continue
		}
		degraded.Nodes = append(degraded.Nodes, n)
		fmt.Fprintf(&key, "%d,", i)
	}
	if len(degraded.Nodes) == 0 {
		return g.cancel(job)
	}
	newDelays, ok := g.primer.cachedCrashReplan(key.String())
	if !ok {
		var err error
		newDelays, err = g.primer.compute(degraded, scale, g.budget)
		if err != nil {
			return g.cancel(job)
		}
		g.primer.storeCrashReplan(key.String(), newDelays)
	}
	return g.reviseTo(job, newDelays)
}

// cancel zeroes every planned delay (the engine ignores updates for
// already-submitted stages).
func (g *guard) cancel(job int) []sim.DelayUpdate {
	out := make([]sim.DelayUpdate, 0, len(g.delays))
	for _, id := range sortedStageIDs(g.delays) {
		out = append(out, sim.DelayUpdate{Job: job, Stage: id, Delay: 0})
	}
	return out
}

// replan reruns Alg. 1 with profiles rescaled by the observed slowdown,
// under the wall-clock budget; the unsubmitted suffix gets the fresh
// delays. Any failure to produce a better answer in time degrades to
// cancel. Alg. 1 is deterministic in the scale, so the recomputed schedule
// is memoized in the primer: sweep cells tripping at the same drift reuse
// it instead of re-running the search. Budget misses are not cached —
// they depend on the machine's momentary load, and a transient miss must
// not poison every later run sharing the primer.
func (g *guard) replan(job int) []sim.DelayUpdate {
	scale := 1.0
	if g.predDur > 1e-9 && g.obsDur > 1e-9 {
		scale = g.obsDur / g.predDur
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return g.cancel(job)
	}
	bits := math.Float64bits(scale)
	newDelays, ok := g.primer.cachedReplan(bits)
	if !ok {
		var err error
		newDelays, err = g.primer.compute(g.primer.cluster, scale, g.budget)
		if err != nil {
			return g.cancel(job)
		}
		g.primer.storeReplan(bits, newDelays)
	}
	return g.reviseTo(job, newDelays)
}

// compute reruns Alg. 1 on the given cluster with profiles rescaled by
// the observed slowdown, under the wall-clock budget. Budget misses are
// errors (callers degrade to cancel and never cache them — they depend
// on the machine's momentary load). The budget doubles as a context
// deadline so a replan that overruns is cancelled — its parallel scan
// goroutines are stopped and joined, not abandoned.
func (p *GuardPrimer) compute(c *cluster.Cluster, scale float64, budget time.Duration) (map[dag.StageID]float64, error) {
	scaled := p.job.Clone()
	if scale != 1 {
		for _, id := range scaled.Graph.Stages() {
			pr := scaled.Profiles[id]
			pr.ProcRate /= scale
			scaled.Profiles[id] = pr
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	inner := p.g.DelayStage
	s, err := core.Compute(core.Options{
		Ctx:               ctx,
		Cluster:           c,
		Order:             inner.Order,
		Seed:              inner.Seed,
		UseModelEvaluator: inner.UseModelEvaluator,
		SlotSeconds:       inner.SlotSeconds,
		MaxCandidates:     inner.MaxCandidates,
		Parallelism:       inner.Parallelism,
		DisableEvalCache:  inner.DisableEvalCache,
		Budget:            budget,
	}, scaled)
	if err != nil {
		return nil, err
	}
	if s.BudgetExceeded {
		return nil, fmt.Errorf("scheduler: replan budget %v exceeded", budget)
	}
	return s.Delays, nil
}

// reviseTo revises every stage the old or new plan delays; completed
// stages are skipped (and submitted ones ignored by the engine anyway).
func (g *guard) reviseTo(job int, newDelays map[dag.StageID]float64) []sim.DelayUpdate {
	union := make(map[dag.StageID]float64, len(g.delays))
	for id := range g.delays {
		union[id] = newDelays[id]
	}
	for id, d := range newDelays {
		union[id] = d
	}
	out := make([]sim.DelayUpdate, 0, len(union))
	for _, id := range sortedStageIDs(union) {
		if g.completed[id] {
			continue
		}
		out = append(out, sim.DelayUpdate{Job: job, Stage: id, Delay: union[id]})
	}
	return out
}
