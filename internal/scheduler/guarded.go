package scheduler

import (
	"math"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// GuardMode selects what a tripped guard does with the rest of the plan.
type GuardMode int

const (
	// GuardCancel zeroes every not-yet-submitted delay: the job degrades
	// to stock Spark submit-when-ready, DelayStage's always-feasible
	// fallback.
	GuardCancel GuardMode = iota
	// GuardReplan re-runs Alg. 1 on profiles rescaled by the observed /
	// predicted runtime ratio, under a wall-clock budget; if the budget is
	// spent (or nothing was observed yet) it degrades to GuardCancel.
	GuardReplan
)

// GuardedDelayStage is DelayStage with a runtime watchdog. Alg. 1's delay
// schedule is computed from profiled R_k/s_k/d_k and assumes the predicted
// per-stage completion times t̂_k hold; on a faulty cluster they do not.
// The guard compares each observed stage completion against the plan's
// prediction: on drift beyond DriftTolerance — or on any task failure —
// it stops trusting the remaining delays and either cancels them or
// replans the unsubmitted suffix (Mode). A fault-free run never trips the
// guard and is byte-identical to plain DelayStage.
type GuardedDelayStage struct {
	DelayStage
	// Mode picks the reaction to a stale plan (default GuardCancel).
	Mode GuardMode
	// DriftTolerance is the relative deviation of an observed stage
	// completion from its prediction that trips the guard. Zero means
	// 0.15.
	DriftTolerance float64
	// ReplanBudget bounds the wall-clock time a GuardReplan recomputation
	// may take (it runs inside the scheduler's event loop). Zero means
	// 100 ms.
	ReplanBudget time.Duration
}

// Name implements Strategy.
func (g GuardedDelayStage) Name() string {
	n := "Guarded" + g.DelayStage.Name()
	if g.Mode == GuardReplan {
		n += "-replan"
	}
	return n
}

// Plan implements Strategy: the inner DelayStage plan plus a watchdog
// primed with the plan's predicted per-stage timelines.
func (g GuardedDelayStage) Plan(c *cluster.Cluster, job *workload.Job) (Plan, error) {
	plan, err := g.DelayStage.Plan(c, job)
	if err != nil {
		return Plan{}, err
	}
	wd, err := g.WatchdogFor(c, job, plan)
	if err != nil {
		return Plan{}, err
	}
	plan.Watchdog = wd
	return plan, nil
}

// WatchdogFor builds a fresh guard for an existing DelayStage plan of job
// (profiles as the planner believed them). Guards are stateful — one per
// simulation run; callers replaying the same plan under many fault plans
// plan once and take a new watchdog per run. Returns nil when the plan
// delays nothing: submit-when-ready needs no guarding.
func (g GuardedDelayStage) WatchdogFor(c *cluster.Cluster, job *workload.Job, plan Plan) (sim.Watchdog, error) {
	if len(plan.Delays) == 0 {
		return nil, nil
	}
	// Predict the per-stage timelines the plan promises: a fault-free
	// what-if run of this job alone under the planned delays.
	pred, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: job, Delays: plan.Delays}})
	if err != nil {
		return nil, err
	}
	gd := &guard{
		mode:    g.Mode,
		tol:     g.DriftTolerance,
		budget:  g.ReplanBudget,
		cluster: c,
		job:     job,
		inner:   g.DelayStage,
		delays:  make(map[dag.StageID]float64, len(plan.Delays)),
		pred:    make(map[dag.StageID]sim.StageTimeline, len(pred.Timelines)),
	}
	if gd.tol <= 0 {
		gd.tol = 0.15
	}
	if gd.budget <= 0 {
		gd.budget = 100 * time.Millisecond
	}
	for id, d := range plan.Delays {
		gd.delays[id] = d
	}
	for _, tl := range pred.Timelines {
		gd.pred[tl.Stage] = tl
	}
	return gd, nil
}

// guard is the runtime watchdog of one job's plan. The simulator calls it
// synchronously from the event loop, so no locking is needed.
type guard struct {
	mode    GuardMode
	tol     float64
	budget  time.Duration
	cluster *cluster.Cluster
	job     *workload.Job
	inner   DelayStage
	delays  map[dag.StageID]float64
	pred    map[dag.StageID]sim.StageTimeline

	done      bool
	completed map[dag.StageID]bool
	obsDur    float64 // Σ observed stage execution times (End − Start)
	predDur   float64 // Σ predicted, over the same stages
}

// StageReadCompleted implements sim.Watchdog: the shuffle read is the
// first phase whose end can be checked against the plan — catching a
// stale plan here lets the guard revoke delays that would have committed
// before the first full stage completion.
func (g *guard) StageReadCompleted(ev sim.WatchEvent) []sim.DelayUpdate {
	if g.done {
		return nil
	}
	p, ok := g.pred[ev.Stage]
	if !ok {
		return nil
	}
	g.obsDur += ev.Timeline.ReadEnd - ev.Timeline.Start
	g.predDur += p.ReadEnd - p.Start
	return g.check(ev.Job, ev.Timeline.ReadEnd-ev.JobStart, p.ReadEnd, ev.Retries)
}

// StageCompleted implements sim.Watchdog: observed completion vs t̂_k.
func (g *guard) StageCompleted(ev sim.WatchEvent) []sim.DelayUpdate {
	if g.done {
		return nil
	}
	if g.completed == nil {
		g.completed = map[dag.StageID]bool{}
	}
	g.completed[ev.Stage] = true
	p, ok := g.pred[ev.Stage]
	if !ok {
		return nil
	}
	g.obsDur += ev.Timeline.End - ev.Timeline.Start
	g.predDur += p.End - p.Start
	return g.check(ev.Job, ev.Timeline.End-ev.JobStart, p.End, ev.Retries)
}

// check compares one observed milestone against its prediction and, past
// the tolerance (or on any absorbed retry), trips the guard.
func (g *guard) check(job int, obs, pred float64, retries int) []sim.DelayUpdate {
	drift := math.Abs(obs-pred) / math.Max(pred, 1e-9)
	if retries == 0 && drift <= g.tol {
		return nil
	}
	g.done = true
	if retries > 0 || g.mode == GuardCancel {
		// Failures make timing unpredictable: replanning against a plan
		// that can lose arbitrary work is guesswork, so both modes take
		// the safe exit and degrade to submit-when-ready.
		return g.cancel(job)
	}
	return g.replan(job)
}

// TaskRetried implements sim.Watchdog: any lost partition voids the plan's
// timing premises — degrade to submit-when-ready immediately rather than
// holding stages for a schedule computed for a cluster that no longer
// exists.
func (g *guard) TaskRetried(job int, _ dag.StageID, _, _ int, _ float64) []sim.DelayUpdate {
	if g.done {
		return nil
	}
	g.done = true
	return g.cancel(job)
}

// cancel zeroes every planned delay (the engine ignores updates for
// already-submitted stages).
func (g *guard) cancel(job int) []sim.DelayUpdate {
	out := make([]sim.DelayUpdate, 0, len(g.delays))
	for _, id := range sortedStageIDs(g.delays) {
		out = append(out, sim.DelayUpdate{Job: job, Stage: id, Delay: 0})
	}
	return out
}

// replan reruns Alg. 1 with profiles rescaled by the observed slowdown,
// under the wall-clock budget; the unsubmitted suffix gets the fresh
// delays. Any failure to produce a better answer in time degrades to
// cancel.
func (g *guard) replan(job int) []sim.DelayUpdate {
	scale := 1.0
	if g.predDur > 1e-9 && g.obsDur > 1e-9 {
		scale = g.obsDur / g.predDur
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return g.cancel(job)
	}
	scaled := g.job.Clone()
	for _, id := range scaled.Graph.Stages() {
		p := scaled.Profiles[id]
		p.ProcRate /= scale
		scaled.Profiles[id] = p
	}
	s, err := core.Compute(core.Options{
		Cluster:           g.cluster,
		Order:             g.inner.Order,
		Seed:              g.inner.Seed,
		UseModelEvaluator: g.inner.UseModelEvaluator,
		SlotSeconds:       g.inner.SlotSeconds,
		MaxCandidates:     g.inner.MaxCandidates,
		Parallelism:       g.inner.Parallelism,
		Budget:            g.budget,
	}, scaled)
	if err != nil || s.BudgetExceeded {
		return g.cancel(job)
	}
	// Revise every stage the old or new plan delays; completed stages
	// are skipped (and submitted ones ignored by the engine anyway).
	union := make(map[dag.StageID]float64, len(g.delays))
	for id := range g.delays {
		union[id] = s.Delays[id]
	}
	for id, d := range s.Delays {
		union[id] = d
	}
	out := make([]sim.DelayUpdate, 0, len(union))
	for _, id := range sortedStageIDs(union) {
		if g.completed[id] {
			continue
		}
		out = append(out, sim.DelayUpdate{Job: job, Stage: id, Delay: union[id]})
	}
	return out
}
