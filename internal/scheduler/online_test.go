package scheduler

import (
	"math/rand"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/metrics"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func TestPlanOnlineValidation(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	j := workload.LDA(c, 0.1)
	if _, err := PlanOnline(OnlineOptions{}, []*workload.Job{j}, []float64{0}); err == nil {
		t.Error("nil cluster must error")
	}
	if _, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{j}, nil); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{j, j}, []float64{10, 5}); err == nil {
		t.Error("decreasing arrivals must error")
	}
}

func TestPlanOnlineSingleJobMatchesOffline(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.CosineSimilarity(c, 0.15)
	runs, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{j}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	// With one job, the online objective degenerates to that job's JCT:
	// the plan must improve over stock.
	stock, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: j}})
	if err != nil {
		t.Fatal(err)
	}
	planned, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, runs)
	if err != nil {
		t.Fatal(err)
	}
	if planned.JCT(0) > stock.JCT(0)*1.001 {
		t.Fatalf("online plan regressed the single job: %.1f vs %.1f", planned.JCT(0), stock.JCT(0))
	}
}

// The headline: with overlapping jobs on a shared cluster, online
// multi-job planning must beat submit-when-ready on mean JCT, and must
// never do worse.
func TestOnlineMultiJobBeatsNaive(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	rng := rand.New(rand.NewSource(4))
	var jobs []*workload.Job
	var arrivals []float64
	at := 0.0
	for i := 0; i < 5; i++ {
		jobs = append(jobs, workload.RandomJob("on", c, 6+rng.Intn(5), rng))
		arrivals = append(arrivals, at)
		at += 40 + rng.Float64()*80 // overlapping arrivals
	}
	naiveRuns := make([]sim.JobRun, len(jobs))
	for i := range jobs {
		naiveRuns[i] = sim.JobRun{Job: jobs[i], Arrival: arrivals[i]}
	}
	naive, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, FairByJob: true}, naiveRuns)
	if err != nil {
		t.Fatal(err)
	}
	online, err := RunOnline(OnlineOptions{Cluster: c, FairByJob: true, MaxCandidates: 10},
		jobs, arrivals, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	var nj, oj []float64
	for i := range jobs {
		nj = append(nj, naive.JCT(i))
		oj = append(oj, online.JCT(i))
	}
	nMean, oMean := metrics.Mean(nj), metrics.Mean(oj)
	t.Logf("mean JCT: naive %.1f → online %.1f (−%.1f%%)", nMean, oMean, 100*(nMean-oMean)/nMean)
	if oMean > nMean*1.005 {
		t.Fatalf("online planning regressed mean JCT: %.1f vs %.1f", oMean, nMean)
	}
	if oMean >= nMean {
		t.Skipf("no improvement on this seed (%.1f vs %.1f); never-worse held", oMean, nMean)
	}
}

func TestOnlineSequentialJobsNoDelays(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	// Chain jobs have no parallel stages: plans must be delay-free.
	g := workload.RandomJob("chain", c, 1, rand.New(rand.NewSource(1)))
	runs, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{g, g}, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		if len(r.Delays) != 0 {
			t.Fatalf("run %d has delays %v for a single-stage job", i, r.Delays)
		}
	}
}
