package scheduler

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/metrics"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func TestPlanOnlineValidation(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	j := workload.LDA(c, 0.1)
	if _, err := PlanOnline(OnlineOptions{}, []*workload.Job{j}, []float64{0}); err == nil {
		t.Error("nil cluster must error")
	}
	if _, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{j}, nil); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{j, j}, []float64{10, 5}); err == nil {
		t.Error("decreasing arrivals must error")
	}
}

func TestPlanOnlineSingleJobMatchesOffline(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.CosineSimilarity(c, 0.15)
	runs, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{j}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	// With one job, the online objective degenerates to that job's JCT:
	// the plan must improve over stock.
	stock, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: j}})
	if err != nil {
		t.Fatal(err)
	}
	planned, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, runs)
	if err != nil {
		t.Fatal(err)
	}
	if planned.JCT(0) > stock.JCT(0)*1.001 {
		t.Fatalf("online plan regressed the single job: %.1f vs %.1f", planned.JCT(0), stock.JCT(0))
	}
}

// The headline: with overlapping jobs on a shared cluster, online
// multi-job planning must beat submit-when-ready on mean JCT, and must
// never do worse.
func TestOnlineMultiJobBeatsNaive(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	rng := rand.New(rand.NewSource(4))
	var jobs []*workload.Job
	var arrivals []float64
	at := 0.0
	for i := 0; i < 5; i++ {
		jobs = append(jobs, workload.RandomJob("on", c, 6+rng.Intn(5), rng))
		arrivals = append(arrivals, at)
		at += 40 + rng.Float64()*80 // overlapping arrivals
	}
	naiveRuns := make([]sim.JobRun, len(jobs))
	for i := range jobs {
		naiveRuns[i] = sim.JobRun{Job: jobs[i], Arrival: arrivals[i]}
	}
	naive, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, FairByJob: true}, naiveRuns)
	if err != nil {
		t.Fatal(err)
	}
	online, err := RunOnline(OnlineOptions{Cluster: c, FairByJob: true, MaxCandidates: 10},
		jobs, arrivals, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	var nj, oj []float64
	for i := range jobs {
		nj = append(nj, naive.JCT(i))
		oj = append(oj, online.JCT(i))
	}
	nMean, oMean := metrics.Mean(nj), metrics.Mean(oj)
	t.Logf("mean JCT: naive %.1f → online %.1f (−%.1f%%)", nMean, oMean, 100*(nMean-oMean)/nMean)
	if oMean > nMean*1.005 {
		t.Fatalf("online planning regressed mean JCT: %.1f vs %.1f", oMean, nMean)
	}
	if oMean >= nMean {
		t.Skipf("no improvement on this seed (%.1f vs %.1f); never-worse held", oMean, nMean)
	}
}

func TestOnlineSequentialJobsNoDelays(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	// Chain jobs have no parallel stages: plans must be delay-free.
	g := workload.RandomJob("chain", c, 1, rand.New(rand.NewSource(1)))
	runs, err := PlanOnline(OnlineOptions{Cluster: c}, []*workload.Job{g, g}, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		if len(r.Delays) != 0 {
			t.Fatalf("run %d has delays %v for a single-stage job", i, r.Delays)
		}
	}
}

// Regression: `arrivals[i] < arrivals[i-1]` is false when either side is
// NaN, so a NaN arrival used to slip past the monotonicity check and
// poison every JCT sum. The planner must reject non-finite and negative
// arrivals with a typed *InvalidArrivalError.
func TestPlanOnlineArrivalEdgeCases(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	j := workload.LDA(c, 0.1)
	cases := []struct {
		name     string
		arrivals []float64
		wantBad  int // index reported by the typed error (-1: plain error)
	}{
		{"nan first", []float64{math.NaN()}, 0},
		{"nan after valid", []float64{0, 5, math.NaN()}, 2},
		{"nan between valid", []float64{0, math.NaN(), 10}, 1},
		{"+inf", []float64{0, math.Inf(1)}, 1},
		{"-inf", []float64{math.Inf(-1), 0}, 0},
		{"negative", []float64{-1, 0}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs := make([]*workload.Job, len(tc.arrivals))
			for i := range jobs {
				jobs[i] = j
			}
			_, err := PlanOnline(OnlineOptions{Cluster: c}, jobs, tc.arrivals)
			if err == nil {
				t.Fatalf("arrivals %v accepted", tc.arrivals)
			}
			var ae *InvalidArrivalError
			if !errors.As(err, &ae) {
				t.Fatalf("got %T (%v), want *InvalidArrivalError", err, err)
			}
			if ae.Index != tc.wantBad {
				t.Errorf("error blames arrival %d, want %d (%v)", ae.Index, tc.wantBad, err)
			}
		})
	}
}

// Table-driven sweep of the degenerate inputs PlanOnline must handle
// without planning anything.
func TestPlanOnlineDegenerateInputs(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	chain := workload.RandomJob("chain", c, 1, rand.New(rand.NewSource(1)))
	cases := []struct {
		name     string
		jobs     []*workload.Job
		arrivals []float64
		wantErr  bool
		wantRuns int
	}{
		{"zero jobs", nil, nil, false, 0},
		{"single chain job", []*workload.Job{chain}, []float64{0}, false, 1},
		{"nil job", []*workload.Job{nil}, []float64{0}, true, 0},
		{"length mismatch", []*workload.Job{chain}, []float64{0, 1}, true, 0},
		{"decreasing arrivals", []*workload.Job{chain, chain}, []float64{10, 5}, true, 0},
		{"equal arrivals ok", []*workload.Job{chain, chain}, []float64{7, 7}, false, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runs, err := PlanOnline(OnlineOptions{Cluster: c}, tc.jobs, tc.arrivals)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got none")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) != tc.wantRuns {
				t.Fatalf("got %d runs, want %d", len(runs), tc.wantRuns)
			}
			for i, r := range runs {
				// Single-stage DAGs have no parallel stages to delay.
				if len(r.Delays) != 0 {
					t.Errorf("run %d has delays %v", i, r.Delays)
				}
			}
		})
	}
}

// Regression for the unreachable "never worse" guard: best starts at
// stockTotal and only ever decreases, so the old `best > stockTotal`
// check could never fire and a no-win sweep committed an empty non-nil
// map instead of the nil that marks submit-when-ready. MaxCandidates=1
// forces a no-win sweep (the only candidate per stage is delay 0).
func TestPlanOnlineNoWinSweepCommitsNilDelays(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.CosineSimilarity(c, 0.15) // has parallel stages
	runs, err := PlanOnline(OnlineOptions{Cluster: c, MaxCandidates: 1},
		[]*workload.Job{j}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Delays != nil {
		t.Fatalf("no-win sweep committed %#v, want nil delays", runs[0].Delays)
	}
}

// The incremental planner must reproduce the batch PlanOnline exactly:
// same jobs, same arrivals, same delay vectors byte for byte.
func TestOnlinePlannerMatchesBatch(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	rng := rand.New(rand.NewSource(9))
	var jobs []*workload.Job
	var arrivals []float64
	at := 0.0
	for i := 0; i < 3; i++ {
		jobs = append(jobs, workload.RandomJob("inc", c, 5+rng.Intn(4), rng))
		arrivals = append(arrivals, at)
		at += 50
	}
	opt := OnlineOptions{Cluster: c, MaxCandidates: 8}
	batch, err := PlanOnline(opt, jobs, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewOnlinePlanner(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if _, err := p.Add(jobs[i], arrivals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(batch, p.Committed()) {
		t.Fatalf("incremental plan diverged from batch:\n%v\nvs\n%v", p.Committed(), batch)
	}
}

// Reset drops committed runs but keeps the arrival watermark: a new
// busy-period epoch cannot rewind time.
func TestOnlinePlannerResetKeepsWatermark(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	chain := workload.RandomJob("chain", c, 1, rand.New(rand.NewSource(2)))
	p, err := NewOnlinePlanner(OnlineOptions{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add(chain, 100); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if len(p.Committed()) != 0 {
		t.Fatal("Reset left committed runs")
	}
	if _, err := p.Add(chain, 50); err == nil {
		t.Fatal("arrival before the watermark accepted after Reset")
	}
	if _, err := p.Commit(chain, 120, nil); err != nil {
		t.Fatal(err)
	}
	if p.LastArrival() != 120 {
		t.Fatalf("watermark %v, want 120", p.LastArrival())
	}
}

// LastAudit must describe the decision Add just made: the search-space
// sizing, the incumbent-vs-chosen objective values, and whether the
// never-worse guard fired — the fields the scheduling service attaches to
// a job's plan span.
func TestOnlinePlannerLastAudit(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.CosineSimilarity(c, 0.15)

	p, err := NewOnlinePlanner(OnlineOptions{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	run, err := p.Add(j, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := p.LastAudit()
	if a.ParallelStages == 0 || a.Paths == 0 {
		t.Fatalf("search space not recorded: %+v", a)
	}
	if a.Evaluations < 2 {
		t.Fatalf("sweep ran but Evaluations = %d", a.Evaluations)
	}
	if a.IncumbentTotal <= 0 || a.ChosenTotal <= 0 || a.ChosenTotal > a.IncumbentTotal {
		t.Fatalf("objective values inconsistent: %+v", a)
	}
	if a.FallbackNoWin != (run.Delays == nil) {
		t.Fatalf("FallbackNoWin=%v but Delays=%v", a.FallbackNoWin, run.Delays)
	}

	// MaxCandidates=1 forces a no-win sweep: the guard fires and the
	// chosen objective collapses to the incumbent.
	p, err = NewOnlinePlanner(OnlineOptions{Cluster: c, MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add(j, 0); err != nil {
		t.Fatal(err)
	}
	a = p.LastAudit()
	if !a.FallbackNoWin || a.ChosenTotal != a.IncumbentTotal {
		t.Fatalf("no-win audit: %+v", a)
	}

	// A single-stage chain has no delay-eligible stage: the sweep never
	// runs and the audit says so.
	chain := workload.RandomJob("chain", c, 1, rand.New(rand.NewSource(2)))
	p, err = NewOnlinePlanner(OnlineOptions{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add(chain, 0); err != nil {
		t.Fatal(err)
	}
	a = p.LastAudit()
	if a.ParallelStages != 0 || a.Evaluations != 0 || a.Paths != 0 {
		t.Fatalf("trivial-DAG audit should be empty: %+v", a)
	}
}

// onlineFixture builds a deterministic overlapping-arrival job stream.
func onlineFixture(c *cluster.Cluster, n int, seed int64) ([]*workload.Job, []float64) {
	rng := rand.New(rand.NewSource(seed))
	var jobs []*workload.Job
	var arrivals []float64
	at := 0.0
	for i := 0; i < n; i++ {
		jobs = append(jobs, workload.RandomJob("inv", c, 5+rng.Intn(6), rng))
		arrivals = append(arrivals, at)
		at += 30 + rng.Float64()*60
	}
	return jobs, arrivals
}

// TestOnlinePruneByteIdentical: the analytic pruning tier must not change
// a single planning decision — every committed run's delay vector is
// byte-identical with the tier on and off — while actually eliminating
// candidate simulations.
func TestOnlinePruneByteIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	jobs, arrivals := onlineFixture(c, 6, 11)
	plan := func(disable bool) ([]sim.JobRun, PlanAudit, error) {
		p, err := NewOnlinePlanner(OnlineOptions{Cluster: c, FairByJob: true,
			MaxCandidates: 10, DisableBoundPrune: disable})
		if err != nil {
			return nil, PlanAudit{}, err
		}
		var agg PlanAudit
		for i := range jobs {
			if _, err := p.Add(jobs[i], arrivals[i]); err != nil {
				return nil, PlanAudit{}, err
			}
			a := p.LastAudit()
			agg.Evaluations += a.Evaluations
			agg.Prune.Add(a.Prune)
		}
		return p.Committed(), agg, nil
	}
	pruned, pa, err := plan(false)
	if err != nil {
		t.Fatal(err)
	}
	ref, ra, err := plan(true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !reflect.DeepEqual(pruned[i].Delays, ref[i].Delays) {
			t.Fatalf("job %d: pruned plan %v != reference %v", i, pruned[i].Delays, ref[i].Delays)
		}
	}
	if pa.Prune.Pruned == 0 {
		t.Fatal("pruning tier never fired on the overlapping stream")
	}
	if ra.Prune.Bounded != 0 || ra.Prune.Pruned != 0 {
		t.Fatalf("single-tier run reported bound activity: %+v", ra.Prune)
	}
	if pa.Evaluations >= ra.Evaluations {
		t.Fatalf("pruning saved no evaluations: %d vs %d", pa.Evaluations, ra.Evaluations)
	}
	t.Logf("evaluations %d → %d (pruned %d of %d bounded)",
		ra.Evaluations, pa.Evaluations, pa.Prune.Pruned, pa.Prune.Bounded)
}

// TestOnlineApproximatePlans: approximate mode must plan the stream
// without a single exact evaluation, and the plans must still respect the
// never-worse contract under real simulation.
func TestOnlineApproximatePlans(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	jobs, arrivals := onlineFixture(c, 5, 7)
	p, err := NewOnlinePlanner(OnlineOptions{Cluster: c, FairByJob: true,
		MaxCandidates: 10, Approximate: true})
	if err != nil {
		t.Fatal(err)
	}
	approx := 0
	for i := range jobs {
		if _, err := p.Add(jobs[i], arrivals[i]); err != nil {
			t.Fatal(err)
		}
		a := p.LastAudit()
		if a.Prune.Exact != 0 {
			t.Fatalf("job %d: approximate mode ran %d exact evaluations", i, a.Prune.Exact)
		}
		approx += a.Prune.Approx
	}
	if approx == 0 {
		t.Fatal("approximate mode never scored a candidate")
	}
	runs := p.Committed()
	naive := make([]sim.JobRun, len(runs))
	for i := range runs {
		naive[i] = sim.JobRun{Job: runs[i].Job, Arrival: runs[i].Arrival}
	}
	opt := sim.Options{Cluster: c, TrackNode: -1, FairByJob: true}
	got, err := sim.Run(opt, runs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Run(opt, naive)
	if err != nil {
		t.Fatal(err)
	}
	var gj, rj float64
	for i := range runs {
		gj += got.JCT(i)
		rj += ref.JCT(i)
	}
	// The surrogate has no never-worse simulation guard, so allow a small
	// modeling margin rather than demanding strict improvement.
	if gj > rj*1.10 {
		t.Fatalf("approximate plans regressed total JCT >10%%: %.1f vs naive %.1f", gj, rj)
	}
	t.Logf("total JCT: naive %.1f → approx-planned %.1f (%d surrogate evals)", rj, gj, approx)
}
