// Package scheduler wires the scheduling strategies the paper evaluates
// into the simulator: the stock Spark submit-when-ready policy, the
// AggShuffle pipelined-shuffle baseline (Liu et al., ICDCS'17), the
// Alibaba Fuxi scheduler (balanced placement, no stage interleaving), and
// DelayStage itself in its three path-order variants (Sec. 5.3).
package scheduler

import (
	"fmt"
	"sort"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Plan is a strategy's decision for one job: submission delays plus
// whether the simulator should pipeline shuffles.
type Plan struct {
	Delays     map[dag.StageID]float64
	AggShuffle bool
	// Schedule carries DelayStage's full Alg. 1 output when the strategy
	// is a DelayStage variant (nil otherwise).
	Schedule *core.Schedule
	// Watchdog is the runtime plan monitor a guarded strategy attaches
	// (nil for open-loop strategies). RunJob / RunJobs hand it to the
	// simulator.
	Watchdog sim.Watchdog
}

// Strategy decides when stages are submitted.
type Strategy interface {
	// Name is the label used in tables and figures.
	Name() string
	// Plan computes the job's scheduling plan on the given cluster.
	Plan(c *cluster.Cluster, job *workload.Job) (Plan, error)
}

// Spark is the stock Spark stage scheduler: a stage is submitted the
// moment it has acquired all its shuffle input (all parents complete).
type Spark struct{}

// Name implements Strategy.
func (Spark) Name() string { return "Spark" }

// Plan implements Strategy: no delays, no pipelining.
func (Spark) Plan(*cluster.Cluster, *workload.Job) (Plan, error) { return Plan{}, nil }

// AggShuffle proactively transfers map outputs to child stages as they are
// produced, pipelining the shuffle over the network. Its benefit depends
// on task-duration heterogeneity within the parent stage.
type AggShuffle struct{}

// Name implements Strategy.
func (AggShuffle) Name() string { return "AggShuffle" }

// Plan implements Strategy: immediate submission with pipelined shuffle.
func (AggShuffle) Plan(*cluster.Cluster, *workload.Job) (Plan, error) {
	return Plan{AggShuffle: true}, nil
}

// Fuxi models the Alibaba Fuxi scheduler used as the baseline of the
// trace-driven simulation (Sec. 5.3): tasks are spread uniformly across
// workers to balance load, but stages are still submitted the moment they
// are ready — no stage-level interleaving. In the symmetric fluid model,
// balanced placement is the default, so Fuxi's plan coincides with stock
// Spark's; the type exists so replays and tables carry the right label.
type Fuxi struct{}

// Name implements Strategy.
func (Fuxi) Name() string { return "Fuxi" }

// Plan implements Strategy.
func (Fuxi) Plan(*cluster.Cluster, *workload.Job) (Plan, error) { return Plan{}, nil }

// DelayStage runs Alg. 1 to compute submission delays for parallel stages.
type DelayStage struct {
	// Order is the execution-path scheduling sequence (default Descending).
	Order core.Order
	// Seed drives the Random order.
	Seed int64
	// UseModelEvaluator selects the fast closed-form candidate evaluator
	// (used for trace-scale jobs).
	UseModelEvaluator bool
	// SlotSeconds / MaxCandidates tune the delay scan (0 = defaults).
	SlotSeconds   float64
	MaxCandidates int
	// Parallelism evaluates delay candidates on that many goroutines
	// (0/1 = sequential). The plan is bit-identical at any setting.
	Parallelism int
	// DisableEvalCache turns off the what-if memo cache and snapshot
	// forking in the sim evaluator (see core.Options.DisableEvalCache);
	// plans are identical either way.
	DisableEvalCache bool
	// Approximate plans from the analytic bound surrogate only — no
	// simulation or model evaluation per candidate (see
	// core.Options.Approximate). Overrides UseModelEvaluator.
	Approximate bool
}

// Name implements Strategy.
func (d DelayStage) Name() string {
	if d.Order == core.Descending {
		return "DelayStage"
	}
	return "DelayStage-" + d.Order.String()
}

// Plan implements Strategy: it runs the delay-time calculator.
func (d DelayStage) Plan(c *cluster.Cluster, job *workload.Job) (Plan, error) {
	s, err := core.Compute(core.Options{
		Cluster:           c,
		Order:             d.Order,
		Seed:              d.Seed,
		UseModelEvaluator: d.UseModelEvaluator,
		SlotSeconds:       d.SlotSeconds,
		MaxCandidates:     d.MaxCandidates,
		Parallelism:       d.Parallelism,
		DisableEvalCache:  d.DisableEvalCache,
		Approximate:       d.Approximate,
	}, job)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Delays: s.Delays, Schedule: s}, nil
}

// RunJob plans and simulates one job under a strategy.
func RunJob(c *cluster.Cluster, job *workload.Job, s Strategy, opt sim.Options) (*sim.Result, error) {
	plan, err := s.Plan(c, job)
	if err != nil {
		return nil, fmt.Errorf("scheduler %s: %w", s.Name(), err)
	}
	opt.Cluster = c
	opt.AggShuffle = plan.AggShuffle
	if plan.Watchdog != nil {
		opt.Watchdog = plan.Watchdog
	}
	return sim.Run(opt, []sim.JobRun{{Job: job, Delays: plan.Delays}})
}

// RunJobs plans each job independently and simulates them together with
// the given arrival times — the multi-job replay mode of Sec. 5.3.
func RunJobs(c *cluster.Cluster, jobs []*workload.Job, arrivals []float64, s Strategy, opt sim.Options) (*sim.Result, error) {
	if len(jobs) != len(arrivals) {
		return nil, fmt.Errorf("scheduler: %d jobs but %d arrivals", len(jobs), len(arrivals))
	}
	runs := make([]sim.JobRun, len(jobs))
	guards := map[int]sim.Watchdog{}
	for i, j := range jobs {
		plan, err := s.Plan(c, j)
		if err != nil {
			return nil, fmt.Errorf("scheduler %s job %d: %w", s.Name(), i, err)
		}
		if plan.AggShuffle {
			opt.AggShuffle = true
		}
		if plan.Watchdog != nil {
			if b, ok := plan.Watchdog.(jobBinder); ok {
				b.bindJob(i)
			}
			guards[i] = plan.Watchdog
		}
		runs[i] = sim.JobRun{Job: j, Arrival: arrivals[i], Delays: plan.Delays}
	}
	if len(guards) > 0 {
		opt.Watchdog = muxWatchdog(guards)
	}
	opt.Cluster = c
	return sim.Run(opt, runs)
}

// muxWatchdog fans simulator events out to per-job watchdogs (each
// strategy Plan call produced one for its own job).
type muxWatchdog map[int]sim.Watchdog

// StageReadCompleted implements sim.Watchdog.
func (m muxWatchdog) StageReadCompleted(ev sim.WatchEvent) []sim.DelayUpdate {
	if w := m[ev.Job]; w != nil {
		return w.StageReadCompleted(ev)
	}
	return nil
}

// StageCompleted implements sim.Watchdog.
func (m muxWatchdog) StageCompleted(ev sim.WatchEvent) []sim.DelayUpdate {
	if w := m[ev.Job]; w != nil {
		return w.StageCompleted(ev)
	}
	return nil
}

// TaskRetried implements sim.Watchdog.
func (m muxWatchdog) TaskRetried(job int, stage dag.StageID, node, attempt int, now float64) []sim.DelayUpdate {
	if w := m[job]; w != nil {
		return w.TaskRetried(job, stage, node, attempt, now)
	}
	return nil
}

// NodeCrashed implements sim.CrashWatcher: a machine loss is cluster-wide,
// so it fans out to every per-job guard that watches for crashes, in job
// order for deterministic update emission.
func (m muxWatchdog) NodeCrashed(node int, now float64) []sim.DelayUpdate {
	jobs := make([]int, 0, len(m))
	for j := range m {
		jobs = append(jobs, j)
	}
	sort.Ints(jobs)
	var out []sim.DelayUpdate
	for _, j := range jobs {
		if cw, ok := m[j].(sim.CrashWatcher); ok {
			out = append(out, cw.NodeCrashed(node, now)...)
		}
	}
	return out
}

// jobBinder lets multi-job runners tell a per-job watchdog which run index
// it watches — needed for cluster-level events that carry no job.
type jobBinder interface{ bindJob(job int) }

// sortedStageIDs returns a delay map's keys in ascending order, for
// deterministic update emission.
func sortedStageIDs(m map[dag.StageID]float64) []dag.StageID {
	ids := make([]dag.StageID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
