package scheduler

import (
	"fmt"
	"math"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// OnlineOptions configures the multi-job online DelayStage planner — the
// Sec. 6 direction "our work can be easily extended to reducing the
// average job completion time in the multi-job environment", implemented.
//
// Jobs arrive over time on a shared cluster. When a job arrives, its
// delays are chosen against the jobs already committed (whose schedules
// are not revisited — the decision is online), minimizing the *sum of
// completion times* over every job in the system rather than the
// newcomer's alone: a delay that speeds the newcomer by starving a
// running job is rejected by the objective.
type OnlineOptions struct {
	Cluster *cluster.Cluster
	// Order is the execution-path order used for each job (default
	// Descending).
	Order core.Order
	// SlotSeconds / MaxCandidates mirror core.Options (0 = 1 s / 16).
	SlotSeconds   float64
	MaxCandidates int
	// FairByJob carries through to the evaluation and final simulation.
	FairByJob bool
	// DisableBoundPrune turns off the analytic candidate-pruning tier so
	// every candidate is answered by a full multi-job simulation — the
	// single-tier reference the invariance tests compare against. Plans
	// are byte-identical either way: a pruned candidate's objective lower
	// bound already met the running best, so its exact evaluation provably
	// fails the improve-by-tolerance test.
	DisableBoundPrune bool
	// Approximate scores every candidate from the analytic bound
	// surrogate instead of simulating the committed runs: the objective
	// becomes Σ committed-job lower bounds + the newcomer's delay-aware
	// makespan estimate. No simulation runs at all during planning —
	// the massive-scale mode behind service ApproximatePlanning.
	// IncumbentTotal/ChosenTotal become estimates, not simulated sums.
	Approximate bool
}

// InvalidArrivalError reports an arrival time the planner cannot accept:
// NaN, ±Inf or negative. NaN is the treacherous case — it slips past a
// plain monotonicity check (`a[i] < a[i-1]` is false for NaN) and then
// poisons every JCT sum downstream — so arrivals are vetted explicitly
// and the rejection is typed for callers (the scheduling service maps it
// to a 400 response).
type InvalidArrivalError struct {
	// Index is the position in the submitted arrivals (0 for single
	// submissions).
	Index int
	Value float64
}

// Error implements error.
func (e *InvalidArrivalError) Error() string {
	return fmt.Sprintf("scheduler: arrival %d is %v (must be finite and ≥ 0)", e.Index, e.Value)
}

// checkArrival vets one arrival value; index only shapes the message.
func checkArrival(index int, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return &InvalidArrivalError{Index: index, Value: v}
	}
	return nil
}

// CheckArrival vets a single arrival value the way PlanOnline does —
// exported so the scheduling service's submit handler can reject NaN/Inf
// before admission instead of discovering it deep in the planner.
func CheckArrival(v float64) error { return checkArrival(0, v) }

// PlanAudit records how the most recent Add reached its decision — the
// per-decision visibility the scheduling service attaches to a job's plan
// span (GET /v1/trace/{id}). Valid after Add returns nil; Commit (cache
// hits, queue revisions) does not touch it.
type PlanAudit struct {
	// Evaluations counts full objective evaluations this Add performed,
	// the submit-when-ready incumbent included. Zero for trivial DAGs
	// (no delay-eligible stage: the sweep never ran).
	Evaluations int
	// ParallelStages and Paths size the Alg. 1 search space: how many
	// stages were delay-eligible, over how many execution paths.
	ParallelStages int
	Paths          int
	// IncumbentTotal is the objective (Σ JCT over committed jobs plus the
	// newcomer) with nil delays — the submit-when-ready incumbent.
	// ChosenTotal is the committed plan's objective value; it equals
	// IncumbentTotal whenever FallbackNoWin fired.
	IncumbentTotal float64
	ChosenTotal    float64
	// FallbackNoWin reports that the never-worse guard discarded the
	// sweep's delays: no candidate beat the incumbent beyond tolerance,
	// so the job was committed submit-when-ready.
	FallbackNoWin bool
	// Prune breaks the two-tier candidate scan down: Bounded candidates
	// received an analytic objective lower bound, Pruned ones were
	// eliminated by it before any simulation, and the rest were answered
	// exactly (Exact) or by the bound surrogate (Approx, approximate
	// mode). Evaluations == Exact + Approx.
	Prune core.PruneStats
}

// OnlinePlanner plans continuously arriving jobs one at a time against
// the runs already committed — the incremental core of PlanOnline,
// exposed so a long-running scheduler daemon (internal/service) can admit
// and plan jobs as they arrive instead of replanning the whole batch.
//
// Not safe for concurrent use; callers serialize (the service's planning
// stage holds its own lock).
type OnlinePlanner struct {
	opt    OnlineOptions
	coarse *cluster.Cluster
	model  *perfmodel.Model
	audit  PlanAudit

	committed []sim.JobRun
	// scratch is reused across the thousands of candidate evaluations one
	// planning pass makes (sim.Run does not retain it): committed only
	// grows when a job is sealed, so per candidate only the last element
	// changes.
	scratch []sim.JobRun
	// last is the highest arrival committed so far; Add and Commit
	// enforce non-decreasing submission order. It survives Reset so a new
	// busy-period epoch cannot rewind time.
	last float64
	// lbSum is Σ analytic JCT lower bounds over the committed runs — the
	// constant the pruning tier charges for the already-committed jobs
	// regardless of how a newcomer's delays interleave with them (a job
	// can never beat its own solo critical path or aggregate work, and
	// contention only slows it). Maintained incrementally on Add/Commit,
	// cleared by Reset.
	lbSum float64
}

// NewOnlinePlanner validates the configuration and returns an empty
// planner.
func NewOnlinePlanner(opt OnlineOptions) (*OnlinePlanner, error) {
	if opt.Cluster == nil {
		return nil, fmt.Errorf("scheduler: nil cluster")
	}
	if opt.SlotSeconds <= 0 {
		opt.SlotSeconds = 1
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 16
	}
	coarse := sim.Coarsen(opt.Cluster)
	model, err := perfmodel.New(coarse)
	if err != nil {
		return nil, err
	}
	return &OnlinePlanner{opt: opt, coarse: coarse, model: model}, nil
}

// Committed returns the runs planned so far, in arrival order, ready for
// sim.Run. The slice is a view: it grows on the next Add/Commit.
func (p *OnlinePlanner) Committed() []sim.JobRun { return p.committed }

// LastArrival returns the highest arrival committed so far.
func (p *OnlinePlanner) LastArrival() float64 { return p.last }

// LastAudit returns the decision audit of the most recent successful Add.
func (p *OnlinePlanner) LastAudit() PlanAudit { return p.audit }

// Reset drops every committed run while keeping the arrival watermark.
// Only valid when the caller knows the cluster is idle (every committed
// job has finished): completed jobs' JCTs are constants of the objective
// and jobs that no longer overlap any live run cannot perturb a
// newcomer's evaluation, so dropping them bounds planning cost by the
// busy-period length instead of the daemon's lifetime.
func (p *OnlinePlanner) Reset() {
	p.committed = p.committed[:0]
	p.scratch = p.scratch[:0]
	p.lbSum = 0
}

// Commit appends an externally planned run — a plan-template cache hit or
// a queue-revision decision — without running the delay sweep, so later
// arrivals are planned against it.
func (p *OnlinePlanner) Commit(job *workload.Job, arrival float64, delays map[dag.StageID]float64) (sim.JobRun, error) {
	if err := p.admit(job, arrival); err != nil {
		return sim.JobRun{}, err
	}
	run := sim.JobRun{Job: job, Arrival: arrival, Delays: delays}
	p.committed = append(p.committed, run)
	p.commitLB(run)
	p.last = arrival
	return run, nil
}

// commitLB accumulates the newly committed run's analytic JCT lower bound
// into lbSum. Validation already passed in admit, so construction cannot
// fail; a zero contribution on the impossible path keeps lbSum sound (it
// may only ever under-charge).
func (p *OnlinePlanner) commitLB(run sim.JobRun) {
	b, err := perfmodel.NewBoundEvaluator(p.coarse, run.Job, perfmodel.BoundConfig{IncludeWorkBound: true})
	if err != nil {
		return
	}
	p.lbSum += b.Lower(run.Delays)
}

// admit vets one (job, arrival) pair against the planner's invariants.
func (p *OnlinePlanner) admit(job *workload.Job, arrival float64) error {
	if job == nil {
		return fmt.Errorf("scheduler: job %d is nil", len(p.committed))
	}
	if err := job.Validate(); err != nil {
		return fmt.Errorf("scheduler: job %d: %w", len(p.committed), err)
	}
	if err := checkArrival(len(p.committed), arrival); err != nil {
		return err
	}
	if arrival < p.last {
		return fmt.Errorf("scheduler: arrivals must be non-decreasing (%v after %v)", arrival, p.last)
	}
	return nil
}

// evalTotal simulates the committed runs plus the candidate and returns
// Σ (end − arrival) over all jobs.
func (p *OnlinePlanner) evalTotal(candidate sim.JobRun) (float64, error) {
	p.scratch = append(append(p.scratch[:0], p.committed...), candidate)
	runs := p.scratch
	res, err := sim.Run(sim.Options{Cluster: p.coarse, TrackNode: -1, FairByJob: p.opt.FairByJob}, runs)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := range runs {
		total += res.JCT(i)
	}
	return total, nil
}

// score answers one candidate configuration's objective value and counts
// the evaluation: a full multi-job simulation normally, or the analytic
// surrogate (committed lower bounds + the newcomer's delay-aware
// estimate) in approximate mode.
func (p *OnlinePlanner) score(candidate sim.JobRun, bev *perfmodel.BoundEvaluator) (float64, error) {
	p.audit.Evaluations++
	if p.opt.Approximate {
		p.audit.Prune.Approx++
		return p.lbSum + bev.Bounds(candidate.Delays).Estimate, nil
	}
	p.audit.Prune.Exact++
	return p.evalTotal(candidate)
}

// Add plans one job against the committed runs, commits it and returns
// the planned run. The delay sweep minimizes the sum of completion times
// over every committed job plus the newcomer.
func (p *OnlinePlanner) Add(job *workload.Job, arrival float64) (sim.JobRun, error) {
	if err := p.admit(job, arrival); err != nil {
		return sim.JobRun{}, err
	}
	reach, err := dag.NewReachability(job.Graph)
	if err != nil {
		return sim.JobRun{}, err
	}
	solo := p.model.SoloTimes(job)
	weight := func(id dag.StageID) float64 { return solo[id] }
	k := dag.ParallelStages(job.Graph, reach)
	run := sim.JobRun{Job: job, Arrival: arrival}
	p.audit = PlanAudit{ParallelStages: len(k)}
	if len(k) == 0 {
		p.committed = append(p.committed, run)
		p.commitLB(run)
		p.last = arrival
		return run, nil
	}
	// The analytic tier: bounds the newcomer's share of the objective so
	// hopeless candidates never reach a simulation (and, in approximate
	// mode, scores candidates outright).
	var bev *perfmodel.BoundEvaluator
	if !p.opt.DisableBoundPrune || p.opt.Approximate {
		bev, err = perfmodel.NewBoundEvaluator(p.coarse, job, perfmodel.BoundConfig{IncludeWorkBound: true})
		if err != nil {
			return sim.JobRun{}, err
		}
	}
	paths := dag.ExecutionPaths(job.Graph, reach, weight)
	switch p.opt.Order {
	case core.Ascending:
		dag.SortPathsAscending(paths, weight)
	default:
		dag.SortPathsDescending(paths, weight)
	}

	delays := map[dag.StageID]float64{}
	run.Delays = delays
	stockTotal, err := p.score(run, bev)
	if err != nil {
		return sim.JobRun{}, err
	}
	p.audit.Paths = len(paths)
	best := stockTotal
	soloSum := 0.0
	for _, id := range k {
		soloSum += solo[id]
	}
	// Two sweeps: greedy then one refinement (staleness correction).
	for pass := 0; pass < 2; pass++ {
		seen := map[dag.StageID]bool{}
		for _, path := range paths {
			for _, kid := range path.Stages {
				if seen[kid] {
					continue
				}
				seen[kid] = true
				upper := math.Max(0, soloSum-solo[kid])
				n := int(upper/p.opt.SlotSeconds) + 1
				if n > p.opt.MaxCandidates {
					n = p.opt.MaxCandidates
				}
				step := upper
				if n > 1 {
					step = upper / float64(n-1)
				}
				bestDelay := delays[kid]
				// One ScanLower prep per stage makes the per-candidate
				// objective bound O(1): lbSum charges the committed jobs,
				// max(rest, through+x) charges the newcomer. Unlike
				// core.Compute's parallel scan, Add is strictly sequential,
				// so pruning against the *running* best is byte-identity
				// safe: a candidate with lb ≥ best could never pass the
				// improve-by-tolerance test when evaluated in order.
				through, rest, prunable := 0.0, 0.0, false
				if bev != nil && n > 1 {
					through, rest, prunable = bev.ScanLower(kid, delays)
				}
				for c := 0; c < n; c++ {
					x := float64(c) * step
					if prunable {
						p.audit.Prune.Bounded++
						lb := p.lbSum + math.Max(rest, through+x)
						if lb-1e-9*(1+lb) >= best-1e-9 {
							p.audit.Prune.Pruned++
							continue
						}
					}
					delays[kid] = x
					tot, err := p.score(run, bev)
					if err != nil {
						return sim.JobRun{}, err
					}
					if tot < best-1e-9 {
						best = tot
						bestDelay = x
					}
				}
				if bestDelay == 0 {
					delete(delays, kid)
				} else {
					delays[kid] = bestDelay
				}
			}
		}
	}
	// Never worse than submitting everything immediately: when the sweep
	// beat stock by less than tolerance (or not at all), commit nil delays
	// so the run is indistinguishable from submit-when-ready. (best starts
	// at stockTotal and only decreases, so the former `best > stockTotal`
	// form of this guard could never fire.)
	if len(delays) == 0 || best >= stockTotal-1e-9 {
		run.Delays = nil
	}
	p.audit.IncumbentTotal = stockTotal
	p.audit.ChosenTotal = best
	if run.Delays == nil {
		p.audit.FallbackNoWin = true
		p.audit.ChosenTotal = stockTotal
	}
	p.committed = append(p.committed, run)
	p.commitLB(run)
	p.last = arrival
	return run, nil
}

// PlanOnline plans every job in arrival order and returns the runs ready
// for sim.Run. len(jobs) must equal len(arrivals); arrivals must be
// finite, non-negative (*InvalidArrivalError otherwise) and non-decreasing
// (sort first if needed).
func PlanOnline(opt OnlineOptions, jobs []*workload.Job, arrivals []float64) ([]sim.JobRun, error) {
	if len(jobs) != len(arrivals) {
		return nil, fmt.Errorf("scheduler: %d jobs but %d arrivals", len(jobs), len(arrivals))
	}
	p, err := NewOnlinePlanner(opt)
	if err != nil {
		return nil, err
	}
	for i, job := range jobs {
		if _, err := p.Add(job, arrivals[i]); err != nil {
			return nil, err
		}
	}
	return p.Committed(), nil
}

// RunOnline plans online and simulates the outcome in one call.
func RunOnline(opt OnlineOptions, jobs []*workload.Job, arrivals []float64, simOpt sim.Options) (*sim.Result, error) {
	runs, err := PlanOnline(opt, jobs, arrivals)
	if err != nil {
		return nil, err
	}
	simOpt.Cluster = opt.Cluster
	simOpt.FairByJob = opt.FairByJob
	return sim.Run(simOpt, runs)
}
