package scheduler

import (
	"fmt"
	"math"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// OnlineOptions configures the multi-job online DelayStage planner — the
// Sec. 6 direction "our work can be easily extended to reducing the
// average job completion time in the multi-job environment", implemented.
//
// Jobs arrive over time on a shared cluster. When a job arrives, its
// delays are chosen against the jobs already committed (whose schedules
// are not revisited — the decision is online), minimizing the *sum of
// completion times* over every job in the system rather than the
// newcomer's alone: a delay that speeds the newcomer by starving a
// running job is rejected by the objective.
type OnlineOptions struct {
	Cluster *cluster.Cluster
	// Order is the execution-path order used for each job (default
	// Descending).
	Order core.Order
	// SlotSeconds / MaxCandidates mirror core.Options (0 = 1 s / 16).
	SlotSeconds   float64
	MaxCandidates int
	// FairByJob carries through to the evaluation and final simulation.
	FairByJob bool
}

// InvalidArrivalError reports an arrival time the planner cannot accept:
// NaN, ±Inf or negative. NaN is the treacherous case — it slips past a
// plain monotonicity check (`a[i] < a[i-1]` is false for NaN) and then
// poisons every JCT sum downstream — so arrivals are vetted explicitly
// and the rejection is typed for callers (the scheduling service maps it
// to a 400 response).
type InvalidArrivalError struct {
	// Index is the position in the submitted arrivals (0 for single
	// submissions).
	Index int
	Value float64
}

// Error implements error.
func (e *InvalidArrivalError) Error() string {
	return fmt.Sprintf("scheduler: arrival %d is %v (must be finite and ≥ 0)", e.Index, e.Value)
}

// checkArrival vets one arrival value; index only shapes the message.
func checkArrival(index int, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return &InvalidArrivalError{Index: index, Value: v}
	}
	return nil
}

// CheckArrival vets a single arrival value the way PlanOnline does —
// exported so the scheduling service's submit handler can reject NaN/Inf
// before admission instead of discovering it deep in the planner.
func CheckArrival(v float64) error { return checkArrival(0, v) }

// PlanAudit records how the most recent Add reached its decision — the
// per-decision visibility the scheduling service attaches to a job's plan
// span (GET /v1/trace/{id}). Valid after Add returns nil; Commit (cache
// hits, queue revisions) does not touch it.
type PlanAudit struct {
	// Evaluations counts full objective evaluations this Add performed,
	// the submit-when-ready incumbent included. Zero for trivial DAGs
	// (no delay-eligible stage: the sweep never ran).
	Evaluations int
	// ParallelStages and Paths size the Alg. 1 search space: how many
	// stages were delay-eligible, over how many execution paths.
	ParallelStages int
	Paths          int
	// IncumbentTotal is the objective (Σ JCT over committed jobs plus the
	// newcomer) with nil delays — the submit-when-ready incumbent.
	// ChosenTotal is the committed plan's objective value; it equals
	// IncumbentTotal whenever FallbackNoWin fired.
	IncumbentTotal float64
	ChosenTotal    float64
	// FallbackNoWin reports that the never-worse guard discarded the
	// sweep's delays: no candidate beat the incumbent beyond tolerance,
	// so the job was committed submit-when-ready.
	FallbackNoWin bool
}

// OnlinePlanner plans continuously arriving jobs one at a time against
// the runs already committed — the incremental core of PlanOnline,
// exposed so a long-running scheduler daemon (internal/service) can admit
// and plan jobs as they arrive instead of replanning the whole batch.
//
// Not safe for concurrent use; callers serialize (the service's planning
// stage holds its own lock).
type OnlinePlanner struct {
	opt    OnlineOptions
	coarse *cluster.Cluster
	model  *perfmodel.Model
	audit  PlanAudit

	committed []sim.JobRun
	// scratch is reused across the thousands of candidate evaluations one
	// planning pass makes (sim.Run does not retain it): committed only
	// grows when a job is sealed, so per candidate only the last element
	// changes.
	scratch []sim.JobRun
	// last is the highest arrival committed so far; Add and Commit
	// enforce non-decreasing submission order. It survives Reset so a new
	// busy-period epoch cannot rewind time.
	last float64
}

// NewOnlinePlanner validates the configuration and returns an empty
// planner.
func NewOnlinePlanner(opt OnlineOptions) (*OnlinePlanner, error) {
	if opt.Cluster == nil {
		return nil, fmt.Errorf("scheduler: nil cluster")
	}
	if opt.SlotSeconds <= 0 {
		opt.SlotSeconds = 1
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 16
	}
	coarse := sim.Coarsen(opt.Cluster)
	model, err := perfmodel.New(coarse)
	if err != nil {
		return nil, err
	}
	return &OnlinePlanner{opt: opt, coarse: coarse, model: model}, nil
}

// Committed returns the runs planned so far, in arrival order, ready for
// sim.Run. The slice is a view: it grows on the next Add/Commit.
func (p *OnlinePlanner) Committed() []sim.JobRun { return p.committed }

// LastArrival returns the highest arrival committed so far.
func (p *OnlinePlanner) LastArrival() float64 { return p.last }

// LastAudit returns the decision audit of the most recent successful Add.
func (p *OnlinePlanner) LastAudit() PlanAudit { return p.audit }

// Reset drops every committed run while keeping the arrival watermark.
// Only valid when the caller knows the cluster is idle (every committed
// job has finished): completed jobs' JCTs are constants of the objective
// and jobs that no longer overlap any live run cannot perturb a
// newcomer's evaluation, so dropping them bounds planning cost by the
// busy-period length instead of the daemon's lifetime.
func (p *OnlinePlanner) Reset() {
	p.committed = p.committed[:0]
	p.scratch = p.scratch[:0]
}

// Commit appends an externally planned run — a plan-template cache hit or
// a queue-revision decision — without running the delay sweep, so later
// arrivals are planned against it.
func (p *OnlinePlanner) Commit(job *workload.Job, arrival float64, delays map[dag.StageID]float64) (sim.JobRun, error) {
	if err := p.admit(job, arrival); err != nil {
		return sim.JobRun{}, err
	}
	run := sim.JobRun{Job: job, Arrival: arrival, Delays: delays}
	p.committed = append(p.committed, run)
	p.last = arrival
	return run, nil
}

// admit vets one (job, arrival) pair against the planner's invariants.
func (p *OnlinePlanner) admit(job *workload.Job, arrival float64) error {
	if job == nil {
		return fmt.Errorf("scheduler: job %d is nil", len(p.committed))
	}
	if err := job.Validate(); err != nil {
		return fmt.Errorf("scheduler: job %d: %w", len(p.committed), err)
	}
	if err := checkArrival(len(p.committed), arrival); err != nil {
		return err
	}
	if arrival < p.last {
		return fmt.Errorf("scheduler: arrivals must be non-decreasing (%v after %v)", arrival, p.last)
	}
	return nil
}

// evalTotal simulates the committed runs plus the candidate and returns
// Σ (end − arrival) over all jobs.
func (p *OnlinePlanner) evalTotal(candidate sim.JobRun) (float64, error) {
	p.scratch = append(append(p.scratch[:0], p.committed...), candidate)
	runs := p.scratch
	res, err := sim.Run(sim.Options{Cluster: p.coarse, TrackNode: -1, FairByJob: p.opt.FairByJob}, runs)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := range runs {
		total += res.JCT(i)
	}
	return total, nil
}

// Add plans one job against the committed runs, commits it and returns
// the planned run. The delay sweep minimizes the sum of completion times
// over every committed job plus the newcomer.
func (p *OnlinePlanner) Add(job *workload.Job, arrival float64) (sim.JobRun, error) {
	if err := p.admit(job, arrival); err != nil {
		return sim.JobRun{}, err
	}
	reach, err := dag.NewReachability(job.Graph)
	if err != nil {
		return sim.JobRun{}, err
	}
	solo := p.model.SoloTimes(job)
	weight := func(id dag.StageID) float64 { return solo[id] }
	k := dag.ParallelStages(job.Graph, reach)
	run := sim.JobRun{Job: job, Arrival: arrival}
	p.audit = PlanAudit{ParallelStages: len(k)}
	if len(k) == 0 {
		p.committed = append(p.committed, run)
		p.last = arrival
		return run, nil
	}
	paths := dag.ExecutionPaths(job.Graph, reach, weight)
	switch p.opt.Order {
	case core.Ascending:
		dag.SortPathsAscending(paths, weight)
	default:
		dag.SortPathsDescending(paths, weight)
	}

	delays := map[dag.StageID]float64{}
	run.Delays = delays
	stockTotal, err := p.evalTotal(run)
	if err != nil {
		return sim.JobRun{}, err
	}
	p.audit.Paths = len(paths)
	p.audit.Evaluations = 1 // the incumbent
	best := stockTotal
	soloSum := 0.0
	for _, id := range k {
		soloSum += solo[id]
	}
	// Two sweeps: greedy then one refinement (staleness correction).
	for pass := 0; pass < 2; pass++ {
		seen := map[dag.StageID]bool{}
		for _, path := range paths {
			for _, kid := range path.Stages {
				if seen[kid] {
					continue
				}
				seen[kid] = true
				upper := math.Max(0, soloSum-solo[kid])
				n := int(upper/p.opt.SlotSeconds) + 1
				if n > p.opt.MaxCandidates {
					n = p.opt.MaxCandidates
				}
				step := upper
				if n > 1 {
					step = upper / float64(n-1)
				}
				bestDelay := delays[kid]
				for c := 0; c < n; c++ {
					x := float64(c) * step
					delays[kid] = x
					tot, err := p.evalTotal(run)
					if err != nil {
						return sim.JobRun{}, err
					}
					p.audit.Evaluations++
					if tot < best-1e-9 {
						best = tot
						bestDelay = x
					}
				}
				if bestDelay == 0 {
					delete(delays, kid)
				} else {
					delays[kid] = bestDelay
				}
			}
		}
	}
	// Never worse than submitting everything immediately: when the sweep
	// beat stock by less than tolerance (or not at all), commit nil delays
	// so the run is indistinguishable from submit-when-ready. (best starts
	// at stockTotal and only decreases, so the former `best > stockTotal`
	// form of this guard could never fire.)
	if len(delays) == 0 || best >= stockTotal-1e-9 {
		run.Delays = nil
	}
	p.audit.IncumbentTotal = stockTotal
	p.audit.ChosenTotal = best
	if run.Delays == nil {
		p.audit.FallbackNoWin = true
		p.audit.ChosenTotal = stockTotal
	}
	p.committed = append(p.committed, run)
	p.last = arrival
	return run, nil
}

// PlanOnline plans every job in arrival order and returns the runs ready
// for sim.Run. len(jobs) must equal len(arrivals); arrivals must be
// finite, non-negative (*InvalidArrivalError otherwise) and non-decreasing
// (sort first if needed).
func PlanOnline(opt OnlineOptions, jobs []*workload.Job, arrivals []float64) ([]sim.JobRun, error) {
	if len(jobs) != len(arrivals) {
		return nil, fmt.Errorf("scheduler: %d jobs but %d arrivals", len(jobs), len(arrivals))
	}
	p, err := NewOnlinePlanner(opt)
	if err != nil {
		return nil, err
	}
	for i, job := range jobs {
		if _, err := p.Add(job, arrivals[i]); err != nil {
			return nil, err
		}
	}
	return p.Committed(), nil
}

// RunOnline plans online and simulates the outcome in one call.
func RunOnline(opt OnlineOptions, jobs []*workload.Job, arrivals []float64, simOpt sim.Options) (*sim.Result, error) {
	runs, err := PlanOnline(opt, jobs, arrivals)
	if err != nil {
		return nil, err
	}
	simOpt.Cluster = opt.Cluster
	simOpt.FairByJob = opt.FairByJob
	return sim.Run(simOpt, runs)
}
