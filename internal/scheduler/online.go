package scheduler

import (
	"fmt"
	"math"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// OnlineOptions configures the multi-job online DelayStage planner — the
// Sec. 6 direction "our work can be easily extended to reducing the
// average job completion time in the multi-job environment", implemented.
//
// Jobs arrive over time on a shared cluster. When a job arrives, its
// delays are chosen against the jobs already committed (whose schedules
// are not revisited — the decision is online), minimizing the *sum of
// completion times* over every job in the system rather than the
// newcomer's alone: a delay that speeds the newcomer by starving a
// running job is rejected by the objective.
type OnlineOptions struct {
	Cluster *cluster.Cluster
	// Order is the execution-path order used for each job (default
	// Descending).
	Order core.Order
	// SlotSeconds / MaxCandidates mirror core.Options (0 = 1 s / 16).
	SlotSeconds   float64
	MaxCandidates int
	// FairByJob carries through to the evaluation and final simulation.
	FairByJob bool
}

// PlanOnline plans every job in arrival order and returns the runs ready
// for sim.Run. len(jobs) must equal len(arrivals); arrivals must be
// non-decreasing (sort first if needed).
func PlanOnline(opt OnlineOptions, jobs []*workload.Job, arrivals []float64) ([]sim.JobRun, error) {
	if opt.Cluster == nil {
		return nil, fmt.Errorf("scheduler: nil cluster")
	}
	if len(jobs) != len(arrivals) {
		return nil, fmt.Errorf("scheduler: %d jobs but %d arrivals", len(jobs), len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			return nil, fmt.Errorf("scheduler: arrivals must be non-decreasing")
		}
	}
	if opt.SlotSeconds <= 0 {
		opt.SlotSeconds = 1
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 16
	}
	coarse := sim.Coarsen(opt.Cluster)
	model, err := perfmodel.New(coarse)
	if err != nil {
		return nil, err
	}

	committed := make([]sim.JobRun, 0, len(jobs))
	// evalTotal simulates the committed runs plus the candidate and
	// returns Σ (end − arrival) over all jobs. The run slice is scratch
	// reused across the thousands of candidate evaluations one planning
	// pass makes (sim.Run does not retain it): committed only grows when a
	// job is sealed, so per candidate only the last element changes.
	scratch := make([]sim.JobRun, 0, len(jobs)+1)
	evalTotal := func(candidate sim.JobRun) (float64, error) {
		scratch = append(append(scratch[:0], committed...), candidate)
		runs := scratch
		res, err := sim.Run(sim.Options{Cluster: coarse, TrackNode: -1, FairByJob: opt.FairByJob}, runs)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for i := range runs {
			total += res.JCT(i)
		}
		return total, nil
	}

	for i, job := range jobs {
		if err := job.Validate(); err != nil {
			return nil, fmt.Errorf("scheduler: job %d: %w", i, err)
		}
		reach, err := dag.NewReachability(job.Graph)
		if err != nil {
			return nil, err
		}
		solo := model.SoloTimes(job)
		weight := func(id dag.StageID) float64 { return solo[id] }
		k := dag.ParallelStages(job.Graph, reach)
		run := sim.JobRun{Job: job, Arrival: arrivals[i]}
		if len(k) == 0 {
			committed = append(committed, run)
			continue
		}
		paths := dag.ExecutionPaths(job.Graph, reach, weight)
		switch opt.Order {
		case core.Ascending:
			dag.SortPathsAscending(paths, weight)
		default:
			dag.SortPathsDescending(paths, weight)
		}

		delays := map[dag.StageID]float64{}
		run.Delays = delays
		stockTotal, err := evalTotal(run)
		if err != nil {
			return nil, err
		}
		best := stockTotal
		soloSum := 0.0
		for _, id := range k {
			soloSum += solo[id]
		}
		// Two sweeps: greedy then one refinement (staleness correction).
		for pass := 0; pass < 2; pass++ {
			seen := map[dag.StageID]bool{}
			for _, p := range paths {
				for _, kid := range p.Stages {
					if seen[kid] {
						continue
					}
					seen[kid] = true
					upper := math.Max(0, soloSum-solo[kid])
					n := int(upper/opt.SlotSeconds) + 1
					if n > opt.MaxCandidates {
						n = opt.MaxCandidates
					}
					step := upper
					if n > 1 {
						step = upper / float64(n-1)
					}
					bestDelay := delays[kid]
					for c := 0; c < n; c++ {
						x := float64(c) * step
						delays[kid] = x
						tot, err := evalTotal(run)
						if err != nil {
							return nil, err
						}
						if tot < best-1e-9 {
							best = tot
							bestDelay = x
						}
					}
					if bestDelay == 0 {
						delete(delays, kid)
					} else {
						delays[kid] = bestDelay
					}
				}
			}
		}
		// Never worse than submitting everything immediately.
		if best > stockTotal {
			run.Delays = nil
		}
		committed = append(committed, run)
	}
	return committed, nil
}

// RunOnline plans online and simulates the outcome in one call.
func RunOnline(opt OnlineOptions, jobs []*workload.Job, arrivals []float64, simOpt sim.Options) (*sim.Result, error) {
	runs, err := PlanOnline(opt, jobs, arrivals)
	if err != nil {
		return nil, err
	}
	simOpt.Cluster = opt.Cluster
	simOpt.FairByJob = opt.FairByJob
	return sim.Run(simOpt, runs)
}
