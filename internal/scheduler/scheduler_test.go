package scheduler

import (
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

func TestStrategyNames(t *testing.T) {
	cases := []struct {
		s    Strategy
		want string
	}{
		{Spark{}, "Spark"},
		{AggShuffle{}, "AggShuffle"},
		{Fuxi{}, "Fuxi"},
		{DelayStage{}, "DelayStage"},
		{DelayStage{Order: core.Ascending}, "DelayStage-ascending"},
		{DelayStage{Order: core.Random}, "DelayStage-random"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestSparkPlanEmpty(t *testing.T) {
	p, err := Spark{}.Plan(nil, nil)
	if err != nil || p.Delays != nil || p.AggShuffle {
		t.Fatalf("spark plan = %+v, %v", p, err)
	}
}

func TestAggShufflePlan(t *testing.T) {
	p, err := AggShuffle{}.Plan(nil, nil)
	if err != nil || !p.AggShuffle {
		t.Fatalf("aggshuffle plan = %+v, %v", p, err)
	}
}

func TestDelayStagePlanProducesSchedule(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.LDA(c, 0.2)
	p, err := DelayStage{}.Plan(c, j)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schedule == nil {
		t.Fatal("DelayStage must carry its Alg. 1 schedule")
	}
	if p.Schedule.Makespan > p.Schedule.StockMakespan {
		t.Fatal("schedule regressed")
	}
}

func TestRunJobAllStrategies(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j := workload.CosineSimilarity(c, 0.1)
	var jcts []float64
	for _, s := range []Strategy{Spark{}, AggShuffle{}, DelayStage{}, Fuxi{}} {
		res, err := RunJob(c, j, s, sim.Options{TrackNode: -1})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		jcts = append(jcts, res.JCT(0))
	}
	spark, agg, delay := jcts[0], jcts[1], jcts[2]
	if delay > spark*1.005 {
		t.Errorf("DelayStage %.1f must not lose to Spark %.1f", delay, spark)
	}
	if agg > spark*1.05 {
		t.Errorf("AggShuffle %.1f should be within 5%% of Spark %.1f", agg, spark)
	}
	if jcts[3] != spark {
		t.Errorf("Fuxi %.1f must equal Spark %.1f in the symmetric model", jcts[3], spark)
	}
}

func TestRunJobsArrivalMismatch(t *testing.T) {
	c := cluster.NewM4LargeCluster(3)
	j := workload.LDA(c, 0.1)
	if _, err := RunJobs(c, []*workload.Job{j}, nil, Spark{}, sim.Options{TrackNode: -1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestRunJobsMultiJob(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	j1 := workload.LDA(c, 0.1)
	j2 := workload.CosineSimilarity(c, 0.1)
	res, err := RunJobs(c, []*workload.Job{j1, j2}, []float64{0, 30}, DelayStage{UseModelEvaluator: true}, sim.Options{TrackNode: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JobEnd) != 2 {
		t.Fatalf("expected 2 job results")
	}
	if res.JCT(0) <= 0 || res.JCT(1) <= 0 {
		t.Fatal("JCTs must be positive")
	}
}
