// Package eventlog parses Apache Spark event logs (the JSON-lines files
// the paper's prototype mines for its model parameters, Sec. 4.2) and
// converts them into simulator workloads: the job DAG from the stages'
// Parent IDs, shuffle input/output sizes from the stage-aggregated task
// metrics, the per-executor processing rate R_k from executor run times,
// and task skew from the spread of task durations.
//
// Only the event types the DelayStage pipeline needs are interpreted —
// SparkListenerApplicationStart, SparkListenerStageSubmitted,
// SparkListenerStageCompleted and SparkListenerTaskEnd — everything else
// is skipped, so real logs parse unchanged. Writer emits the same subset,
// which is what the tests and the synthetic-profiling demo use.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/workload"
)

// StageRecord aggregates one stage's events.
type StageRecord struct {
	ID        int
	Name      string
	Parents   []int
	NumTasks  int
	Submitted float64 // seconds since epoch (fractional)
	Completed float64

	// Task-metric aggregates.
	InputBytes        int64 // HDFS/file input
	ShuffleReadBytes  int64
	ShuffleWriteBytes int64
	OutputBytes       int64
	ExecutorRunTimeMs int64   // summed over tasks
	TaskDurationsMs   []int64 // per finished task
}

// Duration returns the stage wall time in seconds.
func (s *StageRecord) Duration() float64 { return s.Completed - s.Submitted }

// ReadBytes returns the bytes the stage pulled over the network or from
// storage (shuffle read preferred, input bytes as the root-stage fallback).
func (s *StageRecord) ReadBytes() int64 {
	if s.ShuffleReadBytes > 0 {
		return s.ShuffleReadBytes
	}
	return s.InputBytes
}

// WriteBytes returns the bytes the stage materialized (shuffle write
// preferred, job output as fallback).
func (s *StageRecord) WriteBytes() int64 {
	if s.ShuffleWriteBytes > 0 {
		return s.ShuffleWriteBytes
	}
	return s.OutputBytes
}

// Skew estimates the task-duration heterogeneity in [0,1]: the spread of
// task durations relative to the longest task — the quantity that governs
// how early shuffle output becomes available to pipelined consumers.
func (s *StageRecord) Skew() float64 {
	if len(s.TaskDurationsMs) < 2 {
		return 0
	}
	min, max := s.TaskDurationsMs[0], s.TaskDurationsMs[0]
	for _, d := range s.TaskDurationsMs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max <= 0 {
		return 0
	}
	return float64(max-min) / float64(max)
}

// Log is a parsed event log.
type Log struct {
	AppName string
	Stages  []StageRecord
}

// event is the union of the JSON fields we care about.
type event struct {
	Event     string       `json:"Event"`
	AppName   string       `json:"App Name"`
	StageInfo *stageInfo   `json:"Stage Info"`
	StageID   *int         `json:"Stage ID"`
	TaskInfo  *taskInfo    `json:"Task Info"`
	Metrics   *taskMetrics `json:"Task Metrics"`
}

type stageInfo struct {
	StageID    int    `json:"Stage ID"`
	Name       string `json:"Stage Name"`
	NumTasks   int    `json:"Number of Tasks"`
	ParentIDs  []int  `json:"Parent IDs"`
	Submission *int64 `json:"Submission Time"`
	Completion *int64 `json:"Completion Time"`
}

type taskInfo struct {
	LaunchTime int64 `json:"Launch Time"`
	FinishTime int64 `json:"Finish Time"`
}

type taskMetrics struct {
	ExecutorRunTime int64 `json:"Executor Run Time"`
	Input           struct {
		BytesRead int64 `json:"Bytes Read"`
	} `json:"Input Metrics"`
	Output struct {
		BytesWritten int64 `json:"Bytes Written"`
	} `json:"Output Metrics"`
	ShuffleRead struct {
		RemoteBytesRead int64 `json:"Remote Bytes Read"`
		LocalBytesRead  int64 `json:"Local Bytes Read"`
	} `json:"Shuffle Read Metrics"`
	ShuffleWrite struct {
		BytesWritten int64 `json:"Shuffle Bytes Written"`
	} `json:"Shuffle Write Metrics"`
}

// Parse reads a Spark event log. Unknown events and malformed lines are
// skipped (real logs contain dozens of event types and occasional
// truncated last lines).
func Parse(r io.Reader) (*Log, error) {
	log := &Log{}
	stages := map[int]*StageRecord{}
	var order []int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // tolerate junk lines
		}
		switch ev.Event {
		case "SparkListenerApplicationStart":
			log.AppName = ev.AppName
		case "SparkListenerStageSubmitted":
			if ev.StageInfo == nil {
				continue
			}
			st := ensureStage(stages, &order, ev.StageInfo.StageID)
			applyStageInfo(st, ev.StageInfo)
		case "SparkListenerStageCompleted":
			if ev.StageInfo == nil {
				continue
			}
			st := ensureStage(stages, &order, ev.StageInfo.StageID)
			applyStageInfo(st, ev.StageInfo)
		case "SparkListenerTaskEnd":
			if ev.StageID == nil {
				continue
			}
			st := ensureStage(stages, &order, *ev.StageID)
			if ev.TaskInfo != nil {
				st.TaskDurationsMs = append(st.TaskDurationsMs, ev.TaskInfo.FinishTime-ev.TaskInfo.LaunchTime)
			}
			if m := ev.Metrics; m != nil {
				st.ExecutorRunTimeMs += m.ExecutorRunTime
				st.InputBytes += m.Input.BytesRead
				st.OutputBytes += m.Output.BytesWritten
				st.ShuffleReadBytes += m.ShuffleRead.RemoteBytesRead + m.ShuffleRead.LocalBytesRead
				st.ShuffleWriteBytes += m.ShuffleWrite.BytesWritten
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	for _, id := range order {
		log.Stages = append(log.Stages, *stages[id])
	}
	sort.Slice(log.Stages, func(i, j int) bool { return log.Stages[i].ID < log.Stages[j].ID })
	if len(log.Stages) == 0 {
		return nil, fmt.Errorf("eventlog: no stage events found")
	}
	return log, nil
}

func ensureStage(m map[int]*StageRecord, order *[]int, id int) *StageRecord {
	if st, ok := m[id]; ok {
		return st
	}
	st := &StageRecord{ID: id}
	m[id] = st
	*order = append(*order, id)
	return st
}

func applyStageInfo(st *StageRecord, si *stageInfo) {
	if si.Name != "" {
		st.Name = si.Name
	}
	if si.NumTasks > 0 {
		st.NumTasks = si.NumTasks
	}
	if len(si.ParentIDs) > 0 {
		st.Parents = append([]int(nil), si.ParentIDs...)
	}
	if si.Submission != nil {
		st.Submitted = float64(*si.Submission) / 1000
	}
	if si.Completion != nil {
		st.Completed = float64(*si.Completion) / 1000
	}
}

// Job converts the log into a simulator workload: the DAG from Parent IDs,
// shuffle sizes from the task metrics, R_k from executor run time
// (bytes processed per executor-second), and skew from the task-duration
// spread. Stages with no byte metrics get a nominal 1 MiB so the workload
// stays simulable. ref is only used for validation context; quantities
// are taken from the log as-is.
func (l *Log) Job(ref *cluster.Cluster) (*workload.Job, error) {
	if ref == nil {
		return nil, fmt.Errorf("eventlog: nil reference cluster")
	}
	g := dag.New()
	profiles := make(map[dag.StageID]workload.StageProfile, len(l.Stages))
	known := map[int]bool{}
	for _, st := range l.Stages {
		known[st.ID] = true
	}
	for _, st := range l.Stages {
		var parents []dag.StageID
		for _, p := range st.Parents {
			if known[p] && p != st.ID {
				parents = append(parents, dag.StageID(p))
			}
		}
		if err := g.AddStage(dag.Stage{ID: dag.StageID(st.ID), Name: st.Name, Parents: parents}); err != nil {
			return nil, fmt.Errorf("eventlog: %w", err)
		}
		in := st.ReadBytes()
		if in <= 0 {
			in = 1 << 20
		}
		rate := 1.0
		if st.ExecutorRunTimeMs > 0 {
			rate = float64(in) / (float64(st.ExecutorRunTimeMs) / 1000)
		}
		if rate <= 0 {
			rate = 1
		}
		profiles[dag.StageID(st.ID)] = workload.StageProfile{
			ShuffleIn:  in,
			ShuffleOut: st.WriteBytes(),
			ProcRate:   rate,
			Skew:       st.Skew(),
			Tasks:      st.NumTasks,
		}
	}
	name := l.AppName
	if name == "" {
		name = "spark-app"
	}
	j := &workload.Job{Name: name, Graph: g, Profiles: profiles}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	return j, nil
}
