package eventlog

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Write emits the log as Spark event-log JSON lines (the subset Parse
// understands), so synthetic logs round-trip and can be inspected with
// standard Spark tooling conventions.
func Write(w io.Writer, l *Log) error {
	out := func(v interface{}) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		return nil
	}
	if err := out(map[string]interface{}{
		"Event":    "SparkListenerApplicationStart",
		"App Name": l.AppName,
	}); err != nil {
		return err
	}
	for _, st := range l.Stages {
		sub := int64(st.Submitted * 1000)
		info := map[string]interface{}{
			"Stage ID":        st.ID,
			"Stage Name":      st.Name,
			"Number of Tasks": st.NumTasks,
			"Parent IDs":      st.Parents,
			"Submission Time": sub,
		}
		if err := out(map[string]interface{}{
			"Event":      "SparkListenerStageSubmitted",
			"Stage Info": info,
		}); err != nil {
			return err
		}
		// One TaskEnd per recorded task duration; byte metrics split evenly.
		n := len(st.TaskDurationsMs)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			dur := int64(0)
			if i < len(st.TaskDurationsMs) {
				dur = st.TaskDurationsMs[i]
			}
			metrics := map[string]interface{}{
				"Executor Run Time": st.ExecutorRunTimeMs / int64(n),
				"Input Metrics":     map[string]interface{}{"Bytes Read": st.InputBytes / int64(n)},
				"Output Metrics":    map[string]interface{}{"Bytes Written": st.OutputBytes / int64(n)},
				"Shuffle Read Metrics": map[string]interface{}{
					"Remote Bytes Read": st.ShuffleReadBytes / int64(n),
					"Local Bytes Read":  0,
				},
				"Shuffle Write Metrics": map[string]interface{}{
					"Shuffle Bytes Written": st.ShuffleWriteBytes / int64(n),
				},
			}
			if err := out(map[string]interface{}{
				"Event":        "SparkListenerTaskEnd",
				"Stage ID":     st.ID,
				"Task Info":    map[string]interface{}{"Launch Time": sub, "Finish Time": sub + dur},
				"Task Metrics": metrics,
			}); err != nil {
				return err
			}
		}
		comp := int64(st.Completed * 1000)
		infoDone := map[string]interface{}{
			"Stage ID":        st.ID,
			"Stage Name":      st.Name,
			"Number of Tasks": st.NumTasks,
			"Parent IDs":      st.Parents,
			"Submission Time": sub,
			"Completion Time": comp,
		}
		if err := out(map[string]interface{}{
			"Event":      "SparkListenerStageCompleted",
			"Stage Info": infoDone,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Synthesize produces an event log from a simulated run of a workload —
// the stand-in for running the job on a real Spark cluster and collecting
// its log. Task durations are spread according to each stage's skew.
func Synthesize(job *workload.Job, res *sim.Result, tasksPerStage int, rng *rand.Rand) *Log {
	if tasksPerStage <= 0 {
		tasksPerStage = 8
	}
	l := &Log{AppName: job.Name}
	for _, id := range job.Graph.Stages() {
		tl := res.Timeline(0, id)
		if tl == nil {
			continue
		}
		p := job.Profiles[id]
		st := StageRecord{
			ID:                int(id),
			Name:              job.Graph.Stage(id).Name,
			NumTasks:          tasksPerStage,
			Submitted:         tl.Start,
			Completed:         tl.End,
			ShuffleReadBytes:  p.ShuffleIn,
			ShuffleWriteBytes: p.ShuffleOut,
		}
		for _, pid := range job.Graph.Parents(id) {
			st.Parents = append(st.Parents, int(pid))
		}
		// Total executor run time consistent with R_k: bytes / rate.
		if p.ProcRate > 0 {
			st.ExecutorRunTimeMs = int64(float64(p.ShuffleIn) / p.ProcRate * 1000)
		}
		// Task durations spread over [1-skew, 1]× the max task duration.
		base := (tl.ComputeEnd - tl.ReadEnd) * 1000
		if base < 1 {
			base = 1
		}
		for i := 0; i < tasksPerStage; i++ {
			frac := 1.0
			if p.Skew > 0 {
				frac = 1 - p.Skew*rng.Float64()
			}
			st.TaskDurationsMs = append(st.TaskDurationsMs, int64(base*frac))
		}
		// Guarantee the extremes so Skew() reconstructs p.Skew closely.
		if p.Skew > 0 && tasksPerStage >= 2 {
			st.TaskDurationsMs[0] = int64(base)
			st.TaskDurationsMs[1] = int64(base * (1 - p.Skew))
		}
		l.Stages = append(l.Stages, st)
	}
	return l
}

// String renders a compact per-stage summary (debugging aid).
func (l *Log) String() string {
	s := fmt.Sprintf("app %q, %d stages", l.AppName, len(l.Stages))
	return s
}
