package eventlog

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

const sampleLog = `{"Event":"SparkListenerApplicationStart","App Name":"als-job"}
{"Event":"SparkListenerStageSubmitted","Stage Info":{"Stage ID":0,"Stage Name":"map at ALS.scala:42","Number of Tasks":4,"Parent IDs":[],"Submission Time":1000000}}
{"Event":"SparkListenerTaskEnd","Stage ID":0,"Task Info":{"Launch Time":1000000,"Finish Time":1005000},"Task Metrics":{"Executor Run Time":5000,"Input Metrics":{"Bytes Read":1048576},"Shuffle Write Metrics":{"Shuffle Bytes Written":524288}}}
{"Event":"SparkListenerTaskEnd","Stage ID":0,"Task Info":{"Launch Time":1000000,"Finish Time":1002000},"Task Metrics":{"Executor Run Time":2000,"Input Metrics":{"Bytes Read":1048576},"Shuffle Write Metrics":{"Shuffle Bytes Written":524288}}}
{"Event":"SparkListenerStageCompleted","Stage Info":{"Stage ID":0,"Stage Name":"map at ALS.scala:42","Number of Tasks":4,"Parent IDs":[],"Submission Time":1000000,"Completion Time":1010000}}
{"Event":"SparkListenerStageSubmitted","Stage Info":{"Stage ID":1,"Stage Name":"reduce","Number of Tasks":2,"Parent IDs":[0],"Submission Time":1010000}}
{"Event":"SparkListenerTaskEnd","Stage ID":1,"Task Info":{"Launch Time":1010000,"Finish Time":1013000},"Task Metrics":{"Executor Run Time":3000,"Shuffle Read Metrics":{"Remote Bytes Read":700000,"Local Bytes Read":300000}}}
{"Event":"SparkListenerStageCompleted","Stage Info":{"Stage ID":1,"Stage Name":"reduce","Number of Tasks":2,"Parent IDs":[0],"Submission Time":1010000,"Completion Time":1016000}}
{"Event":"SparkListenerEnvironmentUpdate","JVM Information":{}}
this line is junk and must be skipped
`

func TestParseSampleLog(t *testing.T) {
	l, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if l.AppName != "als-job" {
		t.Fatalf("app name %q", l.AppName)
	}
	if len(l.Stages) != 2 {
		t.Fatalf("%d stages", len(l.Stages))
	}
	s0 := l.Stages[0]
	if s0.ID != 0 || s0.NumTasks != 4 || s0.InputBytes != 2*1048576 {
		t.Fatalf("stage 0 = %+v", s0)
	}
	if s0.Duration() != 10 {
		t.Fatalf("stage 0 duration %v, want 10s", s0.Duration())
	}
	if s0.ShuffleWriteBytes != 1048576 {
		t.Fatalf("stage 0 shuffle write %d", s0.ShuffleWriteBytes)
	}
	s1 := l.Stages[1]
	if len(s1.Parents) != 1 || s1.Parents[0] != 0 {
		t.Fatalf("stage 1 parents %v", s1.Parents)
	}
	if s1.ShuffleReadBytes != 1000000 {
		t.Fatalf("stage 1 shuffle read %d (remote+local)", s1.ShuffleReadBytes)
	}
}

func TestSkewEstimate(t *testing.T) {
	st := StageRecord{TaskDurationsMs: []int64{5000, 2000}}
	if got := st.Skew(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("skew %v, want 0.6", got)
	}
	if (&StageRecord{}).Skew() != 0 {
		t.Fatal("no tasks → skew 0")
	}
	if (&StageRecord{TaskDurationsMs: []int64{7, 7, 7}}).Skew() != 0 {
		t.Fatal("uniform tasks → skew 0")
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("")); err == nil {
		t.Fatal("empty log must error")
	}
	if _, err := Parse(strings.NewReader(`{"Event":"SparkListenerApplicationStart","App Name":"x"}`)); err == nil {
		t.Fatal("log without stages must error")
	}
}

func TestJobFromLog(t *testing.T) {
	l, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.NewM4LargeCluster(5)
	j, err := l.Job(c)
	if err != nil {
		t.Fatal(err)
	}
	if j.Graph.Len() != 2 || j.Name != "als-job" {
		t.Fatalf("job %+v", j)
	}
	p0 := j.Profiles[0]
	// R_k = bytes / executor-seconds = 2 MiB / 7 s.
	wantRate := float64(2*1048576) / 7
	if math.Abs(p0.ProcRate-wantRate) > 1 {
		t.Fatalf("rate %v, want %v", p0.ProcRate, wantRate)
	}
	if p0.Tasks != 4 {
		t.Fatalf("tasks %d", p0.Tasks)
	}
	// The materialized job must simulate.
	if _, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: j}}); err != nil {
		t.Fatal(err)
	}
}

// The full pipeline the prototype implements: run a job (simulated stand-in
// for Spark), collect its event log, parse it back, extract parameters,
// and compute a DelayStage schedule from the *log-derived* job.
func TestEndToEndLogPipeline(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	truth := workload.CosineSimilarity(c, 0.2)
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: truth}})
	if err != nil {
		t.Fatal(err)
	}
	l := Synthesize(truth, res, 8, rand.New(rand.NewSource(1)))

	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := back.Job(c)
	if err != nil {
		t.Fatal(err)
	}
	// The derived job must carry the truth's shuffle quantities exactly
	// (they round-trip through the task metrics).
	for _, id := range truth.Graph.Stages() {
		dp, tp := derived.Profiles[id], truth.Profiles[id]
		if absDiff := dp.ShuffleIn - tp.ShuffleIn; absDiff > int64(l.Stages[0].NumTasks) || absDiff < -int64(l.Stages[0].NumTasks) {
			t.Fatalf("stage %d shuffle-in %d, want ≈%d", id, dp.ShuffleIn, tp.ShuffleIn)
		}
	}
	// A schedule computed from the log-derived job must not regress the
	// true job.
	sched, err := core.Compute(core.Options{Cluster: c}, derived)
	if err != nil {
		t.Fatal(err)
	}
	stock, _ := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: truth}})
	delayed, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: truth, Delays: sched.Delays}})
	if err != nil {
		t.Fatal(err)
	}
	if delayed.JCT(0) > stock.JCT(0)*1.02 {
		t.Fatalf("log-derived schedule regressed: %.1f vs %.1f", delayed.JCT(0), stock.JCT(0))
	}
	t.Logf("log-derived schedule: stock %.1f → %.1f", stock.JCT(0), delayed.JCT(0))
}

func TestSynthesizeSkewRoundTrip(t *testing.T) {
	c := cluster.NewM4LargeCluster(5)
	truth := workload.TriangleCount(c, 0.1)
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: truth}})
	if err != nil {
		t.Fatal(err)
	}
	l := Synthesize(truth, res, 16, rand.New(rand.NewSource(2)))
	for _, st := range l.Stages {
		want := truth.Profiles[dag.StageID(st.ID)].Skew
		if math.Abs(st.Skew()-want) > 0.05 {
			t.Errorf("stage %d skew %v, want ≈%v", st.ID, st.Skew(), want)
		}
	}
}
