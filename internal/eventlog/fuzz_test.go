package eventlog

import (
	"strings"
	"testing"

	"delaystage/internal/cluster"
)

// FuzzParse: arbitrary (possibly corrupt) event-log bytes must either
// error or produce a log whose Job() materializes into a valid DAG.
func FuzzParse(f *testing.F) {
	f.Add(sampleLog)
	f.Add(`{"Event":"SparkListenerStageCompleted","Stage Info":{"Stage ID":0,"Submission Time":1,"Completion Time":2}}`)
	f.Add(`{"Event":"SparkListenerTaskEnd","Stage ID":3}`)
	f.Add("{}\nnot json\n")
	f.Fuzz(func(t *testing.T, src string) {
		l, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		ref := cluster.NewM4LargeCluster(2)
		if _, err := l.Job(ref); err != nil {
			// Cyclic Parent IDs are legitimately rejected; panics are not.
			return
		}
	})
}
