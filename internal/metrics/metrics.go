// Package metrics provides the statistics and rendering helpers the
// experiment harness uses: empirical CDFs (Figs. 2, 3, 14), mean/standard
// deviation summaries (Tables 3–4), step-series resampling for the
// utilization plots (Figs. 4, 5, 12, 17) and text Gantt charts for the
// stage-breakdown figures (Figs. 6, 11, 16).
package metrics

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Degenerate-input contracts, shared by the summary helpers below and
// relied on by experiment tables that may aggregate zero samples (e.g. a
// fault sweep where every run of a cell failed):
//
//   - empty input is not an error: Mean, StdDev, Percentile and
//     CDF.Quantile return 0; TimeWeightedMeanStd returns (0, 0). The 0 is
//     a sentinel, not a statistic — callers that must distinguish "no
//     data" check len or CDF.N first.
//   - NaN never panics: a NaN sample propagates to NaN results (NaN
//     samples sort below all other values, so they also surface at low
//     percentiles); a NaN p/q/window bound yields NaN.
//   - out-of-range ranks clamp: Percentile(p≤0)/Quantile(q≤0) is the
//     minimum, Percentile(p≥100)/Quantile(q≥1) the maximum.

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (p ∈ [0,100]) using linear
// interpolation on the sorted copy of xs. Empty input yields 0, NaN p
// yields NaN, and p outside [0,100] clamps to the extremes.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	xs []float64 // sorted
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(samples []float64) *CDF {
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	return &CDF{xs: xs}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.xs) }

// At returns P(X ≤ x) ∈ [0,1].
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-th quantile (q ∈ [0,1]) using the same linear
// interpolation as Percentile, so Quantile(p/100) ≡ Percentile(p) —
// including the degenerate cases (empty → 0, NaN q → NaN, clamping).
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.xs)
	if n == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[n-1]
	}
	rank := q * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c.xs[lo]
	}
	frac := rank - float64(lo)
	return c.xs[lo]*(1-frac) + c.xs[hi]*frac
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 { return Mean(c.xs) }

// cdfLess orders samples exactly as sort.Float64s does: NaN sorts before
// every other value, otherwise plain <. Merge must reproduce that order
// element for element so that sharded-and-merged distributions summarize
// byte-identically to ones built whole.
func cdfLess(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// cdfMerge is the k-way merge frontier: a heap of source indices ordered
// by each source's head sample (source index breaks ties, which keeps the
// merge stable).
type cdfMerge struct {
	srcs [][]float64 // sorted inputs, consumed head-first
	h    []int       // heap of indices into srcs
}

func (m *cdfMerge) Len() int { return len(m.h) }
func (m *cdfMerge) Less(i, j int) bool {
	a, b := m.srcs[m.h[i]][0], m.srcs[m.h[j]][0]
	if cdfLess(a, b) {
		return true
	}
	if cdfLess(b, a) {
		return false
	}
	return m.h[i] < m.h[j]
}
func (m *cdfMerge) Swap(i, j int)      { m.h[i], m.h[j] = m.h[j], m.h[i] }
func (m *cdfMerge) Push(x interface{}) { m.h = append(m.h, x.(int)) }
func (m *cdfMerge) Pop() interface{} {
	x := m.h[len(m.h)-1]
	m.h = m.h[:len(m.h)-1]
	return x
}

// Merge returns the distribution of the combined samples of c and others
// as a k-way merge of the already-sorted inputs — O(N log k), no re-sort.
// The merged sample slice is element-for-element identical to
// NewCDF(concatenation of all raw samples), so quantiles, means and JSON
// summaries do not depend on whether a sample set was built whole or
// sharded and merged. Nil receivers and nil entries in others are treated
// as empty; inputs are never mutated.
func (c *CDF) Merge(others ...*CDF) *CDF {
	m := &cdfMerge{}
	add := func(o *CDF) {
		if o != nil && len(o.xs) > 0 {
			m.srcs = append(m.srcs, o.xs)
		}
	}
	add(c)
	for _, o := range others {
		add(o)
	}
	total := 0
	for _, s := range m.srcs {
		total += len(s)
	}
	out := make([]float64, 0, total)
	for i := range m.srcs {
		m.h = append(m.h, i)
	}
	heap.Init(m)
	for len(m.h) > 0 {
		src := m.h[0]
		out = append(out, m.srcs[src][0])
		m.srcs[src] = m.srcs[src][1:]
		if len(m.srcs[src]) == 0 {
			heap.Pop(m)
		} else {
			heap.Fix(m, 0)
		}
	}
	return &CDF{xs: out}
}

// MarshalJSON serializes the distribution as a compact summary
// (n/mean/p50/p90/p99) rather than the raw samples, keeping JSON
// experiment summaries small and schema-stable.
func (c *CDF) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		N    int     `json:"n"`
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
	}{c.N(), c.Mean(), c.Quantile(0.5), c.Quantile(0.9), c.Quantile(0.99)})
}

// Table renders the CDF at the given x grid as "x  P%" rows.
func (c *CDF) Table(grid []float64) string {
	var b strings.Builder
	for _, x := range grid {
		fmt.Fprintf(&b, "%12.2f %8.1f%%\n", x, c.At(x)*100)
	}
	return b.String()
}

// StepPoint is one (time, value) step of a piecewise-constant series.
type StepPoint struct {
	T, V float64
}

// ResampleStep converts a step series (value V holds from its T until the
// next point's T, ending at end) into averages over fixed-width bins:
// bin i covers [start + i·width, start + (i+1)·width).
func ResampleStep(pts []StepPoint, start, end, width float64) []float64 {
	if width <= 0 || end <= start || len(pts) == 0 {
		return nil
	}
	nBins := int(math.Ceil((end - start) / width))
	out := make([]float64, nBins)
	for i := 0; i < len(pts); i++ {
		segStart := pts[i].T
		segEnd := end
		if i+1 < len(pts) {
			segEnd = pts[i+1].T
		}
		if segEnd <= start || segStart >= end {
			continue
		}
		if segStart < start {
			segStart = start
		}
		if segEnd > end {
			segEnd = end
		}
		v := pts[i].V
		b0 := int((segStart - start) / width)
		b1 := int(math.Ceil((segEnd - start) / width))
		for b := b0; b < b1 && b < nBins; b++ {
			binStart := start + float64(b)*width
			binEnd := binStart + width
			lo := math.Max(segStart, binStart)
			hi := math.Min(segEnd, binEnd)
			if hi > lo {
				out[b] += v * (hi - lo) / width
			}
		}
	}
	return out
}

// TimeWeightedMeanStd returns the time-weighted mean and standard
// deviation of a step series over [start, end]. An empty series, an
// inverted or zero-length window, or a window that does not overlap any
// segment yields (0, 0); NaN window bounds or NaN values propagate NaN.
func TimeWeightedMeanStd(pts []StepPoint, start, end float64) (mean, std float64) {
	if end <= start || len(pts) == 0 {
		return 0, 0
	}
	total, sum, sumSq := 0.0, 0.0, 0.0
	for i := 0; i < len(pts); i++ {
		segStart := pts[i].T
		segEnd := end
		if i+1 < len(pts) {
			segEnd = pts[i+1].T
		}
		if segEnd <= start || segStart >= end {
			continue
		}
		if segStart < start {
			segStart = start
		}
		if segEnd > end {
			segEnd = end
		}
		w := segEnd - segStart
		if w <= 0 {
			continue
		}
		total += w
		sum += pts[i].V * w
		sumSq += pts[i].V * pts[i].V * w
	}
	if total <= 0 {
		return 0, 0
	}
	mean = sum / total
	variance := sumSq/total - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// GanttBar is one bar of a text Gantt chart, split into a shaded prefix
// (shuffle read in the paper's figures) and a plain remainder (compute +
// write).
type GanttBar struct {
	Label             string
	Start, Split, End float64 // Start ≤ Split ≤ End
}

// RenderGantt draws bars as rows of '░' (read) and '█' (compute+write)
// over a shared [0, max] axis that is width characters wide.
func RenderGantt(bars []GanttBar, width int) string {
	if width < 10 {
		width = 10
	}
	maxT := 0.0
	for _, b := range bars {
		if b.End > maxT {
			maxT = b.End
		}
	}
	if maxT <= 0 {
		return ""
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	scale := float64(width) / maxT
	var sb strings.Builder
	for _, b := range bars {
		s := int(math.Round(b.Start * scale))
		m := int(math.Round(b.Split * scale))
		e := int(math.Round(b.End * scale))
		if s < 0 {
			s = 0
		}
		if s > width {
			s = width
		}
		if e > width {
			e = width
		}
		if e < s {
			e = s
		}
		if m < s {
			m = s
		}
		if m > e {
			m = e
		}
		fmt.Fprintf(&sb, "%-*s |%s%s%s|\n", labelW, b.Label,
			strings.Repeat(" ", s), strings.Repeat("░", m-s), strings.Repeat("█", e-m))
	}
	// The axis pad may hit zero (or go negative) when the makespan label is
	// wider than the chart; clamp instead of handing strings.Repeat a
	// negative count (which panics).
	axis := fmt.Sprintf("%.0fs", maxT)
	pad := width - len(axis)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&sb, "%-*s  0%s%s\n", labelW, "", strings.Repeat(" ", pad), axis)
	return sb.String()
}

// Sparkline renders values as a compact unicode sparkline (for the
// utilization time-series figures in terminal output).
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if maxV > 0 {
			idx = int(v / maxV * float64(len(ticks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		sb.WriteRune(ticks[idx])
	}
	return sb.String()
}
