package metrics

import (
	"math"
	"testing"
)

// These tests pin the package's degenerate-input contracts (see the
// block comment above Mean): empty inputs give zero sentinels, NaN
// propagates instead of panicking, out-of-range ranks clamp.

func TestEmptyInputContracts(t *testing.T) {
	if v := Mean(nil); v != 0 {
		t.Errorf("Mean(nil) = %v, want 0", v)
	}
	if v := StdDev(nil); v != 0 {
		t.Errorf("StdDev(nil) = %v, want 0", v)
	}
	if v := StdDev([]float64{5}); v != 0 {
		t.Errorf("StdDev(single) = %v, want 0", v)
	}
	if v := Percentile(nil, 50); v != 0 {
		t.Errorf("Percentile(nil, 50) = %v, want 0", v)
	}
	c := NewCDF(nil)
	if v := c.Quantile(0.5); v != 0 {
		t.Errorf("empty CDF Quantile = %v, want 0", v)
	}
	if v := c.At(3); v != 0 {
		t.Errorf("empty CDF At = %v, want 0", v)
	}
	if c.N() != 0 {
		t.Errorf("empty CDF N = %d", c.N())
	}
	if m, s := TimeWeightedMeanStd(nil, 0, 10); m != 0 || s != 0 {
		t.Errorf("TimeWeightedMeanStd(nil) = %v, %v, want 0, 0", m, s)
	}
}

func TestInvertedWindowContracts(t *testing.T) {
	pts := []StepPoint{{T: 0, V: 3}, {T: 5, V: 7}}
	if m, s := TimeWeightedMeanStd(pts, 10, 10); m != 0 || s != 0 {
		t.Errorf("zero-length window = %v, %v, want 0, 0", m, s)
	}
	if m, s := TimeWeightedMeanStd(pts, 10, 5); m != 0 || s != 0 {
		t.Errorf("inverted window = %v, %v, want 0, 0", m, s)
	}
	// Window entirely before the series: no overlapping segment.
	if m, s := TimeWeightedMeanStd([]StepPoint{{T: 100, V: 3}}, 0, 10); m != 0 || s != 0 {
		t.Errorf("non-overlapping window = %v, %v, want 0, 0", m, s)
	}
}

func TestNaNRankContracts(t *testing.T) {
	xs := []float64{1, 2, 3}
	if v := Percentile(xs, math.NaN()); !math.IsNaN(v) {
		t.Errorf("Percentile(NaN) = %v, want NaN", v)
	}
	if v := NewCDF(xs).Quantile(math.NaN()); !math.IsNaN(v) {
		t.Errorf("Quantile(NaN) = %v, want NaN", v)
	}
}

func TestNaNSamplePropagation(t *testing.T) {
	xs := []float64{1, math.NaN(), 3}
	if v := Mean(xs); !math.IsNaN(v) {
		t.Errorf("Mean with NaN sample = %v, want NaN", v)
	}
	if v := StdDev(xs); !math.IsNaN(v) {
		t.Errorf("StdDev with NaN sample = %v, want NaN", v)
	}
	// NaN sorts below all other values, so it surfaces at p=0.
	if v := Percentile(xs, 0); !math.IsNaN(v) {
		t.Errorf("Percentile(p=0) with NaN sample = %v, want NaN", v)
	}
	// The max side stays finite.
	if v := Percentile(xs, 100); v != 3 {
		t.Errorf("Percentile(p=100) with NaN sample = %v, want 3", v)
	}
	pts := []StepPoint{{T: 0, V: math.NaN()}, {T: 5, V: 1}}
	if m, _ := TimeWeightedMeanStd(pts, 0, 10); !math.IsNaN(m) {
		t.Errorf("TimeWeightedMeanStd with NaN value = %v, want NaN", m)
	}
	if m, _ := TimeWeightedMeanStd([]StepPoint{{T: 0, V: 1}}, 0, math.NaN()); !math.IsNaN(m) {
		t.Errorf("TimeWeightedMeanStd with NaN bound = %v, want NaN", m)
	}
}

func TestRankClamping(t *testing.T) {
	xs := []float64{10, 20, 30}
	if v := Percentile(xs, -5); v != 10 {
		t.Errorf("Percentile(-5) = %v, want 10", v)
	}
	if v := Percentile(xs, 250); v != 30 {
		t.Errorf("Percentile(250) = %v, want 30", v)
	}
	c := NewCDF(xs)
	if v := c.Quantile(-0.1); v != 10 {
		t.Errorf("Quantile(-0.1) = %v, want 10", v)
	}
	if v := c.Quantile(1.5); v != 30 {
		t.Errorf("Quantile(1.5) = %v, want 30", v)
	}
	// Percentile(p) ≡ Quantile(p/100) on the same data.
	for _, p := range []float64{0, 12.5, 50, 90, 100} {
		if a, b := Percentile(xs, p), c.Quantile(p/100); a != b {
			t.Errorf("Percentile(%v) = %v but Quantile(%v) = %v", p, a, p/100, b)
		}
	}
}
