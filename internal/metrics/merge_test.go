package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestCDFMergeMatchesFullSort pins Merge's contract: merging per-shard
// CDFs yields the exact sample sequence NewCDF produces over the
// concatenated raw samples — so sharded replays summarize byte-identically
// to monolithic ones.
func TestCDFMergeMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(9)
		var all []float64
		shards := make([]*CDF, k)
		for s := 0; s < k; s++ {
			n := rng.Intn(40) // some shards end up empty
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = math.Floor(rng.NormFloat64()*100) / 8 // force duplicates
			}
			all = append(all, samples...)
			shards[s] = NewCDF(samples)
		}
		got := shards[0].Merge(shards[1:]...)
		want := NewCDF(all)
		if !reflect.DeepEqual(got.xs, want.xs) {
			t.Fatalf("trial %d (k=%d): merged samples differ from full sort", trial, k)
		}
		gj, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(gj) != string(wj) {
			t.Fatalf("trial %d: JSON summaries differ:\n%s\n%s", trial, gj, wj)
		}
	}
}

// TestCDFMergeNaN: NaN samples sort first (the sort.Float64s convention)
// through a merge too.
func TestCDFMergeNaN(t *testing.T) {
	a := NewCDF([]float64{3, math.NaN(), 1})
	b := NewCDF([]float64{2, math.NaN()})
	got := a.Merge(b)
	if got.N() != 5 {
		t.Fatalf("N = %d, want 5", got.N())
	}
	if !math.IsNaN(got.xs[0]) || !math.IsNaN(got.xs[1]) {
		t.Fatalf("NaNs must lead the merged samples, got %v", got.xs)
	}
	if !reflect.DeepEqual(got.xs[2:], []float64{1, 2, 3}) {
		t.Fatalf("tail = %v, want [1 2 3]", got.xs[2:])
	}
}

// TestCDFMergeDegenerate: nil receiver, nil others, empty inputs.
func TestCDFMergeDegenerate(t *testing.T) {
	if got := (*CDF)(nil).Merge(nil, NewCDF(nil)); got.N() != 0 {
		t.Fatalf("all-empty merge has N=%d, want 0", got.N())
	}
	one := NewCDF([]float64{5, 1})
	got := one.Merge(nil, NewCDF(nil), nil)
	if !reflect.DeepEqual(got.xs, []float64{1, 5}) {
		t.Fatalf("single-source merge = %v, want [1 5]", got.xs)
	}
}

// TestCDFMergeDoesNotMutate: inputs stay intact and independent of the
// merged output.
func TestCDFMergeDoesNotMutate(t *testing.T) {
	a := NewCDF([]float64{4, 2})
	b := NewCDF([]float64{3, 1})
	got := a.Merge(b)
	if !reflect.DeepEqual(a.xs, []float64{2, 4}) || !reflect.DeepEqual(b.xs, []float64{1, 3}) {
		t.Fatalf("inputs mutated: a=%v b=%v", a.xs, b.xs)
	}
	got.xs[0] = 99
	if a.xs[0] == 99 || b.xs[0] == 99 {
		t.Fatal("merged CDF aliases an input's sample slice")
	}
}
