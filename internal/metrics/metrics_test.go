package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("std %v, want 2", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, cs := range cases {
		if got := c.At(cs.x); math.Abs(got-cs.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cs.x, got, cs.want)
		}
	}
	if q := c.Quantile(0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want 2.5 (interpolated)", q)
	}
	if c.Mean() != 2.5 {
		t.Errorf("Mean = %v", c.Mean())
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n%50)+1)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := 0.0; x <= 100; x += 5 {
			v := c.At(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFTable(t *testing.T) {
	c := NewCDF([]float64{1, 2})
	out := c.Table([]float64{1, 2})
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "100.0%") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestResampleStepConstant(t *testing.T) {
	pts := []StepPoint{{T: 0, V: 10}}
	bins := ResampleStep(pts, 0, 10, 2)
	if len(bins) != 5 {
		t.Fatalf("got %d bins", len(bins))
	}
	for i, b := range bins {
		if math.Abs(b-10) > 1e-9 {
			t.Fatalf("bin %d = %v, want 10", i, b)
		}
	}
}

func TestResampleStepTransitions(t *testing.T) {
	// V=0 on [0,5), V=10 on [5,10): bin [4,6) must average 5.
	pts := []StepPoint{{T: 0, V: 0}, {T: 5, V: 10}}
	bins := ResampleStep(pts, 4, 6, 2)
	if len(bins) != 1 || math.Abs(bins[0]-5) > 1e-9 {
		t.Fatalf("bins = %v, want [5]", bins)
	}
}

func TestResampleStepEdge(t *testing.T) {
	if ResampleStep(nil, 0, 10, 1) != nil {
		t.Error("nil points must give nil")
	}
	if ResampleStep([]StepPoint{{0, 1}}, 0, 0, 1) != nil {
		t.Error("empty window must give nil")
	}
	if ResampleStep([]StepPoint{{0, 1}}, 0, 10, 0) != nil {
		t.Error("zero width must give nil")
	}
}

func TestResampleConservesIntegralProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pts []StepPoint
		tcur := 0.0
		for i := 0; i < 10; i++ {
			pts = append(pts, StepPoint{T: tcur, V: rng.Float64() * 50})
			tcur += 0.5 + rng.Float64()*3
		}
		end := tcur
		width := 0.9
		bins := ResampleStep(pts, 0, end, width)
		// Integral over bins ≈ exact step integral.
		exact := 0.0
		for i := range pts {
			segEnd := end
			if i+1 < len(pts) {
				segEnd = pts[i+1].T
			}
			exact += pts[i].V * (segEnd - pts[i].T)
		}
		approxInt := 0.0
		for i, b := range bins {
			binStart := float64(i) * width
			binEnd := math.Min(binStart+width, end)
			_ = binEnd
			approxInt += b * width
		}
		// Last bin may extend past end; allow small slack.
		return math.Abs(approxInt-exact) < exact*0.02+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedMeanStd(t *testing.T) {
	// V=0 for 5s, V=10 for 5s → mean 5, std 5.
	pts := []StepPoint{{T: 0, V: 0}, {T: 5, V: 10}}
	mean, std := TimeWeightedMeanStd(pts, 0, 10)
	if math.Abs(mean-5) > 1e-9 || math.Abs(std-5) > 1e-9 {
		t.Fatalf("mean/std = %v/%v, want 5/5", mean, std)
	}
	mean, std = TimeWeightedMeanStd(pts, 5, 10)
	if math.Abs(mean-10) > 1e-9 || std > 1e-9 {
		t.Fatalf("windowed mean/std = %v/%v, want 10/0", mean, std)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	if m, s := TimeWeightedMeanStd(nil, 0, 10); m != 0 || s != 0 {
		t.Fatal("nil series must give zeros")
	}
	if m, s := TimeWeightedMeanStd([]StepPoint{{0, 5}}, 10, 10); m != 0 || s != 0 {
		t.Fatal("empty window must give zeros")
	}
}

func TestRenderGantt(t *testing.T) {
	bars := []GanttBar{
		{Label: "Stage 1", Start: 0, Split: 10, End: 30},
		{Label: "Stage 2", Start: 10, Split: 20, End: 40},
	}
	out := RenderGantt(bars, 40)
	if !strings.Contains(out, "Stage 1") || !strings.Contains(out, "░") || !strings.Contains(out, "█") {
		t.Fatalf("unexpected gantt:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // 2 bars + axis
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	if out := RenderGantt(nil, 40); out != "" {
		t.Fatalf("empty gantt should be empty, got %q", out)
	}
}

func TestSparkline(t *testing.T) {
	out := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(out)) != 4 {
		t.Fatalf("sparkline length %d, want 4", len([]rune(out)))
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline must be empty")
	}
	flat := Sparkline([]float64{0, 0})
	if len([]rune(flat)) != 2 {
		t.Fatal("flat sparkline wrong length")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20}
	if got := Percentile(xs, 50); math.Abs(got-15) > 1e-9 {
		t.Fatalf("P50 of {10,20} = %v, want 15", got)
	}
}

func TestGanttClampsSplit(t *testing.T) {
	// Split beyond End must clamp, Start beyond Split must clamp.
	out := RenderGantt([]GanttBar{{Label: "x", Start: 5, Split: 20, End: 10}}, 20)
	if !strings.Contains(out, "x") {
		t.Fatalf("bar missing: %s", out)
	}
}

// Quantile must interpolate exactly like Percentile: the old truncating
// implementation returned 2 for Quantile(0.5) of {1,2} instead of 1.5,
// biasing every reported P50/P90/P99 high.
func TestQuantileInterpolates(t *testing.T) {
	c := NewCDF([]float64{1, 2})
	if q := c.Quantile(0.5); math.Abs(q-1.5) > 1e-12 {
		t.Fatalf("Quantile(0.5) of {1,2} = %v, want 1.5", q)
	}
}

// Quantile(p/100) ≡ Percentile(p) on random samples.
func TestQuantileMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*1000 - 200
		}
		c := NewCDF(xs)
		for p := 0.0; p <= 100; p += 2.5 {
			q, pc := c.Quantile(p/100), Percentile(xs, p)
			if math.Abs(q-pc) > 1e-9*(1+math.Abs(pc)) {
				t.Fatalf("trial %d: Quantile(%v)=%v but Percentile(%v)=%v", trial, p/100, q, p, pc)
			}
		}
	}
}

// Trace-scale makespans at narrow widths: the %.0fs axis label exceeds the
// chart width, which used to drive strings.Repeat negative and panic.
func TestRenderGanttHugeMakespanNarrowWidth(t *testing.T) {
	bars := []GanttBar{{Label: "s", Start: 0, Split: 1e8, End: 2e9}}
	out := RenderGantt(bars, 10)
	if !strings.Contains(out, "2000000000s") {
		t.Fatalf("axis label missing:\n%s", out)
	}
}

// Bars outside the axis range (negative or past-maxT starts) must clamp,
// not panic.
func TestRenderGanttOutOfRangeBars(t *testing.T) {
	bars := []GanttBar{
		{Label: "neg", Start: -5, Split: -2, End: 10},
		{Label: "ok", Start: 0, Split: 5, End: 10},
	}
	out := RenderGantt(bars, 20)
	if !strings.Contains(out, "neg") || !strings.Contains(out, "ok") {
		t.Fatalf("bars missing:\n%s", out)
	}
}

func TestSparklineNegativeAndSinglePoint(t *testing.T) {
	// Negative values must clamp to the lowest tick, not index out of range.
	out := Sparkline([]float64{-5, 0, 5})
	if len([]rune(out)) != 3 {
		t.Fatalf("sparkline length %d, want 3", len([]rune(out)))
	}
	if one := Sparkline([]float64{7}); len([]rune(one)) != 1 {
		t.Fatalf("single-point sparkline %q", one)
	}
	if allNeg := Sparkline([]float64{-3, -1}); len([]rune(allNeg)) != 2 {
		t.Fatalf("all-negative sparkline %q", allNeg)
	}
}

func TestResampleStepNegativeValues(t *testing.T) {
	// Negative step values resample like any other value.
	pts := []StepPoint{{T: 0, V: -4}}
	bins := ResampleStep(pts, 0, 4, 2)
	if len(bins) != 2 || math.Abs(bins[0]+4) > 1e-9 || math.Abs(bins[1]+4) > 1e-9 {
		t.Fatalf("bins = %v, want [-4 -4]", bins)
	}
}

func TestResampleStepSinglePointPartialWindow(t *testing.T) {
	// A single point starting mid-window fills only the covered part.
	pts := []StepPoint{{T: 5, V: 10}}
	bins := ResampleStep(pts, 0, 10, 5)
	if len(bins) != 2 || math.Abs(bins[0]) > 1e-9 || math.Abs(bins[1]-10) > 1e-9 {
		t.Fatalf("bins = %v, want [0 10]", bins)
	}
}

func TestCDFQuantileBounds(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2})
	if c.Quantile(-1) != 1 || c.Quantile(2) != 3 {
		t.Fatalf("quantile clamping broken: %v %v", c.Quantile(-1), c.Quantile(2))
	}
	empty := NewCDF(nil)
	if empty.At(5) != 0 || empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty CDF must return zeros")
	}
}
