package dag

// Reachability answers ancestor/descendant queries in O(1) after an
// O(V·E/64) bitset construction. It is the basis for parallel-stage
// detection: two stages can run in parallel iff neither reaches the other.
type Reachability struct {
	idx  map[StageID]int
	ids  []StageID
	desc []bitset // desc[i] = set of stages reachable from i (excluding i)
	anc  []bitset // anc[i]  = set of stages that reach i (excluding i)
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// NewReachability builds the transitive-closure bitsets for g. The graph
// must have been Validated (acyclic, child index built).
func NewReachability(g *Graph) (*Reachability, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(topo)
	r := &Reachability{
		idx:  make(map[StageID]int, n),
		ids:  topo,
		desc: make([]bitset, n),
		anc:  make([]bitset, n),
	}
	for i, id := range topo {
		r.idx[id] = i
	}
	for i := range topo {
		r.desc[i] = newBitset(n)
		r.anc[i] = newBitset(n)
	}
	// Descendants: walk topo order in reverse; desc(u) = ∪_{c∈children(u)} ({c} ∪ desc(c)).
	for i := n - 1; i >= 0; i-- {
		u := topo[i]
		for _, c := range g.children[u] {
			ci := r.idx[c]
			r.desc[i].set(ci)
			r.desc[i].or(r.desc[ci])
		}
	}
	// Ancestors: forward pass.
	for i := 0; i < n; i++ {
		u := topo[i]
		for _, p := range g.stages[u].Parents {
			pi := r.idx[p]
			r.anc[i].set(pi)
			r.anc[i].or(r.anc[pi])
		}
	}
	return r, nil
}

// Reaches reports whether a is an ancestor of b (a strictly precedes b).
func (r *Reachability) Reaches(a, b StageID) bool {
	ai, ok1 := r.idx[a]
	bi, ok2 := r.idx[b]
	if !ok1 || !ok2 {
		return false
	}
	return r.desc[ai].get(bi)
}

// Concurrent reports whether a and b may execute in parallel: a != b and
// neither reaches the other.
func (r *Reachability) Concurrent(a, b StageID) bool {
	if a == b {
		return false
	}
	return !r.Reaches(a, b) && !r.Reaches(b, a)
}

// Ancestors returns the ancestor set of id in topological order.
func (r *Reachability) Ancestors(id StageID) []StageID {
	i, ok := r.idx[id]
	if !ok {
		return nil
	}
	var out []StageID
	for j := range r.ids {
		if r.anc[i].get(j) {
			out = append(out, r.ids[j])
		}
	}
	return out
}

// Descendants returns the descendant set of id in topological order.
func (r *Reachability) Descendants(id StageID) []StageID {
	i, ok := r.idx[id]
	if !ok {
		return nil
	}
	var out []StageID
	for j := range r.ids {
		if r.desc[i].get(j) {
			out = append(out, r.ids[j])
		}
	}
	return out
}

// ConcurrencyDegree returns, for each stage, how many other stages it can
// run in parallel with. A stage belongs to the parallel-stage set K iff its
// degree is ≥ 1 (Sec. 2.1 of the paper).
func (r *Reachability) ConcurrencyDegree(id StageID) int {
	i, ok := r.idx[id]
	if !ok {
		return 0
	}
	n := len(r.ids)
	return n - 1 - r.desc[i].count() - r.anc[i].count()
}
