// Package dag models the stage dependency graph of a DAG-style data
// analytics job (Spark, Flink, MapReduce chains, ...) and provides the
// graph analyses that DelayStage (ICPP 2019) builds on: topological
// sorting, parallel-stage detection, and execution-path decomposition.
//
// A Stage is the unit of scheduling: a set of identical tasks separated
// from its parents by a shuffle. The Graph records the "child depends on
// parent" edges; it must be acyclic.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// StageID identifies a stage within one job's graph. IDs are assigned by
// the caller and must be unique within a Graph; they carry no ordering
// semantics beyond identity.
type StageID int

// Stage is one node of the job DAG.
type Stage struct {
	ID      StageID
	Name    string
	Parents []StageID // stages whose full output this stage shuffle-reads
}

// Graph is a directed acyclic graph of stages. The zero value is not
// usable; construct with New.
type Graph struct {
	stages   map[StageID]*Stage
	children map[StageID][]StageID
	order    []StageID // insertion order, for deterministic iteration
	// validated marks that the child index matches the current stage set,
	// making repeated Validate calls read-only — and therefore safe from
	// concurrent evaluators hammering the same job (sim.Run validates on
	// every what-if evaluation).
	validated bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		stages:   make(map[StageID]*Stage),
		children: make(map[StageID][]StageID),
	}
}

// ErrDuplicateStage is returned by AddStage when the stage ID is taken.
var ErrDuplicateStage = errors.New("dag: duplicate stage id")

// ErrUnknownStage is returned when an operation references a stage ID that
// is not in the graph.
var ErrUnknownStage = errors.New("dag: unknown stage id")

// ErrCycle is returned by Validate and TopoSort when the graph contains a
// dependency cycle.
var ErrCycle = errors.New("dag: dependency cycle")

// AddStage inserts a stage. Parent IDs may reference stages added later;
// Validate checks that all of them exist.
func (g *Graph) AddStage(s Stage) error {
	if _, ok := g.stages[s.ID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateStage, s.ID)
	}
	cp := s
	cp.Parents = append([]StageID(nil), s.Parents...)
	g.stages[s.ID] = &cp
	g.order = append(g.order, s.ID)
	g.validated = false
	return nil
}

// MustAdd is AddStage that panics on error; convenient in workload builders
// where IDs are static.
func (g *Graph) MustAdd(s Stage) {
	if err := g.AddStage(s); err != nil {
		panic(err)
	}
}

// Len returns the number of stages.
func (g *Graph) Len() int { return len(g.stages) }

// Stage returns the stage with the given ID, or nil if absent.
func (g *Graph) Stage(id StageID) *Stage { return g.stages[id] }

// Stages returns all stage IDs in insertion order.
func (g *Graph) Stages() []StageID {
	return append([]StageID(nil), g.order...)
}

// StagesView returns the insertion-order stage IDs WITHOUT copying.
// Callers must treat the slice as read-only; it is invalidated by the
// next AddStage. Hot paths (the simulator builds per-run state for every
// what-if evaluation) use it to avoid per-call allocation.
func (g *Graph) StagesView() []StageID { return g.order }

// Parents returns the parent IDs of id (nil if unknown).
func (g *Graph) Parents(id StageID) []StageID {
	s := g.stages[id]
	if s == nil {
		return nil
	}
	return append([]StageID(nil), s.Parents...)
}

// Children returns the IDs of stages that list id as a parent. Validate
// must have been called for the child index to be populated.
func (g *Graph) Children(id StageID) []StageID {
	return append([]StageID(nil), g.children[id]...)
}

// ChildrenView returns id's child index slice WITHOUT copying. Callers
// must treat it as read-only; Validate must have run for the index to be
// populated. Same hot-path rationale as StagesView.
func (g *Graph) ChildrenView(id StageID) []StageID { return g.children[id] }

// Validate checks referential integrity and acyclicity and (re)builds the
// child index. It must be called after the last AddStage and before any
// analysis method. Once a graph has validated, further calls are read-only
// no-ops until the next AddStage.
func (g *Graph) Validate() error {
	if g.validated {
		return nil
	}
	children := make(map[StageID][]StageID, len(g.stages))
	for _, id := range g.order {
		for _, p := range g.stages[id].Parents {
			if _, ok := g.stages[p]; !ok {
				return fmt.Errorf("%w: stage %d references parent %d", ErrUnknownStage, id, p)
			}
			children[p] = append(children[p], id)
		}
	}
	g.children = children
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	g.validated = true
	return nil
}

// TopoSort returns the stage IDs in a topological order (parents before
// children). Ties are broken by insertion order so the result is
// deterministic. Returns ErrCycle if the graph is cyclic.
func (g *Graph) TopoSort() ([]StageID, error) {
	indeg := make(map[StageID]int, len(g.stages))
	for _, id := range g.order {
		indeg[id] = len(g.stages[id].Parents)
	}
	// Ready queue kept in insertion order for determinism.
	var ready []StageID
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	out := make([]StageID, 0, len(g.stages))
	pos := make(map[StageID]int, len(g.stages))
	for i, id := range g.order {
		pos[id] = i
	}
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		next := g.children[id]
		var newly []StageID
		for _, c := range next {
			indeg[c]--
			if indeg[c] == 0 {
				newly = append(newly, c)
			}
		}
		sort.Slice(newly, func(a, b int) bool { return pos[newly[a]] < pos[newly[b]] })
		ready = append(ready, newly...)
	}
	if len(out) != len(g.stages) {
		return nil, ErrCycle
	}
	return out, nil
}

// Roots returns stages with no parents, in insertion order.
func (g *Graph) Roots() []StageID {
	var out []StageID
	for _, id := range g.order {
		if len(g.stages[id].Parents) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Leaves returns stages with no children, in insertion order.
func (g *Graph) Leaves() []StageID {
	var out []StageID
	for _, id := range g.order {
		if len(g.children[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Clone returns a deep copy of the graph (child index included if built).
func (g *Graph) Clone() *Graph {
	ng := New()
	for _, id := range g.order {
		ng.MustAdd(*g.stages[id])
	}
	for id, cs := range g.children {
		ng.children[id] = append([]StageID(nil), cs...)
	}
	return ng
}
