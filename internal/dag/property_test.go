package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random acyclic graph on n stages: each stage may only
// depend on lower-numbered stages, so acyclicity holds by construction.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		var par []StageID
		for j := 0; j < i; j++ {
			if rng.Float64() < 0.25 {
				par = append(par, StageID(j))
			}
		}
		g.MustAdd(Stage{ID: StageID(i), Parents: par})
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

func TestPropertyTopoSortIsPermutation(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%40) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		topo, err := g.TopoSort()
		if err != nil {
			return false
		}
		seen := map[StageID]bool{}
		for _, id := range topo {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(topo) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTopoRespectsEdges(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%40) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		topo, _ := g.TopoSort()
		pos := map[StageID]int{}
		for i, id := range topo {
			pos[id] = i
		}
		for _, id := range g.Stages() {
			for _, p := range g.Parents(id) {
				if pos[p] >= pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Reachability must be consistent with a brute-force DFS.
func TestPropertyReachabilityMatchesDFS(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%25) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		r, err := NewReachability(g)
		if err != nil {
			return false
		}
		var dfs func(from, to StageID, seen map[StageID]bool) bool
		dfs = func(from, to StageID, seen map[StageID]bool) bool {
			if seen[from] {
				return false
			}
			seen[from] = true
			for _, c := range g.Children(from) {
				if c == to || dfs(c, to, seen) {
					return true
				}
			}
			return false
		}
		for _, a := range g.Stages() {
			for _, b := range g.Stages() {
				want := a != b && dfs(a, b, map[StageID]bool{})
				if r.Reaches(a, b) != want {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Concurrency must be symmetric and irreflexive.
func TestPropertyConcurrentSymmetric(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%30) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		r, _ := NewReachability(g)
		for _, a := range g.Stages() {
			if r.Concurrent(a, a) {
				return false
			}
			for _, b := range g.Stages() {
				if r.Concurrent(a, b) != r.Concurrent(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Every stage in the parallel set must appear in at least one execution
// path, every path must be a chain (each stage reaches the next), and every
// path stage must be in K.
func TestPropertyPathsCoverK(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%35) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		r, _ := NewReachability(g)
		k := ParallelStages(g, r)
		paths := ExecutionPaths(g, r, nil)
		inK := map[StageID]bool{}
		for _, id := range k {
			inK[id] = true
		}
		covered := map[StageID]bool{}
		for _, p := range paths {
			for i, s := range p.Stages {
				if !inK[s] {
					return false
				}
				covered[s] = true
				if i > 0 && !r.Reaches(p.Stages[i-1], s) {
					return false
				}
			}
		}
		for _, id := range k {
			if !covered[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The concurrency degree computed via bitsets must equal the brute-force
// pairwise count.
func TestPropertyConcurrencyDegree(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%25) + 1
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		r, _ := NewReachability(g)
		for _, a := range g.Stages() {
			cnt := 0
			for _, b := range g.Stages() {
				if r.Concurrent(a, b) {
					cnt++
				}
			}
			if r.ConcurrencyDegree(a) != cnt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// CriticalPath weight must be ≥ any root-to-leaf chain found by random walk.
func TestPropertyCriticalPathIsMax(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz%25) + 2
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, n)
		w := map[StageID]float64{}
		for _, id := range g.Stages() {
			w[id] = 1 + rng.Float64()*10
		}
		wf := func(id StageID) float64 { return w[id] }
		_, best := CriticalPath(g, wf)
		// Random chains must never exceed the critical weight.
		for trial := 0; trial < 20; trial++ {
			roots := g.Roots()
			cur := roots[rng.Intn(len(roots))]
			total := wf(cur)
			for {
				cs := g.Children(cur)
				if len(cs) == 0 {
					break
				}
				cur = cs[rng.Intn(len(cs))]
				total += wf(cur)
			}
			if total > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
