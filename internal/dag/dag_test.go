package dag

import (
	"errors"
	"testing"
)

// chain builds 0→1→…→n-1 (each depends on the previous).
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		var par []StageID
		if i > 0 {
			par = []StageID{StageID(i - 1)}
		}
		g.MustAdd(Stage{ID: StageID(i), Parents: par})
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

// fig7 builds the paper's Fig. 7 DAG: 1→3, 2→3, 4 independent, 5 after 3&4.
func fig7(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.MustAdd(Stage{ID: 1, Name: "s1"})
	g.MustAdd(Stage{ID: 2, Name: "s2"})
	g.MustAdd(Stage{ID: 3, Name: "s3", Parents: []StageID{1, 2}})
	g.MustAdd(Stage{ID: 4, Name: "s4"})
	g.MustAdd(Stage{ID: 5, Name: "s5", Parents: []StageID{3, 4}})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func reach(t *testing.T, g *Graph) *Reachability {
	t.Helper()
	r, err := NewReachability(g)
	if err != nil {
		t.Fatalf("NewReachability: %v", err)
	}
	return r
}

func TestAddStageDuplicate(t *testing.T) {
	g := New()
	g.MustAdd(Stage{ID: 1})
	if err := g.AddStage(Stage{ID: 1}); !errors.Is(err, ErrDuplicateStage) {
		t.Fatalf("want ErrDuplicateStage, got %v", err)
	}
}

func TestValidateUnknownParent(t *testing.T) {
	g := New()
	g.MustAdd(Stage{ID: 1, Parents: []StageID{99}})
	if err := g.Validate(); !errors.Is(err, ErrUnknownStage) {
		t.Fatalf("want ErrUnknownStage, got %v", err)
	}
}

func TestValidateCycle(t *testing.T) {
	g := New()
	g.MustAdd(Stage{ID: 1, Parents: []StageID{2}})
	g.MustAdd(Stage{ID: 2, Parents: []StageID{1}})
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

func TestValidateSelfCycle(t *testing.T) {
	g := New()
	g.MustAdd(Stage{ID: 1, Parents: []StageID{1}})
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

func TestTopoSortRespectsDependencies(t *testing.T) {
	g := fig7(t)
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[StageID]int{}
	for i, id := range topo {
		pos[id] = i
	}
	for _, id := range g.Stages() {
		for _, p := range g.Parents(id) {
			if pos[p] >= pos[id] {
				t.Errorf("parent %d at %d not before child %d at %d", p, pos[p], id, pos[id])
			}
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := fig7(t)
	a, _ := g.TopoSort()
	b, _ := g.TopoSort()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic topo sort: %v vs %v", a, b)
		}
	}
}

func TestRootsLeaves(t *testing.T) {
	g := fig7(t)
	roots := g.Roots()
	if len(roots) != 3 {
		t.Fatalf("want 3 roots (1,2,4), got %v", roots)
	}
	leaves := g.Leaves()
	if len(leaves) != 1 || leaves[0] != 5 {
		t.Fatalf("want leaf [5], got %v", leaves)
	}
}

func TestChildrenIndex(t *testing.T) {
	g := fig7(t)
	cs := g.Children(1)
	if len(cs) != 1 || cs[0] != 3 {
		t.Fatalf("children(1) = %v, want [3]", cs)
	}
	if got := g.Children(5); len(got) != 0 {
		t.Fatalf("children(5) = %v, want empty", got)
	}
}

func TestReachability(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	cases := []struct {
		a, b StageID
		want bool
	}{
		{1, 3, true}, {2, 3, true}, {1, 5, true}, {4, 5, true},
		{3, 1, false}, {1, 2, false}, {1, 4, false}, {3, 4, false},
	}
	for _, c := range cases {
		if got := r.Reaches(c.a, c.b); got != c.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestConcurrent(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	if !r.Concurrent(1, 2) || !r.Concurrent(3, 4) || !r.Concurrent(1, 4) {
		t.Error("expected 1∥2, 3∥4, 1∥4")
	}
	if r.Concurrent(1, 3) || r.Concurrent(5, 1) || r.Concurrent(2, 2) {
		t.Error("1-3, 5-1, 2-2 must not be concurrent")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	anc := r.Ancestors(5)
	if len(anc) != 4 {
		t.Fatalf("ancestors(5) = %v, want 4 stages", anc)
	}
	desc := r.Descendants(1)
	if len(desc) != 2 { // 3 and 5
		t.Fatalf("descendants(1) = %v, want [3 5]", desc)
	}
}

func TestConcurrencyDegree(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	// Stage 5 is ordered after everything: degree 0.
	if d := r.ConcurrencyDegree(5); d != 0 {
		t.Errorf("degree(5) = %d, want 0", d)
	}
	// Stage 4 is concurrent with 1, 2, 3.
	if d := r.ConcurrencyDegree(4); d != 3 {
		t.Errorf("degree(4) = %d, want 3", d)
	}
	// Stage 1 is concurrent with 2 and 4.
	if d := r.ConcurrencyDegree(1); d != 2 {
		t.Errorf("degree(1) = %d, want 2", d)
	}
}

func TestParallelStagesFig7(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	k := ParallelStages(g, r)
	want := map[StageID]bool{1: true, 2: true, 3: true, 4: true}
	if len(k) != 4 {
		t.Fatalf("K = %v, want {1,2,3,4}", k)
	}
	for _, id := range k {
		if !want[id] {
			t.Errorf("unexpected stage %d in K", id)
		}
	}
}

func TestParallelStagesChainEmpty(t *testing.T) {
	g := chain(t, 5)
	r := reach(t, g)
	if k := ParallelStages(g, r); len(k) != 0 {
		t.Fatalf("chain has no parallel stages, got %v", k)
	}
}

// TestExecutionPathsFig7 checks the decomposition matches the paper exactly:
// P1={1,3}, P2={2,3}, P3={4} under the paper's weights t1=20,t2=10,t3=30,t4=20.
func TestExecutionPathsFig7(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	w := map[StageID]float64{1: 20, 2: 10, 3: 30, 4: 20, 5: 10}
	wf := func(id StageID) float64 { return w[id] }
	paths := ExecutionPaths(g, r, wf)
	if len(paths) != 3 {
		t.Fatalf("got %d paths %v, want 3", len(paths), paths)
	}
	SortPathsDescending(paths, wf)
	// Descending: {1,3}=50, {2,3}=40, {4}=20.
	wantPaths := [][]StageID{{1, 3}, {2, 3}, {4}}
	for i, wp := range wantPaths {
		got := paths[i].Stages
		if len(got) != len(wp) {
			t.Fatalf("path %d = %v, want %v", i, got, wp)
		}
		for j := range wp {
			if got[j] != wp[j] {
				t.Fatalf("path %d = %v, want %v", i, got, wp)
			}
		}
	}
}

func TestSortPathsAscending(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	w := map[StageID]float64{1: 20, 2: 10, 3: 30, 4: 20, 5: 10}
	wf := func(id StageID) float64 { return w[id] }
	paths := ExecutionPaths(g, r, wf)
	SortPathsAscending(paths, wf)
	if PathWeight(paths[0], wf) > PathWeight(paths[len(paths)-1], wf) {
		t.Fatal("ascending sort produced descending order")
	}
	if paths[0].Stages[0] != 4 {
		t.Fatalf("lightest path should be {4}, got %v", paths[0].Stages)
	}
}

func TestCriticalPathFig7(t *testing.T) {
	g := fig7(t)
	w := map[StageID]float64{1: 20, 2: 10, 3: 30, 4: 20, 5: 10}
	p, total := CriticalPath(g, func(id StageID) float64 { return w[id] })
	if total != 60 { // 1(20) → 3(30) → 5(10)
		t.Fatalf("critical path weight = %v, want 60 (%v)", total, p.Stages)
	}
	if len(p.Stages) != 3 || p.Stages[0] != 1 || p.Stages[2] != 5 {
		t.Fatalf("critical path = %v, want [1 3 5]", p.Stages)
	}
}

func TestCriticalPathChain(t *testing.T) {
	g := chain(t, 4)
	p, total := CriticalPath(g, nil)
	if total != 4 || len(p.Stages) != 4 {
		t.Fatalf("chain critical path = %v (w=%v), want all 4 stages", p.Stages, total)
	}
}

func TestExecutionPathsNilWeight(t *testing.T) {
	g := fig7(t)
	r := reach(t, g)
	paths := ExecutionPaths(g, r, nil)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := fig7(t)
	c := g.Clone()
	c.MustAdd(Stage{ID: 99})
	if g.Len() == c.Len() {
		t.Fatal("mutating clone affected original")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone validate: %v", err)
	}
}

func TestDiamond(t *testing.T) {
	// 1 → {2,3} → 4: classic diamond; 2 and 3 are the only parallel stages.
	g := New()
	g.MustAdd(Stage{ID: 1})
	g.MustAdd(Stage{ID: 2, Parents: []StageID{1}})
	g.MustAdd(Stage{ID: 3, Parents: []StageID{1}})
	g.MustAdd(Stage{ID: 4, Parents: []StageID{2, 3}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	r := reach(t, g)
	k := ParallelStages(g, r)
	if len(k) != 2 {
		t.Fatalf("diamond K = %v, want {2,3}", k)
	}
	paths := ExecutionPaths(g, r, nil)
	if len(paths) != 2 || len(paths[0].Stages) != 1 || len(paths[1].Stages) != 1 {
		t.Fatalf("diamond paths = %v, want [{2},{3}]", paths)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo, err := g.TopoSort(); err != nil || len(topo) != 0 {
		t.Fatalf("empty topo = %v, %v", topo, err)
	}
	r := reach(t, g)
	if k := ParallelStages(g, r); k != nil {
		t.Fatalf("empty K = %v", k)
	}
	if p := ExecutionPaths(g, r, nil); p != nil {
		t.Fatalf("empty paths = %v", p)
	}
}
