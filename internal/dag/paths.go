package dag

import "sort"

// ParallelStages returns the parallel-stage set K of the paper (Sec. 2.1):
// every stage that can execute in parallel with at least one other stage in
// the DAG, i.e. whose concurrency degree is ≥ 1. The result is in
// topological order.
func ParallelStages(g *Graph, r *Reachability) []StageID {
	topo, err := g.TopoSort()
	if err != nil {
		return nil
	}
	var out []StageID
	for _, id := range topo {
		if r.ConcurrencyDegree(id) >= 1 {
			out = append(out, id)
		}
	}
	return out
}

// Path is one execution path P_m: a chain of stages executed sequentially
// (each a DAG-ancestor of the next).
type Path struct {
	Stages []StageID
}

// ExecutionPaths decomposes the parallel-stage set K into execution paths
// exactly as Fig. 7 of the paper illustrates: one path per *source* stage
// of the subgraph induced by K (a source has no parent inside K), extended
// greedily through the child with the largest remaining weight. weight
// gives each stage's estimated solo execution time t̂_k; pass nil to weight
// every stage equally.
//
// For Fig. 7 (edges 1→3, 2→3; 4 isolated; 5 after all) this yields
// P1={1,3}, P2={2,3}, P3={4} — stage 3 appears in two paths, as in the
// paper, and Alg. 1's "skip already-scheduled stages" handles the repeat.
func ExecutionPaths(g *Graph, r *Reachability, weight func(StageID) float64) []Path {
	k := ParallelStages(g, r)
	if len(k) == 0 {
		return nil
	}
	inK := make(map[StageID]bool, len(k))
	for _, id := range k {
		inK[id] = true
	}
	w := weight
	if w == nil {
		w = func(StageID) float64 { return 1 }
	}
	// down[s] = total weight of the heaviest chain starting at s inside K.
	topo, _ := g.TopoSort()
	down := make(map[StageID]float64, len(k))
	next := make(map[StageID]StageID, len(k))
	for i := len(topo) - 1; i >= 0; i-- {
		s := topo[i]
		if !inK[s] {
			continue
		}
		best, bestID, has := 0.0, StageID(0), false
		for _, c := range g.children[s] {
			if inK[c] && (!has || down[c] > best) {
				best, bestID, has = down[c], c, true
			}
		}
		down[s] = w(s)
		if has {
			down[s] += best
			next[s] = bestID
		}
	}
	covered := make(map[StageID]bool, len(k))
	emit := func(s StageID) Path {
		var chainIDs []StageID
		cur, ok := s, true
		for ok {
			chainIDs = append(chainIDs, cur)
			covered[cur] = true
			cur, ok = next[cur]
		}
		return Path{Stages: chainIDs}
	}
	var paths []Path
	for _, s := range k { // topological order ⇒ sources come first per branch
		isSource := true
		for _, p := range g.stages[s].Parents {
			if inK[p] {
				isSource = false
				break
			}
		}
		if !isSource {
			continue
		}
		paths = append(paths, emit(s))
	}
	// Coverage pass: heaviest-chain selection can skip siblings (a diamond
	// inside K leaves one branch uncovered). Every stage in K must appear in
	// some path or Alg. 1 would never schedule it.
	for _, s := range k { // topological order keeps added paths chain-maximal
		if !covered[s] {
			paths = append(paths, emit(s))
		}
	}
	return paths
}

// PathWeight returns the total weight of a path under the given weight
// function (nil counts stages).
func PathWeight(p Path, weight func(StageID) float64) float64 {
	if weight == nil {
		return float64(len(p.Stages))
	}
	t := 0.0
	for _, s := range p.Stages {
		t += weight(s)
	}
	return t
}

// SortPathsDescending orders paths by decreasing weight (the DelayStage
// default), breaking ties by first stage ID for determinism.
func SortPathsDescending(paths []Path, weight func(StageID) float64) {
	sort.SliceStable(paths, func(i, j int) bool {
		wi, wj := PathWeight(paths[i], weight), PathWeight(paths[j], weight)
		if wi != wj {
			return wi > wj
		}
		return paths[i].Stages[0] < paths[j].Stages[0]
	})
}

// SortPathsAscending orders paths by increasing weight (the "ascending
// DelayStage" variant of Sec. 5.3).
func SortPathsAscending(paths []Path, weight func(StageID) float64) {
	sort.SliceStable(paths, func(i, j int) bool {
		wi, wj := PathWeight(paths[i], weight), PathWeight(paths[j], weight)
		if wi != wj {
			return wi < wj
		}
		return paths[i].Stages[0] < paths[j].Stages[0]
	})
}

// CriticalPath returns the heaviest root-to-leaf chain of the *whole* DAG
// and its total weight — the lower bound on job completion time when every
// stage runs uncontended.
func CriticalPath(g *Graph, weight func(StageID) float64) (Path, float64) {
	w := weight
	if w == nil {
		w = func(StageID) float64 { return 1 }
	}
	topo, err := g.TopoSort()
	if err != nil {
		return Path{}, 0
	}
	down := make(map[StageID]float64, len(topo))
	next := make(map[StageID]StageID, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		s := topo[i]
		best, bestID, has := 0.0, StageID(0), false
		for _, c := range g.children[s] {
			if !has || down[c] > best {
				best, bestID, has = down[c], c, true
			}
		}
		down[s] = w(s)
		if has {
			down[s] += best
			next[s] = bestID
		}
	}
	bestStart, bestW, has := StageID(0), 0.0, false
	for _, s := range g.Roots() {
		if !has || down[s] > bestW {
			bestStart, bestW, has = s, down[s], true
		}
	}
	if !has {
		return Path{}, 0
	}
	var chain []StageID
	cur, ok := bestStart, true
	for ok {
		chain = append(chain, cur)
		cur, ok = next[cur]
	}
	return Path{Stages: chain}, bestW
}
