package experiments

import (
	"math"
	"math/rand"

	"delaystage/internal/faults"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// FaultPoint is one cell of the fault sweep: the injected severity plus
// the measured JCT of every strategy on every workload.
type FaultPoint struct {
	FailProb        float64
	StragglerFrac   float64
	StragglerFactor float64
	// CrashFrac > 0 crashes node 1 at CrashFrac × the workload's
	// fault-free Spark JCT.
	CrashFrac float64
	// JCT[workload][strategy] in seconds. Strategies: "spark",
	// "delaystage", "guarded".
	JCT map[string]map[string]float64
}

// MachinePoint is one cell of the machine-level sweep: hash-based node
// crashes (an MTTF process), persistently slow machines, and the
// mitigation stack (speculation + blacklisting) off or on. The same
// injector seed is used for both mitigation settings, so each on/off pair
// faces the identical fault draws.
type MachinePoint struct {
	// MTTFFrac expresses NodeMTTF as a multiple of the workload's
	// fault-free Spark JCT (0 = no MTTF crash process), keeping the
	// expected crash count invariant under cfg.Scale.
	MTTFFrac       float64
	SlowNodeFrac   float64
	SlowNodeFactor float64
	Mitigation     bool
	// JCT[workload][strategy] in seconds; +Inf marks a job that exhausted
	// its retry budget and failed.
	JCT map[string]map[string]float64
}

// FaultSweepResult is the full grid.
type FaultSweepResult struct {
	Points []FaultPoint
	// MachinePoints is the machine-level axis: MTTF crashes × slow
	// machines × mitigation on/off.
	MachinePoints []MachinePoint
	// MispredictNoise is the planning-time profile error applied to the
	// DelayStage variants (spark plans nothing, so it is immune).
	MispredictNoise float64
}

// faultSweepGrid is the swept (failure rate, straggler severity, node
// crash) grid. crashFrac > 0 crashes node 1 at that fraction of the
// workload's fault-free Spark JCT — late enough that stock Spark has
// consumed most parent outputs, so the recomputation bill lands hardest
// on plans still holding stages back.
var faultSweepGrid = []struct {
	failProb, frac, factor, crashFrac float64
}{
	{0, 0, 1, 0},
	{0.05, 0, 1, 0},
	{0.15, 0, 1, 0},
	{0, 0.25, 3, 0},
	{0.05, 0.25, 3, 0},
	{0.15, 0.25, 3, 0},
	{0, 0, 1, 0.65},
	{0.05, 0.25, 3, 0.55},
}

// FaultSweep measures how the strategies degrade when the perfect-world
// assumptions behind Alg. 1 break: profiled R_k/s_k/d_k are wrong at
// planning time (misprediction noise), and at runtime tasks fail and
// partitions straggle. Stock Spark plans nothing, so it only pays the
// faults; open-loop DelayStage additionally pays for delays computed from
// stale numbers; guarded DelayStage watches the plan and degrades to
// submit-when-ready the moment it stops tracking reality. The paper's
// never-worse claim (Sec. 4) only survives faults in the guarded form —
// this sweep is the evidence.
func FaultSweep(cfg Config) (*FaultSweepResult, error) {
	cfg.defaults()
	c := cfg.cluster()
	jobs := workload.PaperWorkloads(c, cfg.Scale)
	out := &FaultSweepResult{MispredictNoise: 0.5}

	// Planning sees noisy profiles: one seeded rng, workloads in fixed
	// order, so the whole sweep reproduces from cfg.Seed.
	rng := rand.New(rand.NewSource(cfg.Seed))
	noise, err := faults.NewInjector(faults.FaultPlan{Seed: cfg.Seed, MispredictNoise: out.MispredictNoise})
	if err != nil {
		return nil, err
	}
	type planned struct {
		believed *workload.Job // the noisy job the planner saw
		ds       scheduler.Plan
		// primer shares the plan's predicted timelines and the replan
		// cache across the grid cells' per-run watchdogs (nil when the
		// plan delays nothing).
		primer *scheduler.GuardPrimer
	}
	plans := map[string]planned{}
	cleanJCT := map[string]float64{}
	for _, name := range workloadNames {
		believed := noise.PerturbJob(rng, jobs[name])
		ds, err := scheduler.DelayStage{}.Plan(c, believed)
		if err != nil {
			return nil, err
		}
		primer, err := scheduler.GuardedDelayStage{}.Primer(c, believed, ds)
		if err != nil {
			return nil, err
		}
		plans[name] = planned{believed: believed, ds: ds, primer: primer}
		clean, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
			[]sim.JobRun{{Job: jobs[name]}})
		if err != nil {
			return nil, err
		}
		cleanJCT[name] = clean.JCT(0)
	}

	fprintf(cfg.W, "FAULT sweep: JCT (s) under task failures and stragglers, planning noise ±%.0f%%\n",
		100*out.MispredictNoise)
	fprintf(cfg.W, "%-26s %-10s %-10s %-10s %-10s\n", "point / workload", "spark", "delaystage", "guarded", "guard-win%")

	// Every (grid point, workload) cell derives its fault set from
	// cfg.Seed + pi*101 and reads only the sequentially-computed plans
	// above, so the grid fans out; rows are collected indexed and rendered
	// in the original order afterwards.
	rows := make([]map[string]float64, len(faultSweepGrid)*len(workloadNames))
	err = cfg.forEach(len(rows), func(ci int) error {
		pi := ci / len(workloadNames)
		g := faultSweepGrid[pi]
		name := workloadNames[ci%len(workloadNames)]
		job := jobs[name]
		pl := plans[name]
		row := map[string]float64{}
		var crashes []faults.NodeCrash
		if g.crashFrac > 0 {
			crashes = []faults.NodeCrash{{Node: 1, At: g.crashFrac * cleanJCT[name]}}
		}
		for _, label := range []string{"spark", "delaystage", "guarded"} {
			// The same hash-seeded injector for all strategies: every
			// run sees the identical fault set.
			inj, err := faults.NewInjector(faults.FaultPlan{
				Seed:            cfg.Seed + int64(pi)*101,
				TaskFailureProb: g.failProb,
				StragglerFrac:   g.frac,
				StragglerFactor: g.factor,
				Crashes:         crashes,
			})
			if err != nil {
				return err
			}
			opt := sim.Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 8}
			run := sim.JobRun{Job: job}
			switch label {
			case "delaystage":
				run.Delays = pl.ds.Delays
			case "guarded":
				run.Delays = pl.ds.Delays
				// Guards are stateful: a fresh one per run, drawn from the
				// shared primer (predictions computed once per workload,
				// replans memoized across cells).
				if pl.primer != nil {
					opt.Watchdog = pl.primer.Watchdog()
				}
			}
			res, err := sim.Run(opt, []sim.JobRun{run})
			if err != nil {
				return err
			}
			if ferr := res.Failed(0); ferr != nil {
				return ferr
			}
			row[label] = res.JCT(0)
		}
		rows[ci] = row
		return nil
	})
	if err != nil {
		return nil, err
	}

	for pi, g := range faultSweepGrid {
		pt := FaultPoint{FailProb: g.failProb, StragglerFrac: g.frac, StragglerFactor: g.factor,
			CrashFrac: g.crashFrac, JCT: map[string]map[string]float64{}}
		fprintf(cfg.W, "fail=%.2f straggle=%.2fx%g crash=%.2f\n", g.failProb, g.frac, g.factor, g.crashFrac)
		for wi, name := range workloadNames {
			row := rows[pi*len(workloadNames)+wi]
			pt.JCT[name] = row
			win := 100 * (row["spark"] - row["guarded"]) / row["spark"]
			fprintf(cfg.W, "  %-24s %-10.1f %-10.1f %-10.1f %+.1f\n",
				name, row["spark"], row["delaystage"], row["guarded"], win)
		}
		out.Points = append(out.Points, pt)
	}

	// Machine-level axis: whole machines die on a hash-based MTTF process
	// or run persistently slow, with the mitigation stack off and on. The
	// horizon is capped well below the run's length: an open-ended crash
	// process feeds back through blacklisting (longer run → more crashes →
	// fewer nodes → longer run) and measures the feedback loop, not the
	// scheduler.
	fprintf(cfg.W, "MACHINE sweep: node crashes (MTTF) and slow machines; mitigation = speculation + blacklisting\n")
	fprintf(cfg.W, "%-26s %-10s %-10s %-10s %-10s\n", "point / workload", "spark", "delaystage", "guarded", "guard-win%")
	mrows := make([]map[string]float64, len(machineSweepGrid)*2*len(workloadNames))
	err = cfg.forEach(len(mrows), func(ci int) error {
		pi := ci / (2 * len(workloadNames))
		mitigate := ci/len(workloadNames)%2 == 1
		g := machineSweepGrid[pi]
		name := workloadNames[ci%len(workloadNames)]
		pl := plans[name]
		row := map[string]float64{}
		for _, label := range []string{"spark", "delaystage", "guarded"} {
			// One seed per (point, workload): the on/off mitigation pair
			// and all three strategies face identical fault draws.
			inj, err := faults.NewInjector(faults.FaultPlan{
				Seed:           cfg.Seed + int64(pi)*211 + 7,
				NodeMTTF:       g.mttfFrac * cleanJCT[name],
				MTTFHorizon:    0.35 * cleanJCT[name],
				SlowNodeFrac:   g.slowFrac,
				SlowNodeFactor: g.slowFactor,
			})
			if err != nil {
				return err
			}
			opt := sim.Options{Cluster: c, TrackNode: -1, Faults: inj, MaxAttempts: 8}
			if mitigate {
				opt.Speculation = true
				opt.BlacklistAfter = 2
			}
			run := sim.JobRun{Job: jobs[name]}
			switch label {
			case "delaystage":
				run.Delays = pl.ds.Delays
			case "guarded":
				run.Delays = pl.ds.Delays
				if pl.primer != nil {
					opt.Watchdog = pl.primer.Watchdog()
				}
			}
			res, err := sim.Run(opt, []sim.JobRun{run})
			if err != nil {
				return err
			}
			if res.Failed(0) != nil {
				// A job that exhausted its retry budget is a data point,
				// not an experiment error: machines died under it.
				row[label] = math.Inf(1)
				continue
			}
			row[label] = res.JCT(0)
		}
		mrows[ci] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, g := range machineSweepGrid {
		for half, mitigate := range []bool{false, true} {
			mit := "off"
			if mitigate {
				mit = "on"
			}
			pt := MachinePoint{MTTFFrac: g.mttfFrac, SlowNodeFrac: g.slowFrac,
				SlowNodeFactor: g.slowFactor, Mitigation: mitigate,
				JCT: map[string]map[string]float64{}}
			fprintf(cfg.W, "mttf=%.1fxJCT slow=%.2fx%g mitigation=%s\n", g.mttfFrac, g.slowFrac, g.slowFactor, mit)
			for wi, name := range workloadNames {
				row := mrows[(pi*2+half)*len(workloadNames)+wi]
				pt.JCT[name] = row
				win := 100 * (row["spark"] - row["guarded"]) / row["spark"]
				fprintf(cfg.W, "  %-24s %-10.1f %-10.1f %-10.1f %+.1f\n",
					name, row["spark"], row["delaystage"], row["guarded"], win)
			}
			out.MachinePoints = append(out.MachinePoints, pt)
		}
	}
	return out, nil
}

// machineSweepGrid is the machine-level severity grid; each point runs
// with mitigation off and on.
var machineSweepGrid = []struct {
	mttfFrac, slowFrac, slowFactor float64
}{
	{1.5, 0, 1},
	{0, 0.25, 3},
	{1.5, 0.25, 3},
}
