package experiments

import (
	"delaystage/internal/cluster"
	"delaystage/internal/geo"
	"delaystage/internal/workload"
)

// GeoRow is one WAN-bandwidth point of the geo-extension experiment.
type GeoRow struct {
	WANMBps    float64
	StockJCT   float64
	DelayJCT   float64
	GainP      float64
	WANUtilP   float64 // WAN utilization under DelayStage
	DelayCount int
}

// GeoResult carries the geo-extension sweep.
type GeoResult struct {
	Rows []GeoRow
}

// GeoExtension evaluates the Sec. 6 future-work direction the repo
// implements: DelayStage on a geo-distributed TriangleCount spread over
// three datacenters, swept across WAN bandwidths. The interesting shape:
// at generous WAN the gains approach the single-cluster ones; as WAN
// becomes the single bottleneck, every schedule serializes on it and the
// delay gains shrink — delaying cannot create bandwidth.
func GeoExtension(cfg Config) (*GeoResult, error) {
	cfg.defaults()
	dc := cluster.Node{ID: 0, Executors: 32, NetBW: cluster.MBps(10000), DiskBW: cluster.MBps(2000)}
	ref := &cluster.Cluster{Nodes: []cluster.Node{dc}}
	wl := workload.TriangleCount(ref, 0.3*cfg.Scale)
	placement, err := geo.SpreadPlacement(wl, 3)
	if err != nil {
		return nil, err
	}
	job := &geo.Job{Workload: wl, Placement: placement}

	out := &GeoResult{}
	for _, wan := range []float64{2000, 800, 400, 150} {
		topo := geo.UniformWAN(3, dc, cluster.MBps(wan))
		stock, err := geo.Run(geo.Options{Topology: topo}, job, nil)
		if err != nil {
			return nil, err
		}
		sched, err := geo.ComputeDelays(geo.DelayOptions{Topology: topo, MaxCandidates: 16}, job)
		if err != nil {
			return nil, err
		}
		delayed, err := geo.Run(geo.Options{Topology: topo}, job, sched.Delays)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, GeoRow{
			WANMBps:    wan,
			StockJCT:   stock.JCT,
			DelayJCT:   delayed.JCT,
			GainP:      100 * (stock.JCT - delayed.JCT) / stock.JCT,
			WANUtilP:   delayed.AvgWANUtil * 100,
			DelayCount: len(sched.Delays),
		})
	}
	fprintf(cfg.W, "== Geo extension (Sec. 6 future work): TriangleCount over 3 DCs ==\n")
	fprintf(cfg.W, "%12s %12s %12s %8s %10s %8s\n", "WAN MB/s", "stock JCT", "delay JCT", "gain", "WAN util", "#delays")
	for _, r := range out.Rows {
		fprintf(cfg.W, "%12.0f %11.1fs %11.1fs %7.1f%% %9.1f%% %8d\n",
			r.WANMBps, r.StockJCT, r.DelayJCT, r.GainP, r.WANUtilP, r.DelayCount)
	}
	fprintf(cfg.W, "(not in the paper — its Sec. 6 commits to this extension; gains shrink as the WAN becomes the lone bottleneck)\n\n")

	// Placement × delays: the Sec. 6 "incorporate DelayStage into the
	// placement works" combination, at one WAN setting.
	topo := geo.UniformWAN(3, dc, cluster.MBps(400))
	fprintf(cfg.W, "placement × delays at WAN 400 MB/s:\n")
	fprintf(cfg.W, "%-20s %12s %12s %14s\n", "placement", "plain JCT", "+delays", "WAN bytes (GB)")
	for _, name := range geo.PlacementNames() {
		p, err := geo.BuildPlacement(name, topo, wl)
		if err != nil {
			return nil, err
		}
		gj := &geo.Job{Workload: wl, Placement: p}
		plain, err := geo.Run(geo.Options{Topology: topo}, gj, nil)
		if err != nil {
			return nil, err
		}
		sched, err := geo.ComputeDelays(geo.DelayOptions{Topology: topo, MaxCandidates: 16}, gj)
		if err != nil {
			return nil, err
		}
		delayed, err := geo.Run(geo.Options{Topology: topo}, gj, sched.Delays)
		if err != nil {
			return nil, err
		}
		fprintf(cfg.W, "%-20s %11.1fs %11.1fs %14.1f\n",
			name, plain.JCT, delayed.JCT, float64(geo.WANBytes(topo, gj))/(1<<30))
	}
	fprintf(cfg.W, "\n")
	return out, nil
}
