package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The experiment grid must not depend on how many workers evaluate it:
// every stochastic draw happens sequentially up front and the cells are
// pure, so the rendered output AND the typed results must be byte-for-byte
// identical at parallelism 1 and N. The sweep covers each parallelized
// experiment, including FaultSweep cells with task failures, stragglers,
// and a node crash (the guarded-strategy path). Run with -race to also
// certify the fan-out is race-clean.
func TestParallelismByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep")
	}
	type run struct {
		name string
		do   func(Config) (interface{}, error)
	}
	runs := []run{
		{"Fig4", func(c Config) (interface{}, error) { return Fig4(c) }},
		{"Fig10", func(c Config) (interface{}, error) { return Fig10(c) }},
		{"Fig14", func(c Config) (interface{}, error) { return Fig14(c) }},
		{"FaultSweep", func(c Config) (interface{}, error) { return FaultSweep(c) }},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			var base []byte
			var baseText string
			for _, par := range []int{1, 8} {
				var w bytes.Buffer
				cfg := Config{Scale: 0.1, Nodes: 10, TraceJobs: 20, Reps: 2, Seed: 7,
					Parallelism: par, W: &w}
				res, err := r.do(cfg)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				buf, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if par == 1 {
					base, baseText = buf, w.String()
					continue
				}
				if !bytes.Equal(buf, base) {
					t.Errorf("parallelism %d: JSON result differs from sequential\nseq: %s\npar: %s", par, base, buf)
				}
				if w.String() != baseText {
					t.Errorf("parallelism %d: rendered output differs from sequential\nseq:\n%s\npar:\n%s", par, baseText, w.String())
				}
			}
		})
	}
}
