package experiments

import (
	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/metrics"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Fig5Result carries the motivation measurement of Fig. 5: one worker
// node's CPU utilization and network throughput while a stock-Spark ALS
// job runs on a three-node cluster.
type Fig5Result struct {
	CPU        []float64 // utilization fraction per bin
	NetMBps    []float64 // MB/s per bin
	BinSeconds float64
	JCT        float64
	NetIdleSec float64 // time with network ~idle while the job runs
	CPUIdleSec float64
}

// Fig5 reproduces Fig. 5.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg.defaults()
	c := cluster.NewM4LargeCluster(3)
	job := workload.ALS(c, cfg.Scale)
	res, _, err := runUnder(c, job, scheduler.Spark{}, sim.Options{TrackNode: 0})
	if err != nil {
		return nil, err
	}
	bin := res.JCT(0) / 70
	cpuPts := seriesToStepPoints(res.Node.CPUBusy)
	netPts := seriesToStepPoints(res.Node.NetRate)
	r := &Fig5Result{
		CPU:        metrics.ResampleStep(cpuPts, 0, res.JCT(0), bin),
		BinSeconds: bin,
		JCT:        res.JCT(0),
	}
	net := metrics.ResampleStep(netPts, 0, res.JCT(0), bin)
	for _, v := range net {
		r.NetMBps = append(r.NetMBps, mbps(v))
	}
	for i := range r.CPU {
		if r.CPU[i] < 0.05 {
			r.CPUIdleSec += bin
		}
		if r.NetMBps[i] < 0.5 {
			r.NetIdleSec += bin
		}
	}
	fprintf(cfg.W, "== Fig. 5: worker utilization, ALS on 3-node stock Spark ==\n")
	fprintf(cfg.W, "CPU %s\n", metrics.Sparkline(r.CPU))
	fprintf(cfg.W, "net %s\n", metrics.Sparkline(r.NetMBps))
	fprintf(cfg.W, "JCT %.0fs; network idle %.0fs, CPU idle %.0fs (paper: 58s and ~38s) — full-or-idle swings\n\n",
		r.JCT, r.NetIdleSec, r.CPUIdleSec)
	return r, nil
}

// Fig6Result carries the motivation comparison of Fig. 6: stock Spark vs
// delayed scheduling of the ALS job.
type Fig6Result struct {
	StockJCT, DelayedJCT   float64
	StockGantt, DelayGantt string
	Delays                 map[dag.StageID]float64
	CPUUtilStock           float64
	CPUUtilDelayed         float64
	NetMBpsStock           float64
	NetMBpsDelayed         float64
}

// Fig6 reproduces Fig. 6: the ALS timeline under stock Spark vs DelayStage
// delays, with the utilization and JCT improvements of Sec. 2.2.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg.defaults()
	c := cluster.NewM4LargeCluster(3)
	job := workload.ALS(c, cfg.Scale)

	stock, _, err := runUnder(c, job, scheduler.Spark{}, sim.Options{TrackNode: 0})
	if err != nil {
		return nil, err
	}
	sched, err := core.Compute(core.Options{Cluster: c}, job)
	if err != nil {
		return nil, err
	}
	delayed, err := sim.Run(sim.Options{Cluster: c, TrackNode: 0},
		[]sim.JobRun{{Job: job, Delays: sched.Delays}})
	if err != nil {
		return nil, err
	}
	r := &Fig6Result{
		StockJCT:   stock.JCT(0),
		DelayedJCT: delayed.JCT(0),
		StockGantt: ganttFromTimelines(stock, job),
		DelayGantt: ganttFromTimelines(delayed, job),
		Delays:     sched.Delays,
	}
	r.CPUUtilStock = stock.AvgCPUUtil
	r.CPUUtilDelayed = delayed.AvgCPUUtil
	r.NetMBpsStock = mbps(stock.AvgNetRate / 3)
	r.NetMBpsDelayed = mbps(delayed.AvgNetRate / 3)

	fprintf(cfg.W, "== Fig. 6: ALS motivation — stock vs delayed ==\n")
	fprintf(cfg.W, "(a) stock Spark (JCT %.0fs):\n%s", r.StockJCT, r.StockGantt)
	fprintf(cfg.W, "(b) DelayStage delays %v (JCT %.0fs, -%.1f%%):\n", delayedStages(sched.Delays),
		r.DelayedJCT, 100*(r.StockJCT-r.DelayedJCT)/r.StockJCT)
	fprintf(cfg.W, "%s", r.DelayGantt)
	fprintf(cfg.W, "avg CPU util %.1f%% → %.1f%%; avg net %.1f → %.1f MB/s per node\n",
		r.CPUUtilStock*100, r.CPUUtilDelayed*100, r.NetMBpsStock, r.NetMBpsDelayed)
	fprintf(cfg.W, "(paper: CPU 52.3%%→68.7%%, net 17.9→25.2 MB/s, JCT 133s→104s)\n\n")
	return r, nil
}
