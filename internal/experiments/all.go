package experiments

// Runner couples an experiment's registry name (the cmd/experiments -only
// key) with its entry point. Keeping the list here means All, the CLI
// subset flag, and the per-experiment timeout guard all agree on what
// exists. Run returns the experiment's typed result struct (for the
// machine-readable -json summary) alongside rendering text to cfg.W.
type Runner struct {
	Name string
	Run  func(Config) (any, error)
}

// Runners lists every experiment in paper order, followed by the
// extensions. Fig14 also renders Table 4, so All skips the standalone
// "table4" entry (it exists for -only).
func Runners() []Runner {
	return []Runner{
		{"fig2", func(cfg Config) (any, error) { return Fig2(cfg) }},
		{"fig3", func(cfg Config) (any, error) { return Fig3(cfg) }},
		{"fig4", func(cfg Config) (any, error) { return Fig4(cfg) }},
		{"fig5", func(cfg Config) (any, error) { return Fig5(cfg) }},
		{"fig6", func(cfg Config) (any, error) { return Fig6(cfg) }},
		{"fig10", func(cfg Config) (any, error) { return Fig10(cfg) }},
		{"fig11", func(cfg Config) (any, error) { return Fig11(cfg) }},
		{"fig12", func(cfg Config) (any, error) { return Fig12(cfg) }},
		{"fig13", func(cfg Config) (any, error) { return Fig13(cfg) }},
		{"fig14", func(cfg Config) (any, error) { return Fig14(cfg) }},
		{"fig15", func(cfg Config) (any, error) { return Fig15(cfg) }},
		{"fig16", func(cfg Config) (any, error) { return Fig16(cfg) }},
		{"fig17", func(cfg Config) (any, error) { return Fig17(cfg) }},
		{"table3", func(cfg Config) (any, error) { return Table3(cfg) }},
		{"table4", func(cfg Config) (any, error) { return Table4(cfg) }},
		{"a2", func(cfg Config) (any, error) { return AppendixA2(cfg) }},
		{"overhead", func(cfg Config) (any, error) { return Overhead(cfg) }},
		{"geo", func(cfg Config) (any, error) { return GeoExtension(cfg) }},
		{"online", func(cfg Config) (any, error) { return OnlineExtension(cfg) }},
		{"sensitivity", func(cfg Config) (any, error) { return Sensitivity(cfg) }},
		{"fault", func(cfg Config) (any, error) { return FaultSweep(cfg) }},
	}
}

// All runs every experiment in paper order, rendering to cfg.W. It returns
// the first error encountered.
func All(cfg Config) error {
	cfg.defaults()
	for _, r := range Runners() {
		if r.Name == "table4" { // rendered by fig14
			continue
		}
		if _, err := r.Run(cfg); err != nil {
			return err
		}
	}
	return nil
}
