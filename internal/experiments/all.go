package experiments

// All runs every experiment in paper order, rendering to cfg.W. It returns
// the first error encountered.
func All(cfg Config) error {
	cfg.defaults()
	if _, err := Fig2(cfg); err != nil {
		return err
	}
	if _, err := Fig3(cfg); err != nil {
		return err
	}
	if _, err := Fig4(cfg); err != nil {
		return err
	}
	if _, err := Fig5(cfg); err != nil {
		return err
	}
	if _, err := Fig6(cfg); err != nil {
		return err
	}
	if _, err := Fig10(cfg); err != nil {
		return err
	}
	if _, err := Fig11(cfg); err != nil {
		return err
	}
	if _, err := Fig12(cfg); err != nil {
		return err
	}
	if _, err := Fig13(cfg); err != nil {
		return err
	}
	if _, err := Fig14(cfg); err != nil { // also renders Table 4
		return err
	}
	if _, err := Fig15(cfg); err != nil {
		return err
	}
	if _, err := Fig16(cfg); err != nil {
		return err
	}
	if _, err := Fig17(cfg); err != nil {
		return err
	}
	if _, err := Table3(cfg); err != nil {
		return err
	}
	if _, err := AppendixA2(cfg); err != nil {
		return err
	}
	if _, err := Overhead(cfg); err != nil {
		return err
	}
	if _, err := GeoExtension(cfg); err != nil {
		return err
	}
	if _, err := OnlineExtension(cfg); err != nil {
		return err
	}
	if _, err := Sensitivity(cfg); err != nil {
		return err
	}
	return nil
}
