package experiments

// Runner couples an experiment's registry name (the cmd/experiments -only
// key) with its entry point. Keeping the list here means All, the CLI
// subset flag, and the per-experiment timeout guard all agree on what
// exists.
type Runner struct {
	Name string
	Run  func(Config) error
}

// Runners lists every experiment in paper order, followed by the
// extensions. Fig14 also renders Table 4, so All skips the standalone
// "table4" entry (it exists for -only).
func Runners() []Runner {
	return []Runner{
		{"fig2", func(cfg Config) error { _, err := Fig2(cfg); return err }},
		{"fig3", func(cfg Config) error { _, err := Fig3(cfg); return err }},
		{"fig4", func(cfg Config) error { _, err := Fig4(cfg); return err }},
		{"fig5", func(cfg Config) error { _, err := Fig5(cfg); return err }},
		{"fig6", func(cfg Config) error { _, err := Fig6(cfg); return err }},
		{"fig10", func(cfg Config) error { _, err := Fig10(cfg); return err }},
		{"fig11", func(cfg Config) error { _, err := Fig11(cfg); return err }},
		{"fig12", func(cfg Config) error { _, err := Fig12(cfg); return err }},
		{"fig13", func(cfg Config) error { _, err := Fig13(cfg); return err }},
		{"fig14", func(cfg Config) error { _, err := Fig14(cfg); return err }},
		{"fig15", func(cfg Config) error { _, err := Fig15(cfg); return err }},
		{"fig16", func(cfg Config) error { _, err := Fig16(cfg); return err }},
		{"fig17", func(cfg Config) error { _, err := Fig17(cfg); return err }},
		{"table3", func(cfg Config) error { _, err := Table3(cfg); return err }},
		{"table4", func(cfg Config) error { _, err := Table4(cfg); return err }},
		{"a2", func(cfg Config) error { _, err := AppendixA2(cfg); return err }},
		{"overhead", func(cfg Config) error { _, err := Overhead(cfg); return err }},
		{"geo", func(cfg Config) error { _, err := GeoExtension(cfg); return err }},
		{"online", func(cfg Config) error { _, err := OnlineExtension(cfg); return err }},
		{"sensitivity", func(cfg Config) error { _, err := Sensitivity(cfg); return err }},
		{"fault", func(cfg Config) error { _, err := FaultSweep(cfg); return err }},
	}
}

// All runs every experiment in paper order, rendering to cfg.W. It returns
// the first error encountered.
func All(cfg Config) error {
	cfg.defaults()
	for _, r := range Runners() {
		if r.Name == "table4" { // rendered by fig14
			continue
		}
		if err := r.Run(cfg); err != nil {
			return err
		}
	}
	return nil
}
