// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5 and Appendix A) on the simulated substrate. Each
// Fig*/Table* function runs one experiment, renders the paper-style rows
// or series to cfg.W, and returns a typed result for tests and benches.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/metrics"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Config holds the shared experiment parameters.
type Config struct {
	// Nodes is the prototype cluster size (default 30, the paper's EC2
	// fleet).
	Nodes int
	// Scale multiplies all workload phase durations (default 1.0; tests
	// use smaller scales to stay fast).
	Scale float64
	// Seed drives every stochastic element (trace generation, profiling
	// noise, random order).
	Seed int64
	// TraceJobs is the job count for trace-driven experiments (default
	// 600 — the real trace's 2.7M jobs scaled to laptop time).
	TraceJobs int
	// Reps is the repetition count for error bars (default 5, as in the
	// paper).
	Reps int
	// Parallelism is the worker count used to evaluate independent grid
	// cells (workload × strategy × rep, fault-sweep points, trace groups).
	// 0/1 runs everything sequentially. Results are bit-identical at any
	// setting: every stochastic draw happens sequentially up front and the
	// parallel cells are pure functions reduced in index order.
	Parallelism int
	// Shards, when positive, runs the trace-replay grid (Fig. 14 /
	// Table 4) through internal/shardsim instead of the flat cell pool:
	// replay worlds are partitioned over Shards engine shards, each
	// advanced in global timestamp order by a merging clock with a bounded
	// live window, and the per-shard JCT CDFs are k-way merged afterwards.
	// 0 keeps the legacy per-cell path. Output is byte-identical at any
	// Shards/Parallelism setting.
	Shards int
	// W receives the rendered output (default io.Discard).
	W io.Writer
	// OnGrid, when non-nil, is called once before each batch of
	// independent grid cells runs, with the batch's cell count — live
	// introspection (cmd/experiments -serve) uses it to publish how much
	// work remains. OnCell is called once per completed cell, possibly
	// from worker goroutines, so implementations must be safe for
	// concurrent use. Neither hook may block: cells wait on nothing.
	OnGrid func(cells int)
	OnCell func()
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 30
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.TraceJobs <= 0 {
		c.TraceJobs = 600
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.W == nil {
		c.W = io.Discard
	}
}

// cluster30 builds the prototype cluster.
func (c *Config) cluster() *cluster.Cluster {
	return cluster.NewM4LargeCluster(c.Nodes)
}

// workloadNames is the fixed table order used throughout Sec. 5.
var workloadNames = []string{"ConnectedComponents", "CosineSimilarity", "LDA", "TriangleCount"}

// runUnder plans and simulates one workload under a strategy, tracking
// node 0.
func runUnder(c *cluster.Cluster, job *workload.Job, strat scheduler.Strategy, extra sim.Options) (*sim.Result, scheduler.Plan, error) {
	plan, err := strat.Plan(c, job)
	if err != nil {
		return nil, plan, err
	}
	extra.Cluster = c
	extra.AggShuffle = plan.AggShuffle
	res, err := sim.Run(extra, []sim.JobRun{{Job: job, Delays: plan.Delays}})
	return res, plan, err
}

// mbps converts bytes/s to MB/s for table rendering.
func mbps(v float64) float64 { return v / cluster.MB }

// jitterCluster perturbs every node's network bandwidth by up to ±frac,
// modeling EC2 run-to-run variance.
func jitterCluster(base *cluster.Cluster, rng *rand.Rand, frac float64) *cluster.Cluster {
	out := &cluster.Cluster{Nodes: append([]cluster.Node(nil), base.Nodes...)}
	for i := range out.Nodes {
		out.Nodes[i].NetBW *= 1 + (rng.Float64()*2-1)*frac
	}
	return out
}

// forEach runs fn(i) for i in [0, n) on up to `parallelism` goroutines.
// fn must be a pure function of i writing only slots it owns (indexed
// result slices); callers reduce those slots in index order afterwards, so
// output is independent of scheduling. With parallelism ≤ 1 it is a plain
// sequential loop that stops at the first error; in parallel mode every
// claimed cell still runs and the lowest-index error is returned, keeping
// the reported failure deterministic.
// forEach runs fn over n independent cells on the Config's worker count,
// reporting batch size and per-cell completion through the OnGrid/OnCell
// hooks. Experiments call this method (not the free function) so every
// grid is visible to live introspection.
func (c *Config) forEach(n int, fn func(i int) error) error {
	if c.OnGrid != nil {
		c.OnGrid(n)
	}
	if c.OnCell != nil {
		inner := fn
		fn = func(i int) error {
			err := inner(i)
			c.OnCell()
			return err
		}
	}
	return forEach(c.Parallelism, n, fn)
}

func forEach(parallelism, n int, fn func(i int) error) error {
	if parallelism <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	var next atomic.Int64
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fprintf writes to the experiment's writer, ignoring errors (the writer
// is a terminal or a buffer).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

// delayedStages lists the stages with non-zero delay, sorted, for the
// "delaying stage" annotations of the breakdown figures.
func delayedStages(delays map[dag.StageID]float64) []dag.StageID {
	var ids []dag.StageID
	for id, d := range delays {
		if d > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ganttFromTimelines renders a job's stage timelines in the style of
// Figs. 6/11/16: shaded shuffle read, solid compute+write.
func ganttFromTimelines(res *sim.Result, job *workload.Job) string {
	var bars []metrics.GanttBar
	for _, id := range job.Graph.Stages() {
		tl := res.Timeline(0, id)
		if tl == nil {
			continue
		}
		bars = append(bars, metrics.GanttBar{
			Label: fmt.Sprintf("Stage %d", id),
			Start: tl.Start,
			Split: tl.ReadEnd,
			End:   tl.End,
		})
	}
	return metrics.RenderGantt(bars, 72)
}

// seriesToStepPoints converts sim series to metrics step points.
func seriesToStepPoints(s sim.Series) []metrics.StepPoint {
	out := make([]metrics.StepPoint, len(s))
	for i, p := range s {
		out[i] = metrics.StepPoint{T: p.T, V: p.V}
	}
	return out
}
