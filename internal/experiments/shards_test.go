package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFig14ShardInvariance pins the replay determinism contract end to
// end: the Fig. 14 / Table 4 result — CDF summaries, job-order
// utilization integrals, evaluation counters — is byte-identical whether
// the replay runs through the legacy flat cell pool (Shards=0) or through
// the merging-clock shard runner, at any shard and worker count.
func TestFig14ShardInvariance(t *testing.T) {
	run := func(shards, par int) []byte {
		res, err := Fig14(Config{Seed: 3, TraceJobs: 18, Shards: shards, Parallelism: par})
		if err != nil {
			t.Fatalf("shards=%d parallelism=%d: %v", shards, par, err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	ref := run(0, 1)
	for _, tc := range []struct{ shards, par int }{{1, 1}, {4, 1}, {8, 1}, {4, 4}} {
		if got := run(tc.shards, tc.par); !bytes.Equal(got, ref) {
			t.Errorf("shards=%d parallelism=%d: result differs from the flat path",
				tc.shards, tc.par)
		}
	}
}
