package experiments

import (
	"delaystage/internal/dag"
	"math/rand"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/metrics"
	"delaystage/internal/shardsim"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
	"delaystage/internal/workload"
)

// replayStrategies is the Fig. 14 / Table 4 lineup.
type replayStrategy struct {
	name  string
	order core.Order
	fuxi  bool
}

var replayLineup = []replayStrategy{
	{name: "Fuxi", fuxi: true},
	{name: "random DelayStage", order: core.Random},
	{name: "default DelayStage", order: core.Descending},
	{name: "ascending DelayStage", order: core.Ascending},
}

// Fig14Row is one strategy's replay outcome.
type Fig14Row struct {
	Strategy string
	JCTs     *metrics.CDF
	MeanJCT  float64
	// Cluster-wide utilization for Table 4.
	AvgCPUUtil, AvgNetUtil float64
}

// EvalEfficiency aggregates the planner's what-if evaluation counters over
// one figure: how many candidate evaluations Alg. 1 made and how the sim
// evaluator answered them — from the memo cache, by forking a scan
// snapshot (only the suffix after the scanned stage's ready time was
// simulated), or by a full from-scratch simulation. Evaluations answered
// by the closed-form model evaluator count only toward Evaluations (it
// neither caches nor forks), so Evaluations ≥ CacheHits+Forked+Full.
type EvalEfficiency struct {
	Evaluations int
	CacheHits   int
	ForkedEvals int
	FullEvals   int
	// Two-tier scan counters: candidates screened by the analytic bound,
	// candidates discarded without evaluation, and (approximate mode only)
	// candidates answered by the bound surrogate itself.
	Bounded int
	Pruned  int
	Approx  int
}

func (e *EvalEfficiency) add(s *core.Schedule) {
	e.Evaluations += s.Evaluations
	e.CacheHits += s.CacheHits
	e.ForkedEvals += s.ForkedEvals
	e.FullEvals += s.FullEvals
	e.Bounded += s.Prune.Bounded
	e.Pruned += s.Prune.Pruned
	e.Approx += s.Prune.Approx
}

// Fig14Result carries the Fig. 14 CDFs and the Table 4 utilizations.
type Fig14Result struct {
	Rows []Fig14Row
	// Eval sums the planners' evaluation counters over the whole replay.
	Eval EvalEfficiency
}

// Fig14 reproduces Fig. 14 and Table 4: replaying a synthetic Alibaba
// trace against the Sec. 5.3 cluster under Fuxi and the three DelayStage
// path-order variants. The paper's simulation assumption is "resources are
// evenly partitioned among multiple jobs that are concurrently running";
// each replayed job therefore runs on its own even slice of the cluster
// (machines with heterogeneous 100 Mbit/s–2 Gbit/s NICs and 80 MB/s
// disks, executor count = cores), and jobs are simulated independently.
// Alg. 1 runs per job with the what-if sim evaluator (the closed-form
// evaluator transfers poorly on wide trace DAGs); candidate counts shrink
// for very large jobs to bound the replay's wall-clock time.
func Fig14(cfg Config) (*Fig14Result, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := trace.Generate(trace.GenConfig{Jobs: cfg.TraceJobs, Seed: cfg.Seed})

	// Per-job slices with per-job bandwidth draws, so the Sec. 5.3 NIC
	// heterogeneity lands on jobs instead of averaging out.
	type preparedJob struct {
		slice *cluster.Cluster
		wl    *workload.Job
	}
	prepared := make([]preparedJob, 0, len(tr.Jobs))
	for i := range tr.Jobs {
		slice := sim.Coarsen(cluster.NewTraceCluster(2, 4, rng))
		wl, err := tr.Jobs[i].Workload(slice, trace.DefaultSplit, nil)
		if err != nil {
			return nil, err
		}
		prepared = append(prepared, preparedJob{slice: slice, wl: wl})
	}

	out := &Fig14Result{}
	for _, strat := range replayLineup {
		// Every (strategy, job) cell is a pure function of the prepared
		// slice/workload and a per-job planner seed, so the job loop fans
		// out; the utilization integrals are accumulated afterwards in job
		// order to keep the floating-point sums bit-identical.
		strat := strat
		type jobOutcome struct {
			jct, cpu, net float64
			eval          EvalEfficiency
		}
		outcomes := make([]jobOutcome, len(prepared))
		// plan runs Alg. 1 for cell i and materializes its replay world
		// (the job on its own cluster slice — worlds share nothing, which
		// is what makes the sharded path bit-identical to the flat one).
		plan := func(i int) (shardsim.World, error) {
			pj := prepared[i]
			var delays map[dag.StageID]float64
			if !strat.fuxi {
				mc := 16
				if pj.wl.Graph.Len() > 60 {
					mc = 10
				}
				sched, err := core.Compute(core.Options{
					Cluster:       pj.slice,
					Order:         strat.order,
					Seed:          cfg.Seed + int64(i),
					MaxCandidates: mc,
				}, pj.wl)
				if err != nil {
					return shardsim.World{}, err
				}
				delays = sched.Delays
				outcomes[i].eval.add(sched)
			}
			return shardsim.World{
				Opt:  sim.Options{Cluster: pj.slice, TrackNode: -1},
				Runs: []sim.JobRun{{Job: pj.wl, Delays: delays}},
			}, nil
		}
		record := func(i int, res *sim.Result) error {
			outcomes[i].jct, outcomes[i].cpu, outcomes[i].net = res.JCT(0), res.AvgCPUUtil, res.AvgNetUtil
			return nil
		}
		var err error
		if cfg.Shards > 0 {
			// Sharded path: worlds are planned lazily when their shard
			// activates them and advanced by the merging clocks, so only
			// Shards×window worlds hold engine state at once.
			if cfg.OnGrid != nil {
				cfg.OnGrid(len(prepared))
			}
			reduce := record
			if cfg.OnCell != nil {
				reduce = func(i int, res *sim.Result) error {
					e := record(i, res)
					cfg.OnCell()
					return e
				}
			}
			err = shardsim.Run(shardsim.Config{Shards: cfg.Shards, Workers: cfg.Parallelism},
				len(prepared), plan, reduce)
		} else {
			err = cfg.forEach(len(prepared), func(i int) error {
				w, err := plan(i)
				if err != nil {
					return err
				}
				res, err := sim.Run(w.Opt, w.Runs)
				if err != nil {
					return err
				}
				return record(i, res)
			})
		}
		if err != nil {
			return nil, err
		}
		jcts := make([]float64, 0, len(prepared))
		var cpuInt, netInt, timeInt float64
		for _, o := range outcomes {
			jcts = append(jcts, o.jct)
			cpuInt += o.cpu * o.jct
			netInt += o.net * o.jct
			timeInt += o.jct
			out.Eval.Evaluations += o.eval.Evaluations
			out.Eval.CacheHits += o.eval.CacheHits
			out.Eval.ForkedEvals += o.eval.ForkedEvals
			out.Eval.FullEvals += o.eval.FullEvals
		}
		out.Rows = append(out.Rows, Fig14Row{
			Strategy:   strat.name,
			JCTs:       replayCDF(cfg, jcts),
			MeanJCT:    metrics.Mean(jcts),
			AvgCPUUtil: cpuInt / timeInt,
			AvgNetUtil: netInt / timeInt,
		})
	}

	fprintf(cfg.W, "== Fig. 14: JCT CDF over the trace replay ==\n")
	fprintf(cfg.W, "%-22s %10s %10s %10s %10s\n", "strategy", "mean JCT", "P50", "P90", "P99")
	for _, r := range out.Rows {
		fprintf(cfg.W, "%-22s %9.0fs %9.0fs %9.0fs %9.0fs\n",
			r.Strategy, r.MeanJCT, r.JCTs.Quantile(0.5), r.JCTs.Quantile(0.9), r.JCTs.Quantile(0.99))
	}
	fuxi := out.Rows[0].MeanJCT
	for _, r := range out.Rows[1:] {
		fprintf(cfg.W, "%s vs Fuxi: −%.1f%%\n", r.Strategy, 100*(fuxi-r.MeanJCT)/fuxi)
	}
	fprintf(cfg.W, "(paper means: Fuxi 1373s, random 945s, default 871s, ascending 996s — −36.6/−31.2/−27.5%%)\n\n")

	fprintf(cfg.W, "== Table 4: average utilization of the replayed cluster ==\n")
	fprintf(cfg.W, "%-22s %10s %10s\n", "strategy", "CPU %", "network %")
	for _, r := range out.Rows {
		fprintf(cfg.W, "%-22s %9.1f%% %9.1f%%\n", r.Strategy, r.AvgCPUUtil*100, r.AvgNetUtil*100)
	}
	fprintf(cfg.W, "(paper: Fuxi 36.2/42.7; random 43.4/49.1; ascending 42.2/48.3; default 45.4/53.3)\n\n")
	return out, nil
}

// replayCDF builds the JCT distribution for one replay row. The flat path
// sorts the job-order samples directly; the sharded path reduces per-shard
// sorted CDFs through the k-way merge — the same reduction the full-scale
// replay uses — which reproduces NewCDF's sample sequence element for
// element, so both paths summarize byte-identically.
func replayCDF(cfg Config, jcts []float64) *metrics.CDF {
	if cfg.Shards <= 0 {
		return metrics.NewCDF(jcts)
	}
	nsh := cfg.Shards
	if nsh > len(jcts) && len(jcts) > 0 {
		nsh = len(jcts)
	}
	byShard := make([][]float64, nsh)
	for i, v := range jcts {
		byShard[i%nsh] = append(byShard[i%nsh], v)
	}
	cdfs := make([]*metrics.CDF, nsh)
	for s := range cdfs {
		cdfs[s] = metrics.NewCDF(byShard[s])
	}
	return cdfs[0].Merge(cdfs[1:]...)
}

// Table4 is an alias view over Fig14 (the paper derives both from the same
// replay).
func Table4(cfg Config) (*Fig14Result, error) { return Fig14(cfg) }

// Fig15Point is one measurement of Alg. 1's computation time.
type Fig15Point struct {
	Stages  int
	ModelMs float64 // fast model evaluator (trace-scale configuration)
	SimMs   float64 // what-if sim evaluator (prototype configuration)
}

// Fig15Result carries the Fig. 15 scaling curve.
type Fig15Result struct {
	Points []Fig15Point
	// Eval sums the evaluation counters over every Compute call of the
	// figure (the hit/fork/full breakdown covers the sim-evaluator runs).
	Eval EvalEfficiency
}

// Fig15 reproduces Fig. 15: DelayStage's strategy computation time versus
// the number of stages in a job (paper: roughly linear, ≤1.2 s at 186
// stages, <0.2 s for the 90% of jobs under 15 stages).
func Fig15(cfg Config) (*Fig15Result, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := sim.Coarsen(cluster.NewTraceCluster(64, 4, rng))
	out := &Fig15Result{}
	for _, n := range []int{10, 20, 40, 80, 120, 160, 186} {
		job := workload.RandomJob("fig15", c, n, rng)
		t0 := time.Now()
		ms, err := core.Compute(core.Options{Cluster: c, UseModelEvaluator: true, MaxCandidates: 12, RefinePasses: -1, Parallelism: cfg.Parallelism}, job)
		if err != nil {
			return nil, err
		}
		modelMs := float64(time.Since(t0).Microseconds()) / 1000
		out.Eval.add(ms)
		simMs := 0.0
		if n <= 40 {
			t0 = time.Now()
			ss, err := core.Compute(core.Options{Cluster: c, MaxCandidates: 12, Parallelism: cfg.Parallelism}, job)
			if err != nil {
				return nil, err
			}
			simMs = float64(time.Since(t0).Microseconds()) / 1000
			out.Eval.add(ss)
		}
		out.Points = append(out.Points, Fig15Point{Stages: n, ModelMs: modelMs, SimMs: simMs})
	}
	fprintf(cfg.W, "== Fig. 15: Alg. 1 computation time vs #stages ==\n")
	fprintf(cfg.W, "%8s %18s %18s\n", "#stages", "model eval (ms)", "sim eval (ms)")
	for _, p := range out.Points {
		if p.SimMs > 0 {
			fprintf(cfg.W, "%8d %18.1f %18.1f\n", p.Stages, p.ModelMs, p.SimMs)
		} else {
			fprintf(cfg.W, "%8d %18.1f %18s\n", p.Stages, p.ModelMs, "—")
		}
	}
	fprintf(cfg.W, "(paper: ≤1.2 s at 186 stages, <0.2 s below 15 stages, roughly linear)\n")
	if out.Eval.Bounded > 0 {
		fprintf(cfg.W, "two-tier scan: %d candidates bounded, %d pruned before evaluation (%.0f%%)\n",
			out.Eval.Bounded, out.Eval.Pruned, 100*float64(out.Eval.Pruned)/float64(out.Eval.Bounded))
	}
	fprintf(cfg.W, "\n")
	return out, nil
}
