package experiments

import (
	"delaystage/internal/cluster"
	"delaystage/internal/metrics"
	"delaystage/internal/sim"
	"delaystage/internal/trace"
	"delaystage/internal/workload"
)

// Fig2Result carries the Fig. 2 CDFs: number of stages and of parallel
// stages per production job.
type Fig2Result struct {
	Stages         *metrics.CDF
	ParallelStages *metrics.CDF
	Summary        trace.Summary
}

// Fig2 reproduces Fig. 2 (CDF of the number of stages and parallel stages
// per job) plus the Sec. 2.1 headline statistics from a synthetic Alibaba
// trace.
func Fig2(cfg Config) (*Fig2Result, error) {
	cfg.defaults()
	tr := trace.Generate(trace.GenConfig{Jobs: cfg.TraceJobs, Seed: cfg.Seed})
	stats := trace.Analyze(tr)
	var nStages, nPar []float64
	for _, s := range stats {
		nStages = append(nStages, float64(s.Stages))
		nPar = append(nPar, float64(s.ParallelStages))
	}
	r := &Fig2Result{
		Stages:         metrics.NewCDF(nStages),
		ParallelStages: metrics.NewCDF(nPar),
		Summary:        trace.Summarize(stats),
	}
	fprintf(cfg.W, "== Fig. 2: CDF of #stages and #parallel stages per job ==\n")
	fprintf(cfg.W, "%8s %12s %16s\n", "x", "P(#stg<=x)", "P(#par stg<=x)")
	for _, x := range []float64{1, 2, 4, 8, 15, 30, 60, 120, 186} {
		fprintf(cfg.W, "%8.0f %11.1f%% %15.1f%%\n", x, r.Stages.At(x)*100, r.ParallelStages.At(x)*100)
	}
	s := r.Summary
	fprintf(cfg.W, "jobs=%d  jobs with parallel stages: %.1f%% (paper 68.6%%)\n",
		s.Jobs, s.JobsWithParallelShare*100)
	fprintf(cfg.W, "parallel stages: %.1f%% of all stages (paper 79.1%%)\n\n", s.ParallelStageShare*100)
	return r, nil
}

// Fig3Result carries the Fig. 3 CDF: parallel-stage makespan over job time.
type Fig3Result struct {
	Frac     *metrics.CDF
	MeanFrac float64
}

// Fig3 reproduces Fig. 3: the CDF of the proportion of the parallel-stage
// makespan to the job execution time (jobs with parallel stages only).
func Fig3(cfg Config) (*Fig3Result, error) {
	cfg.defaults()
	tr := trace.Generate(trace.GenConfig{Jobs: cfg.TraceJobs, Seed: cfg.Seed})
	var fracs []float64
	for _, s := range trace.Analyze(tr) {
		if s.ParallelStages > 0 {
			fracs = append(fracs, s.ParallelMakespanFrac*100)
		}
	}
	r := &Fig3Result{Frac: metrics.NewCDF(fracs), MeanFrac: metrics.Mean(fracs)}
	fprintf(cfg.W, "== Fig. 3: CDF of T(parallel stages)/T(job) ==\n")
	fprintf(cfg.W, "%8s %12s\n", "%", "CDF")
	for _, x := range []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		fprintf(cfg.W, "%7.0f%% %11.1f%%\n", x, r.Frac.At(x)*100)
	}
	fprintf(cfg.W, "mean fraction: %.1f%% (paper 82.3%%); share above 60%%: %.1f%% (paper: >60%% for 80%% of jobs)\n\n",
		r.MeanFrac, (1-r.Frac.At(60))*100)
	return r, nil
}

// Fig4Result carries the utilization-over-time series of Fig. 4.
type Fig4Result struct {
	// ClusterCPU / ClusterNet are bin-averaged utilization fractions of
	// the whole (grouped) cluster over the trace span (Fig. 4a).
	ClusterCPU, ClusterNet []float64
	// NodeCPU / NodeNet are one machine group's utilization (Fig. 4b) —
	// wilder swings than the cluster average.
	NodeCPU, NodeNet []float64
	BinSeconds       float64
}

// Fig4 reproduces Fig. 4: average CPU and network utilization across
// machines over the trace span (a), and one machine's utilization (b).
// Jobs are hashed into machine groups, each group simulated independently
// on its sub-cluster — the placement heterogeneity that makes a single
// machine fluctuate 0–98% while the average stays at 20–50%.
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg.defaults()
	const groups = 8
	span := 4 * 3600.0 // compressed trace span: dense enough to show load
	tr := trace.Generate(trace.GenConfig{Jobs: cfg.TraceJobs, Seed: cfg.Seed, Span: span})
	ref := sim.Coarsen(cluster.NewM4LargeCluster(4))

	bin := span / 48
	end := span * 1.5
	// Machine groups partition the trace's jobs deterministically (i mod
	// groups) and simulate independent sub-clusters, so they run on the
	// worker pool; results collect into per-group slots and empty groups
	// are dropped in group order afterwards.
	cpuByGroup := make([][]float64, groups)
	netByGroup := make([][]float64, groups)
	err := cfg.forEach(groups, func(g int) error {
		var runs []sim.JobRun
		for i := range tr.Jobs {
			if i%groups != g {
				continue
			}
			j := &tr.Jobs[i]
			wj, err := j.Workload(ref, trace.DefaultSplit, nil)
			if err != nil {
				return err
			}
			runs = append(runs, sim.JobRun{Job: wj, Arrival: j.Arrival})
		}
		if len(runs) == 0 {
			return nil
		}
		res, err := sim.Run(sim.Options{Cluster: ref, TrackNode: -1, TrackCluster: true, FairByJob: true}, runs)
		if err != nil {
			return err
		}
		cpu := metrics.ResampleStep(seriesToStepPoints(res.Cluster.CPUBusy), 0, end, bin)
		net := metrics.ResampleStep(seriesToStepPoints(res.Cluster.NetRate), 0, end, bin)
		for i := range net {
			net[i] /= ref.TotalNetBW()
		}
		cpuByGroup[g] = cpu
		netByGroup[g] = net
		return nil
	})
	if err != nil {
		return nil, err
	}
	var groupCPU, groupNet [][]float64
	for g := 0; g < groups; g++ {
		if cpuByGroup[g] == nil {
			continue
		}
		groupCPU = append(groupCPU, cpuByGroup[g])
		groupNet = append(groupNet, netByGroup[g])
	}
	r := &Fig4Result{BinSeconds: bin}
	nBins := len(groupCPU[0])
	for b := 0; b < nBins; b++ {
		var c, n float64
		for g := range groupCPU {
			c += groupCPU[g][b]
			n += groupNet[g][b]
		}
		r.ClusterCPU = append(r.ClusterCPU, c/float64(len(groupCPU)))
		r.ClusterNet = append(r.ClusterNet, n/float64(len(groupNet)))
	}
	r.NodeCPU = groupCPU[0]
	r.NodeNet = groupNet[0]

	fprintf(cfg.W, "== Fig. 4a: cluster-average utilization over the trace span ==\n")
	fprintf(cfg.W, "CPU %s\n", metrics.Sparkline(r.ClusterCPU))
	fprintf(cfg.W, "net %s\n", metrics.Sparkline(r.ClusterNet))
	fprintf(cfg.W, "cluster averages: CPU %.1f%%, network %.1f%% (paper: 20–50%% and 30–45%%)\n",
		metrics.Mean(r.ClusterCPU)*100, metrics.Mean(r.ClusterNet)*100)
	fprintf(cfg.W, "== Fig. 4b: one machine group ==\n")
	fprintf(cfg.W, "CPU %s\n", metrics.Sparkline(r.NodeCPU))
	fprintf(cfg.W, "net %s\n", metrics.Sparkline(r.NodeNet))
	low := 0
	for _, v := range r.NodeCPU {
		if v < 0.10 {
			low++
		}
	}
	fprintf(cfg.W, "machine CPU <10%% for %.1f%% of time (paper: 39.1%%)\n\n",
		100*float64(low)/float64(len(r.NodeCPU)))
	return r, nil
}

// ensure workload import is used even if future edits drop other uses.
var _ = workload.StageProfile{}
