package experiments

import (
	"math/rand"

	"delaystage/internal/core"
	"delaystage/internal/metrics"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// OnlineRow is one strategy's outcome in the multi-job online experiment.
type OnlineRow struct {
	Strategy string
	MeanJCT  float64
	P90JCT   float64
}

// OnlineResult carries the multi-job extension experiment.
type OnlineResult struct {
	Rows []OnlineRow
}

// OnlineExtension evaluates the Sec. 6 multi-job direction the repo
// implements: jobs arriving over time on one shared cluster, scheduled by
// (a) submit-when-ready (Fuxi-style), (b) per-job DelayStage planned in
// isolation (blind to the other jobs), and (c) online multi-job
// DelayStage that plans each arrival against the jobs already running,
// minimizing the sum of completion times.
func OnlineExtension(cfg Config) (*OnlineResult, error) {
	cfg.defaults()
	c := cfg.cluster()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nJobs := 8
	var jobs []*workload.Job
	var arrivals []float64
	at := 0.0
	for i := 0; i < nJobs; i++ {
		jobs = append(jobs, workload.RandomJob("online", c, 5+rng.Intn(6), rng))
		arrivals = append(arrivals, at)
		at += (400 + rng.Float64()*500) * cfg.Scale
	}

	out := &OnlineResult{}
	record := func(name string, res *sim.Result) {
		jcts := make([]float64, len(jobs))
		for i := range jobs {
			jcts[i] = res.JCT(i)
		}
		out.Rows = append(out.Rows, OnlineRow{
			Strategy: name,
			MeanJCT:  metrics.Mean(jcts),
			P90JCT:   metrics.Percentile(jcts, 90),
		})
	}

	// (a) submit-when-ready.
	naiveRuns := make([]sim.JobRun, len(jobs))
	for i := range jobs {
		naiveRuns[i] = sim.JobRun{Job: jobs[i], Arrival: arrivals[i]}
	}
	naive, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, FairByJob: true}, naiveRuns)
	if err != nil {
		return nil, err
	}
	record("submit-when-ready", naive)

	// (b) per-job DelayStage, planned in isolation.
	isoRuns := make([]sim.JobRun, len(jobs))
	for i := range jobs {
		sched, err := core.Compute(core.Options{Cluster: c, MaxCandidates: 16}, jobs[i])
		if err != nil {
			return nil, err
		}
		isoRuns[i] = sim.JobRun{Job: jobs[i], Arrival: arrivals[i], Delays: sched.Delays}
	}
	iso, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, FairByJob: true}, isoRuns)
	if err != nil {
		return nil, err
	}
	record("per-job DelayStage", iso)

	// (c) online multi-job DelayStage.
	online, err := scheduler.RunOnline(scheduler.OnlineOptions{
		Cluster: c, FairByJob: true, MaxCandidates: 12,
	}, jobs, arrivals, sim.Options{TrackNode: -1})
	if err != nil {
		return nil, err
	}
	record("online multi-job DelayStage", online)

	fprintf(cfg.W, "== Multi-job extension (Sec. 6 future work): %d overlapping jobs ==\n", nJobs)
	fprintf(cfg.W, "%-28s %12s %12s\n", "strategy", "mean JCT", "P90 JCT")
	for _, r := range out.Rows {
		fprintf(cfg.W, "%-28s %11.1fs %11.1fs\n", r.Strategy, r.MeanJCT, r.P90JCT)
	}
	base := out.Rows[0].MeanJCT
	for _, r := range out.Rows[1:] {
		fprintf(cfg.W, "%s vs naive: %+.1f%%\n", r.Strategy, 100*(r.MeanJCT-base)/base)
	}
	fprintf(cfg.W, "(not in the paper — its Sec. 6 commits to the multi-job extension)\n\n")
	return out, nil
}
