package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// testCfg keeps experiment tests fast: small scale, few jobs, 2 reps.
func testCfg() Config {
	return Config{Scale: 0.15, Nodes: 10, TraceJobs: 120, Reps: 2, Seed: 7}
}

func TestFig2(t *testing.T) {
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.W = &buf
	r, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages.N() != cfg.TraceJobs {
		t.Fatalf("CDF over %d jobs, want %d", r.Stages.N(), cfg.TraceJobs)
	}
	// Parallel-stage count never exceeds stage count: CDF dominance.
	for _, x := range []float64{2, 5, 10, 50} {
		if r.ParallelStages.At(x) < r.Stages.At(x)-1e-9 {
			t.Errorf("P(#par≤%v) < P(#stg≤%v): parallel CDF must dominate", x, x)
		}
	}
	if s := r.Summary; s.JobsWithParallelShare < 0.5 || s.JobsWithParallelShare > 0.85 {
		t.Errorf("jobs-with-parallel share %.3f implausible", s.JobsWithParallelShare)
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("missing rendered header")
	}
}

func TestFig3(t *testing.T) {
	r, err := Fig3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanFrac < 50 || r.MeanFrac > 100 {
		t.Fatalf("mean parallel fraction %.1f%% implausible (paper 82.3%%)", r.MeanFrac)
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ClusterCPU) == 0 || len(r.NodeCPU) == 0 {
		t.Fatal("missing series")
	}
	for _, v := range r.ClusterCPU {
		if v < 0 || v > 1.01 {
			t.Fatalf("cluster CPU %v out of range", v)
		}
	}
	// A single machine group must swing more than the cluster average.
	varOf := func(xs []float64) float64 {
		m, s := 0.0, 0.0
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return s / float64(len(xs))
	}
	if varOf(r.NodeCPU) < varOf(r.ClusterCPU) {
		t.Error("one machine should fluctuate more than the cluster average")
	}
}

func TestFig5(t *testing.T) {
	r, err := Fig5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.JCT <= 0 || len(r.CPU) == 0 {
		t.Fatal("empty result")
	}
	// The paper's observation: both resources have real idle periods under
	// stock Spark.
	if r.NetIdleSec <= 0 || r.CPUIdleSec <= 0 {
		t.Fatalf("expected idle periods, got net %.1fs cpu %.1fs", r.NetIdleSec, r.CPUIdleSec)
	}
}

func TestFig6(t *testing.T) {
	r, err := Fig6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.DelayedJCT >= r.StockJCT {
		t.Fatalf("delaying must shorten ALS: %.1f vs %.1f", r.DelayedJCT, r.StockJCT)
	}
	if r.CPUUtilDelayed <= r.CPUUtilStock {
		t.Error("CPU utilization must rise (paper: 52.3%→68.7%)")
	}
	if len(r.Delays) == 0 {
		t.Error("no stages delayed")
	}
	if !strings.Contains(r.StockGantt, "Stage 1") {
		t.Error("gantt missing stages")
	}
}

func TestFig10(t *testing.T) {
	r, err := Fig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 workloads, got %d", len(r.Rows))
	}
	minGain, maxGain := 1e9, -1e9
	for _, row := range r.Rows {
		if row.DelayMean >= row.SparkMean {
			t.Errorf("%s: DelayStage %.1f !< Spark %.1f", row.Workload, row.DelayMean, row.SparkMean)
		}
		if row.AggMean > row.SparkMean*1.02 {
			t.Errorf("%s: AggShuffle %.1f clearly worse than Spark %.1f", row.Workload, row.AggMean, row.SparkMean)
		}
		if row.DelayGainP < minGain {
			minGain = row.DelayGainP
		}
		if row.DelayGainP > maxGain {
			maxGain = row.DelayGainP
		}
		if row.Workload == "ConnectedComponents" && row.DelayGainP != minGain {
			t.Error("ConnectedComponents must have the smallest gain (paper: 17.5%)")
		}
	}
	// Paper band: 17.5%–41.3%. Allow slack for the small test scale.
	if minGain < 5 || maxGain > 60 {
		t.Errorf("gain band [%.1f%%, %.1f%%] far from the paper's [17.5, 41.3]", minGain, maxGain)
	}
}

func TestFig11AndFig16(t *testing.T) {
	r11, err := Fig11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r11.Cosine.DelayJCT >= r11.Cosine.SparkJCT || r11.LDA.DelayJCT >= r11.LDA.SparkJCT {
		t.Error("DelayStage must win in breakdowns")
	}
	if len(r11.Cosine.DelayedStages) == 0 {
		t.Error("CosineSimilarity should delay stages")
	}
	r16, err := Fig16(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r16.Triangle.LongestPathGainP <= r16.Connected.LongestPathGainP {
		t.Errorf("TriangleCount region gain %.1f%% should exceed ConnectedComponents %.1f%% (paper: 42.0%% vs 28.2%%)",
			r16.Triangle.LongestPathGainP, r16.Connected.LongestPathGainP)
	}
}

func TestFig12AndFig17(t *testing.T) {
	r12, err := Fig12(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, panel := range []*UtilSeriesResult{r12.Cosine, r12.Triangle} {
		if len(panel.SparkNetMBps) == 0 || len(panel.DelayCPU) == 0 {
			t.Fatalf("%s: empty series", panel.Workload)
		}
	}
	r17, err := Fig17(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r17.Connected == nil || r17.LDA == nil {
		t.Fatal("missing panels")
	}
}

func TestFig13(t *testing.T) {
	r, err := Fig13(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StockOcc) == 0 || len(r.DelayOcc) == 0 {
		t.Fatal("no occupancy data")
	}
	total := 0.0
	for _, series := range r.StockOcc {
		for _, v := range series {
			total += v
		}
	}
	if total <= 0 {
		t.Fatal("stock occupancy all zero")
	}
}

func TestFig14AndTable4(t *testing.T) {
	cfg := testCfg()
	cfg.TraceJobs = 80
	r, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 strategies, got %d", len(r.Rows))
	}
	fuxi := r.Rows[0]
	def := r.Rows[2]
	if def.Strategy != "default DelayStage" {
		t.Fatalf("row order changed: %v", def.Strategy)
	}
	if def.MeanJCT >= fuxi.MeanJCT {
		t.Errorf("default DelayStage mean %.0f !< Fuxi %.0f (paper: 871 vs 1373)", def.MeanJCT, fuxi.MeanJCT)
	}
	for _, row := range r.Rows[1:] {
		if row.MeanJCT > fuxi.MeanJCT*1.02 {
			t.Errorf("%s mean %.0f worse than Fuxi %.0f", row.Strategy, row.MeanJCT, fuxi.MeanJCT)
		}
	}
	// Table 4: DelayStage variants must beat Fuxi on utilization too.
	if def.AvgCPUUtil <= fuxi.AvgCPUUtil || def.AvgNetUtil <= fuxi.AvgNetUtil {
		t.Errorf("default DelayStage util (%.3f/%.3f) must exceed Fuxi (%.3f/%.3f)",
			def.AvgCPUUtil, def.AvgNetUtil, fuxi.AvgCPUUtil, fuxi.AvgNetUtil)
	}
}

func TestFig15(t *testing.T) {
	r, err := Fig15(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 5 {
		t.Fatalf("too few points: %d", len(r.Points))
	}
	last := r.Points[len(r.Points)-1]
	if last.Stages != 186 {
		t.Fatalf("largest job %d, want 186 (the trace max)", last.Stages)
	}
	// Paper: ≤1.2 s at 186 stages. Give 5× slack for CI machines.
	if last.ModelMs > 6000 {
		t.Errorf("Alg.1 took %.0f ms at 186 stages; paper ≤1200 ms", last.ModelMs)
	}
}

func TestTable3(t *testing.T) {
	r, err := Table3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DelayNetMean <= row.SparkNetMean {
			t.Errorf("%s: DelayStage net %.1f !> Spark %.1f (paper: +18.3%%…+81.8%%)",
				row.Workload, row.DelayNetMean, row.SparkNetMean)
		}
		if row.DelayCPUMean <= row.SparkCPUMean {
			t.Errorf("%s: DelayStage CPU %.1f !> Spark %.1f (paper: +7.2%%…+28.1%%)",
				row.Workload, row.DelayCPUMean, row.SparkCPUMean)
		}
	}
}

func TestAppendixA2(t *testing.T) {
	r, err := AppendixA2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxE > 0.20 {
		t.Errorf("max prediction error %.1f%% exceeds 20%% (paper max 9.1%%)", r.MaxE*100)
	}
	if len(r.Errors) != 5 {
		t.Errorf("LDA has 5 stages, got %d errors", len(r.Errors))
	}
}

func TestOverhead(t *testing.T) {
	r, err := Overhead(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Alg1Millis <= 0 || row.Alg1Millis > 10_000 {
			t.Errorf("%s: Alg.1 %.1f ms implausible", row.Workload, row.Alg1Millis)
		}
		if row.ProfilingSecs <= 0 {
			t.Errorf("%s: profiling time %.1f", row.Workload, row.ProfilingSecs)
		}
	}
}

func TestBreakdownUnknownWorkload(t *testing.T) {
	if _, err := Breakdown(testCfg(), "NoSuchWorkload"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("All is slow")
	}
	var buf bytes.Buffer
	cfg := testCfg()
	cfg.TraceJobs = 60
	cfg.W = &buf
	if err := All(cfg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 2", "Fig. 10", "Fig. 14", "Table 3", "Table 4", "A.2", "overhead"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("All output missing %q", want)
		}
	}
}

func TestGeoExtension(t *testing.T) {
	r, err := GeoExtension(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 WAN points, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DelayJCT > row.StockJCT*1.001 {
			t.Errorf("WAN %v: geo DelayStage regressed (%.1f vs %.1f)", row.WANMBps, row.DelayJCT, row.StockJCT)
		}
	}
	// Stock JCT must grow as WAN shrinks (the WAN matters at all).
	if r.Rows[len(r.Rows)-1].StockJCT <= r.Rows[0].StockJCT {
		t.Error("narrower WAN should slow the job")
	}
}

func TestOnlineExtension(t *testing.T) {
	r, err := OnlineExtension(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("want 3 strategies, got %d", len(r.Rows))
	}
	naive, online := r.Rows[0], r.Rows[2]
	if online.MeanJCT > naive.MeanJCT*1.01 {
		t.Errorf("online multi-job DelayStage regressed: %.1f vs %.1f", online.MeanJCT, naive.MeanJCT)
	}
}

func TestSensitivity(t *testing.T) {
	r, err := Sensitivity(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Gains must rise with the contention overhead α.
	if r.AlphaGain[0.35][1] <= r.AlphaGain[0][1] {
		t.Errorf("gain at α=0.35 (%.1f%%) should exceed α=0 (%.1f%%)",
			r.AlphaGain[0.35][1], r.AlphaGain[0][1])
	}
	// AggShuffle must be useless on homogeneous parents and useful on
	// skewed ones.
	if r.SkewAggGain[0] > 1 {
		t.Errorf("AggShuffle gained %.1f%% at skew 0", r.SkewAggGain[0])
	}
	if r.SkewAggGain[0.8] < 1 {
		t.Errorf("AggShuffle gained only %.1f%% at skew 0.8", r.SkewAggGain[0.8])
	}
	// Candidate budget: 32 candidates must not lose to 4.
	if r.CandidateGain[32][0] < r.CandidateGain[4][0]-1 {
		t.Errorf("more candidates lost quality: %v vs %v", r.CandidateGain[32], r.CandidateGain[4])
	}
}
