package experiments

import (
	"time"

	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// SensitivityResult carries the parameter sweeps that justify the
// reproduction's main free parameters (DESIGN.md "Key design decisions").
type SensitivityResult struct {
	// Slot granularity sweep (CosineSimilarity): slot seconds → JCT gain %.
	SlotGain map[float64]float64
	// Candidate budget sweep: MaxCandidates → (gain %, Alg. 1 ms).
	CandidateGain map[int][2]float64
	// Contention overhead sweep: α → (stock JCT, gain %).
	AlphaGain map[float64][2]float64
	// AggShuffle skew sweep: parent skew → AggShuffle gain % over Spark
	// on a two-stage chain (generalizes the paper's LDA observation).
	SkewAggGain map[float64]float64
}

// Sensitivity sweeps the reproduction's free parameters. Not a paper
// artifact; it documents how the headline results depend on the knobs the
// substitution introduced.
func Sensitivity(cfg Config) (*SensitivityResult, error) {
	cfg.defaults()
	c := cfg.cluster()
	out := &SensitivityResult{
		SlotGain:      map[float64]float64{},
		CandidateGain: map[int][2]float64{},
		AlphaGain:     map[float64][2]float64{},
		SkewAggGain:   map[float64]float64{},
	}

	job := workload.CosineSimilarity(c, cfg.Scale)
	gainOf := func(delays map[dag.StageID]float64, opts sim.Options) (float64, error) {
		opts.Cluster = c
		res, err := sim.Run(opts, []sim.JobRun{{Job: job, Delays: delays}})
		if err != nil {
			return 0, err
		}
		base, err := sim.Run(opts, []sim.JobRun{{Job: job}})
		if err != nil {
			return 0, err
		}
		return 100 * (base.JCT(0) - res.JCT(0)) / base.JCT(0), nil
	}

	// 1. Slot granularity.
	for _, slot := range []float64{0.5, 1, 2, 5, 10} {
		s, err := core.Compute(core.Options{Cluster: c, SlotSeconds: slot}, job)
		if err != nil {
			return nil, err
		}
		g, err := gainOf(s.Delays, sim.Options{TrackNode: -1})
		if err != nil {
			return nil, err
		}
		out.SlotGain[slot] = g
	}

	// 2. Candidate budget.
	for _, mc := range []int{4, 8, 16, 32, 64} {
		t0 := time.Now()
		s, err := core.Compute(core.Options{Cluster: c, MaxCandidates: mc}, job)
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		g, err := gainOf(s.Delays, sim.Options{TrackNode: -1})
		if err != nil {
			return nil, err
		}
		out.CandidateGain[mc] = [2]float64{g, ms}
	}

	// 3. Contention overhead α (schedule planned at the default, evaluated
	// under each α — the bench-style ablation).
	sched, err := core.Compute(core.Options{Cluster: c}, job)
	if err != nil {
		return nil, err
	}
	for _, alpha := range []float64{-1, 0.12, 0.22, 0.35} {
		opts := sim.Options{TrackNode: -1, ContentionOverhead: alpha, Cluster: c}
		base, err := sim.Run(opts, []sim.JobRun{{Job: job}})
		if err != nil {
			return nil, err
		}
		g, err := gainOf(sched.Delays, sim.Options{TrackNode: -1, ContentionOverhead: alpha})
		if err != nil {
			return nil, err
		}
		key := alpha
		if key < 0 {
			key = 0
		}
		out.AlphaGain[key] = [2]float64{base.JCT(0), g}
	}

	// 4. AggShuffle benefit vs parent skew on a two-stage chain.
	for _, skew := range []float64{0, 0.2, 0.5, 0.8} {
		g := dag.New()
		g.MustAdd(dag.Stage{ID: 1})
		g.MustAdd(dag.Stage{ID: 2, Parents: []dag.StageID{1}})
		p := workload.FromPhases(c, workload.PhaseSpec{
			ReadSec: 60 * cfg.Scale, ComputeSec: 80 * cfg.Scale, WriteSec: 20 * cfg.Scale, Skew: skew,
		})
		chain := &workload.Job{Name: "chain", Graph: g,
			Profiles: map[dag.StageID]workload.StageProfile{1: p, 2: p}}
		if err := chain.Validate(); err != nil {
			return nil, err
		}
		plain, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1}, []sim.JobRun{{Job: chain}})
		if err != nil {
			return nil, err
		}
		agg, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1, AggShuffle: true}, []sim.JobRun{{Job: chain}})
		if err != nil {
			return nil, err
		}
		out.SkewAggGain[skew] = 100 * (plain.JCT(0) - agg.JCT(0)) / plain.JCT(0)
	}

	fprintf(cfg.W, "== Sensitivity sweeps (reproduction parameters) ==\n")
	fprintf(cfg.W, "slot seconds → DelayStage gain:")
	for _, s := range []float64{0.5, 1, 2, 5, 10} {
		fprintf(cfg.W, "  %.1fs:%.1f%%", s, out.SlotGain[s])
	}
	fprintf(cfg.W, "\ncandidates   → gain (Alg.1 ms):")
	for _, mc := range []int{4, 8, 16, 32, 64} {
		v := out.CandidateGain[mc]
		fprintf(cfg.W, "  %d:%.1f%%(%.0fms)", mc, v[0], v[1])
	}
	fprintf(cfg.W, "\nα            → stock JCT, gain:")
	for _, a := range []float64{0, 0.12, 0.22, 0.35} {
		v := out.AlphaGain[a]
		fprintf(cfg.W, "  %.2f:%.0fs,%.1f%%", a, v[0], v[1])
	}
	fprintf(cfg.W, "\nparent skew  → AggShuffle gain:")
	for _, s := range []float64{0, 0.2, 0.5, 0.8} {
		fprintf(cfg.W, "  %.1f:%.1f%%", s, out.SkewAggGain[s])
	}
	fprintf(cfg.W, "\n\n")
	return out, nil
}
