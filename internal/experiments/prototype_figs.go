package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"delaystage/internal/cluster"
	"delaystage/internal/core"
	"delaystage/internal/dag"
	"delaystage/internal/metrics"
	"delaystage/internal/perfmodel"
	"delaystage/internal/profiler"
	"delaystage/internal/scheduler"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// Fig10Row is one bar group of Fig. 10: a workload's JCT under the three
// strategies, with error bars over cfg.Reps profiling-noise repetitions.
type Fig10Row struct {
	Workload   string
	SparkMean  float64
	SparkStd   float64
	AggMean    float64
	AggStd     float64
	DelayMean  float64
	DelayStd   float64
	DelayGainP float64 // % JCT reduction vs Spark
	AggGainP   float64
	// LowerBound is the critical-path time with every stage uncontended —
	// no schedule can beat it. DelayMean/LowerBound measures how much
	// contention cost remains after interleaving (not a paper metric).
	LowerBound float64
}

// Fig10Result carries the full Fig. 10 table.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 reproduces Fig. 10: the JCT of the four benchmark workloads under
// stock Spark, AggShuffle and DelayStage on the 30-node cluster. Each of
// the cfg.Reps repetitions re-profiles the job with fresh measurement
// noise (the paper repeats each run five times), so the error bars cover
// both the scheduler's sensitivity to imperfect parameters and run-to-run
// variation.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg.defaults()
	base := cfg.cluster()
	out := &Fig10Result{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Run-to-run variance: EC2 network bandwidth fluctuates a few percent
	// between runs (the paper repeats five times and reports error bars).
	// All stochastic draws happen here, sequentially, in the original
	// workload × rep nesting order; the grid cells below are then pure
	// functions of their predrawn cluster and can run on any worker.
	clusters := make([]*cluster.Cluster, len(workloadNames)*cfg.Reps)
	for i := range clusters {
		clusters[i] = jitterCluster(base, rng, 0.03)
	}
	type cell struct{ spark, agg, delay float64 }
	cells := make([]cell, len(clusters))
	err := cfg.forEach(len(cells), func(i int) error {
		name := workloadNames[i/cfg.Reps]
		rep := i % cfg.Reps
		seed := cfg.Seed + int64(rep)*101
		// The job's data volumes are fixed (built against the nominal
		// cluster); only the run's bandwidths fluctuate.
		c := clusters[i]
		truth := workload.PaperWorkloads(base, cfg.Scale)[name]
		// Spark and AggShuffle do not depend on profiling.
		sres, _, err := runUnder(c, truth, scheduler.Spark{}, sim.Options{TrackNode: -1})
		if err != nil {
			return err
		}
		ares, _, err := runUnder(c, truth, scheduler.AggShuffle{}, sim.Options{TrackNode: -1})
		if err != nil {
			return err
		}
		// DelayStage plans on profiled (noisy) parameters but runs
		// against the true job.
		prof, err := profiler.ProfileJob(truth, profiler.Options{Seed: seed})
		if err != nil {
			return err
		}
		sched, err := core.Compute(core.Options{Cluster: c}, prof.Estimated)
		if err != nil {
			return err
		}
		dres, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
			[]sim.JobRun{{Job: truth, Delays: sched.Delays}})
		if err != nil {
			return err
		}
		cells[i] = cell{spark: sres.JCT(0), agg: ares.JCT(0), delay: dres.JCT(0)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for wi, name := range workloadNames {
		var spark, agg, delay []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			cl := cells[wi*cfg.Reps+rep]
			spark = append(spark, cl.spark)
			agg = append(agg, cl.agg)
			delay = append(delay, cl.delay)
		}
		row := Fig10Row{
			Workload:  name,
			SparkMean: metrics.Mean(spark), SparkStd: metrics.StdDev(spark),
			AggMean: metrics.Mean(agg), AggStd: metrics.StdDev(agg),
			DelayMean: metrics.Mean(delay), DelayStd: metrics.StdDev(delay),
		}
		{
			truth := workload.PaperWorkloads(base, cfg.Scale)[name]
			m, err := perfmodel.New(base)
			if err != nil {
				return nil, err
			}
			solo := m.SoloTimes(truth)
			_, lb := dag.CriticalPath(truth.Graph, func(id dag.StageID) float64 { return solo[id] })
			row.LowerBound = lb
		}
		row.DelayGainP = 100 * (row.SparkMean - row.DelayMean) / row.SparkMean
		row.AggGainP = 100 * (row.SparkMean - row.AggMean) / row.SparkMean
		out.Rows = append(out.Rows, row)
	}
	fprintf(cfg.W, "== Fig. 10: job completion time (s), mean±std over %d runs ==\n", cfg.Reps)
	fprintf(cfg.W, "%-22s %16s %16s %16s %10s %12s\n", "workload", "Spark", "AggShuffle", "DelayStage", "Δ vs Spark", "vs bound")
	for _, r := range out.Rows {
		fprintf(cfg.W, "%-22s %9.1f±%-6.1f %9.1f±%-6.1f %9.1f±%-6.1f %9.1f%% %11.2f×\n",
			r.Workload, r.SparkMean, r.SparkStd, r.AggMean, r.AggStd, r.DelayMean, r.DelayStd,
			r.DelayGainP, r.DelayMean/r.LowerBound)
	}
	fprintf(cfg.W, "(paper: DelayStage −17.5%%…−41.3%% vs Spark, −4.2%%…−17.4%% vs AggShuffle)\n\n")
	return out, nil
}

// BreakdownResult carries a stage-execution breakdown figure (Figs. 11/16).
type BreakdownResult struct {
	Workload           string
	SparkGantt         string
	AggGantt           string
	DelayGantt         string
	SparkJCT, DelayJCT float64
	DelayedStages      []dag.StageID
	LongestPathGainP   float64 // % reduction of the parallel region
}

// Breakdown renders one workload's per-stage timeline under the three
// strategies. Figs. 11 (CosineSimilarity, LDA) and 16 (ConnectedComponents,
// TriangleCount) are instances of it.
func Breakdown(cfg Config, name string) (*BreakdownResult, error) {
	cfg.defaults()
	c := cfg.cluster()
	job := workload.PaperWorkloads(c, cfg.Scale)[name]
	if job == nil {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	sres, _, err := runUnder(c, job, scheduler.Spark{}, sim.Options{TrackNode: -1})
	if err != nil {
		return nil, err
	}
	ares, _, err := runUnder(c, job, scheduler.AggShuffle{}, sim.Options{TrackNode: -1})
	if err != nil {
		return nil, err
	}
	sched, err := core.Compute(core.Options{Cluster: c}, job)
	if err != nil {
		return nil, err
	}
	dres, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: job, Delays: sched.Delays}})
	if err != nil {
		return nil, err
	}
	r := &BreakdownResult{
		Workload:      name,
		SparkGantt:    ganttFromTimelines(sres, job),
		AggGantt:      ganttFromTimelines(ares, job),
		DelayGantt:    ganttFromTimelines(dres, job),
		SparkJCT:      sres.JCT(0),
		DelayJCT:      dres.JCT(0),
		DelayedStages: delayedStages(sched.Delays),
	}
	// Parallel-region completion under both schedules.
	regionEnd := func(res *sim.Result) float64 {
		end := 0.0
		for _, id := range sched.K {
			if tl := res.Timeline(0, id); tl != nil && tl.End > end {
				end = tl.End
			}
		}
		return end
	}
	se, de := regionEnd(sres), regionEnd(dres)
	if se > 0 {
		r.LongestPathGainP = 100 * (se - de) / se
	}
	fprintf(cfg.W, "== Stage breakdown: %s ==\n", name)
	fprintf(cfg.W, "Spark (JCT %.0fs):\n%s", r.SparkJCT, r.SparkGantt)
	fprintf(cfg.W, "AggShuffle (JCT %.0fs):\n%s", ares.JCT(0), r.AggGantt)
	fprintf(cfg.W, "DelayStage (JCT %.0fs, delaying stages %v, parallel region −%.1f%%):\n%s\n",
		r.DelayJCT, r.DelayedStages, r.LongestPathGainP, r.DelayGantt)
	return r, nil
}

// Fig11Result groups the two Fig. 11 breakdowns.
type Fig11Result struct {
	Cosine *BreakdownResult
	LDA    *BreakdownResult
}

// Fig11 reproduces Fig. 11 (CosineSimilarity and LDA breakdowns).
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg.defaults()
	fprintf(cfg.W, "== Fig. 11 ==\n")
	cos, err := Breakdown(cfg, "CosineSimilarity")
	if err != nil {
		return nil, err
	}
	lda, err := Breakdown(cfg, "LDA")
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Cosine: cos, LDA: lda}, nil
}

// Fig16Result groups the two Fig. 16 breakdowns (Appendix A.1).
type Fig16Result struct {
	Connected *BreakdownResult
	Triangle  *BreakdownResult
}

// Fig16 reproduces Fig. 16 (ConnectedComponents and TriangleCount
// breakdowns; paper: parallel region shortened 28.2% and 42.0%).
func Fig16(cfg Config) (*Fig16Result, error) {
	cfg.defaults()
	fprintf(cfg.W, "== Fig. 16 (Appendix A.1) ==\n")
	con, err := Breakdown(cfg, "ConnectedComponents")
	if err != nil {
		return nil, err
	}
	tri, err := Breakdown(cfg, "TriangleCount")
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Connected: con, Triangle: tri}, nil
}

// UtilSeriesResult carries a worker node's utilization time series under
// Spark and DelayStage for one workload (Figs. 12/17 panels).
type UtilSeriesResult struct {
	Workload     string
	SparkNetMBps []float64
	DelayNetMBps []float64
	SparkCPU     []float64
	DelayCPU     []float64
	BinSeconds   float64
}

// UtilSeries computes one panel of Figs. 12/17.
func UtilSeries(cfg Config, name string) (*UtilSeriesResult, error) {
	cfg.defaults()
	c := cfg.cluster()
	job := workload.PaperWorkloads(c, cfg.Scale)[name]
	if job == nil {
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	sres, _, err := runUnder(c, job, scheduler.Spark{}, sim.Options{TrackNode: 0})
	if err != nil {
		return nil, err
	}
	dres, _, err := runUnder(c, job, scheduler.DelayStage{}, sim.Options{TrackNode: 0})
	if err != nil {
		return nil, err
	}
	end := math.Max(sres.JCT(0), dres.JCT(0))
	bin := end / 80
	r := &UtilSeriesResult{Workload: name, BinSeconds: bin}
	for _, v := range metrics.ResampleStep(seriesToStepPoints(sres.Node.NetRate), 0, end, bin) {
		r.SparkNetMBps = append(r.SparkNetMBps, mbps(v))
	}
	for _, v := range metrics.ResampleStep(seriesToStepPoints(dres.Node.NetRate), 0, end, bin) {
		r.DelayNetMBps = append(r.DelayNetMBps, mbps(v))
	}
	r.SparkCPU = metrics.ResampleStep(seriesToStepPoints(sres.Node.CPUBusy), 0, end, bin)
	r.DelayCPU = metrics.ResampleStep(seriesToStepPoints(dres.Node.CPUBusy), 0, end, bin)
	fprintf(cfg.W, "-- %s (bin %.0fs) --\n", name, bin)
	fprintf(cfg.W, "net  Spark      %s\n", metrics.Sparkline(r.SparkNetMBps))
	fprintf(cfg.W, "net  DelayStage %s\n", metrics.Sparkline(r.DelayNetMBps))
	fprintf(cfg.W, "CPU  Spark      %s\n", metrics.Sparkline(r.SparkCPU))
	fprintf(cfg.W, "CPU  DelayStage %s\n", metrics.Sparkline(r.DelayCPU))
	return r, nil
}

// Fig12Result groups the Fig. 12 panels.
type Fig12Result struct {
	Cosine   *UtilSeriesResult
	Triangle *UtilSeriesResult
}

// Fig12 reproduces Fig. 12: network throughput and CPU utilization of a
// worker node running CosineSimilarity and TriangleCount under Spark and
// DelayStage.
func Fig12(cfg Config) (*Fig12Result, error) {
	cfg.defaults()
	fprintf(cfg.W, "== Fig. 12 ==\n")
	cos, err := UtilSeries(cfg, "CosineSimilarity")
	if err != nil {
		return nil, err
	}
	tri, err := UtilSeries(cfg, "TriangleCount")
	if err != nil {
		return nil, err
	}
	fprintf(cfg.W, "\n")
	return &Fig12Result{Cosine: cos, Triangle: tri}, nil
}

// Fig17Result groups the Fig. 17 panels (Appendix A.3).
type Fig17Result struct {
	Connected *UtilSeriesResult
	LDA       *UtilSeriesResult
}

// Fig17 reproduces Fig. 17: the same measurement for ConnectedComponents
// and LDA.
func Fig17(cfg Config) (*Fig17Result, error) {
	cfg.defaults()
	fprintf(cfg.W, "== Fig. 17 (Appendix A.3) ==\n")
	con, err := UtilSeries(cfg, "ConnectedComponents")
	if err != nil {
		return nil, err
	}
	lda, err := UtilSeries(cfg, "LDA")
	if err != nil {
		return nil, err
	}
	fprintf(cfg.W, "\n")
	return &Fig17Result{Connected: con, LDA: lda}, nil
}

// Fig13Result carries the executor-occupation comparison of Fig. 13.
type Fig13Result struct {
	// StockOcc / DelayOcc map each stage to its occupancy series, binned.
	StockOcc, DelayOcc map[dag.StageID][]float64
	BinSeconds         float64
	Stages             []dag.StageID
}

// Fig13 reproduces Fig. 13: the number of executors occupied by each stage
// of CosineSimilarity over time, stock Spark vs DelayStage.
func Fig13(cfg Config) (*Fig13Result, error) {
	cfg.defaults()
	c := cfg.cluster()
	job := workload.PaperWorkloads(c, cfg.Scale)["CosineSimilarity"]
	sres, _, err := runUnder(c, job, scheduler.Spark{}, sim.Options{TrackNode: -1, TrackOccupancy: true})
	if err != nil {
		return nil, err
	}
	dres, _, err := runUnder(c, job, scheduler.DelayStage{}, sim.Options{TrackNode: -1, TrackOccupancy: true})
	if err != nil {
		return nil, err
	}
	end := math.Max(sres.JCT(0), dres.JCT(0))
	bin := end / 70
	r := &Fig13Result{
		StockOcc:   occupancyBins(sres, end, bin),
		DelayOcc:   occupancyBins(dres, end, bin),
		BinSeconds: bin,
		Stages:     job.Graph.Stages(),
	}
	fprintf(cfg.W, "== Fig. 13: executor occupation by stage, CosineSimilarity ==\n")
	fprintf(cfg.W, "stock Spark:\n")
	renderOcc(cfg, r.Stages, r.StockOcc)
	fprintf(cfg.W, "DelayStage:\n")
	renderOcc(cfg, r.Stages, r.DelayOcc)
	fprintf(cfg.W, "\n")
	return r, nil
}

func occupancyBins(res *sim.Result, end, bin float64) map[dag.StageID][]float64 {
	byStage := map[dag.StageID][]metrics.StepPoint{}
	for _, seg := range res.Occupancy {
		byStage[seg.Stage] = append(byStage[seg.Stage],
			metrics.StepPoint{T: seg.From, V: seg.Executors},
			metrics.StepPoint{T: seg.To, V: 0})
	}
	out := map[dag.StageID][]float64{}
	for id, pts := range byStage {
		sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		out[id] = metrics.ResampleStep(pts, 0, end, bin)
	}
	return out
}

func renderOcc(cfg Config, stages []dag.StageID, occ map[dag.StageID][]float64) {
	for _, id := range stages {
		if len(occ[id]) == 0 {
			continue
		}
		fprintf(cfg.W, "  stage %-2d %s (peak %.0f)\n", id, metrics.Sparkline(occ[id]), maxOf(occ[id]))
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Table3Row summarizes a worker node's resource usage for one workload.
type Table3Row struct {
	Workload                  string
	SparkNetMean, SparkNetStd float64 // MB/s
	DelayNetMean, DelayNetStd float64
	SparkCPUMean, SparkCPUStd float64 // percent
	DelayCPUMean, DelayCPUStd float64
}

// Table3Result carries the full Table 3.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 reproduces Table 3: time-weighted mean (std) of a worker node's
// network throughput and CPU utilization under Spark vs DelayStage.
func Table3(cfg Config) (*Table3Result, error) {
	cfg.defaults()
	c := cfg.cluster()
	out := &Table3Result{}
	for _, name := range workloadNames {
		job := workload.PaperWorkloads(c, cfg.Scale)[name]
		sres, _, err := runUnder(c, job, scheduler.Spark{}, sim.Options{TrackNode: 0})
		if err != nil {
			return nil, err
		}
		dres, _, err := runUnder(c, job, scheduler.DelayStage{}, sim.Options{TrackNode: 0})
		if err != nil {
			return nil, err
		}
		row := Table3Row{Workload: name}
		m, s := metrics.TimeWeightedMeanStd(seriesToStepPoints(sres.Node.NetRate), 0, sres.JCT(0))
		row.SparkNetMean, row.SparkNetStd = mbps(m), mbps(s)
		m, s = metrics.TimeWeightedMeanStd(seriesToStepPoints(dres.Node.NetRate), 0, dres.JCT(0))
		row.DelayNetMean, row.DelayNetStd = mbps(m), mbps(s)
		m, s = metrics.TimeWeightedMeanStd(seriesToStepPoints(sres.Node.CPUBusy), 0, sres.JCT(0))
		row.SparkCPUMean, row.SparkCPUStd = m*100, s*100
		m, s = metrics.TimeWeightedMeanStd(seriesToStepPoints(dres.Node.CPUBusy), 0, dres.JCT(0))
		row.DelayCPUMean, row.DelayCPUStd = m*100, s*100
		out.Rows = append(out.Rows, row)
	}
	fprintf(cfg.W, "== Table 3: worker-node usage, mean (std) ==\n")
	fprintf(cfg.W, "%-22s %21s %21s %19s %19s\n", "workload",
		"net Spark MB/s", "net DelayStage MB/s", "CPU Spark %", "CPU DelayStage %")
	for _, r := range out.Rows {
		fprintf(cfg.W, "%-22s %12.1f (%5.1f) %13.1f (%5.1f) %11.1f (%5.1f) %11.1f (%5.1f)\n",
			r.Workload, r.SparkNetMean, r.SparkNetStd, r.DelayNetMean, r.DelayNetStd,
			r.SparkCPUMean, r.SparkCPUStd, r.DelayCPUMean, r.DelayCPUStd)
	}
	fprintf(cfg.W, "(paper: DelayStage raises mean net 18.3%%–81.8%% and CPU 7.2%%–28.1%%, with smaller std)\n\n")
	return out, nil
}

// A2Result carries the Appendix A.2 model-accuracy measurement.
type A2Result struct {
	Workload          string
	Errors            map[dag.StageID]float64 // relative error per stage
	MinE, MaxE, MeanE float64
}

// AppendixA2 reproduces the A.2 accuracy claim: the performance model's
// per-stage execution-time prediction versus the fluid simulation of the
// full LDA job under stock scheduling (paper: 1.6%–9.1% error).
func AppendixA2(cfg Config) (*A2Result, error) {
	cfg.defaults()
	c := cfg.cluster()
	job := workload.PaperWorkloads(c, cfg.Scale)["LDA"]
	res, _, err := runUnder(c, job, scheduler.Spark{}, sim.Options{TrackNode: -1})
	if err != nil {
		return nil, err
	}
	// Predict with the phase-aware interference model used by Alg. 1's
	// fast evaluator, built from Eq. (1)–(2) phase breakdowns.
	m, err := perfmodel.New(c)
	if err != nil {
		return nil, err
	}
	pred, err := core.PredictTimelines(m, job)
	if err != nil {
		return nil, err
	}
	r := &A2Result{Workload: "LDA", Errors: map[dag.StageID]float64{}, MinE: math.Inf(1)}
	sum := 0.0
	for _, id := range job.Graph.Stages() {
		tl := res.Timeline(0, id)
		actual := tl.End - tl.Start
		p := pred[id]
		e := perfmodel.PredictionError(p, actual)
		r.Errors[id] = e
		if e < r.MinE {
			r.MinE = e
		}
		if e > r.MaxE {
			r.MaxE = e
		}
		sum += e
	}
	r.MeanE = sum / float64(len(r.Errors))
	fprintf(cfg.W, "== Appendix A.2: stage-time prediction accuracy (LDA) ==\n")
	for _, id := range job.Graph.Stages() {
		tl := res.Timeline(0, id)
		fprintf(cfg.W, "  stage %-2d actual %7.1fs  model %7.1fs  error %5.1f%%\n",
			id, tl.End-tl.Start, pred[id], r.Errors[id]*100)
	}
	fprintf(cfg.W, "error range %.1f%%–%.1f%% (paper: 1.6%%–9.1%%)\n\n", r.MinE*100, r.MaxE*100)
	return r, nil
}

// OverheadResult carries the Sec. 5.4 runtime-overhead measurements.
type OverheadRow struct {
	Workload      string
	Alg1Millis    float64
	ProfilingSecs float64
}

// OverheadResult carries the Sec. 5.4 table.
type OverheadResult struct {
	Rows []OverheadRow
}

// Overhead reproduces the Sec. 5.4 measurements: Alg. 1 computation time
// and profiling cost per workload (paper: 58–164 ms and 45–143 s).
func Overhead(cfg Config) (*OverheadResult, error) {
	cfg.defaults()
	c := cfg.cluster()
	out := &OverheadResult{}
	for _, name := range workloadNames {
		job := workload.PaperWorkloads(c, cfg.Scale)[name]
		sched, err := core.Compute(core.Options{Cluster: c}, job)
		if err != nil {
			return nil, err
		}
		prof, err := profiler.ProfileJob(job, profiler.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, OverheadRow{
			Workload:      name,
			Alg1Millis:    float64(sched.ComputeTime.Microseconds()) / 1000,
			ProfilingSecs: prof.ProfilingTime,
		})
	}
	fprintf(cfg.W, "== Sec. 5.4: runtime overhead ==\n")
	fprintf(cfg.W, "%-22s %14s %16s\n", "workload", "Alg.1 (ms)", "profiling (s)")
	for _, r := range out.Rows {
		fprintf(cfg.W, "%-22s %14.1f %16.1f\n", r.Workload, r.Alg1Millis, r.ProfilingSecs)
	}
	fprintf(cfg.W, "(paper: Alg.1 58/76/107/164 ms; profiling 104/143/45/79 s)\n\n")
	return out, nil
}
