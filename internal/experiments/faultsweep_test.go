package experiments

import (
	"strings"
	"testing"
)

// The sweep's acceptance bar: the guarded strategy never loses more than
// 2% to stock Spark at any swept severity (the never-worse claim survives
// faults), while open-loop DelayStage — planning from mispredicted
// profiles and never revisiting its delays — loses to Spark somewhere.
func TestFaultSweep(t *testing.T) {
	var sb strings.Builder
	cfg := testCfg()
	cfg.W = &sb
	r, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(faultSweepGrid) {
		t.Fatalf("got %d points, want %d", len(r.Points), len(faultSweepGrid))
	}
	unguardedLoses := false
	for _, p := range r.Points {
		for wl, row := range p.JCT {
			spark, ds, g := row["spark"], row["delaystage"], row["guarded"]
			if spark <= 0 || ds <= 0 || g <= 0 {
				t.Fatalf("fail=%.2f %s: non-positive JCT %+v", p.FailProb, wl, row)
			}
			if g > spark*1.02 {
				t.Errorf("fail=%.2f straggle=%.2fx%g %s: guarded %.1f worse than spark %.1f beyond 2%%",
					p.FailProb, p.StragglerFrac, p.StragglerFactor, wl, g, spark)
			}
			if ds > spark*1.001 {
				unguardedLoses = true
			}
		}
	}
	if !unguardedLoses {
		t.Error("open-loop DelayStage never lost to Spark at any swept point — the guard has nothing to guard against")
	}
	if !strings.Contains(sb.String(), "FAULT sweep") {
		t.Error("sweep rendered no output")
	}
}

func BenchmarkFaultSweep(b *testing.B) {
	cfg := testCfg()
	for i := 0; i < b.N; i++ {
		if _, err := FaultSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
