package experiments

import (
	"strings"
	"testing"
)

// The sweep's acceptance bar: the guarded strategy never loses more than
// 2% to stock Spark at any swept severity (the never-worse claim survives
// faults), while open-loop DelayStage — planning from mispredicted
// profiles and never revisiting its delays — loses to Spark somewhere.
func TestFaultSweep(t *testing.T) {
	var sb strings.Builder
	cfg := testCfg()
	cfg.W = &sb
	r, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(faultSweepGrid) {
		t.Fatalf("got %d points, want %d", len(r.Points), len(faultSweepGrid))
	}
	unguardedLoses := false
	for _, p := range r.Points {
		for wl, row := range p.JCT {
			spark, ds, g := row["spark"], row["delaystage"], row["guarded"]
			if spark <= 0 || ds <= 0 || g <= 0 {
				t.Fatalf("fail=%.2f %s: non-positive JCT %+v", p.FailProb, wl, row)
			}
			if g > spark*1.02 {
				t.Errorf("fail=%.2f straggle=%.2fx%g %s: guarded %.1f worse than spark %.1f beyond 2%%",
					p.FailProb, p.StragglerFrac, p.StragglerFactor, wl, g, spark)
			}
			if ds > spark*1.001 {
				unguardedLoses = true
			}
		}
	}
	if !unguardedLoses {
		t.Error("open-loop DelayStage never lost to Spark at any swept point — the guard has nothing to guard against")
	}
	if !strings.Contains(sb.String(), "FAULT sweep") {
		t.Error("sweep rendered no output")
	}

	// Machine axis: every (grid point × mitigation) cell is present with
	// positive JCTs (+Inf marks a failed job, never 0 or negative). The
	// never-worse bar is deliberately NOT asserted here: a machine crash
	// landing after every delayed stage has submitted leaves the guard
	// nothing to revise, and the in-flight work lost at that instant is a
	// coin flip between strategies.
	if len(r.MachinePoints) != 2*len(machineSweepGrid) {
		t.Fatalf("got %d machine points, want %d", len(r.MachinePoints), 2*len(machineSweepGrid))
	}
	for _, p := range r.MachinePoints {
		for wl, row := range p.JCT {
			for _, label := range []string{"spark", "delaystage", "guarded"} {
				if !(row[label] > 0) {
					t.Fatalf("mttf=%.1f slow=%.2f mit=%v %s: non-positive %s JCT %+v",
						p.MTTFFrac, p.SlowNodeFrac, p.Mitigation, wl, label, row)
				}
			}
		}
	}
	// The mitigation stack's designed effect: at the pure slow-machine
	// point, speculation re-runs the straggling partitions elsewhere and
	// must cut stock Spark's total JCT.
	for i := 0; i+1 < len(r.MachinePoints); i += 2 {
		off, on := r.MachinePoints[i], r.MachinePoints[i+1]
		if off.MTTFFrac != 0 || off.SlowNodeFrac == 0 {
			continue
		}
		var offSum, onSum float64
		for _, wl := range workloadNames {
			offSum += off.JCT[wl]["spark"]
			onSum += on.JCT[wl]["spark"]
		}
		if !(onSum < offSum) {
			t.Errorf("slow-machine point: mitigation did not help spark (%.1f on vs %.1f off)", onSum, offSum)
		}
	}
	if !strings.Contains(sb.String(), "MACHINE sweep") {
		t.Error("machine sweep rendered no output")
	}
}

func BenchmarkFaultSweep(b *testing.B) {
	cfg := testCfg()
	for i := 0; i < b.N; i++ {
		if _, err := FaultSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
