package core

import (
	"reflect"
	"sync"
	"testing"

	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/workload"
)

// The parallel candidate scan must be bit-identical to the sequential one:
// same delays, same makespan, same evaluation count — for both evaluators
// and at worker counts above and below the candidate count.
func TestParallelScanMatchesSequential(t *testing.T) {
	c := c30()
	for _, model := range []bool{false, true} {
		for name, j := range workload.PaperWorkloads(c, 0.2) {
			seq := computeOK(t, Options{Cluster: c, UseModelEvaluator: model}, j)
			for _, par := range []int{2, 8, 100} {
				got := computeOK(t, Options{Cluster: c, UseModelEvaluator: model, Parallelism: par}, j)
				if !reflect.DeepEqual(got.Delays, seq.Delays) {
					t.Errorf("%s model=%v par=%d: delays %v != sequential %v",
						name, model, par, got.Delays, seq.Delays)
				}
				if got.Makespan != seq.Makespan || got.StockMakespan != seq.StockMakespan {
					t.Errorf("%s model=%v par=%d: makespan %v/%v != sequential %v/%v",
						name, model, par, got.Makespan, got.StockMakespan, seq.Makespan, seq.StockMakespan)
				}
				if got.Evaluations != seq.Evaluations {
					t.Errorf("%s model=%v par=%d: %d evaluations != sequential %d",
						name, model, par, got.Evaluations, seq.Evaluations)
				}
			}
		}
	}
}

// Clones must not share layout scratch with their parent: concurrent
// Makespan calls on the original and many clones with different delay
// vectors must each match their sequential answer exactly.
func TestModelEvaluatorCloneIsolated(t *testing.T) {
	c := c30()
	j := workload.LDA(c, 0.2)
	m, err := perfmodel.New(c)
	if err != nil {
		t.Fatal(err)
	}
	reach, _ := dag.NewReachability(j.Graph)
	k := dag.ParallelStages(j.Graph, reach)
	ev := newModelEvaluator(m, j, reach, k, m.SoloTimes(j))
	delays := make([]map[dag.StageID]float64, 16)
	want := make([]float64, len(delays))
	for i := range delays {
		delays[i] = map[dag.StageID]float64{k[i%len(k)]: float64(10 * (i + 1))}
		w, err := ev.Makespan(delays[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	got := make([]float64, len(delays))
	errs := make([]error, len(delays))
	for i := range delays {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = ev.Clone().Makespan(delays[i])
		}(i)
	}
	wg.Wait()
	for i := range delays {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("clone %d: makespan %v != sequential %v", i, got[i], want[i])
		}
	}
}
