package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// sandwichEps is the relative tolerance of the bound-sandwich checks: the
// analytic bounds are exact closed forms, but the simulator accumulates
// float integration error over thousands of steps.
const sandwichEps = 1e-9

// checkSandwich asserts lower ≤ simulated makespan ≤ upper for one
// (job, delays) configuration on the given cluster, fault-free.
func checkSandwich(t *testing.T, c *cluster.Cluster, j *workload.Job,
	delays map[dag.StageID]float64, label string) {
	t.Helper()
	b, err := perfmodel.NewBoundEvaluator(c, j, perfmodel.BoundConfig{IncludeWorkBound: true})
	if err != nil {
		t.Fatalf("%s: NewBoundEvaluator: %v", label, err)
	}
	bd := b.Bounds(delays)
	res, err := sim.Run(sim.Options{Cluster: c, TrackNode: -1},
		[]sim.JobRun{{Job: j, Delays: delays}})
	if err != nil {
		t.Fatalf("%s: sim: %v", label, err)
	}
	mk := res.JCT(0)
	if bd.Lower > mk*(1+sandwichEps)+sandwichEps {
		t.Errorf("%s: lower bound %.9f above sim makespan %.9f", label, bd.Lower, mk)
	}
	if bd.Upper < mk*(1-sandwichEps)-sandwichEps {
		t.Errorf("%s: upper bound %.9f below sim makespan %.9f", label, bd.Upper, mk)
	}
}

// sandwichDelayVectors builds deterministic delay vectors exercising the
// no-delay, single-delay and everyone-delayed regimes.
func sandwichDelayVectors(j *workload.Job) []map[dag.StageID]float64 {
	ids := j.Graph.Stages()
	one := map[dag.StageID]float64{ids[len(ids)/2]: 25}
	all := make(map[dag.StageID]float64, len(ids))
	for i, id := range ids {
		all[id] = float64(i%7) * 4.5
	}
	return []map[dag.StageID]float64{nil, one, all}
}

// TestBoundSandwichGallery is the tentpole property: on the planning
// cluster (the coarse aggregate node Alg. 1 evaluates against), the
// analytic bounds sandwich the exact fluid-sim makespan for every gallery
// and paper workload, fault-free, across delay vectors.
func TestBoundSandwichGallery(t *testing.T) {
	c := coarseFor(c30())
	jobs := workload.PaperWorkloads(c, 1)
	for name, j := range workload.Gallery(c, 1) {
		jobs[name] = j
	}
	names := make([]string, 0, len(jobs))
	for n := range jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		j := jobs[name]
		for vi, delays := range sandwichDelayVectors(j) {
			checkSandwich(t, c, j, delays, fmt.Sprintf("%s/delays%d", name, vi))
		}
	}
}

// randomSandwichCase builds a random DAG job and delay vector from one
// seeded Rng — shared by the table-driven property test and the fuzz
// target, so corpus seeds and CI seeds exercise identical code.
func randomSandwichCase(c *cluster.Cluster, seed int64, nStages int) (*workload.Job, map[dag.StageID]float64) {
	rng := rand.New(rand.NewSource(seed))
	j := workload.RandomJob(fmt.Sprintf("rand-%d", seed), c, nStages, rng)
	delays := map[dag.StageID]float64{}
	for _, id := range j.Graph.Stages() {
		if rng.Float64() < 0.4 {
			delays[id] = rng.Float64() * 60
		}
	}
	return j, delays
}

func TestBoundSandwichRandomJobs(t *testing.T) {
	c := coarseFor(c30())
	for seed := int64(1); seed <= 12; seed++ {
		n := 4 + int(seed)*3
		j, delays := randomSandwichCase(c, seed, n)
		checkSandwich(t, c, j, delays, fmt.Sprintf("seed%d-n%d", seed, n))
	}
}

// FuzzBoundSandwich lets `go test -fuzz` hunt for DAG shapes that break
// the sandwich; under plain `go test` only the seed corpus runs.
func FuzzBoundSandwich(f *testing.F) {
	f.Add(int64(7), 9)
	f.Add(int64(42), 25)
	f.Add(int64(1337), 50)
	c := coarseFor(c30())
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 2 {
			n = 2
		}
		if n > 80 {
			n = 80
		}
		j, delays := randomSandwichCase(c, seed, n)
		checkSandwich(t, c, j, delays, fmt.Sprintf("fuzz-seed%d-n%d", seed, n))
	})
}

// TestTwoTierByteIdentical is the invariance regression: with the bound
// tier on (default) the chosen delay vector, makespan, and path audit are
// byte-identical to the single-tier scan (DisableBoundPrune) on every
// gallery and paper workload, under both exact evaluators — and the tier
// must actually fire somewhere, or it is dead weight.
func TestTwoTierByteIdentical(t *testing.T) {
	c := c30()
	jobs := workload.PaperWorkloads(c, 1)
	for name, j := range workload.Gallery(c, 0.2) {
		jobs[name] = j
	}
	names := make([]string, 0, len(jobs))
	for n := range jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	totalPruned := 0
	for _, cfg := range []struct {
		label string
		opt   Options
	}{
		{"sim", Options{Cluster: c}},
		{"model", Options{Cluster: c, UseModelEvaluator: true}},
		{"model-par4", Options{Cluster: c, UseModelEvaluator: true, Parallelism: 4}},
	} {
		for _, name := range names {
			j := jobs[name]
			two := computeOK(t, cfg.opt, j)
			off := cfg.opt
			off.DisableBoundPrune = true
			ref := computeOK(t, off, j)
			if len(two.Delays) != len(ref.Delays) {
				t.Fatalf("%s/%s: delay sets differ: %v vs %v", cfg.label, name, two.Delays, ref.Delays)
			}
			for id, want := range ref.Delays {
				got, ok := two.Delays[id]
				if !ok || math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s/%s stage %d: two-tier delay %v != single-tier %v",
						cfg.label, name, id, got, want)
				}
			}
			if math.Float64bits(two.Makespan) != math.Float64bits(ref.Makespan) {
				t.Fatalf("%s/%s: makespan %v != %v", cfg.label, name, two.Makespan, ref.Makespan)
			}
			if ref.Prune.Bounded != 0 || ref.Prune.Pruned != 0 {
				t.Fatalf("%s/%s: single-tier run reported bound activity: %+v",
					cfg.label, name, ref.Prune)
			}
			if two.Prune.Exact != two.Evaluations {
				t.Fatalf("%s/%s: exact counter %d != evaluations %d",
					cfg.label, name, two.Prune.Exact, two.Evaluations)
			}
			totalPruned += two.Prune.Pruned
		}
	}
	if totalPruned == 0 {
		t.Fatal("bound tier never pruned a candidate across the gallery")
	}
}
