package core

import (
	"reflect"
	"sort"
	"testing"

	"delaystage/internal/cluster"
	"delaystage/internal/workload"
)

// TestEvalCacheSchedulesByteIdentical is the contract of the what-if
// layers: the memo cache is exact and forked runs are bit-identical to
// from-scratch runs, so Compute must return the very same schedule with
// the layers on (default) and off (DisableEvalCache), at any parallelism.
// The work counters must also be parallelism-invariant — they surface in
// experiment JSON that is compared across parallelism settings.
func TestEvalCacheSchedulesByteIdentical(t *testing.T) {
	c := cluster.NewM4LargeCluster(4)
	jobs := workload.PaperWorkloads(c, 0.25)
	names := make([]string, 0, len(jobs))
	for n := range jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		job := jobs[name]
		base := Options{Cluster: c, MaxCandidates: 10}
		var ref *Schedule
		for _, par := range []int{1, 4} {
			opt := base
			opt.Parallelism = par
			on, err := Compute(opt, job)
			if err != nil {
				t.Fatal(err)
			}
			opt.DisableEvalCache = true
			off, err := Compute(opt, job)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(on.Delays, off.Delays) {
				t.Fatalf("%s par=%d: delays differ with cache on/off:\non:  %v\noff: %v",
					name, par, on.Delays, off.Delays)
			}
			if on.Makespan != off.Makespan || on.StockMakespan != off.StockMakespan {
				t.Fatalf("%s par=%d: makespans differ with cache on/off: %v/%v vs %v/%v",
					name, par, on.Makespan, on.StockMakespan, off.Makespan, off.StockMakespan)
			}
			if on.Evaluations != off.Evaluations {
				t.Fatalf("%s par=%d: evaluation counts differ: %d vs %d",
					name, par, on.Evaluations, off.Evaluations)
			}
			// Counter bookkeeping: every evaluation is exactly one of
			// hit / forked / full; disabling the cache forces all-full.
			if got := on.CacheHits + on.ForkedEvals + on.FullEvals; got != on.Evaluations {
				t.Fatalf("%s par=%d: counters %d+%d+%d != evaluations %d",
					name, par, on.CacheHits, on.ForkedEvals, on.FullEvals, on.Evaluations)
			}
			if off.CacheHits != 0 || off.ForkedEvals != 0 || off.FullEvals != off.Evaluations {
				t.Fatalf("%s par=%d: disabled cache still reports hits=%d forked=%d full=%d/%d",
					name, par, off.CacheHits, off.ForkedEvals, off.FullEvals, off.Evaluations)
			}
			// These workloads re-query many configurations and scan many
			// candidates per stage: both fast paths must actually fire.
			if on.CacheHits == 0 {
				t.Errorf("%s par=%d: memo cache never hit", name, par)
			}
			if on.ForkedEvals == 0 {
				t.Errorf("%s par=%d: no evaluation was forked", name, par)
			}
			if ref == nil {
				ref = on
				continue
			}
			// Parallelism must change neither the schedule nor the counters.
			if !reflect.DeepEqual(ref.Delays, on.Delays) || ref.Makespan != on.Makespan {
				t.Fatalf("%s: schedule differs across parallelism", name)
			}
			if ref.CacheHits != on.CacheHits || ref.ForkedEvals != on.ForkedEvals || ref.FullEvals != on.FullEvals {
				t.Fatalf("%s: counters differ across parallelism: %d/%d/%d vs %d/%d/%d",
					name, ref.CacheHits, ref.ForkedEvals, ref.FullEvals,
					on.CacheHits, on.ForkedEvals, on.FullEvals)
			}
		}
	}
}
