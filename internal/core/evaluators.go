package core

import (
	"sort"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// restrictJob returns the job induced by the active stage set (nil = the
// job itself): only active stages remain and parent edges to inactive
// stages are dropped, which is how Alg. 1 sees the world while paths are
// still being scheduled one by one.
func restrictJob(job *workload.Job, active map[dag.StageID]bool) (*workload.Job, error) {
	if active == nil {
		return job, nil
	}
	g := dag.New()
	profiles := make(map[dag.StageID]workload.StageProfile)
	for _, id := range job.Graph.Stages() {
		if !active[id] {
			continue
		}
		var parents []dag.StageID
		for _, p := range job.Graph.Parents(id) {
			if active[p] {
				parents = append(parents, p)
			}
		}
		if err := g.AddStage(dag.Stage{ID: id, Name: job.Graph.Stage(id).Name, Parents: parents}); err != nil {
			return nil, err
		}
		profiles[id] = job.Profiles[id]
	}
	sub := &workload.Job{Name: job.Name, Graph: g, Profiles: profiles}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	return sub, nil
}

// simEvaluator answers Alg. 1's "what happens if stage k is delayed by x̂"
// question by running the coarse fluid simulator on the active sub-job —
// the faithful interpretation of lines 12–14 (stage time under the
// resulting parallelism, completion-time updates of subsequent and
// interfering stages).
type simEvaluator struct {
	coarse *cluster.Cluster
	job    *workload.Job
	cur    *workload.Job // restricted to the active set
	inK    map[dag.StageID]bool
}

func newSimEvaluator(c *cluster.Cluster, job *workload.Job, k []dag.StageID) *simEvaluator {
	inK := make(map[dag.StageID]bool, len(k))
	for _, id := range k {
		inK[id] = true
	}
	return &simEvaluator{coarse: sim.Coarsen(c), job: job, cur: job, inK: inK}
}

// Clone returns a concurrency-safe copy: every field is read-only during
// Makespan (each call runs a fresh engine on a private delay map), so a
// shallow copy suffices.
func (e *simEvaluator) Clone() Evaluator {
	c := *e
	return &c
}

func (e *simEvaluator) SetActive(active map[dag.StageID]bool) error {
	sub, err := restrictJob(e.job, active)
	if err != nil {
		return err
	}
	e.cur = sub
	return nil
}

func (e *simEvaluator) Makespan(delays map[dag.StageID]float64) (float64, error) {
	// Delays for stages outside the active sub-job are ignored by the sim
	// via filtering here.
	var d map[dag.StageID]float64
	if len(delays) > 0 {
		d = make(map[dag.StageID]float64, len(delays))
		for id, v := range delays {
			if e.cur.Graph.Stage(id) != nil {
				d[id] = v
			}
		}
	}
	res, err := sim.Run(sim.Options{Cluster: e.coarse, TrackNode: -1},
		[]sim.JobRun{{Job: e.cur, Delays: d}})
	if err != nil {
		return 0, err
	}
	// Completion time of the whole (active) job, measured from job start.
	// Eq. (3) charges the delays x_k to the path times, so a window-width
	// objective would let delays shift every path later for free; and
	// minimizing only the last *parallel* stage can push the specific
	// parents of a sequential tail later while the K-maximum shrinks,
	// hurting the JCT the paper reports. The job end subsumes both: with
	// zero-length tails it equals the parallel-region completion.
	end := 0.0
	for _, tl := range res.Timelines {
		if tl.End > end {
			end = tl.End
		}
	}
	return end, nil
}

// modelEvaluator approximates the same question in closed form, phase by
// phase: every stage is three consecutive intervals — shuffle read
// (network), compute (executors), shuffle write (disk) — and each phase's
// solo duration is stretched by the time-averaged number of *same-phase*
// concurrent stages (the equal-share assumption of Eq. 1). Interval layout
// and stretches are iterated to a fixed point. O(|K|²) per evaluation and
// close enough to the fluid simulation to rank delay candidates correctly
// for the DAG shapes in the Alibaba trace.
type modelEvaluator struct {
	job    *workload.Job
	topo   []dag.StageID
	active map[dag.StageID]bool
	inK    map[dag.StageID]bool
	soloR  map[dag.StageID]float64
	soloC  map[dag.StageID]float64
	soloW  map[dag.StageID]float64
	alpha  float64 // contention-overhead factor matching the simulator

	// Flattened per-index state, precomputed once: layout() runs tens of
	// thousands of times per Compute call on large jobs.
	parentIdx  [][]int
	soloRi     []float64
	soloCi     []float64
	soloWi     []float64
	activeIdx  []bool
	bounds     [][4]float64
	stretch    [][3]float64
	covScratch []covEvent
}

func newModelEvaluator(m *perfmodel.Model, job *workload.Job, reach *dag.Reachability,
	k []dag.StageID, solo map[dag.StageID]float64) *modelEvaluator {
	inK := make(map[dag.StageID]bool, len(k))
	for _, id := range k {
		inK[id] = true
	}
	topo, _ := job.Graph.TopoSort()
	e := &modelEvaluator{
		job: job, topo: topo, inK: inK,
		soloR: make(map[dag.StageID]float64, len(topo)),
		soloC: make(map[dag.StageID]float64, len(topo)),
		soloW: make(map[dag.StageID]float64, len(topo)),
		alpha: 0.22,
	}
	idx := make(map[dag.StageID]int, len(topo))
	for i, id := range topo {
		idx[id] = i
	}
	n := len(topo)
	e.parentIdx = make([][]int, n)
	e.soloRi = make([]float64, n)
	e.soloCi = make([]float64, n)
	e.soloWi = make([]float64, n)
	e.activeIdx = make([]bool, n)
	e.bounds = make([][4]float64, n)
	e.stretch = make([][3]float64, n)
	for i, id := range topo {
		r, c, w := m.PhaseBreakdown(job.Profiles[id])
		e.soloR[id], e.soloC[id], e.soloW[id] = r, c, w
		e.soloRi[i], e.soloCi[i], e.soloWi[i] = r, c, w
		for _, p := range job.Graph.Stage(id).Parents {
			e.parentIdx[i] = append(e.parentIdx[i], idx[p])
		}
		e.activeIdx[i] = true
	}
	return e
}

// Clone returns a copy whose layout scratch (bounds, stretch, coverage
// events) is private, so concurrent Makespan calls on distinct clones are
// safe. The immutable inputs (topo, profiles, parent indices) and the
// active set — fixed for the clone's scan-scoped lifetime — are shared.
func (e *modelEvaluator) Clone() Evaluator {
	c := *e
	n := len(e.topo)
	c.bounds = make([][4]float64, n)
	c.stretch = make([][3]float64, n)
	c.covScratch = nil
	return &c
}

func (e *modelEvaluator) SetActive(active map[dag.StageID]bool) error {
	e.active = active
	for i, id := range e.topo {
		e.activeIdx[i] = active == nil || active[id]
	}
	return nil
}

func (e *modelEvaluator) isActive(id dag.StageID) bool {
	return e.active == nil || e.active[id]
}

// PredictTimelines returns the model-predicted execution time of every
// stage of the job under stock scheduling (no delays), using the same
// phase-aware interference model as Alg. 1's fast evaluator. This is the
// prediction the Appendix A.2 experiment scores against the simulator.
func PredictTimelines(m *perfmodel.Model, job *workload.Job) (map[dag.StageID]float64, error) {
	reach, err := dag.NewReachability(job.Graph)
	if err != nil {
		return nil, err
	}
	k := dag.ParallelStages(job.Graph, reach)
	solo := m.SoloTimes(job)
	ev := newModelEvaluator(m, job, reach, k, solo)
	bounds, err := ev.layout(nil)
	if err != nil {
		return nil, err
	}
	out := make(map[dag.StageID]float64, len(ev.topo))
	for i, id := range ev.topo {
		out[id] = bounds[i][3] - bounds[i][0]
	}
	return out, nil
}

// Makespan lays every active stage out as three consecutive phase
// intervals and iterates interference stretches to a fixed point.
func (e *modelEvaluator) Makespan(delays map[dag.StageID]float64) (float64, error) {
	bounds, err := e.layout(delays)
	if err != nil {
		return 0, err
	}
	// Completion time of the last active stage from job start (see the
	// sim evaluator for why the job end, not the K-set end, is the
	// objective).
	hi := 0.0
	for i := range e.topo {
		if !e.activeIdx[i] {
			continue
		}
		if bounds[i][3] > hi {
			hi = bounds[i][3]
		}
	}
	return hi, nil
}

// layout computes every active stage's phase boundaries under the delays.
// It reuses the evaluator's scratch buffers; the returned slice is only
// valid until the next call.
func (e *modelEvaluator) layout(delays map[dag.StageID]float64) ([][4]float64, error) {
	bounds, stretch := e.bounds, e.stretch
	for i := range stretch {
		stretch[i] = [3]float64{1, 1, 1}
		bounds[i] = [4]float64{}
	}
	iters := 4
	if len(e.topo) > 100 {
		// Large trace jobs: one fewer fixed-point pass keeps Alg. 1's
		// runtime in the paper's Fig. 15 envelope at negligible accuracy
		// cost (the layout changes little after the second pass).
		iters = 2
	}
	for it := 0; it < iters; it++ {
		for i, id := range e.topo {
			if !e.activeIdx[i] {
				continue
			}
			ready := 0.0
			for _, pi := range e.parentIdx[i] {
				if !e.activeIdx[pi] {
					continue
				}
				if pe := bounds[pi][3]; pe > ready {
					ready = pe
				}
			}
			d := 0.0
			if delays != nil {
				d = delays[id]
			}
			b := ready + d
			bounds[i][0] = b
			b += e.soloRi[i] * stretch[i][0]
			bounds[i][1] = b
			b += e.soloCi[i] * stretch[i][1]
			bounds[i][2] = b
			b += e.soloWi[i] * stretch[i][2]
			bounds[i][3] = b
		}
		if it == iters-1 {
			break
		}
		// Per-phase stretch: equal sharing with contention overhead. With
		// a time-averaged overlap count f̄ (self included), the effective
		// rate is 1/(f̄·(1+α(f̄−1))) of solo. The pairwise overlap sums are
		// answered from a per-phase coverage integral in O(log n) per
		// stage instead of O(n) — Alg. 1 calls this layout thousands of
		// times on 100+-stage trace jobs (Fig. 15).
		for ph := 0; ph < 3; ph++ {
			cov := e.buildCoverage(bounds, ph)
			for i := range e.topo {
				if !e.activeIdx[i] {
					continue
				}
				s, f := bounds[i][ph], bounds[i][ph+1]
				if f <= s {
					stretch[i][ph] = 1
					continue
				}
				// Total coverage over [s,f] minus this stage's own f−s.
				overlap := cov.integral(f) - cov.integral(s) - (f - s)
				if overlap < 0 {
					overlap = 0
				}
				fbar := 1 + overlap/(f-s)
				extra := fbar - 1
				if extra > 4 { // matches the simulator's saturation cap
					extra = 4
				}
				stretch[i][ph] = fbar * (1 + e.alpha*extra)
			}
		}
	}
	return bounds, nil
}

// coverage is a piecewise-linear integral of interval-coverage count over
// time: integral(t) = ∫₀ᵗ #{active intervals covering u} du.
type coverage struct {
	ts  []float64 // event times, ascending
	cum []float64 // integral value at each event time
	cnt []float64 // coverage count on [ts[i], ts[i+1])
}

// covEvent is one +1/−1 coverage-count change.
type covEvent struct {
	t float64
	d float64
}

// buildCoverage indexes the active stages' ph-phase intervals.
func (e *modelEvaluator) buildCoverage(bounds [][4]float64, ph int) *coverage {
	evs := e.covScratch[:0]
	for i := range e.topo {
		if !e.activeIdx[i] {
			continue
		}
		s, f := bounds[i][ph], bounds[i][ph+1]
		if f <= s {
			continue
		}
		evs = append(evs, covEvent{t: s, d: 1}, covEvent{t: f, d: -1})
	}
	e.covScratch = evs
	sort.Slice(evs, func(a, b int) bool { return evs[a].t < evs[b].t })
	c := &coverage{}
	cur, integral := 0.0, 0.0
	for i := 0; i < len(evs); {
		t := evs[i].t
		if n := len(c.ts); n > 0 {
			integral += cur * (t - c.ts[n-1])
		}
		for i < len(evs) && evs[i].t == t {
			cur += evs[i].d
			i++
		}
		c.ts = append(c.ts, t)
		c.cum = append(c.cum, integral)
		c.cnt = append(c.cnt, cur)
	}
	return c
}

// integral returns ∫₀ᵗ coverage du.
func (c *coverage) integral(t float64) float64 {
	n := len(c.ts)
	if n == 0 || t <= c.ts[0] {
		return 0
	}
	// Find the last event time ≤ t.
	i := sort.SearchFloat64s(c.ts, t)
	if i == n || c.ts[i] > t {
		i--
	}
	return c.cum[i] + c.cnt[i]*(t-c.ts[i])
}
