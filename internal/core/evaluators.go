package core

import (
	"math"
	"slices"
	"sort"
	"strconv"
	"sync"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/sim"
	"delaystage/internal/workload"
)

// restrictJob returns the job induced by the active stage set (nil = the
// job itself): only active stages remain and parent edges to inactive
// stages are dropped, which is how Alg. 1 sees the world while paths are
// still being scheduled one by one.
func restrictJob(job *workload.Job, active map[dag.StageID]bool) (*workload.Job, error) {
	if active == nil {
		return job, nil
	}
	g := dag.New()
	profiles := make(map[dag.StageID]workload.StageProfile)
	for _, id := range job.Graph.Stages() {
		if !active[id] {
			continue
		}
		var parents []dag.StageID
		for _, p := range job.Graph.Parents(id) {
			if active[p] {
				parents = append(parents, p)
			}
		}
		if err := g.AddStage(dag.Stage{ID: id, Name: job.Graph.Stage(id).Name, Parents: parents}); err != nil {
			return nil, err
		}
		profiles[id] = job.Profiles[id]
	}
	sub := &workload.Job{Name: job.Name, Graph: g, Profiles: profiles}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	return sub, nil
}

// coarseFor memoizes sim.Coarsen per cluster: replan loops and experiment
// sweeps build many evaluators against the same (immutable) cluster, and
// the coarse view never changes. Bounded so a long-lived process creating
// clusters forever does not leak — coarsening is cheap to redo.
var (
	coarseMu    sync.Mutex
	coarseCache = map[*cluster.Cluster]*cluster.Cluster{}
)

func coarseFor(c *cluster.Cluster) *cluster.Cluster {
	coarseMu.Lock()
	defer coarseMu.Unlock()
	if cc, ok := coarseCache[c]; ok {
		return cc
	}
	if len(coarseCache) >= 256 {
		clear(coarseCache)
	}
	cc := sim.Coarsen(c)
	coarseCache[c] = cc
	return cc
}

// EvalStats breaks the what-if evaluations of one Compute run down by how
// they were answered.
type EvalStats struct {
	// CacheHits counts configurations answered from the memo cache —
	// refine passes and replans re-query many configurations verbatim.
	CacheHits int
	// ForkedRuns counts simulations resumed from a scan snapshot: the
	// prefix up to the scanned stage's ready time was shared, only the
	// suffix ran.
	ForkedRuns int
	// FullRuns counts complete from-scratch simulations.
	FullRuns int
}

// evalShared is the state one simEvaluator shares with all its clones: the
// memo cache of evaluated configurations, the restricted-job cache, the
// work counters (behind mu), and the armed scan snapshot (behind scanMu,
// so a snapshot build never blocks concurrent memo hits).
type evalShared struct {
	disable bool

	mu      sync.Mutex
	memo    map[string]float64
	subJobs map[string]*workload.Job
	stats   EvalStats

	scanMu sync.Mutex
	scan   scanState
}

// scanState is the fork context of the current candidate scan — one
// stage's delay being swept, everything else fixed: the scanned stage, its
// ready time as measured by the scan's first full run (the stage's own
// delay cannot move it: a delay is only read *at* readiness), and the
// snapshot frozen just before that time, which later candidates fork.
type scanState struct {
	on   bool
	kid  dag.StageID
	trOK bool
	tr   float64
	snap *sim.Snapshot
}

// delayPair is one (stage, exact delay bits) term of a fingerprint.
type delayPair struct {
	id   dag.StageID
	bits uint64
}

// simEvaluator answers Alg. 1's "what happens if stage k is delayed by x̂"
// question by running the coarse fluid simulator on the active sub-job —
// the faithful interpretation of lines 12–14 (stage time under the
// resulting parallelism, completion-time updates of subsequent and
// interfering stages).
//
// Three layers keep repeated questions cheap (see DESIGN.md, "What-if
// evaluation"): an exact memo cache over (active set, delay vector)
// fingerprints, snapshot forking during candidate scans (all candidates of
// one stage share the simulation prefix up to that stage's ready time),
// and a restricted-job cache per active set. The simulator is
// deterministic, memo keys are collision-free, and forked runs are
// bit-identical to from-scratch runs, so schedules are byte-identical with
// every layer on or off.
type simEvaluator struct {
	coarse    *cluster.Cluster
	job       *workload.Job
	cur       *workload.Job // restricted to the active set
	inK       map[dag.StageID]bool
	shared    *evalShared
	activeKey string // canonical key of the active set ("*" = all)

	// Per-clone scratch, reset by Clone.
	keyScratch    []byte
	pairScratch   []delayPair
	filterScratch map[dag.StageID]float64
}

func newSimEvaluator(c *cluster.Cluster, job *workload.Job, k []dag.StageID, disableCache bool) *simEvaluator {
	inK := make(map[dag.StageID]bool, len(k))
	for _, id := range k {
		inK[id] = true
	}
	return &simEvaluator{
		coarse: coarseFor(c), job: job, cur: job, inK: inK, activeKey: "*",
		shared: &evalShared{
			disable: disableCache,
			memo:    map[string]float64{},
			subJobs: map[string]*workload.Job{},
		},
	}
}

// Clone returns a concurrency-safe copy: immutable inputs and the shared
// cache state are carried over, the per-clone scratch buffers are not.
func (e *simEvaluator) Clone() Evaluator {
	c := *e
	c.keyScratch, c.pairScratch, c.filterScratch = nil, nil, nil
	return &c
}

// activeKeyOf canonically encodes an active set ("*" = unrestricted).
func activeKeyOf(active map[dag.StageID]bool) string {
	if active == nil {
		return "*"
	}
	ids := make([]dag.StageID, 0, len(active))
	for id, on := range active {
		if on {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b []byte
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return string(b)
}

func (e *simEvaluator) SetActive(active map[dag.StageID]bool) error {
	key := activeKeyOf(active)
	if key == e.activeKey {
		return nil
	}
	sh := e.shared
	sh.mu.Lock()
	sub, ok := sh.subJobs[key]
	sh.mu.Unlock()
	if !ok {
		var err error
		sub, err = restrictJob(e.job, active)
		if err != nil {
			return err
		}
		sh.mu.Lock()
		sh.subJobs[key] = sub
		sh.mu.Unlock()
	}
	e.cur, e.activeKey = sub, key
	return nil
}

// BeginScan implements scanAware: arm the fork context for a candidate
// scan of stage kid. Between BeginScan and EndScan every Makespan call
// varies only kid's delay.
func (e *simEvaluator) BeginScan(kid dag.StageID) {
	if e.shared.disable {
		return
	}
	e.shared.scanMu.Lock()
	e.shared.scan = scanState{on: true, kid: kid}
	e.shared.scanMu.Unlock()
}

// EndScan implements scanAware: drop the scan snapshot.
func (e *simEvaluator) EndScan() {
	if e.shared.disable {
		return
	}
	e.shared.scanMu.Lock()
	e.shared.scan = scanState{}
	e.shared.scanMu.Unlock()
}

// evalStats returns the shared work counters.
func (e *simEvaluator) evalStats() EvalStats {
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	return e.shared.stats
}

// fingerprint canonically encodes (active set, effective delay vector):
// the active-set key plus sorted (stage, exact float bits) pairs of every
// non-zero delay that applies to the active sub-job. Exact — distinct
// configurations can never collide — and zero entries drop out, so "no
// entry" and "explicit 0" (the same simulation) share one slot.
func (e *simEvaluator) fingerprint(delays map[dag.StageID]float64) string {
	pairs := e.pairScratch[:0]
	for id, v := range delays {
		if v != 0 && e.cur.Graph.Stage(id) != nil {
			pairs = append(pairs, delayPair{id: id, bits: math.Float64bits(v)})
		}
	}
	slices.SortFunc(pairs, func(a, b delayPair) int { return int(a.id) - int(b.id) })
	e.pairScratch = pairs
	key := append(e.keyScratch[:0], e.activeKey...)
	for _, p := range pairs {
		key = append(key, '|')
		key = strconv.AppendInt(key, int64(p.id), 10)
		key = append(key, ':')
		key = strconv.AppendUint(key, p.bits, 16)
	}
	e.keyScratch = key
	return string(key)
}

func (e *simEvaluator) Makespan(delays map[dag.StageID]float64) (float64, error) {
	sh := e.shared
	var fp string
	if !sh.disable {
		fp = e.fingerprint(delays)
		sh.mu.Lock()
		if mk, ok := sh.memo[fp]; ok {
			sh.stats.CacheHits++
			sh.mu.Unlock()
			return mk, nil
		}
		sh.mu.Unlock()
	}
	mk, forked, err := e.simulate(delays)
	if err != nil {
		return 0, err
	}
	sh.mu.Lock()
	if !sh.disable {
		sh.memo[fp] = mk
	}
	if forked {
		sh.stats.ForkedRuns++
	} else {
		sh.stats.FullRuns++
	}
	sh.mu.Unlock()
	return mk, nil
}

// simulate answers one what-if configuration, forking the armed scan
// snapshot when one exists. The bool reports whether the answer came from
// a fork rather than a from-scratch run.
//
// Within a scan the first miss runs from scratch while holding scanMu (so
// concurrent misses queue behind it instead of racing to duplicate the
// work) and records the scanned stage's ready time; the second miss
// freezes the shared prefix there; every later miss forks it. The counts
// are therefore deterministic at any Parallelism setting: one full run and
// m−1 forks for a scan with m misses.
func (e *simEvaluator) simulate(delays map[dag.StageID]float64) (float64, bool, error) {
	sh := e.shared
	if !sh.disable {
		sh.scanMu.Lock()
		if sh.scan.on {
			if sh.scan.snap == nil && sh.scan.trOK {
				// Second miss: snapshot just before the scanned stage's
				// ready time with every delay but the scanned stage's
				// baked in.
				pre := make(map[dag.StageID]float64, len(delays))
				for id, v := range delays {
					if id != sh.scan.kid && e.cur.Graph.Stage(id) != nil {
						pre[id] = v
					}
				}
				snap, err := sim.SnapshotAt(sim.Options{Cluster: e.coarse, TrackNode: -1},
					[]sim.JobRun{{Job: e.cur, Delays: pre}}, sh.scan.tr)
				if err != nil {
					sh.scanMu.Unlock()
					return 0, false, err
				}
				sh.scan.snap = snap
			}
			if snap, kid := sh.scan.snap, sh.scan.kid; snap != nil {
				sh.scanMu.Unlock()
				res, err := snap.Resume([]sim.DelayUpdate{{Job: 0, Stage: kid, Delay: delays[kid]}})
				if err != nil {
					return 0, false, err
				}
				return jobEnd(res), true, nil
			}
			// First miss of the scan.
			res, err := e.fullRun(delays)
			if err == nil {
				if tl := res.Timeline(0, sh.scan.kid); tl != nil {
					sh.scan.tr, sh.scan.trOK = tl.Ready, true
				}
			}
			sh.scanMu.Unlock()
			if err != nil {
				return 0, false, err
			}
			return jobEnd(res), false, nil
		}
		sh.scanMu.Unlock()
	}
	res, err := e.fullRun(delays)
	if err != nil {
		return 0, false, err
	}
	return jobEnd(res), false, nil
}

// fullRun simulates the active sub-job from scratch. Delays for stages
// outside the sub-job are filtered out; when every entry applies — the
// common case — the caller's live map is passed through as-is (sim.Run
// neither retains nor mutates it), and the filtered copy otherwise lands
// in a reused scratch map. Both avoid the per-call map the old code built.
func (e *simEvaluator) fullRun(delays map[dag.StageID]float64) (*sim.Result, error) {
	d := delays
	if len(delays) > 0 {
		for id := range delays {
			if e.cur.Graph.Stage(id) == nil {
				if e.filterScratch == nil {
					e.filterScratch = make(map[dag.StageID]float64, len(delays))
				} else {
					clear(e.filterScratch)
				}
				for id, v := range delays {
					if e.cur.Graph.Stage(id) != nil {
						e.filterScratch[id] = v
					}
				}
				d = e.filterScratch
				break
			}
		}
	}
	return sim.Run(sim.Options{Cluster: e.coarse, TrackNode: -1},
		[]sim.JobRun{{Job: e.cur, Delays: d}})
}

// jobEnd is the completion time of the whole (active) job, measured from
// job start. Eq. (3) charges the delays x_k to the path times, so a
// window-width objective would let delays shift every path later for free;
// and minimizing only the last *parallel* stage can push the specific
// parents of a sequential tail later while the K-maximum shrinks, hurting
// the JCT the paper reports. The job end subsumes both: with zero-length
// tails it equals the parallel-region completion.
func jobEnd(res *sim.Result) float64 {
	end := 0.0
	for _, tl := range res.Timelines {
		if tl.End > end {
			end = tl.End
		}
	}
	return end
}

// modelEvaluator approximates the same question in closed form, phase by
// phase: every stage is three consecutive intervals — shuffle read
// (network), compute (executors), shuffle write (disk) — and each phase's
// solo duration is stretched by the time-averaged number of *same-phase*
// concurrent stages (the equal-share assumption of Eq. 1). Interval layout
// and stretches are iterated to a fixed point. O(|K|²) per evaluation and
// close enough to the fluid simulation to rank delay candidates correctly
// for the DAG shapes in the Alibaba trace.
type modelEvaluator struct {
	job    *workload.Job
	topo   []dag.StageID
	idx    map[dag.StageID]int
	active map[dag.StageID]bool
	inK    map[dag.StageID]bool
	soloR  map[dag.StageID]float64
	soloC  map[dag.StageID]float64
	soloW  map[dag.StageID]float64
	alpha  float64 // contention-overhead factor matching the simulator

	// Memoized layouts, shared with clones like the sim evaluator's memo:
	// refine passes and the base evaluation of each scan re-ask
	// configurations the previous scan already priced, and a layout on a
	// 100+-stage job is thousands of float operations. The key is exact
	// (active set + float bits of every applicable non-zero delay), so a
	// hit returns the identical float a recomputation would.
	shared    *modelShared
	activeKey string

	// Flattened per-index state, precomputed once: layout() runs tens of
	// thousands of times per Compute call on large jobs.
	parentIdx  [][]int
	soloRi     []float64
	soloCi     []float64
	soloWi     []float64
	activeIdx  []bool
	bounds     [][4]float64
	stretch    [][3]float64
	covScratch []covEvent
	ovS, ovF   []float64

	keyScratch  []byte
	pairScratch []delayPair
}

// modelShared is the memo state one modelEvaluator shares with its clones.
type modelShared struct {
	mu    sync.Mutex
	memo  map[string]float64
	stats EvalStats
}

func newModelEvaluator(m *perfmodel.Model, job *workload.Job, reach *dag.Reachability,
	k []dag.StageID, solo map[dag.StageID]float64) *modelEvaluator {
	inK := make(map[dag.StageID]bool, len(k))
	for _, id := range k {
		inK[id] = true
	}
	topo, _ := job.Graph.TopoSort()
	e := &modelEvaluator{
		job: job, topo: topo, inK: inK,
		soloR:  make(map[dag.StageID]float64, len(topo)),
		soloC:  make(map[dag.StageID]float64, len(topo)),
		soloW:  make(map[dag.StageID]float64, len(topo)),
		alpha:  0.22,
		shared: &modelShared{memo: map[string]float64{}},

		activeKey: "*",
	}
	idx := make(map[dag.StageID]int, len(topo))
	for i, id := range topo {
		idx[id] = i
	}
	e.idx = idx
	n := len(topo)
	e.parentIdx = make([][]int, n)
	e.soloRi = make([]float64, n)
	e.soloCi = make([]float64, n)
	e.soloWi = make([]float64, n)
	e.activeIdx = make([]bool, n)
	e.bounds = make([][4]float64, n)
	e.stretch = make([][3]float64, n)
	e.ovS = make([]float64, n)
	e.ovF = make([]float64, n)
	for i, id := range topo {
		r, c, w := m.PhaseBreakdown(job.Profiles[id])
		e.soloR[id], e.soloC[id], e.soloW[id] = r, c, w
		e.soloRi[i], e.soloCi[i], e.soloWi[i] = r, c, w
		for _, p := range job.Graph.Stage(id).Parents {
			e.parentIdx[i] = append(e.parentIdx[i], idx[p])
		}
		e.activeIdx[i] = true
	}
	return e
}

// Clone returns a copy whose layout scratch (bounds, stretch, coverage
// events) is private, so concurrent Makespan calls on distinct clones are
// safe. The immutable inputs (topo, profiles, parent indices) and the
// active set — fixed for the clone's scan-scoped lifetime — are shared.
func (e *modelEvaluator) Clone() Evaluator {
	c := *e
	n := len(e.topo)
	c.bounds = make([][4]float64, n)
	c.stretch = make([][3]float64, n)
	c.ovS = make([]float64, n)
	c.ovF = make([]float64, n)
	c.covScratch = nil
	c.keyScratch, c.pairScratch = nil, nil
	return &c
}

func (e *modelEvaluator) SetActive(active map[dag.StageID]bool) error {
	e.active = active
	e.activeKey = activeKeyOf(active)
	for i, id := range e.topo {
		e.activeIdx[i] = active == nil || active[id]
	}
	return nil
}

// fingerprint canonically encodes (active set, effective delay vector) the
// same way the sim evaluator does: only non-zero delays of active stages
// count, so "no entry" and "explicit 0" share one memo slot.
func (e *modelEvaluator) fingerprint(delays map[dag.StageID]float64) string {
	pairs := e.pairScratch[:0]
	for id, v := range delays {
		if v == 0 {
			continue
		}
		if i, ok := e.idx[id]; ok && e.activeIdx[i] {
			pairs = append(pairs, delayPair{id: id, bits: math.Float64bits(v)})
		}
	}
	slices.SortFunc(pairs, func(a, b delayPair) int { return int(a.id) - int(b.id) })
	e.pairScratch = pairs
	key := append(e.keyScratch[:0], e.activeKey...)
	for _, p := range pairs {
		key = append(key, '|')
		key = strconv.AppendInt(key, int64(p.id), 10)
		key = append(key, ':')
		key = strconv.AppendUint(key, p.bits, 16)
	}
	e.keyScratch = key
	return string(key)
}

// evalStats returns the shared memo counters (ForkedRuns stays zero: the
// closed-form model has nothing to fork).
func (e *modelEvaluator) evalStats() EvalStats {
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	return e.shared.stats
}

func (e *modelEvaluator) isActive(id dag.StageID) bool {
	return e.active == nil || e.active[id]
}

// PredictTimelines returns the model-predicted execution time of every
// stage of the job under stock scheduling (no delays), using the same
// phase-aware interference model as Alg. 1's fast evaluator. This is the
// prediction the Appendix A.2 experiment scores against the simulator.
func PredictTimelines(m *perfmodel.Model, job *workload.Job) (map[dag.StageID]float64, error) {
	reach, err := dag.NewReachability(job.Graph)
	if err != nil {
		return nil, err
	}
	k := dag.ParallelStages(job.Graph, reach)
	solo := m.SoloTimes(job)
	ev := newModelEvaluator(m, job, reach, k, solo)
	bounds, err := ev.layout(nil)
	if err != nil {
		return nil, err
	}
	out := make(map[dag.StageID]float64, len(ev.topo))
	for i, id := range ev.topo {
		out[id] = bounds[i][3] - bounds[i][0]
	}
	return out, nil
}

// Makespan lays every active stage out as three consecutive phase
// intervals and iterates interference stretches to a fixed point,
// memoizing per exact configuration.
func (e *modelEvaluator) Makespan(delays map[dag.StageID]float64) (float64, error) {
	fp := e.fingerprint(delays)
	sh := e.shared
	sh.mu.Lock()
	if mk, ok := sh.memo[fp]; ok {
		sh.stats.CacheHits++
		sh.mu.Unlock()
		return mk, nil
	}
	sh.mu.Unlock()
	bounds, err := e.layout(delays)
	if err != nil {
		return 0, err
	}
	// Completion time of the last active stage from job start (see the
	// sim evaluator for why the job end, not the K-set end, is the
	// objective).
	hi := 0.0
	for i := range e.topo {
		if !e.activeIdx[i] {
			continue
		}
		if bounds[i][3] > hi {
			hi = bounds[i][3]
		}
	}
	sh.mu.Lock()
	sh.memo[fp] = hi
	sh.stats.FullRuns++
	sh.mu.Unlock()
	return hi, nil
}

// layout computes every active stage's phase boundaries under the delays.
// It reuses the evaluator's scratch buffers; the returned slice is only
// valid until the next call.
func (e *modelEvaluator) layout(delays map[dag.StageID]float64) ([][4]float64, error) {
	bounds, stretch := e.bounds, e.stretch
	for i := range stretch {
		stretch[i] = [3]float64{1, 1, 1}
		bounds[i] = [4]float64{}
	}
	iters := 4
	if len(e.topo) > 100 {
		// Large trace jobs: one fewer fixed-point pass keeps Alg. 1's
		// runtime in the paper's Fig. 15 envelope at negligible accuracy
		// cost (the layout changes little after the second pass).
		iters = 2
	}
	for it := 0; it < iters; it++ {
		for i, id := range e.topo {
			if !e.activeIdx[i] {
				continue
			}
			ready := 0.0
			for _, pi := range e.parentIdx[i] {
				if !e.activeIdx[pi] {
					continue
				}
				if pe := bounds[pi][3]; pe > ready {
					ready = pe
				}
			}
			d := 0.0
			if delays != nil {
				d = delays[id]
			}
			b := ready + d
			bounds[i][0] = b
			b += e.soloRi[i] * stretch[i][0]
			bounds[i][1] = b
			b += e.soloCi[i] * stretch[i][1]
			bounds[i][2] = b
			b += e.soloWi[i] * stretch[i][2]
			bounds[i][3] = b
		}
		if it == iters-1 {
			break
		}
		// Per-phase stretch: equal sharing with contention overhead. With
		// a time-averaged overlap count f̄ (self included), the effective
		// rate is 1/(f̄·(1+α(f̄−1))) of solo. The pairwise overlap sums are
		// answered in O(1) per stage from one sorted event sweep — Alg. 1
		// calls this layout thousands of times per Compute on 100+-stage
		// trace jobs (Fig. 15), so the sweep is the planner's hot loop.
		for ph := 0; ph < 3; ph++ {
			e.phaseOverlaps(bounds, ph)
			for i := range e.topo {
				if !e.activeIdx[i] {
					continue
				}
				s, f := bounds[i][ph], bounds[i][ph+1]
				if f <= s {
					stretch[i][ph] = 1
					continue
				}
				// Total coverage over [s,f] minus this stage's own f−s.
				overlap := e.ovF[i] - e.ovS[i] - (f - s)
				if overlap < 0 {
					overlap = 0
				}
				fbar := 1 + overlap/(f-s)
				extra := fbar - 1
				if extra > 4 { // matches the simulator's saturation cap
					extra = 4
				}
				stretch[i][ph] = fbar * (1 + e.alpha*extra)
			}
		}
	}
	return bounds, nil
}

// covEvent is one +1/−1 coverage-count change of stage idx's interval.
type covEvent struct {
	t   float64
	idx int32
	d   int8
}

// sortCovEvents orders events by time ascending (ties in any order) with
// a direct-compare quicksort: the generic/closure sort's indirect compare
// calls alone were ~25% of Alg. 1's model-tier runtime on Fig. 15 jobs.
func sortCovEvents(evs []covEvent) {
	for len(evs) > 12 {
		// Median-of-three pivot to first position.
		m := len(evs) / 2
		h := len(evs) - 1
		if evs[m].t < evs[0].t {
			evs[m], evs[0] = evs[0], evs[m]
		}
		if evs[h].t < evs[0].t {
			evs[h], evs[0] = evs[0], evs[h]
		}
		if evs[h].t < evs[m].t {
			evs[h], evs[m] = evs[m], evs[h]
		}
		evs[0], evs[m] = evs[m], evs[0]
		p := evs[0].t
		i, j := 1, h
		for {
			for i <= j && evs[i].t < p {
				i++
			}
			for i <= j && evs[j].t > p {
				j--
			}
			if i > j {
				break
			}
			evs[i], evs[j] = evs[j], evs[i]
			i++
			j--
		}
		evs[0], evs[j] = evs[j], evs[0]
		// Recurse on the smaller half, loop on the larger.
		if j < len(evs)-j {
			sortCovEvents(evs[:j])
			evs = evs[j+1:]
		} else {
			sortCovEvents(evs[j+1:])
			evs = evs[:j]
		}
	}
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].t < evs[j-1].t; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// phaseOverlaps fills ovS/ovF with ∫₀ᵗ coverage du evaluated at every
// active stage's ph-phase start and end: one typed sort plus one event
// sweep, no per-stage binary searches. Every query time is itself an
// event time and the integral is accumulated group-by-group in ascending
// time order — exactly the sequence of float additions the former
// coverage index performed — so the recorded values are bit-identical to
// what its integral() lookups returned.
func (e *modelEvaluator) phaseOverlaps(bounds [][4]float64, ph int) {
	evs := e.covScratch[:0]
	for i := range e.topo {
		if !e.activeIdx[i] {
			continue
		}
		s, f := bounds[i][ph], bounds[i][ph+1]
		if f <= s {
			continue
		}
		evs = append(evs,
			covEvent{t: s, idx: int32(i), d: 1},
			covEvent{t: f, idx: int32(i), d: -1})
	}
	e.covScratch = evs
	// Ties may land in any order: the integral value at t is recorded for
	// every event of the group before any of the group's ±1 deltas apply,
	// so intra-group order cannot change a result.
	sortCovEvents(evs)
	cur, integral, prev := 0.0, 0.0, 0.0
	for i := 0; i < len(evs); {
		t := evs[i].t
		if i > 0 {
			integral += cur * (t - prev)
		}
		prev = t
		for i < len(evs) && evs[i].t == t {
			ev := evs[i]
			if ev.d > 0 {
				e.ovS[ev.idx] = integral
			} else {
				e.ovF[ev.idx] = integral
			}
			cur += float64(ev.d)
			i++
		}
	}
}

// approxEvaluator adapts the analytic BoundEvaluator to the Evaluator
// interface for Options.Approximate: Makespan returns the bound
// surrogate's Estimate, so the whole Alg. 1 machinery — growing-active-set
// sweeps, refinement passes, the never-worse guard — runs unchanged with
// zero simulations. The pruning tier stays sound against it because the
// Estimate is clamped to ≥ Lower by construction.
type approxEvaluator struct {
	b *perfmodel.BoundEvaluator
}

func (e *approxEvaluator) SetActive(active map[dag.StageID]bool) error {
	e.b.SetActive(active)
	return nil
}

func (e *approxEvaluator) Makespan(delays map[dag.StageID]float64) (float64, error) {
	return e.b.Bounds(delays).Estimate, nil
}

// Clone hands the clone its own bound-evaluator scratch; the immutable
// inputs and the per-active-set concurrency cache stay shared.
func (e *approxEvaluator) Clone() Evaluator { return &approxEvaluator{b: e.b.Clone()} }
