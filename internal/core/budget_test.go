package core

import (
	"reflect"
	"testing"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/workload"
)

// An exhausted budget must degrade to the all-zero schedule — the
// always-feasible stock plan — and say so, instead of returning a
// half-swept delay set.
func TestComputeBudgetExhausted(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	job := workload.LDA(c, 0.3)
	s, err := Compute(Options{Cluster: c, Budget: time.Nanosecond}, job)
	if err != nil {
		t.Fatal(err)
	}
	if !s.BudgetExceeded {
		t.Fatal("1 ns budget not reported exceeded")
	}
	if len(s.Delays) != 0 {
		t.Fatalf("budget fallback kept %d delays, want all-zeros", len(s.Delays))
	}
	if s.Makespan != s.StockMakespan {
		t.Fatalf("fallback makespan %.2f != stock %.2f", s.Makespan, s.StockMakespan)
	}
}

// A generous budget must not change the answer at all.
func TestComputeBudgetGenerous(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	job := workload.LDA(c, 0.3)
	free, err := Compute(Options{Cluster: c}, job)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Compute(Options{Cluster: c, Budget: time.Hour}, job)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.BudgetExceeded {
		t.Fatal("1 h budget reported exceeded")
	}
	if !reflect.DeepEqual(free.Delays, bounded.Delays) {
		t.Fatalf("budget changed the schedule: %v vs %v", free.Delays, bounded.Delays)
	}
	if free.Makespan != bounded.Makespan {
		t.Fatalf("budget changed the makespan: %v vs %v", free.Makespan, bounded.Makespan)
	}
}
