package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/workload"
)

// A pre-cancelled context aborts Compute at the first scan with the
// context's error — not a degraded schedule.
func TestComputeCancelledContext(t *testing.T) {
	c := cluster.NewM4LargeCluster(10)
	job := workload.PaperWorkloads(c, 0.3)["LDA"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := Compute(Options{Cluster: c, Ctx: ctx}, job)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s != nil {
		t.Fatalf("cancelled Compute returned a schedule: %+v", s)
	}
}

// Cancelling mid-computation must stop the parallel scan and join every
// goroutine it started — a hand-rolled leak check: the goroutine count
// returns to its pre-call baseline once Compute returns.
func TestComputeCancelJoinsScanGoroutines(t *testing.T) {
	c := cluster.NewM4LargeCluster(20)
	job := workload.PaperWorkloads(c, 0.3)["CosineSimilarity"]
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := Compute(Options{Cluster: c, Ctx: ctx, Parallelism: 8}, job)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	var err error
	select {
	case err = <-errc:
	case <-time.After(30 * time.Second):
		t.Fatal("Compute did not return after cancellation")
	}
	// The sleep races Compute's runtime: a fast machine may finish the
	// whole computation first, which is fine — the leak check below is
	// the property under test; the error check only applies when the
	// cancel actually landed.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled or nil", err)
	}

	// Scan workers are joined before Compute returns, so the goroutine
	// count must settle back to the baseline (plus slack for runtime
	// background goroutines that may come and go).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), before)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
