// Package core implements the paper's contribution: the DelayStage
// stage-delay scheduling strategy (Alg. 1). Given a job's DAG and resource
// profiles, it computes the set X of delayed submission times for the
// parallel stages that greedily minimizes the makespan of the parallel
// region, enabling CPU / network / disk interleaving across stages.
//
// The delay semantics match the Spark prototype (Sec. 4.2): x_k is extra
// time the scheduler sleeps after stage k becomes ready (all parents
// complete) before submitting it, so the dependency constraint (6) holds
// by construction.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"delaystage/internal/cluster"
	"delaystage/internal/dag"
	"delaystage/internal/perfmodel"
	"delaystage/internal/workload"
)

// Order selects the execution-path scheduling sequence (Sec. 4.1 / 5.3).
type Order int

const (
	// Descending schedules long-running paths first — the DelayStage
	// default, which the paper finds best (Fig. 14).
	Descending Order = iota
	// Ascending schedules short paths first ("ascending DelayStage").
	Ascending
	// Random shuffles the path order ("random DelayStage").
	Random
)

func (o Order) String() string {
	switch o {
	case Descending:
		return "descending"
	case Ascending:
		return "ascending"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Options configures Alg. 1.
type Options struct {
	Cluster *cluster.Cluster
	Order   Order
	// Seed drives the Random order shuffle (ignored otherwise).
	Seed int64
	// SlotSeconds is the granularity of the delayed-time scan (the paper
	// slots time at one second). Zero means 1 s.
	SlotSeconds float64
	// MaxCandidates caps the number of candidate delays evaluated per
	// stage; when the scan range divided by SlotSeconds exceeds it, the
	// slot is widened adaptively. Zero means 64.
	MaxCandidates int
	// UseModelEvaluator switches the candidate evaluation from the
	// what-if fluid simulation (default; faithful to Alg. 1 lines 12–14)
	// to the closed-form interference model (much faster; used for
	// trace-scale jobs).
	UseModelEvaluator bool
	// RefinePasses re-scans every stage after the first greedy sweep,
	// fixing the staleness of one-shot greedy decisions (a delay chosen
	// early can become useless — or harmful — once later stages get
	// theirs). An extension over the paper's single sweep; set -1 to
	// disable and run Alg. 1 verbatim. Zero means 2 passes.
	RefinePasses int
	// Budget bounds the wall-clock time Alg. 1 may spend. When it runs
	// out mid-scan the result degrades to the always-feasible all-zero
	// schedule (stock submit-when-ready) with BudgetExceeded set — a
	// guarded scheduler replanning at runtime must answer fast or not at
	// all. Zero means unbounded.
	Budget time.Duration
	// Parallelism evaluates a stage's delay candidates on that many
	// goroutines (each on its own Evaluator clone). The argmin reduce
	// replays the sequential comparison in candidate order, so the
	// schedule is bit-identical to the sequential scan at any setting.
	// Zero or one means sequential.
	Parallelism int
	// Ctx cancels the computation: once it is done, Compute stops handing
	// out work, joins every scan goroutine it started and returns
	// Ctx.Err(). In-flight candidate evaluations run to completion (the
	// evaluators are not interruptible), so cancellation is prompt but not
	// instant — and nothing leaks. Nil means never cancelled. Unlike a
	// spent Budget, cancellation is an error, not a degraded schedule:
	// the caller asked for no answer at all.
	Ctx context.Context
	// DisableEvalCache turns off the sim evaluator's what-if memo cache
	// and snapshot forking: every candidate is answered by a from-scratch
	// simulation, as Alg. 1 is written. Schedules are identical either way
	// (the cache is exact and forked runs are bit-identical); the switch
	// exists for benchmarking the speedup and as a safety valve. Ignored
	// under UseModelEvaluator.
	DisableEvalCache bool
	// DisableBoundPrune turns off the two-tier scan's analytic tier so
	// every candidate is answered by the exact evaluator — the single-tier
	// reference the invariance tests and benchmarks compare against.
	// Schedules are byte-identical either way: a pruned candidate's lower
	// bound already met the scan's best, so its exact makespan provably
	// fails the improve-by-tolerance test.
	DisableBoundPrune bool
	// Approximate answers every candidate from the analytic bound
	// surrogate's estimate instead of any exact evaluator — massive-scale
	// planning at O(V log V) per candidate, no simulation at all. The
	// schedule quality is whatever the surrogate's overlap model buys;
	// Makespan/StockMakespan are estimates, not simulations. Overrides
	// UseModelEvaluator; Evaluations land in PruneStats.Approx.
	Approximate bool
}

// PruneStats breaks the two-tier candidate scan down: how many candidates
// received an analytic bound, how many the lower bound eliminated before
// any exact evaluation, and how the rest were answered.
type PruneStats struct {
	// Bounded counts scan candidates for which an analytic lower bound was
	// computed (the incumbent re-use is never bounded — it is never
	// re-evaluated either).
	Bounded int `json:"bounded"`
	// Pruned counts candidates the bound eliminated: lower(candidate)
	// already met the scan-start best, so the exact evaluator provably
	// could not improve on it.
	Pruned int `json:"pruned"`
	// Exact counts evaluations answered by the exact evaluator (fluid
	// simulation or closed-form model); Approx counts evaluations answered
	// by the bound surrogate (Options.Approximate). Exact + Approx =
	// Schedule.Evaluations.
	Exact  int `json:"exact"`
	Approx int `json:"approx"`
}

// add accumulates s into p (experiment aggregation).
func (p *PruneStats) Add(s PruneStats) {
	p.Bounded += s.Bounded
	p.Pruned += s.Pruned
	p.Exact += s.Exact
	p.Approx += s.Approx
}

// Schedule is Alg. 1's output.
type Schedule struct {
	// Delays is X: per-stage extra delay (seconds after ready). Stages
	// absent from the map are submitted immediately.
	Delays map[dag.StageID]float64
	// Makespan is the predicted makespan of the parallel region under X.
	Makespan float64
	// StockMakespan is the predicted makespan with all-zero delays, for
	// reporting the expected gain.
	StockMakespan float64
	// K is the parallel-stage set, Paths its execution-path decomposition
	// in the order Alg. 1 processed it.
	K     []dag.StageID
	Paths []dag.Path
	// ComputeTime is how long Alg. 1 itself took (Fig. 15 / Sec. 5.4).
	ComputeTime time.Duration
	// Evaluations counts candidate makespan evaluations performed.
	Evaluations int
	// CacheHits, ForkedEvals and FullEvals break Evaluations down by how
	// the evaluator answered them: from the what-if memo cache, by
	// forking a scan snapshot (prefix shared, only the suffix simulated),
	// or by a from-scratch run. Under UseModelEvaluator, CacheHits counts
	// layout-memo hits and FullEvals full layouts (nothing forks); all
	// zero under Approximate (the bound surrogate is cheaper than any
	// cache).
	CacheHits   int
	ForkedEvals int
	FullEvals   int
	// Prune breaks the two-tier scan down: bounded / pruned candidates and
	// the exact-vs-approximate split of Evaluations.
	Prune PruneStats
	// BudgetExceeded reports that Options.Budget ran out and Delays is
	// the all-zero fallback.
	BudgetExceeded bool
}

// Evaluator predicts the completion time of the parallel region under a
// given delay assignment, considering only the stages in the active set —
// Alg. 1 schedules path by path, and a stage's candidates are judged
// against the paths scheduled so far (plus its own), not against paths it
// has not reached yet. Implementations: simEvaluator (what-if fluid
// simulation) and modelEvaluator (closed-form interference model).
type Evaluator interface {
	// SetActive restricts evaluation to the given stages (nil = all).
	SetActive(active map[dag.StageID]bool) error
	Makespan(delays map[dag.StageID]float64) (float64, error)
	// Clone returns an evaluator sharing this one's immutable inputs and
	// active set but owning any mutable scratch, so concurrent Makespan
	// calls on distinct clones are safe. Clones are scan-scoped: SetActive
	// must not be called on the parent while clones are evaluating.
	Clone() Evaluator
}

// scanAware is the optional fork protocol between e2scan and an evaluator:
// between BeginScan(k) and EndScan, every Makespan call varies only stage
// k's delay, so the evaluator may checkpoint the simulation just before
// k's ready time once and fork it per candidate (clones share the scan
// state through their parent).
type scanAware interface {
	BeginScan(kid dag.StageID)
	EndScan()
}

// evalStatser is implemented by evaluators that count how their what-if
// evaluations were answered.
type evalStatser interface {
	evalStats() EvalStats
}

// Compute runs Alg. 1 on the job and returns the delay schedule X.
func Compute(opt Options, job *workload.Job) (*Schedule, error) {
	start := time.Now()
	if opt.Cluster == nil {
		return nil, fmt.Errorf("core: nil cluster")
	}
	if err := opt.Cluster.Validate(); err != nil {
		return nil, err
	}
	if job == nil {
		return nil, fmt.Errorf("core: nil job")
	}
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if opt.SlotSeconds <= 0 {
		opt.SlotSeconds = 1
	}
	if opt.MaxCandidates <= 0 {
		opt.MaxCandidates = 64
	}
	if opt.Ctx == nil {
		opt.Ctx = context.Background()
	}

	reach, err := dag.NewReachability(job.Graph)
	if err != nil {
		return nil, err
	}
	model, err := perfmodel.New(opt.Cluster)
	if err != nil {
		return nil, err
	}

	// Lines 1–3: parallel set, execution paths, solo times t̂_k, initial
	// path times and makespan.
	solo := model.SoloTimes(job)
	weight := func(id dag.StageID) float64 { return solo[id] }
	k := dag.ParallelStages(job.Graph, reach)
	paths := dag.ExecutionPaths(job.Graph, reach, weight)

	sched := &Schedule{Delays: map[dag.StageID]float64{}, K: k}
	if len(k) == 0 {
		// Nothing to delay: the whole job is one sequential chain.
		sched.ComputeTime = time.Since(start)
		return sched, nil
	}

	// Line 4: order the paths.
	switch opt.Order {
	case Descending:
		dag.SortPathsDescending(paths, weight)
	case Ascending:
		dag.SortPathsAscending(paths, weight)
	case Random:
		rng := rand.New(rand.NewSource(opt.Seed))
		rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })
	default:
		return nil, fmt.Errorf("core: unknown order %d", opt.Order)
	}
	sched.Paths = paths

	// The analytic bound evaluator backs both tiers of the two-tier scan:
	// the pruning tier (lower bounds against the scan-start best) and, in
	// approximate mode, the scoring itself. It must be built on the cluster
	// the exact evaluator actually runs against — the coarse view for the
	// sim tier, the raw cluster for the model tier — and the aggregate
	// work/capacity term is only sound against the simulator (the model's
	// truncated stretch fixed point does not conserve capacity).
	var bev *perfmodel.BoundEvaluator
	if !opt.DisableBoundPrune || opt.Approximate {
		bcl := opt.Cluster
		includeWork := true
		if opt.UseModelEvaluator && !opt.Approximate {
			includeWork = false
		} else {
			bcl = coarseFor(opt.Cluster)
		}
		bev, err = perfmodel.NewBoundEvaluator(bcl, job, perfmodel.BoundConfig{IncludeWorkBound: includeWork})
		if err != nil {
			return nil, err
		}
	}

	var ev Evaluator
	switch {
	case opt.Approximate:
		ev = &approxEvaluator{b: bev}
	case opt.UseModelEvaluator:
		ev = newModelEvaluator(model, job, reach, k, solo)
	default:
		ev = newSimEvaluator(opt.Cluster, job, k, opt.DisableEvalCache)
	}
	captureStats := func() {
		if sp, ok := ev.(evalStatser); ok {
			st := sp.evalStats()
			sched.CacheHits, sched.ForkedEvals, sched.FullEvals = st.CacheHits, st.ForkedRuns, st.FullRuns
		}
	}
	// In approximate mode ev *is* the bound evaluator, so its SetActive
	// keeps the bounds in sync; otherwise the pruning tier tracks the
	// exact evaluator's active set explicitly.
	setActive := func(active map[dag.StageID]bool) error {
		if err := ev.SetActive(active); err != nil {
			return err
		}
		if bev != nil && !opt.Approximate {
			bev.SetActive(active)
		}
		return nil
	}
	sc := &scanCtx{ev: ev, sched: sched, solo: solo, opt: opt}
	if !opt.DisableBoundPrune {
		sc.bounds = bev
	}

	// Initial makespan estimate with no delays: Tmax (line 3).
	tmax, err := ev.Makespan(nil)
	if err != nil {
		return nil, err
	}
	sched.StockMakespan = tmax
	sc.countEval(1)

	if opt.RefinePasses == 0 {
		opt.RefinePasses = 2
	} else if opt.RefinePasses < 0 {
		opt.RefinePasses = 0
	}

	// Budget deadline: past it, every further scan aborts and the
	// schedule degrades to all-zeros (x = 0 is always feasible).
	var deadline time.Time
	if opt.Budget > 0 {
		deadline = start.Add(opt.Budget)
	}
	bail := func() (*Schedule, error) {
		sched.Delays = map[dag.StageID]float64{}
		sched.Makespan = tmax
		sched.BudgetExceeded = true
		captureStats()
		sched.ComputeTime = time.Since(start)
		return sched, nil
	}

	// First sweep (Alg. 1 lines 5–21): the active set grows path by path,
	// so the longest path is scheduled against only itself (and keeps its
	// stages undelayed), and each later path interleaves around the paths
	// already scheduled.
	active := map[dag.StageID]bool{}
	scheduled := map[dag.StageID]bool{}
	sc.tmax, sc.deadline = tmax, deadline
	for _, p := range paths {
		for _, kid := range p.Stages {
			active[kid] = true
		}
		if err := setActive(active); err != nil {
			return nil, err
		}
		for _, kid := range p.Stages {
			if scheduled[kid] { // lines 7–9: already handled in a former path
				continue
			}
			scheduled[kid] = true
			switch err := sc.scan(kid, nil); err {
			case nil:
			case errBudget:
				return bail()
			default:
				return nil, err
			}
		}
	}

	// Refinement passes (extension, see Options.RefinePasses): re-scan
	// every stage against the full set, discarding delays that went stale.
	if err := setActive(nil); err != nil {
		return nil, err
	}
	best, err := ev.Makespan(sched.Delays)
	if err != nil {
		return nil, err
	}
	sc.countEval(1)
	for pass := 0; pass < opt.RefinePasses; pass++ {
		seen := map[dag.StageID]bool{}
		for _, p := range paths {
			for _, kid := range p.Stages {
				if seen[kid] {
					continue
				}
				seen[kid] = true
				switch err := sc.scan(kid, &best); err {
				case nil:
				case errBudget:
					return bail()
				default:
					return nil, err
				}
			}
		}
		nb, err := ev.Makespan(sched.Delays)
		if err != nil {
			return nil, err
		}
		sc.countEval(1)
		if nb >= best-1e-9 {
			best = nb
			break
		}
		best = nb
	}
	// Never-worse guard: x = 0 is always feasible (stock scheduling), and
	// the greedy sweep judges early stages against restricted stage sets,
	// which can land coordinate descent in a basin worse than stock.
	if best > tmax {
		sched.Delays = map[dag.StageID]float64{}
		best = tmax
	}
	sched.Makespan = best
	captureStats()
	sched.ComputeTime = time.Since(start)
	return sched, nil
}

// errBudget aborts a scan when Options.Budget is spent.
var errBudget = fmt.Errorf("core: compute budget exceeded")

// scanCtx carries one Compute call's scan machinery: the evaluator, the
// optional analytic pruning tier, the schedule being built and the scan
// invariants (solo times, tmax, budget deadline).
type scanCtx struct {
	ev     Evaluator
	bounds *perfmodel.BoundEvaluator // nil = single-tier (no pruning)
	sched  *Schedule
	solo   map[dag.StageID]float64
	tmax   float64
	opt    Options

	deadline time.Time
	skip     []bool // per-candidate prune mask, reused across scans
}

// countEval attributes n evaluator answers to the right PruneStats side.
func (sc *scanCtx) countEval(n int) {
	sc.sched.Evaluations += n
	if sc.opt.Approximate {
		sc.sched.Prune.Approx += n
	} else {
		sc.sched.Prune.Exact += n
	}
}

// scan runs the two-tier candidate scan of one stage and stores the
// argmin in sched.Delays. When globalBest is nil the comparison baseline
// is the active-set makespan with the stage's incumbent delay (first
// sweep); otherwise globalBest is used and updated (refinement). A
// non-zero deadline makes the scan abort with errBudget once passed.
//
// Tier 1 prunes against the *scan-start* best — not the running best —
// so the surviving set, and with it every counter, is independent of
// Parallelism. Byte-identity to the single-tier scan holds either way:
// exact(c) ≥ lower(c) ≥ best₀ − tol ≥ runningBest − tol means the
// sequential comparison below could never have accepted c.
func (sc *scanCtx) scan(kid dag.StageID, globalBest *float64) error {
	ev, sched, opt, deadline := sc.ev, sc.sched, sc.opt, sc.deadline
	if err := opt.Ctx.Err(); err != nil {
		return err
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return errBudget
	}
	// Every evaluation until the scan ends varies only kid's delay: let a
	// fork-capable evaluator share the simulation prefix across candidates.
	if sa, ok := ev.(scanAware); ok {
		sa.BeginScan(kid)
		defer sa.EndScan()
	}
	incumbent, had := sched.Delays[kid]
	if !had {
		sched.Delays[kid] = 0
	}
	base, err := ev.Makespan(sched.Delays)
	if err != nil {
		return err
	}
	sc.countEval(1)
	best := base
	if globalBest != nil {
		best = *globalBest
	}
	// Line 10: delay-after-ready semantics make the dependency lower
	// bound 0 by construction; the upper bound is the job-level stock
	// makespan minus the stage's own solo time (delaying past that point
	// cannot shorten any path it is on).
	upper := sc.tmax - sc.solo[kid]
	if upper < 0 {
		upper = 0
	}
	bestDelay := incumbent
	cands := candidates(upper, opt.SlotSeconds, opt.MaxCandidates)

	// Tier 1: analytic lower bounds. lower(x) = max(rest, through+x) in
	// O(1) per candidate after one O(V+E) ScanLower. The small slack term
	// absorbs the simulator's float-integration noise: a bound that ties
	// the exact makespan to ~1e-9 relative precision must not prune.
	skip := sc.skip[:0]
	if sc.bounds != nil && len(cands) > 1 {
		if through, rest, ok := sc.bounds.ScanLower(kid, sched.Delays); ok {
			for _, x := range cands {
				s := false
				if !(x == incumbent && had) {
					sched.Prune.Bounded++
					lb := rest
					if t := through + x; t > lb {
						lb = t
					}
					if lb-1e-9*(1+lb) >= best-1e-9 {
						s = true
						sched.Prune.Pruned++
					}
				}
				skip = append(skip, s)
			}
		}
	}
	sc.skip = skip

	// Tier 2: exact evaluation of the survivors, argmin replayed in
	// candidate order either way.
	if opt.Parallelism > 1 && len(cands) > 1 {
		// Evaluate every candidate concurrently, then replay the argmin
		// comparison sequentially in candidate order — the same floats
		// compared in the same order as the sequential loop below, so the
		// chosen delay (ties included) is bit-identical.
		mks, evals, err := scanParallel(opt.Ctx, ev, sched.Delays, kid, incumbent, had, cands, skip, opt.Parallelism, deadline)
		if err != nil {
			return err
		}
		sc.countEval(evals)
		for ci, x := range cands {
			if x == incumbent && had {
				continue // already measured as base
			}
			if len(skip) > 0 && skip[ci] {
				continue // tier 1: provably cannot win
			}
			if mk := mks[ci]; mk < best-1e-9 {
				best = mk
				bestDelay = x
			}
		}
	} else {
		for ci, x := range cands {
			if x == incumbent && had {
				continue // already measured as base
			}
			if len(skip) > 0 && skip[ci] {
				continue // tier 1: provably cannot win
			}
			if ci%8 == 0 {
				if err := opt.Ctx.Err(); err != nil {
					return err
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return errBudget
				}
			}
			sched.Delays[kid] = x
			mk, err := ev.Makespan(sched.Delays)
			if err != nil {
				return err
			}
			sc.countEval(1)
			if mk < best-1e-9 {
				best = mk
				bestDelay = x
			}
		}
	}
	if globalBest != nil && best < *globalBest {
		*globalBest = best
	}
	if bestDelay == 0 {
		delete(sched.Delays, kid)
	} else {
		sched.Delays[kid] = bestDelay
	}
	return nil
}

// scanParallel fans a stage's candidate evaluations out over min(workers,
// len(cands)) goroutines, each with its own Evaluator clone and private
// copy of the delay map. Candidates marked in skip (the pruned tier; nil
// or empty = none) are passed over exactly as the sequential loop does.
// It returns the per-candidate makespans (indexed like cands) and how
// many evaluations ran. Work is handed out by an atomic counter; any
// worker error stops the scan, and a spent deadline surfaces as errBudget
// exactly as in the sequential loop. A cancelled ctx stops every worker
// before its next candidate and surfaces as ctx.Err(); the WaitGroup join
// below means no goroutine outlives the call either way.
func scanParallel(ctx context.Context, ev Evaluator, delays map[dag.StageID]float64, kid dag.StageID,
	incumbent float64, had bool, cands []float64, skip []bool, workers int, deadline time.Time) ([]float64, int, error) {
	if workers > len(cands) {
		workers = len(cands)
	}
	mks := make([]float64, len(cands))
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var evals atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wev := ev.Clone()
			d := make(map[dag.StageID]float64, len(delays)+1)
			for id, v := range delays {
				d[id] = v
			}
			for !stop.Load() {
				ci := int(next.Add(1)) - 1
				if ci >= len(cands) {
					return
				}
				x := cands[ci]
				if x == incumbent && had {
					continue // already measured as base
				}
				if len(skip) > 0 && skip[ci] {
					continue // pruned by the analytic tier
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					errs[w] = errBudget
					stop.Store(true)
					return
				}
				d[kid] = x
				mk, err := wev.Makespan(d)
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				mks[ci] = mk
				evals.Add(1)
			}
		}(w)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil && (firstErr == nil || firstErr == errBudget) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, int(evals.Load()), firstErr
	}
	return mks, int(evals.Load()), nil
}

// candidates returns the slotted delay candidates in [0, upper]. The slot
// widens adaptively when upper/slot exceeds maxN, bounding Alg. 1's cost on
// very long makespans. Edge contract (tested by TestCandidates):
//
//   - upper ≤ 0 or NaN → {0}: no scan range, zero delay is always feasible
//   - upper < slot     → {0}: the range holds no second slot boundary
//   - slot ≤ 0 or NaN  → treated as 1 s (Compute normalizes SlotSeconds,
//     but direct callers get the paper's default instead of an int
//     overflow in the floor)
//   - maxN ≤ 1         → {0}: a single candidate is the zero delay, not a
//     division-by-zero slot widening
func candidates(upper, slot float64, maxN int) []float64 {
	if !(upper > 0) {
		return []float64{0}
	}
	if !(slot > 0) {
		slot = 1
	}
	if maxN <= 1 {
		return []float64{0}
	}
	n := int(math.Floor(upper/slot)) + 1
	if n > maxN {
		slot = upper / float64(maxN-1)
		n = maxN
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i)*slot)
	}
	return out
}

// sortedIDs is a helper for deterministic map iteration.
func sortedIDs(m map[dag.StageID]float64) []dag.StageID {
	ids := make([]dag.StageID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
